package focus

import (
	"bytes"
	"testing"

	"focus/internal/assembly"
	"focus/internal/dist"
)

// TestAssembleOnPool covers the externally-managed-pool entry point.
func TestAssembleOnPool(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 300)
	pool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, stages, err := AssembleOnPool(reads, testConfig(), 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumContigs == 0 || stages.Hyb == nil {
		t.Fatalf("result %+v", res.Stats)
	}
}

// TestBuildStagesOnPoolMatchesLocal: the distributed-alignment facade
// yields the same stages as the local one.
func TestBuildStagesOnPoolMatchesLocal(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 301)
	cfg := testConfig()
	local, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	remote, err := BuildStagesOnPool(reads, cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Records) != len(local.Records) {
		t.Fatalf("records: %d vs %d", len(remote.Records), len(local.Records))
	}
	for i := range local.Records {
		if remote.Records[i] != local.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if remote.Hyb.G.NumNodes() != local.Hyb.G.NumNodes() {
		t.Fatalf("hybrid nodes: %d vs %d", remote.Hyb.G.NumNodes(), local.Hyb.G.NumNodes())
	}
}

// TestStatefulProtocolThroughFacade: stateful config yields identical
// contigs to stateless through the public API.
func TestStatefulProtocolThroughFacade(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 302)
	run := func(stateful bool) *AssemblyResult {
		cfg := testConfig()
		cfg.Assembly.Stateful = stateful
		res, _, err := Assemble(reads, cfg, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("contigs: %d vs %d", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i], b.Contigs[i]) {
			t.Fatalf("contig %d differs between protocols", i)
		}
	}
}

// TestBuildStagesErrorPaths covers facade validation.
func TestBuildStagesErrorPaths(t *testing.T) {
	// Preprocessing drops everything -> error.
	cfg := testConfig()
	cfg.Preprocess.MinLen = 10_000
	reads, _ := simReads(t, 3000, 4, 303)
	if _, err := BuildStages(reads, cfg); err == nil {
		t.Error("empty post-preprocess read set accepted")
	}
	// Invalid record count in BuildStagesFromRecords.
	if _, err := BuildStagesFromRecords(reads, nil, 7, testConfig()); err == nil {
		t.Error("wrong numReads accepted")
	}
	// Partitioning k not a power of two surfaces from PartitionHybrid.
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PartitionHybrid(3, 1, 1); err == nil {
		t.Error("k=3 accepted")
	}
	if _, _, err := s.PartitionMultilevel(0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
}
