package focus

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"focus/internal/assembly"
	"focus/internal/checkpoint"
	"focus/internal/dist"
)

// TestAssembleOnPool covers the externally-managed-pool entry point.
func TestAssembleOnPool(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 300)
	pool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res, stages, err := AssembleOnPool(reads, testConfig(), 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumContigs == 0 || stages.Hyb == nil {
		t.Fatalf("result %+v", res.Stats)
	}
}

// TestBuildStagesOnPoolMatchesLocal: the distributed-alignment facade
// yields the same stages as the local one.
func TestBuildStagesOnPoolMatchesLocal(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 301)
	cfg := testConfig()
	local, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dist.NewLocalPool(2, assembly.NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	remote, err := BuildStagesOnPool(reads, cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Records) != len(local.Records) {
		t.Fatalf("records: %d vs %d", len(remote.Records), len(local.Records))
	}
	for i := range local.Records {
		if remote.Records[i] != local.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if remote.Hyb.G.NumNodes() != local.Hyb.G.NumNodes() {
		t.Fatalf("hybrid nodes: %d vs %d", remote.Hyb.G.NumNodes(), local.Hyb.G.NumNodes())
	}
}

// TestStatefulProtocolThroughFacade: stateful config yields identical
// contigs to stateless through the public API.
func TestStatefulProtocolThroughFacade(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 302)
	run := func(stateful bool) *AssemblyResult {
		cfg := testConfig()
		cfg.Assembly.Stateful = stateful
		res, _, err := Assemble(reads, cfg, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("contigs: %d vs %d", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i], b.Contigs[i]) {
			t.Fatalf("contig %d differs between protocols", i)
		}
	}
}

// TestCheckpointResumeThroughFacade is the kill-master integration test:
// a checkpointed run is "killed" by discarding its newest checkpoint (so
// the directory holds only the state after two of three phases), then a
// fresh master resumes with -resume semantics and must emit contigs
// byte-identical to an uninterrupted run.
func TestCheckpointResumeThroughFacade(t *testing.T) {
	reads, _ := simReads(t, 3500, 7, 304)
	dir := t.TempDir()

	runPool := func(s *Stages, k int) *AssemblyResult {
		t.Helper()
		pool, err := dist.NewLocalPool(2, assembly.NewService)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		res, err := s.Assemble(pool, k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Baseline: uninterrupted, no checkpointing.
	base, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runPool(base, 2)

	// Checkpointed run. It completes, leaving one checkpoint per phase
	// boundary; deleting the last reproduces the on-disk state of a
	// master killed between the second and third phases.
	cfg := testConfig()
	cfg.Checkpoint = Checkpoint{Dir: dir}
	ckRun, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runPool(ckRun, 2)
	if err := os.Remove(filepath.Join(dir, checkpoint.Name(3))); err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh process image. The partitioning (and k itself)
	// must come from the checkpoint: pass a wrong k to prove it.
	cfg.Checkpoint.Resume = true
	resumed, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := runPool(resumed, 8)

	if len(got.Contigs) != len(want.Contigs) {
		t.Fatalf("contigs after resume: %d, want %d", len(got.Contigs), len(want.Contigs))
	}
	for i := range want.Contigs {
		if !bytes.Equal(got.Contigs[i], want.Contigs[i]) {
			t.Fatalf("contig %d differs after resume", i)
		}
	}
	if got.Trim.TransitiveEdges != want.Trim.TransitiveEdges ||
		got.Trim.ContainedNodes != want.Trim.ContainedNodes ||
		got.Trim.FalseEdges != want.Trim.FalseEdges ||
		got.Trim.DeadEndNodes != want.Trim.DeadEndNodes {
		t.Fatalf("trim counters after resume: %+v, want %+v", got.Trim, want.Trim)
	}

	// Resume with an empty directory is a fresh run, not an error.
	cfg.Checkpoint = Checkpoint{Dir: t.TempDir(), Resume: true}
	fresh, err := BuildStages(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := runPool(fresh, 2); len(res.Contigs) != len(want.Contigs) {
		t.Fatalf("fresh -resume run: %d contigs, want %d", len(res.Contigs), len(want.Contigs))
	}
}

// TestBuildStagesErrorPaths covers facade validation.
func TestBuildStagesErrorPaths(t *testing.T) {
	// Preprocessing drops everything -> error.
	cfg := testConfig()
	cfg.Preprocess.MinLen = 10_000
	reads, _ := simReads(t, 3000, 4, 303)
	if _, err := BuildStages(reads, cfg); err == nil {
		t.Error("empty post-preprocess read set accepted")
	}
	// Invalid record count in BuildStagesFromRecords.
	if _, err := BuildStagesFromRecords(reads, nil, 7, testConfig()); err == nil {
		t.Error("wrong numReads accepted")
	}
	// Partitioning k not a power of two surfaces from PartitionHybrid.
	s, err := BuildStages(reads, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PartitionHybrid(3, 1, 1); err == nil {
		t.Error("k=3 accepted")
	}
	if _, _, err := s.PartitionMultilevel(0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
}
