// Command focus-worker runs a standalone Focus assembly worker: it hosts
// the distributed graph algorithm service (transitive reduction,
// containment removal, error removal, path extraction) over TCP RPC so a
// master (cmd/focus with -worker-addrs) can distribute hybrid-graph
// partitions across processes or machines. This is the repository's
// stand-in for the paper's MPI ranks.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting
// connections, drains in-flight RPC calls for up to -grace, then closes
// the remaining connections. The -healthcheck mode probes a running
// worker's Ping RPC (exit 0 = healthy), for use by process supervisors
// and container orchestrators.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"focus/internal/assembly"
	"focus/internal/dist"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7465", "address to listen on")
		grace   = flag.Duration("grace", 10*time.Second, "in-flight call drain budget on SIGINT/SIGTERM")
		health  = flag.Bool("healthcheck", false, "probe the worker at -listen with a Ping RPC and exit 0 (healthy) or 1")
		wireBuf = flag.Int("wire-buf", 0, "per-connection buffered-IO size in bytes (0 = 64 KiB); the codec itself is negotiated per connection (binary wire handshake, gob otherwise)")
		runTTL  = flag.Duration("run-ttl", 0, "drop stored stateful partitions not touched for this long (a crashed master's state; 0 = keep forever)")
	)
	flag.Parse()

	if *health {
		if err := dist.HealthCheck(*listen, 3*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "focus-worker:", err)
			os.Exit(1)
		}
		fmt.Printf("focus-worker at %s is healthy\n", *listen)
		return
	}

	svc := &assembly.Service{}
	srv, err := dist.NewServerOpts(svc, dist.Options{WireBufSize: *wireBuf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus-worker:", err)
		os.Exit(1)
	}
	if *runTTL > 0 {
		// Reclaim partitions orphaned by a master that died and resumed
		// under a new run id (or never came back at all).
		ttlStop := make(chan struct{})
		defer close(ttlStop)
		svc.StartRunTTL(*runTTL, ttlStop)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("focus-worker listening on %s\n", lis.Addr())

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("focus-worker: %s: draining up to %v (%d call(s) in flight)\n", sig, *grace, srv.ActiveCalls())
		srv.Shutdown(*grace)
		close(done)
	}()

	err = srv.Serve(lis)
	if err == dist.ErrServerClosed {
		<-done // let Shutdown finish draining before exiting
		fmt.Println("focus-worker: shut down cleanly")
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus-worker:", err)
		os.Exit(1)
	}
}
