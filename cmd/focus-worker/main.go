// Command focus-worker runs a standalone Focus assembly worker: it hosts
// the distributed graph algorithm service (transitive reduction,
// containment removal, error removal, path extraction) over TCP RPC so a
// master (cmd/focus with -worker-addrs) can distribute hybrid-graph
// partitions across processes or machines. This is the repository's
// stand-in for the paper's MPI ranks.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"focus/internal/assembly"
	"focus/internal/dist"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7465", "address to listen on")
	)
	flag.Parse()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("focus-worker listening on %s\n", lis.Addr())
	if err := dist.Serve(lis, &assembly.Service{}); err != nil {
		fmt.Fprintln(os.Stderr, "focus-worker:", err)
		os.Exit(1)
	}
}
