// Command focus-serve is the multi-tenant resident master: it owns one
// worker fleet (in-process or TCP) and serves a job-queue HTTP API that
// multiplexes concurrent assembly jobs onto it, with admission control,
// per-job quotas and checkpoint namespaces, and a scrapeable metrics and
// health surface.
//
//	focus-serve -listen :8844 -workers 4 -root /var/lib/focus/jobs
//
//	curl -X POST :8844/jobs -d '{"name":"ecoli","input_path":"reads.fastq","k":4}'
//	curl :8844/jobs/job-000001
//	curl :8844/status
//	curl :8844/metrics
//	curl -X DELETE :8844/jobs/job-000001          # kill
//	curl -X POST :8844/jobs/job-000001/resume     # resume from checkpoint
//
// SIGINT/SIGTERM drains: admission stops, running jobs get -grace to
// finish, leftovers are checkpointed and killed; a restarted server with
// the same -root requeues and resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	focus "focus"
	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/jobs"
)

func main() {
	var (
		listen     = flag.String("listen", ":8844", "HTTP listen address")
		workers    = flag.Int("workers", 4, "number of in-process fleet workers")
		addrs      = flag.String("worker-addrs", "", "comma-separated TCP worker addresses (overrides -workers)")
		root       = flag.String("root", "", "checkpoint root directory; each job gets root/<id> (empty = no durability)")
		queueDepth = flag.Int("queue-depth", 16, "maximum queued jobs before submits are rejected (429)")
		maxRunning = flag.Int("max-running", 4, "maximum concurrently running jobs")
		memBudget  = flag.Int("memory-budget-mb", 0, "total declared-memory budget across running jobs (0 = unaccounted)")
		grace      = flag.Duration("grace", 15*time.Second, "drain grace for running jobs on SIGINT/SIGTERM")
		stateful   = flag.Bool("stateful", true, "use the stateful worker protocol (partitions shipped once, then deltas)")
		callTO     = flag.Duration("call-timeout", 30*time.Second, "per-RPC deadline; a worker exceeding it is disconnected and its task rescheduled (0 = none)")
		maxFails   = flag.Int("max-worker-failures", 0, "consecutive transport failures before a worker is evicted (0 = default 3)")
		watchdog   = flag.Duration("watchdog", 0, "per-job stall watchdog window (0 = disarmed)")
	)
	flag.Parse()

	cfg := focus.DefaultConfig()
	cfg.Assembly.Stateful = *stateful
	cfg.Dist = dist.Options{CallTimeout: *callTO, MaxFailures: *maxFails}
	if *watchdog > 0 {
		cfg.Watchdog = assembly.WatchdogConfig{Window: *watchdog}
	}

	var pool *dist.Pool
	var err error
	if *addrs != "" {
		pool, err = dist.DialPoolOpts(strings.Split(*addrs, ","), cfg.Dist)
	} else {
		pool, err = dist.NewLocalPoolOpts(*workers, assembly.NewService, cfg.Dist)
	}
	if err != nil {
		log.Fatalf("focus-serve: fleet: %v", err)
	}
	defer pool.Close()

	srv, err := jobs.NewServer(pool, jobs.Options{
		QueueDepth:     *queueDepth,
		MaxRunning:     *maxRunning,
		MemoryBudgetMB: *memBudget,
		Root:           *root,
		Grace:          *grace,
		Template:       cfg,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatalf("focus-serve: %v", err)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	go func() {
		log.Printf("focus-serve: listening on %s (fleet: %d workers, root: %s)",
			*listen, pool.Size(), orNone(*root))
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("focus-serve: http: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("focus-serve: draining (grace %s)", *grace)
	srv.Drain(*grace)
	srv.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("focus-serve: http shutdown: %v", err)
	}
	fmt.Println("focus-serve: drained")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
