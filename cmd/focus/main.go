// Command focus is the end-to-end assembler CLI: it reads FASTA/FASTQ,
// runs the full Focus pipeline (preprocess, overlap alignment, multilevel
// + hybrid graph construction, partitioning, distributed trimming and
// traversal) and writes contigs as FASTA.
//
// On SIGINT/SIGTERM the run is canceled gracefully: every stage unwinds
// at its next grain boundary, in-flight RPCs are severed, and — with
// -checkpoint-dir set — a best-effort checkpoint of the last completed
// assembly phase is written so -resume can continue the run. The process
// then exits with code 3 (interrupted but resumable). A second signal, or
// a cancel that fails to unwind within -grace, forces an immediate exit
// with code 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"focus"
	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/graphio"
	"focus/internal/polish"
	"focus/internal/scaffold"
)

// exitResumable is the exit code of a run interrupted by signal, deadline
// or watchdog: incomplete, but resumable via -resume when checkpointing
// is enabled. Distinct from 1 (failure) and 130 (forced kill).
const exitResumable = 3

var errSignal = fmt.Errorf("focus: interrupted by signal: %w", context.Canceled)

// watchSignals cancels ctx on the first SIGINT/SIGTERM and force-exits on
// the second (or when the cancel has not unwound within grace). The
// returned stop func detaches the handler once the run completes.
func watchSignals(ctx context.Context, grace time.Duration) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(ctx)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-sigs:
			fmt.Fprintf(os.Stderr, "focus: %s: canceling run (up to %v); signal again to force exit\n", sig, grace)
			cancel(errSignal)
			var timeC <-chan time.Time
			if grace > 0 {
				t := time.NewTimer(grace)
				defer t.Stop()
				timeC = t.C
			}
			select {
			case <-sigs:
			case <-timeC:
				fmt.Fprintln(os.Stderr, "focus: cancel did not unwind in time; forcing exit")
			case <-done:
				return
			}
			os.Exit(130)
		case <-done:
		}
	}()
	return ctx, func() {
		signal.Stop(sigs)
		close(done)
		cancel(nil)
	}
}

func main() {
	var (
		in        = flag.String("in", "", "input reads (.fastq or .fasta)")
		out       = flag.String("out", "contigs.fasta", "output contig FASTA")
		parts     = flag.Int("partitions", 4, "number of graph partitions (power of two)")
		workers   = flag.Int("workers", 4, "number of in-process workers")
		addrs     = flag.String("worker-addrs", "", "comma-separated TCP worker addresses (overrides -workers)")
		trim5     = flag.Int("trim5", 0, "fixed 5' trim length")
		trim3     = flag.Int("trim3", 0, "fixed 3' trim length")
		minQ      = flag.Float64("minq", 12, "sliding-window minimum mean quality")
		subsets   = flag.Int("subsets", 4, "read subsets for parallel alignment")
		seedK     = flag.Int("k", 16, "seed k-mer length for overlap detection")
		minOvl    = flag.Int("min-overlap", 50, "minimum overlap length (bp)")
		minIdent  = flag.Float64("min-identity", 0.90, "minimum overlap identity")
		quietFlag = flag.Bool("quiet", false, "suppress progress output")
		variants  = flag.Bool("variants", false, "call variants from hybrid-graph bubbles (before bubble popping)")
		saveOvl   = flag.String("save-overlaps", "", "write overlap records to this file after alignment")
		loadOvl   = flag.String("load-overlaps", "", "skip alignment and load overlap records from this file")
		doScaf    = flag.Bool("scaffold", false, "input is mate-ordered paired reads: deduplicate strands and scaffold the contigs")
		insMean   = flag.Int("insert-mean", 400, "paired-end insert size mean (with -scaffold)")
		insSD     = flag.Int("insert-sd", 40, "paired-end insert size standard deviation (with -scaffold)")
		doPolish  = flag.Bool("polish", false, "deduplicate strands and polish contigs by read realignment before output")
		stateful  = flag.Bool("stateful", false, "use the stateful worker protocol (ship partitions once, then removal deltas)")
		distAlign = flag.Bool("distributed-align", false, "run read alignment on the worker pool instead of local goroutines")
		retries   = flag.Int("rpc-retries", 0, "failover retries per task after application-level worker errors (stateless protocols only)")
		callTO    = flag.Duration("call-timeout", 0, "per-RPC deadline; a worker exceeding it is disconnected and its task rescheduled (0 = no deadline)")
		maxFails  = flag.Int("max-worker-failures", 0, "consecutive transport failures before a worker is permanently evicted (0 = default 3)")
		ovlEngine = flag.String("overlap-engine", "kmer-table", "overlap candidate engine: kmer-table (seed index), suffix-array (seed index), or spmat (sparse matrix product); all produce identical records")
		phsEngine = flag.String("phase-engine", "csr", "graph-cleaning scan engine: csr (flat adjacency, masked-product transitive reduction) or map (reference walker); both produce identical removals")
		codec     = flag.String("codec", "auto", "RPC wire codec: auto (binary, falling back to gob per worker), binary (required), or gob")
		ckptDir   = flag.String("checkpoint-dir", "", "write crash-recovery checkpoints of the assembly phases to this directory")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint every Nth phase boundary (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume the assembly phases from the newest valid checkpoint in -checkpoint-dir")
		jobID     = flag.String("job", "", "job id owning -checkpoint-dir; a mismatched owner fails the run instead of mixing two jobs' checkpoints (empty = no ownership check)")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget for the whole run; on expiry the run is canceled like SIGINT (0 = unbounded)")
		watchdog  = flag.Duration("watchdog", 0, "cancel-or-kick window of the assembly progress watchdog: with no task completions for this long, stuck workers are kicked, then the run is canceled (0 = disarmed)")
		grace     = flag.Duration("grace", 10*time.Second, "unwind budget after SIGINT/SIGTERM before the exit is forced")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "focus: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	reads, err := dna.ReadsFromFile(*in)
	if err != nil {
		fatal(err)
	}

	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = *trim5
	cfg.Preprocess.Trim3 = *trim3
	cfg.Preprocess.MinQuality = *minQ
	cfg.Subsets = *subsets
	cfg.Overlap.K = *seedK
	cfg.Overlap.Align.MinLength = *minOvl
	cfg.Overlap.Align.MinIdentity = *minIdent
	cfg.Assembly.MinEdgeOverlap = *minOvl
	cfg.Assembly.MinEdgeIdentity = *minIdent
	cfg.Assembly.Stateful = *stateful
	cfg.Assembly.RPCRetries = *retries
	cfg.Overlap.RPCRetries = *retries
	cfg.CallVariants = *variants
	cfg.Dist.CallTimeout = *callTO
	cfg.Dist.MaxFailures = *maxFails
	cfg.Checkpoint = focus.Checkpoint{Dir: *ckptDir, Every: *ckptEvery, Resume: *resume, Job: *jobID}
	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("focus: -resume requires -checkpoint-dir"))
	}
	if *jobID != "" && *ckptDir == "" {
		fatal(fmt.Errorf("focus: -job requires -checkpoint-dir"))
	}
	sigCtx, stopSignals := watchSignals(context.Background(), *grace)
	defer stopSignals()
	cfg.Context = sigCtx
	cfg.Deadline = *deadline
	ctx, stopDeadline := cfg.RunContext()
	defer stopDeadline()
	cfg.Context = ctx
	cfg.Watchdog = assembly.WatchdogConfig{Window: *watchdog}
	if *ckptDir != "" {
		resumeHint = fmt.Sprintf("focus: resume with -resume -checkpoint-dir %s", *ckptDir)
	}
	switch *ovlEngine {
	case "kmer-table":
		cfg.Overlap.Engine, cfg.Overlap.Indexing = focus.EngineSeedIndex, focus.IndexKmerTable
	case "suffix-array":
		cfg.Overlap.Engine, cfg.Overlap.Indexing = focus.EngineSeedIndex, focus.IndexSuffixArray
	case "spmat":
		cfg.Overlap.Engine = focus.EngineSpGEMM
	default:
		fatal(fmt.Errorf("focus: unknown -overlap-engine %q (kmer-table|suffix-array|spmat)", *ovlEngine))
	}
	switch *phsEngine {
	case "csr":
		cfg.Assembly.Engine = focus.PhaseEngineCSR
	case "map":
		cfg.Assembly.Engine = focus.PhaseEngineMap
	default:
		fatal(fmt.Errorf("focus: unknown -phase-engine %q (csr|map)", *phsEngine))
	}
	switch *codec {
	case "auto":
		cfg.Dist.Codec = dist.CodecAuto
	case "binary":
		cfg.Dist.Codec = dist.CodecBinary
	case "gob":
		cfg.Dist.Codec = dist.CodecGob
	default:
		fatal(fmt.Errorf("focus: unknown -codec %q (auto|binary|gob)", *codec))
	}

	var pool *dist.Pool
	if *addrs != "" {
		pool, err = dist.DialPoolOpts(strings.Split(*addrs, ","), cfg.Dist)
	} else {
		if *workers <= 0 {
			*workers = 1
		}
		pool, err = dist.NewLocalPoolOpts(*workers, assembly.NewService, cfg.Dist)
	}
	if err != nil {
		fatal(err)
	}
	defer pool.Close()

	var stages *focus.Stages
	if *loadOvl != "" {
		rf, err := os.Open(*loadOvl)
		if err != nil {
			fatal(err)
		}
		numReads, records, err := graphio.ReadRecords(rf)
		rf.Close()
		if err != nil {
			fatal(err)
		}
		stages, err = focus.BuildStagesFromRecords(reads, records, numReads, cfg)
		if err != nil {
			fatal(err)
		}
	} else if *distAlign {
		stages, err = focus.BuildStagesOnPool(reads, cfg, pool)
		if err != nil {
			fatal(err)
		}
	} else {
		stages, err = focus.BuildStages(reads, cfg)
		if err != nil {
			fatal(err)
		}
	}
	if *saveOvl != "" {
		wf, err := os.Create(*saveOvl)
		if err != nil {
			fatal(err)
		}
		if err := graphio.WriteRecords(wf, len(stages.Reads), stages.Records); err != nil {
			fatal(err)
		}
		if err := wf.Close(); err != nil {
			fatal(err)
		}
	}

	res, err := stages.Assemble(pool, *parts, pool.Size(), 1)
	if err != nil {
		fatal(err)
	}

	var polishStats polish.Stats
	if *doPolish {
		// Polishing needs unique anchors, so strand twins are removed
		// first (each region is assembled on both strands).
		kept := scaffold.Dedupe(res.Contigs, scaffold.DefaultConfig())
		sub := make([][]byte, len(kept))
		for i, ci := range kept {
			sub[i] = res.Contigs[ci]
		}
		res.Contigs, polishStats, err = polish.Polish(sub, stages.Reads, polish.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		res.Stats = assembly.ComputeStats(res.Contigs)
	}

	outSeqs := res.Contigs
	outName := "contig"
	var scafRes *scaffold.Result
	if *doScaf {
		scfg := scaffold.DefaultConfig()
		scfg.InsertMean = *insMean
		scfg.InsertSD = *insSD
		scafRes, err = scaffold.Build(res.Contigs, reads, scfg)
		if err != nil {
			fatal(err)
		}
		outSeqs = scafRes.Sequences
		outName = "scaffold"
	}

	var contigs []dna.Read
	for i, c := range outSeqs {
		contigs = append(contigs, dna.Read{ID: fmt.Sprintf("%s_%05d len=%d", outName, i, len(c)), Seq: c})
	}
	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if err := dna.WriteFASTA(of, contigs, 80); err != nil {
		fatal(err)
	}

	if !*quietFlag {
		fmt.Printf("reads in:         %d\n", len(reads))
		fmt.Printf("reads kept (+rc): %d\n", len(stages.Reads))
		fmt.Printf("overlaps:         %d\n", len(stages.Records))
		fmt.Printf("overlap graph:    %d nodes, %d edges\n", stages.G0.NumNodes(), stages.G0.NumEdges())
		fmt.Printf("graph levels:     %d\n", len(stages.MSet.Levels))
		fmt.Printf("hybrid graph:     %d nodes, %d edges\n", stages.Hyb.G.NumNodes(), stages.Hyb.G.NumEdges())
		fmt.Printf("trim removed:     %d transitive, %d contained, %d false edges, %d tips/bubbles\n",
			res.Trim.TransitiveEdges, res.Trim.ContainedNodes, res.Trim.FalseEdges, res.Trim.DeadEndNodes)
		fmt.Printf("contigs:          %d (N50 %d bp, max %d bp, %d bases)\n",
			res.Stats.NumContigs, res.Stats.N50, res.Stats.MaxContig, res.Stats.TotalBases)
		if *doPolish {
			fmt.Printf("polish:           %d corrections from %d placed reads\n",
				polishStats.Corrections, polishStats.PlacedReads)
		}
		if scafRes != nil {
			st := assembly.ComputeStats(scafRes.Sequences)
			fmt.Printf("scaffolds:        %d from %d deduplicated contigs, %d link bundles (N50 %d bp, max %d bp)\n",
				st.NumContigs, len(scafRes.Kept), scafRes.Links, st.N50, st.MaxContig)
		}
		if *variants {
			fmt.Printf("variants:         %d called\n", len(res.Variants))
			for _, va := range res.Variants {
				fmt.Printf("  %s between nodes %d/%d (cov %d/%d, identity %.3f, %d mismatches)\n",
					va.Kind, va.AlleleA, va.AlleleB, va.CovA, va.CovB, va.Identity, va.Mismatches)
			}
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// resumeHint, set once checkpointing is configured, is printed when an
// interrupted run leaves a resumable checkpoint behind.
var resumeHint string

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "focus:", err)
	if focus.IsInterrupted(err) {
		if resumeHint != "" {
			fmt.Fprintln(os.Stderr, resumeHint)
		}
		os.Exit(exitResumable)
	}
	os.Exit(1)
}
