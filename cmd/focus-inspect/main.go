// Command focus-inspect builds the Focus graph stages for a read set and
// prints structural statistics: overlap-graph degree distribution and
// connected components, multilevel coarsening profile, hybrid-graph
// cluster sizes and representative levels. It is the analysis side of
// Focus — the paper's thesis is that the distributed graph is itself an
// object of study (e.g. its partitions expose community structure), not
// just an assembly intermediate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"focus"
	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/graphio"
	"focus/internal/metrics"
)

func main() {
	var (
		in    = flag.String("in", "", "input reads (.fastq or .fasta)")
		trim5 = flag.Int("trim5", 0, "fixed 5' trim length")
		dot   = flag.String("dot", "", "write the hybrid graph (colored by a 16-partitioning) as Graphviz DOT to this path")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "focus-inspect: -in is required")
		os.Exit(2)
	}
	reads, err := dna.ReadsFromFile(*in)
	if err != nil {
		fatal(err)
	}

	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = *trim5
	s, err := focus.BuildStages(reads, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("== reads ==\n")
	fmt.Printf("input: %d, kept (incl. reverse complements): %d, dropped: %d, bases trimmed: %d\n",
		s.PreStats.Input, s.PreStats.Output, s.PreStats.Dropped, s.PreStats.BasesTrimmed)

	fmt.Printf("\n== overlap graph G0 ==\n")
	fmt.Printf("nodes: %d, edges: %d, total edge weight: %d\n",
		s.G0.NumNodes(), s.G0.NumEdges(), s.G0.TotalEdgeWeight())
	printDegreeHistogram(s.G0)
	comps := componentSizes(s.G0)
	fmt.Printf("connected components: %d (largest %d, singletons %d)\n",
		len(comps), comps[0], countOnes(comps))

	fmt.Printf("\n== multilevel graph set ==\n")
	t := &metrics.Table{Headers: []string{"level", "nodes", "edges", "edge weight"}}
	for i, g := range s.MSet.Levels {
		t.AddRow(i, g.NumNodes(), g.NumEdges(), g.TotalEdgeWeight())
	}
	t.Render(os.Stdout)

	fmt.Printf("\n== hybrid graph ==\n")
	fmt.Printf("nodes: %d, edges: %d (%.1fx reduction over G0)\n",
		s.Hyb.G.NumNodes(), s.Hyb.G.NumEdges(),
		float64(s.G0.NumNodes())/float64(s.Hyb.G.NumNodes()))
	levelCount := map[int]int{}
	var clusterSizes []int
	var contigLens []int
	for _, n := range s.Hyb.Nodes {
		levelCount[n.Level]++
		clusterSizes = append(clusterSizes, len(n.Members))
		contigLens = append(contigLens, len(n.Contig))
	}
	var levels []int
	for l := range levelCount {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	fmt.Printf("representatives by selection level:\n")
	for _, l := range levels {
		fmt.Printf("  level %d: %d\n", l, levelCount[l])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(clusterSizes)))
	sort.Sort(sort.Reverse(sort.IntSlice(contigLens)))
	fmt.Printf("cluster sizes: max %d, median %d reads\n", clusterSizes[0], clusterSizes[len(clusterSizes)/2])
	fmt.Printf("cluster contigs: max %d, median %d bp\n", contigLens[0], contigLens[len(contigLens)/2])
	fmt.Printf("\nstage timings:\n")
	for _, stage := range []string{"preprocess", "overlap", "graph", "coarsen", "hybrid"} {
		fmt.Printf("  %-10s %s\n", stage, s.Timings[stage].Round(1e6))
	}

	if *dot != "" {
		var hlabels []int32
		if res, _, err := s.PartitionHybrid(16, 8, 1); err == nil {
			hlabels = res.Labels()
		}
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := graphio.WriteDOT(f, s.Hyb.G, hlabels, 20000); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote hybrid graph DOT to %s\n", *dot)
	}
}

func printDegreeHistogram(g *graph.Graph) {
	buckets := []int{0, 1, 2, 4, 8, 16, 32, 64}
	counts := make([]int, len(buckets))
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(v)
		for i := len(buckets) - 1; i >= 0; i-- {
			if d >= buckets[i] {
				counts[i]++
				break
			}
		}
	}
	fmt.Printf("degree histogram:\n")
	for i, b := range buckets {
		label := fmt.Sprintf(">=%d", b)
		if i+1 < len(buckets) {
			label = fmt.Sprintf("%d-%d", b, buckets[i+1]-1)
		}
		fmt.Printf("  %-7s %d\n", label, counts[i])
	}
}

// componentSizes returns connected component sizes, descending.
func componentSizes(g *graph.Graph) []int {
	seen := make([]bool, g.NumNodes())
	var sizes []int
	for v := 0; v < g.NumNodes(); v++ {
		if seen[v] {
			continue
		}
		size := 0
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, a := range g.Adj(u) {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		sizes = append(sizes, size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

func countOnes(sizes []int) int {
	n := 0
	for _, s := range sizes {
		if s == 1 {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "focus-inspect:", err)
	os.Exit(1)
}
