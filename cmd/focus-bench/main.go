// Command focus-bench regenerates every table and figure of the paper's
// evaluation (§VI) against the synthetic data-set analogues D1-D3:
//
//	table1 — data set characteristics            (Table I)
//	fig4   — graph partitioning speedup curve    (Fig. 4)
//	fig5   — hybrid vs multilevel partitioning   (Fig. 5)
//	table2 — edge cut, hybrid vs overlap         (Table II)
//	fig6   — distributed trimming & traversal    (Fig. 6)
//	table3 — assembly statistics across k        (Table III)
//	fig7   — genus distribution across parts     (Fig. 7)
//
// Absolute times differ from the paper's cluster, but the shapes it
// reports (speedup knee, the ~2x hybrid advantage, cut ratios, stat
// stability, genus clustering) are reproduced; see EXPERIMENTS.md.
package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"testing"
	"time"

	"focus"
	"focus/internal/align"
	"focus/internal/assembly"
	"focus/internal/coarsen"
	"focus/internal/debruijn"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/eval"
	"focus/internal/graph"
	"focus/internal/greedyasm"
	"focus/internal/hybrid"
	"focus/internal/metrics"
	"focus/internal/overlap"
	"focus/internal/partition"
	"focus/internal/simulate"
	"focus/internal/taxonomy"
)

type harness struct {
	scale    float64
	coverage float64
	runs     int
	maxProcs int
	// cached per data set
	coms   map[int]*simulate.Community
	reads  map[int]*simulate.ReadSet
	stages map[int]*focus.Stages
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig4|fig5|table2|fig6|table3|fig7|baselines|graphbench|alignbench|overlapbench|phasebench|wirebench|all")
		scale      = flag.Float64("scale", 0.35, "data set scale factor (1.0 = ~140kb communities)")
		coverage   = flag.Float64("coverage", 8, "read coverage")
		runs       = flag.Int("runs", 3, "repetitions for timed runs (Fig. 4)")
		maxProcs   = flag.Int("maxprocs", 12, "max processors in the Fig. 4 sweep")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to `file`")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to `file`")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "focus-bench: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	h := &harness{
		scale: *scale, coverage: *coverage, runs: *runs, maxProcs: *maxProcs,
		coms:   map[int]*simulate.Community{},
		reads:  map[int]*simulate.ReadSet{},
		stages: map[int]*focus.Stages{},
	}
	fmt.Printf("focus-bench: scale=%.2f coverage=%.1f GOMAXPROCS=%d\n\n", *scale, *coverage, runtime.GOMAXPROCS(0))

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	run("table1", h.table1)
	run("fig4", h.fig4)
	run("fig5", h.fig5)
	run("table2", h.table2)
	run("fig6", h.fig6)
	run("table3", h.table3)
	run("fig7", h.fig7)
	run("baselines", h.baselines)
	run("graphbench", h.graphbench)
	run("alignbench", h.alignbench)
	run("overlapbench", h.overlapbench)
	run("phasebench", h.phasebench)
	run("wirebench", h.wirebench)
}

// bestOf3 runs f three times and returns the result with the lowest
// ns/op (minimum-of-runs, the usual estimator on a noisy shared host).
func bestOf3(f func(*testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 0; i < 2; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// countConn counts the bytes actually crossing a worker connection (both
// directions), attached server-side via Options.WrapConn.
type countConn struct {
	net.Conn
	n *int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}

// wirebench quantifies the PR-4 binary wire protocol against net/rpc's
// gob on D1-D3: steady-state body bytes per phase (all k partition
// subgraphs + an alignment job), encode+decode time, and end-to-end
// distributed-assembly bytes and wall time counted on the actual worker
// connections. Results land in BENCH_wire.json. Gob is measured in steady
// state (persistent encoder/decoder pair, type descriptors already sent),
// which is exactly what a long-lived net/rpc connection pays.
func (h *harness) wirebench() error {
	type row struct {
		Name    string  `json:"name"`
		DataSet string  `json:"data_set"`
		Unit    string  `json:"unit"`
		Gob     int64   `json:"gob"`
		Wire    int64   `json:"wire"`
		Ratio   float64 `json:"gob_over_wire"`
	}
	var rows []row
	add := func(name, ds, unit string, gobV, wireV int64) {
		r := row{name, ds, unit, gobV, wireV, float64(gobV) / float64(wireV)}
		rows = append(rows, r)
		fmt.Printf("  %-22s %-4s %14d gob %14d wire  %6.2fx  (%s)\n", name, ds, gobV, wireV, r.Ratio, unit)
	}

	const k = 16
	fmt.Println("Wire protocol — binary codec vs gob (steady state)")
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		ds := fmt.Sprintf("D%d", id)
		dg, err := assembly.BuildDiGraph(s.Hyb, s.Records)
		if err != nil {
			return err
		}
		pres, _, err := s.PartitionHybrid(k, 8, 1)
		if err != nil {
			return err
		}
		labels := pres.Labels()
		subs := assembly.Subgraphs(dg, labels, k, 0)
		phaseArgs := make([]*assembly.PhaseArgs, k)
		for t := range subs {
			phaseArgs[t] = &assembly.PhaseArgs{Sub: subs[t], Cfg: s.Cfg.Assembly}
		}
		nAlign := len(s.Reads)
		if nAlign > 128 {
			nAlign = 128
		}
		alignArgs := &overlap.AlignPairArgs{Cfg: s.Cfg.Overlap}
		for i := 0; i < nAlign; i++ {
			alignArgs.RefIDs = append(alignArgs.RefIDs, int32(i))
			alignArgs.RefSeqs = append(alignArgs.RefSeqs, s.Reads[i].Seq)
			alignArgs.QueryIDs = append(alignArgs.QueryIDs, int32(i))
			alignArgs.QuerySeqs = append(alignArgs.QuerySeqs, s.Reads[i].Seq)
		}

		// Steady-state bytes and encode+decode time. The gob pair shares
		// one buffer pipe: descriptors cross once, then each op is encode
		// + decode of the same payloads the RPC layer ships.
		measure := func(name string, values []interface{}, fresh func() interface{}) error {
			var pipe bytes.Buffer
			enc := gob.NewEncoder(&pipe)
			dec := gob.NewDecoder(&pipe)
			for _, v := range values { // warm: ship type descriptors
				if err := enc.Encode(v); err != nil {
					return err
				}
				if err := dec.Decode(fresh()); err != nil {
					return err
				}
			}
			pipe.Reset()
			for _, v := range values {
				if err := enc.Encode(v); err != nil {
					return err
				}
			}
			gobBytes := int64(pipe.Len())
			var wireBytes int64
			for _, v := range values {
				wireBytes += int64(len(v.(dist.Wire).AppendTo(nil)))
			}
			add(name+"_bytes", ds, "bytes/phase", gobBytes, wireBytes)

			// Best of three runs per side: the benchmark host is a busy
			// shared single CPU, and the minimum is the least-noisy
			// estimate of the true cost.
			gobR := bestOf3(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, v := range values {
						if err := enc.Encode(v); err != nil {
							b.Fatal(err)
						}
						if err := dec.Decode(fresh()); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			var staging []byte
			wireR := bestOf3(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, v := range values {
						staging = v.(dist.Wire).AppendTo(staging[:0])
						if err := fresh().(dist.Wire).DecodeFrom(staging); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			add(name+"_encdec", ds, "ns/phase", gobR.NsPerOp(), wireR.NsPerOp())
			add(name+"_allocs", ds, "allocs/phase", gobR.AllocsPerOp(), wireR.AllocsPerOp())
			return nil
		}

		phaseVals := make([]interface{}, k)
		for t := range phaseArgs {
			phaseVals[t] = phaseArgs[t]
		}
		if err := measure("phase", phaseVals, func() interface{} { return &assembly.PhaseArgs{} }); err != nil {
			return err
		}
		if err := measure("align", []interface{}{alignArgs}, func() interface{} { return &overlap.AlignPairArgs{} }); err != nil {
			return err
		}

		// End to end: a full distributed assembly, bytes counted on the
		// worker connections themselves (server side, under the codec).
		e2e := func(codec dist.Codec) (int64, time.Duration, error) {
			var total int64
			opt := dist.DefaultOptions()
			opt.Codec = codec
			opt.WrapConn = func(worker int, conn net.Conn) net.Conn { return countConn{conn, &total} }
			pool, err := dist.NewLocalPoolOpts(4, assembly.NewService, opt)
			if err != nil {
				return 0, 0, err
			}
			defer pool.Close()
			t0 := time.Now()
			if _, err := s.Assemble(pool, k, 4, 1); err != nil {
				return 0, 0, err
			}
			return atomic.LoadInt64(&total), time.Since(t0), nil
		}
		gobBytes, gobTime, err := e2e(dist.CodecGob)
		if err != nil {
			return err
		}
		wireBytes, wireTime, err := e2e(dist.CodecBinary)
		if err != nil {
			return err
		}
		add("e2e_bytes", ds, "bytes/run", gobBytes, wireBytes)
		add("e2e_time", ds, "ns/run", gobTime.Nanoseconds(), wireTime.Nanoseconds())
	}

	f, err := os.Create("BENCH_wire.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// graphbench micro-benchmarks the graph-core stages (overlap-graph build,
// coarsening, hybrid layout, partitioning) serial vs parallel and writes
// the results as machine-readable BENCH_graph.json next to the text
// output. "serial" pins every worker knob to 1; "parallel" uses the
// defaults (GOMAXPROCS-sized pools, Procs=8 for partitioning).
func (h *harness) graphbench() error {
	s, err := h.prepare(2)
	if err != nil {
		return err
	}
	type row struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		BytesPerOp  int64  `json:"b_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	}
	var rows []row
	bench := func(name string, f func(b *testing.B)) {
		r := bestOf3(f)
		rows = append(rows, row{name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()})
		fmt.Printf("  %-26s %12d ns/op %12d B/op %9d allocs/op\n",
			name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	fmt.Println("Graph core — serial vs parallel (D2)")
	newBuilder := func() *graph.Builder {
		b := graph.NewBuilder(len(s.Reads))
		for _, r := range s.Records {
			_ = b.AddEdge(int(r.A), int(r.B), int64(r.Len))
		}
		return b
	}
	bld := newBuilder()
	bench("graph_build_map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildMapMerge()
		}
	})
	bench("graph_build_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildPar(1)
		}
	})
	bench("graph_build_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildPar(0)
		}
	})

	coarsenWith := func(workers int) *graph.Set {
		copt := s.Cfg.Coarsen
		copt.Workers = workers
		return coarsen.Multilevel(s.G0, copt)
	}
	bench("coarsen_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = coarsenWith(1)
		}
	})
	bench("coarsen_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = coarsenWith(0)
		}
	})

	hybridWith := func(workers int) *hybrid.Hybrid {
		hcfg := s.Cfg.Hybrid
		hcfg.Workers = workers
		hb, err := hybrid.Build(s.MSet, s.Reads, s.Records, hcfg)
		if err != nil {
			panic(err)
		}
		return hb
	}
	bench("hybrid_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = hybridWith(1)
		}
	})
	bench("hybrid_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = hybridWith(0)
		}
	})

	partitionWith := func(procs int) {
		opt := partition.DefaultOptions(16)
		opt.Procs = procs
		if _, err := partition.PartitionSet(s.Hyb.Set, opt); err != nil {
			panic(err)
		}
	}
	bench("partition_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			partitionWith(1)
		}
	})
	bench("partition_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			partitionWith(8)
		}
	})

	combined := func(workers, procs int) {
		mset := coarsenWith(workers)
		hcfg := s.Cfg.Hybrid
		hcfg.Workers = workers
		hb, err := hybrid.Build(mset, s.Reads, s.Records, hcfg)
		if err != nil {
			panic(err)
		}
		opt := partition.DefaultOptions(16)
		opt.Procs = procs
		if _, err := partition.PartitionSet(hb.Set, opt); err != nil {
			panic(err)
		}
	}
	bench("combined_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			combined(1, 1)
		}
	})
	bench("combined_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			combined(0, 8)
		}
	})

	f, err := os.Create("BENCH_graph.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// alignbench times the banded-NW kernels head to head on the overlap
// stage's hot-path geometry (100bp window, ~5 substitutions, band 6, and
// a 90bp suffix-prefix overlap through the full classification path) and
// writes BENCH_align.json. Samples alternate between the kernels
// round-robin before taking the per-kernel minimum, so drift in host
// load biases the comparison as little as possible.
func (h *harness) alignbench() error {
	rng := rand.New(rand.NewSource(42))
	bases := []byte("ACGT")
	seq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	pa := seq(100)
	pb := append([]byte(nil), pa...)
	for i := 0; i < 5; i++ {
		pb[rng.Intn(len(pb))] = bases[rng.Intn(4)]
	}
	oa := seq(150)
	ob := append(append([]byte(nil), oa[60:]...), seq(60)...)
	for i := 0; i < 4; i++ {
		ob[rng.Intn(90)] = bases[rng.Intn(4)]
	}

	type row struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		BytesPerOp  int64  `json:"b_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	}
	kernelProbe := func(k align.Kernel) func(b *testing.B) {
		return func(b *testing.B) {
			var scr align.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = scr.BandedNWKernel(pa, pb, 6, align.DefaultScoring, k)
			}
		}
	}
	overlapProbe := func(k align.Kernel) func(b *testing.B) {
		cfg := align.DefaultConfig()
		cfg.Kernel = k
		return func(b *testing.B) {
			var scr align.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = scr.OverlapOnDiagonal(oa, ob, 60, cfg)
			}
		}
	}
	probes := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"nw_scalar", kernelProbe(align.KernelScalar)},
		{"nw_bitparallel", kernelProbe(align.KernelBitParallel)},
		{"overlap_scalar", overlapProbe(align.KernelScalar)},
		{"overlap_bitparallel", overlapProbe(align.KernelBitParallel)},
	}
	fmt.Println("Alignment kernels — scalar vs bit-parallel (100bp, band 6)")
	best := make([]testing.BenchmarkResult, len(probes))
	for round := 0; round < 5; round++ {
		for i, p := range probes {
			r := testing.Benchmark(p.fn)
			if round == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	var rows []row
	for i, p := range probes {
		r := best[i]
		rows = append(rows, row{p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()})
		fmt.Printf("  %-26s %12d ns/op %12d B/op %9d allocs/op\n",
			p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	fmt.Printf("  nw speedup:      %.2fx\n", float64(rows[0].NsPerOp)/float64(rows[1].NsPerOp))
	fmt.Printf("  overlap speedup: %.2fx\n", float64(rows[2].NsPerOp)/float64(rows[3].NsPerOp))

	f, err := os.Create("BENCH_align.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// overlapbench times candidate generation and end-to-end overlap
// discovery for the k-mer-table probe engine vs the sparse-matrix SpGEMM
// engine on a repeat-heavy read set (a high-copy interspersed repeat
// whose seeds all cross the MaxOccur threshold), the workload where
// per-seed masked binary-search probes dominate the table path. Both
// engines are checked to produce identical surviving-candidate totals
// and identical overlap records before anything is timed, so the
// comparison is apples-to-apples by construction. Samples alternate
// between the engines round-robin before taking the per-probe minimum
// (same discipline as alignbench), and a spmat serial-vs-parallel pair
// feeds the governor regression gate in scripts/bench.sh. Results land
// in BENCH_overlap.json.
func (h *harness) overlapbench() error {
	// Repeat-heavy data set: 96 copies of a 600 bp repeat interspersed
	// with 600 bp of unique sequence, tiled into error-free 100 bp reads
	// at 2.5x coverage, probed with dense seeding (Step=1, the all-k-mer
	// regime of the SpGEMM literature). Every repeat k-mer occurs far above MaxOccur=64
	// even when the reads are split across 3 subsets. (Kept identical to
	// repeatHeavyReads in the overlap package's benchmarks.)
	rng := rand.New(rand.NewSource(11))
	bases := []byte("ACGT")
	seq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	repeat := seq(600)
	var genome []byte
	for i := 0; i < 96; i++ {
		genome = append(genome, seq(600)...)
		genome = append(genome, repeat...)
	}
	var reads []dna.Read
	for pos := 0; pos+100 <= len(genome); pos += 40 {
		reads = append(reads, dna.Read{ID: "r", Seq: append([]byte(nil), genome[pos:pos+100]...)})
	}
	const subsets = 3

	probeCfg := overlap.DefaultConfig()
	probeCfg.Step = 1
	spmatCfg := probeCfg
	spmatCfg.Engine = overlap.EngineSpGEMM

	// Equivalence gate before timing: identical candidate totals and
	// byte-identical records, or the numbers below are meaningless.
	nProbe, err := overlap.CountCandidates(reads, subsets, probeCfg)
	if err != nil {
		return err
	}
	nSpmat, err := overlap.CountCandidates(reads, subsets, spmatCfg)
	if err != nil {
		return err
	}
	if nProbe != nSpmat || nProbe == 0 {
		return fmt.Errorf("overlapbench: candidate totals diverge: probe=%d spmat=%d", nProbe, nSpmat)
	}
	recProbe, err := overlap.FindOverlaps(reads, subsets, probeCfg)
	if err != nil {
		return err
	}
	recSpmat, err := overlap.FindOverlaps(reads, subsets, spmatCfg)
	if err != nil {
		return err
	}
	if len(recProbe) != len(recSpmat) {
		return fmt.Errorf("overlapbench: record counts diverge: probe=%d spmat=%d", len(recProbe), len(recSpmat))
	}
	for i := range recProbe {
		if recProbe[i] != recSpmat[i] {
			return fmt.Errorf("overlapbench: record %d diverges between engines", i)
		}
	}
	fmt.Printf("Overlap engines — k-mer-table probe vs SpGEMM (%d reads, %d subsets, %d candidates, %d records)\n",
		len(reads), subsets, nProbe, len(recProbe))

	candgen := func(cfg overlap.Config) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := overlap.CountCandidates(reads, subsets, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	e2e := func(cfg overlap.Config) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := overlap.FindOverlaps(reads, subsets, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	spmatSerial := spmatCfg
	spmatSerial.Workers = 1
	probes := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"overlap_candgen_kmertable", candgen(probeCfg)},
		{"overlap_candgen_spmat", candgen(spmatCfg)},
		{"overlap_e2e_kmertable", e2e(probeCfg)},
		{"overlap_e2e_spmat", e2e(spmatCfg)},
		{"overlap_spmat_serial", candgen(spmatSerial)},
		{"overlap_spmat_parallel", candgen(spmatCfg)},
	}
	best := make([]testing.BenchmarkResult, len(probes))
	for round := 0; round < 5; round++ {
		for i, p := range probes {
			r := testing.Benchmark(p.fn)
			if round == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	type row struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		BytesPerOp  int64  `json:"b_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	}
	var rows []row
	for i, p := range probes {
		r := best[i]
		rows = append(rows, row{p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()})
		fmt.Printf("  %-26s %12d ns/op %12d B/op %9d allocs/op\n",
			p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	fmt.Printf("  candgen speedup: %.2fx\n", float64(rows[0].NsPerOp)/float64(rows[1].NsPerOp))
	fmt.Printf("  e2e speedup:     %.2fx\n", float64(rows[2].NsPerOp)/float64(rows[3].NsPerOp))

	f, err := os.Create("BENCH_overlap.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// phasebench contrasts the graph-cleaning scan engines — the reference
// map walker vs the CSR kernels with the masked-product transitive
// reduction — on a dense synthetic subgraph, gated on byte-identical
// removals before any timing. Writes BENCH_phase.json.
func (h *harness) phasebench() error {
	// Dense transitive-heavy subgraph: 3000 nodes tiled 10 bp apart along
	// one genome, each overlapping its next 20 successors with exact
	// composing diagonals (Diag(v,v+i) + Diag(v+i,v+j) == Diag(v,v+j)), so
	// nearly every edge is transitively implied and the masked product
	// does real accumulator work on every row. Containment and error
	// scans run on the same graph to time their CSR paths on dense
	// adjacency.
	const (
		nNodes = 3000
		deg    = 20
		step   = 10
		ctgLen = 300
	)
	rng := rand.New(rand.NewSource(17))
	bases := []byte("ACGT")
	genome := make([]byte, nNodes*step+ctgLen)
	for i := range genome {
		genome[i] = bases[rng.Intn(4)]
	}
	sub := &assembly.Subgraph{}
	for v := 0; v < nNodes; v++ {
		sub.Nodes = append(sub.Nodes, assembly.WireNode{
			ID:     int32(v),
			Weight: int64(1 + rng.Intn(30)),
			Contig: genome[v*step : v*step+ctgLen],
		})
		sub.Local = append(sub.Local, int32(v))
	}
	for v := 0; v < nNodes; v++ {
		for j := 1; j <= deg && v+j < nNodes; j++ {
			sub.Edges = append(sub.Edges, assembly.Edge{
				From: int32(v), To: int32(v + j),
				Diag: int32(j * step), Len: int32(ctgLen - j*step), Ident: 1,
			})
		}
	}

	mapCfg := assembly.DefaultConfig()
	mapCfg.Engine = assembly.PhaseEngineMap
	csrCfg := assembly.DefaultConfig()
	csrCfg.Engine = assembly.PhaseEngineCSR

	// Equivalence gate before timing: every scan must return deeply equal
	// removals from both engines at several worker counts, or the numbers
	// below are meaningless.
	wantT := assembly.TransitiveEdges(sub, mapCfg)
	wantC := assembly.ContainmentScan(sub, mapCfg)
	wantE := assembly.ErrorScan(sub, mapCfg)
	for _, w := range []int{0, 1, 2, 8} {
		wCfg := csrCfg
		wCfg.Workers = w
		if got := assembly.TransitiveEdges(sub, wCfg); !reflect.DeepEqual(got, wantT) {
			return fmt.Errorf("phasebench: TransitiveEdges diverges at workers=%d", w)
		}
		if got := assembly.ContainmentScan(sub, wCfg); !reflect.DeepEqual(got, wantC) {
			return fmt.Errorf("phasebench: ContainmentScan diverges at workers=%d", w)
		}
		if got := assembly.ErrorScan(sub, wCfg); !reflect.DeepEqual(got, wantE) {
			return fmt.Errorf("phasebench: ErrorScan diverges at workers=%d", w)
		}
	}
	fmt.Printf("Phase engines — map walker vs CSR kernels (%d nodes, %d edges, %d transitive)\n",
		len(sub.Nodes), len(sub.Edges), len(wantT))

	bench := func(f func() int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
		}
	}
	trans := func(cfg assembly.Config) func(b *testing.B) {
		return bench(func() int { return len(assembly.TransitiveEdges(sub, cfg)) })
	}
	contain := func(cfg assembly.Config) func(b *testing.B) {
		return bench(func() int { return len(assembly.ContainmentScan(sub, cfg).Edges) })
	}
	errs := func(cfg assembly.Config) func(b *testing.B) {
		return bench(func() int { return len(assembly.ErrorScan(sub, cfg).Nodes) })
	}
	allThree := func(cfg assembly.Config) func(b *testing.B) {
		return bench(func() int {
			n := len(assembly.TransitiveEdges(sub, cfg))
			n += len(assembly.ContainmentScan(sub, cfg).Edges)
			return n + len(assembly.ErrorScan(sub, cfg).Nodes)
		})
	}
	serialCfg := csrCfg
	serialCfg.Workers = 1
	probes := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"phase_transitive_map", trans(mapCfg)},
		{"phase_transitive_csr", trans(csrCfg)},
		{"phase_containment_map", contain(mapCfg)},
		{"phase_containment_csr", contain(csrCfg)},
		{"phase_errors_map", errs(mapCfg)},
		{"phase_errors_csr", errs(csrCfg)},
		{"phase_serial", allThree(serialCfg)},
		{"phase_parallel", allThree(csrCfg)},
	}
	best := make([]testing.BenchmarkResult, len(probes))
	for round := 0; round < 5; round++ {
		for i, p := range probes {
			r := testing.Benchmark(p.fn)
			if round == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	type row struct {
		Name        string `json:"name"`
		NsPerOp     int64  `json:"ns_per_op"`
		BytesPerOp  int64  `json:"b_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	}
	var rows []row
	for i, p := range probes {
		r := best[i]
		rows = append(rows, row{p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp()})
		fmt.Printf("  %-26s %12d ns/op %12d B/op %9d allocs/op\n",
			p.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	fmt.Printf("  transitive speedup:  %.2fx\n", float64(rows[0].NsPerOp)/float64(rows[1].NsPerOp))
	fmt.Printf("  containment speedup: %.2fx\n", float64(rows[2].NsPerOp)/float64(rows[3].NsPerOp))
	fmt.Printf("  errors speedup:      %.2fx\n", float64(rows[4].NsPerOp)/float64(rows[5].NsPerOp))

	f, err := os.Create("BENCH_phase.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// baselines contrasts Focus with the de Bruijn baseline on the same read
// sets, graded by the reference-based evaluator. Not a paper artifact —
// it quantifies the overlap-vs-de-Bruijn positioning of the paper's
// introduction. Runs only with -exp baselines or -exp all.
func (h *harness) baselines() error {
	t := &metrics.Table{
		Title:   "Baselines — Focus (overlap graph) vs de Bruijn on identical reads",
		Headers: []string{"Data set", "Assembler", "Time", "N50 (bp)", "Genome frac.", "Misasm."},
	}
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		var refs []eval.Reference
		for _, g := range h.coms[id].Genomes {
			refs = append(refs, eval.Reference{Name: g.ID, Seq: g.Seq})
		}
		grade := func(name string, contigs [][]byte, dt time.Duration) error {
			rep, err := eval.Evaluate(contigs, refs, eval.DefaultConfig())
			if err != nil {
				return err
			}
			st := assembly.ComputeStats(contigs)
			t.AddRow(fmt.Sprintf("D%d", id), name, dt, st.N50,
				fmt.Sprintf("%.1f%%", 100*rep.GenomeFraction), rep.Misassemblies)
			return nil
		}
		pool, err := dist.NewLocalPool(4, assembly.NewService)
		if err != nil {
			return err
		}
		t0 := time.Now()
		res, err := s.Assemble(pool, 8, 4, 1)
		focusTime := time.Since(t0)
		pool.Close()
		if err != nil {
			return err
		}
		if err := grade("focus", res.Contigs, focusTime); err != nil {
			return err
		}
		t0 = time.Now()
		dbContigs, err := debruijn.Assemble(s.Reads, debruijn.DefaultConfig())
		dbTime := time.Since(t0)
		if err != nil {
			return err
		}
		if err := grade("debruijn", dbContigs, dbTime); err != nil {
			return err
		}
		// Greedy reuses the already computed overlap records, so its time
		// reflects only the merge stage (alignment cost is shared).
		t0 = time.Now()
		grContigs := greedyasm.AssembleFromRecords(s.Reads, s.Records, greedyasm.DefaultConfig())
		grTime := time.Since(t0)
		if err := grade("greedy", grContigs, grTime); err != nil {
			return err
		}
	}
	t.Render(os.Stdout)
	return nil
}

// prepare builds (and caches) community, reads and pipeline stages for a
// data set.
func (h *harness) prepare(id int) (*focus.Stages, error) {
	if s, ok := h.stages[id]; ok {
		return s, nil
	}
	spec, err := simulate.PaperDataSet(id, h.scale)
	if err != nil {
		return nil, err
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		return nil, err
	}
	rs, err := simulate.SimulateReads(com, simulate.PaperReadConfig(id, h.coverage))
	if err != nil {
		return nil, err
	}
	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = 8 // the simulated adapter
	s, err := focus.BuildStages(rs.Reads, cfg)
	if err != nil {
		return nil, err
	}
	h.coms[id] = com
	h.reads[id] = rs
	h.stages[id] = s
	return s, nil
}

// table1 prints the data set characteristics (Table I analogue).
func (h *harness) table1() error {
	t := &metrics.Table{
		Title:   "Table I — data set characteristics (synthetic analogues of the paper's SRA runs)",
		Headers: []string{"Data set", "Stands in for", "Size (Mbases)", "Read length (bp)", "Reads", "Genomes"},
	}
	sra := []string{"SRR513170", "SRR513441", "SRR061581"}
	for id := 1; id <= 3; id++ {
		if _, err := h.prepare(id); err != nil {
			return err
		}
		rs := h.reads[id]
		t.AddRow(fmt.Sprintf("D%d", id), sra[id-1],
			fmt.Sprintf("%.3f", float64(rs.TotalBases())/1e6),
			100, len(rs.Reads), len(h.coms[id].Genomes))
	}
	t.Render(os.Stdout)
	return nil
}

// fig4 sweeps processor counts for hybrid-set partitioning with k=16.
// Per-region task times are measured once per run and projected onto 1..
// maxprocs processors with LPT scheduling (the algorithm's task graph is
// explicit: bisection steps are barriers with 2^i independent regions,
// then per-level k-way refinements). On a many-core host the projection
// tracks wall-clock; on this harness it reproduces the paper's cluster.
func (h *harness) fig4() error {
	fmt.Println("Fig. 4 — graph partitioning speedup (hybrid graph sets, k=16)")
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		// Average the task-time projections over h.runs random seeds
		// (the paper averages three runs for the same reason: greedy
		// growing's random seed nodes add variance).
		avg := make([]time.Duration, h.maxProcs)
		for r := 0; r < h.runs; r++ {
			res, _, err := s.PartitionHybrid(16, 1, int64(r+1))
			if err != nil {
				return err
			}
			for p := 1; p <= h.maxProcs; p++ {
				avg[p-1] += res.SimulatedMakespan(p)
			}
		}
		var times []time.Duration
		var xs []string
		for p := 1; p <= h.maxProcs; p++ {
			times = append(times, avg[p-1]/time.Duration(h.runs))
			xs = append(xs, fmt.Sprintf("%d procs", p))
		}
		sp := metrics.Speedup(times)
		fmt.Printf("\n  D%d (avg of %d runs; knee expected near 8 procs = 2^(log2 16 - 1)):\n", id, h.runs)
		metrics.Series(os.Stdout, "", "processors", "x speedup", xs, sp, 0)
	}
	return nil
}

// fig5 compares hybrid-set vs multilevel-set partitioning runtime.
func (h *harness) fig5() error {
	fmt.Println("Fig. 5 — hybrid graph set vs multilevel graph set partitioning runtime")
	t := &metrics.Table{Headers: []string{"Data set", "k", "procs", "Hybrid time", "Multilevel time", "Multilevel/Hybrid"}}
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		for _, k := range []int{8, 16, 32, 64} {
			procs := k / 2
			if procs > h.maxProcs {
				procs = h.maxProcs
			}
			_, ht, err := s.PartitionHybrid(k, procs, 1)
			if err != nil {
				return err
			}
			_, mt, err := s.PartitionMultilevel(k, procs, 1)
			if err != nil {
				return err
			}
			ratio := float64(mt) / float64(ht)
			t.AddRow(fmt.Sprintf("D%d", id), k, procs, ht, mt, ratio)
		}
	}
	t.Render(os.Stdout)
	return nil
}

// table2 compares the overlap-graph edge cut of partitionings produced
// via the hybrid set vs the multilevel set. Besides the paper's two
// columns it reports the multilevel solution rounded to cluster
// granularity (majority label per cluster): at the paper's data sizes a
// partition holds ~10^5 clusters and granularity never binds, but at
// laptop scale the multilevel baseline wins raw cut only by routing
// boundaries *through* read clusters — the rounded column shows the
// hybrid scheme is the better partitioner at matched granularity.
func (h *harness) table2() error {
	t := &metrics.Table{
		Title:   "Table II — edge cut on the overlap graph G0: hybrid-set vs multilevel-set partitioning",
		Headers: []string{"Part. Num", "Data set", "Edge Cut (Hyb.)", "Edge Cut (Ovl.)", "Ovl @cluster gran.", "Hyb better @gran.", "Cut % of total"},
	}
	for _, k := range []int{8, 16, 32, 64} {
		for id := 1; id <= 3; id++ {
			s, err := h.prepare(id)
			if err != nil {
				return err
			}
			procs := k / 2
			if procs > h.maxProcs {
				procs = h.maxProcs
			}
			hres, _, err := s.PartitionHybrid(k, procs, 1)
			if err != nil {
				return err
			}
			mres, _, err := s.PartitionMultilevel(k, procs, 1)
			if err != nil {
				return err
			}
			_, hybOnG0 := s.HybridCuts(hres)
			ml := mres.Labels()
			mCut := partition.EdgeCut(s.G0, ml)
			rounded := roundToClusters(s, ml)
			rCut := partition.EdgeCut(s.G0, partition.MapLabels(rounded, s.Hyb.RepOf))
			better := "no"
			if hybOnG0 <= rCut {
				better = "yes"
			}
			pct := 100 * float64(hybOnG0) / float64(s.G0.TotalEdgeWeight())
			t.AddRow(k, id, hybOnG0, mCut, rCut, better, fmt.Sprintf("%.3f%%", pct))
		}
	}
	t.Render(os.Stdout)
	return nil
}

// roundToClusters assigns each hybrid cluster the majority read label of
// a read-granularity partitioning.
func roundToClusters(s *focus.Stages, readLabels []int32) []int32 {
	votes := make([]map[int32]int, s.Hyb.G.NumNodes())
	for i := range votes {
		votes[i] = map[int32]int{}
	}
	for r, rep := range s.Hyb.RepOf {
		votes[rep][readLabels[r]]++
	}
	out := make([]int32, len(votes))
	for c, vs := range votes {
		best, bn := int32(0), -1
		for l, n := range vs {
			if n > bn || (n == bn && l < best) {
				best, bn = l, n
			}
		}
		out[c] = best
	}
	return out
}

// fig6 measures distributed trimming and traversal runtimes across
// partition counts.
func (h *harness) fig6() error {
	fmt.Println("Fig. 6 — distributed graph trimming and traversal runtimes")
	fmt.Println("(per-partition task times measured over RPC, projected onto k workers — one per partition, as on the paper's cluster)")
	t := &metrics.Table{Headers: []string{"Data set", "Partitions", "Trimming", "Traversal", "Trim (wall)", "Trav (wall)"}}
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		for _, k := range []int{8, 16, 32, 64} {
			workers := k
			if workers > 2*runtime.GOMAXPROCS(0) {
				workers = 2 * runtime.GOMAXPROCS(0)
			}
			pool, err := dist.NewLocalPool(workers, assembly.NewService)
			if err != nil {
				return err
			}
			res, err := s.Assemble(pool, k, workers, 1)
			pool.Close()
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("D%d", id), k, res.SimTrimTime(k), res.SimTraverseTime(k), res.TrimTime, res.TraverseTime)
		}
	}
	t.Render(os.Stdout)
	return nil
}

// table3 reports assembly statistics across partitionings, extended with
// reference-based accuracy (genome fraction and misassemblies via
// internal/eval — the paper reports only contiguity).
func (h *harness) table3() error {
	t := &metrics.Table{
		Title:   "Table III — assembly statistics across partition counts",
		Headers: []string{"Data set", "Part. Num.", "N50 (bp)", "Max Contig (bp)", "Num. of Contigs", "Genome frac.", "Misasm."},
	}
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		var refs []eval.Reference
		for _, g := range h.coms[id].Genomes {
			refs = append(refs, eval.Reference{Name: g.ID, Seq: g.Seq})
		}
		for _, k := range []int{4, 16, 32, 64} {
			workers := 4
			pool, err := dist.NewLocalPool(workers, assembly.NewService)
			if err != nil {
				return err
			}
			res, err := s.Assemble(pool, k, workers, 1)
			pool.Close()
			if err != nil {
				return err
			}
			rep, err := eval.Evaluate(res.Contigs, refs, eval.DefaultConfig())
			if err != nil {
				return err
			}
			t.AddRow(id, k, res.Stats.N50, res.Stats.MaxContig, res.Stats.NumContigs,
				fmt.Sprintf("%.1f%%", 100*rep.GenomeFraction), rep.Misassemblies)
		}
	}
	t.Render(os.Stdout)
	return nil
}

// fig7 renders the genus-by-partition heat maps.
func (h *harness) fig7() error {
	fmt.Println("Fig. 7 — distribution of major genera across a 16-partitioning")
	for id := 1; id <= 3; id++ {
		s, err := h.prepare(id)
		if err != nil {
			return err
		}
		com := h.coms[id]
		var refs []taxonomy.Reference
		for _, g := range com.Genomes {
			refs = append(refs, taxonomy.Reference{Name: g.ID, Genus: g.Genus, Phylum: g.Phylum, Seq: g.Seq})
		}
		cls, err := taxonomy.NewClassifier(refs, 21)
		if err != nil {
			return err
		}
		res, _, err := s.PartitionHybrid(16, 8, 1)
		if err != nil {
			return err
		}
		labels := s.ReadLabels(res)
		d, err := taxonomy.GenusDistribution(cls, s.Reads, labels, 16)
		if err != nil {
			return err
		}
		top := d.TopGenera(10)
		var names []string
		frac := d.Fraction()
		var rows [][]float64
		for _, g := range top {
			names = append(names, fmt.Sprintf("%s (%s)", d.Genera[g], d.Phyla[g]))
			rows = append(rows, frac[g])
		}
		fmt.Printf("\n  D%d:\n", id)
		metrics.Heatmap(os.Stdout, "", names, rows)
		same, diff := d.PhylumCohesion()
		fmt.Printf("  phylum cohesion: same-phylum cosine %.3f vs cross-phylum %.3f\n", same, diff)
	}
	return nil
}
