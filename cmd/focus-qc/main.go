// Command focus-qc prints read quality-control statistics (per-position
// quality, GC and quality distributions, k-mer coverage spectrum, adapter
// detection) used to choose Focus preprocessing parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/dna"
	"focus/internal/qc"
)

func main() {
	var (
		in = flag.String("in", "", "input reads (.fasta/.fastq, optionally .gz)")
		k  = flag.Int("k", 21, "k-mer size for the coverage spectrum (0 disables)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "focus-qc: -in is required")
		os.Exit(2)
	}
	reads, err := dna.ReadsFromFile(*in)
	if err != nil {
		fatal(err)
	}
	cfg := qc.DefaultConfig()
	cfg.SpectrumK = *k
	rep, err := qc.Analyze(reads, cfg)
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "focus-qc:", err)
	os.Exit(1)
}
