// Command readsim generates synthetic metagenomic communities and
// Illumina-like reads — the stand-in for the paper's NCBI SRA data sets
// (see DESIGN.md §2). It writes reads as FASTQ and, optionally, the
// reference genomes as FASTA for downstream classification.
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/dna"
	"focus/internal/simulate"
)

func main() {
	var (
		dataset  = flag.Int("dataset", 1, "paper data set analogue to simulate (1-3)")
		scale    = flag.Float64("scale", 1.0, "genome length scale factor")
		coverage = flag.Float64("coverage", 12, "mean read coverage")
		out      = flag.String("out", "reads.fastq", "output FASTQ path")
		refOut   = flag.String("refs", "", "optional output FASTA path for reference genomes")
		single   = flag.Int("single", 0, "instead of a community, simulate one genome of this length")
		seed     = flag.Int64("seed", 42, "seed for -single mode")
		paired   = flag.Bool("paired", false, "produce mate pairs (FR orientation, mates adjacent in the output)")
		insMean  = flag.Int("insert-mean", 400, "paired-end insert size mean")
		insSD    = flag.Int("insert-sd", 40, "paired-end insert size standard deviation")
	)
	flag.Parse()

	var spec simulate.CommunitySpec
	var err error
	if *single > 0 {
		spec = simulate.SingleGenome("single", *single, *seed)
	} else {
		spec, err = simulate.PaperDataSet(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
	}
	com, err := simulate.BuildCommunity(spec)
	if err != nil {
		fatal(err)
	}
	cfg := simulate.PaperReadConfig(*dataset, *coverage)
	if *paired {
		cfg.Paired = true
		cfg.InsertMean = *insMean
		cfg.InsertSD = *insSD
		cfg.AdapterLen = 0 // mate geometry is exact without adapters
	}
	rs, err := simulate.SimulateReads(com, cfg)
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := dna.WriteFASTQ(f, rs.Reads); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d reads (%d bases, %.1fx coverage of %d genome bases) to %s\n",
		len(rs.Reads), rs.TotalBases(), float64(rs.TotalBases())/float64(com.TotalBases()), com.TotalBases(), *out)

	if *refOut != "" {
		var refs []dna.Read
		for _, g := range com.Genomes {
			refs = append(refs, dna.Read{ID: fmt.Sprintf("%s genus=%s phylum=%s", g.ID, g.Genus, g.Phylum), Seq: g.Seq})
		}
		rf, err := os.Create(*refOut)
		if err != nil {
			fatal(err)
		}
		defer rf.Close()
		if err := dna.WriteFASTA(rf, refs, 80); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d reference genomes to %s\n", len(refs), *refOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "readsim:", err)
	os.Exit(1)
}
