package focus_test

import (
	"fmt"

	"focus"
	"focus/internal/simulate"
)

// ExampleAssemble runs the complete pipeline — preprocessing, parallel
// overlap alignment, multilevel + hybrid graph construction, partitioning
// and the distributed trimming/traversal phases — on a simulated read set.
func ExampleAssemble() {
	com, err := simulate.BuildCommunity(simulate.SingleGenome("doc", 6000, 1))
	if err != nil {
		panic(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{ReadLen: 100, Coverage: 10, Seed: 2})
	if err != nil {
		panic(err)
	}

	res, stages, err := focus.Assemble(rs.Reads, focus.DefaultConfig(), 2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("graph levels:", len(stages.MSet.Levels) > 1)
	fmt.Println("contigs:", res.Stats.NumContigs > 0)
	fmt.Println("assembled bases >= genome:", res.Stats.TotalBases >= 6000)
	// Output:
	// graph levels: true
	// contigs: true
	// assembled bases >= genome: true
}

// ExampleBuildStages shows staged use of the pipeline: build the graphs
// once, then partition the hybrid graph set and inspect the edge cut.
func ExampleBuildStages() {
	com, err := simulate.BuildCommunity(simulate.SingleGenome("doc2", 6000, 3))
	if err != nil {
		panic(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{ReadLen: 100, Coverage: 10, Seed: 4})
	if err != nil {
		panic(err)
	}

	stages, err := focus.BuildStages(rs.Reads, focus.DefaultConfig())
	if err != nil {
		panic(err)
	}
	res, _, err := stages.PartitionHybrid(4, 2, 1)
	if err != nil {
		panic(err)
	}
	hybridCut, overlapCut := stages.HybridCuts(res)
	fmt.Println("cuts equal under projection:", hybridCut == overlapCut)
	fmt.Println("labels cover all reads:", len(stages.ReadLabels(res)) == len(stages.Reads))
	// Output:
	// cuts equal under projection: true
	// labels cover all reads: true
}
