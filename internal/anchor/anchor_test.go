package anchor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"focus/internal/dna"
)

func randSeq(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func TestPlaceForwardAndReverse(t *testing.T) {
	targets := [][]byte{randSeq(1, 1500), randSeq(2, 1500)}
	ix, err := New(targets, nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	for ti, target := range targets {
		for pos := 0; pos+90 <= len(target); pos += 333 {
			read := target[pos : pos+90]
			h, ok := ix.Place(read, 2)
			if !ok || h.Seq != int32(ti) || !h.Forward || h.Pos != int32(pos) {
				t.Fatalf("fwd placement = %+v ok=%v, want (%d,%d,+)", h, ok, ti, pos)
			}
			h, ok = ix.Place(dna.ReverseComplement(read), 2)
			if !ok || h.Seq != int32(ti) || h.Forward || h.Pos != int32(pos) {
				t.Fatalf("rev placement = %+v ok=%v, want (%d,%d,-)", h, ok, ti, pos)
			}
		}
	}
}

func TestPlaceCustomIDs(t *testing.T) {
	targets := [][]byte{randSeq(3, 800)}
	ix, err := New(targets, []int32{42}, 21)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := ix.Place(targets[0][100:200], 2)
	if !ok || h.Seq != 42 {
		t.Fatalf("hit = %+v ok=%v", h, ok)
	}
}

func TestPlaceRejectsUnknownAndWeak(t *testing.T) {
	ix, err := New([][]byte{randSeq(4, 1000)}, nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Place(randSeq(5, 100), 2); ok {
		t.Error("random read placed")
	}
	if _, ok := ix.Place(nil, 1); ok {
		t.Error("empty read placed")
	}
}

func TestSharedKmersDoNotVote(t *testing.T) {
	shared := randSeq(6, 600)
	// Same sequence twice: all k-mers duplicated, nothing placeable.
	ix, err := New([][]byte{shared, shared}, nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Place(shared[100:200], 1); ok {
		t.Error("read placed with only duplicated k-mers")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(nil, nil, 40); err == nil {
		t.Error("k=40 accepted")
	}
	if _, err := New([][]byte{[]byte("ACGT")}, []int32{1, 2}, 4); err == nil {
		t.Error("id length mismatch accepted")
	}
}

// Property: a read sampled from a target with a few errors still places
// at the right position whenever it retains >= minVotes unique k-mers.
func TestPlaceQuick(t *testing.T) {
	target := randSeq(7, 3000)
	ix, err := New([][]byte{target}, nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seedRaw uint32, posRaw uint16, flip bool) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		pos := int(posRaw) % (len(target) - 100)
		read := append([]byte(nil), target[pos:pos+100]...)
		// Two scattered errors.
		for e := 0; e < 2; e++ {
			read[rng.Intn(len(read))] = "ACGT"[rng.Intn(4)]
		}
		if flip {
			dna.ReverseComplementInPlace(read)
		}
		h, ok := ix.Place(read, 2)
		if !ok {
			return true // too many anchors destroyed: acceptable miss
		}
		return h.Seq == 0 && h.Pos == int32(pos) && h.Forward == !flip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
