// Package anchor places reads on target sequences by unique canonical
// k-mer voting. It is the shared placement substrate of the scaffolder
// (mate-pair links) and the polisher (read realignment).
package anchor

import (
	"fmt"

	"focus/internal/dna"
)

// Hit is a read placement: the read's leftmost base sits at Pos on target
// Seq; Forward tells whether the read matches the target's forward
// strand.
type Hit struct {
	Seq     int32
	Pos     int32
	Forward bool
}

// Index maps canonical k-mers occurring exactly once across all targets
// to their location.
type Index struct {
	k    int
	locs map[dna.Kmer]loc
}

type loc struct {
	seq     int32
	pos     int32
	forward bool // canonical form lies on the target's forward strand
	dup     bool
}

// New indexes the targets. ids assigns the Seq value reported for each
// target (nil = positional 0..n-1); this lets callers index a subset of a
// larger contig set while keeping original ids.
func New(targets [][]byte, ids []int32, k int) (*Index, error) {
	if k <= 0 || k > dna.MaxK {
		return nil, fmt.Errorf("anchor: k=%d out of range", k)
	}
	if ids != nil && len(ids) != len(targets) {
		return nil, fmt.Errorf("anchor: %d ids for %d targets", len(ids), len(targets))
	}
	ix := &Index{k: k, locs: map[dna.Kmer]loc{}}
	for ti, seq := range targets {
		id := int32(ti)
		if ids != nil {
			id = ids[ti]
		}
		it := dna.NewKmerIter(seq, k)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			can := km.Canonical(k)
			if l, seen := ix.locs[can]; seen {
				l.dup = true
				ix.locs[can] = l
				continue
			}
			ix.locs[can] = loc{seq: id, pos: int32(off), forward: can == km}
		}
	}
	return ix, nil
}

// K returns the index's k-mer size.
func (ix *Index) K() int { return ix.k }

// Place anchors a read by majority vote over its unique k-mer hits;
// minVotes bounds the required support. ok is false when no placement
// reaches it.
func (ix *Index) Place(read []byte, minVotes int) (Hit, bool) {
	if minVotes < 1 {
		minVotes = 1
	}
	type key struct {
		seq int32
		fwd bool
	}
	votes := map[key]int{}
	pos := map[key]int32{}
	it := dna.NewKmerIter(read, ix.k)
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		can := km.Canonical(ix.k)
		l, seen := ix.locs[can]
		if !seen || l.dup {
			continue
		}
		readFwd := can == km
		fwd := readFwd == l.forward
		k := key{l.seq, fwd}
		votes[k]++
		if _, has := pos[k]; !has {
			if fwd {
				pos[k] = l.pos - int32(off)
			} else {
				pos[k] = l.pos - int32(len(read)-ix.k-off)
			}
		}
	}
	var best key
	bestN := 0
	for k, n := range votes {
		if n > bestN || (n == bestN && (k.seq < best.seq || (k.seq == best.seq && k.fwd && !best.fwd))) {
			best, bestN = k, n
		}
	}
	if bestN < minVotes {
		return Hit{}, false
	}
	return Hit{Seq: best.seq, Pos: pos[best], Forward: best.fwd}, true
}
