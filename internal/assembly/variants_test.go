package assembly

import (
	"bytes"
	"testing"

	"focus/internal/dist"
)

// bubbleSub builds: 0 -> {1, 4} -> 2 -> 3, where 1 and 4 are the bubble
// branches with the given contigs and weights.
func bubbleSub(branchA, branchB []byte, wA, wB int64) *Subgraph {
	sub := chainSub(4)
	sub.Nodes[1].Contig = branchA
	sub.Nodes[1].Weight = wA
	sub.Local = append(sub.Local, 4)
	sub.Nodes = append(sub.Nodes, WireNode{ID: 4, Part: 0, Weight: wB, Contig: branchB})
	sub.Edges = append(sub.Edges,
		Edge{From: 0, To: 4, Diag: 60, Len: 40, Ident: 1},
		Edge{From: 4, To: 2, Diag: 60, Len: 40, Ident: 1},
	)
	return sub
}

func TestScanVariantsSubstitution(t *testing.T) {
	a := bytes.Repeat([]byte("ACGT"), 25)
	b := append([]byte(nil), a...)
	b[50] = 'T' // one substitution
	vars := ScanVariants(bubbleSub(a, b, 6, 5), DefaultVariantConfig())
	if len(vars) != 1 {
		t.Fatalf("variants = %+v", vars)
	}
	va := vars[0]
	if va.Kind != VariantSubstitution {
		t.Errorf("kind = %v", va.Kind)
	}
	if va.AlleleA != 1 || va.AlleleB != 4 {
		t.Errorf("alleles = %d,%d", va.AlleleA, va.AlleleB)
	}
	if va.Mismatches != 1 {
		t.Errorf("mismatches = %d", va.Mismatches)
	}
	if va.From != 0 || va.To != 2 {
		t.Errorf("anchors = %d,%d", va.From, va.To)
	}
	if va.CovA != 6 || va.CovB != 5 {
		t.Errorf("coverage = %d,%d", va.CovA, va.CovB)
	}
}

func TestScanVariantsIndel(t *testing.T) {
	a := bytes.Repeat([]byte("ACGT"), 25)
	b := append(append([]byte(nil), a[:50]...), a[60:]...) // 10 bp deletion
	vars := ScanVariants(bubbleSub(a, b, 4, 4), DefaultVariantConfig())
	if len(vars) != 1 || vars[0].Kind != VariantIndel {
		t.Fatalf("variants = %+v", vars)
	}
}

func TestScanVariantsDivergent(t *testing.T) {
	a := bytes.Repeat([]byte("AC"), 50)
	b := bytes.Repeat([]byte("GT"), 50)
	vars := ScanVariants(bubbleSub(a, b, 4, 4), DefaultVariantConfig())
	if len(vars) != 1 || vars[0].Kind != VariantDivergent {
		t.Fatalf("variants = %+v", vars)
	}
}

func TestScanVariantsFiltersLowCoverage(t *testing.T) {
	a := bytes.Repeat([]byte("ACGT"), 25)
	b := append([]byte(nil), a...)
	b[10] = 'A'
	cfg := DefaultVariantConfig()
	cfg.MinBranchCov = 3
	vars := ScanVariants(bubbleSub(a, b, 6, 1), cfg)
	if len(vars) != 0 {
		t.Fatalf("error bubble reported as variant: %+v", vars)
	}
}

func TestScanVariantsNoBubbleNoCalls(t *testing.T) {
	if vars := ScanVariants(chainSub(5), DefaultVariantConfig()); len(vars) != 0 {
		t.Fatalf("variants on a chain: %+v", vars)
	}
}

func TestVariantKindString(t *testing.T) {
	for k, want := range map[VariantKind]string{
		VariantSubstitution: "substitution",
		VariantIndel:        "indel",
		VariantDivergent:    "divergent",
		VariantKind(9):      "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

// TestCallVariantsDistributed runs the RPC path with the bubble branches
// assigned to different partitions: both workers see it, the master must
// deduplicate to a single call.
func TestCallVariantsDistributed(t *testing.T) {
	a := bytes.Repeat([]byte("ACGT"), 25)
	bseq := append([]byte(nil), a...)
	bseq[40] = 'G'

	dg := &DiGraph{
		Contigs: [][]byte{bytes.Repeat([]byte("A"), 100), a, bytes.Repeat([]byte("C"), 100), bytes.Repeat([]byte("G"), 100), bseq},
		Weight:  []int64{8, 5, 8, 8, 4},
		Removed: make([]bool, 5),
		Out:     make([][]Edge, 5),
		In:      make([][]Edge, 5),
	}
	add := func(f, to int32) {
		e := Edge{From: f, To: to, Diag: 60, Len: 40, Ident: 1}
		dg.Out[f] = append(dg.Out[f], e)
		dg.In[to] = append(dg.In[to], e)
	}
	add(0, 1)
	add(0, 4)
	add(1, 2)
	add(4, 2)
	add(2, 3)

	pool, err := dist.NewLocalPool(2, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Branches 1 and 4 in different partitions.
	d, err := NewDriver(pool, dg, []int32{0, 0, 1, 1, 1}, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vars, err := d.CallVariants(DefaultVariantConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 {
		t.Fatalf("variants = %+v, want exactly 1 after dedup", vars)
	}
	if vars[0].Kind != VariantSubstitution || vars[0].Mismatches != 1 {
		t.Errorf("variant = %+v", vars[0])
	}
}
