package assembly

import (
	"fmt"

	"focus/internal/dist"
	"focus/internal/dna"
)

// This file gives every hot RPC payload of the assembly service a
// hand-written binary encoding (dist.Wire), bypassing gob on the binary
// codec. The encodings lean on the payloads' structure: node/edge id
// lists are delta-zigzag varints (partition-sorted ids collapse to ~1
// byte each), contigs ship 2-bit packed via dna.Pack, and configs are
// plain varint/float fields. Decoders copy everything they keep — the
// source buffer is the codec's pooled frame and dies when DecodeFrom
// returns (see the Wire contract in dist and DESIGN.md §10).
//
// nil and empty slices round-trip distinctly (dist.AppendLen), so decoded
// values are reflect.DeepEqual to their originals.

// Compile-time interface checks: every RPC body of the service must stay
// a Wire implementer (a silently dropped method would fall back to gob
// and quietly lose the wire-size win).
var (
	_ dist.Wire = (*PhaseArgs)(nil)
	_ dist.Wire = (*VariantArgs)(nil)
	_ dist.Wire = (*EdgeReply)(nil)
	_ dist.Wire = (*RemovalReply)(nil)
	_ dist.Wire = (*PathsReply)(nil)
	_ dist.Wire = (*VariantsReply)(nil)
	_ dist.Wire = (*LoadArgs)(nil)
	_ dist.Wire = (*LoadReply)(nil)
	_ dist.Wire = (*PhaseArgsStateful)(nil)
	_ dist.Wire = (*PhaseReplyStateful)(nil)
)

// boundLen rejects decoded element counts larger than the bytes left in
// the frame (every element encodes to ≥1 byte), so a corrupt length makes
// a decode error instead of a huge allocation.
func boundLen(rd *dist.WireReader, n int) int {
	if n < 0 || n > rd.Remaining() {
		rd.Fail(fmt.Errorf("assembly: wire: %d elements with %d bytes left", n, rd.Remaining()))
		return 0
	}
	return n
}

// appendContig appends the 2-bit packed sequence; the presence bit rides
// in the node's Part varint (see appendSubgraph), so absent contigs cost
// nothing here.
func appendContig(dst, contig []byte) []byte {
	if contig != nil {
		dst = dna.Pack(dst, contig)
	}
	return dst
}

func decodeContig(rd *dist.WireReader, present bool) []byte {
	if !present {
		return nil
	}
	rest := rd.Unread()
	seq, tail, err := dna.Unpack(nil, rest)
	if err != nil {
		rd.Fail(err)
		return nil
	}
	rd.Skip(len(rest) - len(tail))
	if seq == nil {
		seq = []byte{} // present-but-empty stays non-nil
	}
	return seq
}

func appendConfig(dst []byte, c *Config) []byte {
	dst = dist.AppendVarint(dst, int64(c.MinEdgeOverlap))
	dst = dist.AppendFloat64(dst, c.MinEdgeIdentity)
	dst = dist.AppendVarint(dst, int64(c.Band))
	dst = dist.AppendVarint(dst, int64(c.DiagTolerance))
	dst = dist.AppendVarint(dst, int64(c.MaxTipNodes))
	dst = dist.AppendVarint(dst, int64(c.MinTipLen))
	dst = dist.AppendVarint(dst, int64(c.RPCRetries))
	dst = dist.AppendBool(dst, c.Stateful)
	dst = append(dst, byte(c.Engine))
	return dist.AppendVarint(dst, int64(c.Workers))
}

func decodeConfig(rd *dist.WireReader, c *Config) {
	c.MinEdgeOverlap = int(rd.Varint())
	c.MinEdgeIdentity = rd.Float64()
	c.Band = int(rd.Varint())
	c.DiagTolerance = int(rd.Varint())
	c.MaxTipNodes = int(rd.Varint())
	c.MinTipLen = int(rd.Varint())
	c.RPCRetries = int(rd.Varint())
	c.Stateful = rd.Bool()
	c.Engine = PhaseEngine(rd.Byte())
	c.Workers = int(rd.Varint())
}

func appendVariantConfig(dst []byte, c *VariantConfig) []byte {
	dst = dist.AppendVarint(dst, c.MinBranchCov)
	dst = dist.AppendVarint(dst, int64(c.MaxLenDiff))
	dst = dist.AppendVarint(dst, int64(c.Band))
	return dist.AppendFloat64(dst, c.MinIdentity)
}

func decodeVariantConfig(rd *dist.WireReader, c *VariantConfig) {
	c.MinBranchCov = rd.Varint()
	c.MaxLenDiff = int(rd.Varint())
	c.Band = int(rd.Varint())
	c.MinIdentity = rd.Float64()
}

// appendEdges encodes an edge list: From delta-coded against the previous
// edge's From (edge lists are emitted grouped by source node) with the
// Contain flag folded into the delta varint's low bit, To against its own
// From (graph locality keeps the gap small), and Len delta-coded against
// the previous edge's Len (overlap lengths cluster tightly, so the delta
// usually fits one byte where the absolute value needs two).
func appendEdges(dst []byte, es []Edge) []byte {
	dst = dist.AppendLen(dst, len(es), es != nil)
	prevFrom, prevLen := int64(0), int64(0)
	for i := range es {
		e := &es[i]
		d := int64(e.From) - prevFrom
		tok := (uint64(d<<1)^uint64(d>>63))<<1 | 0 // zigzag(delta)<<1 | contain
		if e.Contain {
			tok |= 1
		}
		dst = dist.AppendUvarint(dst, tok)
		prevFrom = int64(e.From)
		dst = dist.AppendVarint(dst, int64(e.To)-int64(e.From))
		dst = dist.AppendVarint(dst, int64(e.Diag))
		dst = dist.AppendVarint(dst, int64(e.Len)-prevLen)
		prevLen = int64(e.Len)
		dst = dist.AppendFloat32(dst, e.Ident)
	}
	return dst
}

func decodeEdges(rd *dist.WireReader) []Edge {
	n, present := rd.Len()
	if !present {
		return nil
	}
	es := make([]Edge, boundLen(rd, n))
	prevFrom, prevLen := int64(0), int64(0)
	for i := range es {
		e := &es[i]
		tok := rd.Uvarint()
		e.Contain = tok&1 != 0
		z := tok >> 1
		prevFrom += int64(z>>1) ^ -int64(z&1) // unzigzag
		e.From = int32(prevFrom)
		e.To = int32(prevFrom + rd.Varint())
		e.Diag = int32(rd.Varint())
		prevLen += rd.Varint()
		e.Len = int32(prevLen)
		e.Ident = rd.Float32()
	}
	return es
}

func appendEdgePairs(dst []byte, ps []EdgePair) []byte {
	dst = dist.AppendLen(dst, len(ps), ps != nil)
	prevFrom := int64(0)
	for _, p := range ps {
		dst = dist.AppendVarint(dst, int64(p.From)-prevFrom)
		prevFrom = int64(p.From)
		dst = dist.AppendVarint(dst, int64(p.To)-int64(p.From))
	}
	return dst
}

func decodeEdgePairs(rd *dist.WireReader) []EdgePair {
	n, present := rd.Len()
	if !present {
		return nil
	}
	ps := make([]EdgePair, boundLen(rd, n))
	prevFrom := int64(0)
	for i := range ps {
		prevFrom += rd.Varint()
		ps[i].From = int32(prevFrom)
		ps[i].To = int32(prevFrom + rd.Varint())
	}
	return ps
}

func appendPaths(dst []byte, paths [][]int32) []byte {
	dst = dist.AppendLen(dst, len(paths), paths != nil)
	for _, p := range paths {
		dst = dist.AppendInt32sDelta(dst, p)
	}
	return dst
}

func decodePaths(rd *dist.WireReader) [][]int32 {
	n, present := rd.Len()
	if !present {
		return nil
	}
	paths := make([][]int32, boundLen(rd, n))
	for i := range paths {
		paths[i] = rd.Int32sDelta()
	}
	return paths
}

func appendRemoval(dst []byte, r *Removal) []byte {
	dst = dist.AppendInt32sDelta(dst, r.Nodes)
	return appendEdgePairs(dst, r.Edges)
}

func decodeRemoval(rd *dist.WireReader, r *Removal) {
	r.Nodes = rd.Int32sDelta()
	r.Edges = decodeEdgePairs(rd)
}

func appendVariants(dst []byte, vs []Variant) []byte {
	dst = dist.AppendLen(dst, len(vs), vs != nil)
	for i := range vs {
		v := &vs[i]
		dst = dist.AppendVarint(dst, int64(v.From))
		dst = dist.AppendVarint(dst, int64(v.To))
		dst = dist.AppendVarint(dst, int64(v.AlleleA))
		dst = dist.AppendVarint(dst, int64(v.AlleleB)-int64(v.AlleleA))
		dst = dist.AppendVarint(dst, v.CovA)
		dst = dist.AppendVarint(dst, v.CovB)
		dst = dist.AppendVarint(dst, int64(v.LenA))
		dst = dist.AppendVarint(dst, int64(v.LenB))
		dst = dist.AppendFloat64(dst, v.Identity)
		dst = dist.AppendVarint(dst, int64(v.Mismatches))
		dst = append(dst, byte(v.Kind))
		dst = dist.AppendBool(dst, v.Reconverges)
	}
	return dst
}

func decodeVariants(rd *dist.WireReader) []Variant {
	n, present := rd.Len()
	if !present {
		return nil
	}
	vs := make([]Variant, boundLen(rd, n))
	for i := range vs {
		v := &vs[i]
		v.From = int32(rd.Varint())
		v.To = int32(rd.Varint())
		v.AlleleA = int32(rd.Varint())
		v.AlleleB = int32(int64(v.AlleleA) + rd.Varint())
		v.CovA = rd.Varint()
		v.CovB = rd.Varint()
		v.LenA = int32(rd.Varint())
		v.LenB = int32(rd.Varint())
		v.Identity = rd.Float64()
		v.Mismatches = int32(rd.Varint())
		v.Kind = VariantKind(rd.Byte())
		v.Reconverges = rd.Bool()
	}
	return vs
}

func appendSubgraph(dst []byte, s *Subgraph) []byte {
	dst = dist.AppendVarint(dst, int64(s.Part))
	dst = dist.AppendInt32sDelta(dst, s.Local)
	dst = dist.AppendLen(dst, len(s.Nodes), s.Nodes != nil)
	prev := int64(0)
	for i := range s.Nodes {
		n := &s.Nodes[i]
		dst = dist.AppendVarint(dst, int64(n.ID)-prev)
		prev = int64(n.ID)
		part := int64(n.Part) << 1 // low bit: contig present
		if n.Contig != nil {
			part |= 1
		}
		dst = dist.AppendVarint(dst, part)
		dst = dist.AppendVarint(dst, n.Weight)
		dst = appendContig(dst, n.Contig)
	}
	return appendEdges(dst, s.Edges)
}

func decodeSubgraph(rd *dist.WireReader, s *Subgraph) {
	s.Part = int32(rd.Varint())
	s.Local = rd.Int32sDelta()
	n, present := rd.Len()
	if !present {
		s.Nodes = nil
	} else {
		s.Nodes = make([]WireNode, boundLen(rd, n))
		prev := int64(0)
		for i := range s.Nodes {
			wn := &s.Nodes[i]
			prev += rd.Varint()
			wn.ID = int32(prev)
			part := rd.Varint()
			wn.Part = int32(part >> 1)
			wn.Weight = rd.Varint()
			wn.Contig = decodeContig(rd, part&1 != 0)
		}
	}
	s.Edges = decodeEdges(rd)
}

func appendDelta(dst []byte, d *Delta) []byte {
	dst = dist.AppendInt32sDelta(dst, d.RemovedNodes)
	return appendEdgePairs(dst, d.RemovedEdges)
}

func decodeDelta(rd *dist.WireReader, d *Delta) {
	d.RemovedNodes = rd.Int32sDelta()
	d.RemovedEdges = decodeEdgePairs(rd)
}

// AppendTo implements dist.Wire.
func (a *PhaseArgs) AppendTo(dst []byte) []byte {
	dst = appendSubgraph(dst, &a.Sub)
	return appendConfig(dst, &a.Cfg)
}

// DecodeFrom implements dist.Wire.
func (a *PhaseArgs) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	decodeSubgraph(&rd, &a.Sub)
	decodeConfig(&rd, &a.Cfg)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (a *VariantArgs) AppendTo(dst []byte) []byte {
	dst = appendSubgraph(dst, &a.Sub)
	return appendVariantConfig(dst, &a.Cfg)
}

// DecodeFrom implements dist.Wire.
func (a *VariantArgs) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	decodeSubgraph(&rd, &a.Sub)
	decodeVariantConfig(&rd, &a.Cfg)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *EdgeReply) AppendTo(dst []byte) []byte {
	return appendEdgePairs(dst, r.Edges)
}

// DecodeFrom implements dist.Wire.
func (r *EdgeReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	r.Edges = decodeEdgePairs(&rd)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *RemovalReply) AppendTo(dst []byte) []byte {
	return appendRemoval(dst, &r.Removal)
}

// DecodeFrom implements dist.Wire.
func (r *RemovalReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	decodeRemoval(&rd, &r.Removal)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *PathsReply) AppendTo(dst []byte) []byte {
	return appendPaths(dst, r.Paths)
}

// DecodeFrom implements dist.Wire.
func (r *PathsReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	r.Paths = decodePaths(&rd)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *VariantsReply) AppendTo(dst []byte) []byte {
	return appendVariants(dst, r.Variants)
}

// DecodeFrom implements dist.Wire.
func (r *VariantsReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	r.Variants = decodeVariants(&rd)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (a *LoadArgs) AppendTo(dst []byte) []byte {
	dst = dist.AppendString(dst, a.RunID)
	dst = dist.AppendVarint(dst, a.Epoch)
	dst = appendSubgraph(dst, &a.Sub)
	return appendConfig(dst, &a.Cfg)
}

// DecodeFrom implements dist.Wire.
func (a *LoadArgs) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	a.RunID = rd.String()
	a.Epoch = rd.Varint()
	decodeSubgraph(&rd, &a.Sub)
	decodeConfig(&rd, &a.Cfg)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *LoadReply) AppendTo(dst []byte) []byte {
	dst = dist.AppendVarint(dst, int64(r.Nodes))
	return dist.AppendVarint(dst, int64(r.Edges))
}

// DecodeFrom implements dist.Wire.
func (r *LoadReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	r.Nodes = int(rd.Varint())
	r.Edges = int(rd.Varint())
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (a *PhaseArgsStateful) AppendTo(dst []byte) []byte {
	dst = dist.AppendString(dst, a.RunID)
	dst = dist.AppendVarint(dst, int64(a.Part))
	dst = dist.AppendString(dst, a.Phase)
	dst = dist.AppendVarint(dst, a.Epoch)
	dst = appendDelta(dst, &a.Delta)
	dst = appendConfig(dst, &a.Cfg)
	return appendVariantConfig(dst, &a.VCfg)
}

// DecodeFrom implements dist.Wire.
func (a *PhaseArgsStateful) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	a.RunID = rd.String()
	a.Part = int32(rd.Varint())
	a.Phase = rd.String()
	a.Epoch = rd.Varint()
	decodeDelta(&rd, &a.Delta)
	decodeConfig(&rd, &a.Cfg)
	decodeVariantConfig(&rd, &a.VCfg)
	return rd.Finish()
}

// AppendTo implements dist.Wire.
func (r *PhaseReplyStateful) AppendTo(dst []byte) []byte {
	dst = appendEdgePairs(dst, r.Edges)
	dst = appendRemoval(dst, &r.Removal)
	dst = appendPaths(dst, r.Paths)
	return appendVariants(dst, r.Variants)
}

// DecodeFrom implements dist.Wire.
func (r *PhaseReplyStateful) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	r.Edges = decodeEdgePairs(&rd)
	decodeRemoval(&rd, &r.Removal)
	r.Paths = decodePaths(&rd)
	r.Variants = decodeVariants(&rd)
	return rd.Finish()
}
