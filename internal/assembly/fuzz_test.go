package assembly

import (
	"testing"

	"focus/internal/dist"
)

// fuzzWireTargets enumerates every dist.Wire payload type of the assembly
// protocol plus the checkpoint payload; the selector byte picks one so a
// single corpus covers them all.
func fuzzWireTarget(sel byte) dist.Wire {
	switch sel % 11 {
	case 0:
		return &PhaseArgs{}
	case 1:
		return &VariantArgs{}
	case 2:
		return &EdgeReply{}
	case 3:
		return &RemovalReply{}
	case 4:
		return &PathsReply{}
	case 5:
		return &VariantsReply{}
	case 6:
		return &LoadArgs{}
	case 7:
		return &LoadReply{}
	case 8:
		return &PhaseArgsStateful{}
	case 9:
		return &PhaseReplyStateful{}
	default:
		return &CheckpointState{}
	}
}

// FuzzWireDecoders throws arbitrary bytes at every assembly Wire decoder:
// whatever the input, DecodeFrom must return an error or a value — never
// panic, never allocate beyond the input's implied size — and any value it
// accepts must survive a re-encode/re-decode cycle.
func FuzzWireDecoders(f *testing.F) {
	// One valid encoding per payload type as seeds.
	seed := func(sel byte, w dist.Wire) { f.Add(sel, w.AppendTo(nil)) }
	seed(0, &PhaseArgs{Sub: Subgraph{Part: 1, Local: []int32{0, 1}}, Cfg: DefaultConfig()})
	seed(2, &EdgeReply{Edges: []EdgePair{{From: 1, To: 2}}})
	seed(3, &RemovalReply{Removal: Removal{Nodes: []int32{3}, Edges: []EdgePair{{From: 0, To: 3}}}})
	seed(4, &PathsReply{Paths: [][]int32{{0, 1, 2}, {5}}})
	seed(5, &VariantsReply{Variants: []Variant{{From: 1, To: 2, AlleleA: 3, AlleleB: 4, Identity: 0.9}}})
	seed(6, &LoadArgs{RunID: "run-1", Epoch: 7, Sub: Subgraph{Part: 0, Local: []int32{0}}})
	seed(7, &LoadReply{})
	seed(8, &PhaseArgsStateful{RunID: "run-1", Part: 2, Phase: "Errors", Epoch: 9})
	seed(10, &CheckpointState{
		Done: []string{"Transitive"},
		K:    2, Labels: []int32{0, 0},
		Graph: &DiGraph{
			Contigs: [][]byte{[]byte("ACGT"), []byte("GTTA")},
			Weight:  []int64{1, 2},
			Removed: []bool{false, false},
			Out:     [][]Edge{{{From: 0, To: 1, Len: 2, Ident: 1}}, nil},
			In:      [][]Edge{nil, {{From: 0, To: 1, Len: 2, Ident: 1}}},
		},
	})
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		w := fuzzWireTarget(sel)
		if err := w.DecodeFrom(data); err != nil {
			return
		}
		// Accepted values must re-encode and re-decode cleanly: the codec
		// cannot emit frames its own decoder rejects.
		again := fuzzWireTarget(sel)
		if err := again.DecodeFrom(w.AppendTo(nil)); err != nil {
			t.Fatalf("re-decode of accepted %T failed: %v", w, err)
		}
	})
}
