package assembly

import (
	"bytes"
	"testing"
)

// chainSub builds a subgraph: nodes 0..n-1 in a chain with contigs of
// length 100 overlapping by 40 (diag 60), all in partition 0 and local.
func chainSub(n int) *Subgraph {
	sub := &Subgraph{Part: 0}
	for i := 0; i < n; i++ {
		sub.Local = append(sub.Local, int32(i))
		sub.Nodes = append(sub.Nodes, WireNode{ID: int32(i), Part: 0, Weight: 5, Contig: bytes.Repeat([]byte("A"), 100)})
		if i > 0 {
			sub.Edges = append(sub.Edges, Edge{From: int32(i - 1), To: int32(i), Diag: 60, Len: 40, Ident: 1})
		}
	}
	return sub
}

func TestTransitiveEdges(t *testing.T) {
	sub := chainSub(3)
	// Add the transitive edge 0->2 (diag 120 = 60+60).
	sub.Edges = append(sub.Edges, Edge{From: 0, To: 2, Diag: 120, Len: 10, Ident: 1})
	got := TransitiveEdges(sub, DefaultConfig())
	if len(got) != 1 || got[0] != (EdgePair{From: 0, To: 2}) {
		t.Errorf("transitive edges = %v", got)
	}
}

func TestTransitiveEdgesRespectsTolerance(t *testing.T) {
	sub := chainSub(3)
	// Edge 0->2 with diag far from 120: not transitive.
	sub.Edges = append(sub.Edges, Edge{From: 0, To: 2, Diag: 90, Len: 10, Ident: 1})
	cfg := DefaultConfig()
	cfg.DiagTolerance = 5
	if got := TransitiveEdges(sub, cfg); len(got) != 0 {
		t.Errorf("transitive edges = %v, want none", got)
	}
}

func TestTransitiveEdgesNoFalsePositiveOnPlainChain(t *testing.T) {
	if got := TransitiveEdges(chainSub(5), DefaultConfig()); len(got) != 0 {
		t.Errorf("chain reported transitive edges: %v", got)
	}
}

func TestContainmentScan(t *testing.T) {
	genomeLike := bytes.Repeat([]byte("ACGT"), 60) // 240 bp
	long := genomeLike
	short := genomeLike[50:150]
	sub := &Subgraph{
		Part:  0,
		Local: []int32{0, 1},
		Nodes: []WireNode{
			{ID: 0, Part: 0, Weight: 10, Contig: long},
			{ID: 1, Part: 0, Weight: 2, Contig: short},
		},
		Edges: []Edge{{From: 0, To: 1, Diag: 50, Len: 100, Ident: 1, Contain: true}},
	}
	rm := ContainmentScan(sub, DefaultConfig())
	if len(rm.Nodes) != 1 || rm.Nodes[0] != 1 {
		t.Errorf("contained nodes = %v, want [1]", rm.Nodes)
	}
	if len(rm.Edges) != 0 {
		t.Errorf("false edges = %v", rm.Edges)
	}
}

func TestContainmentScanFalseEdge(t *testing.T) {
	// Two unrelated contigs with a bogus edge claiming a 30bp overlap:
	// below the 50bp minimum, the edge must be recorded for removal.
	a := bytes.Repeat([]byte("ACGT"), 30)
	b := bytes.Repeat([]byte("TTGA"), 30)
	sub := &Subgraph{
		Part:  0,
		Local: []int32{0, 1},
		Nodes: []WireNode{
			{ID: 0, Part: 0, Contig: a},
			{ID: 1, Part: 0, Contig: b},
		},
		Edges: []Edge{{From: 0, To: 1, Diag: 90, Len: 30, Ident: 1}},
	}
	rm := ContainmentScan(sub, DefaultConfig())
	if len(rm.Edges) != 1 || rm.Edges[0] != (EdgePair{From: 0, To: 1}) {
		t.Errorf("false edges = %v", rm.Edges)
	}
	if len(rm.Nodes) != 0 {
		t.Errorf("nodes = %v", rm.Nodes)
	}
}

func TestErrorScanDeadEnd(t *testing.T) {
	// Main chain 0->1->2->3 plus a short tip 4->1 (4 has no in-edges and
	// a single out into a node with other ins).
	sub := chainSub(4)
	sub.Local = append(sub.Local, 4)
	sub.Nodes = append(sub.Nodes, WireNode{ID: 4, Part: 0, Weight: 1, Contig: bytes.Repeat([]byte("C"), 80)})
	// The tip's attaching edge (len 30) is lighter than the main chain's
	// edge into node 1 (len 40), so the tip is the minority branch.
	sub.Edges = append(sub.Edges, Edge{From: 4, To: 1, Diag: 50, Len: 30, Ident: 1})
	cfg := DefaultConfig()
	rm := ErrorScan(sub, cfg)
	if len(rm.Nodes) != 1 || rm.Nodes[0] != 4 {
		t.Errorf("dead ends = %v, want [4]", rm.Nodes)
	}
}

func TestErrorScanKeepsLongDeadEnd(t *testing.T) {
	sub := chainSub(4)
	sub.Local = append(sub.Local, 4)
	// Tip longer than MinTipLen: kept.
	sub.Nodes = append(sub.Nodes, WireNode{ID: 4, Part: 0, Weight: 1, Contig: bytes.Repeat([]byte("C"), 2000)})
	sub.Edges = append(sub.Edges, Edge{From: 4, To: 1, Diag: 1970, Len: 30, Ident: 1})
	rm := ErrorScan(sub, DefaultConfig())
	if len(rm.Nodes) != 0 {
		t.Errorf("long dead end removed: %v", rm.Nodes)
	}
}

func TestErrorScanBubble(t *testing.T) {
	// 0 -> {1, 4} -> 2 -> 3 : 1 and 4 form a bubble; 4 has lower weight.
	sub := chainSub(4)
	sub.Local = append(sub.Local, 4)
	sub.Nodes = append(sub.Nodes, WireNode{ID: 4, Part: 0, Weight: 1, Contig: bytes.Repeat([]byte("G"), 100)})
	sub.Edges = append(sub.Edges,
		Edge{From: 0, To: 4, Diag: 60, Len: 40, Ident: 1},
		Edge{From: 4, To: 2, Diag: 60, Len: 40, Ident: 1},
	)
	rm := ErrorScan(sub, DefaultConfig())
	if len(rm.Nodes) != 1 || rm.Nodes[0] != 4 {
		t.Errorf("bubble removal = %v, want [4]", rm.Nodes)
	}
}

func TestErrorScanBubbleDeterministicVictim(t *testing.T) {
	// Equal weights and contig lengths: the higher id loses.
	sub := chainSub(4)
	sub.Local = append(sub.Local, 4)
	sub.Nodes = append(sub.Nodes, WireNode{ID: 4, Part: 0, Weight: 5, Contig: bytes.Repeat([]byte("G"), 100)})
	sub.Edges = append(sub.Edges,
		Edge{From: 0, To: 4, Diag: 60, Len: 40, Ident: 1},
		Edge{From: 4, To: 2, Diag: 60, Len: 40, Ident: 1},
	)
	rm := ErrorScan(sub, DefaultConfig())
	if len(rm.Nodes) != 1 || rm.Nodes[0] != 4 {
		t.Errorf("victim = %v, want [4] (higher id)", rm.Nodes)
	}
}

func TestExtractPathsChain(t *testing.T) {
	paths := ExtractPaths(chainSub(5), DefaultConfig())
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	want := []int32{0, 1, 2, 3, 4}
	for i, v := range want {
		if paths[0][i] != v {
			t.Fatalf("path = %v, want %v", paths[0], want)
		}
	}
}

func TestExtractPathsStopsAtPartitionBoundary(t *testing.T) {
	sub := chainSub(5)
	// Nodes 3,4 belong to another partition: not local, different part.
	sub.Local = sub.Local[:3]
	sub.Nodes[3].Part = 1
	sub.Nodes[4].Part = 1
	paths := ExtractPaths(sub, DefaultConfig())
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestExtractPathsStopsAtBranch(t *testing.T) {
	sub := chainSub(4)
	// Extra edge 0->2 makes node 2 have two in-edges: the path must not
	// cross it during right-extension from 1... specifically 1->2 is not
	// z's only in-edge.
	sub.Edges = append(sub.Edges, Edge{From: 0, To: 2, Diag: 120, Len: 20, Ident: 1})
	paths := ExtractPaths(sub, DefaultConfig())
	// Node 0 now branches (two out-edges) and node 2 has two in-edges:
	// expect {0}, {1}, {2,3}.
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	total := 0
	for _, p := range paths {
		total += len(p)
	}
	if total != 4 {
		t.Fatalf("paths do not cover all nodes: %v", paths)
	}
}

func TestExtractPathsCycleTerminates(t *testing.T) {
	sub := chainSub(4)
	sub.Edges = append(sub.Edges, Edge{From: 3, To: 0, Diag: 60, Len: 40, Ident: 1})
	paths := ExtractPaths(sub, DefaultConfig())
	total := 0
	for _, p := range paths {
		total += len(p)
	}
	if total != 4 {
		t.Fatalf("cycle paths cover %d nodes: %v", total, paths)
	}
}

func TestComputeStats(t *testing.T) {
	mk := func(n int) []byte { return bytes.Repeat([]byte("A"), n) }
	st := ComputeStats([][]byte{mk(100), mk(200), mk(300), mk(400)})
	if st.NumContigs != 4 || st.TotalBases != 1000 || st.MaxContig != 400 {
		t.Errorf("stats = %+v", st)
	}
	// Sorted desc: 400 (cum 400) < 500, then 300 (cum 700) >= 500.
	if st.N50 != 300 {
		t.Errorf("N50 = %d, want 300", st.N50)
	}
	if st.MeanLen != 250 {
		t.Errorf("MeanLen = %v", st.MeanLen)
	}
	empty := ComputeStats(nil)
	if empty.NumContigs != 0 || empty.N50 != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestDiGraphMutations(t *testing.T) {
	g := &DiGraph{
		Contigs: [][]byte{[]byte("AAAA"), []byte("CCCC"), []byte("GGGG")},
		Weight:  []int64{1, 1, 1},
		Removed: make([]bool, 3),
		Out:     make([][]Edge, 3),
		In:      make([][]Edge, 3),
	}
	add := func(f, to int32) {
		e := Edge{From: f, To: to, Diag: 2, Len: 2, Ident: 1}
		g.Out[f] = append(g.Out[f], e)
		g.In[to] = append(g.In[to], e)
	}
	add(0, 1)
	add(1, 2)
	add(0, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumLive() != 3 {
		t.Fatalf("edges=%d live=%d", g.NumEdges(), g.NumLive())
	}
	if _, ok := g.OutEdge(0, 1); !ok {
		t.Fatal("OutEdge(0,1) missing")
	}
	g.RemoveEdge(0, 2)
	if _, ok := g.OutEdge(0, 2); ok {
		t.Fatal("edge 0->2 still present")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(1)
	if g.NumLive() != 2 || g.NumEdges() != 0 {
		t.Fatalf("after node removal: live=%d edges=%d", g.NumLive(), g.NumEdges())
	}
	g.RemoveNode(1) // idempotent
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
