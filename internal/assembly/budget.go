package assembly

import (
	"context"
	"errors"
	"fmt"
	"time"

	"focus/internal/metrics"
)

// Per-run deadline budgets (DESIGN.md §13). A run context carrying a
// deadline is split into per-phase budgets: each phase gets twice its
// weighted share of the remaining time (weights come from a
// metrics.CostModel fed by measured phase durations, seeded with static
// priors), clamped to [minPhaseBudget, time-to-run-deadline]. The 2×
// slack means an on-model run never trips a phase budget while a single
// wedged phase is cut well before it can eat the whole run's remaining
// time — the later phases' shares are still intact when it is cut.

// ErrPhaseBudget is the cancellation cause when a phase exceeds its slice
// of the run deadline. errors.Is(err, context.DeadlineExceeded) also
// holds on errors derived from it, since the budget is a context deadline.
var ErrPhaseBudget = errors.New("assembly: phase deadline budget exhausted")

// phaseOrder is the canonical phase sequence of a full variant-calling
// run (plain Trim runs skip Variants). Budget arithmetic uses the tail of
// this order as "remaining phases"; including Variants in a run that will
// not execute it only makes the estimate conservative, which the 2×
// slack absorbs.
var phaseOrder = []string{"Transitive", "Variants", "Containment", "Errors", "Paths"}

// phasePriors weight the phases before any measurement exists: the two
// all-pairs scans (transitive reduction, containment) dominate; the
// linear scans are cheap.
var phasePriors = map[string]float64{
	"Transitive":  3,
	"Variants":    1,
	"Containment": 3,
	"Errors":      1,
	"Paths":       1,
}

// minPhaseBudget floors every phase budget: a model gone confidently
// wrong (one tiny observation) must not hand a phase a microsecond slice.
const minPhaseBudget = 100 * time.Millisecond

// SetContext bounds the whole run by ctx: cancellation (explicit, signal,
// or deadline) stops every subsequent — and the currently running — phase
// at the next grain boundary. When ctx carries a deadline, each phase
// additionally runs under its budgeted slice of the remaining time. Call
// before the first phase; a nil ctx (the default) means unbounded.
func (d *Driver) SetContext(ctx context.Context) { d.runCtx = ctx }

// SetCostModel replaces the per-phase cost model used to split the run
// deadline into phase budgets. A resident master shares one model across
// all jobs on a fleet, so the first job's measured phase durations inform
// every later job's budgets. Nil keeps the default (a fresh model lazily
// created from the static priors). Call before the first phase.
func (d *Driver) SetCostModel(m *metrics.CostModel) {
	if m != nil {
		d.costs = m
	}
}

// PhasePriors returns a copy of the static phase-weight priors, so a
// caller building a shared CostModel seeds it exactly as the driver
// would seed its private one.
func PhasePriors() map[string]float64 {
	priors := make(map[string]float64, len(phasePriors))
	for ph, w := range phasePriors {
		priors[ph] = w
	}
	return priors
}

// remainingPhases returns the canonical tail of the phase order starting
// at phase (the phase itself included).
func remainingPhases(phase string) []string {
	for i, ph := range phaseOrder {
		if ph == phase {
			return phaseOrder[i:]
		}
	}
	return []string{phase}
}

// phaseContext derives the context one phase runs under from the run
// context: the phase's deadline budget (when the run has a deadline) and
// the watchdog's cancel authority (when one is enabled) stack on top of
// d.runCtx. The returned finish func must be deferred: it stops the
// watchdog, feeds the phase's duration back into the cost model, and
// releases the derived contexts. With no run context and no watchdog it
// returns a nil context — the zero-cost path everywhere downstream.
func (d *Driver) phaseContext(phase string) (context.Context, func()) {
	watchdog := d.wd != nil && d.Pool != nil && !d.localOnly
	if d.runCtx == nil && !watchdog {
		return nil, func() {}
	}
	base := d.runCtx
	if base == nil {
		base = context.Background()
	}
	ctx := base
	var cancels []func()
	if runDeadline, ok := base.Deadline(); ok {
		if d.costs == nil {
			d.costs = metrics.NewCostModel(phasePriors, 0)
		}
		remaining := time.Until(runDeadline)
		shares := d.costs.Split(remaining, remainingPhases(phase))
		budget := 2 * shares[0]
		if budget < minPhaseBudget {
			budget = minPhaseBudget
		}
		if budget > remaining {
			budget = remaining
		}
		cause := fmt.Errorf("assembly: %s phase: %w", phase, ErrPhaseBudget)
		dctx, dcancel := context.WithDeadlineCause(ctx, time.Now().Add(budget), cause)
		ctx = dctx
		cancels = append(cancels, dcancel)
	}
	var stopWd func()
	if watchdog {
		wctx, wcancel := context.WithCancelCause(ctx)
		ctx = wctx
		cancels = append(cancels, func() { wcancel(nil) })
		stopWd = d.startWatchdog(wctx, wcancel, phase)
	}
	start := time.Now()
	finish := func() {
		if stopWd != nil {
			stopWd()
		}
		// Only completed phases teach the model: a canceled phase's
		// truncated duration would read as "cheap".
		if d.costs != nil && ctx.Err() == nil {
			d.costs.Observe(phase, time.Since(start))
		}
		for _, c := range cancels {
			c()
		}
	}
	return ctx, finish
}
