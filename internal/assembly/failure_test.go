package assembly

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"focus/internal/dist"
)

// FlakyService fails a configurable subset of calls, simulating worker
// faults. It embeds the real service so non-failing calls behave
// normally.
type FlakyService struct {
	Service
	calls     int64
	FailEvery int64 // every n-th call fails (1 = always)
}

func (f *FlakyService) Transitive(args *PhaseArgs, reply *EdgeReply) error {
	if n := atomic.AddInt64(&f.calls, 1); f.FailEvery > 0 && n%f.FailEvery == 0 {
		return errors.New("injected worker fault")
	}
	return f.Service.Transitive(args, reply)
}

func flakyDriver(t *testing.T, failEvery int64, workers, k int) (*Driver, *dist.Pool) {
	t.Helper()
	dg := &DiGraph{
		Contigs: make([][]byte, 6),
		Weight:  make([]int64, 6),
		Removed: make([]bool, 6),
		Out:     make([][]Edge, 6),
		In:      make([][]Edge, 6),
	}
	labels := make([]int32, 6)
	for i := range dg.Contigs {
		dg.Contigs[i] = bytes.Repeat([]byte("A"), 100)
		dg.Weight[i] = 1
		labels[i] = int32(i % k)
	}
	pool, err := dist.NewLocalPool(workers, func() interface{} {
		return &FlakyService{FailEvery: failEvery}
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriver(pool, dg, labels, k, DefaultConfig())
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return d, pool
}

func TestDriverPropagatesWorkerFault(t *testing.T) {
	d, pool := flakyDriver(t, 1, 2, 4) // every call fails
	defer pool.Close()
	if _, err := d.Trim(); err == nil {
		t.Fatal("worker fault not propagated")
	} else if !strings.Contains(err.Error(), "injected worker fault") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDriverPartialFaultStillFails(t *testing.T) {
	// Only some partitions fail (each worker's second Transitive call;
	// counters are per worker); the phase must still error rather than
	// silently proceed with partial results.
	d, pool := flakyDriver(t, 2, 2, 4)
	defer pool.Close()
	if _, err := d.Trim(); err == nil {
		t.Fatal("partial worker fault not propagated")
	}
}

func TestDriverRetriesRecoverFromPartialFault(t *testing.T) {
	// Same partial fault as above, but with one retry: the failed task
	// fails over to the other (healthy-at-that-call) worker and the
	// phase succeeds.
	d, pool := flakyDriver(t, 2, 2, 4)
	defer pool.Close()
	d.Cfg.RPCRetries = 1
	if _, err := d.Trim(); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
}

func TestDriverRetriesStillFailWhenAllWorkersFail(t *testing.T) {
	d, pool := flakyDriver(t, 1, 2, 4) // every call on every worker fails
	defer pool.Close()
	d.Cfg.RPCRetries = 3
	if _, err := d.Trim(); err == nil {
		t.Fatal("all-workers fault not propagated despite retries")
	}
}

func TestDriverHealthyFlakyServicePasses(t *testing.T) {
	d, pool := flakyDriver(t, 0, 2, 4) // FailEvery=0: never fails
	defer pool.Close()
	if _, err := d.Trim(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerDiesMidSession kills a TCP worker's connection between phases
// and checks the master surfaces the failure.
func TestWorkerDiesMidSession(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = dist.Serve(lis, &Service{}) }()

	pool, err := dist.DialPool([]string{lis.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	dg := &DiGraph{
		Contigs: [][]byte{bytes.Repeat([]byte("A"), 50)},
		Weight:  []int64{1},
		Removed: []bool{false},
		Out:     make([][]Edge, 1),
		In:      make([][]Edge, 1),
	}
	d, err := NewDriver(pool, dg, []int32{0}, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		t.Fatalf("healthy phase failed: %v", err)
	}
	// Kill the worker. Subsequent calls must fail, not hang.
	lis.Close()
	// Also close the client side's underlying conn by closing the pool
	// after the test; here the server side going away is what we detect.
	// The listener close alone doesn't kill the established conn, so dial
	// a second scenario: a fresh pool against a dead address.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if _, err := dist.DialPool([]string{addr}); err == nil {
		t.Fatal("dial to dead worker succeeded")
	}
}

func TestParallelCallsSurvivesMixedOutcomes(t *testing.T) {
	// 8 tasks over 2 flaky workers, each failing its 3rd call: the error
	// must be reported even though most tasks succeed.
	pool, err := dist.NewLocalPool(2, func() interface{} {
		return &FlakyService{FailEvery: 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	replies := make([]interface{}, 8)
	for i := range replies {
		replies[i] = &EdgeReply{}
	}
	sub := chainSub(3)
	_, err = pool.ParallelCalls(8, "Transitive", func(tk int) interface{} {
		return &PhaseArgs{Sub: *sub, Cfg: DefaultConfig()}
	}, replies)
	if err == nil {
		t.Fatal("expected at least one injected fault across 8 calls")
	}
}
