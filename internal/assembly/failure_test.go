package assembly

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"focus/internal/dist"
)

// FlakyService fails a configurable subset of calls, simulating worker
// faults. It embeds the real service so non-failing calls behave
// normally. When Calls is set the counter is shared across workers,
// making the fault pattern independent of how the scheduler interleaves
// tasks over them.
type FlakyService struct {
	Service
	calls     int64
	Calls     *int64 // shared counter; nil = per-worker
	FailEvery int64  // every n-th call fails (1 = always)
	FailAt    int64  // exactly the n-th call fails (0 = disabled)
}

func (f *FlakyService) Transitive(args *PhaseArgs, reply *EdgeReply) error {
	ctr := &f.calls
	if f.Calls != nil {
		ctr = f.Calls
	}
	n := atomic.AddInt64(ctr, 1)
	if (f.FailEvery > 0 && n%f.FailEvery == 0) || (f.FailAt > 0 && n == f.FailAt) {
		return errors.New("injected worker fault")
	}
	return f.Service.Transitive(args, reply)
}

func testDiGraph(k int) (*DiGraph, []int32) {
	dg := &DiGraph{
		Contigs: make([][]byte, 6),
		Weight:  make([]int64, 6),
		Removed: make([]bool, 6),
		Out:     make([][]Edge, 6),
		In:      make([][]Edge, 6),
	}
	labels := make([]int32, 6)
	for i := range dg.Contigs {
		dg.Contigs[i] = bytes.Repeat([]byte("A"), 100)
		dg.Weight[i] = 1
		labels[i] = int32(i % k)
	}
	return dg, labels
}

func poolDriver(t *testing.T, pool *dist.Pool, k int) *Driver {
	t.Helper()
	dg, labels := testDiGraph(k)
	d, err := NewDriver(pool, dg, labels, k, DefaultConfig())
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return d
}

func flakyDriver(t *testing.T, newService func() interface{}, workers, k int) (*Driver, *dist.Pool) {
	t.Helper()
	pool, err := dist.NewLocalPool(workers, newService)
	if err != nil {
		t.Fatal(err)
	}
	return poolDriver(t, pool, k), pool
}

func TestDriverPropagatesWorkerFault(t *testing.T) {
	d, pool := flakyDriver(t, func() interface{} {
		return &FlakyService{FailEvery: 1} // every call fails
	}, 2, 4)
	defer pool.Close()
	if _, err := d.Trim(); err == nil {
		t.Fatal("worker fault not propagated")
	} else if !strings.Contains(err.Error(), "injected worker fault") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDriverPartialFaultStillFails(t *testing.T) {
	// Exactly one call (the second across the whole pool) fails; without
	// retries the phase must still error rather than silently proceed
	// with partial results. These are application-level errors — the
	// answering worker is alive — so no fallback or eviction applies.
	var calls int64
	d, pool := flakyDriver(t, func() interface{} {
		return &FlakyService{Calls: &calls, FailAt: 2}
	}, 2, 4)
	defer pool.Close()
	if _, err := d.Trim(); err == nil {
		t.Fatal("partial worker fault not propagated")
	}
}

func TestDriverRetriesRecoverFromPartialFault(t *testing.T) {
	// Same single fault as above, but with one retry: the failed task is
	// rescheduled on the other worker (a task runs at most once per
	// worker), whose call number can no longer be 2, so the phase
	// recovers deterministically.
	var calls int64
	d, pool := flakyDriver(t, func() interface{} {
		return &FlakyService{Calls: &calls, FailAt: 2}
	}, 2, 4)
	defer pool.Close()
	d.Cfg.RPCRetries = 1
	if _, err := d.Trim(); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
}

func TestDriverRetriesStillFailWhenAllWorkersFail(t *testing.T) {
	d, pool := flakyDriver(t, func() interface{} {
		return &FlakyService{FailEvery: 1} // every call on every worker fails
	}, 2, 4)
	defer pool.Close()
	d.Cfg.RPCRetries = 3
	if _, err := d.Trim(); err == nil {
		t.Fatal("all-workers fault not propagated despite retries")
	}
}

func TestDriverHealthyFlakyServicePasses(t *testing.T) {
	d, pool := flakyDriver(t, func() interface{} {
		return &FlakyService{} // never fails
	}, 2, 4)
	defer pool.Close()
	if _, err := d.Trim(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerDiesMidSession wedges a TCP worker's connection mid-session
// (via the chaos transport) and checks an in-flight call returns an error
// within the configured deadline instead of hanging forever, and that the
// worker is evicted from the schedulable set.
func TestWorkerDiesMidSession(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// The worker answers one phase, then wedges: the first two server
	// writes (the wire-handshake ack and one phase response) are safe,
	// every later response write hangs.
	chaos := dist.NewChaosListener(lis, dist.ChaosConfig{
		Seed: 7, FirstSafe: 2, HangProb: 1, HangFor: 30 * time.Second,
	})
	go func() { _ = dist.Serve(chaos, &Service{}) }()

	const timeout = 200 * time.Millisecond
	pool, err := dist.DialPoolOpts([]string{lis.Addr().String()}, dist.Options{
		CallTimeout: timeout,
		MaxFailures: 1, // evict on the first wedge, no reconnect churn
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := poolDriver(t, pool, 1)
	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		t.Fatalf("healthy phase failed: %v", err)
	}

	// The next call lands on the now-wedged connection. Without deadlines
	// (the old pool) this blocked forever; now it must fail within the
	// deadline and evict the worker.
	start := time.Now()
	err = pool.Call(0, "Transitive", &PhaseArgs{Sub: *chainSub(3), Cfg: DefaultConfig()}, &EdgeReply{})
	if err == nil {
		t.Fatal("call on wedged worker connection succeeded")
	}
	if !errors.Is(err, dist.ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got: %v", err)
	}
	if el := time.Since(start); el > 10*timeout {
		t.Fatalf("timed-out call took %v (deadline %v)", el, timeout)
	}
	if n := pool.NumHealthy(); n != 0 {
		t.Fatalf("wedged worker not evicted: NumHealthy=%d", n)
	}

	// Dialing a dead address must fail fast, too.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if _, err := dist.DialPool([]string{addr}); err == nil {
		t.Fatal("dial to dead worker succeeded")
	}
}

func TestParallelCallsSurvivesMixedOutcomes(t *testing.T) {
	// 8 tasks over 2 flaky workers, each failing its 3rd call: the error
	// must be reported even though most tasks succeed.
	pool, err := dist.NewLocalPool(2, func() interface{} {
		return &FlakyService{FailEvery: 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	replies := make([]interface{}, 8)
	for i := range replies {
		replies[i] = &EdgeReply{}
	}
	sub := chainSub(3)
	_, err = pool.ParallelCalls(8, "Transitive", func(tk int) interface{} {
		return &PhaseArgs{Sub: *sub, Cfg: DefaultConfig()}
	}, replies)
	if err == nil {
		t.Fatal("expected at least one injected fault across 8 calls")
	}
}
