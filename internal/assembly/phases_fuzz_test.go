package assembly

import (
	"reflect"
	"testing"
)

// decodePhaseFuzzSub deterministically expands arbitrary bytes into a
// bounded Subgraph plus scan config. The decoder is total (any input
// yields some subgraph) so coverage-guided fuzzing explores graph shapes
// — self-loops, duplicate edges, ghost endpoints, all-containment nodes —
// rather than fighting a validator.
func decodePhaseFuzzSub(data []byte) (*Subgraph, Config) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	cfg := DefaultConfig()
	n := 1 + int(next()%16)
	cfg.DiagTolerance = int(next() % 32)
	cfg.MaxTipNodes = int(next() % 5)
	cfg.MinTipLen = int(next()) * 4
	cfg.MinEdgeOverlap = 1 + int(next()%64)
	cfg.MinEdgeIdentity = float64(next()%40)/40 + 0.6
	cfg.Band = 2 + int(next()%14)

	// A shared genome keeps some alignments verifiable; bytes pick each
	// node's window so the fuzzer controls the overlap structure.
	bases := []byte("ACGT")
	genome := make([]byte, 512)
	for i := 0; i < 16; i++ {
		b := next()
		for j := 0; j < 32; j++ {
			genome[i*32+j] = bases[(int(b)+j*j)%4]
		}
	}
	sub := &Subgraph{}
	for i := 0; i < n; i++ {
		b0, b1 := next(), next()
		var contig []byte
		if b0%8 != 7 { // some nodes ship no contig
			l := 16 + int(b1)%128
			off := int(b0) % (len(genome) - l)
			contig = genome[off : off+l]
		}
		sub.Nodes = append(sub.Nodes, WireNode{
			ID:     int32(i),
			Weight: int64(b1 % 16),
			Contig: contig,
		})
		if b0&1 == 0 {
			sub.Local = append(sub.Local, int32(i))
		}
	}
	for len(data) >= 5 && len(sub.Edges) < 160 {
		b0, b1, b2, b3, b4 := next(), next(), next(), next(), next()
		from := int32(int(b0) % n)
		to := int32(int(b1) % n)
		if b4&2 != 0 {
			to += 100 // endpoint absent from Nodes
		}
		sub.Edges = append(sub.Edges, Edge{
			From:    from,
			To:      to,
			Diag:    int32(int8(b2)),
			Len:     int32(b3),
			Ident:   1,
			Contain: b4&1 != 0,
		})
	}
	return sub, cfg
}

// FuzzPhaseEngines throws arbitrary subgraphs at both phase engines and
// requires deeply equal scan results at workers 1, 2 and 8 — the CSR
// kernels must match the map oracle on any input, not just well-formed
// assembler subgraphs.
func FuzzPhaseEngines(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x04\x08\x02\x20\x30\x10\x06unique-window-bytes\x00\x02\x04\x06" +
		"\x00\x01\x14\x50\x00\x01\x02\x14\x50\x00\x00\x02\x28\x50\x00"))
	f.Add([]byte("\x08\x00\x03\x40\x20\x18\x08ABCDABCDABCDABCD\x02\x10\x04\x12\x06\x14" +
		"\x00\x01\x05\x40\x01\x01\x00\x05\x40\x00\x02\x03\x0a\x30\x02\x03\x03\x00\x00\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sub, cfg := decodePhaseFuzzSub(data)
		mapCfg := cfg
		mapCfg.Engine = PhaseEngineMap
		wantT := TransitiveEdges(sub, mapCfg)
		wantC := ContainmentScan(sub, mapCfg)
		wantE := ErrorScan(sub, mapCfg)
		for _, w := range []int{1, 2, 8} {
			csrCfg := cfg
			csrCfg.Engine = PhaseEngineCSR
			csrCfg.Workers = w
			if got := TransitiveEdges(sub, csrCfg); !reflect.DeepEqual(got, wantT) {
				t.Fatalf("workers %d: TransitiveEdges diverged\ncsr %v\nmap %v", w, got, wantT)
			}
			if got := ContainmentScan(sub, csrCfg); !reflect.DeepEqual(got, wantC) {
				t.Fatalf("workers %d: ContainmentScan diverged\ncsr %+v\nmap %+v", w, got, wantC)
			}
			if got := ErrorScan(sub, csrCfg); !reflect.DeepEqual(got, wantE) {
				t.Fatalf("workers %d: ErrorScan diverged\ncsr %+v\nmap %+v", w, got, wantE)
			}
		}
	})
}
