package assembly

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"focus/internal/dist"
	"focus/internal/testutil"
)

// TestRehostAfterPinnedWorkerLoss is the tentpole acceptance test: in the
// stateful protocol a pinned worker dies mid-run (after a varying healthy
// prefix, so the loss lands during Load, a trim phase, or traversal
// depending on the sweep point), its partitions are re-hosted onto the
// survivor from the master's authoritative graph, and the run completes
// WITHOUT falling back to local execution — byte-identical to a no-fault
// baseline.
func TestRehostAfterPinnedWorkerLoss(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 4
	want := healthyBaseline(t, k)

	for firstSafe := 0; firstSafe <= 6; firstSafe++ {
		t.Run(fmt.Sprintf("firstSafe=%d", firstSafe), func(t *testing.T) {
			hang := dist.ChaosConfig{
				Seed:      11,
				FirstSafe: firstSafe, // healthy responses before the worker wedges
				HangProb:  1,
				HangFor:   2 * time.Second,
			}
			pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
				CallTimeout: 200 * time.Millisecond,
				MaxFailures: 1,
				Logf:        t.Logf,
			}, func(w int) *dist.ChaosConfig {
				if w == 1 {
					return &hang
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			d := chaosPipeline(t, pool, k, true)
			got, err := fullRun(t, d)
			if err != nil {
				t.Fatalf("stateful run with dying pinned worker failed: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("re-hosted run diverged from healthy baseline:\ngot  %+v\nwant %+v", got, want)
			}
			if d.Degraded() {
				t.Fatalf("driver fell back to local mode (reason: %v) despite a surviving worker", d.DegradeReason())
			}
			if r := d.DegradeReason(); r != DegradeNone {
				t.Fatalf("DegradeReason = %v, want DegradeNone", r)
			}
			// Every partition must have ended up placed on a healthy worker.
			for p, w := range d.placement {
				if !pool.Healthy(w) {
					t.Fatalf("partition %d left placed on unhealthy worker %d", p, w)
				}
			}
		})
	}
}

// TestRehostAllWorkersLostFallsBack: when NO worker survives, the stateful
// protocol's terminal safety net — sticky local fallback — still produces
// baseline output, and the driver records that it degraded by failure, not
// by choice.
func TestRehostAllWorkersLostFallsBack(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 4
	want := healthyBaseline(t, k)

	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		CallTimeout: 150 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		return &dist.ChaosConfig{Seed: 13 + int64(w), HangProb: 1, HangFor: 2 * time.Second}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, true)
	got, err := fullRun(t, d)
	if err != nil {
		t.Fatalf("stateful run with all workers dead failed (terminal fallback broken): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("local fallback diverged from healthy baseline:\ngot  %+v\nwant %+v", got, want)
	}
	if !d.Degraded() || d.DegradeReason() != DegradeFailure {
		t.Fatalf("Degraded=%v reason=%v, want degraded by failure", d.Degraded(), d.DegradeReason())
	}
}

// TestRebalanceAfterReconnect: a reconnect signal plus a skewed placement
// table must trigger an elective rebalance at the next phase boundary, and
// the rebalanced run must still produce baseline output. The skew is
// injected by corrupting the placement table directly — which also proves
// the self-healing property: stale placement entries are repaired through
// the epoch-fenced re-host path, never trusted blindly.
func TestRebalanceAfterReconnect(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 4
	want := healthyBaseline(t, k)

	pool, err := dist.NewLocalPool(2, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d := chaosPipeline(t, pool, k, true)
	if err := d.ensureLoaded(nil); err != nil {
		t.Fatal(err)
	}

	// Pretend a past failure crowded everything onto worker 0 (entries for
	// partitions really held by worker 1 are now stale lies), then deliver
	// the reconnect signal the pool hook would send.
	for p := range d.placement {
		d.placement[p] = 0
	}
	atomic.StoreInt32(&d.rebalanceFlag, 1)

	got, err := fullRun(t, d)
	if err != nil {
		t.Fatalf("run after forced rebalance failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rebalanced run diverged from healthy baseline:\ngot  %+v\nwant %+v", got, want)
	}
	// The elective rebalance must have spread partitions back across both
	// workers (max-min spread < 2 on 4 partitions / 2 workers = 2+2).
	counts := map[int]int{}
	for _, w := range d.placement {
		counts[w]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("placement after rebalance = %v (counts %v), want 2 partitions per worker", d.placement, counts)
	}
	if d.Degraded() {
		t.Fatal("driver degraded during elective rebalance")
	}
}

// TestRehostRoundsExhausted: when every healthy worker keeps failing Load,
// the re-host loop gives up after a bounded number of rounds instead of
// spinning, and the terminal fallback still completes the run.
func TestRehostRoundsExhausted(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 2
	want := healthyBaseline(t, k)

	// Workers answer the first two responses (connection setup / early
	// Loads) then wedge forever; reconnects are off, so once both are
	// evicted the pool is unusable and the driver must fall back.
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		CallTimeout: 150 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		return &dist.ChaosConfig{Seed: 29 + int64(w), FirstSafe: 1, HangProb: 1, HangFor: 2 * time.Second}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, true)
	got, err := fullRun(t, d)
	if err != nil {
		t.Fatalf("run failed instead of falling back: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback run diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if !d.Degraded() || d.DegradeReason() != DegradeFailure {
		t.Fatalf("Degraded=%v reason=%v, want degraded by failure", d.Degraded(), d.DegradeReason())
	}
}
