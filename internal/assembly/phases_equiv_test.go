package assembly

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPhaseSubgraph builds a randomized Subgraph mixing structure the
// scans care about (genome-consistent overlap edges whose alignments
// verify, plus tips and bubbles) with adversarial noise: containment
// edges, garbage diagonals, duplicate edges, self-loops, ids that appear
// only as edge endpoints, and non-local ghosts.
func randomPhaseSubgraph(rng *rand.Rand) *Subgraph {
	bases := []byte("ACGT")
	n := 2 + rng.Intn(28)
	genome := make([]byte, 40*n+240)
	for i := range genome {
		genome[i] = bases[rng.Intn(4)]
	}
	sub := &Subgraph{Part: int32(rng.Intn(3))}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(rng.Intn(2 * n)) // sparse ids, duplicates possible
	}
	starts := make([]int, n)
	for i := 0; i < n; i++ {
		var contig []byte
		starts[i] = rng.Intn(40 * n)
		if rng.Intn(8) != 0 { // some nodes ship no contig
			l := 30 + rng.Intn(180)
			contig = genome[starts[i] : starts[i]+l]
		}
		sub.Nodes = append(sub.Nodes, WireNode{
			ID:     ids[i],
			Part:   sub.Part,
			Weight: int64(rng.Intn(20)),
			Contig: contig,
		})
		if rng.Intn(3) != 0 {
			sub.Local = append(sub.Local, ids[i])
		}
	}
	m := rng.Intn(5 * n)
	for e := 0; e < m; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		from, to := ids[i], ids[j]
		diag := int32(starts[j] - starts[i]) // genome-consistent placement
		switch rng.Intn(4) {
		case 0:
			diag = int32(rng.Intn(200) - 100) // garbage placement
		case 1:
			to = from + 1000 // endpoint absent from Nodes
		}
		sub.Edges = append(sub.Edges, Edge{
			From:    from,
			To:      to,
			Diag:    diag,
			Len:     int32(rng.Intn(160)),
			Ident:   float32(0.85 + 0.15*rng.Float64()),
			Contain: rng.Intn(7) == 0,
		})
		if rng.Intn(12) == 0 { // exact duplicate
			sub.Edges = append(sub.Edges, sub.Edges[len(sub.Edges)-1])
		}
	}
	return sub
}

func randomPhaseConfig(rng *rand.Rand) Config {
	cfg := DefaultConfig()
	cfg.DiagTolerance = rng.Intn(24)
	cfg.MinEdgeOverlap = 20 + rng.Intn(60)
	cfg.MinEdgeIdentity = 0.7 + 0.3*rng.Float64()
	cfg.Band = 4 + rng.Intn(16)
	cfg.MaxTipNodes = rng.Intn(5)
	cfg.MinTipLen = rng.Intn(500)
	return cfg
}

// TestPhaseEnginesEquivalence pins the CSR engine to the map oracle:
// on randomized subgraphs, TransitiveEdges, ContainmentScan and ErrorScan
// must return deeply equal results (including nil-vs-empty) at workers
// 1, 2 and 8.
func TestPhaseEnginesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 250; iter++ {
		sub := randomPhaseSubgraph(rng)
		mapCfg := randomPhaseConfig(rng)
		mapCfg.Engine = PhaseEngineMap
		wantT := TransitiveEdges(sub, mapCfg)
		wantC := ContainmentScan(sub, mapCfg)
		wantE := ErrorScan(sub, mapCfg)
		for _, w := range []int{1, 2, 8} {
			csrCfg := mapCfg
			csrCfg.Engine = PhaseEngineCSR
			csrCfg.Workers = w
			if got := TransitiveEdges(sub, csrCfg); !reflect.DeepEqual(got, wantT) {
				t.Fatalf("iter %d workers %d: TransitiveEdges diverged\ncsr %v\nmap %v", iter, w, got, wantT)
			}
			if got := ContainmentScan(sub, csrCfg); !reflect.DeepEqual(got, wantC) {
				t.Fatalf("iter %d workers %d: ContainmentScan diverged\ncsr %+v\nmap %+v", iter, w, got, wantC)
			}
			if got := ErrorScan(sub, csrCfg); !reflect.DeepEqual(got, wantE) {
				t.Fatalf("iter %d workers %d: ErrorScan diverged\ncsr %+v\nmap %+v", iter, w, got, wantE)
			}
		}
	}
}

// TestPhaseEnginesDegenerate pins the engines on edge-case subgraphs the
// randomized generator rarely hits exactly: empty everything, edges with
// no nodes, all-containment adjacency.
func TestPhaseEnginesDegenerate(t *testing.T) {
	subs := []*Subgraph{
		{},
		{Local: []int32{1, 2, 3}},
		{Local: []int32{5}, Edges: []Edge{{From: 5, To: 9, Diag: 4, Len: 10}}},
		{
			Local: []int32{0, 1},
			Nodes: []WireNode{{ID: 0, Contig: []byte("ACGTACGT")}, {ID: 1, Contig: []byte("ACGTACGT")}},
			Edges: []Edge{
				{From: 0, To: 1, Diag: 0, Len: 8, Contain: true},
				{From: 1, To: 0, Diag: 0, Len: 8, Contain: true},
			},
		},
	}
	for i, sub := range subs {
		mapCfg := DefaultConfig()
		mapCfg.Engine = PhaseEngineMap
		csrCfg := DefaultConfig()
		if got, want := TransitiveEdges(sub, csrCfg), TransitiveEdges(sub, mapCfg); !reflect.DeepEqual(got, want) {
			t.Errorf("sub %d: TransitiveEdges csr %v map %v", i, got, want)
		}
		if got, want := ContainmentScan(sub, csrCfg), ContainmentScan(sub, mapCfg); !reflect.DeepEqual(got, want) {
			t.Errorf("sub %d: ContainmentScan csr %+v map %+v", i, got, want)
		}
		if got, want := ErrorScan(sub, csrCfg), ErrorScan(sub, mapCfg); !reflect.DeepEqual(got, want) {
			t.Errorf("sub %d: ErrorScan csr %+v map %+v", i, got, want)
		}
	}
}

// TestDedupePairsScratch pins the packed-key dedupe against a simple
// reference on randomized inputs, including the nil-preserving contract
// and negative ids (the sign-bias of packPair).
func TestDedupePairsScratch(t *testing.T) {
	var keys []uint64
	if got := dedupePairs(nil, &keys); got != nil {
		t.Fatalf("dedupePairs(nil) = %v, want nil", got)
	}
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(40)
		pairs := make([]EdgePair, n)
		seen := map[EdgePair]bool{}
		for i := range pairs {
			pairs[i] = EdgePair{
				From: int32(rng.Intn(9) - 4),
				To:   int32(rng.Intn(9) - 4),
			}
			seen[pairs[i]] = true
		}
		var want []EdgePair
		for p := range seen {
			want = append(want, p)
		}
		// Reference order: signed (From, To).
		for i := 0; i < len(want); i++ {
			for j := i + 1; j < len(want); j++ {
				if want[j].From < want[i].From ||
					(want[j].From == want[i].From && want[j].To < want[i].To) {
					want[i], want[j] = want[j], want[i]
				}
			}
		}
		got := dedupePairs(pairs, &keys)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: dedupePairs = %v, want %v", iter, got, want)
		}
	}
}
