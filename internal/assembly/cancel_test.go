package assembly

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"focus/internal/checkpoint"
	"focus/internal/dist"
	"focus/internal/testutil"
)

// cancelAtCompletions fires cancel(cause) once the pool's completion
// counter reaches n finished calls — a deterministic-ish cancel point that
// sweeps across phase starts, mid-phase scheduling and phase boundaries as
// n grows. The returned stop func reaps the trigger goroutine.
func cancelAtCompletions(pool *dist.Pool, n int64, cancel context.CancelCauseFunc, cause error) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if pool.Completions() >= n {
				cancel(cause)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// TestCancelSweep is the cancellation acceptance sweep: runs are canceled
// at increasing completion counts, in both protocols. Every canceled run
// must unwind promptly with the injected cause (never deadlock, never
// return silently corrupt output), leak no goroutines, and — when a phase
// boundary was reached — leave a checkpoint from which a resumed run
// reproduces the healthy baseline byte-for-byte.
func TestCancelSweep(t *testing.T) {
	const k = 4
	want := healthyBaseline(t, k)

	for _, stateful := range []bool{false, true} {
		name := "stateless"
		if stateful {
			name = "stateful"
		}
		for _, after := range []int64{0, 1, 2, 4, 8, 16, 32} {
			stateful, after := stateful, after
			t.Run(fmt.Sprintf("%s/after%d", name, after), func(t *testing.T) {
				defer testutil.NoLeaks(t)
				dir := t.TempDir()
				pool, err := dist.NewLocalPool(2, NewService)
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				d := chaosPipeline(t, pool, k, stateful)
				defer d.Close()
				d.EnableCheckpoint(CheckpointConfig{Dir: dir})

				cause := fmt.Errorf("test cancel at %d completions", after)
				ctx, cancel := context.WithCancelCause(context.Background())
				defer cancel(nil)
				stopTrigger := cancelAtCompletions(pool, after, cancel, cause)
				defer stopTrigger()
				d.SetContext(ctx)

				type result struct {
					out runOutcome
					err error
				}
				done := make(chan result, 1)
				go func() {
					out, err := fullRun(t, d)
					done <- result{out, err}
				}()
				var r result
				select {
				case r = <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("canceled run did not unwind")
				}

				if r.err == nil {
					// The cancel landed after the last phase (or never, for
					// large n): output must still be the baseline.
					if !reflect.DeepEqual(r.out, want) {
						t.Fatalf("uncanceled run diverged from baseline:\ngot  %+v\nwant %+v", r.out, want)
					}
					return
				}
				if !errors.Is(r.err, cause) {
					t.Fatalf("canceled run error = %v, want cause %v", r.err, cause)
				}

				// Best-effort checkpoint on cancel (what the facade does),
				// then prove the run is resumable and byte-identical.
				if err := d.CheckpointNow(); err != nil {
					t.Fatalf("CheckpointNow after cancel: %v", err)
				}
				cs, err := LoadLatestCheckpoint(dir)
				if errors.Is(err, checkpoint.ErrNone) {
					return // canceled before the first phase boundary
				}
				if err != nil {
					t.Fatal(err)
				}
				pool2, err := dist.NewLocalPool(2, NewService)
				if err != nil {
					t.Fatal(err)
				}
				defer pool2.Close()
				cfg := DefaultConfig()
				cfg.Stateful = stateful
				d2, err := ResumeDriver(pool2, cs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer d2.Close()
				got, err := fullRun(t, d2)
				if err != nil {
					t.Fatalf("resumed run failed: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("resumed run diverged from baseline:\ngot  %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestWatchdogRehostsHungWorker is the watchdog demo: one of two workers
// hangs on every response and no per-call timeout is armed — the
// configuration the watchdog exists for. The stall is detected, the stuck
// worker kicked (its task reschedules onto the survivor), and the run
// completes with baseline output.
func TestWatchdogRehostsHungWorker(t *testing.T) {
	const k = 4
	want := healthyBaseline(t, k)
	defer testutil.NoLeaks(t)

	hang := dist.ChaosConfig{Seed: 11, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		MaxFailures: 1, // no CallTimeout: only the watchdog can unstick the run
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		if w == 1 {
			return &hang
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, false)
	defer d.Close()
	d.EnableWatchdog(WatchdogConfig{Window: 100 * time.Millisecond})
	got, err := fullRun(t, d)
	if err != nil {
		t.Fatalf("run with watchdog failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("watchdog-rescued run diverged from baseline:\ngot  %+v\nwant %+v", got, want)
	}
	// Without the kick the hung worker would still be connected (nothing
	// else severs it when CallTimeout is off).
	if n := pool.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d, want 1 (hung worker kicked and evicted)", n)
	}
	if d.Degraded() {
		t.Fatal("driver degraded to local mode despite a surviving worker")
	}
}

// TestWatchdogEscalatesToCancel: with every worker hung and kicking
// disabled, the ladder must end in cancellation with ErrStalled — not in
// the silent local fallback (a stalled run is a fault to surface, the
// fallback is for worker-pool exhaustion).
func TestWatchdogEscalatesToCancel(t *testing.T) {
	defer testutil.NoLeaks(t)
	hang := dist.ChaosConfig{Seed: 13, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig { c := hang; c.Seed += int64(w); return &c })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, 4, false)
	defer d.Close()
	d.EnableWatchdog(WatchdogConfig{Window: 100 * time.Millisecond, MaxKicks: -1})
	start := time.Now()
	_, err = fullRun(t, d)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled run error = %v, want ErrStalled", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("stalled run took %v to cancel", el)
	}
}

// TestPhaseBudgetExpiry: a run deadline is split into per-phase budgets;
// a phase that cannot finish within its share is canceled with
// ErrPhaseBudget well before the full run deadline.
func TestPhaseBudgetExpiry(t *testing.T) {
	defer testutil.NoLeaks(t)
	hang := dist.ChaosConfig{Seed: 17, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig { c := hang; c.Seed += int64(w); return &c })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, 4, false)
	defer d.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(10*time.Second))
	defer cancel()
	d.SetContext(ctx)
	start := time.Now()
	_, err = fullRun(t, d)
	el := time.Since(start)
	if !errors.Is(err, ErrPhaseBudget) {
		t.Fatalf("budget-expired run error = %v, want ErrPhaseBudget", err)
	}
	// The first phase's weighted share of a 10 s deadline is far below the
	// deadline itself; hitting ErrPhaseBudget (not the run deadline) early
	// is the point of the split.
	if el >= 10*time.Second {
		t.Fatalf("phase budget fired only after the whole run deadline (%v)", el)
	}
}
