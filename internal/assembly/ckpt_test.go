package assembly

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"focus/internal/checkpoint"
	"focus/internal/dist"
)

// TestCheckpointStateRoundTrip: the checkpoint payload codec reproduces
// the master graph exactly, including the rebuilt In adjacency.
func TestCheckpointStateRoundTrip(t *testing.T) {
	genome := randGenome(91, 3000)
	reads := tilingReads(genome, 100, 30)
	dg, labels, _ := buildPipeline(t, reads, 3)
	// Mutate so Removed flags and filtered adjacency are exercised.
	if n := dg.NumNodes(); n > 2 {
		dg.RemoveNode(int32(n / 2))
		if len(dg.Out[0]) > 0 {
			e := dg.Out[0][0]
			dg.RemoveEdge(e.From, e.To)
		}
	}
	cs := &CheckpointState{
		Done:         []string{"Transitive", "Containment"},
		Stats:        TrimStats{TransitiveEdges: 7, ContainedNodes: 3, FalseEdges: 2, DeadEndNodes: 11},
		Variants:     []Variant{{From: 1, To: 2, AlleleA: 3, AlleleB: 4, CovA: 5, CovB: 6, LenA: 7, LenB: 8, Identity: 0.97, Kind: VariantIndel, Reconverges: true}},
		JournalNodes: []int32{4, 9},
		JournalEdges: []EdgePair{{From: 1, To: 2}},
		K:            3,
		Labels:       labels,
		Graph:        dg,
	}
	var got CheckpointState
	if err := got.DecodeFrom(cs.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Done, cs.Done) || got.Stats.TransitiveEdges != cs.Stats.TransitiveEdges ||
		got.Stats.ContainedNodes != cs.Stats.ContainedNodes || got.Stats.FalseEdges != cs.Stats.FalseEdges ||
		got.Stats.DeadEndNodes != cs.Stats.DeadEndNodes || !reflect.DeepEqual(got.Variants, cs.Variants) ||
		!reflect.DeepEqual(got.JournalNodes, cs.JournalNodes) || !reflect.DeepEqual(got.JournalEdges, cs.JournalEdges) ||
		got.K != cs.K || !reflect.DeepEqual(got.Labels, cs.Labels) {
		t.Fatal("metadata mismatch after round trip")
	}
	g2 := got.Graph
	if !reflect.DeepEqual(g2.Contigs, dg.Contigs) || !reflect.DeepEqual(g2.Weight, dg.Weight) ||
		!reflect.DeepEqual(g2.Removed, dg.Removed) || !reflect.DeepEqual(g2.Out, dg.Out) {
		t.Fatal("graph core mismatch after round trip")
	}
	// In is rebuilt, not shipped: it must match the mutated original
	// exactly (fresh In is sorted by From; removals preserve order).
	if !reflect.DeepEqual(g2.In, dg.In) {
		t.Fatal("rebuilt In adjacency differs from original")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupting the payload errors instead of panicking.
	enc := cs.AppendTo(nil)
	for _, n := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		var bad CheckpointState
		if err := bad.DecodeFrom(enc[:n]); err == nil {
			t.Fatalf("truncated payload (%d bytes) decoded without error", n)
		}
	}
}

// TestCheckpointResumeIdenticalOutput is the kill-master-and-resume
// acceptance test at the driver level: a run checkpointed at phase
// boundaries is killed after two phases; a fresh master resumes from the
// newest checkpoint and must produce byte-identical contigs and stats.
func TestCheckpointResumeIdenticalOutput(t *testing.T) {
	genome := randGenome(17, 4000)
	reads := tilingReads(genome, 100, 25)
	for _, stateful := range []bool{false, true} {
		dir := t.TempDir()
		cfg := DefaultConfig()
		cfg.Stateful = stateful

		fullRun := func(d *Driver) ([][]byte, TrimStats) {
			t.Helper()
			var st TrimStats
			if err := d.TrimTransitive(&st); err != nil {
				t.Fatal(err)
			}
			if err := d.TrimContainment(&st); err != nil {
				t.Fatal(err)
			}
			if err := d.TrimErrors(&st); err != nil {
				t.Fatal(err)
			}
			paths, err := d.Traverse()
			if err != nil {
				t.Fatal(err)
			}
			return d.BuildContigs(paths), st
		}

		// Baseline: uninterrupted run.
		dgA, labelsA, _ := buildPipeline(t, reads, 4)
		poolA, err := dist.NewLocalPool(2, NewService)
		if err != nil {
			t.Fatal(err)
		}
		dA, err := NewDriver(poolA, dgA, labelsA, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantContigs, wantStats := fullRun(dA)
		dA.Close()
		poolA.Close()

		// Checkpointed run, killed after two phases: the driver (and its
		// pool — the whole master process) simply stops being used.
		dgB, labelsB, _ := buildPipeline(t, reads, 4)
		poolB, err := dist.NewLocalPool(2, NewService)
		if err != nil {
			t.Fatal(err)
		}
		dB, err := NewDriver(poolB, dgB, labelsB, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dB.EnableCheckpoint(CheckpointConfig{Dir: dir})
		var stB TrimStats
		if err := dB.TrimTransitive(&stB); err != nil {
			t.Fatal(err)
		}
		if err := dB.TrimContainment(&stB); err != nil {
			t.Fatal(err)
		}
		poolB.Close() // "kill" — no Unload, workers gone

		// Resume on a fresh pool from the newest checkpoint.
		cs, err := LoadLatestCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"Transitive", "Containment"}; !reflect.DeepEqual(cs.Done, want) {
			t.Fatalf("checkpoint done = %v, want %v", cs.Done, want)
		}
		poolC, err := dist.NewLocalPool(2, NewService)
		if err != nil {
			t.Fatal(err)
		}
		defer poolC.Close()
		dC, err := ResumeDriver(poolC, cs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer dC.Close()
		gotContigs, gotStats := fullRun(dC)

		if wantStats.TransitiveEdges != gotStats.TransitiveEdges || wantStats.ContainedNodes != gotStats.ContainedNodes ||
			wantStats.FalseEdges != gotStats.FalseEdges || wantStats.DeadEndNodes != gotStats.DeadEndNodes {
			t.Fatalf("stateful=%v: resumed stats %+v, want %+v", stateful, gotStats, wantStats)
		}
		if len(gotContigs) != len(wantContigs) {
			t.Fatalf("stateful=%v: %d contigs after resume, want %d", stateful, len(gotContigs), len(wantContigs))
		}
		for i := range wantContigs {
			if !bytes.Equal(gotContigs[i], wantContigs[i]) {
				t.Fatalf("stateful=%v: contig %d differs after resume", stateful, i)
			}
		}
	}
}

// TestCheckpointResumeSkipsCorrupt: a corrupted newest checkpoint is
// skipped in favour of the previous valid one; all-corrupt is a loud
// error, not a silent fresh start.
func TestCheckpointResumeSkipsCorrupt(t *testing.T) {
	genome := randGenome(29, 3000)
	reads := tilingReads(genome, 100, 30)
	dir := t.TempDir()
	dg, labels, _ := buildPipeline(t, reads, 2)
	d, err := NewDriver(nil, dg, labels, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded() || d.DegradeReason() != DegradeNoPool {
		t.Fatalf("nil-pool driver: Degraded=%v reason=%v", d.Degraded(), d.DegradeReason())
	}
	d.EnableCheckpoint(CheckpointConfig{Dir: dir})
	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		t.Fatal(err)
	}
	if err := d.TrimContainment(&st); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest (seq 2): resume must land on seq 1.
	newest := filepath.Join(dir, checkpoint.Name(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xA5
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cs, err := LoadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Transitive"}; !reflect.DeepEqual(cs.Done, want) {
		t.Fatalf("resumed done = %v, want %v (older valid checkpoint)", cs.Done, want)
	}
	// Corrupt everything: loud failure.
	oldest := filepath.Join(dir, checkpoint.Name(1))
	if err := os.WriteFile(oldest, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatestCheckpoint(dir); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("all-corrupt dir: err = %v, want ErrCorrupt", err)
	}
	// Empty dir: ErrNone (fresh start), not corruption.
	if _, err := LoadLatestCheckpoint(t.TempDir()); !errors.Is(err, checkpoint.ErrNone) {
		t.Fatalf("empty dir: err = %v, want ErrNone", err)
	}
}
