package assembly

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"focus/internal/par"
)

// This file is the master's subgraph send path: building each partition's
// wire view (Subgraph) from the current graph. PR 4 replaced the per-call
// map[int32]bool + append-grown slices with per-worker epoch-stamped
// dense mark arrays and counted presizing, and fans the per-partition
// extractions over a bounded pool. Node order is the same first-encounter
// order the map version produced (local ids, then each local id's out-
// then in-neighbours), so the output — and therefore the bytes on the
// wire — is identical at any worker count.

// extractScratch is one extractor worker's reusable state.
type extractScratch struct {
	mark  []int32 // mark[id] == epoch ⇔ id is in the current subgraph
	epoch int32
	ids   []int32 // first-encounter order of the current subgraph
}

// extractor builds partition subgraphs against a fixed graph, recycling
// scratches across calls (the driver keeps one per run; the scans of a
// phase reuse its scratches in every later phase).
type extractor struct {
	g      *DiGraph
	labels []int32

	mu   sync.Mutex
	free []*extractScratch
}

func (x *extractor) get() *extractScratch {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n := len(x.free); n > 0 {
		sc := x.free[n-1]
		x.free = x.free[:n-1]
		return sc
	}
	return &extractScratch{mark: make([]int32, x.g.NumNodes())}
}

func (x *extractor) put(sc *extractScratch) {
	x.mu.Lock()
	x.free = append(x.free, sc)
	x.mu.Unlock()
}

// subgraph builds the wire view of one partition using sc. Cost is
// proportional to the partition's closed neighbourhood, not the graph.
func (x *extractor) subgraph(sc *extractScratch, part int32, local []int32) Subgraph {
	g := x.g
	sc.epoch++
	if sc.epoch <= 0 { // int32 wrap: re-zero and restart epochs
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
	epoch := sc.epoch
	mark := sc.mark
	ids := sc.ids[:0]
	add := func(id int32) {
		if mark[id] != epoch {
			mark[id] = epoch
			ids = append(ids, id)
		}
	}
	for _, id := range local {
		add(id)
		for _, e := range g.Out[id] {
			if !g.Removed[e.To] {
				add(e.To)
			}
		}
		for _, e := range g.In[id] {
			if !g.Removed[e.From] {
				add(e.From)
			}
		}
	}
	sc.ids = ids

	sub := Subgraph{Part: part, Local: local}
	sub.Nodes = make([]WireNode, len(ids))
	for i, id := range ids {
		sub.Nodes[i] = WireNode{
			ID: id, Part: x.labels[id], Weight: g.Weight[id], Contig: g.Contigs[id],
		}
	}
	// All edges within the closed neighbourhood: count, then fill exactly.
	nEdges := 0
	for _, id := range ids {
		for _, e := range g.Out[id] {
			if mark[e.To] == epoch {
				nEdges++
			}
		}
	}
	sub.Edges = make([]Edge, 0, nEdges)
	for _, id := range ids {
		for _, e := range g.Out[id] {
			if mark[e.To] == epoch {
				sub.Edges = append(sub.Edges, e)
			}
		}
	}
	return sub
}

// subgraphs extracts every partition's view over a bounded worker pool
// (workers <= 0 means GOMAXPROCS). Each output index depends only on its
// partition, so the result is identical at any worker count.
func (x *extractor) subgraphs(parts [][]int32, workers int) []Subgraph {
	return x.subgraphsGate(parts, workers, nil)
}

// subgraphsGate is subgraphs with a cancellation gate polled at the
// per-partition grain boundary: a stopped gate abandons the remaining
// partitions and returns a partial result (memory-safe — untouched
// entries are zero Subgraphs), which the caller discards after checking
// its context. A nil gate is the zero-cost uncancellable path.
func (x *extractor) subgraphsGate(parts [][]int32, workers int, gate *par.Gate) []Subgraph {
	k := len(parts)
	out := make([]Subgraph, k)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		sc := x.get()
		defer x.put(sc)
		for t := range parts {
			if gate.Stopped() {
				return out
			}
			out[t] = x.subgraph(sc, int32(t), parts[t])
		}
		return out
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := x.get()
			defer x.put(sc)
			for {
				t := int(atomic.AddInt64(&next, 1))
				if t >= k || gate.Stopped() {
					return
				}
				out[t] = x.subgraph(sc, int32(t), parts[t])
			}
		}()
	}
	wg.Wait()
	return out
}

// Subgraphs extracts the wire view of all k partitions of g under labels,
// fanning the per-partition extractions over up to workers goroutines
// (<= 0 means GOMAXPROCS). The result is deterministic — byte-identical
// at any worker count — and matches what the Driver ships per phase.
// Node contigs alias g's contig storage; callers must not mutate them.
func Subgraphs(g *DiGraph, labels []int32, k, workers int) []Subgraph {
	subs, _ := SubgraphsCtx(nil, g, labels, k, workers)
	return subs
}

// SubgraphsCtx is Subgraphs bounded by ctx: extraction stops at the next
// per-partition boundary once ctx cancels and the context's cause is
// returned (the partial result must then be discarded). A nil ctx is the
// uncancellable path.
func SubgraphsCtx(ctx context.Context, g *DiGraph, labels []int32, k, workers int) ([]Subgraph, error) {
	x := &extractor{g: g, labels: labels}
	parts := make([][]int32, k)
	for v := 0; v < g.NumNodes(); v++ {
		if !g.Removed[v] {
			p := labels[v]
			parts[p] = append(parts[p], int32(v))
		}
	}
	subs := x.subgraphsGate(parts, workers, par.GateFor(ctx))
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, cerr
	}
	return subs, nil
}
