package assembly

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/coarsen"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/hybrid"
	"focus/internal/overlap"
	"focus/internal/partition"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tilingReads(genome []byte, l, s int) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		reads = append(reads, dna.Read{ID: "t", Seq: append([]byte(nil), genome[pos:pos+l]...)})
	}
	return reads
}

// buildPipeline runs reads through overlap -> coarsen -> hybrid ->
// digraph and returns everything needed for a Driver.
func buildPipeline(t *testing.T, reads []dna.Read, k int) (*DiGraph, []int32, *hybrid.Hybrid) {
	t.Helper()
	ocfg := overlap.DefaultConfig()
	ocfg.Workers = 2
	recs, err := overlap.FindOverlaps(reads, 2, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	g0, err := overlap.BuildGraph(len(reads), recs)
	if err != nil {
		t.Fatal(err)
	}
	copt := coarsen.DefaultOptions()
	copt.MinNodes = 2
	mset := coarsen.Multilevel(g0, copt)
	h, err := hybrid.Build(mset, reads, recs, hybrid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dg, err := BuildDiGraph(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	var labels []int32
	if k == 1 || h.G.NumNodes() < 2*k {
		labels = make([]int32, dg.NumNodes())
		for v := range labels {
			labels[v] = int32(v % k)
		}
	} else {
		popt := partition.DefaultOptions(k)
		res, err := partition.PartitionSet(h.Set, popt)
		if err != nil {
			t.Fatal(err)
		}
		labels = res.Labels()
	}
	return dg, labels, h
}

func TestBuildDiGraphOrientsChain(t *testing.T) {
	genome := randGenome(70, 2500)
	reads := tilingReads(genome, 100, 35)
	dg, _, _ := buildPipeline(t, reads, 1)
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
	if dg.NumLive() == 0 {
		t.Fatal("empty digraph")
	}
	// All contigs tile one genome: the graph must be acyclic along
	// suffix-prefix edges (diags positive) and connected enough to walk.
	edges := 0
	for v := range dg.Out {
		for _, e := range dg.Out[v] {
			if e.Diag < 0 {
				t.Fatalf("negative diag on %d->%d", e.From, e.To)
			}
			edges++
		}
	}
	if edges == 0 {
		t.Fatal("no edges in digraph")
	}
}

func TestDriverEndToEndSingleWorker(t *testing.T) {
	genome := randGenome(71, 3000)
	reads := tilingReads(genome, 100, 30)
	dg, labels, _ := buildPipeline(t, reads, 1)
	pool, err := dist.NewLocalPool(1, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d, err := NewDriver(pool, dg, labels, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Trim(); err != nil {
		t.Fatal(err)
	}
	paths, err := d.Traverse()
	if err != nil {
		t.Fatal(err)
	}
	contigs := d.BuildContigs(paths)
	st := ComputeStats(contigs)
	if st.NumContigs == 0 {
		t.Fatal("no contigs")
	}
	// Error-free tiling of one genome: the dominant contig must
	// reconstruct most of it and be an exact substring.
	if st.MaxContig < len(genome)*7/10 {
		t.Errorf("max contig %d for genome %d", st.MaxContig, len(genome))
	}
	for i, c := range contigs {
		if len(c) >= 200 && !bytes.Contains(genome, c) {
			t.Errorf("contig %d (%d bp) is not a genome substring", i, len(c))
		}
	}
}

func TestDriverDistributedMatchesSingle(t *testing.T) {
	genome := randGenome(72, 4000)
	reads := tilingReads(genome, 100, 40)

	run := func(k, workers int) Stats {
		dg, labels, _ := buildPipeline(t, reads, k)
		pool, err := dist.NewLocalPool(workers, NewService)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		d, err := NewDriver(pool, dg, labels, k, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Trim(); err != nil {
			t.Fatal(err)
		}
		paths, err := d.Traverse()
		if err != nil {
			t.Fatal(err)
		}
		return ComputeStats(d.BuildContigs(paths))
	}

	single := run(1, 1)
	multi := run(4, 3)
	// Assembly quality must be consistent across partitionings
	// (paper Table III): allow small variation from partition-boundary
	// path breaks that re-join differently.
	if multi.MaxContig < single.MaxContig/2 {
		t.Errorf("distributed max contig %d far below single %d", multi.MaxContig, single.MaxContig)
	}
	if single.TotalBases == 0 || multi.TotalBases == 0 {
		t.Error("empty assemblies")
	}
}

func TestDriverTrimRemovesRedundancy(t *testing.T) {
	genome := randGenome(73, 2500)
	// Dense tiling creates containments and transitive edges galore.
	reads := tilingReads(genome, 100, 15)
	dg, labels, _ := buildPipeline(t, reads, 2)
	pool, err := dist.NewLocalPool(2, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	d, err := NewDriver(pool, dg, labels, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := dg.NumEdges()
	st, err := d.Trim()
	if err != nil {
		t.Fatal(err)
	}
	after := dg.NumEdges()
	if after > before {
		t.Errorf("edges grew: %d -> %d", before, after)
	}
	_ = st
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDriverValidation(t *testing.T) {
	dg := &DiGraph{
		Contigs: [][]byte{[]byte("A")},
		Weight:  []int64{1},
		Removed: []bool{false},
		Out:     make([][]Edge, 1),
		In:      make([][]Edge, 1),
	}
	if _, err := NewDriver(nil, dg, []int32{0, 1}, 2, DefaultConfig()); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := NewDriver(nil, dg, []int32{5}, 2, DefaultConfig()); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestJoinPathsAcrossPartitions(t *testing.T) {
	// Chain of 4 nodes; partitions {0,1} and {2,3}; worker paths
	// {0,1}, {2,3}; joining must produce {0,1,2,3}.
	dg := &DiGraph{
		Contigs: make([][]byte, 4),
		Weight:  []int64{1, 1, 1, 1},
		Removed: make([]bool, 4),
		Out:     make([][]Edge, 4),
		In:      make([][]Edge, 4),
	}
	for i := range dg.Contigs {
		dg.Contigs[i] = bytes.Repeat([]byte("A"), 100)
	}
	for i := 0; i < 3; i++ {
		e := Edge{From: int32(i), To: int32(i + 1), Diag: 60, Len: 40, Ident: 1}
		dg.Out[i] = append(dg.Out[i], e)
		dg.In[i+1] = append(dg.In[i+1], e)
	}
	d := &Driver{G: dg, Labels: []int32{0, 0, 1, 1}, K: 2, Cfg: DefaultConfig()}
	joined := d.joinPaths([][]int32{{0, 1}, {2, 3}})
	if len(joined) != 1 || len(joined[0]) != 4 {
		t.Fatalf("joined = %v", joined)
	}
	for i, v := range []int32{0, 1, 2, 3} {
		if joined[0][i] != v {
			t.Fatalf("joined = %v", joined)
		}
	}
	contigs := d.BuildContigs(joined)
	if len(contigs) != 1 || len(contigs[0]) != 100+3*60 {
		t.Fatalf("contig len = %d, want 280", len(contigs[0]))
	}
}

func TestBuildContigsDefensivePaths(t *testing.T) {
	dg := &DiGraph{
		Contigs: [][]byte{bytes.Repeat([]byte("A"), 100), bytes.Repeat([]byte("C"), 100)},
		Weight:  []int64{1, 1},
		Removed: make([]bool, 2),
		Out:     make([][]Edge, 2),
		In:      make([][]Edge, 2),
	}
	d := &Driver{G: dg, Labels: []int32{0, 0}, K: 1, Cfg: DefaultConfig()}
	// Path referencing a missing edge: rendering stops at the break
	// instead of panicking.
	contigs := d.BuildContigs([][]int32{{0, 1}})
	if len(contigs) != 1 || len(contigs[0]) != 100 {
		t.Fatalf("contigs = %d (len %d), want the first node only", len(contigs), len(contigs[0]))
	}
	// A contained/covered next contig adds nothing.
	e := Edge{From: 0, To: 1, Diag: 0, Len: 100, Ident: 1}
	dg.Out[0] = append(dg.Out[0], e)
	dg.In[1] = append(dg.In[1], e)
	contigs = d.BuildContigs([][]int32{{0, 1}})
	if len(contigs[0]) != 100 {
		t.Fatalf("covered next contig extended the path: %d bp", len(contigs[0]))
	}
}

func TestJoinPathsRefusesAmbiguousJoin(t *testing.T) {
	// Node 2 has in-edges from both 1 and 4: path {2,3} must not join.
	dg := &DiGraph{
		Contigs: make([][]byte, 5),
		Weight:  []int64{1, 1, 1, 1, 1},
		Removed: make([]bool, 5),
		Out:     make([][]Edge, 5),
		In:      make([][]Edge, 5),
	}
	for i := range dg.Contigs {
		dg.Contigs[i] = bytes.Repeat([]byte("A"), 100)
	}
	add := func(f, to int32) {
		e := Edge{From: f, To: to, Diag: 60, Len: 40, Ident: 1}
		dg.Out[f] = append(dg.Out[f], e)
		dg.In[to] = append(dg.In[to], e)
	}
	add(0, 1)
	add(1, 2)
	add(4, 2)
	add(2, 3)
	d := &Driver{G: dg, Labels: []int32{0, 0, 1, 1, 0}, K: 2, Cfg: DefaultConfig()}
	joined := d.joinPaths([][]int32{{0, 1}, {4}, {2, 3}})
	if len(joined) != 3 {
		t.Fatalf("joined = %v, want 3 separate paths", joined)
	}
}
