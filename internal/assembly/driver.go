package assembly

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"focus/internal/dist"
)

// Driver is the master process: it owns the hybrid graph, ships each
// partition to a worker, applies the removals the workers record, and
// joins the sub-paths they extract (paper §V). With Config.Stateful set,
// partitions are shipped once and phases send only removal deltas
// (stateful.go); otherwise every phase reships its subgraphs.
type Driver struct {
	Pool   *dist.Pool
	G      *DiGraph
	Labels []int32 // partition of each hybrid node
	K      int
	Cfg    Config

	runID        string
	loaded       bool
	localOnly    bool // degraded mode: pool unusable, phases run on the master
	pendingNodes []int32
	pendingEdges []EdgePair

	// extractWorkers bounds the parallel subgraph-extraction fan-out (0 =
	// GOMAXPROCS, 1 = serial; equivalence tests pin both and compare).
	extractWorkers int
	ext            *extractor

	// Reusable partitionNodes scratch: the count and view arrays persist
	// across phases, but the flat id backing is allocated fresh per call
	// (one allocation per phase instead of k append-grown lists). It must
	// NOT be reused: the partition views become Subgraph.Local in RPC
	// args, and a timed-out call's abandoned encoder goroutine may still
	// be reading them when the next phase (or a local fallback within the
	// same phase) rebuilds the lists.
	partCounts []int32
	partView   [][]int32
}

// extractor returns the lazily-built subgraph extractor (the graph and
// labels are fixed after NewDriver).
func (d *Driver) extractor() *extractor {
	if d.ext == nil {
		d.ext = &extractor{g: d.G, labels: d.Labels}
	}
	return d.ext
}

// subgraphs builds every partition's wire view in parallel.
func (d *Driver) subgraphs(parts [][]int32) []Subgraph {
	return d.extractor().subgraphs(parts, d.extractWorkers)
}

// Degraded reports whether the driver has fallen back to local (master-
// side) phase execution because the worker pool became unusable.
func (d *Driver) Degraded() bool { return d.localOnly }

var runCounter int64

// removeEdge deletes an edge and records it for the next stateful delta.
func (d *Driver) removeEdge(e EdgePair) {
	d.G.RemoveEdge(e.From, e.To)
	if d.Cfg.Stateful && !d.localOnly {
		d.pendingEdges = append(d.pendingEdges, e)
	}
}

// removeNode deletes a node and records it for the next stateful delta.
func (d *Driver) removeNode(v int32) {
	d.G.RemoveNode(v)
	if d.Cfg.Stateful && !d.localOnly {
		d.pendingNodes = append(d.pendingNodes, v)
	}
}

// ensureLoaded ships every partition to its worker once (stateful mode).
func (d *Driver) ensureLoaded() error {
	if d.loaded {
		return nil
	}
	d.runID = fmt.Sprintf("run%d", atomic.AddInt64(&runCounter, 1))
	subs := d.subgraphs(d.partitionNodes())
	replies := make([]interface{}, d.K)
	for i := range replies {
		replies[i] = &LoadReply{}
	}
	// Pinned: partition t must live on worker t % Size, because later
	// Phase calls address it by that index. Subgraphs are precomputed (in
	// parallel) above: mkArgs closures run concurrently inside the
	// scheduler, so they must not share extraction scratch.
	_, err := d.Pool.ParallelCallsPinned(d.K, "Load", func(t int) interface{} {
		return &LoadArgs{RunID: d.runID, Sub: subs[t], Cfg: d.Cfg}
	}, replies)
	if err != nil {
		return fmt.Errorf("assembly: loading partitions: %w", err)
	}
	// The shipped subgraphs reflect the current graph: nothing pending.
	d.pendingNodes, d.pendingEdges = nil, nil
	d.loaded = true
	return nil
}

// Close releases worker-side state of a stateful run (no-op otherwise).
func (d *Driver) Close() error {
	if !d.loaded {
		return nil
	}
	var firstErr error
	for w := 0; w < d.Pool.Size(); w++ {
		var ok bool
		if err := d.Pool.Call(w, "Unload", &UnloadArgs{RunID: d.runID}, &ok); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.loaded = false
	return firstErr
}

// phaseResult is the protocol-agnostic result of one partition's phase.
type phaseResult struct {
	Edges    []EdgePair
	Removal  Removal
	Paths    [][]int32
	Variants []Variant
}

// runPhase executes one named phase over all partitions, using whichever
// protocol the config selects, and returns per-partition results plus
// task times. Stateful mode pins partitions to workers, so RPCRetries
// applies only to the stateless protocol. When the pool becomes unusable
// (every worker evicted, or a stateful worker's pinned partition
// unreachable) the phase degrades to local execution on the master with a
// logged warning instead of failing the run.
func (d *Driver) runPhase(phase string, vcfg VariantConfig) ([]phaseResult, []time.Duration, error) {
	if d.localOnly {
		return d.runPhaseLocal(phase, vcfg), nil, nil
	}
	if d.Cfg.Stateful {
		if err := d.ensureLoaded(); err != nil {
			if d.fallBackStateful(phase, err) {
				return d.runPhaseLocal(phase, vcfg), nil, nil
			}
			return nil, nil, err
		}
		delta := Delta{RemovedNodes: d.pendingNodes, RemovedEdges: d.pendingEdges}
		d.pendingNodes, d.pendingEdges = nil, nil
		replies := make([]interface{}, d.K)
		for i := range replies {
			replies[i] = &PhaseReplyStateful{}
		}
		times, err := d.Pool.ParallelCallsPinned(d.K, "Phase", func(t int) interface{} {
			return &PhaseArgsStateful{RunID: d.runID, Part: int32(t), Phase: phase, Delta: delta, Cfg: d.Cfg, VCfg: vcfg}
		}, replies)
		if err != nil {
			if d.fallBackStateful(phase, err) {
				return d.runPhaseLocal(phase, vcfg), times, nil
			}
			return nil, times, err
		}
		results := make([]phaseResult, d.K)
		for i, r := range replies {
			pr := r.(*PhaseReplyStateful)
			results[i] = phaseResult{Edges: pr.Edges, Removal: pr.Removal, Paths: pr.Paths, Variants: pr.Variants}
		}
		return results, times, nil
	}

	// Extract every partition's subgraph up front (parallel fan-out): the
	// scheduler invokes mkArgs from its per-worker runner goroutines, so
	// extraction state must not be shared lazily through them.
	subs := d.subgraphs(d.partitionNodes())
	replies := make([]interface{}, d.K)
	mk := func(t int) interface{} {
		if phase == "Variants" {
			return &VariantArgs{Sub: subs[t], Cfg: vcfg}
		}
		return &PhaseArgs{Sub: subs[t], Cfg: d.Cfg}
	}
	for i := range replies {
		switch phase {
		case "Transitive":
			replies[i] = &EdgeReply{}
		case "Containment", "Errors":
			replies[i] = &RemovalReply{}
		case "Paths":
			replies[i] = &PathsReply{}
		case "Variants":
			replies[i] = &VariantsReply{}
		}
	}
	times, err := d.Pool.ParallelCallsRetry(d.K, phase, mk, replies, d.Cfg.RPCRetries)
	if err != nil {
		// Graceful degradation: if the pool has no healthy workers left,
		// the work still fits on the master — subgraph extraction and the
		// phase scans are the same code the workers run.
		if errors.Is(err, dist.ErrNoWorkers) || d.Pool.NumHealthy() == 0 {
			log.Printf("assembly: %s phase: no healthy workers (%v); falling back to local execution", phase, err)
			return d.runPhaseLocal(phase, vcfg), times, nil
		}
		return nil, times, err
	}
	results := make([]phaseResult, d.K)
	for i, r := range replies {
		switch v := r.(type) {
		case *EdgeReply:
			results[i] = phaseResult{Edges: v.Edges}
		case *RemovalReply:
			results[i] = phaseResult{Removal: v.Removal}
		case *PathsReply:
			results[i] = phaseResult{Paths: v.Paths}
		case *VariantsReply:
			results[i] = phaseResult{Variants: v.Variants}
		}
	}
	return results, times, nil
}

// fallBackStateful decides whether a failed stateful phase should degrade
// to local execution, and if so makes the degradation sticky: worker-side
// partitions have missed this phase's delta, so the distributed state is
// stale for the rest of the run. Application-level errors (a service bug,
// an unknown phase) still propagate.
func (d *Driver) fallBackStateful(phase string, err error) bool {
	if !dist.IsTransportError(err) && d.Pool.NumHealthy() > 0 {
		return false
	}
	d.localOnly = true
	d.pendingNodes, d.pendingEdges = nil, nil
	log.Printf("assembly: %s phase (stateful): pool unusable (%v); falling back to local execution for the rest of the run", phase, err)
	return true
}

// runPhaseLocal executes one phase of every partition on the master. The
// master's graph always holds the current state, so local results are
// identical to what a healthy pool would return. Partition scans fan out
// over the same bounded pool as subgraph extraction, so degraded mode
// keeps the workers' parallelism (each result depends only on its own
// partition — output is identical at any worker count).
func (d *Driver) runPhaseLocal(phase string, vcfg VariantConfig) []phaseResult {
	subs := d.subgraphs(d.partitionNodes())
	results := make([]phaseResult, d.K)
	scan := func(t int) {
		sub := &subs[t]
		switch phase {
		case "Transitive":
			results[t] = phaseResult{Edges: TransitiveEdges(sub, d.Cfg)}
		case "Containment":
			results[t] = phaseResult{Removal: ContainmentScan(sub, d.Cfg)}
		case "Errors":
			results[t] = phaseResult{Removal: ErrorScan(sub, d.Cfg)}
		case "Paths":
			results[t] = phaseResult{Paths: ExtractPaths(sub, d.Cfg)}
		case "Variants":
			results[t] = phaseResult{Variants: ScanVariants(sub, vcfg)}
		}
	}
	workers := d.extractWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.K {
		workers = d.K
	}
	if workers <= 1 {
		for t := 0; t < d.K; t++ {
			scan(t)
		}
		return results
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(atomic.AddInt64(&next, 1))
				if t >= d.K {
					return
				}
				scan(t)
			}
		}()
	}
	wg.Wait()
	return results
}

// NewDriver validates and assembles a driver.
func NewDriver(pool *dist.Pool, g *DiGraph, labels []int32, k int, cfg Config) (*Driver, error) {
	if len(labels) != g.NumNodes() {
		return nil, fmt.Errorf("assembly: %d labels for %d nodes", len(labels), g.NumNodes())
	}
	for v, l := range labels {
		if l < 0 || int(l) >= k {
			return nil, fmt.Errorf("assembly: node %d has partition %d outside [0,%d)", v, l, k)
		}
	}
	if cfg.MinEdgeOverlap == 0 {
		cfg = DefaultConfig()
	}
	return &Driver{Pool: pool, G: g, Labels: labels, K: k, Cfg: cfg}, nil
}

// partitionNodes returns the live node ids of each partition (one O(n)
// scan shared by all subgraph extractions of a phase). Counted presize
// into one flat backing: two scans, a single allocation per phase. The
// backing is deliberately fresh each call — the views ship inside RPC
// args (Subgraph.Local), and an abandoned attempt's encoder may outlive
// the phase, so the memory must never be recycled under it.
func (d *Driver) partitionNodes() [][]int32 {
	if d.partCounts == nil {
		d.partCounts = make([]int32, d.K)
		d.partView = make([][]int32, d.K)
	}
	counts := d.partCounts
	for i := range counts {
		counts[i] = 0
	}
	n := d.G.NumNodes()
	total := 0
	for v := 0; v < n; v++ {
		if !d.G.Removed[v] {
			counts[d.Labels[v]]++
			total++
		}
	}
	buf := make([]int32, total)
	out := d.partView
	off := 0
	for p := 0; p < d.K; p++ {
		out[p] = buf[off : off : off+int(counts[p])]
		off += int(counts[p])
	}
	for v := 0; v < n; v++ {
		if !d.G.Removed[v] {
			p := d.Labels[v]
			out[p] = append(out[p], int32(v))
		}
	}
	return out
}

// TrimStats reports what distributed trimming removed, plus the measured
// per-partition task durations of each phase (used by the harness to
// project runtimes onto larger worker pools; see metrics.Makespan).
type TrimStats struct {
	TransitiveEdges int
	ContainedNodes  int
	FalseEdges      int
	DeadEndNodes    int // dead ends + bubbles combined
	// PhaseTaskTimes[phase][task]: phase 0 = transitive, 1 = containment,
	// 2 = errors; task = partition index.
	PhaseTaskTimes [3][]time.Duration
}

// Trim runs the three distributed trimming phases in order: transitive
// reduction, containment removal, error removal. After each phase the
// master applies the recorded removals to the hybrid graph before
// shipping the next phase's subgraphs. To call variants, run the phases
// individually and insert CallVariants before TrimErrors (which pops the
// bubbles variant calling reads).
func (d *Driver) Trim() (TrimStats, error) {
	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		return st, err
	}
	if err := d.TrimContainment(&st); err != nil {
		return st, err
	}
	if err := d.TrimErrors(&st); err != nil {
		return st, err
	}
	return st, nil
}

// TrimTransitive runs phase 1: transitive reduction (§V.A).
func (d *Driver) TrimTransitive(st *TrimStats) error {
	results, taskTimes, err := d.runPhase("Transitive", VariantConfig{})
	st.PhaseTaskTimes[0] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: transitive phase: %w", err)
	}
	seen := map[EdgePair]bool{}
	for _, r := range results {
		for _, e := range r.Edges {
			if !seen[e] { // cross-partition edges are reported twice
				seen[e] = true
				d.removeEdge(e)
				st.TransitiveEdges++
			}
		}
	}
	return nil
}

// TrimContainment runs phase 2: containment + false-positive edges (§V.B).
func (d *Driver) TrimContainment(st *TrimStats) error {
	results, taskTimes, err := d.runPhase("Containment", VariantConfig{})
	st.PhaseTaskTimes[1] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: containment phase: %w", err)
	}
	seenEdge := map[EdgePair]bool{}
	for _, r := range results {
		for _, e := range r.Removal.Edges {
			if !seenEdge[e] {
				seenEdge[e] = true
				d.removeEdge(e)
				st.FalseEdges++
			}
		}
		for _, v := range r.Removal.Nodes {
			if !d.G.Removed[v] {
				d.removeNode(v)
				st.ContainedNodes++
			}
		}
	}
	return nil
}

// TrimErrors runs phase 3: dead ends and bubbles (§V.C).
func (d *Driver) TrimErrors(st *TrimStats) error {
	results, taskTimes, err := d.runPhase("Errors", VariantConfig{})
	st.PhaseTaskTimes[2] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: error phase: %w", err)
	}
	for _, r := range results {
		for _, v := range r.Removal.Nodes {
			if !d.G.Removed[v] {
				d.removeNode(v)
				st.DeadEndNodes++
			}
		}
	}
	return nil
}

// Traverse extracts partition-local maximal paths on the workers and joins
// them on the master (paper §V.D): sub-path p1 is joined to p2 when p1's
// right endpoint has an out-edge to p2's left endpoint and that endpoint
// has no other in-edges.
func (d *Driver) Traverse() ([][]int32, error) {
	paths, _, err := d.TraverseTimed()
	return paths, err
}

// TraverseTimed is Traverse plus the per-partition task durations.
func (d *Driver) TraverseTimed() ([][]int32, []time.Duration, error) {
	results, taskTimes, err := d.runPhase("Paths", VariantConfig{})
	if err != nil {
		return nil, taskTimes, fmt.Errorf("assembly: traversal phase: %w", err)
	}
	var paths [][]int32
	for _, r := range results {
		paths = append(paths, r.Paths...)
	}
	return d.joinPaths(paths), taskTimes, nil
}

// joinPaths merges worker sub-paths across partition boundaries. A path
// p2 can be appended to p1 only when p2's left endpoint has exactly one
// in-edge and it comes from p1's right endpoint (paper rule); if one path
// end feeds several eligible continuations, the heaviest overlap wins.
func (d *Driver) joinPaths(paths [][]int32) [][]int32 {
	// Sort for determinism regardless of worker reply order.
	sort.Slice(paths, func(i, j int) bool { return paths[i][0] < paths[j][0] })
	endAt := map[int32]int{} // right endpoint -> path index (paths are node-disjoint)
	for i, p := range paths {
		endAt[p[len(p)-1]] = i
	}
	succ := make([]int, len(paths))
	for i := range succ {
		succ[i] = -1
	}
	claimed := make([]bool, len(paths))
	for j, p := range paths {
		ins := d.G.liveIn(p[0])
		if len(ins) != 1 {
			continue
		}
		i, ok := endAt[ins[0].From]
		if !ok || i == j {
			continue
		}
		e, ok := d.G.OutEdge(ins[0].From, p[0])
		if !ok {
			continue
		}
		if cur := succ[i]; cur != -1 {
			ce, _ := d.G.OutEdge(ins[0].From, paths[cur][0])
			if e.Len < ce.Len || (e.Len == ce.Len && p[0] >= paths[cur][0]) {
				continue
			}
			claimed[cur] = false
		}
		succ[i] = j
		claimed[j] = true
	}
	done := make([]bool, len(paths))
	var out [][]int32
	emit := func(start int) {
		var merged []int32
		for j := start; j != -1 && !done[j]; j = succ[j] {
			done[j] = true
			merged = append(merged, paths[j]...)
		}
		out = append(out, merged)
	}
	for i := range paths {
		if !claimed[i] && !done[i] {
			emit(i)
		}
	}
	for i := range paths { // pure cycles: every member claimed
		if !done[i] {
			emit(i)
		}
	}
	return out
}

// BuildContigs renders each joined path into a contig by splicing
// consecutive contigs at their edge placements.
func (d *Driver) BuildContigs(paths [][]int32) [][]byte {
	var contigs [][]byte
	for _, p := range paths {
		contig := append([]byte(nil), d.G.Contigs[p[0]]...)
		pos := 0 // start of current node's contig in merged coordinates
		for i := 1; i < len(p); i++ {
			e, ok := d.G.OutEdge(p[i-1], p[i])
			if !ok {
				break // defensive: path edge vanished
			}
			pos += int(e.Diag)
			next := d.G.Contigs[p[i]]
			if pos+len(next) <= len(contig) {
				continue // fully covered
			}
			skip := len(contig) - pos
			if skip < 0 {
				skip = 0
			}
			contig = append(contig, next[skip:]...)
		}
		contigs = append(contigs, contig)
	}
	return contigs
}
