package assembly

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"focus/internal/dist"
	"focus/internal/metrics"
	"focus/internal/par"
)

// Driver is the master process: it owns the hybrid graph, ships each
// partition to a worker, applies the removals the workers record, and
// joins the sub-paths they extract (paper §V). With Config.Stateful set,
// partitions are shipped once and phases send only removal deltas
// (stateful.go); otherwise every phase reships its subgraphs.
type Driver struct {
	Pool   *dist.Pool
	G      *DiGraph
	Labels []int32 // partition of each hybrid node
	K      int
	Cfg    Config

	runID        string
	loaded       bool
	localOnly    bool // degraded mode: pool unusable, phases run on the master
	degradeRsn   DegradeReason
	pendingNodes []int32
	pendingEdges []EdgePair

	// Stateful placement state (DESIGN.md §11). placement[t] is the worker
	// currently hosting partition t (-1 = homeless, needs a re-host before
	// the next phase); partEpoch[t] is the generation stamp of that copy.
	// epochGen is a driver-global counter: every Load *attempt* draws a
	// strictly larger epoch, so state stored by an abandoned (timed-out)
	// Load can never collide with a later legitimate generation.
	placement     []int
	partEpoch     []int64
	epochGen      int64
	rebalanceFlag int32 // set by the pool's reconnect hook, drained at phase start

	// Checkpoint/resume state (ckpt.go). donePhases lists completed
	// graph-mutating phases; statsMirror/variantsMirror mirror the
	// caller-owned accumulators so checkpoints are self-contained;
	// resumeDone marks phases to skip after ResumeDriver.
	ckpt           *CheckpointConfig
	donePhases     []string
	resumeDone     map[string]bool
	statsMirror    TrimStats
	variantsMirror []Variant

	// Cancellation state (budget.go / watchdog.go). runCtx bounds the whole
	// run (nil = unbounded); each phase runs under a derived context whose
	// deadline is its share of the remaining run budget (costs) and which
	// the watchdog may cancel on stall. All three are nil unless enabled, so
	// the default path costs one nil check per phase.
	runCtx context.Context
	costs  *metrics.CostModel
	wd     *WatchdogConfig

	// reg is the optional operational-metrics sink (DESIGN.md §16): fault
	// counters and per-phase latency histograms. Nil (the default) costs a
	// nil check per event; never wire-encoded (it lives outside Config).
	reg *metrics.Registry

	// extractWorkers bounds the parallel subgraph-extraction fan-out (0 =
	// GOMAXPROCS, 1 = serial; equivalence tests pin both and compare).
	extractWorkers int
	ext            *extractor

	// Reusable partitionNodes scratch: the count and view arrays persist
	// across phases, but the flat id backing is allocated fresh per call
	// (one allocation per phase instead of k append-grown lists). It must
	// NOT be reused: the partition views become Subgraph.Local in RPC
	// args, and a timed-out call's abandoned encoder goroutine may still
	// be reading them when the next phase (or a local fallback within the
	// same phase) rebuilds the lists.
	partCounts []int32
	partView   [][]int32
}

// extractor returns the lazily-built subgraph extractor (the graph and
// labels are fixed after NewDriver).
func (d *Driver) extractor() *extractor {
	if d.ext == nil {
		d.ext = &extractor{g: d.G, labels: d.Labels}
	}
	return d.ext
}

// subgraphs builds every partition's wire view in parallel.
func (d *Driver) subgraphs(parts [][]int32) []Subgraph {
	return d.extractor().subgraphs(parts, d.extractWorkers)
}

// subgraphsCtx is subgraphs bounded by ctx: extraction abandons remaining
// partitions once the context cancels. The caller must check ctx before
// using the (partial) result.
func (d *Driver) subgraphsCtx(ctx context.Context, parts [][]int32) []Subgraph {
	return d.extractor().subgraphsGate(parts, d.extractWorkers, par.GateFor(ctx))
}

// ctxErr returns ctx's cancellation cause, or nil while it is live (or
// nil). Driver loops consult it BEFORE classifying a call error: a
// canceled call looks like a transport failure to the pool, and
// misreading it would re-host partitions — or worse, complete the run
// locally — instead of stopping.
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return context.Cause(ctx)
}

// DegradeReason explains why a driver is running phases locally instead
// of on the worker pool.
type DegradeReason int

const (
	// DegradeNone: not degraded — phases run on the worker pool.
	DegradeNone DegradeReason = iota
	// DegradeNoPool: degraded by choice — the driver was constructed
	// without a pool, so local execution is the configuration, not a
	// failure.
	DegradeNoPool
	// DegradeFailure: degraded by failure — the pool became unusable
	// mid-run (every worker lost, or re-hosting could not converge) and
	// the driver fell back to the master as the terminal safety net.
	DegradeFailure
)

func (r DegradeReason) String() string {
	switch r {
	case DegradeNone:
		return "not degraded"
	case DegradeNoPool:
		return "degraded by choice (no pool)"
	case DegradeFailure:
		return "degraded by failure (pool unusable)"
	}
	return fmt.Sprintf("DegradeReason(%d)", int(r))
}

// SetMetrics attaches an operational-metrics registry: re-host, lost-
// partition and degradation counters plus per-phase latency histograms
// land in it. Nil (the default) disables instrumentation. Call before the
// first phase.
func (d *Driver) SetMetrics(reg *metrics.Registry) { d.reg = reg }

// Degraded reports whether the driver runs phases locally (master-side)
// instead of on the worker pool.
func (d *Driver) Degraded() bool { return d.localOnly }

// DegradeReason reports why: DegradeNone while the pool is in use,
// DegradeNoPool when the driver was built without a pool, DegradeFailure
// when the pool became unusable mid-run.
func (d *Driver) DegradeReason() DegradeReason { return d.degradeRsn }

var runCounter int64

// removeEdge deletes an edge and records it for the next stateful delta.
func (d *Driver) removeEdge(e EdgePair) {
	d.G.RemoveEdge(e.From, e.To)
	if d.Cfg.Stateful && !d.localOnly {
		d.pendingEdges = append(d.pendingEdges, e)
	}
}

// removeNode deletes a node and records it for the next stateful delta.
func (d *Driver) removeNode(v int32) {
	d.G.RemoveNode(v)
	if d.Cfg.Stateful && !d.localOnly {
		d.pendingNodes = append(d.pendingNodes, v)
	}
}

// ensureLoaded ships every partition to a worker once (stateful mode),
// establishing the initial placement table. Placement goes through the
// same least-loaded assignment re-hosting uses; with all workers healthy
// it reduces to the classic round-robin t % Size() map.
func (d *Driver) ensureLoaded(ctx context.Context) error {
	if d.loaded {
		return nil
	}
	d.runID = fmt.Sprintf("run%d", atomic.AddInt64(&runCounter, 1))
	d.placement = make([]int, d.K)
	d.partEpoch = make([]int64, d.K)
	all := make([]int, d.K)
	for t := 0; t < d.K; t++ {
		d.placement[t] = -1
		all[t] = t
	}
	if err := d.rehostParts(ctx, all, false); err != nil {
		return fmt.Errorf("assembly: loading partitions: %w", err)
	}
	// The shipped subgraphs reflect the current graph: nothing pending.
	d.pendingNodes, d.pendingEdges = nil, nil
	d.loaded = true
	return nil
}

// maxRounds bounds the re-host retry loops: each round either makes
// progress or evicts a worker (the pool's MaxFailures), so a bound
// proportional to the pool size is enough for any reachable schedule.
func (d *Driver) maxRounds() int { return 2*d.Pool.Size() + 3 }

// rehostParts places every listed partition on a healthy worker: the
// partition's subgraph is rebuilt from the master's authoritative graph
// (which already reflects every applied removal, so the rebuilt copy
// equals the lost copy plus any outstanding delta) and Loaded at a
// freshly drawn epoch. Assignment is least-loaded-first over the healthy
// workers, counting only partitions that keep their current home, so a
// freshly reconnected (empty) worker naturally absorbs the moves.
// Placement and epoch are committed per partition only on Load success;
// a failed Load leaves the previous placement intact (still valid when
// the move was elective, retried when the home was lost).
func (d *Driver) rehostParts(ctx context.Context, parts []int, logMoves bool) error {
	moving := make(map[int]bool, len(parts))
	for _, p := range parts {
		moving[p] = true
	}
	for round := 0; len(parts) > 0; round++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return fmt.Errorf("assembly: re-hosting %d partition(s): %w", len(parts), cerr)
		}
		if round >= d.maxRounds() {
			return fmt.Errorf("assembly: %d partition(s) still homeless after %d re-host rounds (last partition %d)",
				len(parts), round, parts[0])
		}
		healthy := d.Pool.HealthyIDs()
		if len(healthy) == 0 {
			return fmt.Errorf("assembly: re-hosting %d partition(s): %w", len(parts), dist.ErrNoWorkers)
		}
		load := make(map[int]int, len(healthy))
		for _, w := range healthy {
			load[w] = 0
		}
		for p, w := range d.placement {
			if _, ok := load[w]; ok && !moving[p] {
				load[w]++
			}
		}
		target := make([]int, len(parts))
		epochs := make([]int64, len(parts))
		for i := range parts {
			best := healthy[0]
			for _, w := range healthy[1:] {
				if load[w] < load[best] {
					best = w
				}
			}
			target[i] = best
			load[best]++
			d.epochGen++
			epochs[i] = d.epochGen
		}
		// Fresh extraction per round: the subgraphs (including the Local
		// views of partitionNodes) ship inside RPC args, and an abandoned
		// timed-out Load's encoder may outlive this call, so none of this
		// memory is recycled.
		allParts := d.partitionNodes()
		x := d.extractor()
		sc := x.get()
		subs := make([]Subgraph, len(parts))
		for i, p := range parts {
			subs[i] = x.subgraph(sc, int32(p), allParts[p])
		}
		x.put(sc)
		replies := make([]interface{}, len(parts))
		for i := range replies {
			replies[i] = &LoadReply{}
		}
		_, errs := d.Pool.ParallelCallsPlacedCtx(ctx, len(parts), func(t int) int { return target[t] }, "Load",
			func(t int) interface{} {
				return &LoadArgs{RunID: d.runID, Sub: subs[t], Cfg: d.Cfg, Epoch: epochs[t]}
			}, replies)
		var remaining []int
		for i, err := range errs {
			p := parts[i]
			if err == nil {
				d.placement[p] = target[i]
				d.partEpoch[p] = epochs[i]
				if logMoves {
					d.reg.Counter("assembly_rehost_total").Inc()
					log.Printf("assembly: partition %d re-hosted onto worker %d (epoch %d)", p, target[i], epochs[i])
				}
				continue
			}
			// Cancellation first: a canceled Load is transport-shaped but
			// must stop the loop, not elect another target.
			if cerr := ctxErr(ctx); cerr != nil {
				return fmt.Errorf("assembly: loading partition %d: %w", p, cerr)
			}
			if dist.IsTransportError(err) || IsRehostable(err) {
				d.reg.Counter("assembly_rehost_failed_total").Inc()
				log.Printf("assembly: re-hosting partition %d onto worker %d failed (%v); retrying elsewhere", p, target[i], err)
				remaining = append(remaining, p)
				continue
			}
			return fmt.Errorf("assembly: loading partition %d onto worker %d: %w", p, target[i], err)
		}
		parts = remaining
	}
	return nil
}

// maybeRebalance drains the reconnect flag and, when a worker has come
// back, elects partitions to move from the most- to the least-loaded
// healthy workers (spread < 2 is already balanced). Elective moves keep
// their old placement until the new Load succeeds, so a failed move
// costs nothing. Called at phase boundaries only — mid-phase the
// placement table must stay stable under the in-flight calls.
func (d *Driver) maybeRebalance(ctx context.Context) {
	if atomic.SwapInt32(&d.rebalanceFlag, 0) == 0 || !d.loaded {
		return
	}
	healthy := d.Pool.HealthyIDs()
	if len(healthy) < 2 {
		return
	}
	load := make(map[int]int, len(healthy))
	for _, w := range healthy {
		load[w] = 0
	}
	// Partitions per healthy worker, and each worker's highest partition
	// (moving the highest-numbered partition first is arbitrary but
	// deterministic for a given placement).
	partsOf := make(map[int][]int, len(healthy))
	for p, w := range d.placement {
		if _, ok := load[w]; ok {
			load[w]++
			partsOf[w] = append(partsOf[w], p)
		}
	}
	var moves []int
	for {
		maxW, minW := healthy[0], healthy[0]
		for _, w := range healthy[1:] {
			if load[w] > load[maxW] {
				maxW = w
			}
			if load[w] < load[minW] {
				minW = w
			}
		}
		if load[maxW]-load[minW] < 2 {
			break
		}
		ps := partsOf[maxW]
		p := ps[len(ps)-1]
		partsOf[maxW] = ps[:len(ps)-1]
		load[maxW]--
		load[minW]++ // tentative: rehostParts re-derives the real target
		moves = append(moves, p)
	}
	if len(moves) == 0 {
		return
	}
	log.Printf("assembly: rebalancing %d partition(s) after worker reconnect", len(moves))
	if err := d.rehostParts(ctx, moves, true); err != nil {
		// Elective moves that failed keep their old (valid) placement;
		// truly homeless partitions get re-hosted by the phase loop.
		log.Printf("assembly: rebalance incomplete (%v); continuing with current placement", err)
	}
}

// Close releases worker-side state of a stateful run (no-op otherwise)
// and detaches the driver from the pool's reconnect notifications.
func (d *Driver) Close() error {
	if d.Pool != nil && d.Cfg.Stateful {
		d.Pool.SetReconnectHook(nil)
	}
	if !d.loaded {
		return nil
	}
	var firstErr error
	// Members, not 0..Size(): on a view only member workers are reachable
	// (and only they can hold this run's state).
	for _, w := range d.Pool.Members() {
		var ok bool
		if err := d.Pool.Call(w, "Unload", &UnloadArgs{RunID: d.runID}, &ok); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.loaded = false
	return firstErr
}

// phaseResult is the protocol-agnostic result of one partition's phase.
type phaseResult struct {
	Edges    []EdgePair
	Removal  Removal
	Paths    [][]int32
	Variants []Variant
}

// runPhase executes one named phase over all partitions, using whichever
// protocol the config selects, and returns per-partition results plus
// task times. Stateful mode pins partitions to workers, so RPCRetries
// applies only to the stateless protocol. When the pool becomes unusable
// (every worker evicted, or a stateful worker's pinned partition
// unreachable) the phase degrades to local execution on the master with a
// logged warning instead of failing the run.
func (d *Driver) runPhase(phase string, vcfg VariantConfig) ([]phaseResult, []time.Duration, error) {
	if cerr := ctxErr(d.runCtx); cerr != nil {
		return nil, nil, cerr
	}
	if d.reg != nil {
		start := time.Now()
		defer func() {
			d.reg.Histogram("assembly_phase_seconds_" + strings.ToLower(phase)).Observe(time.Since(start))
		}()
	}
	// Derive this phase's context (its slice of the run deadline, plus the
	// watchdog's cancel authority) and retire it when the phase ends.
	ctx, finish := d.phaseContext(phase)
	defer finish()
	if d.localOnly {
		res, lerr := d.runPhaseLocal(ctx, phase, vcfg)
		return res, nil, lerr
	}
	if d.Cfg.Stateful {
		return d.runPhaseStateful(ctx, phase, vcfg)
	}

	// Extract every partition's subgraph up front (parallel fan-out): the
	// scheduler invokes mkArgs from its per-worker runner goroutines, so
	// extraction state must not be shared lazily through them.
	subs := d.subgraphsCtx(ctx, d.partitionNodes())
	if cerr := ctxErr(ctx); cerr != nil {
		return nil, nil, cerr
	}
	replies := make([]interface{}, d.K)
	mk := func(t int) interface{} {
		if phase == "Variants" {
			return &VariantArgs{Sub: subs[t], Cfg: vcfg}
		}
		return &PhaseArgs{Sub: subs[t], Cfg: d.Cfg}
	}
	for i := range replies {
		switch phase {
		case "Transitive":
			replies[i] = &EdgeReply{}
		case "Containment", "Errors":
			replies[i] = &RemovalReply{}
		case "Paths":
			replies[i] = &PathsReply{}
		case "Variants":
			replies[i] = &VariantsReply{}
		}
	}
	times, err := d.Pool.ParallelCallsRetryCtx(ctx, d.K, phase, mk, replies, d.Cfg.RPCRetries)
	if err != nil {
		// Cancellation is checked before any degradation decision: a cancel
		// severs every in-flight call, which can empty the healthy set — and
		// a canceled run must stop, not complete locally.
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, times, cerr
		}
		// Graceful degradation: if the pool has no healthy workers left,
		// the work still fits on the master — subgraph extraction and the
		// phase scans are the same code the workers run.
		if errors.Is(err, dist.ErrNoWorkers) || d.Pool.NumHealthy() == 0 {
			d.reg.Counter("assembly_degraded_total").Inc()
			log.Printf("assembly: %s phase: no healthy workers (%v); falling back to local execution", phase, err)
			res, lerr := d.runPhaseLocal(ctx, phase, vcfg)
			return res, times, lerr
		}
		return nil, times, err
	}
	results := make([]phaseResult, d.K)
	for i, r := range replies {
		switch v := r.(type) {
		case *EdgeReply:
			results[i] = phaseResult{Edges: v.Edges}
		case *RemovalReply:
			results[i] = phaseResult{Removal: v.Removal}
		case *PathsReply:
			results[i] = phaseResult{Paths: v.Paths}
		case *VariantsReply:
			results[i] = phaseResult{Variants: v.Variants}
		}
	}
	return results, times, nil
}

// runPhaseStateful drives one phase of the stateful delta protocol with
// partition re-hosting: partitions whose worker was lost mid-phase (or
// whose stored state was epoch-fenced) are rebuilt from the master's
// authoritative graph, re-Loaded onto a surviving worker, and retried —
// the run only degrades to local execution when no workers survive or
// re-hosting cannot converge. The master's graph does not mutate during
// a phase (removals are applied by the Trim* callers afterwards), so a
// re-hosted copy equals the stored copy plus this phase's delta, and the
// delta re-applied to it is an idempotent no-op: every partition computes
// on identical graph state no matter how many times it was re-hosted,
// keeping output byte-identical to a fault-free run.
func (d *Driver) runPhaseStateful(ctx context.Context, phase string, vcfg VariantConfig) ([]phaseResult, []time.Duration, error) {
	if err := d.ensureLoaded(ctx); err != nil {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, nil, cerr
		}
		if d.fallBackStateful(phase, err) {
			res, lerr := d.runPhaseLocal(ctx, phase, vcfg)
			return res, nil, lerr
		}
		return nil, nil, err
	}
	d.maybeRebalance(ctx)
	delta := Delta{RemovedNodes: d.pendingNodes, RemovedEdges: d.pendingEdges}
	d.pendingNodes, d.pendingEdges = nil, nil
	results := make([]phaseResult, d.K)
	times := make([]time.Duration, d.K)
	pending := make([]int, d.K)
	for t := range pending {
		pending[t] = t
	}
	for round := 0; len(pending) > 0; round++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, times, cerr
		}
		if round >= d.maxRounds() {
			err := fmt.Errorf("assembly: %s phase: partition(s) %v still failing after %d re-host rounds", phase, pending, round)
			if d.fallBackStateful(phase, err) {
				res, lerr := d.runPhaseLocal(ctx, phase, vcfg)
				return res, times, lerr
			}
			return nil, times, err
		}
		// Re-home partitions that lost their worker in an earlier round.
		var homeless []int
		for _, p := range pending {
			if w := d.placement[p]; w < 0 || !d.Pool.Healthy(w) {
				homeless = append(homeless, p)
			}
		}
		if err := d.rehostParts(ctx, homeless, true); err != nil {
			if cerr := ctxErr(ctx); cerr != nil {
				return nil, times, cerr
			}
			if d.fallBackStateful(phase, err) {
				res, lerr := d.runPhaseLocal(ctx, phase, vcfg)
				return res, times, lerr
			}
			return nil, times, err
		}
		batch := pending
		replies := make([]interface{}, len(batch))
		for i := range replies {
			replies[i] = &PhaseReplyStateful{}
		}
		// place/mkArgs read the placement and epoch tables from the
		// scheduler's goroutines; the driver does not mutate them while the
		// call is in flight.
		ptimes, errs := d.Pool.ParallelCallsPlacedCtx(ctx, len(batch), func(t int) int { return d.placement[batch[t]] }, "Phase",
			func(t int) interface{} {
				p := batch[t]
				return &PhaseArgsStateful{RunID: d.runID, Part: int32(p), Phase: phase, Epoch: d.partEpoch[p],
					Delta: delta, Cfg: d.Cfg, VCfg: vcfg}
			}, replies)
		var next []int
		for i, err := range errs {
			p := batch[i]
			times[p] = ptimes[i]
			if err == nil {
				pr := replies[i].(*PhaseReplyStateful)
				results[p] = phaseResult{Edges: pr.Edges, Removal: pr.Removal, Paths: pr.Paths, Variants: pr.Variants}
				continue
			}
			// Cancellation before classification: a severed-by-cancel call is
			// transport-shaped but must stop the phase, not re-host its
			// partition.
			if cerr := ctxErr(ctx); cerr != nil {
				return nil, times, cerr
			}
			if dist.IsTransportError(err) || IsRehostable(err) {
				d.reg.Counter("assembly_partition_lost_total").Inc()
				log.Printf("assembly: %s phase: partition %d lost on worker %d (%v); re-hosting", phase, p, d.placement[p], err)
				d.placement[p] = -1
				next = append(next, p)
				continue
			}
			// Application-level service error: re-hosting cannot fix a bug.
			return nil, times, err
		}
		pending = next
	}
	return results, times, nil
}

// fallBackStateful decides whether a failed stateful phase should degrade
// to local execution, and if so makes the degradation sticky: worker-side
// partitions have missed this phase's delta, so the distributed state is
// stale for the rest of the run. Application-level errors (a service bug,
// an unknown phase) still propagate.
func (d *Driver) fallBackStateful(phase string, err error) bool {
	if !dist.IsTransportError(err) && d.Pool.NumHealthy() > 0 {
		return false
	}
	d.localOnly = true
	d.degradeRsn = DegradeFailure
	d.reg.Counter("assembly_degraded_total").Inc()
	d.pendingNodes, d.pendingEdges = nil, nil
	// The cause names the partition/worker that triggered the degradation
	// (rehostParts and the phase loop build it that way).
	log.Printf("assembly: %s phase (stateful): pool unusable, %d/%d workers healthy; cause: %v; falling back to local execution for the rest of the run",
		phase, d.Pool.NumHealthy(), d.Pool.Size(), err)
	return true
}

// runPhaseLocal executes one phase of every partition on the master. The
// master's graph always holds the current state, so local results are
// identical to what a healthy pool would return. Partition scans fan out
// over the same bounded pool as subgraph extraction, so degraded mode
// keeps the workers' parallelism (each result depends only on its own
// partition — output is identical at any worker count). A cancel lands at
// the next per-partition grain boundary; partial results are discarded
// and the context's cause is returned.
func (d *Driver) runPhaseLocal(ctx context.Context, phase string, vcfg VariantConfig) ([]phaseResult, error) {
	gate := par.GateFor(ctx)
	subs := d.subgraphsCtx(ctx, d.partitionNodes())
	if gate.Stopped() {
		return nil, ctxErr(ctx)
	}
	results := make([]phaseResult, d.K)
	scan := func(t int) {
		sub := &subs[t]
		switch phase {
		case "Transitive":
			results[t] = phaseResult{Edges: TransitiveEdges(sub, d.Cfg)}
		case "Containment":
			results[t] = phaseResult{Removal: ContainmentScan(sub, d.Cfg)}
		case "Errors":
			results[t] = phaseResult{Removal: ErrorScan(sub, d.Cfg)}
		case "Paths":
			results[t] = phaseResult{Paths: ExtractPaths(sub, d.Cfg)}
		case "Variants":
			results[t] = phaseResult{Variants: ScanVariants(sub, vcfg)}
		}
	}
	workers := d.extractWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.K {
		workers = d.K
	}
	if workers <= 1 {
		for t := 0; t < d.K; t++ {
			if gate.Stopped() {
				return nil, ctxErr(ctx)
			}
			scan(t)
		}
		return results, nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(atomic.AddInt64(&next, 1))
				if t >= d.K || gate.Stopped() {
					return
				}
				scan(t)
			}
		}()
	}
	wg.Wait()
	if gate.Stopped() {
		return nil, ctxErr(ctx)
	}
	return results, nil
}

// NewDriver validates and assembles a driver. A nil pool is allowed and
// means local execution by choice: every phase runs on the master and
// Degraded() reports DegradeNoPool (as opposed to DegradeFailure, the
// mid-run loss of a real pool).
func NewDriver(pool *dist.Pool, g *DiGraph, labels []int32, k int, cfg Config) (*Driver, error) {
	if len(labels) != g.NumNodes() {
		return nil, fmt.Errorf("assembly: %d labels for %d nodes", len(labels), g.NumNodes())
	}
	for v, l := range labels {
		if l < 0 || int(l) >= k {
			return nil, fmt.Errorf("assembly: node %d has partition %d outside [0,%d)", v, l, k)
		}
	}
	if cfg.MinEdgeOverlap == 0 {
		cfg = DefaultConfig()
	}
	d := &Driver{Pool: pool, G: g, Labels: labels, K: k, Cfg: cfg}
	if pool == nil {
		d.localOnly = true
		d.degradeRsn = DegradeNoPool
	} else if cfg.Stateful {
		// A reconnected worker is an empty rebalance target; the flag is
		// drained at the next phase boundary (mid-phase the placement
		// table must not move under in-flight calls).
		pool.SetReconnectHook(func(worker int) {
			atomic.StoreInt32(&d.rebalanceFlag, 1)
		})
	}
	return d, nil
}

// partitionNodes returns the live node ids of each partition (one O(n)
// scan shared by all subgraph extractions of a phase). Counted presize
// into one flat backing: two scans, a single allocation per phase. The
// backing is deliberately fresh each call — the views ship inside RPC
// args (Subgraph.Local), and an abandoned attempt's encoder may outlive
// the phase, so the memory must never be recycled under it.
func (d *Driver) partitionNodes() [][]int32 {
	if d.partCounts == nil {
		d.partCounts = make([]int32, d.K)
		d.partView = make([][]int32, d.K)
	}
	counts := d.partCounts
	for i := range counts {
		counts[i] = 0
	}
	n := d.G.NumNodes()
	total := 0
	for v := 0; v < n; v++ {
		if !d.G.Removed[v] {
			counts[d.Labels[v]]++
			total++
		}
	}
	buf := make([]int32, total)
	out := d.partView
	off := 0
	for p := 0; p < d.K; p++ {
		out[p] = buf[off : off : off+int(counts[p])]
		off += int(counts[p])
	}
	for v := 0; v < n; v++ {
		if !d.G.Removed[v] {
			p := d.Labels[v]
			out[p] = append(out[p], int32(v))
		}
	}
	return out
}

// TrimStats reports what distributed trimming removed, plus the measured
// per-partition task durations of each phase (used by the harness to
// project runtimes onto larger worker pools; see metrics.Makespan).
type TrimStats struct {
	TransitiveEdges int
	ContainedNodes  int
	FalseEdges      int
	DeadEndNodes    int // dead ends + bubbles combined
	// PhaseTaskTimes[phase][task]: phase 0 = transitive, 1 = containment,
	// 2 = errors; task = partition index.
	PhaseTaskTimes [3][]time.Duration
}

// Trim runs the three distributed trimming phases in order: transitive
// reduction, containment removal, error removal. After each phase the
// master applies the recorded removals to the hybrid graph before
// shipping the next phase's subgraphs. To call variants, run the phases
// individually and insert CallVariants before TrimErrors (which pops the
// bubbles variant calling reads).
func (d *Driver) Trim() (TrimStats, error) {
	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		return st, err
	}
	if err := d.TrimContainment(&st); err != nil {
		return st, err
	}
	if err := d.TrimErrors(&st); err != nil {
		return st, err
	}
	return st, nil
}

// TrimTransitive runs phase 1: transitive reduction (§V.A).
func (d *Driver) TrimTransitive(st *TrimStats) error {
	if d.skipDone("Transitive") {
		st.TransitiveEdges = d.statsMirror.TransitiveEdges
		return nil
	}
	results, taskTimes, err := d.runPhase("Transitive", VariantConfig{})
	st.PhaseTaskTimes[0] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: transitive phase: %w", err)
	}
	seen := map[EdgePair]bool{}
	for _, r := range results {
		for _, e := range r.Edges {
			if !seen[e] { // cross-partition edges are reported twice
				seen[e] = true
				d.removeEdge(e)
				st.TransitiveEdges++
			}
		}
	}
	d.statsMirror.TransitiveEdges = st.TransitiveEdges
	return d.notePhase("Transitive")
}

// TrimContainment runs phase 2: containment + false-positive edges (§V.B).
func (d *Driver) TrimContainment(st *TrimStats) error {
	if d.skipDone("Containment") {
		st.ContainedNodes = d.statsMirror.ContainedNodes
		st.FalseEdges = d.statsMirror.FalseEdges
		return nil
	}
	results, taskTimes, err := d.runPhase("Containment", VariantConfig{})
	st.PhaseTaskTimes[1] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: containment phase: %w", err)
	}
	seenEdge := map[EdgePair]bool{}
	for _, r := range results {
		for _, e := range r.Removal.Edges {
			if !seenEdge[e] {
				seenEdge[e] = true
				d.removeEdge(e)
				st.FalseEdges++
			}
		}
		for _, v := range r.Removal.Nodes {
			if !d.G.Removed[v] {
				d.removeNode(v)
				st.ContainedNodes++
			}
		}
	}
	d.statsMirror.ContainedNodes = st.ContainedNodes
	d.statsMirror.FalseEdges = st.FalseEdges
	return d.notePhase("Containment")
}

// TrimErrors runs phase 3: dead ends and bubbles (§V.C).
func (d *Driver) TrimErrors(st *TrimStats) error {
	if d.skipDone("Errors") {
		st.DeadEndNodes = d.statsMirror.DeadEndNodes
		return nil
	}
	results, taskTimes, err := d.runPhase("Errors", VariantConfig{})
	st.PhaseTaskTimes[2] = taskTimes
	if err != nil {
		return fmt.Errorf("assembly: error phase: %w", err)
	}
	for _, r := range results {
		for _, v := range r.Removal.Nodes {
			if !d.G.Removed[v] {
				d.removeNode(v)
				st.DeadEndNodes++
			}
		}
	}
	d.statsMirror.DeadEndNodes = st.DeadEndNodes
	return d.notePhase("Errors")
}

// Traverse extracts partition-local maximal paths on the workers and joins
// them on the master (paper §V.D): sub-path p1 is joined to p2 when p1's
// right endpoint has an out-edge to p2's left endpoint and that endpoint
// has no other in-edges.
func (d *Driver) Traverse() ([][]int32, error) {
	paths, _, err := d.TraverseTimed()
	return paths, err
}

// TraverseTimed is Traverse plus the per-partition task durations.
func (d *Driver) TraverseTimed() ([][]int32, []time.Duration, error) {
	results, taskTimes, err := d.runPhase("Paths", VariantConfig{})
	if err != nil {
		return nil, taskTimes, fmt.Errorf("assembly: traversal phase: %w", err)
	}
	var paths [][]int32
	for _, r := range results {
		paths = append(paths, r.Paths...)
	}
	return d.joinPaths(paths), taskTimes, nil
}

// joinPaths merges worker sub-paths across partition boundaries. A path
// p2 can be appended to p1 only when p2's left endpoint has exactly one
// in-edge and it comes from p1's right endpoint (paper rule); if one path
// end feeds several eligible continuations, the heaviest overlap wins.
func (d *Driver) joinPaths(paths [][]int32) [][]int32 {
	// Sort for determinism regardless of worker reply order.
	sort.Slice(paths, func(i, j int) bool { return paths[i][0] < paths[j][0] })
	endAt := map[int32]int{} // right endpoint -> path index (paths are node-disjoint)
	for i, p := range paths {
		endAt[p[len(p)-1]] = i
	}
	succ := make([]int, len(paths))
	for i := range succ {
		succ[i] = -1
	}
	claimed := make([]bool, len(paths))
	for j, p := range paths {
		ins := d.G.liveIn(p[0])
		if len(ins) != 1 {
			continue
		}
		i, ok := endAt[ins[0].From]
		if !ok || i == j {
			continue
		}
		e, ok := d.G.OutEdge(ins[0].From, p[0])
		if !ok {
			continue
		}
		if cur := succ[i]; cur != -1 {
			ce, _ := d.G.OutEdge(ins[0].From, paths[cur][0])
			if e.Len < ce.Len || (e.Len == ce.Len && p[0] >= paths[cur][0]) {
				continue
			}
			claimed[cur] = false
		}
		succ[i] = j
		claimed[j] = true
	}
	done := make([]bool, len(paths))
	var out [][]int32
	emit := func(start int) {
		var merged []int32
		for j := start; j != -1 && !done[j]; j = succ[j] {
			done[j] = true
			merged = append(merged, paths[j]...)
		}
		out = append(out, merged)
	}
	for i := range paths {
		if !claimed[i] && !done[i] {
			emit(i)
		}
	}
	for i := range paths { // pure cycles: every member claimed
		if !done[i] {
			emit(i)
		}
	}
	return out
}

// BuildContigs renders each joined path into a contig by splicing
// consecutive contigs at their edge placements.
func (d *Driver) BuildContigs(paths [][]int32) [][]byte {
	var contigs [][]byte
	for _, p := range paths {
		contig := append([]byte(nil), d.G.Contigs[p[0]]...)
		pos := 0 // start of current node's contig in merged coordinates
		for i := 1; i < len(p); i++ {
			e, ok := d.G.OutEdge(p[i-1], p[i])
			if !ok {
				break // defensive: path edge vanished
			}
			pos += int(e.Diag)
			next := d.G.Contigs[p[i]]
			if pos+len(next) <= len(contig) {
				continue // fully covered
			}
			skip := len(contig) - pos
			if skip < 0 {
				skip = 0
			}
			contig = append(contig, next[skip:]...)
		}
		contigs = append(contigs, contig)
	}
	return contigs
}
