package assembly

import (
	"bytes"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"testing"
	"time"

	"focus/internal/dist"
)

// Randomized value generators for the Wire property test. They cover the
// encoding's edge cases on purpose: nil vs empty slices, absent contigs,
// N/lowercase/separator bytes in sequences, and ids at the int32 extremes
// (the delta coder's worst case).

func randIDs(rng *rand.Rand) []int32 {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return []int32{}
	}
	ids := make([]int32, rng.Intn(20))
	for i := range ids {
		switch rng.Intn(10) {
		case 0:
			ids[i] = math.MaxInt32
		case 1:
			ids[i] = math.MinInt32
		default:
			ids[i] = int32(rng.Uint32())
		}
	}
	return ids
}

func randContig(rng *rand.Rand) []byte {
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1:
		return []byte{}
	}
	alphabet := []byte("ACGTACGTACGTN#acgt")
	c := make([]byte, rng.Intn(60))
	for i := range c {
		c[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return c
}

func randEdges(rng *rand.Rand) []Edge {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return []Edge{}
	}
	es := make([]Edge, rng.Intn(15))
	for i := range es {
		es[i] = Edge{
			From: int32(rng.Uint32()), To: int32(rng.Uint32()),
			Diag: int32(rng.Uint32()), Len: int32(rng.Uint32()),
			Ident: rng.Float32(), Contain: rng.Intn(2) == 0,
		}
	}
	return es
}

func randEdgePairs(rng *rand.Rand) []EdgePair {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return []EdgePair{}
	}
	ps := make([]EdgePair, rng.Intn(15))
	for i := range ps {
		ps[i] = EdgePair{From: int32(rng.Uint32()), To: int32(rng.Uint32())}
	}
	return ps
}

func randPaths(rng *rand.Rand) [][]int32 {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return [][]int32{}
	}
	paths := make([][]int32, rng.Intn(8))
	for i := range paths {
		paths[i] = randIDs(rng)
	}
	return paths
}

func randVariants(rng *rand.Rand) []Variant {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return []Variant{}
	}
	vs := make([]Variant, rng.Intn(6))
	for i := range vs {
		vs[i] = Variant{
			From: int32(rng.Uint32()), To: int32(rng.Uint32()),
			AlleleA: int32(rng.Uint32()), AlleleB: int32(rng.Uint32()),
			CovA: rng.Int63() - rng.Int63(), CovB: rng.Int63(),
			LenA: int32(rng.Uint32()), LenB: int32(rng.Uint32()),
			Identity: rng.Float64(), Mismatches: int32(rng.Uint32()),
			Kind: VariantKind(rng.Intn(256)), Reconverges: rng.Intn(2) == 0,
		}
	}
	return vs
}

func randSubgraph(rng *rand.Rand) Subgraph {
	s := Subgraph{Part: int32(rng.Uint32()), Local: randIDs(rng), Edges: randEdges(rng)}
	switch rng.Intn(8) {
	case 0:
		s.Nodes = nil
	case 1:
		s.Nodes = []WireNode{}
	default:
		s.Nodes = make([]WireNode, rng.Intn(10))
		for i := range s.Nodes {
			s.Nodes[i] = WireNode{
				ID: int32(rng.Uint32()), Part: int32(rng.Uint32()),
				Weight: rng.Int63() - rng.Int63(), Contig: randContig(rng),
			}
		}
	}
	return s
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randConfig(rng *rand.Rand) Config {
	return Config{
		MinEdgeOverlap: rng.Intn(1000) - 500, MinEdgeIdentity: rng.Float64(),
		Band: rng.Intn(100), DiagTolerance: rng.Intn(100),
		MaxTipNodes: rng.Intn(10), MinTipLen: rng.Intn(1000),
		RPCRetries: rng.Intn(5), Stateful: rng.Intn(2) == 0,
		Engine:  PhaseEngine(rng.Intn(2)),
		Workers: rng.Intn(16),
	}
}

func randVariantConfig(rng *rand.Rand) VariantConfig {
	return VariantConfig{
		MinBranchCov: rng.Int63n(100), MaxLenDiff: rng.Intn(20),
		Band: rng.Intn(64), MinIdentity: rng.Float64(),
	}
}

// rtWire round-trips v through its Wire encoding into fresh (a pointer to
// a zero or previously-used value of the same type) and requires exact
// reflect.DeepEqual equality.
func rtWire(t *testing.T, v, fresh dist.Wire) {
	t.Helper()
	enc := v.AppendTo(nil)
	if err := fresh.DecodeFrom(enc); err != nil {
		t.Fatalf("%T decode: %v\nvalue: %+v", v, err, v)
	}
	if !reflect.DeepEqual(v, fresh) {
		t.Fatalf("%T round trip diverged:\nsent %+v\ngot  %+v", v, v, fresh)
	}
}

// TestWireRoundTripProperty round-trips 1000 randomized values across
// every Wire payload type of the assembly service. Decode targets are
// REUSED across iterations, so stale fields from a previous decode must
// be fully overwritten — exactly what the codec does when net/rpc reuses
// reply values.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	var (
		pa  PhaseArgs
		va  VariantArgs
		er  EdgeReply
		rr  RemovalReply
		pr  PathsReply
		vr  VariantsReply
		la  LoadArgs
		lr  LoadReply
		pas PhaseArgsStateful
		prs PhaseReplyStateful
	)
	for i := 0; i < 100; i++ {
		rtWire(t, &PhaseArgs{Sub: randSubgraph(rng), Cfg: randConfig(rng)}, &pa)
		rtWire(t, &VariantArgs{Sub: randSubgraph(rng), Cfg: randVariantConfig(rng)}, &va)
		rtWire(t, &EdgeReply{Edges: randEdgePairs(rng)}, &er)
		rtWire(t, &RemovalReply{Removal: Removal{Nodes: randIDs(rng), Edges: randEdgePairs(rng)}}, &rr)
		rtWire(t, &PathsReply{Paths: randPaths(rng)}, &pr)
		rtWire(t, &VariantsReply{Variants: randVariants(rng)}, &vr)
		rtWire(t, &LoadArgs{RunID: randString(rng), Sub: randSubgraph(rng), Cfg: randConfig(rng), Epoch: rng.Int63()}, &la)
		rtWire(t, &LoadReply{Nodes: rng.Intn(1000), Edges: rng.Intn(1000)}, &lr)
		rtWire(t, &PhaseArgsStateful{
			RunID: randString(rng), Part: int32(rng.Uint32()), Phase: randString(rng),
			Epoch: rng.Int63(),
			Delta: Delta{RemovedNodes: randIDs(rng), RemovedEdges: randEdgePairs(rng)},
			Cfg:   randConfig(rng), VCfg: randVariantConfig(rng),
		}, &pas)
		rtWire(t, &PhaseReplyStateful{
			Edges:   randEdgePairs(rng),
			Removal: Removal{Nodes: randIDs(rng), Edges: randEdgePairs(rng)},
			Paths:   randPaths(rng), Variants: randVariants(rng),
		}, &prs)
	}
}

// TestWireDecodeCorruptFrames feeds truncated and bit-flipped encodings
// to the decoders: they must error (or decode something) without
// panicking or allocating absurdly — never trust the wire.
func TestWireDecodeCorruptFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	args := &PhaseArgs{Sub: randSubgraph(rng), Cfg: randConfig(rng)}
	enc := args.AppendTo(nil)
	var dst PhaseArgs
	for cut := 0; cut < len(enc); cut += 3 {
		if dst.DecodeFrom(enc[:cut]) == nil && cut < len(enc) {
			t.Fatalf("truncated frame (%d/%d bytes) decoded cleanly", cut, len(enc))
		}
	}
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), enc...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_ = dst.DecodeFrom(mut) // must not panic; errors are fine
	}
}

// TestWireCodecEquivalence is the acceptance check for the codec and the
// parallel extractor: the full trim+traverse+contigs outcome must be
// identical across pool sizes 1/2/8, gob vs binary codec, and serial vs
// parallel subgraph extraction.
func TestWireCodecEquivalence(t *testing.T) {
	const k = 8
	baseline := func() runOutcome {
		pool, err := dist.NewLocalPoolOpts(1, NewService, dist.Options{Codec: dist.CodecGob, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		d := chaosPipeline(t, pool, k, false)
		d.extractWorkers = 1
		out, err := fullRun(t, d)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	for _, workers := range []int{1, 2, 8} {
		for _, codec := range []dist.Codec{dist.CodecGob, dist.CodecBinary} {
			for _, ew := range []int{1, 8} {
				pool, err := dist.NewLocalPoolOpts(workers, NewService, dist.Options{Codec: codec, Logf: t.Logf})
				if err != nil {
					t.Fatal(err)
				}
				d := chaosPipeline(t, pool, k, false)
				d.extractWorkers = ew
				got, err := fullRun(t, d)
				pool.Close()
				if err != nil {
					t.Fatalf("workers=%d codec=%d extract=%d: %v", workers, codec, ew, err)
				}
				if !reflect.DeepEqual(got, baseline) {
					t.Fatalf("workers=%d codec=%d extract=%d diverged:\ngot  %+v\nwant %+v",
						workers, codec, ew, got, baseline)
				}
			}
		}
	}

	// The stateful delta protocol must agree across codecs too.
	for _, codec := range []dist.Codec{dist.CodecGob, dist.CodecBinary} {
		pool, err := dist.NewLocalPoolOpts(2, NewService, dist.Options{Codec: codec, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		got, err := fullRun(t, chaosPipeline(t, pool, k, true))
		pool.Close()
		if err != nil {
			t.Fatalf("stateful codec=%d: %v", codec, err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("stateful codec=%d diverged:\ngot  %+v\nwant %+v", codec, got, baseline)
		}
	}
}

// TestWireSubgraphsSerialParallel: the exported parallel extractor is
// deterministic — same Subgraphs, and byte-identical encodings, at any
// worker count.
func TestWireSubgraphsSerialParallel(t *testing.T) {
	genome := randGenome(17, 2500)
	reads := tilingReads(genome, 100, 30)
	const k = 8
	dg, labels, _ := buildPipeline(t, reads, k)

	serial := Subgraphs(dg, labels, k, 1)
	for _, workers := range []int{2, 8} {
		par := Subgraphs(dg, labels, k, workers)
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("parallel extraction (workers=%d) diverged from serial", workers)
		}
		for i := range par {
			a := appendSubgraph(nil, &serial[i])
			b := appendSubgraph(nil, &par[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("partition %d: encoding differs between serial and workers=%d", i, workers)
			}
		}
	}
}

// TestWireGobWorkerCrossVersion is the satellite-c mixed-version check: a
// binary-preferring master (CodecAuto) against an old-style gob-only
// worker falls back cleanly and the assembly run matches the baseline.
func TestWireGobWorkerCrossVersion(t *testing.T) {
	const k = 4
	want := healthyBaseline(t, k)

	rpcSrv := rpc.NewServer()
	if err := rpcSrv.RegisterName(dist.ServiceName, NewService()); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go rpcSrv.ServeConn(conn) // plain gob, no handshake sniffing
		}
	}()

	pool, err := dist.DialPoolOpts([]string{lis.Addr().String()},
		dist.Options{HandshakeTimeout: 250 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("CodecAuto dial against gob-only worker: %v", err)
	}
	defer pool.Close()

	got, err := fullRun(t, chaosPipeline(t, pool, k, false))
	if err != nil {
		t.Fatalf("run over gob fallback failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gob-fallback run diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
