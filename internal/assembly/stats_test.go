package assembly

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

// bruteN50 is an independent N50 definition for cross-checking.
func bruteN50(lens []int) int {
	sorted := append([]int(nil), lens...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, l := range sorted {
		total += l
	}
	cum := 0
	for _, l := range sorted {
		cum += l
		if 2*cum >= total {
			return l
		}
	}
	return 0
}

func TestComputeStatsQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var contigs [][]byte
		var lens []int
		for _, r := range raw {
			n := int(r)%2000 + 1
			contigs = append(contigs, bytes.Repeat([]byte("A"), n))
			lens = append(lens, n)
		}
		st := ComputeStats(contigs)
		if st.N50 != bruteN50(lens) {
			return false
		}
		// N50 is between min and max contig length.
		mn, mx := lens[0], lens[0]
		total := 0
		for _, l := range lens {
			if l < mn {
				mn = l
			}
			if l > mx {
				mx = l
			}
			total += l
		}
		return st.N50 >= mn && st.N50 <= mx && st.MaxContig == mx && st.TotalBases == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestN50SingleContig(t *testing.T) {
	st := ComputeStats([][]byte{bytes.Repeat([]byte("C"), 777)})
	if st.N50 != 777 || st.MaxContig != 777 || st.NumContigs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestN50OddTotalRounding(t *testing.T) {
	// Lengths 3,2,2 (total 7): contigs >= 3 cover 3 < 3.5, so N50 = 2.
	mk := func(n int) []byte { return bytes.Repeat([]byte("A"), n) }
	st := ComputeStats([][]byte{mk(3), mk(2), mk(2)})
	if st.N50 != 2 {
		t.Errorf("N50 = %d, want 2", st.N50)
	}
}

func TestN50HalfwayTie(t *testing.T) {
	// Two equal contigs: cumulative reaches exactly half at the first.
	st := ComputeStats([][]byte{bytes.Repeat([]byte("A"), 100), bytes.Repeat([]byte("A"), 100)})
	if st.N50 != 100 {
		t.Errorf("N50 = %d", st.N50)
	}
}
