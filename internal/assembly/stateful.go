package assembly

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// The stateless protocol reships each partition's subgraph every phase.
// This file adds the stateful protocol, which matches the paper's MPI
// model more closely: each worker receives its partition once (Load) and
// subsequent phases send only the removal delta (graph mutations are
// monotone — trimming only deletes nodes and edges — so ghosts never need
// additions). The Driver picks the protocol via Config.Stateful; the
// transport ablation bench compares the two.
//
// Epoch fencing (DESIGN.md §11): every Load carries a master-assigned,
// per-partition monotonically increasing epoch, and every Phase names the
// epoch it expects the stored partition to be at. A partition that was
// re-hosted after a worker failure gets a higher epoch on its new home, so
// (a) a Phase addressed to the old copy — on a worker that wedged and
// later recovered — is rejected instead of computing on stale state, and
// (b) a duplicate Load from an abandoned, timed-out attempt cannot roll a
// partition back to an older generation. Fencing errors are app-level
// (the worker is alive; its *state* is unusable), and net/rpc flattens
// app-level errors to strings, so detection is by sentinel substring.

const (
	// staleEpochMsg marks a Load/Phase whose epoch does not match the
	// worker's stored state. Matched by substring: rpc.ServerError erases
	// error types in transit.
	staleEpochMsg = "assembly: stale partition epoch"
	// notLoadedMsg marks a Phase addressed to a partition the worker does
	// not hold (never loaded, unloaded, or swept — e.g. a worker process
	// restart lost its in-memory state table).
	notLoadedMsg = "assembly: partition not loaded"
)

// IsRehostable reports whether an error from a stateful Load/Phase call
// means the addressed worker lacks usable state for the partition — the
// worker is alive but the partition must be re-hosted (re-Loaded at a
// fresh epoch) before phases can resume. Transport errors are NOT
// rehostable by this predicate (the caller handles those via
// dist.IsTransportError); only the two state sentinels match.
func IsRehostable(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, staleEpochMsg) || strings.Contains(msg, notLoadedMsg)
}

// storedPart is one partition retained on a worker between phases.
type storedPart struct {
	sub   Subgraph
	epoch int64
	touch time.Time // last Load/Phase, for the run-TTL sweep
}

// state is the worker-side session table. It lives on the Service value,
// so each worker (one Service instance per worker) has its own.
type state struct {
	mu    sync.Mutex
	parts map[string]*storedPart
}

func (s *Service) ensureState() *state {
	s.once.Do(func() {
		s.st = &state{parts: map[string]*storedPart{}}
	})
	return s.st
}

func partKey(runID string, part int32) string {
	return fmt.Sprintf("%s/%d", runID, part)
}

// LoadArgs ships a partition to be retained. Epoch is the partition's
// generation stamp: the worker rejects a Load that does not advance the
// epoch of an already-stored copy (a late duplicate from a timed-out
// attempt must not clobber a newer generation).
type LoadArgs struct {
	RunID string
	Sub   Subgraph
	Cfg   Config
	Epoch int64
}

// LoadReply acknowledges a Load.
type LoadReply struct{ Nodes, Edges int }

// Load stores a partition (and the trimming config) for later
// delta-driven phases.
func (s *Service) Load(args *LoadArgs, reply *LoadReply) error {
	st := s.ensureState()
	st.mu.Lock()
	defer st.mu.Unlock()
	key := partKey(args.RunID, args.Sub.Part)
	if old, ok := st.parts[key]; ok && args.Epoch <= old.epoch {
		return fmt.Errorf("%s: Load of partition %d of run %q at epoch %d rejected, stored epoch is %d",
			staleEpochMsg, args.Sub.Part, args.RunID, args.Epoch, old.epoch)
	}
	st.parts[key] = &storedPart{sub: args.Sub, epoch: args.Epoch, touch: time.Now()}
	reply.Nodes = len(args.Sub.Nodes)
	reply.Edges = len(args.Sub.Edges)
	return nil
}

// Delta is the set of removals applied to the global graph since the
// worker last saw its partition.
type Delta struct {
	RemovedNodes []int32
	RemovedEdges []EdgePair
}

// PhaseArgsStateful drives one phase against a stored partition. Epoch
// must equal the epoch of the stored copy the master believes this worker
// holds; a mismatch in either direction means master and worker disagree
// about the partition's generation and the call is rejected.
type PhaseArgsStateful struct {
	RunID string
	Part  int32
	Phase string // "Transitive" | "Containment" | "Errors" | "Paths" | "Variants"
	Epoch int64
	Delta Delta
	Cfg   Config
	VCfg  VariantConfig
}

// PhaseReplyStateful carries whichever result the phase produces.
type PhaseReplyStateful struct {
	Edges    []EdgePair
	Removal  Removal
	Paths    [][]int32
	Variants []Variant
}

// applyDelta removes nodes/edges from a stored subgraph in place.
func applyDelta(sub *Subgraph, d Delta) {
	if len(d.RemovedNodes) == 0 && len(d.RemovedEdges) == 0 {
		return
	}
	dead := make(map[int32]bool, len(d.RemovedNodes))
	for _, v := range d.RemovedNodes {
		dead[v] = true
	}
	deadEdge := make(map[EdgePair]bool, len(d.RemovedEdges))
	for _, e := range d.RemovedEdges {
		deadEdge[e] = true
	}
	nodes := sub.Nodes[:0]
	for _, n := range sub.Nodes {
		if !dead[n.ID] {
			nodes = append(nodes, n)
		}
	}
	sub.Nodes = nodes
	local := sub.Local[:0]
	for _, id := range sub.Local {
		if !dead[id] {
			local = append(local, id)
		}
	}
	sub.Local = local
	edges := sub.Edges[:0]
	for _, e := range sub.Edges {
		if dead[e.From] || dead[e.To] || deadEdge[EdgePair{From: e.From, To: e.To}] {
			continue
		}
		edges = append(edges, e)
	}
	sub.Edges = edges
}

// Phase applies the delta to the stored partition and runs the requested
// phase on it.
func (s *Service) Phase(args *PhaseArgsStateful, reply *PhaseReplyStateful) error {
	st := s.ensureState()
	st.mu.Lock()
	p, ok := st.parts[partKey(args.RunID, args.Part)]
	if ok && p.epoch != args.Epoch {
		stored := p.epoch
		st.mu.Unlock()
		return fmt.Errorf("%s: Phase %s of partition %d of run %q at epoch %d, stored epoch is %d",
			staleEpochMsg, args.Phase, args.Part, args.RunID, args.Epoch, stored)
	}
	if ok {
		p.touch = time.Now()
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%s: partition %d of run %q", notLoadedMsg, args.Part, args.RunID)
	}
	applyDelta(&p.sub, args.Delta)
	switch args.Phase {
	case "Transitive":
		reply.Edges = TransitiveEdges(&p.sub, args.Cfg)
	case "Containment":
		reply.Removal = ContainmentScan(&p.sub, args.Cfg)
	case "Errors":
		reply.Removal = ErrorScan(&p.sub, args.Cfg)
	case "Paths":
		reply.Paths = ExtractPaths(&p.sub, args.Cfg)
	case "Variants":
		reply.Variants = ScanVariants(&p.sub, args.VCfg)
	default:
		return fmt.Errorf("assembly: unknown phase %q", args.Phase)
	}
	return nil
}

// UnloadArgs releases a run's partitions on a worker.
type UnloadArgs struct{ RunID string }

// Unload drops every stored partition of a run (call when the master is
// done, to free worker memory).
func (s *Service) Unload(args *UnloadArgs, reply *bool) error {
	st := s.ensureState()
	st.mu.Lock()
	defer st.mu.Unlock()
	prefix := args.RunID + "/"
	for k := range st.parts {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			delete(st.parts, k)
		}
	}
	*reply = true
	return nil
}

// StartRunTTL starts a background sweep that drops stored partitions not
// touched (Loaded or Phased) within ttl. Long-lived worker processes use
// it (focus-worker -run-ttl) so masters that die without Unloading do not
// leak partitions forever. The sweep stops when stop is closed; ttl <= 0
// is a no-op. A swept partition that a master still believes is resident
// surfaces as a not-loaded fencing error on its next Phase, which the
// master answers by re-hosting — the same path as a worker restart.
func (s *Service) StartRunTTL(ttl time.Duration, stop <-chan struct{}) {
	if ttl <= 0 {
		return
	}
	st := s.ensureState()
	go func() {
		interval := ttl / 4
		if interval < time.Second {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				cutoff := time.Now().Add(-ttl)
				st.mu.Lock()
				for k, p := range st.parts {
					if p.touch.Before(cutoff) {
						delete(st.parts, k)
					}
				}
				st.mu.Unlock()
			}
		}
	}()
}
