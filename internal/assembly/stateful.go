package assembly

import (
	"fmt"
	"sync"
)

// The stateless protocol reships each partition's subgraph every phase.
// This file adds the stateful protocol, which matches the paper's MPI
// model more closely: each worker receives its partition once (Load) and
// subsequent phases send only the removal delta (graph mutations are
// monotone — trimming only deletes nodes and edges — so ghosts never need
// additions). The Driver picks the protocol via Config.Stateful; the
// transport ablation bench compares the two.

// storedPart is one partition retained on a worker between phases.
type storedPart struct {
	sub Subgraph
}

// state is the worker-side session table. It lives on the Service value,
// so each worker (one Service instance per worker) has its own.
type state struct {
	mu    sync.Mutex
	parts map[string]*storedPart
}

func (s *Service) ensureState() *state {
	s.once.Do(func() {
		s.st = &state{parts: map[string]*storedPart{}}
	})
	return s.st
}

func partKey(runID string, part int32) string {
	return fmt.Sprintf("%s/%d", runID, part)
}

// LoadArgs ships a partition to be retained.
type LoadArgs struct {
	RunID string
	Sub   Subgraph
	Cfg   Config
}

// LoadReply acknowledges a Load.
type LoadReply struct{ Nodes, Edges int }

// Load stores a partition (and the trimming config) for later
// delta-driven phases.
func (s *Service) Load(args *LoadArgs, reply *LoadReply) error {
	st := s.ensureState()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.parts[partKey(args.RunID, args.Sub.Part)] = &storedPart{sub: args.Sub}
	reply.Nodes = len(args.Sub.Nodes)
	reply.Edges = len(args.Sub.Edges)
	return nil
}

// Delta is the set of removals applied to the global graph since the
// worker last saw its partition.
type Delta struct {
	RemovedNodes []int32
	RemovedEdges []EdgePair
}

// PhaseArgsStateful drives one phase against a stored partition.
type PhaseArgsStateful struct {
	RunID string
	Part  int32
	Phase string // "Transitive" | "Containment" | "Errors" | "Paths" | "Variants"
	Delta Delta
	Cfg   Config
	VCfg  VariantConfig
}

// PhaseReplyStateful carries whichever result the phase produces.
type PhaseReplyStateful struct {
	Edges    []EdgePair
	Removal  Removal
	Paths    [][]int32
	Variants []Variant
}

// applyDelta removes nodes/edges from a stored subgraph in place.
func applyDelta(sub *Subgraph, d Delta) {
	if len(d.RemovedNodes) == 0 && len(d.RemovedEdges) == 0 {
		return
	}
	dead := make(map[int32]bool, len(d.RemovedNodes))
	for _, v := range d.RemovedNodes {
		dead[v] = true
	}
	deadEdge := make(map[EdgePair]bool, len(d.RemovedEdges))
	for _, e := range d.RemovedEdges {
		deadEdge[e] = true
	}
	nodes := sub.Nodes[:0]
	for _, n := range sub.Nodes {
		if !dead[n.ID] {
			nodes = append(nodes, n)
		}
	}
	sub.Nodes = nodes
	local := sub.Local[:0]
	for _, id := range sub.Local {
		if !dead[id] {
			local = append(local, id)
		}
	}
	sub.Local = local
	edges := sub.Edges[:0]
	for _, e := range sub.Edges {
		if dead[e.From] || dead[e.To] || deadEdge[EdgePair{From: e.From, To: e.To}] {
			continue
		}
		edges = append(edges, e)
	}
	sub.Edges = edges
}

// Phase applies the delta to the stored partition and runs the requested
// phase on it.
func (s *Service) Phase(args *PhaseArgsStateful, reply *PhaseReplyStateful) error {
	st := s.ensureState()
	st.mu.Lock()
	p, ok := st.parts[partKey(args.RunID, args.Part)]
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("assembly: partition %d of run %q not loaded", args.Part, args.RunID)
	}
	applyDelta(&p.sub, args.Delta)
	switch args.Phase {
	case "Transitive":
		reply.Edges = TransitiveEdges(&p.sub, args.Cfg)
	case "Containment":
		reply.Removal = ContainmentScan(&p.sub, args.Cfg)
	case "Errors":
		reply.Removal = ErrorScan(&p.sub, args.Cfg)
	case "Paths":
		reply.Paths = ExtractPaths(&p.sub, args.Cfg)
	case "Variants":
		reply.Variants = ScanVariants(&p.sub, args.VCfg)
	default:
		return fmt.Errorf("assembly: unknown phase %q", args.Phase)
	}
	return nil
}

// UnloadArgs releases a run's partitions on a worker.
type UnloadArgs struct{ RunID string }

// Unload drops every stored partition of a run (call when the master is
// done, to free worker memory).
func (s *Service) Unload(args *UnloadArgs, reply *bool) error {
	st := s.ensureState()
	st.mu.Lock()
	defer st.mu.Unlock()
	prefix := args.RunID + "/"
	for k := range st.parts {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			delete(st.parts, k)
		}
	}
	*reply = true
	return nil
}
