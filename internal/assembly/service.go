package assembly

import (
	"sync"

	"focus/internal/overlap"
)

// Service is the RPC service workers host (registered under
// dist.ServiceName). The per-phase methods (Transitive, Containment,
// Errors, Paths, Variants) are stateless — each call carries the
// partition subgraph. The Load/Phase/Unload trio implements the stateful
// protocol of stateful.go, where workers retain their partition and
// phases ship only removal deltas.
type Service struct {
	once sync.Once
	st   *state
}

// PhaseArgs carries one partition's subgraph and the trimming config.
type PhaseArgs struct {
	Sub Subgraph
	Cfg Config
}

// EdgeReply returns edges recorded for removal.
type EdgeReply struct{ Edges []EdgePair }

// RemovalReply returns nodes and edges recorded for removal.
type RemovalReply struct{ Removal Removal }

// PathsReply returns the partition-local maximal sub-paths.
type PathsReply struct{ Paths [][]int32 }

// Transitive runs transitive edge detection on the partition (paper §V.A).
func (s *Service) Transitive(args *PhaseArgs, reply *EdgeReply) error {
	reply.Edges = TransitiveEdges(&args.Sub, args.Cfg)
	return nil
}

// Containment runs containment and false-positive-edge detection (§V.B).
func (s *Service) Containment(args *PhaseArgs, reply *RemovalReply) error {
	reply.Removal = ContainmentScan(&args.Sub, args.Cfg)
	return nil
}

// Errors runs dead-end and bubble detection (§V.C).
func (s *Service) Errors(args *PhaseArgs, reply *RemovalReply) error {
	reply.Removal = ErrorScan(&args.Sub, args.Cfg)
	return nil
}

// Paths extracts partition-local maximal paths (§V.D).
func (s *Service) Paths(args *PhaseArgs, reply *PathsReply) error {
	reply.Paths = ExtractPaths(&args.Sub, args.Cfg)
	return nil
}

// Ping verifies worker liveness: the pool's reconnect loop and the
// focus-worker -healthcheck probe call it (dist.HealthCheck).
func (s *Service) Ping(args *int, reply *bool) error {
	*reply = true
	return nil
}

// AlignPair runs one distributed read-alignment job (paper §II.B: subset
// pairs are sent to different processors). The overlap package provides
// both the wire types and the computation; this method just exposes them
// on the worker service.
func (s *Service) AlignPair(args *overlap.AlignPairArgs, reply *overlap.AlignPairReply) error {
	reply.Records = overlap.AlignPair(args)
	return nil
}

// NewService is the factory handed to dist.NewLocalPool.
func NewService() interface{} { return &Service{} }
