package assembly

import (
	"reflect"
	"testing"
	"time"

	"focus/internal/dist"
	"focus/internal/metrics"
	"focus/internal/testutil"
)

// TestDegradedRehostThenRecover: losing a pinned worker mid-run (kick =
// severed connection, in-process service state gone) forces a re-host,
// but the pool still has a survivor — so the driver must stay
// NON-degraded through the recovery, keep Degraded()/DegradeReason() at
// their healthy values for the whole run, and finish byte-identical to
// the no-fault baseline. The attached metrics registry must record the
// fault path (a lost partition or a logged re-host), and the pool's
// health snapshot the kick.
func TestDegradedRehostThenRecover(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 4
	want := healthyBaseline(t, k)

	pool, err := dist.NewLocalPoolOpts(2, NewService, dist.Options{
		CallTimeout: 2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, true)
	reg := metrics.NewRegistry()
	d.SetMetrics(reg)

	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		t.Fatal(err)
	}
	if d.Degraded() || d.DegradeReason() != DegradeNone {
		t.Fatalf("degraded before any fault: reason=%v", d.DegradeReason())
	}

	// Sever the pinned worker between phases: its partitions are lost
	// (the local transport rebuilds a fresh service on reconnect) and the
	// next phase must re-host them onto the survivor.
	if !pool.Kick(1) {
		t.Fatal("Kick(1) refused")
	}

	if err := d.TrimContainment(&st); err != nil {
		t.Fatal(err)
	}
	if err := d.TrimErrors(&st); err != nil {
		t.Fatal(err)
	}
	paths, err := d.Traverse()
	if err != nil {
		t.Fatal(err)
	}
	got := runOutcome{
		Transitive: st.TransitiveEdges,
		Contained:  st.ContainedNodes,
		False:      st.FalseEdges,
		DeadEnds:   st.DeadEndNodes,
		Paths:      paths,
		Contigs:    d.BuildContigs(paths),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered run diverged from baseline:\ngot  %+v\nwant %+v", got, want)
	}
	if d.Degraded() || d.DegradeReason() != DegradeNone {
		t.Fatalf("driver degraded despite a surviving worker: reason=%v", d.DegradeReason())
	}

	snap := reg.Snapshot()
	faults := snap.Counters["assembly_partition_lost_total"] +
		snap.Counters["assembly_rehost_total"] +
		snap.Counters["assembly_rehost_failed_total"]
	if faults == 0 {
		t.Fatalf("metrics recorded no fault path after a kicked worker: %v", snap.Counters)
	}
	if snap.Counters["assembly_degraded_total"] != 0 {
		t.Fatalf("degradation counter moved on a non-degraded run: %v", snap.Counters)
	}
	if h := pool.Health(); h.Kicks != 1 {
		t.Fatalf("pool health Kicks = %d, want 1", h.Kicks)
	}
}

// TestDegradedStickyAfterPoolLoss: once the pool is truly unusable the
// fallback is sticky — Degraded() stays true and the reason stays
// DegradeFailure for every later phase (worker-side state missed deltas
// and can never be trusted again), the degradation counter moves exactly
// once, and the output still matches the baseline.
func TestDegradedStickyAfterPoolLoss(t *testing.T) {
	defer testutil.NoLeaks(t)
	const k = 4
	want := healthyBaseline(t, k)

	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		CallTimeout: 150 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		return &dist.ChaosConfig{Seed: 29 + int64(w), HangProb: 1, HangFor: 2 * time.Second}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, true)
	reg := metrics.NewRegistry()
	d.SetMetrics(reg)

	var st TrimStats
	if err := d.TrimTransitive(&st); err != nil {
		t.Fatal(err)
	}
	if !d.Degraded() || d.DegradeReason() != DegradeFailure {
		t.Fatalf("after losing every worker: Degraded=%v reason=%v, want failure fallback",
			d.Degraded(), d.DegradeReason())
	}
	// Later phases must observe the SAME sticky state (no flap back to
	// pool execution, no second degradation event).
	if err := d.TrimContainment(&st); err != nil {
		t.Fatal(err)
	}
	if err := d.TrimErrors(&st); err != nil {
		t.Fatal(err)
	}
	paths, err := d.Traverse()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded() || d.DegradeReason() != DegradeFailure {
		t.Fatalf("degradation did not stick: Degraded=%v reason=%v", d.Degraded(), d.DegradeReason())
	}
	if n := reg.Counter("assembly_degraded_total").Value(); n != 1 {
		t.Fatalf("assembly_degraded_total = %d, want exactly 1", n)
	}
	got := runOutcome{
		Transitive: st.TransitiveEdges,
		Contained:  st.ContainedNodes,
		False:      st.FalseEdges,
		DeadEnds:   st.DeadEndNodes,
		Paths:      paths,
		Contigs:    d.BuildContigs(paths),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sticky-degraded run diverged from baseline:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDegradeByChoice: a driver built without a pool is degraded by
// configuration, not failure — the distinction the server's status
// surface relies on.
func TestDegradeByChoice(t *testing.T) {
	defer testutil.NoLeaks(t)
	d := chaosPipeline(t, nil, 2, false)
	if !d.Degraded() || d.DegradeReason() != DegradeNoPool {
		t.Fatalf("pool-less driver: Degraded=%v reason=%v, want DegradeNoPool", d.Degraded(), d.DegradeReason())
	}
	if _, err := fullRun(t, d); err != nil {
		t.Fatal(err)
	}
}
