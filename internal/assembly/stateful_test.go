package assembly

import (
	"bytes"
	"fmt"
	"testing"

	"focus/internal/dist"
)

func TestApplyDelta(t *testing.T) {
	sub := chainSub(4)
	applyDelta(sub, Delta{
		RemovedNodes: []int32{2},
		RemovedEdges: []EdgePair{{From: 0, To: 1}},
	})
	if len(sub.Local) != 3 || len(sub.Nodes) != 3 {
		t.Fatalf("after delta: local=%v nodes=%d", sub.Local, len(sub.Nodes))
	}
	for _, id := range sub.Local {
		if id == 2 {
			t.Fatal("removed node still local")
		}
	}
	// Edges 0->1 (explicit) and 1->2, 2->3 (node removal) are gone.
	if len(sub.Edges) != 0 {
		t.Fatalf("edges = %+v", sub.Edges)
	}
	// Empty delta is a no-op.
	before := len(sub.Nodes)
	applyDelta(sub, Delta{})
	if len(sub.Nodes) != before {
		t.Fatal("empty delta changed the subgraph")
	}
}

func TestStatefulServiceLifecycle(t *testing.T) {
	svc := &Service{}
	var lr LoadReply
	if err := svc.Load(&LoadArgs{RunID: "r1", Sub: *chainSub(3), Cfg: DefaultConfig(), Epoch: 1}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Nodes != 3 {
		t.Fatalf("load reply %+v", lr)
	}
	var pr PhaseReplyStateful
	if err := svc.Phase(&PhaseArgsStateful{RunID: "r1", Part: 0, Phase: "Paths", Epoch: 1, Cfg: DefaultConfig()}, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Paths) != 1 || len(pr.Paths[0]) != 3 {
		t.Fatalf("paths = %v", pr.Paths)
	}
	// Unknown phase and unknown partition error.
	if err := svc.Phase(&PhaseArgsStateful{RunID: "r1", Part: 0, Phase: "Nope", Epoch: 1}, &pr); err == nil {
		t.Error("unknown phase accepted")
	}
	if err := svc.Phase(&PhaseArgsStateful{RunID: "rX", Part: 0, Phase: "Paths", Epoch: 1}, &pr); err == nil {
		t.Error("unloaded run accepted")
	}
	// Unload forgets the run.
	var ok bool
	if err := svc.Unload(&UnloadArgs{RunID: "r1"}, &ok); err != nil || !ok {
		t.Fatal(err)
	}
	if err := svc.Phase(&PhaseArgsStateful{RunID: "r1", Part: 0, Phase: "Paths", Epoch: 1}, &pr); err == nil {
		t.Error("unloaded partition still served")
	}
}

// TestEpochFencing pins the fencing rules of DESIGN.md §11: a Load must
// strictly advance the stored epoch, a Phase must name the stored epoch
// exactly, and fencing rejections are rehostable app-level errors.
func TestEpochFencing(t *testing.T) {
	svc := &Service{}
	var lr LoadReply
	if err := svc.Load(&LoadArgs{RunID: "r", Sub: *chainSub(3), Cfg: DefaultConfig(), Epoch: 2}, &lr); err != nil {
		t.Fatal(err)
	}
	// A late duplicate Load at the same or an older epoch is rejected.
	for _, e := range []int64{2, 1} {
		err := svc.Load(&LoadArgs{RunID: "r", Sub: *chainSub(3), Cfg: DefaultConfig(), Epoch: e}, &lr)
		if err == nil {
			t.Fatalf("Load at epoch %d accepted over stored epoch 2", e)
		}
		if !IsRehostable(err) {
			t.Fatalf("stale Load error not rehostable: %v", err)
		}
	}
	// Phases at mismatched epochs — older (late request from before a
	// re-host) or newer (worker restarted with an older copy) — are fenced.
	var pr PhaseReplyStateful
	for _, e := range []int64{1, 3} {
		err := svc.Phase(&PhaseArgsStateful{RunID: "r", Part: 0, Phase: "Paths", Epoch: e, Cfg: DefaultConfig()}, &pr)
		if err == nil {
			t.Fatalf("Phase at epoch %d accepted over stored epoch 2", e)
		}
		if !IsRehostable(err) {
			t.Fatalf("epoch-fenced Phase error not rehostable: %v", err)
		}
	}
	// The matching epoch still works.
	if err := svc.Phase(&PhaseArgsStateful{RunID: "r", Part: 0, Phase: "Paths", Epoch: 2, Cfg: DefaultConfig()}, &pr); err != nil {
		t.Fatal(err)
	}
	// A Load at a newer epoch (re-host onto this worker) is accepted, and
	// fences out the previous epoch's phases.
	if err := svc.Load(&LoadArgs{RunID: "r", Sub: *chainSub(3), Cfg: DefaultConfig(), Epoch: 5}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := svc.Phase(&PhaseArgsStateful{RunID: "r", Part: 0, Phase: "Paths", Epoch: 2, Cfg: DefaultConfig()}, &pr); err == nil {
		t.Fatal("pre-rehost Phase accepted after epoch advance")
	}
	// Not-loaded is rehostable too (worker restart lost the state table).
	err := svc.Phase(&PhaseArgsStateful{RunID: "gone", Part: 0, Phase: "Paths", Epoch: 1}, &pr)
	if !IsRehostable(err) {
		t.Fatalf("not-loaded error not rehostable: %v", err)
	}
	// Unknown-phase errors are NOT rehostable — re-hosting cannot fix them.
	if IsRehostable(fmt.Errorf("assembly: unknown phase %q", "Nope")) {
		t.Fatal("unknown-phase error misclassified as rehostable")
	}
	if IsRehostable(nil) {
		t.Fatal("nil error rehostable")
	}
}

// TestStatefulMatchesStateless runs the full trim+traverse+contigs flow
// under both protocols and demands identical output.
func TestStatefulMatchesStateless(t *testing.T) {
	genome := randGenome(80, 4000)
	reads := tilingReads(genome, 100, 25)

	run := func(stateful bool) ([][]byte, TrimStats) {
		dg, labels, _ := buildPipeline(t, reads, 4)
		pool, err := dist.NewLocalPool(2, NewService)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		cfg := DefaultConfig()
		cfg.Stateful = stateful
		d, err := NewDriver(pool, dg, labels, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		st, err := d.Trim()
		if err != nil {
			t.Fatal(err)
		}
		paths, err := d.Traverse()
		if err != nil {
			t.Fatal(err)
		}
		return d.BuildContigs(paths), st
	}

	cA, stA := run(false)
	cB, stB := run(true)
	if stA.TransitiveEdges != stB.TransitiveEdges || stA.ContainedNodes != stB.ContainedNodes ||
		stA.FalseEdges != stB.FalseEdges || stA.DeadEndNodes != stB.DeadEndNodes {
		t.Fatalf("trim stats differ: %+v vs %+v", stA, stB)
	}
	if len(cA) != len(cB) {
		t.Fatalf("contig counts differ: %d vs %d", len(cA), len(cB))
	}
	for i := range cA {
		if !bytes.Equal(cA[i], cB[i]) {
			t.Fatalf("contig %d differs between protocols", i)
		}
	}
}

// TestStatefulVariants: variant calling also works over the delta
// protocol.
func TestStatefulVariants(t *testing.T) {
	a := bytes.Repeat([]byte("ACGT"), 25)
	b := append([]byte(nil), a...)
	b[40] = 'G'
	dg := &DiGraph{
		Contigs: [][]byte{bytes.Repeat([]byte("A"), 100), a, bytes.Repeat([]byte("C"), 100), bytes.Repeat([]byte("G"), 100), b},
		Weight:  []int64{8, 5, 8, 8, 4},
		Removed: make([]bool, 5),
		Out:     make([][]Edge, 5),
		In:      make([][]Edge, 5),
	}
	add := func(f, to int32) {
		e := Edge{From: f, To: to, Diag: 60, Len: 40, Ident: 1}
		dg.Out[f] = append(dg.Out[f], e)
		dg.In[to] = append(dg.In[to], e)
	}
	add(0, 1)
	add(0, 4)
	add(1, 2)
	add(4, 2)
	add(2, 3)
	pool, err := dist.NewLocalPool(2, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	cfg := DefaultConfig()
	cfg.Stateful = true
	d, err := NewDriver(pool, dg, []int32{0, 0, 1, 1, 1}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	vars, err := d.CallVariants(DefaultVariantConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 1 || vars[0].Kind != VariantSubstitution {
		t.Fatalf("variants = %+v", vars)
	}
}
