package assembly

import (
	"sync"

	"focus/internal/align"
	"focus/internal/spmat"
)

// This file is the CSR phase engine's data layer (DESIGN.md §15): a flat
// compressed-sparse-row view of one Subgraph shared by the transitive,
// containment and error scans, replacing the per-call map[int32][]Edge
// views of the map engine. Arcs are packed 12-byte records over dense
// local indices; within each node's arc range the live (non-containment)
// arcs come first, so the live-neighbour subsets the scans hammer are
// zero-cost subslices instead of a second map. All buffers live in pooled
// scratch and amortize across phase calls — one subgraph scan performs
// O(1) allocations regardless of size.

// csrArc is one adjacency entry: `to` is the local index of the neighbour
// (the head for out-arcs, the tail for in-arcs), diag/alen mirror
// Edge.Diag/Edge.Len — everything the three scans read.
type csrArc struct {
	to   int32
	diag int32
	alen int32
}

// edgeCSR is the indexed form of a Subgraph. Node attributes are dense
// arrays over local indices; ids maps back to wire node ids. Ids that
// appear only as edge endpoints (absent from sub.Nodes) get zero-valued
// attributes, matching the map views' miss semantics.
type edgeCSR struct {
	ids     []int32 // local index -> node id (first-encounter order)
	weight  []int64
	contig  [][]byte
	isLocal []bool
	local   []int32 // local indices of sub.Local, in order (dups kept)

	outStart []int32 // len(ids)+1 offsets into outArcs
	outLive  []int32 // end of the live prefix of each node's out range
	outArcs  []csrArc
	inStart  []int32
	inLive   []int32
	inArcs   []csrArc
}

func (c *edgeCSR) out(i int32) []csrArc     { return c.outArcs[c.outStart[i]:c.outStart[i+1]] }
func (c *edgeCSR) liveOut(i int32) []csrArc { return c.outArcs[c.outStart[i]:c.outLive[i]] }
func (c *edgeCSR) in(i int32) []csrArc      { return c.inArcs[c.inStart[i]:c.inStart[i+1]] }
func (c *edgeCSR) liveIn(i int32) []csrArc  { return c.inArcs[c.inStart[i]:c.inLive[i]] }

// idIndex is a generation-stamped open-addressing map from node id to
// local index, reused across phase calls without clearing.
type idIndex struct {
	slots []idSlot
	mask  uint32
	gen   uint32
}

type idSlot struct {
	gen     uint32
	id, idx int32
}

// reset prepares the table for up to `adds` lookupOrAdd calls (load stays
// <= 50% since distinct ids <= adds).
func (x *idIndex) reset(adds int) {
	need := 16
	for need < 2*adds {
		need <<= 1
	}
	if len(x.slots) < need {
		x.slots = make([]idSlot, need)
		x.gen = 0
	}
	x.mask = uint32(len(x.slots) - 1)
	x.gen++
	if x.gen == 0 { // uint32 wrap: hard-clear stale stamps
		for i := range x.slots {
			x.slots[i].gen = 0
		}
		x.gen = 1
	}
}

// lookupOrAdd returns id's local index, appending a zero-attribute node
// to c on first encounter.
func (x *idIndex) lookupOrAdd(c *edgeCSR, id int32) int32 {
	h := (uint32(id) * 0x9E3779B1) & x.mask
	for {
		s := &x.slots[h]
		if s.gen != x.gen {
			idx := int32(len(c.ids))
			*s = idSlot{gen: x.gen, id: id, idx: idx}
			c.ids = append(c.ids, id)
			c.weight = append(c.weight, 0)
			c.contig = append(c.contig, nil)
			c.isLocal = append(c.isLocal, false)
			return idx
		}
		if s.id == id {
			return s.idx
		}
		h = (h + 1) & x.mask
	}
}

// get returns the local index of a previously added id.
func (x *idIndex) get(id int32) int32 {
	h := (uint32(id) * 0x9E3779B1) & x.mask
	for {
		s := &x.slots[h]
		if s.id == id && s.gen == x.gen {
			return s.idx
		}
		h = (h + 1) & x.mask
	}
}

// blockStage is one row block's staged output; blocks are assembled in
// index order after the parallel scan, keeping results independent of the
// worker count (the same contract as the spmat product).
type blockStage struct {
	pairs []EdgePair
	nodes []int32
}

// rowScratch is one scan worker's private state: the dense/hash diagonal
// accumulator of the transitive product, the alignment scratch of the
// containment scan, and the chain buffer of the dead-end walk. Owned by
// exactly one goroutine at a time.
type rowScratch struct {
	acc   spmat.StampAccum
	al    align.Scratch
	chain []int32
}

var rowScratchPool = sync.Pool{New: func() any { return new(rowScratch) }}

// phaseScratch is the per-call state of one CSR scan: the CSR view, its
// build-time counters, block staging and the dedupe key buffer. Acquired
// from a pool at scan entry and returned (with contig references dropped)
// on exit.
type phaseScratch struct {
	csr edgeCSR
	idx idIndex

	deg    []int32 // scatter counters, reused per direction
	liven  []int32
	cursor []int32

	keys   []uint64
	blocks []blockStage
	row    []*rowScratch // per-worker slots, populated lazily under par.Run
}

var phaseScratchPool = sync.Pool{New: func() any { return new(phaseScratch) }}

func getPhaseScratch() *phaseScratch { return phaseScratchPool.Get().(*phaseScratch) }

func putPhaseScratch(ps *phaseScratch) {
	// Drop contig references so the pool does not pin read sequences
	// beyond the scan, and return the worker scratches.
	c := &ps.csr
	for i := range c.contig {
		c.contig[i] = nil
	}
	for i, rs := range ps.row {
		if rs != nil {
			rowScratchPool.Put(rs)
			ps.row[i] = nil
		}
	}
	phaseScratchPool.Put(ps)
}

// stageBlocks returns nb reset block stages.
func (ps *phaseScratch) stageBlocks(nb int) []blockStage {
	if cap(ps.blocks) < nb {
		ps.blocks = make([]blockStage, nb)
	}
	ps.blocks = ps.blocks[:nb]
	for i := range ps.blocks {
		ps.blocks[i].pairs = ps.blocks[i].pairs[:0]
		ps.blocks[i].nodes = ps.blocks[i].nodes[:0]
	}
	return ps.blocks
}

// workerSlots presizes the per-worker scratch slots before a par.Run so
// the goroutines only write their own index.
func (ps *phaseScratch) workerSlots(w int) {
	if cap(ps.row) < w {
		ps.row = make([]*rowScratch, w)
	}
	ps.row = ps.row[:w]
}

// workerScratch resolves worker w's rowScratch, fetching from the pool on
// first use. Each worker index is touched by exactly one goroutine.
func (ps *phaseScratch) workerScratch(w int) *rowScratch {
	rs := ps.row[w]
	if rs == nil {
		rs = rowScratchPool.Get().(*rowScratch)
		ps.row[w] = rs
	}
	return rs
}

// grow32 returns a zeroed int32 slice of length n reusing buf's storage.
func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func growArcs(buf []csrArc, n int) []csrArc {
	if cap(buf) < n {
		return make([]csrArc, n)
	}
	return buf[:n]
}

// buildCSR (re)builds ps.csr from sub. parts selects which adjacency
// halves to scatter (viewOut/viewIn; the live boundaries come free).
// Node indices are assigned in first-encounter order over sub.Nodes,
// sub.Local, then edge endpoints, so ids absent from sub.Nodes (legal in
// arbitrary wire subgraphs) still resolve — with zero attributes, exactly
// like a map miss in the map engine.
func (ps *phaseScratch) buildCSR(sub *Subgraph, parts viewParts) *edgeCSR {
	c := &ps.csr
	c.ids = c.ids[:0]
	c.weight = c.weight[:0]
	c.contig = c.contig[:0]
	c.isLocal = c.isLocal[:0]
	ps.idx.reset(len(sub.Nodes) + len(sub.Local) + 2*len(sub.Edges))
	for i := range sub.Nodes {
		ps.idx.lookupOrAdd(c, sub.Nodes[i].ID)
	}
	for _, id := range sub.Local {
		ps.idx.lookupOrAdd(c, id)
	}
	for i := range sub.Edges {
		ps.idx.lookupOrAdd(c, sub.Edges[i].From)
		ps.idx.lookupOrAdd(c, sub.Edges[i].To)
	}
	// Attributes: later duplicates in sub.Nodes overwrite earlier ones,
	// matching the map views' last-write-wins build.
	for i := range sub.Nodes {
		n := &sub.Nodes[i]
		j := ps.idx.get(n.ID)
		c.weight[j] = n.Weight
		c.contig[j] = n.Contig
	}
	c.local = c.local[:0]
	for _, id := range sub.Local {
		j := ps.idx.get(id)
		c.isLocal[j] = true
		c.local = append(c.local, j)
	}
	if parts&viewOut != 0 {
		c.outStart, c.outLive, c.outArcs = ps.scatter(sub, c.outStart, c.outLive, c.outArcs, true)
	}
	if parts&viewIn != 0 {
		c.inStart, c.inLive, c.inArcs = ps.scatter(sub, c.inStart, c.inLive, c.inArcs, false)
	}
	return c
}

// scatter builds one adjacency direction with a stable two-pass counting
// sort: pass one places live arcs, pass two containment arcs, so each
// node's range is live-first with the original edge order preserved
// within each class (the same order liveSubsets yields).
func (ps *phaseScratch) scatter(sub *Subgraph, start, live []int32, arcs []csrArc, outDir bool) ([]int32, []int32, []csrArc) {
	c := &ps.csr
	n := len(c.ids)
	ps.deg = grow32(ps.deg, n)
	ps.liven = grow32(ps.liven, n)
	deg, liven := ps.deg, ps.liven
	for i := range sub.Edges {
		e := &sub.Edges[i]
		src := e.From
		if !outDir {
			src = e.To
		}
		j := ps.idx.get(src)
		deg[j]++
		if !e.Contain {
			liven[j]++
		}
	}
	if cap(start) < n+1 {
		start = make([]int32, n+1)
	}
	start = start[:n+1]
	live = grow32(live, n)
	s := int32(0)
	for i := 0; i < n; i++ {
		start[i] = s
		live[i] = s + liven[i]
		s += deg[i]
	}
	start[n] = s
	arcs = growArcs(arcs, int(s))
	ps.cursor = grow32(ps.cursor, n)
	cursor := ps.cursor
	copy(cursor, start[:n])
	for pass := 0; pass < 2; pass++ {
		contain := pass == 1
		for i := range sub.Edges {
			e := &sub.Edges[i]
			if e.Contain != contain {
				continue
			}
			src, dst := e.From, e.To
			if !outDir {
				src, dst = dst, src
			}
			j := ps.idx.get(src)
			arcs[cursor[j]] = csrArc{to: ps.idx.get(dst), diag: e.Diag, alen: e.Len}
			cursor[j]++
		}
	}
	return start, live, arcs
}
