package assembly

import (
	"reflect"
	"testing"
	"time"

	"focus/internal/dist"
	"focus/internal/testutil"
)

// runOutcome captures everything a full Trim+Traverse+BuildContigs run
// produces that downstream stages consume.
type runOutcome struct {
	Transitive, Contained, False, DeadEnds int
	Paths                                  [][]int32
	Contigs                                [][]byte
}

func fullRun(t *testing.T, d *Driver) (runOutcome, error) {
	t.Helper()
	st, err := d.Trim()
	if err != nil {
		return runOutcome{}, err
	}
	paths, err := d.Traverse()
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{
		Transitive: st.TransitiveEdges,
		Contained:  st.ContainedNodes,
		False:      st.FalseEdges,
		DeadEnds:   st.DeadEndNodes,
		Paths:      paths,
		Contigs:    d.BuildContigs(paths),
	}, nil
}

// chaosPipeline returns a fresh driver over the given pool for the shared
// test genome. Every caller gets an identical starting graph, so outcomes
// are directly comparable.
func chaosPipeline(t *testing.T, pool *dist.Pool, k int, stateful bool) *Driver {
	t.Helper()
	genome := randGenome(91, 3000)
	reads := tilingReads(genome, 100, 30)
	dg, labels, _ := buildPipeline(t, reads, k)
	cfg := DefaultConfig()
	cfg.Stateful = stateful
	d, err := NewDriver(pool, dg, labels, k, cfg)
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	return d
}

func healthyBaseline(t *testing.T, k int) runOutcome {
	t.Helper()
	pool, err := dist.NewLocalPool(2, NewService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	out, err := fullRun(t, chaosPipeline(t, pool, k, false))
	if err != nil {
		t.Fatalf("healthy baseline failed: %v", err)
	}
	return out
}

// TestChaosHungWorkerReschedules is the acceptance test for the
// fault-tolerant scheduler: one of two workers hangs on every response.
// With the old static t%Size assignment (and no deadlines) the first phase
// blocked forever; now the hung worker's task times out, the worker is
// evicted, the task reschedules onto the survivor, and the run's output is
// identical to an all-healthy run.
func TestChaosHungWorkerReschedules(t *testing.T) {
	const k = 4
	want := healthyBaseline(t, k)
	defer testutil.NoLeaks(t)

	hang := dist.ChaosConfig{Seed: 3, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		CallTimeout: 200 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		if w == 1 {
			return &hang
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d := chaosPipeline(t, pool, k, false)
	got, err := fullRun(t, d)
	if err != nil {
		t.Fatalf("run with hung worker failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded run diverged from healthy baseline:\ngot  %+v\nwant %+v", got, want)
	}
	if n := pool.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d, want 1 (hung worker evicted, survivor alive)", n)
	}
	if d.Degraded() {
		t.Fatal("driver degraded to local mode despite a surviving worker")
	}
}

// TestChaosAllWorkersDownFallsBackLocal checks graceful degradation: with
// every worker hung, phases fall back to master-side execution and still
// produce the baseline output.
func TestChaosAllWorkersDownFallsBackLocal(t *testing.T) {
	const k = 4
	want := healthyBaseline(t, k)
	defer testutil.NoLeaks(t)

	hang := dist.ChaosConfig{Seed: 5, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
		CallTimeout: 150 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig { c := hang; c.Seed += int64(w); return &c })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	got, err := fullRun(t, chaosPipeline(t, pool, k, false))
	if err != nil {
		t.Fatalf("run with all workers hung failed (fallback broken): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("local fallback diverged from healthy baseline:\ngot  %+v\nwant %+v", got, want)
	}
	if n := pool.NumHealthy(); n != 0 {
		t.Fatalf("NumHealthy = %d, want 0", n)
	}
}

// TestChaosSweep drives full multi-phase runs through a mix of seeded
// hangs, mid-message resets, and latency on every worker connection. The
// contract: each run either matches the healthy baseline or fails with a
// clean error — it never deadlocks and never silently returns wrong
// results.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow; skipped with -short")
	}
	const k = 4
	want := healthyBaseline(t, k)

	for _, stateful := range []bool{false, true} {
		for seed := int64(1); seed <= 8; seed++ {
			seed, stateful := seed, stateful
			name := "stateless"
			if stateful {
				name = "stateful"
			}
			t.Run(name+"/seed", func(t *testing.T) {
				defer testutil.NoLeaks(t)
				cfg := dist.ChaosConfig{
					Seed:        seed,
					HangProb:    0.05,
					HangFor:     2 * time.Second,
					ResetProb:   0.05,
					LatencyProb: 0.3,
					MaxLatency:  10 * time.Millisecond,
				}
				pool, err := dist.NewLocalChaosPool(2, NewService, dist.Options{
					CallTimeout:   300 * time.Millisecond,
					MaxFailures:   2,
					ReconnectMin:  5 * time.Millisecond,
					ReconnectMax:  50 * time.Millisecond,
					MaxReconnects: 2,
					Seed:          seed,
					Logf:          t.Logf,
				}, func(w int) *dist.ChaosConfig { c := cfg; c.Seed += int64(w) * 7919; return &c })
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()

				d := chaosPipeline(t, pool, k, stateful)
				type result struct {
					out runOutcome
					err error
				}
				done := make(chan result, 1)
				go func() {
					out, err := fullRun(t, d)
					done <- result{out, err}
				}()
				select {
				case r := <-done:
					if r.err != nil {
						t.Logf("seed %d: clean error: %v", seed, r.err)
						return
					}
					if !reflect.DeepEqual(r.out, want) {
						t.Fatalf("seed %d: silent corruption:\ngot  %+v\nwant %+v", seed, r.out, want)
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("seed %d: run deadlocked", seed)
				}
			})
		}
	}
}
