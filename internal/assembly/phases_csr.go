package assembly

import (
	"focus/internal/align"
	"focus/internal/par"
	"focus/internal/spmat"
)

// The CSR phase engine (DESIGN.md §15): the three cleaning scans
// reformulated over the pooled edgeCSR view and parallelized by row
// blocks over the par governor. Every kernel stages its emissions per
// fixed-grain block and assembles the blocks in index order, and every
// scan's final output is sorted and deduplicated — so results are
// byte-identical to the map engine at any worker count (pinned by the
// equivalence property suite and FuzzPhaseEngines).
//
// Transitive reduction follows Guidi et al.'s sparse-matrix formulation
// (Parallel String Graph Construction and Transitive Reduction): for each
// local row v the direct successors' diagonals — the sparse row Diag(v,·)
// of A — are stamped into a generation-cleared dense/hash accumulator
// (spmat.StampAccum, the BELLA-style switch shared with the overlap
// product), then the two-hop products Diag(v,w)+Diag(w,x) of A·A are
// compared against the mask A under DiagTolerance.

// Per-scan fan-out constants: blockRows is the staging grain (fixed, so
// block contents never depend on the worker count); grainRows is the
// per-worker break-even row count fed to the governor's auto mode. The
// containment scan runs banded alignments per row and breaks even far
// earlier than the pointer-chasing transitive/error scans.
const (
	transBlockRows = 128
	transGrainRows = 512

	containBlockRows = 16
	containGrainRows = 64

	errBlockRows = 256
	errGrainRows = 1024
)

func transitiveEdgesCSR(sub *Subgraph, cfg Config) []EdgePair {
	ps := getPhaseScratch()
	defer putPhaseScratch(ps)
	c := ps.buildCSR(sub, viewOut)
	nl := len(c.local)
	nb := par.Blocks(nl, transBlockRows)
	w := par.Workers(cfg.Workers, nl, transGrainRows)
	stage := ps.stageBlocks(nb)
	ps.workerSlots(w)
	n := len(c.ids)
	par.Run(w, nb, func(worker, b int) {
		rs := ps.workerScratch(worker)
		st := &stage[b]
		lo, hi := b*transBlockRows, min((b+1)*transBlockRows, nl)
		for r := lo; r < hi; r++ {
			v := c.local[r]
			outs := c.liveOut(v)
			if len(outs) < 2 {
				continue
			}
			// Stamp the mask row Diag(v,·); last write wins like the map
			// engine's successor index.
			acc := &rs.acc
			acc.Reset(n, len(outs), spmat.AccAuto)
			for _, a := range outs {
				acc.Set(a.to, a.diag)
			}
			vid := c.ids[v]
			for _, a := range outs {
				for _, bx := range c.liveOut(a.to) {
					if bx.to == v {
						continue
					}
					dvx, ok := acc.Get(bx.to)
					if !ok {
						continue
					}
					d := dvx - (a.diag + bx.diag)
					if d < 0 {
						d = -d
					}
					if int(d) <= cfg.DiagTolerance {
						st.pairs = append(st.pairs, EdgePair{From: vid, To: c.ids[bx.to]})
					}
				}
			}
		}
	})
	return ps.mergePairs(stage)
}

// mergePairs concatenates the staged pairs in block order into a fresh
// result slice (staging memory returns to the pool) and deduplicates.
// Empty scans return nil, matching the map engine on the wire.
func (ps *phaseScratch) mergePairs(stage []blockStage) []EdgePair {
	total := 0
	for i := range stage {
		total += len(stage[i].pairs)
	}
	if total == 0 {
		return nil
	}
	out := make([]EdgePair, 0, total)
	for i := range stage {
		out = append(out, stage[i].pairs...)
	}
	return dedupePairs(out, &ps.keys)
}

// mergeNodes is mergePairs for staged node removals: fresh slice, sorted,
// deduplicated, nil when empty.
func mergeNodes(stage []blockStage) []int32 {
	total := 0
	for i := range stage {
		total += len(stage[i].nodes)
	}
	if total == 0 {
		return nil
	}
	out := make([]int32, 0, total)
	for i := range stage {
		out = append(out, stage[i].nodes...)
	}
	return dedupeNodes(out)
}

func containmentScanCSR(sub *Subgraph, cfg Config) Removal {
	ps := getPhaseScratch()
	defer putPhaseScratch(ps)
	c := ps.buildCSR(sub, viewOut|viewIn)
	acfg := align.Config{
		MinLength:   cfg.MinEdgeOverlap,
		MinIdentity: cfg.MinEdgeIdentity,
		Band:        cfg.Band,
		Scoring:     align.DefaultScoring,
	}
	nl := len(c.local)
	nb := par.Blocks(nl, containBlockRows)
	w := par.Workers(cfg.Workers, nl, containGrainRows)
	stage := ps.stageBlocks(nb)
	ps.workerSlots(w)
	par.Run(w, nb, func(worker, b int) {
		rs := ps.workerScratch(worker)
		st := &stage[b]
		check := func(from, to, diag int32) {
			ov, ok := rs.al.OverlapOnDiagonal(c.contig[from], c.contig[to], int(diag), acfg)
			if !ok {
				st.pairs = append(st.pairs, EdgePair{From: c.ids[from], To: c.ids[to]})
				return
			}
			contained := int32(-1)
			switch ov.Kind {
			case align.KindAContainsB:
				contained = to
			case align.KindBContainsA:
				contained = from
			}
			if contained >= 0 && c.isLocal[contained] {
				st.nodes = append(st.nodes, c.ids[contained])
			}
		}
		lo, hi := b*containBlockRows, min((b+1)*containBlockRows, nl)
		for r := lo; r < hi; r++ {
			i := c.local[r]
			for _, a := range c.out(i) {
				check(i, a.to, a.diag)
			}
			for _, a := range c.in(i) {
				if !c.isLocal[a.to] { // avoid double work for local-local
					check(a.to, i, a.diag)
				}
			}
		}
	})
	return Removal{Nodes: mergeNodes(stage), Edges: ps.mergePairs(stage)}
}

func errorScanCSR(sub *Subgraph, cfg Config) Removal {
	ps := getPhaseScratch()
	defer putPhaseScratch(ps)
	c := ps.buildCSR(sub, viewOut|viewIn)
	nl := len(c.local)
	nb := par.Blocks(nl, errBlockRows)
	w := par.Workers(cfg.Workers, nl, errGrainRows)
	stage := ps.stageBlocks(nb)
	ps.workerSlots(w)

	// Bubble victim rule, identical to the map engine (lower read weight,
	// tie: shorter contig, then higher node id).
	loses := func(a, b int32) bool {
		if c.weight[a] != c.weight[b] {
			return c.weight[a] < c.weight[b]
		}
		if len(c.contig[a]) != len(c.contig[b]) {
			return len(c.contig[a]) < len(c.contig[b])
		}
		return c.ids[a] > c.ids[b]
	}
	// Dead-end walk (paper §V.C). Chains are staged per block; the
	// cross-block duplicates a shared `mark` map used to absorb are
	// handled by the final sort+dedupe instead, so blocks stay
	// independent. The `e.to != cur` test below is equivalent to the map
	// engine's Edge-value comparison e != conn: cur's single live
	// out-edge (in-edge on the mirrored walk) is conn itself, so any
	// other live back-arc from cur would imply a second cur->nb edge and
	// the walk would already have branched.
	walk := func(rs *rowScratch, st *blockStage, start int32, fwd bool) {
		chain := append(rs.chain[:0], start)
		defer func() { rs.chain = chain }()
		span := len(c.contig[start])
		cur := start
		for len(chain) <= cfg.MaxTipNodes {
			var next []csrArc
			if fwd {
				next = c.liveOut(cur)
			} else {
				next = c.liveIn(cur)
			}
			if len(next) != 1 {
				return // branches or terminates without attachment
			}
			conn := next[0]
			nb := conn.to
			var back []csrArc
			if fwd {
				back = c.liveIn(nb)
			} else {
				back = c.liveOut(nb)
			}
			if len(back) > 1 {
				dominated := false
				for _, e := range back {
					if e.to != cur && e.alen > conn.alen {
						dominated = true
						break
					}
				}
				if dominated && span < cfg.MinTipLen {
					for _, i := range chain {
						st.nodes = append(st.nodes, c.ids[i])
					}
				}
				return
			}
			chain = append(chain, nb)
			span += len(c.contig[nb]) // upper bound on added span
			cur = nb
		}
	}
	par.Run(w, nb, func(worker, b int) {
		rs := ps.workerScratch(worker)
		st := &stage[b]
		lo, hi := b*errBlockRows, min((b+1)*errBlockRows, nl)
		for r := lo; r < hi; r++ {
			i := c.local[r]
			ins, outs := c.liveIn(i), c.liveOut(i)
			if len(ins) == 0 && len(outs) == 1 {
				walk(rs, st, i, true)
			}
			if len(outs) == 0 && len(ins) == 1 {
				walk(rs, st, i, false)
			}
			// Bubbles: i with unique live predecessor u and successor w;
			// a sibling x sharing exactly (u, w) forms the pair.
			if len(ins) != 1 || len(outs) != 1 {
				continue
			}
			u, wn := ins[0].to, outs[0].to
			for _, sib := range c.liveOut(u) {
				x := sib.to
				if x == i {
					continue
				}
				xi, xo := c.liveIn(x), c.liveOut(x)
				if len(xi) != 1 || len(xo) != 1 || xo[0].to != wn {
					continue
				}
				victim := i
				if loses(x, i) {
					victim = x
				}
				st.nodes = append(st.nodes, c.ids[victim])
			}
		}
	})
	return Removal{Nodes: mergeNodes(stage)}
}
