// Package assembly implements the distributed graph algorithms of paper
// §V on the partitioned hybrid graph: transitive edge reduction,
// containment removal, error removal (dead-end trimming and bubble
// popping), and maximal-path graph traversal with master-side sub-path
// joining, followed by contig construction and assembly statistics.
package assembly

import (
	"fmt"
	"sort"

	"focus/internal/hybrid"
	"focus/internal/overlap"
)

// Edge is a directed overlap between two hybrid-graph contigs: To's contig
// starts Diag bases into From's contig. Contain marks containment edges
// (To's contig lies entirely within From's).
type Edge struct {
	From, To int32
	Diag     int32
	Len      int32 // estimated overlap length in bases
	Ident    float32
	Contain  bool
}

// DiGraph is the mutable directed hybrid graph the distributed algorithms
// operate on. Node ids are hybrid-graph node ids.
type DiGraph struct {
	Contigs [][]byte
	// Weight is the number of reads behind each node (coverage proxy used
	// to pick bubble branches).
	Weight  []int64
	Removed []bool
	Out     [][]Edge
	In      [][]Edge

	// outBuf/inBuf are the reusable scratches behind liveOut/liveIn: the
	// join and contig-build passes issue one live-neighbour query per path
	// step, and per-call filtered allocations dominated their profiles.
	outBuf, inBuf []Edge
}

// NumNodes returns the node count including removed nodes.
func (g *DiGraph) NumNodes() int { return len(g.Contigs) }

// NumLive returns the number of non-removed nodes.
func (g *DiGraph) NumLive() int {
	n := 0
	for _, r := range g.Removed {
		if !r {
			n++
		}
	}
	return n
}

// NumEdges returns the number of live directed edges.
func (g *DiGraph) NumEdges() int {
	n := 0
	for v := range g.Out {
		if !g.Removed[v] {
			for _, e := range g.Out[v] {
				if !g.Removed[e.To] {
					n++
				}
			}
		}
	}
	return n
}

// OutEdge returns the edge v->w if present and live.
func (g *DiGraph) OutEdge(v, w int32) (Edge, bool) {
	for _, e := range g.Out[v] {
		if e.To == w {
			return e, true
		}
	}
	return Edge{}, false
}

// RemoveEdge deletes the directed edge from->to (no-op if absent).
func (g *DiGraph) RemoveEdge(from, to int32) {
	g.Out[from] = dropEdge(g.Out[from], from, to)
	g.In[to] = dropEdge(g.In[to], from, to)
}

func dropEdge(edges []Edge, from, to int32) []Edge {
	out := edges[:0]
	for _, e := range edges {
		if !(e.From == from && e.To == to) {
			out = append(out, e)
		}
	}
	return out
}

// RemoveNode marks v removed and detaches its incident edges.
func (g *DiGraph) RemoveNode(v int32) {
	if g.Removed[v] {
		return
	}
	g.Removed[v] = true
	for _, e := range g.Out[v] {
		g.In[e.To] = dropEdge(g.In[e.To], v, e.To)
	}
	for _, e := range g.In[v] {
		g.Out[e.From] = dropEdge(g.Out[e.From], e.From, v)
	}
	g.Out[v] = nil
	g.In[v] = nil
}

// liveOut / liveIn return the non-containment live neighbours used by the
// traversal rules. The result is a view into a per-graph scratch buffer,
// valid only until the same method's next call (separate buffers per
// direction, so one liveOut and one liveIn result may be held together).
// Not safe for concurrent use — the master's join/build code is
// single-threaded.
func (g *DiGraph) liveOut(v int32) []Edge {
	out := g.outBuf[:0]
	for _, e := range g.Out[v] {
		if !e.Contain && !g.Removed[e.To] {
			out = append(out, e)
		}
	}
	g.outBuf = out
	return out
}

func (g *DiGraph) liveIn(v int32) []Edge {
	in := g.inBuf[:0]
	for _, e := range g.In[v] {
		if !e.Contain && !g.Removed[e.From] {
			in = append(in, e)
		}
	}
	g.inBuf = in
	return in
}

// BuildDiGraph derives the directed hybrid graph from the hybrid nodes and
// the read-level overlap records: for every pair of adjacent hybrid nodes
// the crossing records vote (via the read layout offsets) on the relative
// contig placement, and the median placement orients the edge.
func BuildDiGraph(h *hybrid.Hybrid, recs []overlap.Record) (*DiGraph, error) {
	n := len(h.Nodes)
	g := &DiGraph{
		Contigs: make([][]byte, n),
		Weight:  make([]int64, n),
		Removed: make([]bool, n),
		Out:     make([][]Edge, n),
		In:      make([][]Edge, n),
	}
	// Read -> offset in its representative's contig.
	numReads := len(h.RepOf)
	readOff := make([]int, numReads)
	for i, node := range h.Nodes {
		g.Contigs[i] = node.Contig
		g.Weight[i] = int64(len(node.Members))
		for j, m := range node.Members {
			readOff[m] = node.Offsets[j]
		}
	}

	type agg struct {
		diags  []int
		idents float64
		count  int
	}
	pairs := map[[2]int32]*agg{}
	for _, r := range recs {
		ra, rb := int32(h.RepOf[r.A]), int32(h.RepOf[r.B])
		if ra == rb {
			continue
		}
		lo, hi := ra, rb
		var d int
		if lo < hi {
			// Position of hi's contig start in lo's contig coordinates.
			d = readOff[r.A] + int(r.Diag) - readOff[r.B]
		} else {
			lo, hi = hi, lo
			d = readOff[r.B] - int(r.Diag) - readOff[r.A]
		}
		key := [2]int32{lo, hi}
		a := pairs[key]
		if a == nil {
			a = &agg{}
			pairs[key] = a
		}
		a.diags = append(a.diags, d)
		a.idents += float64(r.Identity)
		a.count++
	}

	for key, a := range pairs {
		lo, hi := key[0], key[1]
		sort.Ints(a.diags)
		d := a.diags[len(a.diags)/2] // median placement
		ident := float32(a.idents / float64(a.count))
		lenLo, lenHi := len(g.Contigs[lo]), len(g.Contigs[hi])
		var e Edge
		switch {
		case d >= 0 && d+lenHi <= lenLo:
			e = Edge{From: lo, To: hi, Diag: int32(d), Len: int32(lenHi), Ident: ident, Contain: true}
		case d <= 0 && -d+lenLo <= lenHi:
			e = Edge{From: hi, To: lo, Diag: int32(-d), Len: int32(lenLo), Ident: ident, Contain: true}
		case d > 0:
			e = Edge{From: lo, To: hi, Diag: int32(d), Len: int32(lenLo - d), Ident: ident}
		default:
			e = Edge{From: hi, To: lo, Diag: int32(-d), Len: int32(lenHi + d), Ident: ident}
		}
		if e.Len <= 0 {
			continue // crossing records imply no usable contig overlap
		}
		g.Out[e.From] = append(g.Out[e.From], e)
		g.In[e.To] = append(g.In[e.To], e)
	}
	for v := range g.Out {
		sort.Slice(g.Out[v], func(i, j int) bool { return g.Out[v][i].To < g.Out[v][j].To })
		sort.Slice(g.In[v], func(i, j int) bool { return g.In[v][i].From < g.In[v][j].From })
	}
	return g, nil
}

// Validate checks Out/In symmetry.
func (g *DiGraph) Validate() error {
	for v := range g.Out {
		for _, e := range g.Out[v] {
			if e.From != int32(v) {
				return fmt.Errorf("assembly: edge %d->%d stored under %d", e.From, e.To, v)
			}
			found := false
			for _, ie := range g.In[e.To] {
				if ie == e {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("assembly: edge %d->%d missing from In", e.From, e.To)
			}
		}
	}
	return nil
}
