package assembly

import "sort"

// Stats are the standard assembly quality numbers the paper reports in
// Table III.
type Stats struct {
	NumContigs int
	TotalBases int
	MaxContig  int
	N50        int
	MeanLen    float64
}

// ComputeStats summarizes a contig set. N50 is the length of the shortest
// contig in the smallest set of longest contigs covering half of the total
// assembled bases.
func ComputeStats(contigs [][]byte) Stats {
	st := Stats{NumContigs: len(contigs)}
	if len(contigs) == 0 {
		return st
	}
	lens := make([]int, len(contigs))
	for i, c := range contigs {
		lens[i] = len(c)
		st.TotalBases += len(c)
		if len(c) > st.MaxContig {
			st.MaxContig = len(c)
		}
	}
	st.MeanLen = float64(st.TotalBases) / float64(len(contigs))
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	cum := 0
	for _, l := range lens {
		cum += l
		// 2*cum >= total avoids the integer-division rounding error of
		// "cum >= total/2" on odd totals.
		if 2*cum >= st.TotalBases {
			st.N50 = l
			break
		}
	}
	return st
}
