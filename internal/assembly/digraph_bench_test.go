package assembly

import (
	"math/rand"
	"testing"
)

// benchGraph builds a synthetic live graph: a long chain with local
// branch edges and a sprinkling of containment edges, shaped like the
// post-trim graphs the traversal queries walk.
func benchGraph(n int) *DiGraph {
	g := &DiGraph{
		Contigs: make([][]byte, n),
		Weight:  make([]int64, n),
		Removed: make([]bool, n),
		Out:     make([][]Edge, n),
		In:      make([][]Edge, n),
	}
	rng := rand.New(rand.NewSource(7))
	addEdge := func(from, to int32, contain bool) {
		e := Edge{From: from, To: to, Diag: 50, Len: 60, Ident: 0.97, Contain: contain}
		g.Out[from] = append(g.Out[from], e)
		g.In[to] = append(g.In[to], e)
	}
	for v := 0; v < n-1; v++ {
		addEdge(int32(v), int32(v+1), false)
		if v+2 < n && rng.Intn(4) == 0 {
			addEdge(int32(v), int32(v+2), rng.Intn(3) == 0)
		}
	}
	for v := 0; v < n; v += 37 {
		g.Removed[v] = true
	}
	return g
}

var liveSink int

// BenchmarkLiveNeighbourQueries measures the liveOut/liveIn hot path used
// once per step by the master's path join and contig build. Before the
// reusable per-graph scratch these allocated one filtered slice per query
// (~2 allocs per path step); now they run allocation-free.
func BenchmarkLiveNeighbourQueries(b *testing.B) {
	g := benchGraph(4096)
	n := int32(g.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		for v := int32(0); v < n; v++ {
			sum += len(g.liveOut(v)) + len(g.liveIn(v))
		}
		liveSink = sum
	}
}

// BenchmarkSubgraphExtract measures the master's per-phase send-path
// rebuild: partitioning plus the wire view of every partition (the work
// PR 4 moved from map[int32]bool sets to epoch-stamped dense marks and a
// bounded parallel fan-out).
func BenchmarkSubgraphExtract(b *testing.B) {
	g := benchGraph(4096)
	const k = 8
	labels := make([]int32, g.NumNodes())
	for v := range labels {
		labels[v] = int32(v * k / len(labels))
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			var subs []Subgraph
			for i := 0; i < b.N; i++ {
				subs = Subgraphs(g, labels, k, workers)
			}
			liveSink = len(subs)
		})
	}
}
