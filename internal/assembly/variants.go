package assembly

import (
	"sort"

	"focus/internal/align"
)

// The paper's stated future work (§VI.D) is variant detection run on the
// distributed hybrid graph: "For example, variant detection algorithms
// can be implemented to be run on the distributed hybrid graph." This
// file implements that extension. A candidate variant is a simple bubble:
// two branch nodes sharing the same predecessor and successor whose
// contigs align against each other. Unlike error removal (§V.C), which
// pops bubbles, variant calling reports them — substitution-like when the
// branch contigs have similar length and high identity, indel-like when
// their lengths differ.

// VariantKind classifies a called variant.
type VariantKind uint8

const (
	// VariantSubstitution: equal-length, high-identity branches (SNVs).
	VariantSubstitution VariantKind = iota
	// VariantIndel: branch lengths differ materially.
	VariantIndel
	// VariantDivergent: branches do not align (e.g. inserted segment).
	VariantDivergent
)

// String implements fmt.Stringer.
func (k VariantKind) String() string {
	switch k {
	case VariantSubstitution:
		return "substitution"
	case VariantIndel:
		return "indel"
	case VariantDivergent:
		return "divergent"
	}
	return "unknown"
}

// Variant is one called bubble or fork.
type Variant struct {
	From, To         int32 // anchor nodes; To is -1 for fork calls
	AlleleA, AlleleB int32 // branch nodes, AlleleA < AlleleB
	CovA, CovB       int64 // read support of each branch
	LenA, LenB       int32 // branch contig lengths
	Identity         float64
	Mismatches       int32 // mismatching alignment columns (when aligned)
	Kind             VariantKind
	// Reconverges is true for full bubbles (both anchors shared); fork
	// calls — two alternative extensions of one anchor whose contigs
	// still align allelically — are weaker evidence.
	Reconverges bool
}

// VariantConfig bounds variant calling.
type VariantConfig struct {
	// MinBranchCov is the minimum read support per branch: bubbles whose
	// weaker branch has less support are sequencing errors, not variants.
	MinBranchCov int64
	// MaxLenDiff separates substitutions from indels.
	MaxLenDiff int
	// Band is the alignment band for branch-vs-branch comparison.
	Band int
	// MinIdentity below which branches are reported as divergent.
	MinIdentity float64
}

// DefaultVariantConfig returns permissive defaults for high-coverage data.
func DefaultVariantConfig() VariantConfig {
	return VariantConfig{MinBranchCov: 2, MaxLenDiff: 3, Band: 16, MinIdentity: 0.6}
}

// ScanVariants finds bubble and fork variants among the partition's local
// nodes (the worker half of distributed variant calling). A bubble is two
// branches sharing both anchors; a fork is two alternative branches of a
// single anchor whose contigs still align allelically on their implied
// placement (a repeat boundary, by contrast, has unrelated continuations
// and is rejected by the identity filter).
func ScanVariants(sub *Subgraph, cfg VariantConfig) []Variant {
	v := newView(sub, viewOut|viewIn|viewLive)
	seen := map[[2]int32]bool{}
	var out []Variant

	consider := func(u int32, ex, ey Edge, x, y int32, reconverges bool, w int32) {
		a, b := x, y
		ea, eb := ex, ey
		if a > b {
			a, b = b, a
			ea, eb = eb, ea
		}
		if seen[[2]int32{a, b}] {
			return
		}
		if v.weight[a] < cfg.MinBranchCov || v.weight[b] < cfg.MinBranchCov {
			return // error branch, not a variant
		}
		va, ok := classifyBranches(v, u, w, a, b, ea, eb, reconverges, cfg)
		if !ok {
			return
		}
		seen[[2]int32{a, b}] = true
		out = append(out, va)
	}

	for _, id := range sub.Local {
		ins, outs := v.liveIn(id), v.liveOut(id)
		if len(ins) != 1 || len(outs) > 1 {
			continue
		}
		u := ins[0].From
		// The edge u->id and each sibling edge u->x.
		var eID Edge
		for _, e := range v.liveOut(u) {
			if e.To == id {
				eID = e
				break
			}
		}
		for _, sib := range v.liveOut(u) {
			x := sib.To
			if x == id {
				continue
			}
			xi := v.liveIn(x)
			if len(xi) != 1 {
				continue
			}
			// Full bubble if both branches reconverge on the same node.
			xo := v.liveOut(x)
			if len(outs) == 1 && len(xo) == 1 && xo[0].To == outs[0].To {
				consider(u, eID, sib, id, x, true, outs[0].To)
				continue
			}
			consider(u, eID, sib, id, x, false, -1)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AlleleA != out[j].AlleleA {
			return out[i].AlleleA < out[j].AlleleA
		}
		return out[i].AlleleB < out[j].AlleleB
	})
	return out
}

// classifyBranches aligns two branch contigs on the placement implied by
// their shared-anchor edges and classifies the pair. ok is false when the
// pair does not look allelic (fork into unrelated sequence).
func classifyBranches(v *view, u, w, a, b int32, ea, eb Edge, reconverges bool, cfg VariantConfig) (Variant, bool) {
	ca, cb := v.contig[a], v.contig[b]
	out := Variant{
		From: u, To: w,
		AlleleA: a, AlleleB: b,
		CovA: v.weight[a], CovB: v.weight[b],
		LenA: int32(len(ca)), LenB: int32(len(cb)),
		Reconverges: reconverges,
	}
	// Placement of b's contig in a's coordinates: both diags are relative
	// to u's contig.
	diag := int(eb.Diag) - int(ea.Diag)
	acfg := align.Config{
		MinLength:   1,
		MinIdentity: 0,
		Band:        cfg.Band,
		Scoring:     align.DefaultScoring,
	}
	ov, okOv := align.OverlapOnDiagonal(ca, cb, diag, acfg)
	if okOv {
		out.Identity = ov.Identity
		out.Mismatches = int32(ov.Length) - int32(float64(ov.Length)*ov.Identity+0.5)
	}
	lenDiff := len(ca) - len(cb)
	if lenDiff < 0 {
		lenDiff = -lenDiff
	}
	switch {
	case !okOv || out.Identity < cfg.MinIdentity:
		out.Kind = VariantDivergent
		if !reconverges {
			// Fork into unrelated sequence: a repeat or chimera
			// boundary, not a variant.
			return out, false
		}
	case lenDiff > cfg.MaxLenDiff:
		out.Kind = VariantIndel
	default:
		out.Kind = VariantSubstitution
	}
	return out, true
}

// VariantsReply is the RPC reply for the variant phase.
type VariantsReply struct{ Variants []Variant }

// VariantArgs carries the subgraph and variant config over RPC.
type VariantArgs struct {
	Sub Subgraph
	Cfg VariantConfig
}

// Variants is the worker RPC method for distributed variant calling.
func (s *Service) Variants(args *VariantArgs, reply *VariantsReply) error {
	reply.Variants = ScanVariants(&args.Sub, args.Cfg)
	return nil
}

// CallVariants runs distributed variant detection: each worker scans its
// partition, the master deduplicates (a bubble whose branches live in
// different partitions is reported by both) and returns the calls sorted
// by allele pair. Run it after transitive reduction and containment
// removal but before error removal, which would pop the bubbles.
func (d *Driver) CallVariants(cfg VariantConfig) ([]Variant, error) {
	if d.skipDone("Variants") {
		return append([]Variant(nil), d.variantsMirror...), nil
	}
	results, _, err := d.runPhase("Variants", cfg)
	if err != nil {
		return nil, err
	}
	seen := map[[2]int32]bool{}
	var out []Variant
	for _, r := range results {
		for _, va := range r.Variants {
			key := [2]int32{va.AlleleA, va.AlleleB}
			if !seen[key] {
				seen[key] = true
				out = append(out, va)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AlleleA != out[j].AlleleA {
			return out[i].AlleleA < out[j].AlleleA
		}
		return out[i].AlleleB < out[j].AlleleB
	})
	d.variantsMirror = out
	if err := d.notePhase("Variants"); err != nil {
		return nil, err
	}
	return out, nil
}
