package assembly

import (
	"fmt"
	"log"

	"focus/internal/checkpoint"
	"focus/internal/dist"
)

// Phase-boundary checkpointing (DESIGN.md §11): after each graph-mutating
// phase is applied to the master's authoritative DiGraph, the driver can
// serialize the full master state — graph, partition labels, the removal
// journal not yet shipped as a stateful delta, the completed-phase list,
// and the accumulated trim counters/variants — into an atomic, CRC-framed
// checkpoint file (internal/checkpoint). A killed master restarts with
// -resume: the newest valid checkpoint is loaded, completed phases are
// skipped (their counters replayed from the checkpoint), and the run
// continues with identical final output. The payload uses the same
// hand-written Wire encodings as the RPC protocol.

// CheckpointVersion is the payload schema version; bump on any encoding
// change so old files fail loudly instead of decoding garbage.
const CheckpointVersion = 1

// CheckpointState is the master's durable state at one phase boundary.
type CheckpointState struct {
	Done     []string  // completed graph-mutating phases, in order
	Stats    TrimStats // accumulated counters (task times are not persisted)
	Variants []Variant // accumulated variant calls, if any
	// The removal journal: removals applied to the master graph but not
	// yet shipped to stateful workers as a delta. (Resume reloads full
	// partitions, so the journal is informational there, but it keeps the
	// checkpoint a complete image of the driver state.)
	JournalNodes []int32
	JournalEdges []EdgePair
	K            int
	Labels       []int32
	Graph        *DiGraph
}

var _ dist.Wire = (*CheckpointState)(nil)

// AppendTo implements dist.Wire for the checkpoint payload.
func (cs *CheckpointState) AppendTo(dst []byte) []byte {
	dst = dist.AppendVarint(dst, int64(cs.K))
	dst = dist.AppendLen(dst, len(cs.Done), cs.Done != nil)
	for _, s := range cs.Done {
		dst = dist.AppendString(dst, s)
	}
	dst = dist.AppendVarint(dst, int64(cs.Stats.TransitiveEdges))
	dst = dist.AppendVarint(dst, int64(cs.Stats.ContainedNodes))
	dst = dist.AppendVarint(dst, int64(cs.Stats.FalseEdges))
	dst = dist.AppendVarint(dst, int64(cs.Stats.DeadEndNodes))
	dst = appendVariants(dst, cs.Variants)
	dst = dist.AppendInt32sDelta(dst, cs.JournalNodes)
	dst = appendEdgePairs(dst, cs.JournalEdges)
	dst = dist.AppendInt32sDelta(dst, cs.Labels)
	g := cs.Graph
	n := g.NumNodes()
	dst = dist.AppendVarint(dst, int64(n))
	// Removed flags as a bitset.
	for i := 0; i < n; i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < n; j++ {
			if g.Removed[i+j] {
				b |= 1 << j
			}
		}
		dst = append(dst, b)
	}
	for v := 0; v < n; v++ {
		dst = dist.AppendVarint(dst, g.Weight[v])
		dst = dist.AppendBool(dst, g.Contigs[v] != nil)
		dst = appendContig(dst, g.Contigs[v])
		dst = appendEdges(dst, g.Out[v])
	}
	return dst
}

// DecodeFrom implements dist.Wire. The In adjacency is rebuilt from Out:
// fresh construction sorts In[w] by From ascending and removals preserve
// relative order, so appending while scanning Out in ascending node order
// reproduces the pre-checkpoint In lists exactly.
func (cs *CheckpointState) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	cs.K = int(rd.Varint())
	nd, present := rd.Len()
	cs.Done = nil
	if present {
		cs.Done = make([]string, 0, boundLen(&rd, nd))
		for i := 0; i < nd && rd.Err() == nil; i++ {
			cs.Done = append(cs.Done, rd.String())
		}
	}
	cs.Stats = TrimStats{
		TransitiveEdges: int(rd.Varint()),
		ContainedNodes:  int(rd.Varint()),
		FalseEdges:      int(rd.Varint()),
		DeadEndNodes:    int(rd.Varint()),
	}
	cs.Variants = decodeVariants(&rd)
	cs.JournalNodes = rd.Int32sDelta()
	cs.JournalEdges = decodeEdgePairs(&rd)
	cs.Labels = rd.Int32sDelta()
	n := boundLen(&rd, int(rd.Varint()))
	g := &DiGraph{
		Contigs: make([][]byte, n),
		Weight:  make([]int64, n),
		Removed: make([]bool, n),
		Out:     make([][]Edge, n),
		In:      make([][]Edge, n),
	}
	bits := rd.Bytes((n + 7) / 8)
	for v := 0; v < n && rd.Err() == nil; v++ {
		g.Removed[v] = bits[v/8]&(1<<(v%8)) != 0
		g.Weight[v] = rd.Varint()
		g.Contigs[v] = decodeContig(&rd, rd.Bool())
		g.Out[v] = decodeEdges(&rd)
	}
	if err := rd.Finish(); err != nil {
		cs.Graph = nil
		return err
	}
	for v := range g.Out {
		for _, e := range g.Out[v] {
			// Endpoints come off the wire; a To outside the decoded node
			// range means a corrupt frame, not a panic.
			if e.To < 0 || int(e.To) >= n {
				cs.Graph = nil
				return fmt.Errorf("assembly: checkpoint edge %d->%d outside %d nodes", e.From, e.To, n)
			}
			g.In[e.To] = append(g.In[e.To], e)
		}
	}
	cs.Graph = g
	return nil
}

// CheckpointConfig configures the driver's phase-boundary checkpointing.
type CheckpointConfig struct {
	// Dir receives the checkpoint files (created if missing).
	Dir string
	// Every writes a checkpoint at every Nth completed phase boundary;
	// <= 1 means every boundary.
	Every int
}

// EnableCheckpoint turns on checkpointing at phase boundaries. Call
// before the first Trim phase.
func (d *Driver) EnableCheckpoint(cc CheckpointConfig) {
	if cc.Every <= 1 {
		cc.Every = 1
	}
	d.ckpt = &cc
}

// notePhase records a completed graph-mutating phase and writes a
// checkpoint when one is due. A checkpoint that cannot be written is an
// error — the caller asked for durability; silently dropping it would
// turn a crash into a full re-run.
func (d *Driver) notePhase(name string) error {
	d.donePhases = append(d.donePhases, name)
	if d.ckpt == nil || len(d.donePhases)%d.ckpt.Every != 0 {
		return nil
	}
	if err := d.writeCheckpoint(); err != nil {
		return fmt.Errorf("assembly: checkpoint after %s: %w", name, err)
	}
	return nil
}

// CheckpointNow writes a best-effort checkpoint of the current
// phase-boundary state. The master graph only mutates between a phase's
// return and its notePhase, so whenever the driver is not inside a Trim*
// call — in particular after a cancellation unwound one — its state IS a
// phase boundary and is safe to persist. Used by the cancel path so a
// SIGINT or deadline expiry keeps every completed phase resumable even
// when CheckpointConfig.Every skipped the latest boundary. A no-op when
// checkpointing is disabled or no phase has completed (a fresh run
// resumes as a fresh run).
func (d *Driver) CheckpointNow() error {
	if d.ckpt == nil || len(d.donePhases) == 0 {
		return nil
	}
	if err := d.writeCheckpoint(); err != nil {
		return fmt.Errorf("assembly: checkpoint on cancel: %w", err)
	}
	return nil
}

// writeCheckpoint serializes the driver's phase-boundary state as
// checkpoint seq len(donePhases). Writing the same seq twice (notePhase
// already wrote this boundary, then CheckpointNow fired) atomically
// replaces it with identical content.
func (d *Driver) writeCheckpoint() error {
	cs := &CheckpointState{
		Done:         d.donePhases,
		Stats:        d.statsMirror,
		Variants:     d.variantsMirror,
		JournalNodes: d.pendingNodes,
		JournalEdges: d.pendingEdges,
		K:            d.K,
		Labels:       d.Labels,
		Graph:        d.G,
	}
	return checkpoint.Write(d.ckpt.Dir, len(d.donePhases), CheckpointVersion, cs.AppendTo(nil))
}

// skipDone consumes a resume marker: true means the named phase completed
// before the checkpoint this driver resumed from and must be skipped.
func (d *Driver) skipDone(name string) bool {
	if !d.resumeDone[name] {
		return false
	}
	delete(d.resumeDone, name)
	return true
}

// LoadLatestCheckpoint loads and decodes the newest valid checkpoint in
// dir. Corrupt or truncated files are skipped with a logged warning (the
// next-older valid one is used); checkpoint.ErrNone means a fresh start,
// an ErrCorrupt-wrapping error means files exist but none can be trusted.
func LoadLatestCheckpoint(dir string) (*CheckpointState, error) {
	payload, seq, skipped, err := checkpoint.Latest(dir, CheckpointVersion)
	for _, s := range skipped {
		log.Printf("assembly: skipping unusable checkpoint: %v", s)
	}
	if err != nil {
		return nil, err
	}
	var cs CheckpointState
	if derr := cs.DecodeFrom(payload); derr != nil {
		return nil, fmt.Errorf("assembly: checkpoint %s (seq %d): payload decode: %w", dir, seq, derr)
	}
	log.Printf("assembly: resuming from checkpoint seq %d (%d phase(s) done: %v)", seq, len(cs.Done), cs.Done)
	return &cs, nil
}

// ResumeDriver reconstructs a driver from checkpointed state: the master
// graph, labels and counters come from the checkpoint, completed phases
// will be skipped (their counters replayed), and the remaining phases run
// normally — on the pool when one is given, locally otherwise. The final
// output is identical to an uninterrupted run.
func ResumeDriver(pool *dist.Pool, cs *CheckpointState, cfg Config) (*Driver, error) {
	if cs.Graph == nil {
		return nil, fmt.Errorf("assembly: resume: checkpoint has no graph")
	}
	d, err := NewDriver(pool, cs.Graph, cs.Labels, cs.K, cfg)
	if err != nil {
		return nil, fmt.Errorf("assembly: resume: %w", err)
	}
	d.donePhases = append([]string(nil), cs.Done...)
	d.resumeDone = make(map[string]bool, len(cs.Done))
	for _, name := range cs.Done {
		d.resumeDone[name] = true
	}
	d.statsMirror = cs.Stats
	d.variantsMirror = append([]Variant(nil), cs.Variants...)
	// The journal is only meaningful against worker state that died with
	// the old master; a resumed run reloads full partitions, which clears
	// pending deltas in ensureLoaded.
	return d, nil
}
