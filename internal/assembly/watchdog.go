package assembly

import (
	"context"
	"errors"
	"log"
	"time"
)

// The phase watchdog (DESIGN.md §13) detects no-progress: the pool's
// completion counter not moving for a full window. Per-call timeouts
// catch a worker that is slow to answer; the watchdog catches the cases
// timeouts cannot be armed for (CallTimeout=0 deployments) or that
// timeouts alone don't resolve (a worker hanging forever while holding a
// pinned partition). Escalation ladder on a detected stall:
//
//  1. log — one warning naming the phase and window;
//  2. kick — sever the connection of every worker whose in-flight call
//     has been running for the full window (Pool.Kick): its tasks fail
//     with a transport-class error and reschedule, and a stateful driver
//     re-hosts its partitions, exactly as if the worker had crashed;
//  3. cancel — when kicks are exhausted (or nothing is kickable) and the
//     stall persists, cancel the phase context with ErrStalled, which
//     unwinds the run through the normal cancellation path (checkpoint,
//     resumable exit).
//
// Kicks are budgeted across the whole phase, not per stall: each kick
// resets the stall clock (the rescheduled work gets a fresh window), so
// an unbounded budget would let one poisoned task kick every worker
// forever.

// ErrStalled is the cancellation cause when the watchdog gives up on a
// phase that stopped completing tasks.
var ErrStalled = errors.New("assembly: run stalled: no task completions within the watchdog window")

// WatchdogConfig configures the per-phase no-progress watchdog.
type WatchdogConfig struct {
	// Window is the no-completions span that counts as a stall. <= 0
	// disables the watchdog.
	Window time.Duration
	// Poll is the sampling interval; <= 0 selects Window/4.
	Poll time.Duration
	// MaxKicks bounds how many stuck workers the watchdog severs during
	// one phase before escalating to cancellation. 0 selects the pool
	// size (every worker may be kicked once); negative disables kicking —
	// the ladder goes straight from log to cancel.
	MaxKicks int
}

// EnableWatchdog arms the watchdog for every subsequent phase. Call
// before the first phase; a Window <= 0 disarms it.
func (d *Driver) EnableWatchdog(wc WatchdogConfig) {
	if wc.Window <= 0 {
		d.wd = nil
		return
	}
	if wc.Poll <= 0 {
		wc.Poll = wc.Window / 4
	}
	if wc.Poll <= 0 {
		wc.Poll = time.Millisecond
	}
	d.wd = &wc
}

// startWatchdog spawns the monitor goroutine for one phase and returns a
// stop func that is guaranteed to have reaped it on return (no leaked
// goroutine for NoLeaks to find).
func (d *Driver) startWatchdog(ctx context.Context, cancel context.CancelCauseFunc, phase string) func() {
	wc := *d.wd
	maxKicks := wc.MaxKicks
	if maxKicks == 0 {
		maxKicks = d.Pool.Size()
	}
	if maxKicks < 0 {
		maxKicks = 0
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(wc.Poll)
		defer ticker.Stop()
		last := d.Pool.Completions()
		stallStart := time.Now()
		warned := false
		kicks := 0
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if c := d.Pool.Completions(); c != last {
				last = c
				stallStart = time.Now()
				warned = false
				continue
			}
			if time.Since(stallStart) < wc.Window {
				continue
			}
			if !warned {
				log.Printf("assembly: watchdog: %s phase made no progress for %v", phase, wc.Window)
				warned = true
				continue
			}
			kicked := false
			for _, w := range d.Pool.StuckWorkers(wc.Window) {
				if kicks >= maxKicks {
					break
				}
				if d.Pool.Kick(w) {
					kicks++
					kicked = true
					log.Printf("assembly: watchdog: kicked stuck worker %d (%s phase, kick %d/%d); its tasks reschedule",
						w, phase, kicks, maxKicks)
				}
			}
			if kicked {
				// The rescheduled work gets a fresh window before the next
				// escalation.
				stallStart = time.Now()
				warned = false
				continue
			}
			log.Printf("assembly: watchdog: %s phase still stalled after %d kick(s); cancelling run", phase, kicks)
			cancel(ErrStalled)
			return
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
