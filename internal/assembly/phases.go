package assembly

import (
	"slices"

	"focus/internal/align"
)

// PhaseEngine selects the implementation of the per-subgraph cleaning
// scans (TransitiveEdges, ContainmentScan, ErrorScan). Both engines are
// byte-identical on every input; the map engine is the historical
// reference kept as the equivalence oracle for tests and benchmarks.
type PhaseEngine uint8

const (
	// PhaseEngineCSR (the default) runs the scans on a flat CSR adjacency
	// view, parallelized by row blocks over the par governor, with
	// transitive reduction as a masked sparse product (DESIGN.md §15).
	PhaseEngineCSR PhaseEngine = iota
	// PhaseEngineMap is the original serial map-based implementation.
	PhaseEngineMap
)

// Config bounds the trimming phases. Defaults follow the paper: false
// positive edges are contig overlaps shorter than 50 bp (§V.B); dead-end
// and bubble limits follow Velvet-style trimming (§V.C).
type Config struct {
	// MinEdgeOverlap is the minimum verified contig-contig overlap; edges
	// below it are false positives (paper: 50 bp).
	MinEdgeOverlap int
	// MinEdgeIdentity is the minimum verified overlap identity.
	MinEdgeIdentity float64
	// Band is the half-width of the verification alignment band.
	Band int
	// DiagTolerance bounds |diag(v,w)+diag(w,x)-diag(v,x)| for an edge to
	// count as transitive.
	DiagTolerance int
	// MaxTipNodes and MinTipLen bound dead-end path removal: a chain of
	// at most MaxTipNodes whose total contig span is under MinTipLen.
	MaxTipNodes int
	MinTipLen   int
	// RPCRetries is the number of other workers a failed partition task
	// is retried on before the phase errors (0 = fail fast, like an MPI
	// job). Applies to the stateless protocol only.
	RPCRetries int
	// Stateful selects the delta protocol: partitions are shipped to
	// their workers once and later phases send only the removals applied
	// since (closer to the paper's MPI ranks, and cheaper on the wire).
	Stateful bool
	// Engine selects the scan implementation (identical results; see
	// PhaseEngine). The zero value is the CSR engine.
	Engine PhaseEngine
	// Workers bounds the row-block fan-out of the CSR scans inside one
	// subgraph (<= 0 auto: the par governor sizes the pool from the local
	// node count and GOMAXPROCS). Purely a throughput knob — scan output
	// is identical at any value.
	Workers int
}

// DefaultConfig returns the paper-aligned trimming configuration.
func DefaultConfig() Config {
	return Config{
		MinEdgeOverlap:  50,
		MinEdgeIdentity: 0.90,
		Band:            16,
		DiagTolerance:   8,
		MaxTipNodes:     3,
		MinTipLen:       400,
	}
}

// WireNode is a node shipped to a worker: contigs are included so the
// containment phase can align neighbours locally.
type WireNode struct {
	ID     int32
	Part   int32
	Weight int64
	Contig []byte
}

// Subgraph is one partition's view: the locally owned nodes plus the ghost
// neighbourhood and every edge inside that closed neighbourhood.
type Subgraph struct {
	Part  int32
	Local []int32
	Nodes []WireNode
	Edges []Edge
}

// EdgePair identifies a directed edge on the wire.
type EdgePair struct{ From, To int32 }

// viewParts selects which halves of a view a scan needs; building only
// the consumed half keeps the oracle path honest about its costs (the
// transitive scan reads out-adjacency only — its in-half would be pure
// wasted allocation).
type viewParts uint8

const (
	viewOut viewParts = 1 << iota
	viewIn
	viewLive // precompute the non-containment subsets (liveOut/liveIn)
)

// view is a worker-local indexed form of a Subgraph (the map engine).
type view struct {
	sub     *Subgraph
	part    map[int32]int32
	weight  map[int32]int64
	contig  map[int32][]byte
	isLocal map[int32]bool
	out     map[int32][]Edge
	in      map[int32][]Edge
	// lout/lin are the precomputed non-containment subsets served by
	// liveOut/liveIn (see liveSubsets).
	lout map[int32][]Edge
	lin  map[int32][]Edge
}

func newView(sub *Subgraph, parts viewParts) *view {
	v := &view{
		sub:     sub,
		part:    make(map[int32]int32, len(sub.Nodes)),
		weight:  make(map[int32]int64, len(sub.Nodes)),
		contig:  make(map[int32][]byte, len(sub.Nodes)),
		isLocal: make(map[int32]bool, len(sub.Local)),
	}
	for _, n := range sub.Nodes {
		v.part[n.ID] = n.Part
		v.weight[n.ID] = n.Weight
		v.contig[n.ID] = n.Contig
	}
	for _, id := range sub.Local {
		v.isLocal[id] = true
	}
	if parts&viewOut != 0 {
		v.out = make(map[int32][]Edge)
		for _, e := range sub.Edges {
			v.out[e.From] = append(v.out[e.From], e)
		}
		if parts&viewLive != 0 {
			v.lout = liveSubsets(v.out)
		}
	}
	if parts&viewIn != 0 {
		v.in = make(map[int32][]Edge)
		for _, e := range sub.Edges {
			v.in[e.To] = append(v.in[e.To], e)
		}
		if parts&viewLive != 0 {
			v.lin = liveSubsets(v.in)
		}
	}
	return v
}

// liveSubsets precomputes each node's non-containment edges. The scans
// issue many live-neighbour queries per node (path walks, bubble probes),
// so filtering once at view build replaces a per-query filtered
// allocation. Lists without containment edges — the common case — share
// the unfiltered slice.
func liveSubsets(adj map[int32][]Edge) map[int32][]Edge {
	live := make(map[int32][]Edge, len(adj))
	for id, es := range adj {
		contains := 0
		for i := range es {
			if es[i].Contain {
				contains++
			}
		}
		if contains == 0 {
			live[id] = es
			continue
		}
		if contains == len(es) {
			continue // all containment: live list empty, map miss returns nil
		}
		r := make([]Edge, 0, len(es)-contains)
		for _, e := range es {
			if !e.Contain {
				r = append(r, e)
			}
		}
		live[id] = r
	}
	return live
}

func (v *view) liveOut(id int32) []Edge { return v.lout[id] }

func (v *view) liveIn(id int32) []Edge { return v.lin[id] }

// TransitiveEdges finds edges of local nodes that are transitive
// (paper §V.A, after Myers' string graph construction): v->x is removable
// when some v->w and w->x exist whose placements compose to v->x within
// DiagTolerance.
func TransitiveEdges(sub *Subgraph, cfg Config) []EdgePair {
	if cfg.Engine == PhaseEngineMap {
		return transitiveEdgesMap(sub, cfg)
	}
	return transitiveEdgesCSR(sub, cfg)
}

func transitiveEdgesMap(sub *Subgraph, cfg Config) []EdgePair {
	v := newView(sub, viewOut|viewLive)
	var out []EdgePair
	for _, id := range sub.Local {
		outs := v.liveOut(id)
		if len(outs) < 2 {
			continue
		}
		// Index direct successors.
		direct := make(map[int32]Edge, len(outs))
		for _, e := range outs {
			direct[e.To] = e
		}
		for _, evw := range outs {
			for _, ewx := range v.liveOut(evw.To) {
				evx, ok := direct[ewx.To]
				if !ok || ewx.To == id {
					continue
				}
				want := evw.Diag + ewx.Diag
				d := evx.Diag - want
				if d < 0 {
					d = -d
				}
				if int(d) <= cfg.DiagTolerance {
					out = append(out, EdgePair{From: id, To: evx.To})
				}
			}
		}
	}
	var keys []uint64
	return dedupePairs(out, &keys)
}

// packPair folds an EdgePair into one uint64 whose unsigned order equals
// the (From, To) signed lexicographic order (the sign bit is flipped into
// a bias), so dedupePairs can sort raw integers instead of structs.
func packPair(p EdgePair) uint64 {
	return uint64(uint32(p.From)^0x80000000)<<32 | uint64(uint32(p.To)^0x80000000)
}

func unpackPair(k uint64) EdgePair {
	return EdgePair{
		From: int32(uint32(k>>32) ^ 0x80000000),
		To:   int32(uint32(k) ^ 0x80000000),
	}
}

// dedupePairs sorts pairs by (From, To) and drops duplicates in place.
// *keys is caller-provided scratch (grown as needed and returned through
// the pointer) so repeated scans on pooled state sort allocation-free.
func dedupePairs(pairs []EdgePair, keys *[]uint64) []EdgePair {
	if len(pairs) == 0 {
		return pairs // preserves nil vs empty
	}
	ks := (*keys)[:0]
	for _, p := range pairs {
		ks = append(ks, packPair(p))
	}
	slices.Sort(ks)
	*keys = ks
	n := 0
	for i, k := range ks {
		if i > 0 && k == ks[i-1] {
			continue
		}
		pairs[n] = unpackPair(k)
		n++
	}
	return pairs[:n]
}

// dedupeNodes sorts a node-id list and drops duplicates in place.
func dedupeNodes(ns []int32) []int32 {
	if len(ns) == 0 {
		return ns
	}
	slices.Sort(ns)
	n := 0
	for i, v := range ns {
		if i == 0 || v != ns[i-1] {
			ns[n] = v
			n++
		}
	}
	return ns[:n]
}

// Removal is the result of a containment or error scan.
type Removal struct {
	Nodes []int32
	Edges []EdgePair
}

// ContainmentScan verifies every edge incident to a local node by aligning
// the two contigs on the recorded placement (paper §V.B). Contigs
// contained in a neighbour are recorded for removal; edges whose verified
// overlap is shorter than MinEdgeOverlap or below MinEdgeIdentity are
// false positives and recorded for removal.
func ContainmentScan(sub *Subgraph, cfg Config) Removal {
	if cfg.Engine == PhaseEngineMap {
		return containmentScanMap(sub, cfg)
	}
	return containmentScanCSR(sub, cfg)
}

func containmentScanMap(sub *Subgraph, cfg Config) Removal {
	v := newView(sub, viewOut|viewIn)
	var rm Removal
	nodeSet := map[int32]bool{}
	check := func(e Edge) {
		a, b := v.contig[e.From], v.contig[e.To]
		acfg := align.Config{
			MinLength:   cfg.MinEdgeOverlap,
			MinIdentity: cfg.MinEdgeIdentity,
			Band:        cfg.Band,
			Scoring:     align.DefaultScoring,
		}
		ov, ok := align.OverlapOnDiagonal(a, b, int(e.Diag), acfg)
		if !ok {
			rm.Edges = append(rm.Edges, EdgePair{From: e.From, To: e.To})
			return
		}
		var contained int32 = -1
		switch ov.Kind {
		case align.KindAContainsB:
			contained = e.To
		case align.KindBContainsA:
			contained = e.From
		}
		if contained >= 0 && v.isLocal[contained] && !nodeSet[contained] {
			nodeSet[contained] = true
			rm.Nodes = append(rm.Nodes, contained)
		}
	}
	for _, id := range sub.Local {
		for _, e := range v.out[id] {
			check(e)
		}
		for _, e := range v.in[id] {
			if !v.isLocal[e.From] { // avoid double work for local-local
				check(e)
			}
		}
	}
	var keys []uint64
	rm.Edges = dedupePairs(rm.Edges, &keys)
	slices.Sort(rm.Nodes)
	return rm
}

// ErrorScan finds short dead-end paths and bubbles among local nodes
// (paper §V.C, following Velvet's tips-and-bubbles trimming).
func ErrorScan(sub *Subgraph, cfg Config) Removal {
	if cfg.Engine == PhaseEngineMap {
		return errorScanMap(sub, cfg)
	}
	return errorScanCSR(sub, cfg)
}

func errorScanMap(sub *Subgraph, cfg Config) Removal {
	v := newView(sub, viewOut|viewIn|viewLive)
	var rm Removal
	mark := map[int32]bool{}

	// Dead ends: from a local source (no in-edges) walk forward through a
	// unique-successor/unique-predecessor chain; if it attaches to a
	// junction within MaxTipNodes, spans < MinTipLen bases AND is the
	// minority branch at that junction (a strictly heavier sibling edge
	// exists), the chain is a tip. The minority condition keeps
	// legitimate chain heads, which are also in-degree-0. Mirror for
	// sinks.
	walk := func(start int32, fwd bool) {
		chain := []int32{start}
		span := len(v.contig[start])
		cur := start
		for len(chain) <= cfg.MaxTipNodes {
			var next []Edge
			if fwd {
				next = v.liveOut(cur)
			} else {
				next = v.liveIn(cur)
			}
			if len(next) != 1 {
				return // branches or terminates without attachment
			}
			conn := next[0]
			var nb int32
			if fwd {
				nb = conn.To
			} else {
				nb = conn.From
			}
			// Attachment test: the neighbour continues the main graph if
			// it has other incoming (fwd) / outgoing (bwd) edges.
			var back []Edge
			if fwd {
				back = v.liveIn(nb)
			} else {
				back = v.liveOut(nb)
			}
			if len(back) > 1 {
				dominated := false
				for _, e := range back {
					if e != conn && e.Len > conn.Len {
						dominated = true
						break
					}
				}
				if dominated && span < cfg.MinTipLen {
					for _, id := range chain {
						if !mark[id] {
							mark[id] = true
							rm.Nodes = append(rm.Nodes, id)
						}
					}
				}
				return
			}
			chain = append(chain, nb)
			span += len(v.contig[nb]) // upper bound on added span
			cur = nb
		}
	}
	for _, id := range sub.Local {
		if len(v.liveIn(id)) == 0 && len(v.liveOut(id)) == 1 {
			walk(id, true)
		}
		if len(v.liveOut(id)) == 0 && len(v.liveIn(id)) == 1 {
			walk(id, false)
		}
	}

	// Bubbles: local v with unique predecessor u and unique successor w;
	// if some sibling x shares exactly (u, w), the pair is a bubble and
	// the branch with lower read weight (tie: shorter contig, then higher
	// id) is removed. The rule is deterministic, so two partitions seeing
	// the same bubble record the same victim.
	loses := func(a, b int32) bool {
		if v.weight[a] != v.weight[b] {
			return v.weight[a] < v.weight[b]
		}
		if len(v.contig[a]) != len(v.contig[b]) {
			return len(v.contig[a]) < len(v.contig[b])
		}
		return a > b
	}
	for _, id := range sub.Local {
		ins, outs := v.liveIn(id), v.liveOut(id)
		if len(ins) != 1 || len(outs) != 1 {
			continue
		}
		u, w := ins[0].From, outs[0].To
		for _, sib := range v.liveOut(u) {
			x := sib.To
			if x == id {
				continue
			}
			xi, xo := v.liveIn(x), v.liveOut(x)
			if len(xi) != 1 || len(xo) != 1 || xo[0].To != w {
				continue
			}
			victim := id
			if loses(x, id) {
				victim = x
			}
			if !mark[victim] {
				mark[victim] = true
				rm.Nodes = append(rm.Nodes, victim)
			}
		}
	}
	slices.Sort(rm.Nodes)
	return rm
}

// ExtractPaths performs the partition-local maximal path extraction of
// paper §V.D: starting from each unvisited local node, the path is grown
// by out-edges while the next node has a unique in-edge, lies in the same
// partition and is unvisited, then symmetrically grown by in-edges.
func ExtractPaths(sub *Subgraph, cfg Config) [][]int32 {
	v := newView(sub, viewOut|viewIn|viewLive)
	inPath := map[int32]bool{}
	var paths [][]int32
	for _, id := range sub.Local {
		if inPath[id] {
			continue
		}
		path := []int32{id}
		inPath[id] = true
		// Extend right.
		cur := id
		for {
			outs := v.liveOut(cur)
			if len(outs) != 1 {
				break
			}
			nxt := outs[0].To
			if v.part[nxt] != sub.Part || !v.isLocal[nxt] || inPath[nxt] {
				break
			}
			if len(v.liveIn(nxt)) != 1 {
				break
			}
			path = append(path, nxt)
			inPath[nxt] = true
			cur = nxt
		}
		// Extend left.
		cur = id
		for {
			ins := v.liveIn(cur)
			if len(ins) != 1 {
				break
			}
			prv := ins[0].From
			if v.part[prv] != sub.Part || !v.isLocal[prv] || inPath[prv] {
				break
			}
			if len(v.liveOut(prv)) != 1 {
				break
			}
			path = append([]int32{prv}, path...)
			inPath[prv] = true
			cur = prv
		}
		paths = append(paths, path)
	}
	return paths
}
