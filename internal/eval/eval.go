// Package eval is a reference-based assembly evaluator (a QUAST-lite):
// contigs are anchored to reference genomes by unique k-mers, anchor runs
// are chained into aligned blocks, and the blocks yield genome fraction,
// duplication ratio, per-contig identity estimates and misassembly
// counts. The benchmark harness uses it to ground Table III-style
// statistics in accuracy, not just contiguity, and to compare the Focus
// and de Bruijn assemblers fairly.
package eval

import (
	"fmt"
	"sort"

	"focus/internal/dna"
)

// Reference is one reference sequence to evaluate against.
type Reference struct {
	Name string
	Seq  []byte
}

// Config controls evaluation.
type Config struct {
	K int // anchor k-mer size
	// MinBlock is the minimum anchored block length (bp) that counts as
	// aligned.
	MinBlock int
	// MaxGap is the largest anchor-to-anchor inconsistency (bp) allowed
	// within one block; larger jumps split blocks (candidate
	// misassemblies).
	MaxGap int
	// MinContig ignores contigs shorter than this.
	MinContig int
}

// DefaultConfig returns evaluation parameters for 100 bp-read assemblies.
func DefaultConfig() Config {
	return Config{K: 25, MinBlock: 120, MaxGap: 60, MinContig: 100}
}

// Block is a contiguous run of consistent anchors: contig
// [CStart, CEnd) maps to reference ref at [RStart, REnd) on the given
// strand.
type Block struct {
	Contig  int
	Ref     int
	Strand  byte // '+' or '-'
	CStart  int
	CEnd    int
	RStart  int
	REnd    int
	Anchors int
}

// ContigReport summarizes one contig's evaluation.
type ContigReport struct {
	Length int
	// Aligned is the number of contig bases inside blocks.
	Aligned int
	// Blocks the contig split into; >1 with distant targets indicates a
	// misassembly or a chimera.
	Blocks []Block
	// Misassemblies counts adjacent block pairs that jump reference,
	// strand, or position by more than MaxGap.
	Misassemblies int
	Unaligned     bool
}

// Report is the whole-assembly evaluation.
type Report struct {
	Refs    []Reference
	Contigs []ContigReport
	// GenomeFraction is the fraction of total reference bases covered by
	// at least one aligned block.
	GenomeFraction float64
	// DuplicationRatio is aligned contig bases divided by covered
	// reference bases (1.0 = no redundancy; ~2.0 expected when both
	// strands are assembled separately).
	DuplicationRatio float64
	TotalAligned     int
	TotalUnaligned   int
	Misassemblies    int
}

// anchorIndex maps each k-mer that occurs exactly once across all
// references (canonical form) to its location.
type anchorIndex struct {
	k    int
	locs map[dna.Kmer]anchorLoc
}

type anchorLoc struct {
	ref    int32
	pos    int32
	strand byte // strand of the canonical form in the reference
	dup    bool
}

func buildAnchorIndex(refs []Reference, k int) *anchorIndex {
	ix := &anchorIndex{k: k, locs: make(map[dna.Kmer]anchorLoc)}
	for ri, ref := range refs {
		it := dna.NewKmerIter(ref.Seq, k)
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			can := km.Canonical(k)
			strand := byte('+')
			if can != km {
				strand = '-'
			}
			if loc, seen := ix.locs[can]; seen {
				loc.dup = true
				ix.locs[can] = loc
				continue
			}
			ix.locs[can] = anchorLoc{ref: int32(ri), pos: int32(off), strand: strand}
		}
	}
	return ix
}

// anchor is one contig k-mer matched to a unique reference k-mer.
type anchor struct {
	cpos   int
	ref    int32
	rpos   int
	strand byte // contig strand relative to reference
}

// Evaluate aligns every contig against the references and builds the
// report.
func Evaluate(contigs [][]byte, refs []Reference, cfg Config) (*Report, error) {
	if cfg.K <= 0 || cfg.K > dna.MaxK {
		return nil, fmt.Errorf("eval: k=%d out of range", cfg.K)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("eval: no references")
	}
	ix := buildAnchorIndex(refs, cfg.K)

	rep := &Report{Refs: refs}
	// Coverage bitmaps per reference.
	covered := make([][]bool, len(refs))
	for i, r := range refs {
		covered[i] = make([]bool, len(r.Seq))
	}

	for ci, contig := range contigs {
		cr := ContigReport{Length: len(contig)}
		if len(contig) < cfg.MinContig {
			cr.Unaligned = true
			rep.Contigs = append(rep.Contigs, cr)
			continue
		}
		anchors := collectAnchors(contig, ix)
		cr.Blocks = chainAnchors(anchors, ci, cfg)
		for _, b := range cr.Blocks {
			cr.Aligned += b.CEnd - b.CStart
			for p := b.RStart; p < b.REnd && p < len(covered[b.Ref]); p++ {
				covered[b.Ref][p] = true
			}
		}
		cr.Misassemblies = countMisassemblies(cr.Blocks, cfg)
		cr.Unaligned = len(cr.Blocks) == 0
		if cr.Unaligned {
			rep.TotalUnaligned += cr.Length
		} else {
			rep.TotalAligned += cr.Aligned
		}
		rep.Misassemblies += cr.Misassemblies
		rep.Contigs = append(rep.Contigs, cr)
	}

	totalRef, coveredRef := 0, 0
	for i := range covered {
		totalRef += len(covered[i])
		for _, c := range covered[i] {
			if c {
				coveredRef++
			}
		}
	}
	if totalRef > 0 {
		rep.GenomeFraction = float64(coveredRef) / float64(totalRef)
	}
	if coveredRef > 0 {
		rep.DuplicationRatio = float64(rep.TotalAligned) / float64(coveredRef)
	}
	return rep, nil
}

// collectAnchors finds the unique-k-mer matches of a contig.
func collectAnchors(contig []byte, ix *anchorIndex) []anchor {
	var anchors []anchor
	it := dna.NewKmerIter(contig, ix.k)
	for {
		km, off, ok := it.Next()
		if !ok {
			break
		}
		can := km.Canonical(ix.k)
		loc, seen := ix.locs[can]
		if !seen || loc.dup {
			continue
		}
		// Contig strand relative to the reference: the contig k-mer and
		// the reference k-mer are each either the canonical form or its
		// reverse complement.
		cstrand := byte('+')
		if can != km {
			cstrand = '-'
		}
		strand := byte('+')
		if cstrand != loc.strand {
			strand = '-'
		}
		anchors = append(anchors, anchor{cpos: off, ref: loc.ref, rpos: int(loc.pos), strand: strand})
	}
	return anchors
}

// chainAnchors groups consistent consecutive anchors into blocks.
func chainAnchors(anchors []anchor, contig int, cfg Config) []Block {
	var blocks []Block
	var cur *Block
	var lastA anchor
	flush := func() {
		if cur != nil && cur.CEnd-cur.CStart >= cfg.MinBlock && cur.Anchors >= 2 {
			blocks = append(blocks, *cur)
		}
		cur = nil
	}
	for _, a := range anchors {
		if cur != nil {
			ok := a.ref == int32(cur.Ref) && a.strand == cur.Strand
			if ok {
				// Consistent diagonal: reference delta matches contig
				// delta (sign depends on strand).
				cd := a.cpos - lastA.cpos
				rd := a.rpos - lastA.rpos
				if cur.Strand == '-' {
					rd = -rd
				}
				diff := rd - cd
				if diff < 0 {
					diff = -diff
				}
				ok = cd >= 0 && diff <= cfg.MaxGap
			}
			if !ok {
				flush()
			}
		}
		if cur == nil {
			cur = &Block{
				Contig: contig, Ref: int(a.ref), Strand: a.strand,
				CStart: a.cpos, CEnd: a.cpos + cfg.K,
				RStart: a.rpos, REnd: a.rpos + cfg.K,
				Anchors: 1,
			}
			lastA = a
			continue
		}
		cur.CEnd = a.cpos + cfg.K
		if a.strand == '+' {
			if a.rpos+cfg.K > cur.REnd {
				cur.REnd = a.rpos + cfg.K
			}
		} else {
			if a.rpos < cur.RStart {
				cur.RStart = a.rpos
			}
			if a.rpos+cfg.K > cur.REnd {
				cur.REnd = a.rpos + cfg.K
			}
		}
		cur.Anchors++
		lastA = a
	}
	flush()
	return blocks
}

// countMisassemblies counts adjacent block pairs within a contig whose
// reference placements are inconsistent.
func countMisassemblies(blocks []Block, cfg Config) int {
	n := 0
	for i := 1; i < len(blocks); i++ {
		a, b := blocks[i-1], blocks[i]
		if a.Ref != b.Ref || a.Strand != b.Strand {
			n++
			continue
		}
		// Same ref and strand: positions must progress consistently.
		cd := b.CStart - a.CEnd
		var rd int
		if a.Strand == '+' {
			rd = b.RStart - a.REnd
		} else {
			rd = a.RStart - b.REnd
		}
		diff := rd - cd
		if diff < 0 {
			diff = -diff
		}
		if diff > 10*cfg.MaxGap {
			n++
		}
	}
	return n
}

// Summary renders a one-line overview.
func (r *Report) Summary() string {
	return fmt.Sprintf("genome fraction %.1f%%, duplication %.2fx, aligned %d bp, unaligned %d bp, misassemblies %d",
		100*r.GenomeFraction, r.DuplicationRatio, r.TotalAligned, r.TotalUnaligned, r.Misassemblies)
}

// NGA50 is the aligned analogue of N50: the N50 over aligned block
// lengths instead of raw contig lengths (misassembled or unaligned
// sequence does not inflate it).
func (r *Report) NGA50() int {
	var lens []int
	total := 0
	for _, c := range r.Contigs {
		for _, b := range c.Blocks {
			l := b.CEnd - b.CStart
			lens = append(lens, l)
			total += l
		}
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	cum := 0
	for _, l := range lens {
		cum += l
		if 2*cum >= total {
			return l
		}
	}
	return 0
}
