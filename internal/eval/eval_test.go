package eval

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/dna"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func TestEvaluatePerfectAssembly(t *testing.T) {
	genome := randGenome(1, 5000)
	refs := []Reference{{Name: "g", Seq: genome}}
	contigs := [][]byte{append([]byte(nil), genome...)}
	rep, err := Evaluate(contigs, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.99 {
		t.Errorf("genome fraction = %v", rep.GenomeFraction)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("misassemblies = %d", rep.Misassemblies)
	}
	if rep.DuplicationRatio < 0.99 || rep.DuplicationRatio > 1.01 {
		t.Errorf("duplication = %v", rep.DuplicationRatio)
	}
	if len(rep.Contigs) != 1 || rep.Contigs[0].Unaligned {
		t.Fatalf("report = %+v", rep.Contigs)
	}
	if rep.NGA50() < 4900 {
		t.Errorf("NGA50 = %d", rep.NGA50())
	}
}

func TestEvaluateReverseStrandContig(t *testing.T) {
	genome := randGenome(2, 3000)
	refs := []Reference{{Name: "g", Seq: genome}}
	rc := dna.ReverseComplement(genome[500:1500])
	rep, err := Evaluate([][]byte{rc}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Contigs[0].Blocks) != 1 {
		t.Fatalf("blocks = %+v", rep.Contigs[0].Blocks)
	}
	b := rep.Contigs[0].Blocks[0]
	if b.Strand != '-' {
		t.Errorf("strand = %c", b.Strand)
	}
	if b.RStart > 520 || b.REnd < 1480 {
		t.Errorf("block covers [%d,%d), want ~[500,1500)", b.RStart, b.REnd)
	}
	if rep.GenomeFraction < 0.30 || rep.GenomeFraction > 0.36 {
		t.Errorf("genome fraction = %v", rep.GenomeFraction)
	}
}

func TestEvaluateHalfCoverage(t *testing.T) {
	genome := randGenome(3, 4000)
	refs := []Reference{{Name: "g", Seq: genome}}
	rep, err := Evaluate([][]byte{genome[:2000]}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.48 || rep.GenomeFraction > 0.52 {
		t.Errorf("genome fraction = %v, want ~0.5", rep.GenomeFraction)
	}
}

func TestEvaluateDetectsChimera(t *testing.T) {
	g1 := randGenome(4, 3000)
	g2 := randGenome(5, 3000)
	refs := []Reference{{Name: "a", Seq: g1}, {Name: "b", Seq: g2}}
	// Chimeric contig: half from each genome.
	chimera := append(append([]byte(nil), g1[:1000]...), g2[1000:2000]...)
	rep, err := Evaluate([][]byte{chimera}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cr := rep.Contigs[0]
	if len(cr.Blocks) != 2 {
		t.Fatalf("blocks = %+v", cr.Blocks)
	}
	if cr.Misassemblies != 1 {
		t.Errorf("misassemblies = %d, want 1", cr.Misassemblies)
	}
	if cr.Blocks[0].Ref == cr.Blocks[1].Ref {
		t.Errorf("both blocks on ref %d", cr.Blocks[0].Ref)
	}
}

func TestEvaluateDetectsInternalJump(t *testing.T) {
	genome := randGenome(6, 6000)
	refs := []Reference{{Name: "g", Seq: genome}}
	// Contig that jumps from position 500 to 4000 (a deletion-style
	// misjoin well beyond MaxGap).
	jump := append(append([]byte(nil), genome[0:500]...), genome[4000:4700]...)
	rep, err := Evaluate([][]byte{jump}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cr := rep.Contigs[0]
	if len(cr.Blocks) != 2 {
		t.Fatalf("blocks = %+v", cr.Blocks)
	}
	if cr.Misassemblies != 1 {
		t.Errorf("misassemblies = %d, want 1", cr.Misassemblies)
	}
}

func TestEvaluateUnalignedContig(t *testing.T) {
	genome := randGenome(7, 3000)
	refs := []Reference{{Name: "g", Seq: genome}}
	junk := randGenome(8, 1000)
	rep, err := Evaluate([][]byte{junk}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contigs[0].Unaligned {
		t.Error("random contig aligned")
	}
	if rep.TotalUnaligned != 1000 {
		t.Errorf("unaligned bases = %d", rep.TotalUnaligned)
	}
	if rep.GenomeFraction != 0 {
		t.Errorf("genome fraction = %v", rep.GenomeFraction)
	}
}

func TestEvaluateToleratesScatteredErrors(t *testing.T) {
	genome := randGenome(9, 4000)
	refs := []Reference{{Name: "g", Seq: genome}}
	noisy := append([]byte(nil), genome...)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ { // 0.5% error
		p := rng.Intn(len(noisy))
		noisy[p] = "ACGT"[rng.Intn(4)]
	}
	rep, err := Evaluate([][]byte{noisy}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.95 {
		t.Errorf("genome fraction = %v with 0.5%% errors", rep.GenomeFraction)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("misassemblies = %d", rep.Misassemblies)
	}
}

func TestEvaluateDuplicationBothStrands(t *testing.T) {
	genome := randGenome(11, 3000)
	refs := []Reference{{Name: "g", Seq: genome}}
	contigs := [][]byte{
		append([]byte(nil), genome...),
		dna.ReverseComplement(genome),
	}
	rep, err := Evaluate(contigs, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicationRatio < 1.9 || rep.DuplicationRatio > 2.1 {
		t.Errorf("duplication = %v, want ~2 for double-stranded assembly", rep.DuplicationRatio)
	}
}

func TestEvaluateShortContigsIgnored(t *testing.T) {
	genome := randGenome(12, 2000)
	refs := []Reference{{Name: "g", Seq: genome}}
	rep, err := Evaluate([][]byte{genome[:50]}, refs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contigs[0].Unaligned || rep.GenomeFraction != 0 {
		t.Errorf("short contig not ignored: %+v", rep.Contigs[0])
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil, DefaultConfig()); err == nil {
		t.Error("no references accepted")
	}
	cfg := DefaultConfig()
	cfg.K = 0
	if _, err := Evaluate(nil, []Reference{{Name: "g", Seq: []byte("ACGT")}}, cfg); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSummary(t *testing.T) {
	genome := randGenome(13, 2000)
	rep, err := Evaluate([][]byte{genome}, []Reference{{Name: "g", Seq: genome}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(rep.Summary()), []byte("genome fraction")) {
		t.Errorf("summary = %q", rep.Summary())
	}
}
