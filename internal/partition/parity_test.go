package partition

import (
	"math/rand"
	"testing"

	"focus/internal/coarsen"
)

// TestPartitionSetProcsEquivalence: for a fixed seed the full multilevel
// partitioning is byte-identical at Procs 1, 2 and 8 (which also varies
// the derived intra-task Workers split).
func TestPartitionSetProcsEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := ringOfClusters(16, 12, 20+seed)
		set := coarsen.Multilevel(g, coarsen.DefaultOptions())
		opt := DefaultOptions(8)
		opt.Seed = seed
		opt.Procs = 1
		ref, err := PartitionSet(set, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{2, 8} {
			opt.Procs = procs
			got, err := PartitionSet(set, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.LevelLabels {
				for v := range ref.LevelLabels[i] {
					if got.LevelLabels[i][v] != ref.LevelLabels[i][v] {
						t.Fatalf("seed %d procs %d: level %d node %d diverged", seed, procs, i, v)
					}
				}
			}
		}
	}
}

// TestKWayRefineWorkerEquivalence: the boundary-scan parallelism never
// changes the refinement result.
func TestKWayRefineWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := ringOfClusters(8, 10, 30+seed)
		k := 4
		base := make([]int32, g.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		for v := range base {
			base[v] = int32(rng.Intn(k))
		}
		opt := DefaultOptions(k)
		opt.Workers = 1
		ref := append([]int32(nil), base...)
		refGain := KWayRefine(g, ref, k, opt)
		for _, w := range []int{2, 8} {
			opt.Workers = w
			got := append([]int32(nil), base...)
			gotGain := KWayRefine(g, got, k, opt)
			if gotGain != refGain {
				t.Fatalf("seed %d workers %d: gain %d vs %d", seed, w, gotGain, refGain)
			}
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("seed %d workers %d: label[%d] diverged", seed, w, v)
				}
			}
		}
	}
}

// TestKLBisectWorkerEquivalence: the sharded gain initialization never
// changes a bisection.
func TestKLBisectWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := ringOfClusters(6, 10, 40+seed)
		base := make([]int32, g.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		for v := range base {
			base[v] = int32(rng.Intn(2))
		}
		base[0], base[1] = 0, 1
		opt := DefaultOptions(2)
		ref := append([]int32(nil), base...)
		refGain := klBisect(g, ref, 0, 1, opt, newKLScratch(g.NumNodes(), 1))
		for _, w := range []int{2, 8} {
			got := append([]int32(nil), base...)
			gotGain := klBisect(g, got, 0, 1, opt, newKLScratch(g.NumNodes(), w))
			if gotGain != refGain {
				t.Fatalf("seed %d workers %d: gain %d vs %d", seed, w, gotGain, refGain)
			}
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("seed %d workers %d: label[%d] diverged", seed, w, v)
				}
			}
		}
	}
}

// BenchmarkBisect measures one full KL bisection (gain init + passes)
// on a clustered graph, serial vs sharded gain initialization.
func BenchmarkBisect(b *testing.B) {
	g := ringOfClusters(64, 64, 50)
	n := g.NumNodes()
	base := make([]int32, n)
	rng := rand.New(rand.NewSource(1))
	for v := range base {
		base[v] = int32(rng.Intn(2))
	}
	opt := DefaultOptions(2)
	labels := make([]int32, n)
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		sc := newKLScratch(n, workers)
		for i := 0; i < b.N; i++ {
			copy(labels, base)
			_ = klBisect(g, labels, 0, 1, opt, sc)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 8) })
}
