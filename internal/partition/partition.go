package partition

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"focus/internal/graph"
	"focus/internal/metrics"
	"focus/internal/par"
)

// Result is a k-way partitioning of every level of a graph set.
type Result struct {
	K int
	// LevelLabels[i][v] is the partition (0..K-1) of node v at set level
	// i; LevelLabels[0] is the finest level.
	LevelLabels [][]int32
	// StepTaskTimes[s][r] is the measured duration of bisecting region r
	// at recursive-bisection step s; KWayTimes[i] is the duration of the
	// global k-way refinement of level i. Together they describe the
	// algorithm's task graph: steps are barriers, tasks within a step
	// are independent (paper §IV.C's 2^i-way natural parallelism).
	StepTaskTimes [][]time.Duration
	KWayTimes     []time.Duration
}

// SimulatedMakespan projects the measured task times onto p processors:
// within each bisection step the 2^s region tasks are LPT-scheduled on p
// processors (steps are barriers), and the per-level k-way refinements
// are scheduled the same way. This reproduces the paper's speedup
// experiment (Fig. 4) even on hosts with fewer cores than the paper's
// cluster; on a large host it closely tracks wall-clock.
func (r *Result) SimulatedMakespan(p int) time.Duration {
	var total time.Duration
	for _, tasks := range r.StepTaskTimes {
		total += metrics.Makespan(tasks, p)
	}
	total += metrics.Makespan(r.KWayTimes, p)
	return total
}

// Labels returns the finest-level labels.
func (r *Result) Labels() []int32 { return r.LevelLabels[0] }

// PartitionSet partitions every level of the set into opt.K parts with
// multilevel recursive bisection (paper §IV): the coarsest graph is
// bisected by greedy growing + KL, the bisection is projected and
// KL-refined down every level, each half is recursively bisected (the
// 2^i regions of step i in parallel, bounded by opt.Procs), and finally
// every level is independently refined by the global k-way KL heuristic.
func PartitionSet(set *graph.Set, opt Options) (*Result, error) {
	return PartitionSetCtx(nil, set, opt)
}

// PartitionSetCtx is PartitionSet bounded by ctx: a cancel abandons the
// bisection at the next region or step boundary (regions already running
// finish their current region — a region is the task grain) and returns
// the context's cause. A nil ctx never cancels.
func PartitionSetCtx(ctx context.Context, set *graph.Set, opt Options) (*Result, error) {
	gate := par.GateFor(ctx)
	if err := set.Validate(); err != nil {
		return nil, err
	}
	k := opt.K
	if k < 1 || k&(k-1) != 0 {
		return nil, fmt.Errorf("partition: k=%d is not a power of two", k)
	}
	steps := 0
	for 1<<steps < k {
		steps++
	}
	if set.Coarsest().NumNodes() < k {
		return nil, fmt.Errorf("partition: coarsest level has %d nodes for k=%d", set.Coarsest().NumNodes(), k)
	}
	procs := opt.Procs
	if procs <= 0 {
		procs = k/2 + 1
	}
	// k/2 regions is the widest concurrent step, but there is no point
	// holding more region slots than cores.
	procs = par.Limit(procs)
	if opt.Balance <= 1 {
		opt.Balance = 1.03
	}

	levels := len(set.Levels)
	res := &Result{K: k, LevelLabels: make([][]int32, levels)}
	maxN := 0
	for i, g := range set.Levels {
		res.LevelLabels[i] = make([]int32, g.NumNodes())
		if g.NumNodes() > maxN {
			maxN = g.NumNodes()
		}
	}

	// One dense scratch per in-flight region, sized for the finest level
	// and recycled across regions and steps.
	scratches := sync.Pool{New: func() any { return newKLScratch(maxN, 1) }}

	sem := make(chan struct{}, procs)
	for step := 0; step < steps; step++ {
		regions := int32(1) << step
		// Spare processors beyond the region count go to intra-task scan
		// parallelism; the split never changes results.
		stepOpt := opt
		stepOpt.Workers = procs / int(regions)
		if stepOpt.Workers < 1 {
			stepOpt.Workers = 1
		}
		taskTimes := make([]time.Duration, regions)
		var wg sync.WaitGroup
		for r := int32(0); r < regions; r++ {
			wg.Add(1)
			go func(r int32) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if gate.Stopped() {
					return
				}
				newLabel := r + regions
				rng := rand.New(rand.NewSource(opt.Seed + int64(step)*1000 + int64(r)))
				sc := scratches.Get().(*klScratch)
				sc.workers = stepOpt.Workers
				t0 := time.Now()
				bisectRegion(set, res.LevelLabels, r, newLabel, stepOpt, rng, sc)
				taskTimes[r] = time.Since(t0)
				scratches.Put(sc)
			}(r)
		}
		wg.Wait()
		// Steps are barriers: later steps bisect the regions earlier steps
		// created, so a cancel must not proceed with a half-split step.
		if gate.Stopped() {
			return nil, gate.Err()
		}
		res.StepTaskTimes = append(res.StepTaskTimes, taskTimes)
	}

	if !opt.SkipKWay && k > 1 {
		kwOpt := opt
		kwOpt.Workers = procs / levels
		if kwOpt.Workers < 1 {
			kwOpt.Workers = 1
		}
		res.KWayTimes = make([]time.Duration, len(set.Levels))
		var wg sync.WaitGroup
		for i := range set.Levels {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if gate.Stopped() {
					return
				}
				t0 := time.Now()
				KWayRefine(set.Levels[i], res.LevelLabels[i], k, kwOpt)
				res.KWayTimes[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
		if gate.Stopped() {
			return nil, gate.Err()
		}
	}
	return res, nil
}

// loadLabel/storeLabel annotate the cross-region label traffic of one
// bisection step for the race detector. Disjoint regions share the
// per-level label arrays: each region's goroutine writes only its own
// region's entries, but membership scans and KL gain scans read
// neighbours that another region may be relabeling concurrently. Those
// reads are decision-stable — a concurrent write flips a foreign label
// between r' and r'+regions, neither of which the reader matches — but
// the Go memory model still wants the accesses ordered; atomic
// load/store of an int32 compiles to a plain move on the supported
// targets, so this costs nothing.
func loadLabel(l *int32) int32 { return atomic.LoadInt32(l) }

func storeLabel(l *int32, v int32) { atomic.StoreInt32(l, v) }

// bisectRegion splits region r into labels {r, newLabel} on the coarsest
// level and projects + refines the split down to level 0. Labels outside
// the region are never touched, so disjoint regions can run concurrently;
// sc is owned by this region for the duration of the call.
func bisectRegion(set *graph.Set, levelLabels [][]int32, r, newLabel int32, opt Options, rng *rand.Rand, sc *klScratch) {
	top := len(set.Levels) - 1
	for i := top; i >= 0; i-- {
		labels := levelLabels[i]
		if i < top {
			// Project the parent level's split into this level.
			up := set.Up[i]
			parentLabels := levelLabels[i+1]
			for v := range labels {
				if loadLabel(&labels[v]) != r {
					continue
				}
				if loadLabel(&parentLabels[up[v]]) == newLabel {
					storeLabel(&labels[v], newLabel)
				}
				// Parent labeled r (or, after earlier refinements, some
				// other region): node keeps r.
			}
		}
		// If the split has not materialized yet (region too small at
		// coarser levels), start it here.
		countR, countNew := 0, 0
		for v := range labels {
			switch loadLabel(&labels[v]) {
			case r:
				countR++
			case newLabel:
				countNew++
			}
		}
		if countNew == 0 {
			if countR < 2 {
				continue // not splittable at this level yet
			}
			greedyGrow(set.Levels[i], labels, r, newLabel, opt, rng, sc)
		}
		klBisect(set.Levels[i], labels, r, newLabel, opt, sc)
	}
}

// EdgeCut returns the total weight of edges whose endpoints have
// different labels.
func EdgeCut(g *graph.Graph, labels []int32) int64 {
	var cut int64
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Adj(v) {
			if a.To > v && labels[v] != labels[a.To] {
				cut += a.W
			}
		}
	}
	return cut
}

// PartWeights returns the total node weight of each partition.
func PartWeights(g *graph.Graph, labels []int32, k int) []int64 {
	w := make([]int64, k)
	for v := range labels {
		w[labels[v]] += g.NodeWeight(v)
	}
	return w
}

// MapLabels projects labels through a node mapping: out[v] =
// labels[mapOf[v]]. It is used to project a hybrid-graph partitioning
// onto the overlap graph (paper §III: "this partitioning found on the
// hybrid graph can then be simply mapped to the original overlap graph").
func MapLabels(labels []int32, mapOf []int) []int32 {
	out := make([]int32, len(mapOf))
	for v, m := range mapOf {
		out[v] = labels[m]
	}
	return out
}

// Validate checks that labels form a valid partitioning into k parts and
// that every part is non-empty.
func Validate(g *graph.Graph, labels []int32, k int) error {
	if len(labels) != g.NumNodes() {
		return fmt.Errorf("partition: %d labels for %d nodes", len(labels), g.NumNodes())
	}
	seen := make([]bool, k)
	for v, l := range labels {
		if l < 0 || int(l) >= k {
			return fmt.Errorf("partition: node %d has label %d outside [0,%d)", v, l, k)
		}
		seen[l] = true
	}
	for p, s := range seen {
		if !s {
			return fmt.Errorf("partition: part %d empty", p)
		}
	}
	return nil
}
