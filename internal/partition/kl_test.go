package partition

import (
	"math/rand"
	"testing"

	"focus/internal/graph"
)

// bruteBestSwap exhaustively finds the maximum-gain pair across the two
// queues' contents.
func bruteBestSwap(g *graph.Graph, sc *klScratch) (bestGain int64, found bool) {
	var as, bs []int
	for _, v := range sc.members {
		if sc.qa.Contains(v) {
			as = append(as, v)
		} else if sc.qb.Contains(v) {
			bs = append(bs, v)
		}
	}
	for _, a := range as {
		for _, b := range bs {
			gain := sc.d[a] + sc.d[b] - 2*g.EdgeWeight(a, b)
			if !found || gain > bestGain {
				found, bestGain = true, gain
			}
		}
	}
	return bestGain, found
}

// TestSelectSwapMatchesBruteForce verifies the lazy diagonal scan finds
// the globally best pair on random instances.
func TestSelectSwapMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(2 * n)
		for i := 0; i < 6*n; i++ {
			_ = b.AddEdge(rng.Intn(2*n), rng.Intn(2*n), int64(1+rng.Intn(9)))
		}
		g := b.Build()
		labels := make([]int32, 2*n)
		for v := n; v < 2*n; v++ {
			labels[v] = 1
		}
		sc := newKLScratch(2*n, 1)
		sc.initD(g, labels, 0, 1)
		for _, v := range sc.members {
			if labels[v] == 0 {
				sc.qa.Push(v, sc.d[v])
			} else {
				sc.qb.Push(v, sc.d[v])
			}
		}
		wantGain, wantFound := bruteBestSwap(g, sc)
		a, bNode, gotGain, gotFound := selectSwap(g, sc)
		if gotFound != wantFound {
			t.Fatalf("seed %d: found=%v want %v", seed, gotFound, wantFound)
		}
		if !gotFound {
			continue
		}
		if gotGain != wantGain {
			t.Fatalf("seed %d: gain %d (pair %d,%d), brute force %d", seed, gotGain, a, bNode, wantGain)
		}
		// Queues must be restored (selectSwap pushes drained items back).
		if sc.qa.Len()+sc.qb.Len() != len(sc.members) {
			t.Fatalf("seed %d: queues not restored: %d+%d != %d", seed, sc.qa.Len(), sc.qb.Len(), len(sc.members))
		}
	}
}

// TestInitD checks E - I computation directly, serial vs sharded.
func TestInitD(t *testing.T) {
	// Triangle 0-1-2 with weights 5,7,3 plus a node 3 in another region.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 5)
	_ = b.AddEdge(1, 2, 7)
	_ = b.AddEdge(0, 2, 3)
	_ = b.AddEdge(2, 3, 100) // edge out of the region: ignored
	g := b.Build()
	labels := []int32{0, 0, 1, 9}
	sc := newKLScratch(4, 1)
	sc.initD(g, labels, 0, 1)
	if len(sc.members) != 3 {
		t.Fatalf("d values for %d nodes", len(sc.members))
	}
	// Node 0: internal w(0,1)=5, external w(0,2)=3 -> D = -2.
	if sc.d[0] != -2 {
		t.Errorf("D[0] = %d, want -2", sc.d[0])
	}
	// Node 1: internal 5, external 7 -> 2.
	if sc.d[1] != 2 {
		t.Errorf("D[1] = %d, want 2", sc.d[1])
	}
	// Node 2: internal 0, external 7+3=10 (edge to 3 ignored) -> 10.
	if sc.d[2] != 10 {
		t.Errorf("D[2] = %d, want 10", sc.d[2])
	}
	if sc.in[3] {
		t.Error("node 3 marked in-universe")
	}
}

// TestKLPassEarlyStopBounded: with a tiny early-stop the pass terminates
// and never worsens the cut.
func TestKLPassEarlyStopBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	b := graph.NewBuilder(60)
	for i := 0; i < 300; i++ {
		_ = b.AddEdge(rng.Intn(60), rng.Intn(60), int64(1+rng.Intn(20)))
	}
	g := b.Build()
	labels := make([]int32, 60)
	for v := 30; v < 60; v++ {
		labels[v] = 1
	}
	before := EdgeCut(g, labels)
	opt := DefaultOptions(2)
	opt.EarlyStop = 1
	improved := klBisect(g, labels, 0, 1, opt, newKLScratch(60, 1))
	after := EdgeCut(g, labels)
	if after != before-improved || improved < 0 {
		t.Fatalf("before=%d after=%d improved=%d", before, after, improved)
	}
}
