// Package partition implements the multilevel graph partitioning of paper
// §IV: greedy graph growing for initial bisections, Kernighan–Lin pairwise
// refinement with dual priority queues and diagonal scanning, recursive
// bisection with its natural 2^i-way parallelism, projection of partitions
// through the graph set, and a final global k-way Kernighan–Lin
// refinement per level.
package partition

import (
	"math/rand"

	"focus/internal/graph"
	"focus/internal/pq"
)

// Options tune the partitioner. The defaults mirror the constants the
// paper states explicitly.
type Options struct {
	K int // number of partitions; must be a power of two (paper §IV)
	// Procs bounds the number of concurrently processed bisection
	// regions/levels (the paper's processor count). <= 0 means use K/2.
	Procs int
	// Balance is the edge/node-weight imbalance bound (paper: 1.03).
	Balance float64
	// EarlyStop terminates a KL pass after this many consecutive
	// non-improving moves (paper: 50).
	EarlyStop int
	// SkipKWay disables the final global k-way refinement (ablation).
	SkipKWay bool
	Seed     int64
	// Workers bounds intra-task scan parallelism (KL gain initialization
	// and k-way boundary scans) inside a single bisection or refinement
	// task. <= 0 means 1. Purely a throughput knob: the output is
	// identical at any value. PartitionSet overrides it per step so that
	// regions-times-workers stays near Procs.
	Workers int
}

// DefaultOptions returns the paper's configuration for k partitions.
func DefaultOptions(k int) Options {
	return Options{K: k, Balance: 1.03, EarlyStop: 50, Seed: 1}
}

// greedyGrow bisects the nodes of g currently labeled `region` at the
// given level: roughly half (by node weight) keep `region`, the rest are
// relabeled `newLabel`. Partition growth alternates between the two sides
// whenever the growing side's internal edge weight exceeds Balance times
// the other's, per paper §IV.A. Side assignments and the two gain queues
// live in the region's scratch (sc.side, sc.qa, sc.qb) and are restored
// to their idle state before returning.
func greedyGrow(g *graph.Graph, labels []int32, region, newLabel int32, opt Options, rng *rand.Rand, sc *klScratch) {
	nodes := sc.members[:0]
	for v := range labels {
		if loadLabel(&labels[v]) == region {
			nodes = append(nodes, v)
		}
	}
	sc.members = nodes[:0]
	if len(nodes) < 2 {
		return
	}
	var totalNW int64
	for _, v := range nodes {
		totalNW += g.NodeWeight(v)
	}
	half := totalNW / 2

	// side: -1 outside the region, 0 unassigned, 1 stays `region`,
	// 2 becomes `newLabel`.
	side := sc.side
	for _, v := range nodes {
		side[v] = 0
	}
	queues := [3]*pq.Dense{nil, sc.qa, sc.qb}
	var ew, nw [3]int64

	// conn returns v's connection weight into side s (region nodes only).
	conn := func(v int, s int8) int64 {
		var c int64
		for _, a := range g.Adj(v) {
			if side[a.To] == s {
				c += a.W
			}
		}
		return c
	}
	// gain of assigning v to side s: weight into s minus weight to region
	// nodes not in s (paper §IV.A's gvz).
	gain := func(v int, s int8) int64 {
		var in, out int64
		for _, a := range g.Adj(v) {
			sv := side[a.To]
			if sv < 0 {
				continue
			}
			if sv == s {
				in += a.W
			} else {
				out += a.W
			}
		}
		return in - out
	}

	unassigned := len(nodes)
	assign := func(v int, s int8) {
		side[v] = s
		ew[s] += conn(v, s)
		nw[s] += g.NodeWeight(v)
		unassigned--
		queues[1].Remove(v)
		queues[2].Remove(v)
		// Refresh horizon gains of unassigned neighbours.
		for _, a := range g.Adj(v) {
			if side[a.To] == 0 {
				for _, qs := range [2]int8{1, 2} {
					if queues[qs].Contains(a.To) {
						queues[qs].Update(a.To, gain(a.To, qs))
					}
				}
				if s == 1 || s == 2 {
					queues[s].Push(a.To, gain(a.To, s))
				}
			}
		}
	}

	seedInto := func(s int8) bool {
		// Deterministic-ish random seed: sample until an unassigned node.
		for tries := 0; tries < 4*len(nodes); tries++ {
			v := nodes[rng.Intn(len(nodes))]
			if side[v] == 0 {
				assign(v, s)
				return true
			}
		}
		for _, v := range nodes {
			if side[v] == 0 {
				assign(v, s)
				return true
			}
		}
		return false
	}

	cur := int8(1)
	for unassigned > 0 && nw[1] < half && nw[2] < half {
		v, _, ok := queues[cur].Pop()
		for ok && side[v] != 0 {
			v, _, ok = queues[cur].Pop()
		}
		if !ok {
			if !seedInto(cur) {
				break
			}
		} else {
			assign(v, cur)
		}
		other := 3 - cur
		if float64(ew[cur]) > opt.Balance*float64(ew[other]) {
			cur = other
		}
	}
	// Remaining nodes go to the side with the smaller node weight.
	rest := int8(1)
	if nw[2] < nw[1] {
		rest = 2
	}
	for _, v := range nodes {
		if side[v] == 0 {
			side[v] = rest
			nw[rest] += g.NodeWeight(v)
		}
	}
	// Guarantee both sides non-empty.
	if nw[1] == 0 || nw[2] == 0 {
		empty, full := int8(1), int8(2)
		if nw[2] == 0 {
			empty, full = 2, 1
		}
		// Move the lightest node across.
		bestV, bestW := -1, int64(0)
		for _, v := range nodes {
			if side[v] == full && (bestV == -1 || g.NodeWeight(v) < bestW) {
				bestV, bestW = v, g.NodeWeight(v)
			}
		}
		if bestV != -1 {
			side[bestV] = empty
		}
	}
	for _, v := range nodes {
		if side[v] == 2 {
			storeLabel(&labels[v], newLabel)
		}
		side[v] = -1
	}
	sc.qa.Reset()
	sc.qb.Reset()
}
