package partition

import (
	"focus/internal/graph"
	"focus/internal/pq"
)

// KWayRefine performs the global k-way Kernighan–Lin heuristic of paper
// §IV.D on one graph level: boundary nodes are queued by gain (external
// minus internal cost) and greedily moved to the neighbouring partition
// with the maximal external cost, subject to the node-weight balance
// bound (no move into Pj from Pi if w(Pj) >= Balance * w(Pi)). A pass
// stops after EarlyStop consecutive moves without improving the maximal
// partial gain sum; moves after the maximum are undone. Passes repeat
// until no improvement. The boundary/gain scan that seeds each pass runs
// on opt.Workers goroutines; the result is identical at any worker count.
// Returns the total edge-cut improvement.
func KWayRefine(g *graph.Graph, labels []int32, k int, opt Options) int64 {
	var total int64
	for {
		improved := kwayPass(g, labels, k, opt)
		total += improved
		if improved <= 0 {
			return total
		}
	}
}

func kwayPass(g *graph.Graph, labels []int32, k int, opt Options) int64 {
	balance := opt.Balance
	if balance <= 1 {
		balance = 1.03
	}
	earlyStop := opt.EarlyStop
	if earlyStop <= 0 {
		earlyStop = 50
	}
	n := g.NumNodes()

	// Balance is on partition cardinality, following the paper's literal
	// rule ("a node will not be moved to a partition Pj from a partition
	// Pi if |Pj| >= 1.03|Pi|"). Cardinality, not node weight, keeps the
	// rule equally permissive at cluster granularity (hybrid graph) and
	// at read granularity (overlap graph).
	partSize := make([]int64, k)
	for v := range labels {
		partSize[labels[v]]++
	}

	// Gain of a node = E - I over all partitions.
	gainOf := func(v int) int64 {
		var e, i int64
		for _, a := range g.Adj(v) {
			if labels[a.To] == labels[v] {
				i += a.W
			} else {
				e += a.W
			}
		}
		return e - i
	}

	// Seed the queue with every boundary node. The scan shards the node
	// range over workers; shard results are pushed in shard order, so the
	// queue is built by ascending node id at any worker count.
	q := pq.NewDense(n)
	w := opt.Workers
	if w < 1 || n < gainParMin {
		w = 1
	}
	if w == 1 {
		for v := range labels {
			isBoundary := false
			for _, a := range g.Adj(v) {
				if labels[a.To] != labels[v] {
					isBoundary = true
					break
				}
			}
			if isBoundary {
				q.Push(v, gainOf(v))
			}
		}
	} else {
		type cand struct {
			v    int
			gain int64
		}
		shards := make([][]cand, w)
		parDo(w, func(p int) {
			lo, hi := splitRange(n, w, p)
			var local []cand
			for v := lo; v < hi; v++ {
				isBoundary := false
				for _, a := range g.Adj(v) {
					if labels[a.To] != labels[v] {
						isBoundary = true
						break
					}
				}
				if isBoundary {
					local = append(local, cand{v, gainOf(v)})
				}
			}
			shards[p] = local
		})
		for _, sh := range shards {
			for _, c := range sh {
				q.Push(c.v, c.gain)
			}
		}
	}

	type move struct {
		v        int
		from, to int32
	}
	var moves []move
	var cum, smax int64
	bestPrefix := 0
	sinceImprove := 0
	extern := make([]int64, k) // scratch: external cost per partition

	for q.Len() > 0 {
		v, _, _ := q.Pop()
		from := labels[v]
		for p := range extern {
			extern[p] = 0
		}
		var internal int64
		for _, a := range g.Adj(v) {
			if labels[a.To] == from {
				internal += a.W
			} else {
				extern[labels[a.To]] += a.W
			}
		}
		// Best destination by external cost, subject to balance.
		best := int32(-1)
		var bestE int64
		for p := int32(0); p < int32(k); p++ {
			if p == from || extern[p] == 0 {
				continue
			}
			if float64(partSize[p]+1) >= balance*float64(partSize[from]) {
				continue
			}
			if best == -1 || extern[p] > bestE {
				best, bestE = p, extern[p]
			}
		}
		if best == -1 {
			continue // locked out by balance; node stays (and is locked)
		}
		delta := bestE - internal // cut improvement of this move
		labels[v] = best
		partSize[from]--
		partSize[best]++
		moves = append(moves, move{v, from, best})
		cum += delta
		if cum > smax {
			smax = cum
			bestPrefix = len(moves)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= earlyStop {
				break
			}
		}
		// Requeue unlocked boundary neighbours with refreshed gains.
		for _, a := range g.Adj(v) {
			if q.Contains(a.To) {
				q.Update(a.To, gainOf(a.To))
			}
		}
	}

	if smax <= 0 {
		bestPrefix = 0
		smax = 0
	}
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		labels[moves[i].v] = moves[i].from
	}
	return smax
}
