package partition

import (
	"focus/internal/graph"
	"focus/internal/pq"
)

// KWayRefine performs the global k-way Kernighan–Lin heuristic of paper
// §IV.D on one graph level: boundary nodes are queued by gain (external
// minus internal cost) and greedily moved to the neighbouring partition
// with the maximal external cost, subject to the node-weight balance
// bound (no move into Pj from Pi if w(Pj) >= Balance * w(Pi)). A pass
// stops after EarlyStop consecutive moves without improving the maximal
// partial gain sum; moves after the maximum are undone. Passes repeat
// until no improvement. Returns the total edge-cut improvement.
func KWayRefine(g *graph.Graph, labels []int32, k int, opt Options) int64 {
	var total int64
	for {
		improved := kwayPass(g, labels, k, opt)
		total += improved
		if improved <= 0 {
			return total
		}
	}
}

func kwayPass(g *graph.Graph, labels []int32, k int, opt Options) int64 {
	balance := opt.Balance
	if balance <= 1 {
		balance = 1.03
	}
	earlyStop := opt.EarlyStop
	if earlyStop <= 0 {
		earlyStop = 50
	}

	// Balance is on partition cardinality, following the paper's literal
	// rule ("a node will not be moved to a partition Pj from a partition
	// Pi if |Pj| >= 1.03|Pi|"). Cardinality, not node weight, keeps the
	// rule equally permissive at cluster granularity (hybrid graph) and
	// at read granularity (overlap graph).
	partSize := make([]int64, k)
	for v := range labels {
		partSize[labels[v]]++
	}

	// Gain of a node = E - I over all partitions.
	gainOf := func(v int) int64 {
		var e, i int64
		for _, a := range g.Adj(v) {
			if labels[a.To] == labels[v] {
				i += a.W
			} else {
				e += a.W
			}
		}
		return e - i
	}

	q := pq.NewMax(64)
	for v := range labels {
		isBoundary := false
		for _, a := range g.Adj(v) {
			if labels[a.To] != labels[v] {
				isBoundary = true
				break
			}
		}
		if isBoundary {
			q.Push(v, gainOf(v))
		}
	}

	type move struct {
		v        int
		from, to int32
	}
	var moves []move
	var cum, smax int64
	bestPrefix := 0
	sinceImprove := 0
	extern := make([]int64, k) // scratch: external cost per partition

	for q.Len() > 0 {
		v, _, _ := q.Pop()
		from := labels[v]
		for p := range extern {
			extern[p] = 0
		}
		var internal int64
		for _, a := range g.Adj(v) {
			if labels[a.To] == from {
				internal += a.W
			} else {
				extern[labels[a.To]] += a.W
			}
		}
		// Best destination by external cost, subject to balance.
		best := int32(-1)
		var bestE int64
		for p := int32(0); p < int32(k); p++ {
			if p == from || extern[p] == 0 {
				continue
			}
			if float64(partSize[p]+1) >= balance*float64(partSize[from]) {
				continue
			}
			if best == -1 || extern[p] > bestE {
				best, bestE = p, extern[p]
			}
		}
		if best == -1 {
			continue // locked out by balance; node stays (and is locked)
		}
		delta := bestE - internal // cut improvement of this move
		labels[v] = best
		partSize[from]--
		partSize[best]++
		moves = append(moves, move{v, from, best})
		cum += delta
		if cum > smax {
			smax = cum
			bestPrefix = len(moves)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= earlyStop {
				break
			}
		}
		// Requeue unlocked boundary neighbours with refreshed gains.
		for _, a := range g.Adj(v) {
			if q.Contains(a.To) {
				q.Update(a.To, gainOf(a.To))
			}
		}
	}

	if smax <= 0 {
		bestPrefix = 0
		smax = 0
	}
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		labels[moves[i].v] = moves[i].from
	}
	return smax
}
