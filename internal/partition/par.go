package partition

import "sync"

// parDo runs f(0..parts-1) on parts goroutines and waits for all.
func parDo(parts int, f func(part int)) {
	if parts <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// splitRange returns the half-open slice [lo,hi) of n items owned by part
// p out of parts.
func splitRange(n, parts, p int) (lo, hi int) {
	return n * p / parts, n * (p + 1) / parts
}
