package partition

import (
	"container/heap"

	"focus/internal/graph"
	"focus/internal/pq"
)

// klBisect refines the bisection {la, lb} of g with the Kernighan–Lin
// pair-swap algorithm of paper §IV.B: nodes are kept in two priority
// queues ordered by D value (external minus internal cost), candidate
// pairs are enumerated by diagonal scanning in decreasing D_a + D_b until
// the bound D_a + D_b <= gmax proves no better pair exists, the best pair
// is swapped and locked, and the move sequence is truncated at its maximal
// partial gain sum. Passes repeat until no positive improvement remains.
// Edges to nodes labeled neither la nor lb are cut regardless of the
// refinement and are ignored. Returns the total edge-cut improvement.
func klBisect(g *graph.Graph, labels []int32, la, lb int32, opt Options) int64 {
	var total int64
	for {
		improved := klPass(g, labels, la, lb, opt)
		total += improved
		if improved <= 0 {
			return total
		}
	}
}

// dValues computes D_v = E_v - I_v for every node in {la, lb}.
func dValues(g *graph.Graph, labels []int32, la, lb int32) map[int]int64 {
	d := make(map[int]int64)
	for v := range labels {
		if labels[v] != la && labels[v] != lb {
			continue
		}
		var e, i int64
		for _, a := range g.Adj(v) {
			switch labels[a.To] {
			case labels[v]:
				i += a.W
			case la, lb:
				e += a.W
			}
		}
		d[v] = e - i
	}
	return d
}

// pairHeap enumerates index pairs (i, j) in decreasing key order.
type pairItem struct {
	i, j int
	key  int64
}
type pairHeap []pairItem

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// klPass performs one KL pass and returns the realized improvement.
func klPass(g *graph.Graph, labels []int32, la, lb int32, opt Options) int64 {
	d := dValues(g, labels, la, lb)
	qa, qb := pq.NewMax(len(d)), pq.NewMax(len(d))
	for v, dv := range d {
		if labels[v] == la {
			qa.Push(v, dv)
		} else {
			qb.Push(v, dv)
		}
	}
	if qa.Len() == 0 || qb.Len() == 0 {
		return 0
	}

	type move struct{ a, b int }
	var moves []move
	var cum, smax int64
	bestPrefix := 0
	sinceImprove := 0
	earlyStop := opt.EarlyStop
	if earlyStop <= 0 {
		earlyStop = 50
	}

	// Scratch buffers for the lazy diagonal scan.
	var listA, listB []int // drained ids in descending D order

	for qa.Len() > 0 && qb.Len() > 0 {
		a, b, gain, ok := selectSwap(g, d, qa, qb, &listA, &listB)
		if !ok {
			break
		}
		// Swap and lock.
		labels[a], labels[b] = lb, la
		qa.Remove(a)
		qb.Remove(b)
		// Update D of unlocked nodes adjacent to a or b. Moving a from
		// la to lb changes, for an unlocked v in la: D_v += 2w(v,a);
		// in lb: D_v -= 2w(v,a). Symmetrically for b.
		update := func(moved int, from int32) {
			for _, arc := range g.Adj(moved) {
				v := arc.To
				if _, unlocked := d[v]; !unlocked {
					continue
				}
				if !qa.Contains(v) && !qb.Contains(v) {
					continue // locked
				}
				var delta int64
				if labels[v] == from {
					delta = 2 * arc.W
				} else if labels[v] == la || labels[v] == lb {
					delta = -2 * arc.W
				} else {
					continue
				}
				d[v] += delta
				if qa.Contains(v) {
					qa.Update(v, d[v])
				} else {
					qb.Update(v, d[v])
				}
			}
		}
		update(a, la)
		update(b, lb)

		moves = append(moves, move{a, b})
		cum += gain
		if cum > smax {
			smax = cum
			bestPrefix = len(moves)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= earlyStop {
				break
			}
		}
	}

	// Undo moves after the maximal partial sum (all of them if smax <= 0).
	if smax <= 0 {
		bestPrefix = 0
		smax = 0
	}
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		labels[moves[i].a], labels[moves[i].b] = la, lb
	}
	return smax
}

// selectSwap picks the unlocked pair (a in qa, b in qb) with the maximal
// swap gain D_a + D_b - 2w(a,b), using the diagonal scan over pairs in
// decreasing D_a + D_b; the scan stops once D_a + D_b <= gmax, which
// bounds every remaining pair's gain. Drained queue entries are pushed
// back before returning.
func selectSwap(g *graph.Graph, d map[int]int64, qa, qb *pq.Max, listA, listB *[]int) (a, b int, gain int64, ok bool) {
	*listA = (*listA)[:0]
	*listB = (*listB)[:0]
	ensure := func(q *pq.Max, list *[]int, n int) bool {
		for len(*list) <= n {
			id, _, ok := q.Pop()
			if !ok {
				return false
			}
			*list = append(*list, id)
		}
		return true
	}
	defer func() {
		// Push drained entries back (minus the selected pair, removed by
		// the caller afterwards — so push all back here; caller removes).
		for _, v := range *listA {
			qa.Push(v, d[v])
		}
		for _, v := range *listB {
			qb.Push(v, d[v])
		}
	}()

	if !ensure(qa, listA, 0) || !ensure(qb, listB, 0) {
		return 0, 0, 0, false
	}
	var h pairHeap
	seen := map[[2]int]bool{{0, 0}: true}
	heap.Push(&h, pairItem{0, 0, d[(*listA)[0]] + d[(*listB)[0]]})
	bestGain := int64(0)
	found := false
	for h.Len() > 0 {
		top := heap.Pop(&h).(pairItem)
		if found && top.key <= bestGain {
			break // no remaining pair can beat bestGain
		}
		va, vb := (*listA)[top.i], (*listB)[top.j]
		gnow := top.key - 2*g.EdgeWeight(va, vb)
		if !found || gnow > bestGain {
			found, bestGain, a, b = true, gnow, va, vb
		}
		// Expand the frontier.
		if ensure(qa, listA, top.i+1) && !seen[[2]int{top.i + 1, top.j}] {
			seen[[2]int{top.i + 1, top.j}] = true
			heap.Push(&h, pairItem{top.i + 1, top.j, d[(*listA)[top.i+1]] + d[(*listB)[top.j]]})
		}
		if ensure(qb, listB, top.j+1) && !seen[[2]int{top.i, top.j + 1}] {
			seen[[2]int{top.i, top.j + 1}] = true
			heap.Push(&h, pairItem{top.i, top.j + 1, d[(*listA)[top.i]] + d[(*listB)[top.j+1]]})
		}
	}
	return a, b, bestGain, found
}
