package partition

import (
	"focus/internal/graph"
	"focus/internal/pq"
)

// gainParMin is the node count below which gain-initialization scans run
// serially even when Options.Workers allows more.
const gainParMin = 2048

// klScratch is the dense per-region scratch state of the refinement
// machinery: D values, membership bitmaps and the two priority queues are
// flat arrays indexed by node id (allocated once per bisection region at
// the finest level's size and reused down the whole level chain),
// replacing the former map-based representation. One scratch is owned by
// exactly one region goroutine at a time — never shared.
type klScratch struct {
	workers int       // gain-scan parallelism; 1 = serial
	d       []int64   // D_v = E_v - I_v, valid where in[v]
	in      []bool    // membership of the current {la,lb} universe
	side    []int8    // greedyGrow: -1 outside region, 0 unassigned, 1, 2
	members []int     // nodes of the current universe, ascending ids
	qa, qb  *pq.Dense // gain queues (Dense: array-backed, map-free)
	listA   []int     // diagonal-scan drain buffers
	listB   []int
	pairH   []pairItem
	seen    map[[2]int]bool
	shards  [][]int // per-worker member lists for parallel gain init
}

func newKLScratch(n, workers int) *klScratch {
	if workers < 1 {
		workers = 1
	}
	sc := &klScratch{
		workers: workers,
		d:       make([]int64, n),
		in:      make([]bool, n),
		side:    make([]int8, n),
		qa:      pq.NewDense(n),
		qb:      pq.NewDense(n),
		seen:    make(map[[2]int]bool),
		shards:  make([][]int, workers),
	}
	for i := range sc.side {
		sc.side[i] = -1
	}
	return sc
}

// initD fills d/in/members for every node labeled la or lb. The scan over
// nodes (the partitioner's gain initialization) fans out over worker
// shards: shard results concatenate in shard order, so members stays
// ascending and the result is identical at any worker count.
func (sc *klScratch) initD(g *graph.Graph, labels []int32, la, lb int32) {
	n := g.NumNodes()
	sc.members = sc.members[:0]
	scan := func(lo, hi int, members []int) []int {
		for v := lo; v < hi; v++ {
			lv := loadLabel(&labels[v])
			if lv != la && lv != lb {
				continue
			}
			var e, i int64
			for _, a := range g.Adj(v) {
				switch loadLabel(&labels[a.To]) {
				case lv:
					i += a.W
				case la, lb:
					e += a.W
				}
			}
			sc.d[v] = e - i
			sc.in[v] = true
			members = append(members, v)
		}
		return members
	}
	w := sc.workers
	if w > 1 && n >= gainParMin {
		if len(sc.shards) < w {
			sc.shards = make([][]int, w)
		}
		parDo(w, func(p int) {
			lo, hi := splitRange(n, w, p)
			sc.shards[p] = scan(lo, hi, sc.shards[p][:0])
		})
		for p := 0; p < w; p++ {
			sc.members = append(sc.members, sc.shards[p]...)
		}
	} else {
		sc.members = scan(0, n, sc.members)
	}
}

// release clears the universe state installed by initD.
func (sc *klScratch) release() {
	for _, v := range sc.members {
		sc.in[v] = false
	}
	sc.members = sc.members[:0]
	sc.qa.Reset()
	sc.qb.Reset()
}

// klBisect refines the bisection {la, lb} of g with the Kernighan–Lin
// pair-swap algorithm of paper §IV.B: nodes are kept in two priority
// queues ordered by D value (external minus internal cost), candidate
// pairs are enumerated by diagonal scanning in decreasing D_a + D_b until
// the bound D_a + D_b <= gmax proves no better pair exists, the best pair
// is swapped and locked, and the move sequence is truncated at its maximal
// partial gain sum. Passes repeat until no positive improvement remains.
// Edges to nodes labeled neither la nor lb are cut regardless of the
// refinement and are ignored. Returns the total edge-cut improvement.
func klBisect(g *graph.Graph, labels []int32, la, lb int32, opt Options, sc *klScratch) int64 {
	var total int64
	for {
		improved := klPass(g, labels, la, lb, opt, sc)
		total += improved
		if improved <= 0 {
			return total
		}
	}
}

// pairItem enumerates diagonal-scan index pairs in decreasing key order
// via an allocation-free manual max-heap (no container/heap boxing).
type pairItem struct {
	i, j int
	key  int64
}

func pairPush(h *[]pairItem, it pairItem) {
	*h = append(*h, it)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if a[parent].key >= a[i].key {
			break
		}
		a[parent], a[i] = a[i], a[parent]
		i = parent
	}
}

func pairPop(h *[]pairItem) pairItem {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(a) && a[l].key > a[best].key {
			best = l
		}
		if r < len(a) && a[r].key > a[best].key {
			best = r
		}
		if best == i {
			break
		}
		a[i], a[best] = a[best], a[i]
		i = best
	}
	return top
}

// klPass performs one KL pass and returns the realized improvement.
func klPass(g *graph.Graph, labels []int32, la, lb int32, opt Options, sc *klScratch) int64 {
	sc.initD(g, labels, la, lb)
	defer sc.release()
	for _, v := range sc.members {
		if loadLabel(&labels[v]) == la {
			sc.qa.Push(v, sc.d[v])
		} else {
			sc.qb.Push(v, sc.d[v])
		}
	}
	qa, qb := sc.qa, sc.qb
	if qa.Len() == 0 || qb.Len() == 0 {
		return 0
	}

	type move struct{ a, b int }
	var moves []move
	var cum, smax int64
	bestPrefix := 0
	sinceImprove := 0
	earlyStop := opt.EarlyStop
	if earlyStop <= 0 {
		earlyStop = 50
	}

	for qa.Len() > 0 && qb.Len() > 0 {
		a, b, gain, ok := selectSwap(g, sc)
		if !ok {
			break
		}
		// Swap and lock.
		storeLabel(&labels[a], lb)
		storeLabel(&labels[b], la)
		qa.Remove(a)
		qb.Remove(b)
		// Update D of unlocked nodes adjacent to a or b. Moving a from
		// la to lb changes, for an unlocked v in la: D_v += 2w(v,a);
		// in lb: D_v -= 2w(v,a). Symmetrically for b.
		update := func(moved int, from int32) {
			for _, arc := range g.Adj(moved) {
				v := arc.To
				if !sc.in[v] {
					continue
				}
				inA := qa.Contains(v)
				if !inA && !qb.Contains(v) {
					continue // locked
				}
				var delta int64
				if loadLabel(&labels[v]) == from {
					delta = 2 * arc.W
				} else {
					delta = -2 * arc.W
				}
				sc.d[v] += delta
				if inA {
					qa.Update(v, sc.d[v])
				} else {
					qb.Update(v, sc.d[v])
				}
			}
		}
		update(a, la)
		update(b, lb)

		moves = append(moves, move{a, b})
		cum += gain
		if cum > smax {
			smax = cum
			bestPrefix = len(moves)
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= earlyStop {
				break
			}
		}
	}

	// Undo moves after the maximal partial sum (all of them if smax <= 0).
	if smax <= 0 {
		bestPrefix = 0
		smax = 0
	}
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		storeLabel(&labels[moves[i].a], la)
		storeLabel(&labels[moves[i].b], lb)
	}
	return smax
}

// selectSwap picks the unlocked pair (a in qa, b in qb) with the maximal
// swap gain D_a + D_b - 2w(a,b), using the diagonal scan over pairs in
// decreasing D_a + D_b; the scan stops once D_a + D_b <= gmax, which
// bounds every remaining pair's gain. Drained queue entries are pushed
// back before returning.
func selectSwap(g *graph.Graph, sc *klScratch) (a, b int, gain int64, ok bool) {
	qa, qb := sc.qa, sc.qb
	listA, listB := sc.listA[:0], sc.listB[:0]
	ensure := func(q *pq.Dense, list *[]int, n int) bool {
		for len(*list) <= n {
			id, _, ok := q.Pop()
			if !ok {
				return false
			}
			*list = append(*list, id)
		}
		return true
	}
	defer func() {
		// Push drained entries back (the caller removes the selected pair
		// afterwards).
		for _, v := range listA {
			qa.Push(v, sc.d[v])
		}
		for _, v := range listB {
			qb.Push(v, sc.d[v])
		}
		sc.listA, sc.listB = listA, listB
	}()

	if !ensure(qa, &listA, 0) || !ensure(qb, &listB, 0) {
		return 0, 0, 0, false
	}
	h := sc.pairH[:0]
	seen := sc.seen
	clear(seen)
	seen[[2]int{0, 0}] = true
	pairPush(&h, pairItem{0, 0, sc.d[listA[0]] + sc.d[listB[0]]})
	bestGain := int64(0)
	found := false
	for len(h) > 0 {
		top := pairPop(&h)
		if found && top.key <= bestGain {
			break // no remaining pair can beat bestGain
		}
		va, vb := listA[top.i], listB[top.j]
		gnow := top.key - 2*g.EdgeWeight(va, vb)
		if !found || gnow > bestGain {
			found, bestGain, a, b = true, gnow, va, vb
		}
		// Expand the frontier.
		if ensure(qa, &listA, top.i+1) && !seen[[2]int{top.i + 1, top.j}] {
			seen[[2]int{top.i + 1, top.j}] = true
			pairPush(&h, pairItem{top.i + 1, top.j, sc.d[listA[top.i+1]] + sc.d[listB[top.j]]})
		}
		if ensure(qb, &listB, top.j+1) && !seen[[2]int{top.i, top.j + 1}] {
			seen[[2]int{top.i, top.j + 1}] = true
			pairPush(&h, pairItem{top.i, top.j + 1, sc.d[listA[top.i]] + sc.d[listB[top.j+1]]})
		}
	}
	sc.pairH = h
	return a, b, bestGain, found
}
