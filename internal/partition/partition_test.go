package partition

import (
	"math/rand"
	"testing"

	"focus/internal/coarsen"
	"focus/internal/graph"
)

// twoCliques builds two dense clusters of size n joined by one light
// bridge edge; the optimal bisection cuts only the bridge.
func twoCliques(n int) *graph.Graph {
	b := graph.NewBuilder(2 * n)
	for c := 0; c < 2; c++ {
		base := c * n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				_ = b.AddEdge(base+i, base+j, 10)
			}
		}
	}
	_ = b.AddEdge(n-1, n, 1) // bridge
	return b.Build()
}

// ringOfClusters builds m dense clusters of size n arranged in a ring
// with light inter-cluster links.
func ringOfClusters(m, n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m * n)
	for c := 0; c < m; c++ {
		base := c * n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					_ = b.AddEdge(base+i, base+j, int64(8+rng.Intn(5)))
				}
			}
		}
		next := ((c + 1) % m) * n
		_ = b.AddEdge(base+rng.Intn(n), next+rng.Intn(n), 1)
	}
	return b.Build()
}

func singleLevelSet(g *graph.Graph) *graph.Set {
	return &graph.Set{Levels: []*graph.Graph{g}}
}

func TestGreedyGrowBalances(t *testing.T) {
	g := ringOfClusters(8, 10, 1)
	labels := make([]int32, g.NumNodes())
	rng := rand.New(rand.NewSource(2))
	greedyGrow(g, labels, 0, 1, DefaultOptions(2), rng, newKLScratch(g.NumNodes(), 1))
	w := PartWeights(g, labels, 2)
	if w[0] == 0 || w[1] == 0 {
		t.Fatalf("empty side: %v", w)
	}
	total := w[0] + w[1]
	// Each side within half +- the heaviest node (weight 1 here) plus
	// slack from the alternating rule; generous bound: 35%-65%.
	if float64(w[0]) < 0.35*float64(total) || float64(w[0]) > 0.65*float64(total) {
		t.Errorf("imbalanced grow: %v", w)
	}
}

func TestGreedyGrowTinyRegions(t *testing.T) {
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	// Region with one node: no-op.
	labels := []int32{0, 5, 5}
	greedyGrow(g, labels, 0, 1, DefaultOptions(2), rand.New(rand.NewSource(1)), newKLScratch(g.NumNodes(), 1))
	if labels[0] != 0 {
		t.Errorf("singleton region changed: %v", labels)
	}
	// Region with two nodes: must split.
	labels = []int32{0, 0, 5}
	greedyGrow(g, labels, 0, 1, DefaultOptions(2), rand.New(rand.NewSource(1)), newKLScratch(g.NumNodes(), 1))
	if labels[0] == labels[1] {
		t.Errorf("two-node region not split: %v", labels)
	}
}

func TestKLBisectFindsBridge(t *testing.T) {
	g := twoCliques(8)
	// Deliberately bad start: split across the cliques.
	labels := make([]int32, g.NumNodes())
	for v := range labels {
		if v%2 == 0 {
			labels[v] = 1
		}
	}
	before := EdgeCut(g, labels)
	improved := klBisect(g, labels, 0, 1, DefaultOptions(2), newKLScratch(g.NumNodes(), 1))
	after := EdgeCut(g, labels)
	if after != before-improved {
		t.Fatalf("improvement accounting: before=%d after=%d claimed=%d", before, after, improved)
	}
	if after > before {
		t.Fatalf("KL worsened the cut: %d -> %d", before, after)
	}
	// Optimal cut is the single bridge edge (weight 1). KL from an
	// alternating start should reach it (the cliques are dense).
	if after != 1 {
		t.Errorf("cut = %d, want 1", after)
	}
	// KL swaps preserve side sizes.
	w := PartWeights(g, labels, 2)
	if w[0] != w[1] {
		t.Errorf("sides changed size: %v", w)
	}
}

func TestKLBisectNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := ringOfClusters(6, 8, seed)
		labels := make([]int32, g.NumNodes())
		rng := rand.New(rand.NewSource(seed))
		for v := range labels {
			labels[v] = int32(rng.Intn(2))
		}
		// Both sides must be non-empty for KL.
		labels[0], labels[1] = 0, 1
		before := EdgeCut(g, labels)
		improved := klBisect(g, labels, 0, 1, DefaultOptions(2), newKLScratch(g.NumNodes(), 1))
		after := EdgeCut(g, labels)
		if improved < 0 {
			t.Fatalf("negative improvement %d", improved)
		}
		if after != before-improved {
			t.Fatalf("seed %d: accounting %d -> %d (claimed %d)", seed, before, after, improved)
		}
	}
}

func TestKLBisectIgnoresOtherRegions(t *testing.T) {
	// Nodes labeled 7 are another region; KL on {0,1} must not move them.
	g := ringOfClusters(4, 6, 3)
	labels := make([]int32, g.NumNodes())
	for v := range labels {
		switch {
		case v < 6:
			labels[v] = 0
		case v < 12:
			labels[v] = 1
		default:
			labels[v] = 7
		}
	}
	klBisect(g, labels, 0, 1, DefaultOptions(2), newKLScratch(g.NumNodes(), 1))
	for v := 12; v < g.NumNodes(); v++ {
		if labels[v] != 7 {
			t.Fatalf("foreign node %d relabeled to %d", v, labels[v])
		}
	}
}

func TestKWayRefineImproves(t *testing.T) {
	g := ringOfClusters(8, 8, 4)
	k := 4
	labels := make([]int32, g.NumNodes())
	rng := rand.New(rand.NewSource(5))
	for v := range labels {
		labels[v] = int32(rng.Intn(k))
	}
	before := EdgeCut(g, labels)
	improved := KWayRefine(g, labels, k, DefaultOptions(k))
	after := EdgeCut(g, labels)
	if after != before-improved {
		t.Fatalf("accounting: %d -> %d claimed %d", before, after, improved)
	}
	if after > before {
		t.Fatalf("k-way refinement worsened cut")
	}
	if improved == 0 {
		t.Error("k-way refinement found nothing on a random start")
	}
	if err := Validate(g, labels, k); err != nil {
		t.Fatal(err)
	}
}

func TestKWayRefineRespectsBalance(t *testing.T) {
	g := ringOfClusters(8, 8, 6)
	k := 4
	labels := make([]int32, g.NumNodes())
	for v := range labels {
		labels[v] = int32(v / (g.NumNodes() / k))
		if labels[v] >= int32(k) {
			labels[v] = int32(k - 1)
		}
	}
	KWayRefine(g, labels, k, DefaultOptions(k))
	w := PartWeights(g, labels, k)
	var mn, mx int64 = w[0], w[0]
	for _, x := range w {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	if mn == 0 {
		t.Fatalf("refinement emptied a partition: %v", w)
	}
	// The 1.03 rule is applied per move against the source partition; the
	// end state stays near-balanced when the start is balanced.
	if float64(mx) > 1.6*float64(mn) {
		t.Errorf("weights drifted: %v", w)
	}
}

func TestPartitionSetBasic(t *testing.T) {
	g := ringOfClusters(16, 12, 7)
	set := coarsen.Multilevel(g, coarsen.DefaultOptions())
	for _, k := range []int{1, 2, 4, 8} {
		opt := DefaultOptions(k)
		res, err := PartitionSet(set, opt)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i, labels := range res.LevelLabels {
			if err := Validate(set.Levels[i], labels, k); err != nil {
				t.Fatalf("k=%d level %d: %v", k, i, err)
			}
		}
		// Balance at the finest level. The graph is built from dense
		// clusters, so balance is bounded by cluster granularity; check
		// against the average rather than min/max ratio.
		w := PartWeights(g, res.Labels(), k)
		avg := float64(g.TotalNodeWeight()) / float64(k)
		for p, x := range w {
			if float64(x) > 2.0*avg || float64(x) < avg/3.0 {
				t.Errorf("k=%d: part %d weight %d far from average %.1f (%v)", k, p, x, avg, w)
			}
		}
	}
}

func TestPartitionSetCutQuality(t *testing.T) {
	// Ring of 8 clusters, k=8: a good partitioner puts one cluster per
	// part, cutting only the 8 light ring edges.
	g := ringOfClusters(8, 12, 8)
	set := coarsen.Multilevel(g, coarsen.DefaultOptions())
	res, err := PartitionSet(set, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(g, res.Labels())
	// The 8 ring edges have weight 1 each; allow some slack.
	if cut > 30 {
		t.Errorf("cut = %d, want close to 8", cut)
	}
}

func TestPartitionSetErrors(t *testing.T) {
	g := ringOfClusters(2, 4, 9)
	set := singleLevelSet(g)
	if _, err := PartitionSet(set, DefaultOptions(3)); err == nil {
		t.Error("k=3 accepted")
	}
	if _, err := PartitionSet(set, DefaultOptions(0)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionSet(set, DefaultOptions(16)); err == nil {
		t.Error("k larger than coarsest level accepted")
	}
	if _, err := PartitionSet(&graph.Set{}, DefaultOptions(2)); err == nil {
		t.Error("empty set accepted")
	}
}

func TestPartitionSetDeterministic(t *testing.T) {
	g := ringOfClusters(8, 10, 10)
	set := coarsen.Multilevel(g, coarsen.DefaultOptions())
	opt := DefaultOptions(4)
	opt.Procs = 3
	a, err := PartitionSet(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionSet(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.LevelLabels {
		for v := range a.LevelLabels[i] {
			if a.LevelLabels[i][v] != b.LevelLabels[i][v] {
				t.Fatalf("nondeterministic at level %d node %d", i, v)
			}
		}
	}
}

func TestMapLabels(t *testing.T) {
	labels := []int32{3, 1, 2}
	mapOf := []int{0, 0, 1, 2, 2}
	got := MapLabels(labels, mapOf)
	want := []int32{3, 3, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapLabels = %v, want %v", got, want)
		}
	}
}

func TestEdgeCut(t *testing.T) {
	g := twoCliques(3)
	labels := []int32{0, 0, 0, 1, 1, 1}
	if cut := EdgeCut(g, labels); cut != 1 {
		t.Errorf("cut = %d, want 1 (bridge only)", cut)
	}
	all := []int32{0, 0, 0, 0, 0, 0}
	if cut := EdgeCut(g, all); cut != 0 {
		t.Errorf("cut = %d, want 0", cut)
	}
}

func TestValidate(t *testing.T) {
	g := twoCliques(2)
	if err := Validate(g, []int32{0, 0, 1, 1}, 2); err != nil {
		t.Error(err)
	}
	if err := Validate(g, []int32{0, 0, 0, 0}, 2); err == nil {
		t.Error("empty part accepted")
	}
	if err := Validate(g, []int32{0, 0, 5, 0}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := Validate(g, []int32{0}, 2); err == nil {
		t.Error("short labels accepted")
	}
}

func TestSkipKWayAblation(t *testing.T) {
	g := ringOfClusters(8, 10, 11)
	set := coarsen.Multilevel(g, coarsen.DefaultOptions())
	opt := DefaultOptions(4)
	opt.SkipKWay = true
	res, err := PartitionSet(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res.Labels(), 4); err != nil {
		t.Fatal(err)
	}
	optFull := DefaultOptions(4)
	full, err := PartitionSet(set, optFull)
	if err != nil {
		t.Fatal(err)
	}
	if EdgeCut(g, full.Labels()) > EdgeCut(g, res.Labels()) {
		t.Errorf("k-way refinement worsened the final cut: %d vs %d",
			EdgeCut(g, full.Labels()), EdgeCut(g, res.Labels()))
	}
}
