package spmat

// StampAccum is a generation-stamped int32→int32 map with the same
// dense/hash accumulator switch as the masked product (useDense): heavy
// rows over small key spaces use a directly indexed stamp array with an
// O(1) generation clear, light rows over wide spaces use open-addressing
// hashing sized to the row so the working set stays O(row). It backs the
// assembly transitive-reduction kernel's direct-successor index — the
// Diag(v,·) diagonal of Guidi et al.'s masked product R = A·A — and is
// reusable by any row kernel that needs a cheap resettable sparse map.
//
// Like a Multiplier, a StampAccum is owned by exactly one goroutine at a
// time; buffers grow on demand and amortize across rows. Mode selection
// cannot change results: Set/Get have identical last-write-wins semantics
// on both paths.
type StampAccum struct {
	gen   uint32
	dense []stampSlot // dense path: indexed directly by key
	htab  []stampSlot // hash path: open addressing on key
	hmask uint32
	isDen bool
}

// stampSlot is one accumulator entry; the dense path ignores key.
type stampSlot struct {
	gen uint32
	key int32
	val int32
}

// Reset starts a new row: numKeys is the key space size (dense keys must
// be in [0, numKeys)), sets is an upper bound on the Set calls of the row
// (sizes the hash table at ≤50% load), and acc forces a mode for tests
// (AccAuto applies the heavy-row rule).
func (a *StampAccum) Reset(numKeys, sets int, acc Acc) {
	a.isDen = useDense(acc, sets, numKeys)
	if a.isDen {
		// Fresh slots carry generation 0, which is never live (the wrap
		// handler below skips 0), so growth needs no clearing.
		if len(a.dense) < numKeys {
			a.dense = make([]stampSlot, numKeys)
		}
	} else {
		need := 16
		for need < 2*sets {
			need <<= 1
		}
		if len(a.htab) < need {
			a.htab = make([]stampSlot, need)
		}
		a.hmask = uint32(len(a.htab) - 1)
	}
	a.gen++
	if a.gen == 0 { // uint32 wrap: stale stamps could alias, hard-clear
		for i := range a.dense {
			a.dense[i].gen = 0
		}
		for i := range a.htab {
			a.htab[i].gen = 0
		}
		a.gen = 1
	}
}

// Set binds key to val for the current row (last write wins).
func (a *StampAccum) Set(key, val int32) {
	if a.isDen {
		a.dense[key] = stampSlot{gen: a.gen, key: key, val: val}
		return
	}
	h := (uint32(key) * 0x9E3779B1) & a.hmask
	for {
		s := &a.htab[h]
		if s.gen != a.gen || s.key == key {
			*s = stampSlot{gen: a.gen, key: key, val: val}
			return
		}
		h = (h + 1) & a.hmask
	}
}

// Get returns the value bound to key in the current row.
func (a *StampAccum) Get(key int32) (int32, bool) {
	if a.isDen {
		s := &a.dense[key]
		if s.gen != a.gen {
			return 0, false
		}
		return s.val, true
	}
	h := (uint32(key) * 0x9E3779B1) & a.hmask
	for {
		s := &a.htab[h]
		if s.gen != a.gen {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		h = (h + 1) & a.hmask
	}
}
