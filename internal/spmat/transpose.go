package spmat

import (
	"fmt"

	"focus/internal/dna"
	"focus/internal/par"
)

// Transpose is the k-mer-by-read matrix Aᵀ in CSC-of-A form: per column
// (k-mer) the postings list of (read row, offset) occurrences. It is the
// right operand of the candidate product — the analogue of the seed
// index's postings table, with repeat masking applied once at build time
// (pruned columns are empty) instead of per probe.
type Transpose struct {
	K       int
	NumCols int // reads of the underlying matrix (the product's candidate space)
	// Keys is the column dictionary, shared (aliased) with the source
	// matrix: postings of k-mer Keys[j] live at Rows/Pos[ColStart[j]:ColStart[j+1]].
	Keys     []uint64
	ColStart []int32
	Rows     []int32 // read of each occurrence, ascending within a column
	Pos      []int32 // offset of each occurrence; (row, pos) ascending within a column
	// Masked counts the pruned (over-occurring) k-mer columns; masked is
	// their bitmap over column indices. Pruned columns keep their
	// dictionary slot but have no postings, so the product skips them for
	// free while probe-level callers can still distinguish "masked" from
	// "absent".
	Masked int
	masked []uint64
}

// IsMasked reports whether column j was pruned by the occurrence cap.
func (t *Transpose) IsMasked(j int) bool {
	return t.masked[j>>6]&(1<<(uint(j)&63)) != 0
}

// transposeGrain is the per-worker break-even entry count for the
// parallel transpose: below it the counting+scatter passes are too cheap
// to amortize fan-out.
const transposeGrain = 8192

// Transpose builds the pruned transpose. Columns whose total occurrence
// count exceeds maxOccur are pruned (dna.RepeatMasked semantics:
// exactly-at-threshold kept, maxOccur <= 0 disables). workers follows the
// par governor (<=0 auto). Output is identical at any worker count: the
// parallel path partitions rows into contiguous blocks, counts per block,
// and scatters with per-block cursors derived from the global prefix sum,
// so each column's postings are written in global row order.
func (m *Matrix) Transpose(maxOccur, workers int) *Transpose {
	d := len(m.Keys)
	t := &Transpose{K: m.K, NumCols: m.NumRows, Keys: m.Keys}
	t.ColStart = make([]int32, d+1)
	t.masked = make([]uint64, (d+63)/64)
	w := par.Workers(workers, m.NumEntries(), transposeGrain)
	if w > m.NumRows {
		w = m.NumRows
	}
	if w < 1 {
		w = 1
	}

	// Per-block column counts. Blocks are contiguous row ranges balanced
	// by entry count; with one worker this is a single plain pass.
	blocks := rowBlocks(m.RowStart, w)
	nb := len(blocks) - 1
	counts := make([][]int32, nb)
	par.Run(w, nb, func(_, b int) {
		cnt := make([]int32, d)
		for e := m.RowStart[blocks[b]]; e < m.RowStart[blocks[b+1]]; e++ {
			cnt[m.Cols[e]]++
		}
		counts[b] = cnt
	})

	// Global prefix sum with pruning, then rewrite the per-block counts
	// into per-block write cursors.
	run := int32(0)
	for j := 0; j < d; j++ {
		total := int32(0)
		for b := 0; b < nb; b++ {
			total += counts[b][j]
		}
		t.ColStart[j] = run
		if dna.RepeatMasked(int(total), maxOccur) {
			t.Masked++
			t.masked[j>>6] |= 1 << (uint(j) & 63)
			continue // pruned: column stays empty
		}
		for b := 0; b < nb; b++ {
			c := counts[b][j]
			counts[b][j] = run
			run += c
		}
	}
	t.ColStart[d] = run

	t.Rows = make([]int32, run)
	t.Pos = make([]int32, run)
	par.Run(w, nb, func(_, b int) {
		cur := counts[b]
		for r := blocks[b]; r < blocks[b+1]; r++ {
			r32 := int32(r)
			for e := m.RowStart[r]; e < m.RowStart[r+1]; e++ {
				j := m.Cols[e]
				if t.masked[j>>6]&(1<<(uint(j)&63)) != 0 {
					continue
				}
				p := cur[j]
				cur[j] = p + 1
				t.Rows[p] = r32
				t.Pos[p] = m.Pos[e]
			}
		}
	})
	return t
}

// TransposeFromEnts builds the pruned transpose directly from an
// occurrence list, skipping the CSR intermediate: after the stable radix
// sort the entries are already in CSC order (grouped by key; within a
// key, (row, pos) ascending because enumeration appends rows in order),
// so one linear pass emits the dictionary, the prefix starts, and the
// kept postings. Output is identical to Build(...).Transpose(...) — the
// equivalence the fuzz harness pins — at roughly half the passes, which
// is why the overlap engine's reference side uses it. ents is reordered
// in place and not retained after return; rows/k bounds as in Build.
func TransposeFromEnts(k, rows int, ents []Ent, maxOccur int) *Transpose {
	if k <= 0 || k > dna.MaxK {
		panic(fmt.Sprintf("spmat: k=%d out of range [1,%d]", k, dna.MaxK))
	}
	if rows < 0 {
		panic(fmt.Sprintf("spmat: %d rows", rows))
	}
	for i := range ents {
		if ents[i].Row < 0 || int(ents[i].Row) >= rows {
			panic(fmt.Sprintf("spmat: entry row %d outside [0,%d)", ents[i].Row, rows))
		}
	}
	t := &Transpose{K: k, NumCols: rows}
	if pk := packKeys(ents, k); pk != nil {
		// First scan: dictionary size and the kept-postings total, so
		// every output array is allocated exactly once at its final size.
		distinct, kept := 0, 0
		for i := 0; i < len(pk); {
			key := pk[i] >> 32
			j := i + 1
			for j < len(pk) && pk[j]>>32 == key {
				j++
			}
			distinct++
			if !dna.RepeatMasked(j-i, maxOccur) {
				kept += j - i
			}
			i = j
		}
		t.alloc(distinct, kept)
		for i := 0; i < len(pk); {
			key := pk[i] >> 32
			j := i + 1
			for j < len(pk) && pk[j]>>32 == key {
				j++
			}
			if t.emitColumn(key, maxOccur, j-i) {
				for e := i; e < j; e++ {
					ent := &ents[uint32(pk[e])]
					t.Rows = append(t.Rows, ent.Row)
					t.Pos = append(t.Pos, ent.Pos)
				}
			}
			i = j
		}
		putU64(pk)
		t.ColStart = append(t.ColStart, int32(len(t.Rows)))
		return t
	}

	ents = radixSortEnts(ents, k)
	distinct, kept := 0, 0
	for i := 0; i < len(ents); {
		j := i + 1
		for j < len(ents) && ents[j].Key == ents[i].Key {
			j++
		}
		distinct++
		if !dna.RepeatMasked(j-i, maxOccur) {
			kept += j - i
		}
		i = j
	}
	t.alloc(distinct, kept)
	for i := 0; i < len(ents); {
		j := i + 1
		for j < len(ents) && ents[j].Key == ents[i].Key {
			j++
		}
		if t.emitColumn(ents[i].Key, maxOccur, j-i) {
			for e := i; e < j; e++ {
				t.Rows = append(t.Rows, ents[e].Row)
				t.Pos = append(t.Pos, ents[e].Pos)
			}
		}
		i = j
	}
	t.ColStart = append(t.ColStart, int32(len(t.Rows)))
	return t
}

// alloc sizes every output array exactly.
func (t *Transpose) alloc(distinct, kept int) {
	t.Keys = make([]uint64, 0, distinct)
	t.ColStart = make([]int32, 0, distinct+1)
	t.masked = make([]uint64, (distinct+63)/64)
	t.Rows = make([]int32, 0, kept)
	t.Pos = make([]int32, 0, kept)
}

// emitColumn appends one dictionary column of n occurrences and reports
// whether the caller should copy its postings: pruned columns get the
// mask bit and stay empty.
func (t *Transpose) emitColumn(key uint64, maxOccur, n int) bool {
	col := len(t.Keys)
	t.Keys = append(t.Keys, key)
	t.ColStart = append(t.ColStart, int32(len(t.Rows)))
	if dna.RepeatMasked(n, maxOccur) {
		t.Masked++
		t.masked[col>>6] |= 1 << (uint(col) & 63)
		return false
	}
	return true
}

// TransposeFromSeqs enumerates every N-free k-mer window of each
// sequence (BuildFromSeqs semantics, one row per sequence) and builds
// the pruned transpose directly via TransposeFromEnts.
func TransposeFromSeqs(seqs [][]byte, k, maxOccur int) *Transpose {
	bound := 0
	for _, s := range seqs {
		if n := len(s) - k + 1; n > 0 {
			bound += n
		}
	}
	ents := getEnts(bound)
	for r, s := range seqs {
		r32 := int32(r)
		dna.ForEachKmer(s, k, func(km dna.Kmer, off int) {
			ents = append(ents, Ent{Key: uint64(km), Row: r32, Pos: int32(off)})
		})
	}
	t := TransposeFromEnts(k, len(seqs), ents, maxOccur)
	putEnts(ents)
	return t
}

// rowBlocks partitions rows into n contiguous blocks of roughly equal
// entry count, returning the n+1 row boundaries (some blocks may be
// empty when rows are few or skewed).
func rowBlocks(rowStart []int32, n int) []int {
	rows := len(rowStart) - 1
	total := int(rowStart[rows])
	bounds := make([]int, n+1)
	r := 0
	for b := 1; b < n; b++ {
		target := total * b / n
		for r < rows && int(rowStart[r]) < target {
			r++
		}
		bounds[b] = r
	}
	bounds[n] = rows
	return bounds
}
