package spmat

import (
	"math/rand"
	"testing"
)

// TestStampAccumModesAgree drives dense, hash and auto accumulators with
// identical randomized Set/Get traffic across many rows and requires
// identical answers from all three (the mode switch must be invisible).
func TestStampAccumModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var dense, hash, auto StampAccum
	for row := 0; row < 400; row++ {
		numKeys := 1 + rng.Intn(9000) // straddles the 4096 dense cutoff
		sets := rng.Intn(64)
		dense.Reset(numKeys, sets, AccDense)
		hash.Reset(numKeys, sets, AccHash)
		auto.Reset(numKeys, sets, AccAuto)
		ref := map[int32]int32{}
		for i := 0; i < sets; i++ {
			k := int32(rng.Intn(numKeys))
			v := int32(rng.Intn(100) - 50)
			dense.Set(k, v)
			hash.Set(k, v)
			auto.Set(k, v)
			ref[k] = v
		}
		for probe := 0; probe < 80; probe++ {
			k := int32(rng.Intn(numKeys))
			want, wantOK := ref[k]
			for name, a := range map[string]*StampAccum{"dense": &dense, "hash": &hash, "auto": &auto} {
				got, ok := a.Get(k)
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("row %d %s: Get(%d) = %d,%v want %d,%v", row, name, k, got, ok, want, wantOK)
				}
			}
		}
	}
}

// TestStampAccumRowIsolation pins the O(1) generation clear: values set in
// one row must be invisible in the next, including immediately after a
// mode flip and after the uint32 generation wrap.
func TestStampAccumRowIsolation(t *testing.T) {
	var a StampAccum
	a.Reset(16, 4, AccDense)
	a.Set(3, 77)
	a.Reset(16, 4, AccDense)
	if _, ok := a.Get(3); ok {
		t.Fatal("dense value leaked across Reset")
	}
	a.Set(5, 11)
	a.Reset(1<<20, 2, AccHash) // wide space, tiny row: hash mode
	if _, ok := a.Get(5); ok {
		t.Fatal("value leaked across a dense->hash mode flip")
	}
	a.Set(5, 12)
	a.Reset(16, 4, AccDense)
	if _, ok := a.Get(5); ok {
		t.Fatal("value leaked across a hash->dense mode flip")
	}

	// Generation wrap: force gen to the edge and step across it.
	a.gen = ^uint32(0) - 1
	a.Reset(16, 4, AccDense)
	a.Set(7, 1)
	a.Reset(16, 4, AccDense) // this Reset wraps gen to 0 -> hard clear to 1
	if a.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", a.gen)
	}
	if _, ok := a.Get(7); ok {
		t.Fatal("value survived the generation wrap hard-clear")
	}
}
