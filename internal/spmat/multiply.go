package spmat

import (
	"focus/internal/par"
)

// Cand is one surviving entry of the masked product A·Aᵀ: candidate read
// Row shares Hits sampled k-mer occurrences with the query row, with
// modal diagonal Diag (offset of Row's start in query coordinates, ties
// broken toward the smaller diagonal — the same consensus rule as the
// seed-index engine, so both produce identical alignment seeds).
type Cand struct {
	Row  int32
	Hits int32
	Diag int32
}

// Acc selects the per-row accumulator of the multiply.
type Acc uint8

const (
	// AccAuto switches per row by estimated flops (BELLA's heavy-row
	// rule): heavy rows use the generation-stamped dense accumulator,
	// light rows over wide candidate spaces use open-addressing hashing.
	AccAuto Acc = iota
	// AccDense forces the dense accumulator (tests and benchmarks).
	AccDense
	// AccHash forces the hash accumulator (tests and benchmarks).
	AccHash
)

// MultiplyOpts configures the masked product.
type MultiplyOpts struct {
	// Remap translates query-matrix column indices into transpose column
	// indices (Remap output); nil means the operands share a dictionary.
	// Query columns absent from the transpose (-1) contribute nothing.
	Remap []int32
	// SelfRef masks the generalized diagonal: for query row i, transpose
	// read SelfRef[i] never becomes a candidate (a read must not overlap
	// itself). nil disables; entries of -1 mask nothing for that row.
	SelfRef []int32
	// MinHits drops candidates with fewer accumulated hits (the
	// MinKmerHits filter applied inside the accumulator).
	MinHits int32
	// Acc selects the accumulator (AccAuto outside tests).
	Acc Acc
	// Workers follows the par governor (<=0 auto). Used by Multiply only.
	Workers int
	// Gate, when non-nil, is polled at row-block boundaries by Multiply;
	// a stopped gate abandons remaining blocks.
	Gate *par.Gate
}

// BlockRows is the fixed row-block grain of the product: results are
// staged per block of BlockRows query rows so any worker count yields
// identical per-block output (see the package determinism contract).
const BlockRows = 32

// NumBlocks returns the number of row blocks the product of a matrix
// with `rows` query rows is staged into.
func NumBlocks(rows int) int { return par.Blocks(rows, BlockRows) }

// Multiplier owns the reusable accumulator state of one multiply worker.
// Like overlap's scratch, a Multiplier is owned by exactly one goroutine
// at a time and amortizes its buffers across every block it processes.
type Multiplier struct {
	gen uint32

	// Dense accumulator: one 16-byte generation-stamped entry per
	// candidate read, accumulated in place (no slot indirection — the hot
	// product loop touches exactly one cache line per elementary product),
	// plus the first-touch list that orders emission.
	dense   []denseAcc
	touched []int32
	spill   []gVote // overflow diagonal votes of the current row, rare

	htab  []hslot // hash: open-addressing table, generation-stamped
	hmask uint32

	pool []candAcc // hash path: first-touch-ordered accumulator entries
	n    int       // live entries in pool
	out  []Cand    // per-row emission staging
}

// denseAcc is the dense path's per-candidate-read accumulator. d0/n0
// hold the first-seen diagonal and its votes; further distinct diagonals
// overflow to the shared spill list, detectable for free via hits != n0.
type denseAcc struct {
	gen  uint32
	hits int32
	d0   int32
	n0   int32
}

// gVote is one spilled diagonal vote of candidate read g.
type gVote struct{ g, d, n int32 }

// candAcc accumulates the semiring value for one (query row, candidate
// read) pair: the hit count plus diagonal votes derived from the
// (posA, posB) payload of each elementary product. The first-seen
// diagonal is held inline (d0, n0) — real overlaps concentrate their
// votes on one diagonal, so the spill slice is rarely touched and the
// hot vote path stays within the entry's own cache line.
type candAcc struct {
	row   int32
	hits  int32
	d0    int32 // first-seen diagonal
	n0    int32 // votes on d0 (0 until the first vote lands)
	spill []diagVote
}

type diagVote struct{ d, n int32 }

type hslot struct {
	gen  uint32
	row  int32
	slot int32
}

// NewMultiplier returns an empty multiplier; buffers grow on first use.
func NewMultiplier() *Multiplier { return &Multiplier{} }

// nextRow starts a new accumulation generation (O(1) clear of both the
// dense entries and the hash table), handling uint32 wraparound.
func (mu *Multiplier) nextRow() {
	mu.gen++
	if mu.gen == 0 { // wrapped: stale stamps could alias, hard-clear
		for i := range mu.dense {
			mu.dense[i].gen = 0
		}
		for i := range mu.htab {
			mu.htab[i].gen = 0
		}
		mu.gen = 1
	}
	mu.n = 0
	mu.touched = mu.touched[:0]
	mu.spill = mu.spill[:0]
}

// alloc claims the next pool slot for candidate read g, reusing the
// backing diags slice of a previous generation when available.
func (mu *Multiplier) alloc(g int32) int32 {
	if mu.n < len(mu.pool) {
		c := &mu.pool[mu.n]
		c.row = g
		c.hits = 0
		c.n0 = 0
		c.spill = c.spill[:0]
	} else {
		mu.pool = append(mu.pool, candAcc{row: g})
	}
	mu.n++
	return int32(mu.n - 1)
}

// candHash resolves candidate read g through the hash accumulator. The
// table is sized ahead of each row so it can never fill (distinct
// candidates <= row flops <= len(htab)/2).
func (mu *Multiplier) candHash(g int32) *candAcc {
	h := (uint32(g) * 0x9E3779B1) & mu.hmask
	for {
		s := &mu.htab[h]
		if s.gen != mu.gen {
			s.gen = mu.gen
			s.row = g
			s.slot = mu.alloc(g)
			return &mu.pool[s.slot]
		}
		if s.row == g {
			return &mu.pool[s.slot]
		}
		h = (h + 1) & mu.hmask
	}
}

// useDense implements the heavy-row switch: a row whose flop estimate is
// a sizable fraction of the candidate space (or a small candidate space
// outright) amortizes the dense stamp arrays; sparse rows over wide
// spaces keep the working set at O(flops) via hashing.
func useDense(acc Acc, flops, numCols int) bool {
	switch acc {
	case AccDense:
		return true
	case AccHash:
		return false
	}
	return numCols <= 4096 || flops >= numCols/8
}

// growHash ensures the hash table can hold `flops` distinct candidates at
// <= 50% load.
func (mu *Multiplier) growHash(flops int) {
	need := 16
	for need < 2*flops {
		need <<= 1
	}
	if len(mu.htab) < need {
		mu.htab = make([]hslot, need)
	}
	mu.hmask = uint32(len(mu.htab) - 1)
}

// MultiplyBlock computes rows [lo, hi) of the masked product q·tᵀ,
// invoking emit once per query row that has surviving candidates. The
// cands slice is staged in the multiplier and only valid until the next
// row: emit must copy (or encode) what it keeps. Candidates are emitted
// in first-touch order — a deterministic function of the CSR/CSC entry
// order alone — with per-candidate modal diagonals resolved as max votes,
// ties toward the smaller diagonal.
func (mu *Multiplier) MultiplyBlock(q *Matrix, t *Transpose, opts *MultiplyOpts, lo, hi int, emit func(row int32, cands []Cand)) {
	if hi > q.NumRows {
		hi = q.NumRows
	}
	if len(mu.dense) < t.NumCols {
		mu.dense = make([]denseAcc, t.NumCols)
		mu.gen = 0
	}
	qCols, qPos := q.Cols, q.Pos
	tStart, tRows, tPos := t.ColStart, t.Rows, t.Pos
	for row := lo; row < hi; row++ {
		rs, re := q.RowStart[row], q.RowStart[row+1]
		if rs == re {
			continue
		}
		// Small candidate spaces take the dense accumulator outright —
		// the stamp arrays are cheap and the flops pre-scan would cost as
		// much remap/postings traffic as the product itself. Wide spaces
		// pre-scan the row's flops (postings lengths after remap; pruned
		// and absent columns cost nothing) to pick the accumulator.
		dense := opts.Acc == AccDense || (opts.Acc == AccAuto && t.NumCols <= 4096)
		if !dense {
			flops := 0
			for e := rs; e < re; e++ {
				j := qCols[e]
				if opts.Remap != nil {
					if j = opts.Remap[j]; j < 0 {
						continue
					}
				}
				flops += int(tStart[j+1] - tStart[j])
			}
			if flops == 0 {
				continue
			}
			dense = useDense(opts.Acc, flops, t.NumCols)
			if !dense {
				mu.growHash(flops)
			}
		}
		mu.nextRow()
		self := int32(-1)
		if opts.SelfRef != nil {
			self = opts.SelfRef[row]
		}
		for e := rs; e < re; e++ {
			j := qCols[e]
			if opts.Remap != nil {
				if j = opts.Remap[j]; j < 0 {
					continue
				}
			}
			posA := qPos[e]
			for p := tStart[j]; p < tStart[j+1]; p++ {
				g := tRows[p]
				if g == self {
					continue
				}
				// Semiring payload: diag = posA - posB, the offset of the
				// candidate read's start in query coordinates.
				d := posA - tPos[p]
				if dense {
					// In-place accumulation: one cache line per product.
					a := &mu.dense[g]
					if a.gen != mu.gen {
						a.gen = mu.gen
						a.hits = 1
						a.d0 = d
						a.n0 = 1
						mu.touched = append(mu.touched, g)
						continue
					}
					a.hits++
					if d == a.d0 {
						a.n0++
						continue
					}
					mu.voteSpill(g, d)
					continue
				}
				c := mu.candHash(g)
				c.hits++
				if d == c.d0 && c.n0 > 0 {
					c.n0++
				} else if c.n0 == 0 {
					c.d0 = d
					c.n0 = 1
				} else {
					voted := false
					for i := range c.spill {
						if c.spill[i].d == d {
							c.spill[i].n++
							voted = true
							break
						}
					}
					if !voted {
						c.spill = append(c.spill, diagVote{d: d, n: 1})
					}
				}
			}
		}
		mu.out = mu.out[:0]
		if dense {
			for _, g := range mu.touched {
				a := &mu.dense[g]
				if a.hits < opts.MinHits {
					continue
				}
				best, diag := a.n0, a.d0
				if a.hits != a.n0 { // some votes spilled past d0
					for _, v := range mu.spill {
						if v.g == g && (v.n > best || (v.n == best && v.d < diag)) {
							best, diag = v.n, v.d
						}
					}
				}
				mu.out = append(mu.out, Cand{Row: g, Hits: a.hits, Diag: diag})
			}
		} else {
			for i := 0; i < mu.n; i++ {
				c := &mu.pool[i]
				if c.hits < opts.MinHits {
					continue
				}
				// Modal diagonal: max votes, ties toward the smaller d — a
				// winner independent of vote arrival order.
				best, diag := c.n0, c.d0
				for _, v := range c.spill {
					if v.n > best || (v.n == best && v.d < diag) {
						best, diag = v.n, v.d
					}
				}
				mu.out = append(mu.out, Cand{Row: c.row, Hits: c.hits, Diag: diag})
			}
		}
		if len(mu.out) > 0 {
			emit(int32(row), mu.out)
		}
	}
}

// voteSpill records a vote for a non-first diagonal of candidate read g
// on the shared per-row spill list. Real overlaps concentrate votes on
// one diagonal, so the list stays short enough for linear scans.
func (mu *Multiplier) voteSpill(g, d int32) {
	for i := range mu.spill {
		if mu.spill[i].g == g && mu.spill[i].d == d {
			mu.spill[i].n++
			return
		}
	}
	mu.spill = append(mu.spill, gVote{g: g, d: d, n: 1})
}

// Multiply computes the full masked product, row-blocked over the par
// governor: workers claim BlockRows-row blocks dynamically and each calls
// emit(block, row, cands) for its block's rows. emit may be called
// concurrently for different blocks but never concurrently for the same
// block; callers stage per-block output and assemble blocks in index
// order for deterministic results. A stopped opts.Gate abandons remaining
// blocks (partial emissions must then be discarded by the caller).
func Multiply(q *Matrix, t *Transpose, opts MultiplyOpts, emit func(block int, row int32, cands []Cand)) {
	nb := NumBlocks(q.NumRows)
	w := par.Workers(opts.Workers, nb, 1)
	mus := make([]*Multiplier, w)
	par.Run(w, nb, func(worker, b int) {
		if opts.Gate.Stopped() {
			return
		}
		mu := mus[worker]
		if mu == nil {
			mu = NewMultiplier()
			mus[worker] = mu
		}
		mu.MultiplyBlock(q, t, &opts, b*BlockRows, (b+1)*BlockRows, func(row int32, cands []Cand) {
			emit(b, row, cands)
		})
	})
}
