package spmat

import (
	"reflect"
	"testing"
)

// Reuse one Multiplier across two multiplies where the second transpose is
// wider (dense regrow resets gen) and uses the hash accumulator; compare
// against a fresh Multiplier.
func TestStaleGenReuseProbe(t *testing.T) {
	mkEnts := func(rows, perRow int) []Ent {
		var ents []Ent
		for r := 0; r < rows; r++ {
			for p := 0; p < perRow; p++ {
				// shared keys so rows collide
				ents = append(ents, Ent{Key: uint64(p % 7), Row: int32(r), Pos: int32(p)})
			}
		}
		return ents
	}
	run := func(mu *Multiplier, q *Matrix, tr *Transpose) map[int32][]Cand {
		out := map[int32][]Cand{}
		opts := &MultiplyOpts{Acc: AccHash}
		for lo := 0; lo < q.NumRows; lo += BlockRows {
			mu.MultiplyBlock(q, tr, opts, lo, lo+BlockRows, func(row int32, cands []Cand) {
				cp := make([]Cand, len(cands))
				copy(cp, cands)
				out[row] = cp
			})
		}
		return out
	}

	// First run: small matrix (rows=5000 > 4096 so hash path is realistic;
	// AccHash forces it anyway).
	e1 := mkEnts(5000, 4)
	m1 := Build(8, 5000, e1)
	t1 := m1.Transpose(0, 1)

	e2 := mkEnts(6000, 4)
	m2 := Build(8, 6000, e2)
	t2 := m2.Transpose(0, 1)

	reused := NewMultiplier()
	_ = run(reused, m1, t1) // leaves stale htab stamps; gen advanced
	got := run(reused, m2, t2)

	want := run(NewMultiplier(), m2, t2)
	if !reflect.DeepEqual(got, want) {
		nbad := 0
		for r, w := range want {
			g := got[r]
			if !reflect.DeepEqual(g, w) {
				nbad++
				if nbad <= 3 {
					t.Logf("row %d: got %v want %v", r, g, w)
				}
			}
		}
		t.Fatalf("reused multiplier output differs from fresh on %d rows", nbad)
	}
}
