package spmat

import (
	"encoding/binary"
	"fmt"
)

// Compressed candidate-pair staging: the product's per-row candidate
// lists are appended to a flat byte buffer instead of materialized as
// []Cand, keeping the intermediate product memory proportional to the
// entropy of the candidate set (delta-zigzag varints; candidate rows of
// one query cluster, so deltas are small). One buffer per row block is
// the unit handed from candidate generation to alignment verification.
//
// Layout, repeated per emitted row:
//
//	uvarint(queryRow) uvarint(n)
//	n × ( zigzag(candRow - prevCandRow) uvarint(hits) zigzag(diag) )
//
// prevCandRow starts at 0 for each row's list.

// AppendCands appends one query row's candidate list to dst and returns
// the extended buffer. Empty lists append nothing.
func AppendCands(dst []byte, row int32, cands []Cand) []byte {
	if len(cands) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(uint32(row)))
	dst = binary.AppendUvarint(dst, uint64(len(cands)))
	prev := int32(0)
	for _, c := range cands {
		dst = binary.AppendUvarint(dst, zigzag(c.Row-prev))
		prev = c.Row
		dst = binary.AppendUvarint(dst, uint64(uint32(c.Hits)))
		dst = binary.AppendUvarint(dst, zigzag(c.Diag))
	}
	return dst
}

// DecodeCands decodes a buffer of AppendCands rows, calling fn once per
// candidate with its query row. Corrupt input (truncated varints,
// overlong values, counts exceeding the bytes left) returns an error
// without large allocations or unbounded loops; fn calls made before the
// corruption was detected are not rolled back.
func DecodeCands(buf []byte, fn func(row int32, c Cand)) error {
	for len(buf) > 0 {
		row, err := decodeU32(&buf, "row")
		if err != nil {
			return err
		}
		n, err := decodeU32(&buf, "count")
		if err != nil {
			return err
		}
		// Each candidate encodes to >= 3 bytes, so a count beyond
		// len(buf)/3 can never be satisfied — reject before looping.
		if n == 0 || int(n) > len(buf)/3+1 {
			return fmt.Errorf("spmat: cands: count %d with %d bytes left", n, len(buf))
		}
		prev := int32(0)
		for i := uint32(0); i < n; i++ {
			d, err := decodeU32(&buf, "row delta")
			if err != nil {
				return err
			}
			hits, err := decodeU32(&buf, "hits")
			if err != nil {
				return err
			}
			diag, err := decodeU32(&buf, "diag")
			if err != nil {
				return err
			}
			prev += unzigzag(d)
			fn(int32(row), Cand{Row: prev, Hits: int32(hits), Diag: unzigzag(diag)})
		}
	}
	return nil
}

func zigzag(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

func unzigzag(u uint32) int32 {
	return int32(u>>1) ^ -int32(u&1)
}

// decodeU32 consumes one uvarint that must fit in 32 bits.
func decodeU32(buf *[]byte, what string) (uint32, error) {
	v, n := binary.Uvarint(*buf)
	if n <= 0 || v > 0xFFFFFFFF {
		return 0, fmt.Errorf("spmat: cands: bad %s varint", what)
	}
	*buf = (*buf)[n:]
	return uint32(v), nil
}
