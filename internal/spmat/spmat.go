// Package spmat implements the sparse k-mer-matrix overlap engine's
// linear-algebra core (ROADMAP item 4, the BELLA/diBELLA approach in
// Guidi et al.): the read-by-k-mer sparse matrix A in CSR form over
// 2-bit-packed k-mer columns (dna.Kmer encoding), a parallel transpose
// with repeat-mask column pruning, and a masked SpGEMM A·Aᵀ specialized
// for candidate generation — the multiply semiring carries (posA, posB)
// per elementary product so the modal overlap diagonal falls out of the
// accumulator instead of a second pass.
//
// Determinism contract: every output of this package — the CSR layout,
// the transpose, and the per-row candidate lists of the product — is
// byte-identical at any worker count. The product achieves this by
// staging results per fixed-grain row block (par.Blocks): the block
// structure depends only on the row count, workers race for whole
// blocks, and callers assemble blocks in index order.
package spmat

import (
	"fmt"
	"sync"

	"focus/internal/dna"
)

// entPool recycles occurrence buffers (enumeration staging and radix
// scratch) across builds: the buffers are the dominant transient
// allocation of the engine's per-subset builds, and pooling them keeps
// steady-state candidate generation out of the garbage collector.
// u64Pool does the same for the packed-key sort views.
var (
	entPool sync.Pool
	u64Pool sync.Pool
)

func getEnts(n int) []Ent {
	if p, _ := entPool.Get().(*[]Ent); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]Ent, 0, n)
}

func putEnts(s []Ent) {
	entPool.Put(&s)
}

func getU64(n int) []uint64 {
	if p, _ := u64Pool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint64, n)
}

func putU64(s []uint64) {
	u64Pool.Put(&s)
}

// Ent is one k-mer occurrence feeding the CSR build: Row is the read
// (matrix row), Key the 2-bit packed k-mer value (uint64(dna.Kmer)), and
// Pos the offset of the occurrence's first base within the read.
type Ent struct {
	Key uint64
	Row int32
	Pos int32
}

// Matrix is the read-by-k-mer sparse matrix in CSR form. A stored entry
// (r, j) with position p means k-mer Keys[j] occurs in read r at offset
// p; a k-mer occurring several times in one read is stored once per
// occurrence (the multiply counts multiplicities, matching the seed-index
// engine's per-occurrence hit accounting).
type Matrix struct {
	K       int
	NumRows int
	// Keys is the column dictionary: the distinct packed k-mers of the
	// matrix, ascending. Column j is k-mer Keys[j]; other matrices over
	// different read sets have different dictionaries — Remap joins them.
	Keys []uint64
	// RowStart[r]..RowStart[r+1] delimit row r's entries in Cols/Pos.
	// Within a row, entries are (column asc, pos asc).
	RowStart []int32
	Cols     []int32
	Pos      []int32
}

// NumEntries returns the stored-entry count.
func (m *Matrix) NumEntries() int { return len(m.Cols) }

// Build constructs the CSR matrix from the occurrence list. ents is
// reordered in place and not retained after return. rows bounds the row
// space; every Ent.Row must lie in [0, rows) and k in [1, dna.MaxK] —
// violations are programmer errors and panic.
//
// The build is two stable counting passes: an LSD radix sort on the
// packed key (ceil(2k/8) byte digits, same recipe as the overlap k-mer
// table) groups equal k-mers and yields the sorted dictionary, then a
// counting sort by row scatters entries into CSR order. Both passes are
// stable, so within a row entries end up (key asc, pos asc) — a fixed
// order the product's determinism relies on.
func Build(k, rows int, ents []Ent) *Matrix {
	if k <= 0 || k > dna.MaxK {
		panic(fmt.Sprintf("spmat: k=%d out of range [1,%d]", k, dna.MaxK))
	}
	if rows < 0 {
		panic(fmt.Sprintf("spmat: %d rows", rows))
	}
	m := &Matrix{K: k, NumRows: rows}
	// Validation doubles as the row histogram: RowStart depends only on
	// the (unsorted) occurrence list.
	counts := make([]int32, rows+1)
	for i := range ents {
		if ents[i].Row < 0 || int(ents[i].Row) >= rows {
			panic(fmt.Sprintf("spmat: entry row %d outside [0,%d)", ents[i].Row, rows))
		}
		counts[ents[i].Row+1]++
	}
	for r := 0; r < rows; r++ {
		counts[r+1] += counts[r]
	}
	m.RowStart = counts

	m.Cols = make([]int32, len(ents))
	m.Pos = make([]int32, len(ents))
	cursor := make([]int32, rows)
	copy(cursor, m.RowStart[:rows])

	// One fused pass in key order: track the running column index at run
	// boundaries and scatter each occurrence to its row's cursor. Two
	// bodies, since the packed view's indirection must stay branch-free
	// in the loop.
	if pk := packKeys(ents, k); pk != nil {
		m.Keys = make([]uint64, 0, distinctPacked(pk))
		col := int32(-1)
		prev := ^uint64(0)
		for _, w := range pk {
			if key := w >> 32; key != prev {
				m.Keys = append(m.Keys, key)
				col++
				prev = key
			}
			e := &ents[uint32(w)]
			p := cursor[e.Row]
			cursor[e.Row] = p + 1
			m.Cols[p] = col
			m.Pos[p] = e.Pos
		}
		putU64(pk)
		return m
	}
	ents = radixSortEnts(ents, k)
	distinct := 0
	for i := range ents {
		if i == 0 || ents[i].Key != ents[i-1].Key {
			distinct++
		}
	}
	m.Keys = make([]uint64, 0, distinct)
	col := int32(-1)
	for i := range ents {
		if i == 0 || ents[i].Key != ents[i-1].Key {
			m.Keys = append(m.Keys, ents[i].Key)
			col++
		}
		p := cursor[ents[i].Row]
		cursor[ents[i].Row] = p + 1
		m.Cols[p] = col
		m.Pos[p] = ents[i].Pos
	}
	return m
}

// distinctPacked counts key runs of a sorted packed view.
func distinctPacked(pk []uint64) int {
	distinct := 0
	prev := ^uint64(0)
	for _, w := range pk {
		if key := w >> 32; key != prev {
			distinct++
			prev = key
		}
	}
	return distinct
}

// packKeys returns the radix-sorted packed view of ents — Key<<32 |
// original index, ascending — when the key fits the high half (2k <= 32,
// true for every k <= 16 including the engine default). Sorting 8-byte
// packed words instead of 16-byte structs halves the scatter traffic of
// the build's dominant pass; the low index bits recover (Row, Pos) and
// make per-digit stability equivalent to whole-word ordering. Returns
// nil (caller falls back to the struct sort) for larger k. The slice
// comes from u64Pool; the caller must putU64 it.
func packKeys(ents []Ent, k int) []uint64 {
	if 2*k > 32 || len(ents) > 1<<31 {
		return nil
	}
	pk := getU64(len(ents))
	for i := range ents {
		pk[i] = ents[i].Key<<32 | uint64(i)
	}
	if len(pk) < 2 {
		return pk
	}
	passes := (2*k + 7) / 8
	buf := getU64(len(pk))
	src, dst := pk, buf
	for p := 0; p < passes; p++ {
		shift := uint(32 + 8*p)
		var count [256]int
		for i := range src {
			count[(src[i]>>shift)&0xFF]++
		}
		if count[src[0]>>shift&0xFF] == len(src) {
			continue // all entries share this digit: pass is a no-op
		}
		sum := 0
		for d := range count {
			count[d], sum = sum, count[d]+sum
		}
		for i := range src {
			d := (src[i] >> shift) & 0xFF
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	putU64(dst)
	return src
}

// BuildFromSeqs enumerates every N-free k-mer window of each sequence
// (dna.ForEachKmer semantics: windows containing non-ACGT bytes such as
// 'N' or '#' separators are skipped) and builds the matrix with one row
// per sequence. This is the full-occurrence matrix the reference side of
// the overlap product transposes.
func BuildFromSeqs(seqs [][]byte, k int) *Matrix {
	bound := 0
	for _, s := range seqs {
		if n := len(s) - k + 1; n > 0 {
			bound += n
		}
	}
	ents := getEnts(bound)
	for r, s := range seqs {
		r32 := int32(r)
		dna.ForEachKmer(s, k, func(km dna.Kmer, off int) {
			ents = append(ents, Ent{Key: uint64(km), Row: r32, Pos: int32(off)})
		})
	}
	m := Build(k, len(seqs), ents)
	putEnts(ents)
	return m
}

// radixSortEnts sorts ents in place, ascending by Key, with a stable LSD
// radix sort over the low 2k bits (8-bit digits — 256 scatter streams
// stay L1-resident, which an 11-bit variant measurably does not —
// skipping digit positions where all entries agree). The ping-pong
// scratch buffer is pooled, and an odd effective pass count ends with
// one copy back into the input so ownership never migrates to the
// scratch. Returns ents for convenience.
func radixSortEnts(ents []Ent, k int) []Ent {
	if len(ents) < 2 {
		return ents
	}
	const digitBits, digitMask = 8, 1<<8 - 1
	passes := (2*k + digitBits - 1) / digitBits
	buf := getEnts(len(ents))[:len(ents)]
	src, dst := ents, buf
	for p := 0; p < passes; p++ {
		shift := uint(digitBits * p)
		var count [digitMask + 1]int
		for i := range src {
			count[(src[i].Key>>shift)&digitMask]++
		}
		if count[src[0].Key>>shift&digitMask] == len(src) {
			continue // all entries share this digit: pass is a no-op
		}
		sum := 0
		for d := range count {
			count[d], sum = sum, count[d]+sum
		}
		for i := range src {
			d := (src[i].Key >> shift) & digitMask
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ents[0] {
		copy(ents, src)
	}
	putEnts(buf)
	return ents
}

// Remap joins two column dictionaries: out[j] is the column index of
// qKeys[j] within tKeys, or -1 when absent. Both inputs must be ascending
// (as Build produces). One linear merge per subset-pair job replaces the
// per-probe binary search of the seed-index engine.
func Remap(qKeys, tKeys []uint64) []int32 {
	out := make([]int32, len(qKeys))
	ti := 0
	for qi, key := range qKeys {
		for ti < len(tKeys) && tKeys[ti] < key {
			ti++
		}
		if ti < len(tKeys) && tKeys[ti] == key {
			out[qi] = int32(ti)
		} else {
			out[qi] = -1
		}
	}
	return out
}
