package spmat

import (
	"bytes"
	"reflect"
	"testing"

	"focus/internal/dna"
)

// FuzzCSRBuild drives the CSR builder and pruned transpose with
// arbitrary read bytes (including 'N', '#' and other non-ACGT values,
// which the k-mer enumerator must window-skip): the first byte picks k,
// the second the occurrence cap, the rest splits on '\n' into reads.
// Structural invariants are checked against a naive enumeration.
func FuzzCSRBuild(f *testing.F) {
	f.Add([]byte("\x05\x02ACGTACGTNNACGT\nTTTT#ACGT\n\nACGTNACGTACGT"))
	f.Add([]byte("\x01\x00A\nC\nG\nT"))
	f.Add([]byte("\x10\x40ACGTACGTACGTACGTACGT\nACGTACGTACGTACGTACGT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 4096 {
			return
		}
		k := int(data[0])%dna.MaxK + 1
		maxOccur := int(data[1]) % 8
		seqs := bytes.Split(data[2:], []byte{'\n'})

		m := BuildFromSeqs(seqs, k)
		want := naiveEnts(seqs, k)
		if m.NumEntries() != len(want) {
			t.Fatalf("%d entries, want %d", m.NumEntries(), len(want))
		}
		if len(m.RowStart) != len(seqs)+1 || m.RowStart[0] != 0 || int(m.RowStart[len(seqs)]) != len(want) {
			t.Fatalf("bad RowStart frame")
		}
		for r := 0; r < m.NumRows; r++ {
			if m.RowStart[r] > m.RowStart[r+1] {
				t.Fatalf("RowStart not monotone at %d", r)
			}
		}
		for j := 1; j < len(m.Keys); j++ {
			if m.Keys[j] <= m.Keys[j-1] {
				t.Fatalf("dictionary not strictly ascending")
			}
		}
		for _, c := range m.Cols {
			if c < 0 || int(c) >= len(m.Keys) {
				t.Fatalf("column %d outside dictionary", c)
			}
		}

		// Transpose invariants: postings (row, pos)-ascending per column,
		// pruning exactly per dna.RepeatMasked, entry conservation.
		ref := m.Transpose(maxOccur, 2)
		occ := map[uint64]int{}
		for _, e := range want {
			occ[e.Key]++
		}
		kept, masked := 0, 0
		for j, key := range ref.Keys {
			n := int(ref.ColStart[j+1] - ref.ColStart[j])
			if dna.RepeatMasked(occ[key], maxOccur) {
				masked++
				if !ref.IsMasked(j) || n != 0 {
					t.Fatalf("over-occurring key %x not pruned", key)
				}
				continue
			}
			if ref.IsMasked(j) || n != occ[key] {
				t.Fatalf("key %x: %d postings, want %d (masked=%v)", key, n, occ[key], ref.IsMasked(j))
			}
			kept += n
			for p := ref.ColStart[j] + 1; p < ref.ColStart[j+1]; p++ {
				if ref.Rows[p] < ref.Rows[p-1] || (ref.Rows[p] == ref.Rows[p-1] && ref.Pos[p] <= ref.Pos[p-1]) {
					t.Fatalf("key %x postings not (row,pos)-ascending", key)
				}
			}
		}
		if ref.Masked != masked || kept != len(ref.Rows) {
			t.Fatalf("pruning accounting: Masked=%d/%d kept=%d/%d", ref.Masked, masked, kept, len(ref.Rows))
		}

		// The fused direct build must be indistinguishable from the
		// CSR-then-transpose route.
		fused := TransposeFromSeqs(seqs, k, maxOccur)
		if !reflect.DeepEqual(fused.Keys, ref.Keys) || !reflect.DeepEqual(fused.ColStart, ref.ColStart) ||
			!reflect.DeepEqual(fused.Rows, ref.Rows) || !reflect.DeepEqual(fused.Pos, ref.Pos) ||
			fused.Masked != ref.Masked || !reflect.DeepEqual(fused.masked, ref.masked) {
			t.Fatalf("TransposeFromSeqs diverges from Transpose")
		}
	})
}

// FuzzCandDecode feeds arbitrary bytes to the candidate-pair decoder: it
// must never panic, loop unboundedly, or allocate proportionally to
// claimed (rather than actual) input, and every accepted buffer must
// survive a re-encode/re-decode round trip.
func FuzzCandDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendCands(nil, 3, []Cand{{Row: 7, Hits: 2, Diag: -5}}))
	f.Add(AppendCands(AppendCands(nil, 0, []Cand{{Row: 1, Hits: 9, Diag: 3}, {Row: 5, Hits: 2, Diag: -800}}), 9, []Cand{{Row: 0, Hits: 1, Diag: 0}}))
	f.Add([]byte{0x01, 0xFF, 0xFF, 0x03, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		type pair struct {
			row int32
			c   Cand
		}
		var got []pair
		if err := DecodeCands(data, func(row int32, c Cand) {
			got = append(got, pair{row, c})
		}); err != nil {
			return
		}
		// Accepted: re-encode by consecutive-row runs and decode again;
		// the candidate sequence must be preserved exactly.
		var buf []byte
		var run []Cand
		for i, p := range got {
			run = append(run, p.c)
			if i+1 == len(got) || got[i+1].row != p.row {
				buf = AppendCands(buf, p.row, run)
				run = run[:0]
			}
		}
		var again []pair
		if err := DecodeCands(buf, func(row int32, c Cand) {
			again = append(again, pair{row, c})
		}); err != nil {
			t.Fatalf("re-decode of re-encoded buffer failed: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("round trip changed the candidate sequence")
		}
	})
}
