package spmat

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"focus/internal/dna"
)

// randSeqs generates reads over ACGT with occasional N and '#' bytes so
// window-skipping paths are exercised.
func randSeqs(seed int64, n, maxLen int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([][]byte, n)
	for i := range seqs {
		l := 1 + rng.Intn(maxLen)
		s := make([]byte, l)
		for j := range s {
			switch r := rng.Intn(24); {
			case r < 20:
				s[j] = "ACGT"[r%4]
			case r < 22:
				s[j] = 'N'
			default:
				s[j] = '#'
			}
		}
		seqs[i] = s
	}
	return seqs
}

// naiveEnts enumerates the k-mer occurrences of seqs the slow way.
func naiveEnts(seqs [][]byte, k int) []Ent {
	var ents []Ent
	for r, s := range seqs {
		for off := 0; off+k <= len(s); off++ {
			if km, ok := dna.PackKmer(s[off:], k); ok {
				ents = append(ents, Ent{Key: uint64(km), Row: int32(r), Pos: int32(off)})
			}
		}
	}
	return ents
}

func TestBuildAgainstNaive(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		k := 4 + int(seed)%8
		seqs := randSeqs(seed, 10+int(seed), 80)
		want := naiveEnts(seqs, k)
		m := BuildFromSeqs(seqs, k)

		if m.NumRows != len(seqs) || m.NumEntries() != len(want) {
			t.Fatalf("seed %d: %d rows / %d entries, want %d / %d", seed, m.NumRows, m.NumEntries(), len(seqs), len(want))
		}
		for j := 1; j < len(m.Keys); j++ {
			if m.Keys[j] <= m.Keys[j-1] {
				t.Fatalf("seed %d: dictionary not strictly ascending at %d", seed, j)
			}
		}
		// Reconstruct the entry multiset from the CSR and compare; also
		// check the documented within-row (key asc, pos asc) order.
		var got []Ent
		for r := 0; r < m.NumRows; r++ {
			prevKey, prevPos := uint64(0), int32(-1)
			for e := m.RowStart[r]; e < m.RowStart[r+1]; e++ {
				key := m.Keys[m.Cols[e]]
				if e > m.RowStart[r] && (key < prevKey || (key == prevKey && m.Pos[e] <= prevPos)) {
					t.Fatalf("seed %d: row %d entries not (key asc, pos asc)", seed, r)
				}
				prevKey, prevPos = key, m.Pos[e]
				got = append(got, Ent{Key: key, Row: int32(r), Pos: m.Pos[e]})
			}
		}
		sortEnts := func(es []Ent) {
			sort.Slice(es, func(i, j int) bool {
				if es[i].Row != es[j].Row {
					return es[i].Row < es[j].Row
				}
				if es[i].Key != es[j].Key {
					return es[i].Key < es[j].Key
				}
				return es[i].Pos < es[j].Pos
			})
		}
		sortEnts(got)
		sortEnts(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: CSR entry multiset differs from naive enumeration", seed)
		}
	}
}

func TestTransposeAgainstNaive(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		k := 5
		seqs := randSeqs(seed+100, 16, 120)
		m := BuildFromSeqs(seqs, k)
		for _, maxOccur := range []int{0, 1, 3, 8} {
			ref := m.Transpose(maxOccur, 1)

			// Naive postings per key.
			posts := map[uint64][]Ent{}
			for _, e := range naiveEnts(seqs, k) {
				posts[e.Key] = append(posts[e.Key], e)
			}
			maskedWant := 0
			for j, key := range ref.Keys {
				want := posts[key]
				if dna.RepeatMasked(len(want), maxOccur) {
					maskedWant++
					if !ref.IsMasked(j) || ref.ColStart[j] != ref.ColStart[j+1] {
						t.Fatalf("seed %d cap %d: over-occurring key %x not pruned", seed, maxOccur, key)
					}
					continue
				}
				if ref.IsMasked(j) {
					t.Fatalf("seed %d cap %d: key %x with %d occurrences wrongly masked", seed, maxOccur, key, len(want))
				}
				a, b := ref.ColStart[j], ref.ColStart[j+1]
				if int(b-a) != len(want) {
					t.Fatalf("seed %d cap %d: key %x postings %d, want %d", seed, maxOccur, key, b-a, len(want))
				}
				// naiveEnts emits (row asc, pos asc) already.
				for i, e := range want {
					if ref.Rows[a+int32(i)] != e.Row || ref.Pos[a+int32(i)] != e.Pos {
						t.Fatalf("seed %d cap %d: key %x posting %d mismatch", seed, maxOccur, key, i)
					}
				}
			}
			if ref.Masked != maskedWant {
				t.Fatalf("seed %d cap %d: Masked=%d, want %d", seed, maxOccur, ref.Masked, maskedWant)
			}

			// Worker-count parity: identical output at 1/2/8.
			for _, w := range []int{2, 8} {
				alt := m.Transpose(maxOccur, w)
				if !reflect.DeepEqual(alt.ColStart, ref.ColStart) ||
					!reflect.DeepEqual(alt.Rows, ref.Rows) ||
					!reflect.DeepEqual(alt.Pos, ref.Pos) ||
					!reflect.DeepEqual(alt.masked, ref.masked) || alt.Masked != ref.Masked {
					t.Fatalf("seed %d cap %d: transpose differs at %d workers", seed, maxOccur, w)
				}
			}
		}
	}
}

// TestTransposePruneBoundary pins the occurrence-cap boundary semantics
// for the matrix engine: exactly-at-threshold columns are kept, one past
// is pruned (dna.RepeatMasked; same contract as the seed indexes, see
// overlap.TestRepeatThresholdBoundary).
func TestTransposePruneBoundary(t *testing.T) {
	const cap = 3
	// "AAAA" occurs exactly cap times, "CCCC" cap+1 times.
	seqs := [][]byte{[]byte("AAAACCCC"), []byte("AAAA"), []byte("AAAA"), []byte("CCCC"), []byte("CCCC"), []byte("CCCC")}
	m := BuildFromSeqs(seqs, 4)
	ref := m.Transpose(cap, 1)
	find := func(key uint64) int {
		for j, k := range ref.Keys {
			if k == key {
				return j
			}
		}
		t.Fatalf("key %x not in dictionary", key)
		return -1
	}
	aaaa, _ := dna.PackKmer([]byte("AAAA"), 4)
	cccc, _ := dna.PackKmer([]byte("CCCC"), 4)
	if j := find(uint64(aaaa)); ref.IsMasked(j) || ref.ColStart[j+1]-ref.ColStart[j] != cap {
		t.Fatalf("exactly-at-threshold column pruned (cap=%d)", cap)
	}
	if j := find(uint64(cccc)); !ref.IsMasked(j) || ref.ColStart[j+1] != ref.ColStart[j] {
		t.Fatalf("over-threshold column kept (cap=%d)", cap)
	}
	if ref.Masked != 1 {
		t.Fatalf("Masked=%d, want 1", ref.Masked)
	}
	if un := m.Transpose(0, 1); un.Masked != 0 {
		t.Fatalf("cap<=0 masked %d columns", un.Masked)
	}
}

func TestRemap(t *testing.T) {
	q := []uint64{1, 4, 7, 9, 20}
	r := []uint64{0, 1, 2, 7, 8, 20, 31}
	want := []int32{1, -1, 3, -1, 5}
	if got := Remap(q, r); !reflect.DeepEqual(got, want) {
		t.Fatalf("Remap=%v, want %v", got, want)
	}
	if got := Remap(nil, r); len(got) != 0 {
		t.Fatalf("Remap(nil)=%v", got)
	}
	if got := Remap(q, nil); !reflect.DeepEqual(got, []int32{-1, -1, -1, -1, -1}) {
		t.Fatalf("Remap(_, nil)=%v", got)
	}
}

// flatCand is one collected emission for order-sensitive comparisons.
type flatCand struct {
	Block int
	QRow  int32
	Cand
}

func collectMultiply(q *Matrix, ref *Transpose, opts MultiplyOpts) []flatCand {
	nb := NumBlocks(q.NumRows)
	perBlock := make([][]flatCand, nb)
	Multiply(q, ref, opts, func(block int, row int32, cands []Cand) {
		for _, c := range cands {
			perBlock[block] = append(perBlock[block], flatCand{Block: block, QRow: row, Cand: c})
		}
	})
	var out []flatCand
	for _, b := range perBlock {
		out = append(out, b...)
	}
	return out
}

// bruteCands computes the expected candidate set from raw occurrence
// lists, independent of the CSR machinery.
func bruteCands(qSeqs, rSeqs [][]byte, k, maxOccur int, minHits int32, self bool) map[[2]int32]Cand {
	refEnts := naiveEnts(rSeqs, k)
	occ := map[uint64]int{}
	for _, e := range refEnts {
		occ[e.Key]++
	}
	out := map[[2]int32]Cand{}
	for qi, qs := range qSeqs {
		type votes struct {
			hits  int32
			diags map[int32]int32
		}
		acc := map[int32]*votes{}
		for _, qe := range naiveEnts([][]byte{qs}, k) {
			if dna.RepeatMasked(occ[qe.Key], maxOccur) {
				continue
			}
			for _, re := range refEnts {
				if re.Key != qe.Key {
					continue
				}
				if self && re.Row == int32(qi) {
					continue
				}
				v := acc[re.Row]
				if v == nil {
					v = &votes{diags: map[int32]int32{}}
					acc[re.Row] = v
				}
				v.hits++
				v.diags[qe.Pos-re.Pos]++
			}
		}
		for g, v := range acc {
			if v.hits < minHits {
				continue
			}
			var diag int32
			best := int32(-1)
			// Deterministic tie-break needs ordered iteration.
			var ds []int32
			for d := range v.diags {
				ds = append(ds, d)
			}
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			for _, d := range ds {
				if v.diags[d] > best {
					best, diag = v.diags[d], d
				}
			}
			out[[2]int32{int32(qi), g}] = Cand{Row: g, Hits: v.hits, Diag: diag}
		}
	}
	return out
}

func TestMultiplyAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		k := 5
		qSeqs := randSeqs(seed+200, 24, 90)
		rSeqs := randSeqs(seed+300, 20, 90)
		for _, self := range []bool{false, true} {
			if self {
				rSeqs = qSeqs
			}
			for _, maxOccur := range []int{0, 4} {
				ref := BuildFromSeqs(rSeqs, k).Transpose(maxOccur, 1)
				qm := BuildFromSeqs(qSeqs, k)
				opts := MultiplyOpts{Remap: Remap(qm.Keys, ref.Keys), MinHits: 2, Workers: 1}
				if self {
					opts.SelfRef = make([]int32, len(qSeqs))
					for i := range opts.SelfRef {
						opts.SelfRef[i] = int32(i)
					}
				}
				got := collectMultiply(qm, ref, opts)
				want := bruteCands(qSeqs, rSeqs, k, maxOccur, 2, self)
				if len(got) != len(want) {
					t.Fatalf("seed %d self=%v cap=%d: %d candidates, want %d", seed, self, maxOccur, len(got), len(want))
				}
				for _, fc := range got {
					w, ok := want[[2]int32{fc.QRow, fc.Row}]
					if !ok || w != fc.Cand {
						t.Fatalf("seed %d self=%v cap=%d: cand (%d,%d)=%+v, want %+v", seed, self, maxOccur, fc.QRow, fc.Row, fc.Cand, w)
					}
				}
			}
		}
	}
}

// TestMultiplyDeterminism pins byte-identical per-block emissions across
// worker counts and accumulator choices.
func TestMultiplyDeterminism(t *testing.T) {
	k := 5
	qSeqs := randSeqs(77, 70, 100)
	rSeqs := randSeqs(78, 66, 100)
	ref := BuildFromSeqs(rSeqs, k).Transpose(6, 1)
	qm := BuildFromSeqs(qSeqs, k)
	base := MultiplyOpts{Remap: Remap(qm.Keys, ref.Keys), MinHits: 2, Workers: 1, Acc: AccDense}
	want := collectMultiply(qm, ref, base)
	if len(want) == 0 {
		t.Fatal("degenerate test: no candidates")
	}
	for _, acc := range []Acc{AccAuto, AccDense, AccHash} {
		for _, w := range []int{1, 2, 8} {
			opts := base
			opts.Acc = acc
			opts.Workers = w
			if got := collectMultiply(qm, ref, opts); !reflect.DeepEqual(got, want) {
				t.Fatalf("acc=%d workers=%d: emissions differ", acc, w)
			}
		}
	}
}

func TestCandsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf []byte
	type rowCands struct {
		row   int32
		cands []Cand
	}
	var want []rowCands
	for row := int32(0); row < 40; row++ {
		n := rng.Intn(5)
		cands := make([]Cand, n)
		for i := range cands {
			cands[i] = Cand{Row: rng.Int31n(1 << 20), Hits: 1 + rng.Int31n(100), Diag: rng.Int31n(400) - 200}
		}
		buf = AppendCands(buf, row, cands)
		if n > 0 {
			want = append(want, rowCands{row: row, cands: cands})
		}
	}
	var got []rowCands
	err := DecodeCands(buf, func(row int32, c Cand) {
		if len(got) == 0 || got[len(got)-1].row != row {
			got = append(got, rowCands{row: row})
		}
		last := &got[len(got)-1]
		last.cands = append(last.cands, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch: got %d rows, want %d", len(got), len(want))
	}
}

func TestCandsCorrupt(t *testing.T) {
	good := AppendCands(nil, 3, []Cand{{Row: 7, Hits: 2, Diag: -5}, {Row: 9, Hits: 3, Diag: 0}})
	for cut := 1; cut < len(good); cut++ {
		if err := DecodeCands(good[:cut], func(int32, Cand) {}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A count claiming more candidates than bytes remain must be rejected
	// before looping.
	bad := []byte{0x01, 0xFF, 0xFF, 0x03, 0x01}
	if err := DecodeCands(bad, func(int32, Cand) {}); err == nil {
		t.Fatal("oversized count accepted")
	}
	// Overlong varint (> 32 bits).
	bad2 := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if err := DecodeCands(bad2, func(int32, Cand) {}); err == nil {
		t.Fatal("overlong varint accepted")
	}
	if err := DecodeCands(nil, func(int32, Cand) {}); err != nil {
		t.Fatalf("empty buffer: %v", err)
	}
}

func BenchmarkSpmatBuild(b *testing.B) {
	seqs := randSeqs(5, 400, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromSeqs(seqs, 16)
	}
}

func BenchmarkSpmatMultiply(b *testing.B) {
	k := 16
	seqs := randSeqs(6, 400, 100)
	ref := BuildFromSeqs(seqs, k).Transpose(64, 1)
	qm := BuildFromSeqs(seqs, k)
	self := make([]int32, len(seqs))
	for i := range self {
		self[i] = int32(i)
	}
	opts := MultiplyOpts{Remap: Remap(qm.Keys, ref.Keys), SelfRef: self, MinHits: 2, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Multiply(qm, ref, opts, func(int, int32, []Cand) {})
	}
}
