package suffixarray

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteSA builds a suffix array by sorting all suffixes directly.
func bruteSA(data []byte) []int {
	sa := make([]int, len(data))
	for i := range sa {
		sa[i] = i
	}
	sort.Slice(sa, func(i, j int) bool {
		return bytes.Compare(data[sa[i]:], data[sa[j]:]) < 0
	})
	return sa
}

func checkEqual(t *testing.T, data []byte, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("data %q: len %d, want %d", data, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("data %q: sa[%d] = %d, want %d\ngot  %v\nwant %v", data, i, got[i], want[i], got, want)
		}
	}
}

func TestQsufsortSmallCases(t *testing.T) {
	cases := []string{
		"",
		"a",
		"aa",
		"ab",
		"ba",
		"aaa",
		"aba",
		"abab",
		"banana",
		"mississippi",
		"ACGTACGTACGT",
		"AAAAAAAAAA",
		"abcabxabcd",
		"zyxwvutsrqponm",
	}
	for _, s := range cases {
		data := []byte(s)
		checkEqual(t, data, New(data).sa, bruteSA(data))
	}
}

func TestQsufsortRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	alpha := []byte("ACGT")
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(400)
		data := make([]byte, n)
		for i := range data {
			data[i] = alpha[rng.Intn(4)]
		}
		checkEqual(t, data, New(data).sa, bruteSA(data))
	}
}

func TestQsufsortRandomBinary(t *testing.T) {
	// Small alphabets stress group splitting hardest.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte('a' + rng.Intn(2))
		}
		checkEqual(t, data, New(data).sa, bruteSA(data))
	}
}

func TestQsufsortQuick(t *testing.T) {
	f := func(data []byte) bool {
		got := New(append([]byte(nil), data...)).sa
		want := bruteSA(data)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSuffixArrayIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte("ACGT"[rng.Intn(4)])
	}
	a := New(data)
	seen := make([]bool, len(data))
	for i := 0; i < a.Len(); i++ {
		p := a.At(i)
		if p < 0 || p >= len(data) || seen[p] {
			t.Fatalf("position %d invalid or repeated", p)
		}
		seen[p] = true
	}
}

func TestLookup(t *testing.T) {
	data := []byte("GATTACAGATTACA")
	a := New(data)
	cases := []struct {
		pattern string
		want    []int
	}{
		{"GATTACA", []int{0, 7}},
		{"ATTA", []int{1, 8}},
		{"A", []int{1, 4, 6, 8, 11, 13}},
		{"GATTACAGATTACA", []int{0}},
		{"CCCC", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := a.Lookup([]byte(c.pattern), -1)
		sort.Ints(got)
		if len(got) != len(c.want) {
			t.Errorf("Lookup(%q) = %v, want %v", c.pattern, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Lookup(%q) = %v, want %v", c.pattern, got, c.want)
				break
			}
		}
	}
}

func TestLookupMax(t *testing.T) {
	data := bytes.Repeat([]byte("A"), 50)
	a := New(data)
	if got := a.Lookup([]byte("AA"), 5); len(got) != 5 {
		t.Errorf("max=5 returned %d hits", len(got))
	}
	if got := a.Lookup([]byte("AA"), 0); got != nil {
		t.Errorf("max=0 returned %v", got)
	}
	if got := a.Lookup([]byte("AA"), -1); len(got) != 49 {
		t.Errorf("max=-1 returned %d hits, want 49", len(got))
	}
}

// TestLookupMaxMatchesUncapped asserts the clamped scan window introduced
// for capped lookups is invisible to callers: for every max, the result
// equals the first max positions (in suffix-array order) of the uncapped
// lookup.
func TestLookupMaxMatchesUncapped(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := make([]byte, 800)
	for i := range data {
		data[i] = byte("ACGT"[rng.Intn(4)]) // small alphabet: many repeats
	}
	a := New(data)
	for trial := 0; trial < 300; trial++ {
		plen := 1 + rng.Intn(6)
		at := rng.Intn(len(data) - plen)
		pattern := data[at : at+plen]
		full := a.Lookup(pattern, -1)
		for _, max := range []int{1, 2, 3, 5, len(full), len(full) + 7} {
			got := a.Lookup(pattern, max)
			want := full
			if max < len(want) {
				want = want[:max]
			}
			if len(got) != len(want) {
				t.Fatalf("pattern %q max=%d: %d hits, want %d", pattern, max, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pattern %q max=%d hit %d: %d, want %d", pattern, max, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkLookupCapped shows the early-stop win: capped lookups of a
// high-frequency pattern no longer scan the full occurrence range.
func BenchmarkLookupCapped(b *testing.B) {
	data := bytes.Repeat([]byte("ACGT"), 25_000)
	a := New(data)
	pattern := []byte("ACGTACGT")
	for _, max := range []int{-1, 65} {
		name := "uncapped"
		if max > 0 {
			name = "max65"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := a.Lookup(pattern, max); len(got) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

func TestLookupMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte("ACGT"[rng.Intn(4)])
	}
	a := New(data)
	for trial := 0; trial < 200; trial++ {
		plen := 1 + rng.Intn(8)
		at := rng.Intn(len(data) - plen)
		pattern := data[at : at+plen]
		got := a.Lookup(pattern, -1)
		sort.Ints(got)
		var want []int
		for i := 0; i+plen <= len(data); i++ {
			if bytes.Equal(data[i:i+plen], pattern) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("pattern %q: got %v, want %v", pattern, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pattern %q: got %v, want %v", pattern, got, want)
			}
		}
	}
}

func BenchmarkQsufsort100k(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte("ACGT"[rng.Intn(4)])
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(data)
	}
}
