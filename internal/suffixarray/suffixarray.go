// Package suffixarray implements suffix-array construction with the
// Larsson–Sadakane "qsufsort" prefix-doubling algorithm (Larsson &
// Sadakane, Faster Suffix Sorting, TCS 387(3), 2007 — the paper's
// reference [14]) plus substring lookup by binary search. Focus uses it to
// index reference read subsets for k-mer seeded overlap detection
// (paper §II.B).
package suffixarray

import (
	"bytes"
	"sort"
)

// Array is a suffix array over a byte string.
type Array struct {
	data []byte
	sa   []int
}

// New builds the suffix array of data in O(n log n) expected time with the
// Larsson–Sadakane prefix-doubling algorithm. The data slice is retained
// (not copied); callers must not mutate it afterwards.
func New(data []byte) *Array {
	return &Array{data: data, sa: qsufsort(data)}
}

// Data returns the indexed text (shared, do not mutate).
func (a *Array) Data() []byte { return a.data }

// Len returns the number of suffixes (= len(data)).
func (a *Array) Len() int { return len(a.sa) }

// At returns the i-th smallest suffix's start position.
func (a *Array) At(i int) int { return a.sa[i] }

// Lookup returns the start positions of every occurrence of pattern, in
// arbitrary order (suffix-array order). It returns nil when pattern is
// empty or absent. If max >= 0, at most max positions are returned.
func (a *Array) Lookup(pattern []byte, max int) []int {
	if len(pattern) == 0 || max == 0 {
		return nil
	}
	// Binary search for the first suffix >= pattern.
	lo := sort.Search(len(a.sa), func(i int) bool {
		return bytes.Compare(a.suffix(i), pattern) >= 0
	})
	// And the first suffix that does not have pattern as a prefix. When a
	// cap is given, only the first max positions (in suffix-array order)
	// can be returned, so the scan window is clamped to max: repeat-masked
	// probes (overlap.Config.MaxOccur) never pay for the full occurrence
	// range of a high-frequency pattern.
	window := len(a.sa) - lo
	if max > 0 && window > max {
		window = max
	}
	hi := lo + sort.Search(window, func(i int) bool {
		return !bytes.HasPrefix(a.suffix(lo+i), pattern)
	})
	if hi == lo {
		return nil
	}
	n := hi - lo
	if max > 0 && n > max {
		n = max
	}
	out := make([]int, n)
	copy(out, a.sa[lo:lo+n])
	return out
}

func (a *Array) suffix(i int) []byte { return a.data[a.sa[i]:] }

// qsufsort is the Larsson–Sadakane suffix sorting algorithm: suffixes are
// first bucket-sorted by their leading byte, then repeatedly sorted within
// unsorted groups by the group rank of the suffix h positions later,
// doubling h each round. Sorted runs are folded into negative-length
// markers so each round only touches unsorted work.
func qsufsort(data []byte) []int {
	sa := sortedByFirstByte(data)
	if len(sa) < 2 {
		return sa
	}
	inv := initGroups(sa, data)

	// The array is 1-ordered after the first-byte bucket sort.
	x := &suffixSortable{sa: sa, inv: inv, h: 1}

	for sa[0] > -len(sa) { // until one all-sorted run remains
		pi := 0 // first position of the current group
		sl := 0 // negated length of adjacent sorted runs
		for pi < len(sa) {
			if s := sa[pi]; s < 0 { // sorted run: skip and accumulate
				pi -= s
				sl += s
			} else { // unsorted group: sort it by rank at offset h
				if sl != 0 {
					sa[pi+sl] = sl // fold accumulated sorted runs
					sl = 0
				}
				pk := inv[s] + 1 // one past the group's last position
				x.sa = sa[pi:pk]
				sort.Sort(x)
				x.updateGroups(pi)
				pi = pk
			}
		}
		if sl != 0 {
			sa[pi+sl] = sl
		}
		x.h *= 2
	}

	for i := range sa { // reconstruct the array from the rank table
		sa[inv[i]] = i
	}
	return sa
}

// sortedByFirstByte counting-sorts suffix start positions by first byte.
func sortedByFirstByte(data []byte) []int {
	var count [256]int
	for _, b := range data {
		count[b]++
	}
	sum := 0
	for b := range count {
		count[b], sum = sum, count[b]+sum
	}
	sa := make([]int, len(data))
	for i, b := range data {
		sa[count[b]] = i
		count[b]++
	}
	return sa
}

// initGroups assigns each suffix the index of the LAST member of its
// first-byte group (the Larsson–Sadakane group number) and marks singleton
// groups as sorted. The final (shortest) suffix is isolated at the front
// of its group so that an unstable sort cannot order "a" after "aba".
func initGroups(sa []int, data []byte) []int {
	inv := make([]int, len(data))
	prevGroup := len(sa) - 1
	groupByte := data[sa[prevGroup]]
	for i := len(sa) - 1; i >= 0; i-- {
		if b := data[sa[i]]; b < groupByte {
			if prevGroup == i+1 {
				sa[i+1] = -1
			}
			groupByte = b
			prevGroup = i
		}
		inv[sa[i]] = prevGroup
		if prevGroup == 0 {
			sa[0] = -1
		}
	}
	lastByte := data[len(data)-1]
	s := -1
	for i := range sa {
		sufIndex := sa[i]
		if sufIndex < 0 {
			continue
		}
		if data[sufIndex] == lastByte && s == -1 {
			s = i
		}
		if sufIndex == len(sa)-1 {
			sa[i], sa[s] = sa[s], sa[i]
			inv[sufIndex] = s
			sa[s] = -1 // isolated sorted group
			break
		}
	}
	return inv
}

// suffixSortable sorts a group of suffixes by the rank of the suffix h
// positions further along.
type suffixSortable struct {
	sa  []int
	inv []int
	h   int
	buf []int
}

func (x *suffixSortable) Len() int           { return len(x.sa) }
func (x *suffixSortable) Less(i, j int) bool { return x.inv[x.sa[i]+x.h] < x.inv[x.sa[j]+x.h] }
func (x *suffixSortable) Swap(i, j int)      { x.sa[i], x.sa[j] = x.sa[j], x.sa[i] }

// updateGroups splits the just-sorted group into subgroups of equal rank,
// renumbers them, and marks singletons as sorted.
func (x *suffixSortable) updateGroups(offset int) {
	bounds := x.buf[0:0]
	group := x.inv[x.sa[0]+x.h]
	for i := 1; i < len(x.sa); i++ {
		if g := x.inv[x.sa[i]+x.h]; g > group {
			bounds = append(bounds, i)
			group = g
		}
	}
	bounds = append(bounds, len(x.sa))
	x.buf = bounds

	prev := 0
	for _, b := range bounds {
		for i := prev; i < b; i++ {
			x.inv[x.sa[i]] = offset + b - 1
		}
		if b-prev == 1 {
			x.sa[prev] = -1
		}
		prev = b
	}
}
