package align

import "fmt"

// Kind classifies the geometric relationship between two overlapping
// reads A and B (paper §II.B: "the prefix of rr is the suffix of rq or
// vice versa or ... one read is completely contained in the other").
type Kind uint8

const (
	// KindNone means the pair does not form a usable overlap.
	KindNone Kind = iota
	// KindSuffixPrefix: a suffix of A aligns to a prefix of B; A precedes
	// B on the underlying sequence.
	KindSuffixPrefix
	// KindPrefixSuffix: a prefix of A aligns to a suffix of B; B precedes
	// A on the underlying sequence.
	KindPrefixSuffix
	// KindAContainsB: B aligns inside A.
	KindAContainsB
	// KindBContainsA: A aligns inside B.
	KindBContainsA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSuffixPrefix:
		return "suffix-prefix"
	case KindPrefixSuffix:
		return "prefix-suffix"
	case KindAContainsB:
		return "a-contains-b"
	case KindBContainsA:
		return "b-contains-a"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Overlap describes a scored overlap between two reads.
type Overlap struct {
	Kind     Kind
	Length   int     // alignment length in columns
	Identity float64 // fraction of matching columns
	Diag     int     // offset of B's start in A coordinates
	Score    int     // alignment score
}

// Config bounds which overlaps are accepted.
type Config struct {
	MinLength   int     // minimum alignment length (paper: 50 bp)
	MinIdentity float64 // minimum identity (paper: 0.90)
	Band        int     // NW band half-width
	Scoring     Scoring
	// Kernel selects the banded-NW implementation (KernelAuto by
	// default). Purely a speed knob: every kernel produces identical
	// overlap records.
	Kernel Kernel
}

// DefaultConfig mirrors the thresholds the paper used in §VI.A.
func DefaultConfig() Config {
	return Config{MinLength: 50, MinIdentity: 0.90, Band: 6, Scoring: DefaultScoring}
}

// OverlapOnDiagonal aligns reads a and b assuming b starts at offset diag
// in a's coordinate system (as implied by a shared k-mer seed), classifies
// the overlap geometry, and applies the config thresholds. ok is false
// when no acceptable overlap exists on that diagonal.
func OverlapOnDiagonal(a, b []byte, diag int, cfg Config) (Overlap, bool) {
	var s Scratch
	return s.OverlapOnDiagonal(a, b, diag, cfg)
}

// OverlapOnDiagonal is the buffer-reusing variant of the package-level
// function: identical results, with the banded DP running in the Scratch's
// borrowed buffers (zero steady-state allocations).
func (scr *Scratch) OverlapOnDiagonal(a, b []byte, diag int, cfg Config) (Overlap, bool) {
	// The overlapping window in a is [aLo, aHi), in b it is [bLo, bHi).
	aLo, bLo := diag, 0
	if aLo < 0 {
		bLo = -diag
		aLo = 0
	}
	aHi := len(a)
	if end := diag + len(b); end < aHi {
		aHi = end
	}
	bHi := aHi - diag
	if aHi <= aLo || bHi <= bLo {
		return Overlap{}, false
	}
	aln := scr.BandedNWKernel(a[aLo:aHi], b[bLo:bHi], cfg.Band, cfg.Scoring, cfg.Kernel)
	ov := Overlap{
		Length:   aln.Columns,
		Identity: aln.Identity(),
		Diag:     diag,
		Score:    aln.Score,
	}
	if aln.Columns < cfg.MinLength || ov.Identity < cfg.MinIdentity {
		return Overlap{}, false
	}
	switch {
	case diag >= 0 && diag+len(b) <= len(a):
		ov.Kind = KindAContainsB
	case diag <= 0 && -diag+len(a) <= len(b):
		ov.Kind = KindBContainsA
	case diag > 0:
		ov.Kind = KindSuffixPrefix
	default:
		ov.Kind = KindPrefixSuffix
	}
	return ov, true
}
