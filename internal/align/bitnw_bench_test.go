package align

import (
	"math/rand"
	"testing"
)

// benchPair is the same shape as BenchmarkBandedNW's input: 100bp reads,
// ~5 substitutions, band 6 — the overlap stage's hot-path geometry.
func benchPair(seed int64) (a, b []byte) {
	rng := rand.New(rand.NewSource(seed))
	a = randSeq(rng, 100)
	b = append([]byte(nil), a...)
	for i := 0; i < 5; i++ {
		b[rng.Intn(len(b))] = "ACGT"[rng.Intn(4)]
	}
	return a, b
}

// BenchmarkBandedNWBitParallel compares the kernels on the hot-path
// input (the acceptance criterion is bit-parallel >= 2x scalar here).
func BenchmarkBandedNWBitParallel(bb *testing.B) {
	a, b := benchPair(42)
	bb.Run("scalar", func(bb *testing.B) {
		var scr Scratch
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			_ = scr.BandedNWKernel(a, b, 6, DefaultScoring, KernelScalar)
		}
	})
	bb.Run("bitparallel", func(bb *testing.B) {
		var scr Scratch
		bb.ReportAllocs()
		for i := 0; i < bb.N; i++ {
			_ = scr.BandedNWKernel(a, b, 6, DefaultScoring, KernelBitParallel)
		}
	})
}

// BenchmarkOverlapKernel measures the full OverlapOnDiagonal path (window
// computation + kernel + classification) under both kernels.
func BenchmarkOverlapKernel(bb *testing.B) {
	rng := rand.New(rand.NewSource(99))
	a := randSeq(rng, 150)
	b := append([]byte(nil), a[60:]...)
	b = append(b, randSeq(rng, 60)...) // 90bp suffix-prefix overlap
	for i := 0; i < 4; i++ {
		b[rng.Intn(90)] = "ACGT"[rng.Intn(4)]
	}
	for _, k := range []Kernel{KernelScalar, KernelBitParallel} {
		cfg := DefaultConfig()
		cfg.Kernel = k
		bb.Run(k.String(), func(bb *testing.B) {
			var scr Scratch
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				_, _ = scr.OverlapOnDiagonal(a, b, 60, cfg)
			}
		})
	}
}
