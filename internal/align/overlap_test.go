package align

import (
	"math/rand"
	"strings"
	"testing"
)

func lenientConfig() Config {
	return Config{MinLength: 4, MinIdentity: 0.9, Band: 3, Scoring: DefaultScoring}
}

func TestOverlapSuffixPrefix(t *testing.T) {
	//      A: GGGGACGT
	//      B:     ACGTCCCC   (diag = 4)
	a := []byte("GGGGACGT")
	b := []byte("ACGTCCCC")
	ov, ok := OverlapOnDiagonal(a, b, 4, lenientConfig())
	if !ok {
		t.Fatal("overlap rejected")
	}
	if ov.Kind != KindSuffixPrefix {
		t.Errorf("kind = %v", ov.Kind)
	}
	if ov.Length != 4 || ov.Identity != 1.0 {
		t.Errorf("ov = %+v", ov)
	}
}

func TestOverlapPrefixSuffix(t *testing.T) {
	// B precedes A: diag negative.
	a := []byte("ACGTCCCC")
	b := []byte("GGGGACGT")
	ov, ok := OverlapOnDiagonal(a, b, -4, lenientConfig())
	if !ok {
		t.Fatal("overlap rejected")
	}
	if ov.Kind != KindPrefixSuffix {
		t.Errorf("kind = %v", ov.Kind)
	}
	if ov.Length != 4 {
		t.Errorf("length = %d", ov.Length)
	}
}

func TestOverlapContainment(t *testing.T) {
	a := []byte("GGGGACGTACGTCCCC")
	b := []byte("ACGTACGT")
	ov, ok := OverlapOnDiagonal(a, b, 4, lenientConfig())
	if !ok {
		t.Fatal("overlap rejected")
	}
	if ov.Kind != KindAContainsB {
		t.Errorf("kind = %v", ov.Kind)
	}
	ov, ok = OverlapOnDiagonal(b, a, -4, lenientConfig())
	if !ok {
		t.Fatal("reverse containment rejected")
	}
	if ov.Kind != KindBContainsA {
		t.Errorf("kind = %v", ov.Kind)
	}
}

func TestOverlapEqualReads(t *testing.T) {
	a := []byte("ACGTACGTAC")
	ov, ok := OverlapOnDiagonal(a, a, 0, lenientConfig())
	if !ok {
		t.Fatal("self overlap rejected")
	}
	if ov.Kind != KindAContainsB {
		t.Errorf("kind = %v, want containment", ov.Kind)
	}
	if ov.Identity != 1.0 || ov.Length != len(a) {
		t.Errorf("ov = %+v", ov)
	}
}

func TestOverlapRejectsShort(t *testing.T) {
	a := []byte("GGGGACGT")
	b := []byte("ACGTCCCC")
	cfg := lenientConfig()
	cfg.MinLength = 5
	if _, ok := OverlapOnDiagonal(a, b, 4, cfg); ok {
		t.Error("4-column overlap accepted with MinLength 5")
	}
}

func TestOverlapRejectsLowIdentity(t *testing.T) {
	a := []byte("AAAAAAAATTTT")
	b := []byte("TTTTGGGGGGGG") // overlap TTTT... only 4/12 window
	cfg := lenientConfig()
	cfg.MinIdentity = 0.95
	// diag 8: windows a[8:12] vs b[0:4] = TTTT vs TTTT identity 1, len 4.
	ov, ok := OverlapOnDiagonal(a, b, 8, cfg)
	if !ok || ov.Identity != 1 {
		t.Fatalf("clean overlap rejected: %+v %v", ov, ok)
	}
	// diag 4: a[4:12] vs b[0:8] = AAAATTTT vs TTTTGGGG, low identity.
	if _, ok := OverlapOnDiagonal(a, b, 4, cfg); ok {
		t.Error("low-identity overlap accepted")
	}
}

func TestOverlapNoWindow(t *testing.T) {
	a := []byte("ACGT")
	b := []byte("ACGT")
	if _, ok := OverlapOnDiagonal(a, b, 10, lenientConfig()); ok {
		t.Error("disjoint diagonal accepted")
	}
	if _, ok := OverlapOnDiagonal(a, b, -10, lenientConfig()); ok {
		t.Error("disjoint negative diagonal accepted")
	}
}

func TestOverlapToleratesErrors(t *testing.T) {
	// 60-base overlap with 3 substitutions: identity 0.95, above 0.90.
	rng := rand.New(rand.NewSource(35))
	left := randSeq(rng, 40)
	shared := randSeq(rng, 60)
	right := randSeq(rng, 40)
	a := append(append([]byte{}, left...), shared...)
	mutated := append([]byte(nil), shared...)
	for i := 0; i < 3; i++ {
		at := rng.Intn(len(mutated))
		mutated[at] = "ACGT"[rng.Intn(4)]
	}
	b := append(append([]byte{}, mutated...), right...)
	cfg := DefaultConfig()
	ov, ok := OverlapOnDiagonal(a, b, 40, cfg)
	if !ok {
		t.Fatal("noisy overlap rejected")
	}
	if ov.Kind != KindSuffixPrefix {
		t.Errorf("kind = %v", ov.Kind)
	}
	if ov.Identity < 0.90 {
		t.Errorf("identity = %v", ov.Identity)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone:         "none",
		KindSuffixPrefix: "suffix-prefix",
		KindPrefixSuffix: "prefix-suffix",
		KindAContainsB:   "a-contains-b",
		KindBContainsA:   "b-contains-a",
		Kind(99):         "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MinLength != 50 {
		t.Errorf("MinLength = %d, want 50 (paper §VI.A)", cfg.MinLength)
	}
	if cfg.MinIdentity != 0.90 {
		t.Errorf("MinIdentity = %v, want 0.90 (paper §VI.A)", cfg.MinIdentity)
	}
}

func TestOverlapWindowsRespectReadBounds(t *testing.T) {
	// Fuzz diag over the full range; must never panic and must classify
	// consistently with the geometry.
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 500; trial++ {
		a := randSeq(rng, 10+rng.Intn(50))
		b := randSeq(rng, 10+rng.Intn(50))
		diag := rng.Intn(140) - 70
		cfg := Config{MinLength: 1, MinIdentity: 0, Band: 3, Scoring: DefaultScoring}
		ov, ok := OverlapOnDiagonal(a, b, diag, cfg)
		if !ok {
			continue
		}
		switch ov.Kind {
		case KindAContainsB:
			if !(diag >= 0 && diag+len(b) <= len(a)) {
				t.Fatalf("bad containment: diag=%d lens %d/%d", diag, len(a), len(b))
			}
		case KindBContainsA:
			if !(diag <= 0 && -diag+len(a) <= len(b)) {
				t.Fatalf("bad reverse containment: diag=%d lens %d/%d", diag, len(a), len(b))
			}
		case KindSuffixPrefix:
			if diag <= 0 {
				t.Fatalf("suffix-prefix with diag %d", diag)
			}
		case KindPrefixSuffix:
			if diag >= 0 {
				t.Fatalf("prefix-suffix with diag %d", diag)
			}
		}
	}
}

func TestOverlapLongSharedRegion(t *testing.T) {
	shared := strings.Repeat("ACGTGCTA", 10)
	a := []byte("GG" + shared)
	b := []byte(shared + "TT")
	ov, ok := OverlapOnDiagonal(a, b, 2, DefaultConfig())
	if !ok {
		t.Fatal("rejected")
	}
	if ov.Length != 80 || ov.Identity != 1 {
		t.Errorf("ov = %+v", ov)
	}
}
