package align

import (
	"math/rand"
	"testing"
)

func TestNWIdentical(t *testing.T) {
	a := []byte("ACGTACGT")
	aln := NW(a, a, DefaultScoring)
	if aln.Score != 8 || aln.Matches != 8 || aln.Columns != 8 {
		t.Errorf("aln = %+v", aln)
	}
	if aln.Identity() != 1.0 {
		t.Errorf("identity = %v", aln.Identity())
	}
}

func TestNWSingleMismatch(t *testing.T) {
	aln := NW([]byte("ACGT"), []byte("AGGT"), DefaultScoring)
	if aln.Matches != 3 || aln.Columns != 4 {
		t.Errorf("aln = %+v", aln)
	}
	if aln.Score != 3*1-1 {
		t.Errorf("score = %d", aln.Score)
	}
}

func TestNWSingleInsertion(t *testing.T) {
	aln := NW([]byte("ACGT"), []byte("ACGGT"), DefaultScoring)
	if aln.Matches != 4 || aln.Columns != 5 {
		t.Errorf("aln = %+v", aln)
	}
	if aln.Score != 4*1-2 {
		t.Errorf("score = %d", aln.Score)
	}
}

func TestNWEmpty(t *testing.T) {
	aln := NW(nil, []byte("ACG"), DefaultScoring)
	if aln.Score != -6 || aln.Columns != 3 || aln.Matches != 0 {
		t.Errorf("aln = %+v", aln)
	}
	aln = NW(nil, nil, DefaultScoring)
	if aln.Score != 0 || aln.Columns != 0 {
		t.Errorf("aln = %+v", aln)
	}
}

func TestNWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 100; trial++ {
		a := randSeq(rng, 1+rng.Intn(40))
		b := randSeq(rng, 1+rng.Intn(40))
		x := NW(a, b, DefaultScoring)
		y := NW(b, a, DefaultScoring)
		if x.Score != y.Score {
			t.Fatalf("score not symmetric: %d vs %d for %q/%q", x.Score, y.Score, a, b)
		}
	}
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// A generous band must reproduce the unbanded optimum.
func TestBandedMatchesUnbandedForWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		a := randSeq(rng, 1+rng.Intn(30))
		b := randSeq(rng, 1+rng.Intn(30))
		wide := BandedNW(a, b, len(a)+len(b), DefaultScoring)
		ref := NW(a, b, DefaultScoring)
		if wide.Score != ref.Score {
			t.Fatalf("wide band score %d != unbanded %d for %q/%q", wide.Score, ref.Score, a, b)
		}
	}
}

// A banded score can never exceed the unbanded optimum, and for similar
// sequences a small band is enough to reach it.
func TestBandedBoundsAndTightBand(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		a := randSeq(rng, 60)
		// b = a with a couple of substitutions: on-diagonal alignment.
		b := append([]byte(nil), a...)
		for k := 0; k < 2; k++ {
			b[rng.Intn(len(b))] = "ACGT"[rng.Intn(4)]
		}
		banded := BandedNW(a, b, 2, DefaultScoring)
		ref := NW(a, b, DefaultScoring)
		if banded.Score > ref.Score {
			t.Fatalf("banded score %d exceeds optimum %d", banded.Score, ref.Score)
		}
		if banded.Score != ref.Score {
			t.Fatalf("band 2 missed the optimum for near-identical seqs: %d vs %d", banded.Score, ref.Score)
		}
	}
}

func TestBandWidensForLengthDifference(t *testing.T) {
	// len difference 10 > band 2: band must widen so the corner is
	// reachable; result must not panic and must be a valid alignment.
	a := randSeq(rand.New(rand.NewSource(33)), 50)
	b := a[:40]
	aln := BandedNW(a, b, 2, DefaultScoring)
	if aln.Columns < 50 {
		t.Errorf("columns = %d, want >= 50", aln.Columns)
	}
	if aln.Matches != 40 {
		t.Errorf("matches = %d, want 40", aln.Matches)
	}
}

func TestIdentityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 200; trial++ {
		a := randSeq(rng, rng.Intn(30))
		b := randSeq(rng, rng.Intn(30))
		aln := BandedNW(a, b, 4, DefaultScoring)
		id := aln.Identity()
		if id < 0 || id > 1 {
			t.Fatalf("identity %v out of range", id)
		}
		if aln.Matches > aln.Columns {
			t.Fatalf("matches %d > columns %d", aln.Matches, aln.Columns)
		}
		minCols := len(a)
		if len(b) > minCols {
			minCols = len(b)
		}
		if aln.Columns < minCols || aln.Columns > len(a)+len(b) {
			t.Fatalf("columns %d outside [%d,%d]", aln.Columns, minCols, len(a)+len(b))
		}
	}
}
