package align

import (
	"math/rand"
	"testing"
)

// alphabets used by the randomized suites: plain bases, bases with the
// ambiguity byte, and bases with the '#' subset-text separator that the
// 2-bit wire packing escapes (the kernel must treat both as ordinary
// bytes that only match themselves).
var bpAlphabets = [][]byte{
	[]byte("ACGT"),
	[]byte("ACGTN"),
	[]byte("ACGTN#"),
}

func randSeqFrom(rng *rand.Rand, alpha []byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = alpha[rng.Intn(len(alpha))]
	}
	return s
}

// mutate applies roughly rate substitutions/insertions/deletions to s, so
// pairs look like real overlap windows (mostly matching, few gaps).
func mutate(rng *rand.Rand, alpha, s []byte, rate float64) []byte {
	out := make([]byte, 0, len(s)+8)
	for _, ch := range s {
		switch {
		case rng.Float64() < rate/3: // deletion
		case rng.Float64() < rate/3: // insertion
			out = append(out, ch, alpha[rng.Intn(len(alpha))])
		case rng.Float64() < rate/3: // substitution
			out = append(out, alpha[rng.Intn(len(alpha))])
		default:
			out = append(out, ch)
		}
	}
	return out
}

func checkPair(t *testing.T, scr, ref *Scratch, a, b []byte, band int, sc Scoring) {
	t.Helper()
	want := ref.bandedNWScalarFull(a, b, band, sc)
	got := scr.BandedNWKernel(a, b, band, sc, KernelBitParallel)
	if got != want {
		t.Fatalf("bit-parallel diverged (band=%d scoring=%+v len=%d/%d):\n got %+v\nwant %+v\n a=%q\n b=%q",
			band, sc, len(a), len(b), got, want, a, b)
	}
}

// bandedNWScalarFull is the scalar kernel behind the public dispatch
// (band widening + empty-input handling), bypassing kernel selection.
func (scr *Scratch) bandedNWScalarFull(a, b []byte, band int, sc Scoring) Alignment {
	return scr.BandedNWKernel(a, b, band, sc, KernelScalar)
}

// TestBitParallelMatchesScalarRandom: the bit-parallel kernel reproduces
// the scalar Alignment exactly — score, matches, columns — on random
// base/N/'#' sequences across lengths 1..300, the full eligible band
// range, related and unrelated pairs, and both argument orders.
func TestBitParallelMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scr, ref Scratch
	for trial := 0; trial < 4000; trial++ {
		alpha := bpAlphabets[rng.Intn(len(bpAlphabets))]
		n := 1 + rng.Intn(300)
		a := randSeqFrom(rng, alpha, n)
		var b []byte
		if rng.Intn(2) == 0 {
			b = mutate(rng, alpha, a, []float64{0.02, 0.1, 0.3}[rng.Intn(3)])
			if len(b) == 0 {
				b = randSeqFrom(rng, alpha, 1+rng.Intn(8))
			}
		} else {
			b = randSeqFrom(rng, alpha, 1+rng.Intn(300))
		}
		band := rng.Intn(bpMaxBand + 2) // 0..8: includes one ineligible value
		checkPair(t, &scr, &ref, a, b, band, DefaultScoring)
		checkPair(t, &scr, &ref, b, a, band, DefaultScoring)
	}
}

// TestBitParallelMatchesScalarScorings sweeps the eligible scoring space
// (and near-gate corners) at several bands.
func TestBitParallelMatchesScalarScorings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scr, ref Scratch
	scorings := []Scoring{
		{1, -1, -2}, // default
		{1, -2, -1}, // gap cheaper than mismatch: gap-heavy tracebacks
		{2, -3, -4}, // larger magnitudes
		{0, -1, -1}, // zero match reward
		{1, 0, -1},  // free mismatch
		{2, -8, -3}, // mismatch at the magnitude limit
		{3, -2, -1}, // high match reward
		{8, -8, -8}, // all limits (eligible only at band 0)
		{1, -1, -8}, // gap at the magnitude limit
		{4, -4, -2}, // near the spread gate at small bands
	}
	for _, sc := range scorings {
		for band := 0; band <= bpMaxBand; band++ {
			if !bpEligible(band, sc) {
				continue
			}
			for trial := 0; trial < 120; trial++ {
				alpha := bpAlphabets[trial%len(bpAlphabets)]
				a := randSeqFrom(rng, alpha, 1+rng.Intn(120))
				b := mutate(rng, alpha, a, 0.15)
				if len(b) == 0 {
					b = []byte{alpha[0]}
				}
				checkPair(t, &scr, &ref, a, b, band, sc)
			}
		}
	}
}

// TestBitParallelBandEdges exercises the geometric corner cases: length
// differences exactly at/over the band, single-character inputs, and
// sequences shorter than the band.
func TestBitParallelBandEdges(t *testing.T) {
	var scr, ref Scratch
	rng := rand.New(rand.NewSource(3))
	for band := 0; band <= bpMaxBand; band++ {
		for _, nm := range [][2]int{
			{1, 1}, {1, 2}, {2, 1}, {1, band + 1}, {band + 1, 1},
			{band, band}, {band + 1, band + 1},
			{10, 10 + band}, {10 + band, 10},
			{10, 11 + band}, {11 + band, 10}, // widened band: scalar fallback path
			{64, 64}, {65, 64}, {63, 64 + band}, {127, 128}, {128, 128}, {129, 128},
		} {
			n, m := nm[0], nm[1]
			if n < 1 || m < 1 {
				continue
			}
			for trial := 0; trial < 10; trial++ {
				a := randSeqFrom(rng, bpAlphabets[2], n)
				b := randSeqFrom(rng, bpAlphabets[2], m)
				checkPair(t, &scr, &ref, a, b, band, DefaultScoring)
			}
		}
	}
}

// TestBitParallelOverlapOnDiagonal: full overlap classification is
// identical across kernels, including accept/reject decisions near the
// thresholds.
func TestBitParallelOverlapOnDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var scalar, bitp Scratch
	cfgS := DefaultConfig()
	cfgS.Kernel = KernelScalar
	cfgB := DefaultConfig()
	cfgB.Kernel = KernelBitParallel
	// Loosen thresholds so random unrelated pairs also produce accepted
	// records with interesting kinds.
	for _, minLen := range []int{5, 50} {
		cfgS.MinLength, cfgB.MinLength = minLen, minLen
		for trial := 0; trial < 2000; trial++ {
			alpha := bpAlphabets[rng.Intn(len(bpAlphabets))]
			a := randSeqFrom(rng, alpha, 20+rng.Intn(200))
			b := mutate(rng, alpha, a, []float64{0.02, 0.08, 0.25}[rng.Intn(3)])
			if len(b) == 0 {
				continue
			}
			diag := rng.Intn(len(a)+len(b)) - len(b)
			ovS, okS := scalar.OverlapOnDiagonal(a, b, diag, cfgS)
			ovB, okB := bitp.OverlapOnDiagonal(a, b, diag, cfgB)
			if okS != okB || ovS != ovB {
				t.Fatalf("overlap diverged at diag=%d: scalar (%+v,%v) vs bit-parallel (%+v,%v)",
					diag, ovS, okS, ovB, okB)
			}
		}
	}
}

// TestBitParallelNoFallbackOnDefaultScoring: the range guards must never
// trip inside the eligible envelope — a trip would silently halve the
// kernel's speedup on the hot path.
func TestBitParallelNoFallbackOnDefaultScoring(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var scr Scratch
	for trial := 0; trial < 3000; trial++ {
		a := randSeqFrom(rng, bpAlphabets[1], 1+rng.Intn(250))
		b := mutate(rng, bpAlphabets[1], a, 0.2)
		if len(b) == 0 {
			continue
		}
		for band := 0; band <= bpMaxBand; band++ {
			scr.BandedNWKernel(a, b, band, DefaultScoring, KernelBitParallel)
		}
	}
	if scr.bpFallbacks != 0 {
		t.Fatalf("bit-parallel kernel fell back %d times on default scoring", scr.bpFallbacks)
	}
}

// TestBitParallelZeroAlloc: steady-state bit-parallel calls allocate
// nothing (Eq masks, adj table and trace masks all live in the Scratch).
func TestBitParallelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var scr Scratch
	a := randSeqFrom(rng, bpAlphabets[1], 150)
	b := mutate(rng, bpAlphabets[1], a, 0.05)
	scr.BandedNWKernel(a, b, 6, DefaultScoring, KernelBitParallel) // warm buffers
	allocs := testing.AllocsPerRun(200, func() {
		scr.BandedNWKernel(a, b, 6, DefaultScoring, KernelBitParallel)
	})
	if allocs != 0 {
		t.Fatalf("steady-state bit-parallel BandedNW allocates %.1f/op, want 0", allocs)
	}
}

// FuzzBitParallelNW cross-checks the kernels on fuzzer-chosen byte
// strings (any bytes, not just bases) and band/scoring combinations.
func FuzzBitParallelNW(f *testing.F) {
	f.Add([]byte("ACGTACGTACGT"), []byte("ACGTACGTAGGT"), 6, 1, -1, -2)
	f.Add([]byte("AAAA#NNNN"), []byte("AAAANNNN"), 3, 1, -2, -1)
	f.Add([]byte("A"), []byte("ACGT"), 0, 2, -3, -4)
	f.Add([]byte("NNNNNNNN"), []byte("N"), 7, 1, -1, -2)
	f.Fuzz(func(t *testing.T, a, b []byte, band, match, mismatch, gap int) {
		if len(a) == 0 || len(b) == 0 || len(a) > 400 || len(b) > 400 {
			return
		}
		if band < 0 || band > 16 {
			return
		}
		sc := Scoring{Match: match, Mismatch: mismatch, Gap: gap}
		if !bpEligible(band, sc) {
			return
		}
		var scr, ref Scratch
		want := ref.BandedNWKernel(a, b, band, sc, KernelScalar)
		got := scr.BandedNWKernel(a, b, band, sc, KernelBitParallel)
		if got != want {
			t.Fatalf("kernel divergence: got %+v want %+v (band=%d sc=%+v a=%q b=%q)",
				got, want, band, sc, a, b)
		}
	})
}
