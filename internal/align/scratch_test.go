package align

import (
	"math/rand"
	"testing"
)

// TestScratchBandedNWMatchesAllocating asserts the borrowed-buffer kernel
// returns bit-identical alignments to the allocating entry point across
// random inputs, bands, and repeated (dirty-buffer) reuse.
func TestScratchBandedNWMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var scr Scratch
	for trial := 0; trial < 300; trial++ {
		n, m := rng.Intn(120), rng.Intn(120)
		a, b := randSeq(rng, n), randSeq(rng, m)
		// Mutate b toward a sometimes so real alignments occur.
		if n > 0 && m > 0 && rng.Intn(2) == 0 {
			copy(b, a[:min(n, m)])
			for i := 0; i < m/10; i++ {
				b[rng.Intn(m)] = "ACGT"[rng.Intn(4)]
			}
		}
		band := rng.Intn(12)
		want := BandedNW(a, b, band, DefaultScoring)
		got := scr.BandedNW(a, b, band, DefaultScoring) // reused, dirty buffers
		if got != want {
			t.Fatalf("trial=%d n=%d m=%d band=%d: %+v (scratch) vs %+v (alloc)", trial, n, m, band, got, want)
		}
	}
}

// TestScratchOverlapOnDiagonalMatches does the same for the overlap
// classifier wrapper.
func TestScratchOverlapOnDiagonalMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var scr Scratch
	cfg := DefaultConfig()
	cfg.MinLength = 10
	cfg.MinIdentity = 0.5
	for trial := 0; trial < 300; trial++ {
		genome := randSeq(rng, 300)
		a := genome[:100+rng.Intn(100)]
		off := rng.Intn(150)
		b := genome[off : off+50+rng.Intn(100)]
		diag := off + rng.Intn(5) - 2
		want, okW := OverlapOnDiagonal(a, b, diag, cfg)
		got, okG := scr.OverlapOnDiagonal(a, b, diag, cfg)
		if okW != okG || got != want {
			t.Fatalf("trial=%d diag=%d: (%+v,%v) vs (%+v,%v)", trial, diag, got, okG, want, okW)
		}
	}
}

// TestScratchBandedNWZeroAlloc pins the scratch kernel's zero-allocation
// contract steady-state.
func TestScratchBandedNWZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a, b := randSeq(rng, 100), randSeq(rng, 100)
	var scr Scratch
	scr.BandedNW(a, b, 6, DefaultScoring) // warm up buffers
	allocs := testing.AllocsPerRun(100, func() {
		scr.BandedNW(a, b, 6, DefaultScoring)
	})
	if allocs != 0 {
		t.Errorf("scratch BandedNW allocated %v times per run", allocs)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkBandedNW contrasts the allocating kernel with the
// scratch-reusing one on a typical overlap window (100 bp, band 6).
func BenchmarkBandedNW(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	x := randSeq(rng, 100)
	y := append([]byte(nil), x...)
	for i := 0; i < 5; i++ {
		y[rng.Intn(len(y))] = "ACGT"[rng.Intn(4)]
	}
	b.Run("allocating", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BandedNW(x, y, 6, DefaultScoring)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var scr Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scr.BandedNW(x, y, 6, DefaultScoring)
		}
	})
}
