// Package align implements banded Needleman–Wunsch global alignment and
// the overlap classification Focus uses to turn read pairs into overlap
// graph edges (paper §II.B): suffix/prefix overlaps in either orientation
// and containments, each scored by alignment length and percent identity.
package align

import "fmt"

// Scoring holds the alignment score parameters. The zero value is not
// usable; use DefaultScoring.
type Scoring struct {
	Match    int
	Mismatch int // negative
	Gap      int // negative
}

// DefaultScoring matches a standard unit-cost overlap configuration.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -2}

// Alignment is the result of a global alignment of two (sub)sequences.
type Alignment struct {
	Score   int
	Matches int // exactly matching columns
	Columns int // total alignment columns (matches + mismatches + gaps)
}

// Identity returns the fraction of alignment columns that match.
func (a Alignment) Identity() float64 {
	if a.Columns == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.Columns)
}

const negInf = int(-1) << 30

// traceback directions.
const (
	tbNone byte = iota
	tbDiag
	tbUp   // gap in b (consume a[i])
	tbLeft // gap in a (consume b[j])
)

// BandedNW globally aligns a and b restricting the DP to |i-j| <= band
// ("banded Needleman–Wunsch", paper §II.B). If the length difference
// exceeds the band the band is widened to fit, since a global alignment
// must reach the corner cell. It returns the alignment summary.
func BandedNW(a, b []byte, band int, sc Scoring) Alignment {
	if band < 0 {
		band = 0
	}
	if d := len(a) - len(b); d > band || -d > band {
		if d < 0 {
			d = -d
		}
		band = d
	}
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		// Pure gap alignment.
		return Alignment{Score: (n + m) * sc.Gap, Matches: 0, Columns: n + m}
	}
	width := 2*band + 1
	// score[i][k] with k = j - i + band, j in [i-band, i+band].
	score := make([]int, (n+1)*width)
	trace := make([]byte, (n+1)*width)
	idx := func(i, j int) int { return i*width + (j - i + band) }
	inBand := func(i, j int) bool { d := j - i; return d >= -band && d <= band && j >= 0 && j <= m }

	for i := 0; i <= n; i++ {
		for j := i - band; j <= i+band; j++ {
			if j < 0 || j > m {
				continue
			}
			p := idx(i, j)
			switch {
			case i == 0 && j == 0:
				score[p] = 0
				trace[p] = tbNone
			case i == 0:
				score[p] = j * sc.Gap
				trace[p] = tbLeft
			case j == 0:
				score[p] = i * sc.Gap
				trace[p] = tbUp
			default:
				best, dir := negInf, tbNone
				if inBand(i-1, j-1) {
					s := score[idx(i-1, j-1)]
					if a[i-1] == b[j-1] {
						s += sc.Match
					} else {
						s += sc.Mismatch
					}
					if s > best {
						best, dir = s, tbDiag
					}
				}
				if inBand(i-1, j) {
					if s := score[idx(i-1, j)] + sc.Gap; s > best {
						best, dir = s, tbUp
					}
				}
				if inBand(i, j-1) {
					if s := score[idx(i, j-1)] + sc.Gap; s > best {
						best, dir = s, tbLeft
					}
				}
				score[p] = best
				trace[p] = dir
			}
		}
	}

	aln := Alignment{Score: score[idx(n, m)]}
	// Traceback to count matches and columns.
	i, j := n, m
	for i > 0 || j > 0 {
		switch trace[idx(i, j)] {
		case tbDiag:
			if a[i-1] == b[j-1] {
				aln.Matches++
			}
			i--
			j--
		case tbUp:
			i--
		case tbLeft:
			j--
		default:
			// Unreachable for a well-formed DP; guard against loops.
			panic(fmt.Sprintf("align: broken traceback at (%d,%d)", i, j))
		}
		aln.Columns++
	}
	return aln
}

// NW is the unbanded Needleman–Wunsch reference implementation (used in
// tests and for very short sequences).
func NW(a, b []byte, sc Scoring) Alignment {
	band := len(a) + len(b)
	return BandedNW(a, b, band, sc)
}
