// Package align implements banded Needleman–Wunsch global alignment and
// the overlap classification Focus uses to turn read pairs into overlap
// graph edges (paper §II.B): suffix/prefix overlaps in either orientation
// and containments, each scored by alignment length and percent identity.
package align

import "fmt"

// Scoring holds the alignment score parameters. The zero value is not
// usable; use DefaultScoring.
type Scoring struct {
	Match    int
	Mismatch int // negative
	Gap      int // negative
}

// DefaultScoring matches a standard unit-cost overlap configuration.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -2}

// Alignment is the result of a global alignment of two (sub)sequences.
type Alignment struct {
	Score   int
	Matches int // exactly matching columns
	Columns int // total alignment columns (matches + mismatches + gaps)
}

// Identity returns the fraction of alignment columns that match.
func (a Alignment) Identity() float64 {
	if a.Columns == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.Columns)
}

// traceback directions.
const (
	tbNone byte = iota
	tbDiag
	tbUp   // gap in b (consume a[i])
	tbLeft // gap in a (consume b[j])
)

// Scratch holds reusable buffers for the banded DP kernels so the
// alignment inner loop performs zero heap allocations steady-state: the
// scalar kernel's score/trace arrays, and the bit-parallel kernel's
// per-query Eq masks, per-scoring add table and per-row direction masks
// (see bitnw.go). A Scratch is owned by exactly one goroutine at a time
// (it is not internally synchronized); the buffers are borrowed by each
// call and their contents are undefined between calls. The zero value is
// ready to use and grows on demand.
type Scratch struct {
	score []int
	trace []byte

	// Bit-parallel kernel state (bitnw.go).
	eqBits   []uint64 // 256 rows x eqStride words: per-byte match masks over b
	eqStride int
	eqSeen   [4]uint64   // byte-set of the previous b (Eq rows to clear)
	adjTab   [256]uint64 // matchbit byte -> per-lane diagonal adjustment
	adjDelta int         // Match-Mismatch the adjTab was built for
	// Per-row packed traceback masks, 2 words per row: bit 7 of each lane
	// is "up strictly beats diag", bit 6 "left strictly beats max(diag,up)".
	bpTB []uint64

	// bpFallbacks counts calls where the bit-parallel kernel bailed out
	// mid-flight to the scalar path (range-guard trip). Test observability
	// only; eligible default-scoring inputs never trip the guards.
	bpFallbacks int
}

// grow ensures capacity for n DP cells without clearing: every in-band
// cell is written before it is read, and the traceback only follows
// freshly written directions, so stale contents are never observed.
func (s *Scratch) grow(n int) {
	if cap(s.score) < n {
		s.score = make([]int, n)
		s.trace = make([]byte, n)
	}
	s.score = s.score[:n]
	s.trace = s.trace[:n]
}

// BandedNW globally aligns a and b restricting the DP to |i-j| <= band
// ("banded Needleman–Wunsch", paper §II.B). If the length difference
// exceeds the band the band is widened to fit, since a global alignment
// must reach the corner cell. It returns the alignment summary.
// It allocates fresh DP buffers per call; hot paths should hold a Scratch
// and call its method instead.
func BandedNW(a, b []byte, band int, sc Scoring) Alignment {
	var s Scratch
	return s.BandedNW(a, b, band, sc)
}

// BandedNW is the buffer-reusing variant of the package-level BandedNW:
// identical results, but the DP buffers are borrowed from the Scratch, so
// steady-state calls allocate nothing. The kernel is selected
// automatically (KernelAuto): the bit-parallel kernel when the band and
// scoring are eligible, the scalar DP otherwise — both produce identical
// Alignments.
func (scr *Scratch) BandedNW(a, b []byte, band int, sc Scoring) Alignment {
	return scr.BandedNWKernel(a, b, band, sc, KernelAuto)
}

// BandedNWKernel is BandedNW with an explicit kernel choice. All kernels
// return identical Alignments (score, matches, columns — bit-for-bit);
// the choice is purely a speed knob, and ineligible inputs silently use
// the scalar kernel.
func (scr *Scratch) BandedNWKernel(a, b []byte, band int, sc Scoring, k Kernel) Alignment {
	if band < 0 {
		band = 0
	}
	if d := len(a) - len(b); d > band || -d > band {
		if d < 0 {
			d = -d
		}
		band = d
	}
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		// Pure gap alignment.
		return Alignment{Score: (n + m) * sc.Gap, Matches: 0, Columns: n + m}
	}
	if k != KernelScalar && bpEligible(band, sc) {
		if aln, ok := scr.bandedNWBit(a, b, band, sc); ok {
			return aln
		}
		scr.bpFallbacks++
	}
	return scr.bandedNWScalar(a, b, band, sc)
}

// bandedNWScalar is the cell-by-cell scalar DP. band has already been
// widened to cover the length difference and n, m >= 1. Its tie-break
// order — diagonal wins ties, up displaces only when strictly greater,
// left only when strictly greater than both — is the traceback contract
// every kernel must reproduce (DESIGN.md §12).
func (scr *Scratch) bandedNWScalar(a, b []byte, band int, sc Scoring) Alignment {
	n, m := len(a), len(b)
	width := 2*band + 1
	// score[i][c] with c = j - i + band, j in [i-band, i+band]. In this
	// layout a cell's neighbours sit at fixed offsets: diagonal (i-1,j-1)
	// at the same c in the previous row, up (i-1,j) at c+1 in the previous
	// row, left (i,j-1) at c-1 in the same row — so the kernel needs no
	// per-cell index arithmetic or in-band predicate calls.
	scr.grow((n + 1) * width)
	score := scr.score
	trace := scr.trace

	// Row 0: pure-gap prefix of b.
	score[band] = 0
	trace[band] = tbNone
	jHi0 := band
	if jHi0 > m {
		jHi0 = m
	}
	for j := 1; j <= jHi0; j++ {
		score[band+j] = j * sc.Gap
		trace[band+j] = tbLeft
	}

	for i := 1; i <= n; i++ {
		rowOff := i * width
		prevOff := rowOff - width
		jLo, jHi := i-band, i+band
		if jLo < 0 {
			jLo = 0
		}
		if jHi > m {
			jHi = m
		}
		j := jLo
		if j == 0 {
			// Column 0: pure-gap prefix of a.
			p := rowOff + band - i
			score[p] = i * sc.Gap
			trace[p] = tbUp
			j = 1
		}
		ai := a[i-1]
		for ; j <= jHi; j++ {
			c := j - i + band
			p := rowOff + c
			// Diagonal predecessor is always in band for i,j >= 1.
			s := score[prevOff+c]
			if ai == b[j-1] {
				s += sc.Match
			} else {
				s += sc.Mismatch
			}
			best, dir := s, tbDiag
			if c < 2*band { // up (i-1,j) in band
				if s := score[prevOff+c+1] + sc.Gap; s > best {
					best, dir = s, tbUp
				}
			}
			if c > 0 { // left (i,j-1) in band
				if s := score[p-1] + sc.Gap; s > best {
					best, dir = s, tbLeft
				}
			}
			score[p] = best
			trace[p] = dir
		}
	}

	idx := func(i, j int) int { return i*width + (j - i + band) }
	aln := Alignment{Score: score[idx(n, m)]}
	// Traceback to count matches and columns.
	i, j := n, m
	for i > 0 || j > 0 {
		switch trace[idx(i, j)] {
		case tbDiag:
			if a[i-1] == b[j-1] {
				aln.Matches++
			}
			i--
			j--
		case tbUp:
			i--
		case tbLeft:
			j--
		default:
			// Unreachable for a well-formed DP; guard against loops.
			panic(fmt.Sprintf("align: broken traceback at (%d,%d)", i, j))
		}
		aln.Columns++
	}
	return aln
}

// NW is the unbanded Needleman–Wunsch reference implementation (used in
// tests and for very short sequences).
func NW(a, b []byte, sc Scoring) Alignment {
	band := len(a) + len(b)
	return BandedNW(a, b, band, sc)
}
