// Bit-parallel banded Needleman–Wunsch.
//
// The scalar kernel walks the band cell by cell: ~W=2*band+1 dependent
// compare/branch chains per row. This kernel processes the whole band of
// one DP row as SWAR lanes inside two uint64 words — 8-bit lane c holds
// the score of column j = c + i - band, biased and re-anchored per row so
// the in-band score spread (bounded by (Match-Gap)*2*band, see
// bpEligible) always fits the lane. Per row it performs a constant number
// of word operations:
//
//	diag  = prev + Eq-driven per-lane add  (match/mismatch, no branches)
//	up    = prev laneshifted down one lane  - |Gap|
//	cand  = lanewise max(diag, up)          (diag wins ties)
//	left  = prefix relaxation s[c] = max_d cand[c-d] - d*|Gap|, run as a
//	        distance-doubling max-plus scan (lane shifts of 1, 2, 4, 8
//	        with decays |Gap|..8*|Gap|): every chain length 0..15 is a
//	        subset sum of the pass distances with exactly its decay, so
//	        a fixed number of passes equals the full relaxation — no
//	        data-dependent fixpoint loop
//
// Match/mismatch per lane comes from Myers-style Eq bitmasks: one
// 256-entry table of bitmasks over b, built per call into the Scratch and
// cleared lazily (only the rows of bytes the previous b touched), so
// arbitrary bytes — including 'N' and the '#' separator — compare exactly
// like the scalar byte compare.
//
// The traceback is not recomputed from scores: each row stores two
// direction bits per lane ("up strictly beats diag", "left strictly
// beats max(diag,up)") whose priority order reproduces the scalar
// kernel's tie-break contract
// exactly, so Score, Matches and Columns are bit-identical to the scalar
// DP on every input the kernel accepts. Inputs outside the envelope
// (wide bands, exotic scoring, range-guard trips) fall back to the scalar
// kernel, which is always exact. See DESIGN.md §12.
package align

import "math/bits"

// Kernel selects the banded-NW implementation. All kernels produce
// identical Alignments; this is purely a speed knob.
type Kernel uint8

const (
	// KernelAuto (the default) uses the bit-parallel kernel whenever the
	// band and scoring are eligible, the scalar DP otherwise.
	KernelAuto Kernel = iota
	// KernelScalar forces the cell-by-cell scalar DP.
	KernelScalar
	// KernelBitParallel prefers the bit-parallel kernel (same behavior as
	// KernelAuto; named for explicit configuration and benchmarks).
	KernelBitParallel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelBitParallel:
		return "bit-parallel"
	}
	return "kernel(?)"
}

const (
	// bpMaxBand bounds the band half-width: W = 2*band+1 <= 15 lanes, so
	// a whole row fits in two uint64 words.
	bpMaxBand = 7
	// bpNeg is the sentinel for out-of-band lanes. It is small enough to
	// lose every max against an in-band lane (bpEligible keeps in-band
	// values >= bpNeg+2) and large enough that the largest single lane
	// subtraction — the left-scan's 8-lane pass decays by 8*|Gap| <= 16 —
	// cannot borrow out of the lane.
	bpNeg = 16
	// bpBias is the lane value representing the per-row anchor score.
	bpBias = 64

	// Sentinel fills for the lanes the left scan shifts in (2- and 4-lane
	// passes).
	bpNeg2 = bpNeg | bpNeg<<8
	bpNeg4 = bpNeg2 | bpNeg2<<16

	bpLaneLSB = 0x0101010101010101
	bpLaneMSB = 0x8080808080808080
)

// bpPre[k] holds lanes 0..k-1 set to 0xFF across the two row words;
// the valid-lane mask of a row with columns [cLo, cHi] is
// bpPre[cHi+1] &^ bpPre[cLo].
var bpPre [17][2]uint64

func init() {
	for k := 1; k < len(bpPre); k++ {
		bpPre[k] = bpPre[k-1]
		if k <= 8 {
			bpPre[k][0] |= 0xFF << (8 * uint(k-1))
		} else {
			bpPre[k][1] |= 0xFF << (8 * uint(k-9))
		}
	}
}

func splat8(x uint64) uint64 { return x * bpLaneLSB }

// ge8 returns a lane mask (0xFF / 0x00 per 8-bit lane) of a >= b.
// Both operands must keep lane values < 0x80 (bpEligible guarantees it).
// Pure 1-cycle ALU ops: the kernel is bound by this chain's latency, so
// the multiply-widening variant measures slower despite fewer ops.
func ge8(a, b uint64) uint64 {
	h := ((a | bpLaneMSB) - b) & bpLaneMSB
	return (h - (h >> 7)) | h
}

// bpEligible reports whether the bit-parallel kernel's 8-bit lanes can
// represent every intermediate value exactly for this band and scoring.
// The in-band score spread after per-row re-anchoring is bounded by
// S = (Match-Gap)*2*band (adjacent in-band cells differ by at most
// Match-Gap, which requires Match >= 0 >= Gap); the gates keep
// bias - spread above the bpNeg sentinel and bias + spread + transients
// below 0x80. The default scoring (1,-1,-2) is eligible for band <= 7.
func bpEligible(band int, sc Scoring) bool {
	if band > bpMaxBand {
		return false
	}
	M, X, G := sc.Match, sc.Mismatch, sc.Gap
	if M < 0 || M > 8 || X > 0 || X < -8 || G >= 0 || G < -8 {
		return false
	}
	K := M - G
	S := 2 * band * K
	if S+K+(-G)+M > 44 {
		return false
	}
	if S+K+(M-X) > 52 {
		return false
	}
	// The left scan's largest pass shifts sigma lanes and decays by
	// sigma*|Gap|; passes 1..sigma cover chain lengths up to 2*sigma-1, so
	// sigma is the smallest power of two > band. That largest decay must
	// not borrow below zero out of a bpNeg sentinel lane.
	sigma := 1
	for sigma <= band {
		sigma <<= 1
	}
	return sigma*(-G) <= bpNeg
}

// bpBuildEq (re)builds the per-byte Eq masks over b: bit j of row ch is
// set iff b[j] == ch. Rows live in a flat 256 x eqStride arena inside the
// Scratch; only rows touched by the previous call are cleared, so the
// build is O(len(b) + distinct bytes of the previous b).
func (scr *Scratch) bpBuildEq(b []byte) {
	stride := (len(b) + 63) >> 6
	if stride > scr.eqStride {
		scr.eqStride = stride
		// One pad word past the arena: the kernel's match-bit extraction
		// reads one word beyond bpos unconditionally (the surplus bits only
		// reach out-of-band lanes, which are floored every row).
		scr.eqBits = make([]uint64, 256*stride+1)
		scr.eqSeen = [4]uint64{}
	}
	st := scr.eqStride
	if st <= 4 {
		// Small arena (b <= 256 bytes, the overlap hot path): one memclr
		// beats tracking dirty rows. The stride never shrinks, so every
		// call at this stride took this path and eqSeen stays empty.
		clear(scr.eqBits)
		for j, ch := range b {
			scr.eqBits[int(ch)*st+(j>>6)] |= 1 << (j & 63)
		}
		return
	}
	for w := range scr.eqSeen {
		set := scr.eqSeen[w]
		for set != 0 {
			ch := w*64 + bits.TrailingZeros64(set)
			clear(scr.eqBits[ch*st : (ch+1)*st])
			set &= set - 1
		}
		scr.eqSeen[w] = 0
	}
	for j, ch := range b {
		scr.eqSeen[ch>>6] |= 1 << (ch & 63)
		scr.eqBits[int(ch)*st+(j>>6)] |= 1 << (j & 63)
	}
}

// bpBuildAdj builds the matchbits -> per-lane diagonal adjustment table
// for delta = Match-Mismatch: lane k of adjTab[p] holds delta iff bit k
// of p is set. Cached across calls; rebuilt only when the scoring changes.
func (scr *Scratch) bpBuildAdj(delta int) {
	d := uint64(delta)
	for p := 0; p < 256; p++ {
		var w uint64
		for k := uint(0); k < 8; k++ {
			if p>>k&1 == 1 {
				w |= d << (8 * k)
			}
		}
		scr.adjTab[p] = w
	}
	scr.adjDelta = delta
}

// bandedNWBit runs the bit-parallel kernel. It requires
// bpEligible(band, sc), n, m >= 1 and |n-m| <= band (the caller widens
// the band first). ok=false means a range guard tripped (possible only
// for near-gate scorings, never for the default) and the caller must
// rerun the scalar kernel.
func (scr *Scratch) bandedNWBit(a, b []byte, band int, sc Scoring) (Alignment, bool) {
	n, m := len(a), len(b)
	scr.bpBuildEq(b)
	if delta := sc.Match - sc.Mismatch; scr.adjDelta != delta {
		scr.bpBuildAdj(delta)
	}
	if need := 2 * (n + 1); cap(scr.bpTB) < need {
		scr.bpTB = make([]uint64, need)
	}
	tbw := scr.bpTB[:2*(n+1)]
	eqAll := scr.eqBits
	st := scr.eqStride
	adj := &scr.adjTab

	negw := splat8(bpNeg)
	xa := splat8(uint64(-sc.Mismatch))
	ga := splat8(uint64(-sc.Gap))
	ga2 := ga + ga
	ga4 := ga2 + ga2
	ga8 := ga4 + ga4

	// Full-band valid-lane mask and the row range [band+1, m-band] where it
	// applies unclipped (the loop's common case, so the per-row mask work
	// reduces to two register moves).
	wTop := 2 * band
	mTop := m - band
	vmF0 := bpPre[wTop+1][0]
	vmF1 := bpPre[wTop+1][1]
	// Full-band match-bit mask (bits 0..wTop). Masking mb keeps the
	// diagonal add zero on invalid lanes, which (together with the
	// end-of-row floor) keeps their values at or below the sentinel, so
	// rows whose band is not clipped on the right need no pre-scan floor.
	wMaskF := uint64(1)<<uint(wTop+1) - 1
	// Lazy re-anchoring window: the anchor lane may drift up to bpT from
	// bpBias before the splat/subtract renormalization runs. bpT is sized
	// so the lowest in-band lane, 64 - bpT - (S+K+|G|), stays >= bpNeg+2
	// (junk lanes never exceed bpNeg, so in-band lanes keep winning), and
	// capped at 8 so an ordinary renorm subtract cannot borrow out of a
	// junk lane (junk >= bpNeg-|X| >= 8 un-floored).
	bpT := 46 - (2*band*(sc.Match-sc.Gap) + (sc.Match - sc.Gap) + (-sc.Gap))
	if bpT > 8 {
		bpT = 8
	}
	// The window is asymmetric: upward drift (the common case on
	// high-identity inputs — the anchor gains Match on most rows) only
	// risks the top of the 8-bit domain, which has far more slack than the
	// sentinel floor below. With drift d <= bpTup every intermediate stays
	// at or below 64 + (bpTup+M) + S + M < 128, and since the per-row
	// anchor step never exceeds Match, no upward bail guard is needed.
	// For every eligible scoring bpTup >= 19 + 2|Gap| > bpT.
	bpTup := 63 - 2*band*(sc.Match-sc.Gap) - 2*sc.Match

	// Row 0: pure-gap prefix of b at lanes band..band+min(band,m); the
	// anchor (lane band, j=0) sits exactly at bpBias, so base starts 0.
	p0, p1 := negw, negw
	jmax := band
	if jmax > m {
		jmax = m
	}
	for j := 0; j <= jmax; j++ {
		c := band + j
		v := uint64(bpBias + j*sc.Gap)
		sh := 8 * uint(c&7)
		if c < 8 {
			p0 = p0&^(uint64(0xFF)<<sh) | v<<sh
		} else {
			p1 = p1&^(uint64(0xFF)<<sh) | v<<sh
		}
	}
	base := 0 // true score of the lane holding bpBias in (p0,p1)
	// f8 mirrors lane 8 (word 1, lane 0) of the previous row as a scalar.
	// It is the only word-1 lane the word-0 recurrence reads (u0's shift-in
	// below), and word 1 finishes a row one scan pass later than word 0 —
	// mirroring the lane keeps the 8-lane pass off the carried dependency
	// chain, which is what bounds the row latency.
	f8 := int(p1 & 0xFF)
	g8l := 8 * -sc.Gap
	// Traceback masks are staged one row and stored at the top of the next
	// iteration: their word-1 inputs finish a scan pass after word 0, and
	// deferring the store keeps that tail off the row's dependency chain.
	var tbQ0, tbQ1 uint64

	// Row-ahead state for the software pipeline: row i+1's valid-lane
	// masks, anchor lane and Eq/adj table loads are issued while row i's
	// scan — the kernel's longest dependency chain — is still in flight.
	// Match bits for row i: bit c = (a[i-1] == b[c+i-band-1]), read from
	// the Eq row of a[i-1] at bit offset i-band-1 (left-shifted into place
	// for the first rows where the offset is negative). The flat read
	// pulls one word past the offset unconditionally: the arena carries a
	// pad word so the index is in range, and surplus bits are removed by
	// the match-bit mask.
	vmA0, vmA1 := vmF0, vmF1
	caA := band
	clippedA := 1 > mTop
	var adjP0, adjP1 uint64
	{
		mbm := wMaskF
		if clippedA {
			cHi := m - 1 + band
			vmA0 = bpPre[cHi+1][0]
			vmA1 = bpPre[cHi+1][1]
			mbm = uint64(1)<<uint(cHi+1) - 1
			if cHi < band {
				caA = cHi
			}
		}
		mb := eqAll[int(a[0])*st] << uint(band) & mbm
		adjP0 = adj[byte(mb)]
		adjP1 = adj[byte(mb>>8)]
	}

	// The row loop runs in three segments: a general body for the head
	// (poke rows i <= band) and tail (right-clipped rows i >= mTop), and a
	// specialized body for the middle — no poke, no clipping on this or
	// the next row, so the lane masks and anchor are loop-invariant and
	// the next row's Eq bit offset is always non-negative. The middle is
	// ~90% of the rows on overlap-shaped inputs.
	mSeg := band
	if mSeg > n {
		mSeg = n
	}
	mSegEnd := mTop - 1
	if mSegEnd > n {
		mSegEnd = n
	}
	if mSegEnd < mSeg {
		mSegEnd = mSeg
	}
	genEnd := mSeg
	ii := 0
general:
	for ; ii < genEnd; ii++ {
		i := ii + 1
		vm0, vm1, ca := vmA0, vmA1, caA
		clipped := clippedA
		// Store the previous row's staged masks (row 0's slots are never
		// read, so the first iteration may write anything there).
		tbw[2*ii+1] = tbQ1
		tbw[2*ii] = tbQ0

		// diag = prev + (match ? Match : Mismatch), via add of
		// (Match-Mismatch) on match lanes then a uniform Mismatch.
		d0 := p0 + adjP0 - xa
		d1 := p1 + adjP1 - xa
		// up = prev shifted one lane down (lane c reads prev lane c+1),
		// bpNeg shifted into the top lane. Word 0 takes its spill-in from
		// the f8 lane mirror, not p1, so it never waits for word 1.
		u0 := (p0>>8 | uint64(f8)<<56) - ga
		u1 := (p1>>8 | bpNeg<<56) - ga
		g0 := ge8(d0, u0)
		g1 := ge8(d1, u1)
		c0 := u0 ^ (d0^u0)&g0
		c1 := u1 ^ (d1^u1)&g1

		if i <= band {
			// Column j=0 (pure-gap prefix of a): poked as a scalar; the
			// traceback hardwires j==0 to Up, so no mask bit is needed.
			cc := band - i // <= band-1 < 8: always in word 0
			v0 := bpBias + i*sc.Gap - base
			if v0 <= bpNeg+1 || v0 > 124 {
				return Alignment{}, false
			}
			sh := 8 * uint(cc)
			c0 = c0&^(uint64(0xFF)<<sh) | uint64(v0)<<sh
			vm0 &^= bpPre[cc][0]
		}
		if clipped {
			// Tail rows only: lanes above cHi carried live values in the
			// previous row, so floor them before the scan. Everywhere
			// else every invalid lane is already at/below the sentinel:
			// the previous row's floor plus the masked diagonal add keep
			// it there, and a sub-sentinel lane never wins a scan max.
			c0 = negw ^ (c0^negw)&vm0
			c1 = negw ^ (c1^negw)&vm1
		}

		if i < n {
			// Preload row i+1 while this row's scan fills the pipeline.
			mbm := wMaskF
			vmA0, vmA1, caA = vmF0, vmF1, band
			clippedA = i+1 > mTop
			if clippedA {
				cHi := m - i - 1 + band
				vmA0 = bpPre[cHi+1][0]
				vmA1 = bpPre[cHi+1][1]
				mbm = uint64(1)<<uint(cHi+1) - 1
				if cHi < band {
					caA = cHi
				}
			}
			bpos := i - band
			var mb uint64
			if bpos >= 0 {
				q := int(a[ii+1])*st + bpos>>6
				r := uint(bpos & 63)
				mb = eqAll[q]>>r | eqAll[q+1]<<(64-r)
			} else {
				mb = eqAll[int(a[ii+1])*st] << uint(-bpos)
			}
			mb &= mbm
			adjP0 = adj[byte(mb)]
			adjP1 = adj[byte(mb>>8)]
		}

		// Left relaxation as a distance-doubling max-plus scan: after the
		// passes below, s[c] = max_d cand[c-d] - d*|Gap| exactly (every
		// chain length is a subset sum of the pass distances). Sentinel
		// lanes cannot borrow (bpEligible bounds every pass decay by
		// bpNeg) and never beat an in-band lane even undecayed; in-band
		// sources below cLo were floored above, so they lose too. Passes
		// longer than the widest possible chain (band lanes) are skipped —
		// the branches are loop-invariant and predicted perfectly.
		s0, s1 := c0, c1
		if band > 0 {
			l0 := (s0<<8 | bpNeg) - ga
			l1 := (s1<<8 | s0>>56) - ga
			e0 := ge8(s0, l0)
			e1 := ge8(s1, l1)
			s0 = l0 ^ (s0^l0)&e0
			s1 = l1 ^ (s1^l1)&e1
			l0 = (s0<<16 | bpNeg2) - ga2
			l1 = (s1<<16 | s0>>48) - ga2
			e0 = ge8(s0, l0)
			e1 = ge8(s1, l1)
			s0 = l0 ^ (s0^l0)&e0
			s1 = l1 ^ (s1^l1)&e1
			if band >= 2 {
				l0 = (s0<<32 | bpNeg4) - ga4
				l1 = (s1<<32 | s0>>32) - ga4
				e0 = ge8(s0, l0)
				e1 = ge8(s1, l1)
				s0 = l0 ^ (s0^l0)&e0
				s1 = l1 ^ (s1^l1)&e1
				if band >= 4 {
					// 8-lane pass: word 0's candidates all originate
					// below lane 0 (sentinels), so only word 1 moves.
					// Lane 8 is also relaxed as a scalar (ties keep s,
					// matching ge8) so the next row's u0 need not wait.
					f8 = int(s1 & 0xFF)
					if v := int(s0&0xFF) - g8l; v > f8 {
						f8 = v
					}
					l1 = s0 - ga8
					e1 = ge8(s1, l1)
					s1 = l1 ^ (s1^l1)&e1
				}
			}
		}
		// Packed traceback masks, bit 7 = up beats diag (from g), bit 6 =
		// left beats max(diag,up): h's MSB per lane is c >= s, i.e. the
		// scan did NOT improve the lane, so its complement shifted down one
		// bit is the left mask.
		h0 := ((c0 | bpLaneMSB) - s0) & bpLaneMSB
		h1 := ((c1 | bpLaneMSB) - s1) & bpLaneMSB
		tbQ1 = ^g1&bpLaneMSB | (h1^bpLaneMSB)>>1
		tbQ0 = ^g0&bpLaneMSB | (h0^bpLaneMSB)>>1

		// Re-anchor lazily: renormalize only once the anchor lane drifts
		// beyond the bpT window (per-row drift is bounded by [Mismatch,
		// Match] for eligible scorings, so the drift at the trigger is at
		// most bpT+8; the guard trips only at the eligibility boundary,
		// and then the caller reruns the scalar kernel).
		// ca <= band < 8, so the anchor always sits in word 0.
		av := int(s0 >> (8 * uint(ca)) & 0xFF)
		if d := av - bpBias; d > bpTup || d < -bpT {
			if d < -(bpT + 8) {
				return Alignment{}, false
			}
			if d > 8 {
				// A wide subtract could borrow out of an un-floored junk
				// lane; pre-set invalid lanes to sentinel+d so they land
				// exactly on the sentinel afterwards.
				w := splat8(uint64(d + bpNeg))
				s0 = w ^ (s0^w)&vm0
				s1 = w ^ (s1^w)&vm1
			}
			if d > 0 {
				w := splat8(uint64(d))
				s0 -= w
				s1 -= w
			} else {
				w := splat8(uint64(-d))
				s0 += w
				s1 += w
			}
			f8 -= d
			base += d
		}
		// Word 0 of a wide unclipped band has no invalid lanes — skip the
		// identity select there; word 1 always carries sentinel lanes.
		if vm0 != ^uint64(0) {
			s0 = negw ^ (s0^negw)&vm0
		}
		s1 = negw ^ (s1^negw)&vm1
		// Floor the lane-8 mirror with word 1's valid mask: this also pins
		// it to the sentinel for bands too narrow to reach word 1.
		f8 = bpNeg ^ (f8^bpNeg)&int(vm1&0xFF)
		p0, p1 = s0, s1
	}
	if genEnd < n {
		for ; ii < mSegEnd; ii++ {
			i := ii + 1
			tbw[2*ii+1] = tbQ1
			tbw[2*ii] = tbQ0

			d0 := p0 + adjP0 - xa
			d1 := p1 + adjP1 - xa
			u0 := (p0>>8 | uint64(f8)<<56) - ga
			u1 := (p1>>8 | bpNeg<<56) - ga
			g0 := ge8(d0, u0)
			g1 := ge8(d1, u1)
			c0 := u0 ^ (d0^u0)&g0
			c1 := u1 ^ (d1^u1)&g1

			{
				bpos := i - band
				q := int(a[ii+1])*st + bpos>>6
				r := uint(bpos & 63)
				mb := (eqAll[q]>>r | eqAll[q+1]<<(64-r)) & wMaskF
				adjP0 = adj[byte(mb)]
				adjP1 = adj[byte(mb>>8)]
			}

			s0, s1 := c0, c1
			if band > 0 {
				l0 := (s0<<8 | bpNeg) - ga
				l1 := (s1<<8 | s0>>56) - ga
				e0 := ge8(s0, l0)
				e1 := ge8(s1, l1)
				s0 = l0 ^ (s0^l0)&e0
				s1 = l1 ^ (s1^l1)&e1
				l0 = (s0<<16 | bpNeg2) - ga2
				l1 = (s1<<16 | s0>>48) - ga2
				e0 = ge8(s0, l0)
				e1 = ge8(s1, l1)
				s0 = l0 ^ (s0^l0)&e0
				s1 = l1 ^ (s1^l1)&e1
				if band >= 2 {
					l0 = (s0<<32 | bpNeg4) - ga4
					l1 = (s1<<32 | s0>>32) - ga4
					e0 = ge8(s0, l0)
					e1 = ge8(s1, l1)
					s0 = l0 ^ (s0^l0)&e0
					s1 = l1 ^ (s1^l1)&e1
					if band >= 4 {
						f8 = int(s1 & 0xFF)
						if v := int(s0&0xFF) - g8l; v > f8 {
							f8 = v
						}
						l1 = s0 - ga8
						e1 = ge8(s1, l1)
						s1 = l1 ^ (s1^l1)&e1
					}
				}
			}
			h0 := ((c0 | bpLaneMSB) - s0) & bpLaneMSB
			h1 := ((c1 | bpLaneMSB) - s1) & bpLaneMSB
			tbQ1 = ^g1&bpLaneMSB | (h1^bpLaneMSB)>>1
			tbQ0 = ^g0&bpLaneMSB | (h0^bpLaneMSB)>>1

			av := int(s0 >> (8 * uint(band)) & 0xFF)
			if d := av - bpBias; d > bpTup || d < -bpT {
				if d < -(bpT + 8) {
					return Alignment{}, false
				}
				if d > 8 {
					w := splat8(uint64(d + bpNeg))
					s0 = w ^ (s0^w)&vmF0
					s1 = w ^ (s1^w)&vmF1
				}
				if d > 0 {
					w := splat8(uint64(d))
					s0 -= w
					s1 -= w
				} else {
					w := splat8(uint64(-d))
					s0 += w
					s1 += w
				}
				f8 -= d
				base += d
			}
			if vmF0 != ^uint64(0) {
				s0 = negw ^ (s0^negw)&vmF0
			}
			s1 = negw ^ (s1^negw)&vmF1
			f8 = bpNeg ^ (f8^bpNeg)&int(vmF1&0xFF)
			p0, p1 = s0, s1
		}
		genEnd = n
		goto general
	}
	tbw[2*n+1] = tbQ1
	tbw[2*n] = tbQ0

	cF := m - n + band
	var fv int
	if cF < 8 {
		fv = int(p0 >> (8 * uint(cF)) & 0xFF)
	} else {
		fv = int(p1 >> (8 * uint(cF-8)) & 0xFF)
	}
	aln := Alignment{Score: base + fv - bpBias}

	// Traceback over the stored direction masks, with the scalar
	// priority: left if strictly better than max(diag,up), else up if
	// strictly better than diag, else diag; row 0 is all Left, column 0
	// all Up.
	i, j := n, m
	for i > 0 && j > 0 {
		// c = j-i+band is invariant along a diagonal run, so the word
		// offset and shift are hoisted and the hot loop is load-test-step.
		c := j - i + band
		sh := 8 * uint(c&7)
		q := c >> 3
		for tbw[2*i+q]>>sh&0xC0 == 0 {
			if a[i-1] == b[j-1] {
				aln.Matches++
			}
			i--
			j--
			aln.Columns++
			if i == 0 || j == 0 {
				break
			}
		}
		if i == 0 || j == 0 {
			break
		}
		if tbw[2*i+q]>>sh&0x40 != 0 {
			j--
		} else {
			i--
		}
		aln.Columns++
	}
	// Rails: row 0 is all Left, column 0 all Up — pure gap columns.
	aln.Columns += i + j
	return aln, true
}
