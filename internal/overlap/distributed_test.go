package overlap

import (
	"testing"

	"focus/internal/dist"
)

// alignService exposes AlignPair for the distributed tests without
// importing the assembly package (which would cycle).
type alignService struct{}

func (s *alignService) AlignPair(args *AlignPairArgs, reply *AlignPairReply) error {
	reply.Records = AlignPair(args)
	return nil
}

func newAlignService() interface{} { return &alignService{} }

func TestFindOverlapsDistributedMatchesLocal(t *testing.T) {
	genome := randGenome(150, 2500)
	reads := tilingReads(genome, 100, 35)
	cfg := testConfig()

	for _, subsets := range []int{1, 3} {
		local, err := FindOverlaps(reads, subsets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := dist.NewLocalPool(2, newAlignService)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := FindOverlapsDistributed(pool, reads, subsets, cfg)
		pool.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(remote) != len(local) {
			t.Fatalf("subsets=%d: %d distributed records vs %d local", subsets, len(remote), len(local))
		}
		for i := range local {
			if remote[i] != local[i] {
				t.Fatalf("subsets=%d record %d: %+v vs %+v", subsets, i, remote[i], local[i])
			}
		}
	}
}

func TestFindOverlapsDistributedValidation(t *testing.T) {
	pool, err := dist.NewLocalPool(1, newAlignService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	cfg := testConfig()
	cfg.K = 0
	if _, err := FindOverlapsDistributed(pool, nil, 2, cfg); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FindOverlapsDistributed(pool, nil, 0, testConfig()); err == nil {
		t.Error("0 subsets accepted")
	}
}

func TestAlignPairDirect(t *testing.T) {
	genome := randGenome(151, 600)
	reads := tilingReads(genome, 100, 50)
	var ids []int32
	var seqs [][]byte
	for i, r := range reads {
		ids = append(ids, int32(i))
		seqs = append(seqs, r.Seq)
	}
	recs := AlignPair(&AlignPairArgs{
		RefIDs: ids, RefSeqs: seqs,
		QueryIDs: ids, QuerySeqs: seqs,
		Cfg: testConfig(),
	})
	// Consecutive reads overlap by 50 bp: all must be found.
	found := map[[2]int32]bool{}
	for _, r := range recs {
		found[[2]int32{r.A, r.B}] = true
	}
	for i := 0; i+1 < len(reads); i++ {
		if !found[[2]int32{int32(i), int32(i + 1)}] {
			t.Fatalf("missing overlap %d-%d", i, i+1)
		}
	}
}
