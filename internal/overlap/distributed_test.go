package overlap

import (
	"reflect"
	"testing"
	"time"

	"focus/internal/align"
	"focus/internal/dist"
)

// alignService exposes AlignPair for the distributed tests without
// importing the assembly package (which would cycle).
type alignService struct{}

func (s *alignService) AlignPair(args *AlignPairArgs, reply *AlignPairReply) error {
	reply.Records = AlignPair(args)
	return nil
}

func newAlignService() interface{} { return &alignService{} }

func TestFindOverlapsDistributedMatchesLocal(t *testing.T) {
	genome := randGenome(150, 2500)
	reads := tilingReads(genome, 100, 35)
	cfg := testConfig()

	for _, subsets := range []int{1, 3} {
		local, err := FindOverlaps(reads, subsets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := dist.NewLocalPool(2, newAlignService)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := FindOverlapsDistributed(pool, reads, subsets, cfg)
		pool.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(remote) != len(local) {
			t.Fatalf("subsets=%d: %d distributed records vs %d local", subsets, len(remote), len(local))
		}
		for i := range local {
			if remote[i] != local[i] {
				t.Fatalf("subsets=%d record %d: %+v vs %+v", subsets, i, remote[i], local[i])
			}
		}
	}
}

func TestFindOverlapsDistributedValidation(t *testing.T) {
	pool, err := dist.NewLocalPool(1, newAlignService)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	cfg := testConfig()
	cfg.K = 0
	if _, err := FindOverlapsDistributed(pool, nil, 2, cfg); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FindOverlapsDistributed(pool, nil, 0, testConfig()); err == nil {
		t.Error("0 subsets accepted")
	}
}

// TestMergeRecordsKeepsDistinctKinds is the regression test for the old
// (A, B)-only dedup key, which dropped every record after the first for a
// read pair — a pair reported with both a suffix-prefix overlap and a
// containment lost one of them, and which one depended on job order.
func TestMergeRecordsKeepsDistinctKinds(t *testing.T) {
	sp := Record{A: 1, B: 2, Kind: align.KindSuffixPrefix, Len: 60, Identity: 0.95, Diag: 40}
	ct := Record{A: 1, B: 2, Kind: align.KindAContainsB, Len: 80, Identity: 0.92, Diag: 10}
	got := mergeRecords([][]Record{{sp}, {ct}})
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (distinct Kinds must both survive): %+v", len(got), got)
	}
	// And the result is independent of job order.
	swapped := mergeRecords([][]Record{{ct}, {sp}})
	if !reflect.DeepEqual(got, swapped) {
		t.Fatalf("merge depends on job order:\n%+v\nvs\n%+v", got, swapped)
	}
}

// TestMergeRecordsPicksMostCredibleDuplicate checks that true duplicates —
// same (A, B, Kind) seen by two jobs — collapse to the higher-identity
// record regardless of which job reported first.
func TestMergeRecordsPicksMostCredibleDuplicate(t *testing.T) {
	weak := Record{A: 3, B: 7, Kind: align.KindSuffixPrefix, Len: 55, Identity: 0.91, Diag: 45}
	strong := Record{A: 3, B: 7, Kind: align.KindSuffixPrefix, Len: 60, Identity: 0.97, Diag: 40}
	for _, lists := range [][][]Record{{{weak}, {strong}}, {{strong}, {weak}}} {
		got := mergeRecords(lists)
		if len(got) != 1 {
			t.Fatalf("got %d records, want 1: %+v", len(got), got)
		}
		if got[0] != strong {
			t.Fatalf("kept %+v, want the higher-identity %+v", got[0], strong)
		}
	}
}

// TestFindOverlapsDistributedFallsBackWhenPoolDead checks graceful
// degradation: with every worker hung and evicted, the distributed mode
// completes locally and matches the local result.
func TestFindOverlapsDistributedFallsBackWhenPoolDead(t *testing.T) {
	genome := randGenome(152, 1200)
	reads := tilingReads(genome, 100, 40)
	cfg := testConfig()

	local, err := FindOverlaps(reads, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hang := dist.ChaosConfig{Seed: 9, HangProb: 1, HangFor: 2 * time.Second}
	pool, err := dist.NewLocalChaosPool(2, newAlignService, dist.Options{
		CallTimeout: 150 * time.Millisecond,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig { c := hang; c.Seed += int64(w); return &c })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	remote, err := FindOverlapsDistributed(pool, reads, 2, cfg)
	if err != nil {
		t.Fatalf("distributed mode did not fall back: %v", err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Fatalf("fallback records diverge from local: %d vs %d records", len(remote), len(local))
	}
}

func TestAlignPairDirect(t *testing.T) {
	genome := randGenome(151, 600)
	reads := tilingReads(genome, 100, 50)
	var ids []int32
	var seqs [][]byte
	for i, r := range reads {
		ids = append(ids, int32(i))
		seqs = append(seqs, r.Seq)
	}
	recs := AlignPair(&AlignPairArgs{
		RefIDs: ids, RefSeqs: seqs,
		QueryIDs: ids, QuerySeqs: seqs,
		Cfg: testConfig(),
	})
	// Consecutive reads overlap by 50 bp: all must be found.
	found := map[[2]int32]bool{}
	for _, r := range recs {
		found[[2]int32{r.A, r.B}] = true
	}
	for i := 0; i+1 < len(reads); i++ {
		if !found[[2]int32{int32(i), int32(i + 1)}] {
			t.Fatalf("missing overlap %d-%d", i, i+1)
		}
	}
}
