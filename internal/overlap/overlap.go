// Package overlap implements the Focus parallel read alignment stage
// (paper §II.B): read subsets are paired, each reference subset is indexed
// for seed lookup (a packed k-mer table by default, or a suffix array),
// query reads are decomposed into k-mers, reference reads collecting
// enough k-mer hits are aligned with banded Needleman–Wunsch, and accepted
// overlaps are recorded as the edge list of the overlap graph G0.
//
// The hot path is allocation-free steady-state: each worker owns a scratch
// (candidate table, diagonal votes, alignment DP buffers) reused across
// every query of every subset-pair job it processes. See DESIGN.md
// ("Seed index & scratch reuse") for the layout and the ownership rules.
package overlap

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"focus/internal/align"
	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/par"
)

// Record is one accepted overlap between reads A and B (indices into the
// preprocessed read set). For Kind == SuffixPrefix, A precedes B; for
// PrefixSuffix, B precedes A; containment kinds mark redundant reads.
type Record struct {
	A, B     int32
	Kind     align.Kind
	Len      int32
	Identity float32
	Diag     int32 // offset of B's start in A coordinates
}

// Indexing selects the seed-lookup structure built over each reference
// subset.
type Indexing uint8

const (
	// IndexKmerTable (the default) is a sorted packed k-mer table:
	// O(log n) integer binary search per probe, pre-resolved (read,
	// offset) postings, allocation-free lookups. Fastest for the fixed-k
	// probes overlap detection issues.
	IndexKmerTable Indexing = iota
	// IndexSuffixArray is the Larsson–Sadakane suffix array over the
	// '#'-separated subset text (the paper's structure). Supports
	// arbitrary-length patterns; slower per probe (byte comparisons plus
	// a per-hit position decode).
	IndexSuffixArray
)

// String implements fmt.Stringer.
func (ix Indexing) String() string {
	switch ix {
	case IndexKmerTable:
		return "kmer-table"
	case IndexSuffixArray:
		return "suffix-array"
	}
	return fmt.Sprintf("Indexing(%d)", uint8(ix))
}

// Engine selects the candidate-generation strategy of the overlap stage.
// Both engines feed the same banded-alignment verification and produce
// byte-identical final records (the cross-engine equivalence suite pins
// this); they differ in how candidate read pairs are discovered.
type Engine uint8

const (
	// EngineSeedIndex (the default) probes a per-subset seed index
	// (Config.Indexing selects the structure) once per sampled query
	// k-mer and accumulates hits per candidate read.
	EngineSeedIndex Engine = iota
	// EngineSpGEMM builds the read-by-k-mer sparse matrix of each subset
	// and derives candidates as a masked sparse product A·Aᵀ
	// (internal/spmat): repeat-heavy columns are pruned once at build
	// time, per-job dictionary joins replace per-probe binary searches,
	// and the multiply semiring accumulates hit counts and modal
	// diagonals in one pass — faster candidate generation on
	// repeat-heavy inputs (see BENCH_overlap.json).
	EngineSpGEMM
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSeedIndex:
		return "seed-index"
	case EngineSpGEMM:
		return "spmat"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// Config controls overlap detection.
type Config struct {
	K           int // seed k-mer length
	Step        int // distance between sampled query k-mers (1 = every k-mer)
	MinKmerHits int // hits a reference read needs before alignment is tried
	MaxOccur    int // ignore k-mers occurring more often in a subset (repeat masking); <=0 = unlimited
	Align       align.Config
	Workers     int // concurrent subset-pair jobs; <=0 = GOMAXPROCS
	// Seeding selects the query sampling strategy; SeedMinimizer uses
	// (MinimizerW, K)-minimizers instead of every Step-th k-mer.
	Seeding    Seeding
	MinimizerW int // minimizer window in k-mers (default 8)
	// Indexing selects the reference seed index; both modes return
	// identical overlap records (the k-mer table is faster). Ignored by
	// EngineSpGEMM, which has its own candidate structure.
	Indexing Indexing
	// Engine selects the candidate-generation strategy; all engines
	// return identical overlap records.
	Engine Engine
	// RPCRetries is the per-job failover budget of the distributed mode:
	// a job failed by a worker at the application level is retried on up
	// to this many other workers before the error counts. Ignored by the
	// local mode.
	RPCRetries int
}

// DefaultConfig returns a configuration tuned for 100 bp reads, with the
// paper's acceptance thresholds (50 bp, 90% identity).
func DefaultConfig() Config {
	return Config{
		K:           16,
		Step:        4,
		MinKmerHits: 2,
		MaxOccur:    64,
		Align:       align.DefaultConfig(),
		Workers:     0,
		Indexing:    IndexKmerTable,
	}
}

// scratch is the reusable per-worker state of the alignment inner loop.
// One scratch is owned by exactly one goroutine at a time; reusing it
// across jobs keeps the steady-state loop free of heap allocations.
type scratch struct {
	align align.Scratch // DP score/trace buffers for banded NW

	// Candidate accumulation, keyed by subset-local read index. gen is a
	// generation counter bumped per query so the table is "cleared" in
	// O(1): entries whose gen lags are stale.
	gen     uint32
	cands   []candState
	touched []int32 // local reads first-hit this query, in hit order

	pat    []byte    // saIndex: unpacked probe pattern buffer
	saHits []seedHit // saIndex: located (read, offset) hits buffer

	minimKms []minimKm // minimizer seeding: per-read k-mer hash buffer
	seedOffs []int     // minimizer seeding: selected offsets buffer

	records []Record // per-job output staging (caller copies)

	// countOnly short-circuits the alignment: surviving candidates are
	// tallied into candTotal instead of verified (CountCandidates).
	countOnly bool
	candTotal int64
}

// candState accumulates seed evidence for one reference read against the
// current query: hit count plus diagonal votes for modal-diagonal
// estimation. diags is reused across generations by truncation, so after
// warm-up no per-query allocation happens.
type candState struct {
	gen   uint32
	hits  int32
	diags []diagVote
}

type diagVote struct{ d, n int32 }

// reset prepares the scratch for a reference subset of n reads.
func (sc *scratch) reset(n int) {
	if len(sc.cands) < n {
		sc.cands = make([]candState, n)
		sc.gen = 0
	}
}

// nextQuery starts a new query generation, handling uint32 wraparound.
func (sc *scratch) nextQuery() {
	sc.gen++
	if sc.gen == 0 { // wrapped: stale entries could alias, hard-clear
		for i := range sc.cands {
			sc.cands[i].gen = 0
		}
		sc.gen = 1
	}
	sc.touched = sc.touched[:0]
}

// FindOverlaps detects all pairwise overlaps in reads, processing
// subset pairs in parallel. Records are canonicalized (A < B) and
// deduplicated, and returned sorted by (A, B).
func FindOverlaps(reads []dna.Read, subsets int, cfg Config) ([]Record, error) {
	return FindOverlapsCtx(nil, reads, subsets, cfg)
}

// FindOverlapsCtx is FindOverlaps bounded by ctx: a cancel abandons the
// sweep at the next query boundary in every worker (the workers keep
// draining the job channel so the feeder never blocks) and returns the
// context's cause. A nil ctx never cancels.
func FindOverlapsCtx(ctx context.Context, reads []dna.Read, subsets int, cfg Config) ([]Record, error) {
	if err := validate(cfg, subsets); err != nil {
		return nil, err
	}
	if cfg.Engine == EngineSpGEMM {
		recs, _, err := findOverlapsSpmat(ctx, reads, subsets, cfg, false)
		return recs, err
	}
	recs, _, err := findOverlapsProbe(ctx, reads, subsets, cfg, false)
	return recs, err
}

// CountCandidates runs only the candidate-generation half of the overlap
// stage — seed sampling, index/matrix build, repeat masking, hit
// accumulation with modal-diagonal consensus, and the MinKmerHits filter;
// everything up to but excluding alignment verification — and returns the
// number of candidate pairs the configured engine would verify. All
// engines produce the same total for the same configuration; the
// overlapbench harness times this to compare candidate-generation
// throughput in isolation.
func CountCandidates(reads []dna.Read, subsets int, cfg Config) (int64, error) {
	if err := validate(cfg, subsets); err != nil {
		return 0, err
	}
	if cfg.Engine == EngineSpGEMM {
		_, n, err := findOverlapsSpmat(nil, reads, subsets, cfg, true)
		return n, err
	}
	_, n, err := findOverlapsProbe(nil, reads, subsets, cfg, true)
	return n, err
}

// splitSubsets assigns reads to contiguous subsets, returning per-subset
// global-id and sequence slices (shared by the query side of the pair
// jobs and by the index/matrix builders of both engines).
func splitSubsets(reads []dna.Read, subsets int) (subIDs [][]int32, subSeqs [][][]byte) {
	bounds := make([]int, subsets+1)
	for i := 0; i <= subsets; i++ {
		bounds[i] = i * len(reads) / subsets
	}
	subIDs = make([][]int32, subsets)
	subSeqs = make([][][]byte, subsets)
	for s := 0; s < subsets; s++ {
		n := bounds[s+1] - bounds[s]
		ids := make([]int32, n)
		seqs := make([][]byte, n)
		for i := 0; i < n; i++ {
			ids[i] = int32(bounds[s] + i)
			seqs[i] = reads[bounds[s]+i].Seq
		}
		subIDs[s], subSeqs[s] = ids, seqs
	}
	return subIDs, subSeqs
}

// findOverlapsProbe is the seed-index engine: one index per reference
// subset, queries probe it per sampled k-mer. countOnly skips alignment
// verification and returns only the surviving-candidate total.
func findOverlapsProbe(ctx context.Context, reads []dna.Read, subsets int, cfg Config, countOnly bool) ([]Record, int64, error) {
	gate := par.GateFor(ctx)
	// Each subset-pair job indexes/scans a whole subset — heavy enough
	// that any second job justifies a second worker (grain 1). The
	// governor also caps explicit counts at GOMAXPROCS.
	workers := par.Workers(cfg.Workers, subsets*(subsets+1)/2, 1)

	subIDs, subSeqs := splitSubsets(reads, subsets)

	// Build one index per subset (reused across pair jobs).
	indexes := make([]refIndex, subsets)
	var iwg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s < subsets; s++ {
		iwg.Add(1)
		go func(s int) {
			defer iwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if gate.Stopped() {
				return
			}
			indexes[s] = buildRefIndex(subSeqs[s], subIDs[s], cfg)
		}(s)
	}
	iwg.Wait()
	// A skipped index build leaves a nil index the pair jobs would probe.
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}

	type pair struct{ q, r int }
	jobs := make([]pair, 0, subsets*(subsets+1)/2)
	for i := 0; i < subsets; i++ {
		for j := i; j < subsets; j++ {
			jobs = append(jobs, pair{i, j})
		}
	}

	var candTotal int64
	results := make([][]Record, len(jobs))
	var wg sync.WaitGroup
	jobCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := new(scratch) // worker-owned; never shared
			sc.countOnly = countOnly
			for jid := range jobCh {
				if gate.Stopped() {
					continue // keep draining so the feeder never blocks
				}
				j := jobs[jid]
				recs := alignQueriesGate(subIDs[j.q], subSeqs[j.q], indexes[j.r], cfg, sc, gate)
				out := make([]Record, len(recs))
				copy(out, recs)
				results[jid] = out
			}
			atomic.AddInt64(&candTotal, sc.candTotal)
		}()
	}
	for jid := range jobs {
		jobCh <- jid
	}
	close(jobCh)
	wg.Wait()
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}

	return mergeRecords(results), candTotal, nil
}

// validate checks the configuration shared by the local and distributed
// drivers.
func validate(cfg Config, subsets int) error {
	if cfg.K <= 0 || cfg.K > dna.MaxK {
		return fmt.Errorf("overlap: k=%d out of range", cfg.K)
	}
	if cfg.Indexing > IndexSuffixArray {
		return fmt.Errorf("overlap: unknown indexing mode %d", cfg.Indexing)
	}
	if cfg.Engine > EngineSpGEMM {
		return fmt.Errorf("overlap: unknown engine %d", cfg.Engine)
	}
	if subsets <= 0 {
		return fmt.Errorf("overlap: %d subsets", subsets)
	}
	return nil
}

// alignQueries aligns the given query reads against the reference index,
// returning canonicalized records. The returned slice is staged in the
// scratch and is only valid until the scratch's next job: callers that
// retain it must copy.
func alignQueries(queryIDs []int32, querySeqs [][]byte, ref refIndex, cfg Config, sc *scratch) []Record {
	return alignQueriesGate(queryIDs, querySeqs, ref, cfg, sc, nil)
}

// alignQueriesGate is the gate-aware core: the gate is polled once per
// query (a query's seed scan + alignments is the natural grain). A stopped
// gate returns the partial staging, which the ctx-taking caller discards.
func alignQueriesGate(queryIDs []int32, querySeqs [][]byte, ref refIndex, cfg Config, sc *scratch, gate *par.Gate) []Record {
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	sc.reset(ref.numReads())
	sc.records = sc.records[:0]
	for qi2, qi := range queryIDs {
		if gate.Stopped() {
			return sc.records
		}
		qseq := querySeqs[qi2]
		sc.nextQuery()
		forEachSeed(sc, qseq, cfg, func(km dna.Kmer, off int) {
			hits, masked := ref.seedHits(km, cfg.MaxOccur, sc)
			if masked {
				return // repeat-masked seed
			}
			for _, h := range hits {
				if ref.readID(h.read) == qi {
					continue
				}
				c := &sc.cands[h.read]
				if c.gen != sc.gen {
					c.gen = sc.gen
					c.hits = 0
					c.diags = c.diags[:0]
					sc.touched = append(sc.touched, h.read)
				}
				c.hits++
				// diag: offset of reference read start in query coords.
				d := int32(off) - h.off
				voted := false
				for i := range c.diags {
					if c.diags[i].d == d {
						c.diags[i].n++
						voted = true
						break
					}
				}
				if !voted {
					c.diags = append(c.diags, diagVote{d: d, n: 1})
				}
			}
		})
		for _, local := range sc.touched {
			c := &sc.cands[local]
			if c.hits < int32(cfg.MinKmerHits) {
				continue
			}
			// Only emit canonical direction to halve the work; the pair
			// (g, q) will not be separately attempted because dedup is on
			// canonical (A,B) anyway, and alignment is symmetric.
			// Modal diagonal, ties broken toward the smaller diagonal.
			var diag int32
			best := int32(-1)
			for _, v := range c.diags {
				if v.n > best || (v.n == best && v.d < diag) {
					best, diag = v.n, v.d
				}
			}
			if sc.countOnly {
				sc.candTotal++
				continue
			}
			g := ref.readID(local)
			ov, ok := sc.align.OverlapOnDiagonal(qseq, ref.readSeq(local), int(diag), cfg.Align)
			if !ok {
				continue
			}
			rec := Record{A: qi, B: g, Kind: ov.Kind, Len: int32(ov.Length), Identity: float32(ov.Identity), Diag: int32(ov.Diag)}
			if rec.A > rec.B {
				rec = rec.Flip()
			}
			sc.records = append(sc.records, rec)
		}
	}
	return sc.records
}

// Flip returns the record with A and B exchanged and the geometry
// re-expressed from the new A's point of view.
func (r Record) Flip() Record {
	f := Record{A: r.B, B: r.A, Len: r.Len, Identity: r.Identity, Diag: -r.Diag}
	switch r.Kind {
	case align.KindSuffixPrefix:
		f.Kind = align.KindPrefixSuffix
	case align.KindPrefixSuffix:
		f.Kind = align.KindSuffixPrefix
	case align.KindAContainsB:
		f.Kind = align.KindBContainsA
	case align.KindBContainsA:
		f.Kind = align.KindAContainsB
	default:
		f.Kind = r.Kind
	}
	return f
}

// BuildGraph constructs the overlap graph G0 from the records: one node
// per read, one edge per overlap, weighted by alignment length
// (paper §II.C).
func BuildGraph(numReads int, records []Record) (*graph.Graph, error) {
	return BuildGraphPar(numReads, records, 0)
}

// BuildGraphPar is BuildGraph with an explicit worker count for the CSR
// edge merge (<= 0 means GOMAXPROCS). Output is identical at any count.
func BuildGraphPar(numReads int, records []Record, workers int) (*graph.Graph, error) {
	b := graph.NewBuilder(numReads)
	for _, r := range records {
		if err := b.AddEdge(int(r.A), int(r.B), int64(r.Len)); err != nil {
			return nil, err
		}
	}
	return b.BuildPar(workers), nil
}

// BuildGraphParCtx is BuildGraphPar bounded by ctx: the CSR edge merge
// bails at its next pipeline-stage or chunk boundary on cancel and the
// context's cause is returned. A nil ctx never cancels.
func BuildGraphParCtx(ctx context.Context, numReads int, records []Record, workers int) (*graph.Graph, error) {
	b := graph.NewBuilder(numReads)
	for _, r := range records {
		if err := b.AddEdge(int(r.A), int(r.B), int64(r.Len)); err != nil {
			return nil, err
		}
	}
	return b.BuildParCtx(ctx, workers)
}
