// Package overlap implements the Focus parallel read alignment stage
// (paper §II.B): read subsets are paired, each reference subset is indexed
// by a suffix array, query reads are decomposed into k-mers, reference
// reads collecting enough k-mer hits are aligned with banded
// Needleman–Wunsch, and accepted overlaps are recorded as the edge list of
// the overlap graph G0.
package overlap

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"focus/internal/align"
	"focus/internal/dna"
	"focus/internal/graph"
	"focus/internal/suffixarray"
)

// Record is one accepted overlap between reads A and B (indices into the
// preprocessed read set). For Kind == SuffixPrefix, A precedes B; for
// PrefixSuffix, B precedes A; containment kinds mark redundant reads.
type Record struct {
	A, B     int32
	Kind     align.Kind
	Len      int32
	Identity float32
	Diag     int32 // offset of B's start in A coordinates
}

// Config controls overlap detection.
type Config struct {
	K           int // seed k-mer length
	Step        int // distance between sampled query k-mers (1 = every k-mer)
	MinKmerHits int // hits a reference read needs before alignment is tried
	MaxOccur    int // ignore k-mers occurring more often in a subset (repeat masking); <=0 = unlimited
	Align       align.Config
	Workers     int // concurrent subset-pair jobs; <=0 = GOMAXPROCS
	// Seeding selects the query sampling strategy; SeedMinimizer uses
	// (MinimizerW, K)-minimizers instead of every Step-th k-mer.
	Seeding    Seeding
	MinimizerW int // minimizer window in k-mers (default 8)
}

// DefaultConfig returns a configuration tuned for 100 bp reads, with the
// paper's acceptance thresholds (50 bp, 90% identity).
func DefaultConfig() Config {
	return Config{
		K:           16,
		Step:        4,
		MinKmerHits: 2,
		MaxOccur:    64,
		Align:       align.DefaultConfig(),
		Workers:     0,
	}
}

// subsetIndex is a suffix-array index over the concatenation of one read
// subset, with '#' separators so matches cannot span reads.
type subsetIndex struct {
	sa *suffixarray.Array
	// starts[i] is the offset of read i (subset-local) in the text;
	// reads[i] is its global read index.
	starts []int
	reads  []int32
}

func buildIndex(readSeqs [][]byte, global []int32) *subsetIndex {
	total := 0
	for _, s := range readSeqs {
		total += len(s) + 1
	}
	text := make([]byte, 0, total)
	idx := &subsetIndex{reads: global}
	for _, s := range readSeqs {
		idx.starts = append(idx.starts, len(text))
		text = append(text, s...)
		text = append(text, '#')
	}
	idx.sa = suffixarray.New(text)
	return idx
}

// locate maps a text position to (subset-local read, offset within read).
func (ix *subsetIndex) locate(pos int) (read, off int) {
	i := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > pos }) - 1
	return i, pos - ix.starts[i]
}

// FindOverlaps detects all pairwise overlaps in reads, processing
// subset pairs in parallel. Records are canonicalized (A < B) and
// deduplicated, and returned sorted by (A, B).
func FindOverlaps(reads []dna.Read, subsets int, cfg Config) ([]Record, error) {
	if err := validate(cfg, subsets); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Assign reads to contiguous subsets.
	bounds := make([]int, subsets+1)
	for i := 0; i <= subsets; i++ {
		bounds[i] = i * len(reads) / subsets
	}
	seqOf := func(i int32) []byte { return reads[i].Seq }

	// Build one index per subset (reused across pair jobs).
	indexes := make([]*subsetIndex, subsets)
	var iwg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s < subsets; s++ {
		iwg.Add(1)
		go func(s int) {
			defer iwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var seqs [][]byte
			var global []int32
			for i := bounds[s]; i < bounds[s+1]; i++ {
				seqs = append(seqs, reads[i].Seq)
				global = append(global, int32(i))
			}
			indexes[s] = buildIndex(seqs, global)
		}(s)
	}
	iwg.Wait()

	type pair struct{ q, r int }
	var jobs []pair
	for i := 0; i < subsets; i++ {
		for j := i; j < subsets; j++ {
			jobs = append(jobs, pair{i, j})
		}
	}

	results := make([][]Record, len(jobs))
	var wg sync.WaitGroup
	jobCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jid := range jobCh {
				j := jobs[jid]
				results[jid] = alignSubsetPair(bounds[j.q], bounds[j.q+1], indexes[j.r], seqOf, cfg)
			}
		}()
	}
	for jid := range jobs {
		jobCh <- jid
	}
	close(jobCh)
	wg.Wait()

	return mergeRecords(results), nil
}

// validate checks the configuration shared by the local and distributed
// drivers.
func validate(cfg Config, subsets int) error {
	if cfg.K <= 0 || cfg.K > dna.MaxK {
		return fmt.Errorf("overlap: k=%d out of range", cfg.K)
	}
	if subsets <= 0 {
		return fmt.Errorf("overlap: %d subsets", subsets)
	}
	return nil
}

// alignSubsetPair aligns every query read in [qLo,qHi) against the
// reference index, returning canonicalized records.
func alignSubsetPair(qLo, qHi int, ref *subsetIndex, seqOf func(int32) []byte, cfg Config) []Record {
	ids := make([]int32, 0, qHi-qLo)
	seqs := make([][]byte, 0, qHi-qLo)
	for q := qLo; q < qHi; q++ {
		ids = append(ids, int32(q))
		seqs = append(seqs, seqOf(int32(q)))
	}
	return alignQueries(ids, seqs, ref, seqOf, cfg)
}

// alignQueries aligns the given query reads against the reference index,
// returning canonicalized records. refSeq resolves a global read id from
// the index back to its sequence.
func alignQueries(queryIDs []int32, querySeqs [][]byte, ref *subsetIndex, refSeq func(int32) []byte, cfg Config) []Record {
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	var out []Record
	// votes per candidate reference read: modal diagonal estimation.
	type cand struct {
		hits int
		diag map[int]int
	}
	for qi2, qi := range queryIDs {
		qseq := querySeqs[qi2]
		cands := map[int32]*cand{}
		selected := seedOffsets(qseq, cfg)
		it := dna.NewKmerIter(qseq, cfg.K)
		next := 0
		for {
			km, off, ok := it.Next()
			if !ok {
				break
			}
			if selected != nil {
				if !selected[off] {
					continue
				}
			} else if off < next {
				continue
			}
			next = off + cfg.Step
			pat := []byte(km.String(cfg.K))
			maxHits := -1
			if cfg.MaxOccur > 0 {
				maxHits = cfg.MaxOccur + 1
			}
			hits := ref.sa.Lookup(pat, maxHits)
			if cfg.MaxOccur > 0 && len(hits) > cfg.MaxOccur {
				continue // repeat-masked seed
			}
			for _, pos := range hits {
				lr, loff := ref.locate(pos)
				g := ref.reads[lr]
				if g == qi {
					continue
				}
				c := cands[g]
				if c == nil {
					c = &cand{diag: map[int]int{}}
					cands[g] = c
				}
				c.hits++
				// diag: offset of reference read start in query coords.
				c.diag[off-loff]++
			}
		}
		for g, c := range cands {
			if c.hits < cfg.MinKmerHits {
				continue
			}
			// Only emit canonical direction to halve the work; the pair
			// (g, q) will not be separately attempted because dedup is on
			// canonical (A,B) anyway, and alignment is symmetric.
			diag := 0
			best := -1
			for d, n := range c.diag {
				if n > best || (n == best && d < diag) {
					best, diag = n, d
				}
			}
			ov, ok := align.OverlapOnDiagonal(qseq, refSeq(g), diag, cfg.Align)
			if !ok {
				continue
			}
			rec := Record{A: qi, B: g, Kind: ov.Kind, Len: int32(ov.Length), Identity: float32(ov.Identity), Diag: int32(ov.Diag)}
			if rec.A > rec.B {
				rec = rec.Flip()
			}
			out = append(out, rec)
		}
	}
	return out
}

// Flip returns the record with A and B exchanged and the geometry
// re-expressed from the new A's point of view.
func (r Record) Flip() Record {
	f := Record{A: r.B, B: r.A, Len: r.Len, Identity: r.Identity, Diag: -r.Diag}
	switch r.Kind {
	case align.KindSuffixPrefix:
		f.Kind = align.KindPrefixSuffix
	case align.KindPrefixSuffix:
		f.Kind = align.KindSuffixPrefix
	case align.KindAContainsB:
		f.Kind = align.KindBContainsA
	case align.KindBContainsA:
		f.Kind = align.KindAContainsB
	default:
		f.Kind = r.Kind
	}
	return f
}

// BuildGraph constructs the overlap graph G0 from the records: one node
// per read, one edge per overlap, weighted by alignment length
// (paper §II.C).
func BuildGraph(numReads int, records []Record) (*graph.Graph, error) {
	b := graph.NewBuilder(numReads)
	for _, r := range records {
		if err := b.AddEdge(int(r.A), int(r.B), int64(r.Len)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
