package overlap

import (
	"fmt"

	"focus/internal/align"
	"focus/internal/dist"
	"focus/internal/dna"
)

// Binary wire encodings (dist.Wire) for the distributed alignment
// protocol. Read sequences — the bulk of an AlignPair job — ship 2-bit
// packed (dna.Pack), ids delta-coded; see DESIGN.md §10 and the aliasing
// contract on dist.Wire (decoders copy, the frame buffer is pooled).

var (
	_ dist.Wire = (*AlignPairArgs)(nil)
	_ dist.Wire = (*AlignPairReply)(nil)
)

// boundLen rejects element counts larger than the bytes left in the frame
// (each element encodes to ≥1 byte): corrupt lengths become decode errors
// rather than huge allocations.
func boundLen(rd *dist.WireReader, n int) int {
	if n < 0 || n > rd.Remaining() {
		rd.Fail(fmt.Errorf("overlap: wire: %d elements with %d bytes left", n, rd.Remaining()))
		return 0
	}
	return n
}

func appendSeqs(dst []byte, seqs [][]byte) []byte {
	dst = dist.AppendLen(dst, len(seqs), seqs != nil)
	for _, s := range seqs {
		dst = dist.AppendBool(dst, s != nil)
		if s != nil {
			dst = dna.Pack(dst, s)
		}
	}
	return dst
}

func decodeSeqs(rd *dist.WireReader) [][]byte {
	n, present := rd.Len()
	if !present {
		return nil
	}
	seqs := make([][]byte, boundLen(rd, n))
	for i := range seqs {
		if !rd.Bool() {
			continue
		}
		rest := rd.Unread()
		seq, tail, err := dna.Unpack(nil, rest)
		if err != nil {
			rd.Fail(err)
			return seqs
		}
		rd.Skip(len(rest) - len(tail))
		if seq == nil {
			seq = []byte{}
		}
		seqs[i] = seq
	}
	return seqs
}

func appendAlignConfig(dst []byte, c *align.Config) []byte {
	dst = dist.AppendVarint(dst, int64(c.MinLength))
	dst = dist.AppendFloat64(dst, c.MinIdentity)
	dst = dist.AppendVarint(dst, int64(c.Band))
	dst = dist.AppendVarint(dst, int64(c.Scoring.Match))
	dst = dist.AppendVarint(dst, int64(c.Scoring.Mismatch))
	return dist.AppendVarint(dst, int64(c.Scoring.Gap))
}

func decodeAlignConfig(rd *dist.WireReader, c *align.Config) {
	c.MinLength = int(rd.Varint())
	c.MinIdentity = rd.Float64()
	c.Band = int(rd.Varint())
	c.Scoring.Match = int(rd.Varint())
	c.Scoring.Mismatch = int(rd.Varint())
	c.Scoring.Gap = int(rd.Varint())
}

func appendOverlapConfig(dst []byte, c *Config) []byte {
	dst = dist.AppendVarint(dst, int64(c.K))
	dst = dist.AppendVarint(dst, int64(c.Step))
	dst = dist.AppendVarint(dst, int64(c.MinKmerHits))
	dst = dist.AppendVarint(dst, int64(c.MaxOccur))
	dst = appendAlignConfig(dst, &c.Align)
	dst = dist.AppendVarint(dst, int64(c.Workers))
	dst = append(dst, byte(c.Seeding))
	dst = dist.AppendVarint(dst, int64(c.MinimizerW))
	dst = append(dst, byte(c.Indexing))
	dst = append(dst, byte(c.Engine))
	return dist.AppendVarint(dst, int64(c.RPCRetries))
}

func decodeOverlapConfig(rd *dist.WireReader, c *Config) {
	c.K = int(rd.Varint())
	c.Step = int(rd.Varint())
	c.MinKmerHits = int(rd.Varint())
	c.MaxOccur = int(rd.Varint())
	decodeAlignConfig(rd, &c.Align)
	c.Workers = int(rd.Varint())
	c.Seeding = Seeding(rd.Byte())
	c.MinimizerW = int(rd.Varint())
	c.Indexing = Indexing(rd.Byte())
	c.Engine = Engine(rd.Byte())
	c.RPCRetries = int(rd.Varint())
}

// AppendTo implements dist.Wire.
func (a *AlignPairArgs) AppendTo(dst []byte) []byte {
	dst = dist.AppendInt32sDelta(dst, a.RefIDs)
	dst = appendSeqs(dst, a.RefSeqs)
	dst = dist.AppendInt32sDelta(dst, a.QueryIDs)
	dst = appendSeqs(dst, a.QuerySeqs)
	return appendOverlapConfig(dst, &a.Cfg)
}

// DecodeFrom implements dist.Wire.
func (a *AlignPairArgs) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	a.RefIDs = rd.Int32sDelta()
	a.RefSeqs = decodeSeqs(&rd)
	a.QueryIDs = rd.Int32sDelta()
	a.QuerySeqs = decodeSeqs(&rd)
	decodeOverlapConfig(&rd, &a.Cfg)
	return rd.Finish()
}

// AppendTo implements dist.Wire. Records are delta-coded on A (the
// produced lists are sorted by query read) and B against A.
func (r *AlignPairReply) AppendTo(dst []byte) []byte {
	dst = dist.AppendLen(dst, len(r.Records), r.Records != nil)
	prevA := int64(0)
	for i := range r.Records {
		rec := &r.Records[i]
		dst = dist.AppendVarint(dst, int64(rec.A)-prevA)
		prevA = int64(rec.A)
		dst = dist.AppendVarint(dst, int64(rec.B)-int64(rec.A))
		dst = append(dst, byte(rec.Kind))
		dst = dist.AppendVarint(dst, int64(rec.Len))
		dst = dist.AppendFloat32(dst, rec.Identity)
		dst = dist.AppendVarint(dst, int64(rec.Diag))
	}
	return dst
}

// DecodeFrom implements dist.Wire.
func (r *AlignPairReply) DecodeFrom(src []byte) error {
	rd := dist.NewWireReader(src)
	n, present := rd.Len()
	if !present {
		r.Records = nil
		return rd.Finish()
	}
	r.Records = make([]Record, boundLen(&rd, n))
	prevA := int64(0)
	for i := range r.Records {
		rec := &r.Records[i]
		prevA += rd.Varint()
		rec.A = int32(prevA)
		rec.B = int32(prevA + rd.Varint())
		rec.Kind = align.Kind(rd.Byte())
		rec.Len = int32(rd.Varint())
		rec.Identity = rd.Float32()
		rec.Diag = int32(rd.Varint())
	}
	return rd.Finish()
}
