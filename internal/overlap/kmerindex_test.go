package overlap

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"focus/internal/dna"
	"focus/internal/spmat"
)

// rcReadSet builds a randomized read set with the geometries the overlap
// stage must classify: tiling overlaps, reverse-complement pairs and
// contained reads.
func rcReadSet(seed int64, genomeLen int) []dna.Read {
	rng := rand.New(rand.NewSource(seed))
	genome := randGenome(seed, genomeLen)
	reads := tilingReads(genome, 100, 40)
	// Reverse-complement half of the tiling reads (preprocessing adds RC
	// mates in the real pipeline, so both orientations co-occur).
	for i := range reads {
		if rng.Intn(2) == 0 {
			reads[i].Seq = dna.ReverseComplement(reads[i].Seq)
		}
	}
	// Contained reads: short fragments cut from random positions.
	for i := 0; i < len(reads)/4; i++ {
		pos := rng.Intn(genomeLen - 70)
		frag := append([]byte(nil), genome[pos:pos+60+rng.Intn(10)]...)
		if rng.Intn(2) == 0 {
			dna.ReverseComplementInPlace(frag)
		}
		reads = append(reads, dna.Read{ID: "frag", Seq: frag})
	}
	return reads
}

// TestIndexingEquivalence asserts the acceptance criterion: FindOverlaps
// returns byte-identical, sorted records across all three engines —
// suffix array, k-mer table, and the spmat SpGEMM engine (the latter at
// workers 1/2/8) — on randomized read sets (including reverse-complement
// pairs and containments), across subset counts and seeding modes.
func TestIndexingEquivalence(t *testing.T) {
	variants := []struct {
		name string
		set  func(*Config)
	}{
		{"kmer-table", func(c *Config) { c.Indexing = IndexKmerTable }},
		{"spmat-w1", func(c *Config) { c.Engine = EngineSpGEMM; c.Workers = 1 }},
		{"spmat-w2", func(c *Config) { c.Engine = EngineSpGEMM; c.Workers = 2 }},
		{"spmat-w8", func(c *Config) { c.Engine = EngineSpGEMM; c.Workers = 8 }},
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"minimizer", func(c *Config) { c.Seeding = SeedMinimizer }},
		{"maxoccur8", func(c *Config) { c.MaxOccur = 8 }},
		{"step1", func(c *Config) { c.Step = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(60); seed < 64; seed++ {
				reads := rcReadSet(seed, 1800)
				for _, subsets := range []int{1, 3} {
					cfg := testConfig()
					tc.mut(&cfg)
					cfg.Indexing = IndexSuffixArray
					want, err := FindOverlaps(reads, subsets, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(want) == 0 {
						t.Fatalf("seed=%d: no overlaps found at all", seed)
					}
					for _, v := range variants {
						vcfg := testConfig()
						tc.mut(&vcfg)
						v.set(&vcfg)
						got, err := FindOverlaps(reads, subsets, vcfg)
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(want) {
							t.Fatalf("seed=%d subsets=%d: %d records (%s) vs %d (suffix array)", seed, subsets, len(got), v.name, len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("seed=%d subsets=%d record %d: %+v (%s) vs %+v (suffix array)", seed, subsets, i, got[i], v.name, want[i])
							}
						}
						if !sort.SliceIsSorted(got, func(i, j int) bool {
							if got[i].A != got[j].A {
								return got[i].A < got[j].A
							}
							return got[i].B < got[j].B
						}) {
							t.Fatalf("seed=%d (%s): records not sorted", seed, v.name)
						}
					}
				}
			}
		})
	}
}

// spmatSeedHits adapts the pruned spmat transpose to probe-level
// queries so TestSeedHitsEquivalence can compare it against the seed
// indexes: dictionary binary search, postings from the CSC arrays,
// masking from the pruning bitmap (the cap was applied at build time).
func spmatSeedHits(ref *spmat.Transpose, km dna.Kmer) ([]seedHit, bool) {
	v := uint64(km)
	lo, hi := 0, len(ref.Keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ref.Keys[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ref.Keys) || ref.Keys[lo] != v {
		return nil, false
	}
	if ref.IsMasked(lo) {
		return nil, true
	}
	var hits []seedHit
	for p := ref.ColStart[lo]; p < ref.ColStart[lo+1]; p++ {
		hits = append(hits, seedHit{read: ref.Rows[p], off: ref.Pos[p]})
	}
	return hits, false
}

// TestSeedHitsEquivalence compares the seed structures of all three
// engines at the probe level: identical occurrence sets and identical
// repeat-mask decisions for every k-mer of the indexed reads, including
// reads containing Ns.
func TestSeedHitsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		k := 4 + rng.Intn(12)
		numReads := 1 + rng.Intn(12)
		seqs := make([][]byte, numReads)
		ids := make([]int32, numReads)
		for i := range seqs {
			n := k/2 + rng.Intn(60) // some reads shorter than k
			s := make([]byte, n)
			for j := range s {
				if rng.Intn(20) == 0 {
					s[j] = 'N' // exercise invalid-window skipping
				} else {
					s[j] = "ACGT"[rng.Intn(4)]
				}
			}
			seqs[i] = s
			ids[i] = int32(100 + i)
		}
		cfg := Config{K: k}
		kix := buildRefIndex(seqs, ids, cfg)
		cfg.Indexing = IndexSuffixArray
		six := buildRefIndex(seqs, ids, cfg)
		maxOccur := rng.Intn(4) // 0 = unlimited
		tix := spmat.BuildFromSeqs(seqs, k).Transpose(maxOccur, 1)
		sc1, sc2 := new(scratch), new(scratch)
		probe := func(km dna.Kmer) {
			h1, m1 := kix.seedHits(km, maxOccur, sc1)
			h2, m2 := six.seedHits(km, maxOccur, sc2)
			h3, m3 := spmatSeedHits(tix, km)
			if m1 != m2 || m1 != m3 {
				t.Fatalf("trial=%d k=%d km=%s: masked %v (kmer) vs %v (sa) vs %v (spmat)", trial, k, km.String(k), m1, m2, m3)
			}
			s1 := append([]seedHit(nil), h1...)
			s2 := append([]seedHit(nil), h2...)
			s3 := append([]seedHit(nil), h3...)
			less := func(s []seedHit) func(i, j int) bool {
				return func(i, j int) bool {
					if s[i].read != s[j].read {
						return s[i].read < s[j].read
					}
					return s[i].off < s[j].off
				}
			}
			sort.Slice(s1, less(s1))
			sort.Slice(s2, less(s2))
			sort.Slice(s3, less(s3))
			if len(s1) != len(s2) || len(s1) != len(s3) {
				t.Fatalf("trial=%d k=%d km=%s: %d hits (kmer) vs %d (sa) vs %d (spmat)", trial, k, km.String(k), len(s1), len(s2), len(s3))
			}
			for i := range s1 {
				if s1[i] != s2[i] || s1[i] != s3[i] {
					t.Fatalf("trial=%d km=%s hit %d: %+v vs %+v vs %+v", trial, km.String(k), i, s1[i], s2[i], s3[i])
				}
			}
		}
		for _, s := range seqs {
			it := dna.NewKmerIter(s, k)
			for {
				km, _, ok := it.Next()
				if !ok {
					break
				}
				probe(km)
			}
		}
		// Random probes too (mostly absent k-mers).
		for i := 0; i < 50; i++ {
			probe(dna.Kmer(rng.Uint64() & (1<<(2*uint(k)) - 1)))
		}
	}
}

// TestValidateRejectsUnknownIndexing covers the new config validation.
func TestValidateRejectsUnknownIndexing(t *testing.T) {
	cfg := testConfig()
	cfg.Indexing = Indexing(9)
	if _, err := FindOverlaps(rcReadSet(1, 500), 1, cfg); err == nil {
		t.Error("unknown indexing mode accepted")
	}
	if got := cfg.Indexing.String(); got != "Indexing(9)" {
		t.Errorf("String() = %q", got)
	}
	if IndexKmerTable.String() != "kmer-table" || IndexSuffixArray.String() != "suffix-array" {
		t.Error("mode names changed")
	}
}

// TestValidateRejectsUnknownEngine covers the engine config validation.
func TestValidateRejectsUnknownEngine(t *testing.T) {
	cfg := testConfig()
	cfg.Engine = Engine(9)
	if _, err := FindOverlaps(rcReadSet(1, 500), 1, cfg); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := CountCandidates(rcReadSet(1, 500), 1, cfg); err == nil {
		t.Error("CountCandidates accepted unknown engine")
	}
	if got := cfg.Engine.String(); got != "Engine(9)" {
		t.Errorf("String() = %q", got)
	}
	if EngineSeedIndex.String() != "seed-index" || EngineSpGEMM.String() != "spmat" {
		t.Error("engine names changed")
	}
}

// TestRepeatThresholdBoundary pins the shared occurrence-cap semantics
// (dna.RepeatMasked) at the boundary for every seed structure: a k-mer
// occurring exactly MaxOccur times is kept, one more occurrence masks
// it, and cap <= 0 never masks.
func TestRepeatThresholdBoundary(t *testing.T) {
	const cap = 3
	k := 4
	// "AAAA" occurs exactly cap times, "CCCC" cap+1 times, spread over
	// unique-tail reads so each occurrence is a distinct posting.
	seqs := [][]byte{
		[]byte("AAAAGGTT"), []byte("AAAATTGG"), []byte("AAAAGTGT"),
		[]byte("CCCCGGTT"), []byte("CCCCTTGG"), []byte("CCCCGTGT"), []byte("CCCCTGTG"),
	}
	ids := make([]int32, len(seqs))
	for i := range ids {
		ids[i] = int32(i)
	}
	aaaa, _ := dna.PackKmer([]byte("AAAA"), k)
	cccc, _ := dna.PackKmer([]byte("CCCC"), k)

	if dna.RepeatMasked(cap, cap) || !dna.RepeatMasked(cap+1, cap) || dna.RepeatMasked(1<<20, 0) || dna.RepeatMasked(1<<20, -1) {
		t.Fatal("dna.RepeatMasked boundary semantics changed")
	}

	probes := map[string]func(km dna.Kmer, maxOccur int) (int, bool){}
	kix := buildRefIndex(seqs, ids, Config{K: k})
	six := buildRefIndex(seqs, ids, Config{K: k, Indexing: IndexSuffixArray})
	sc := new(scratch)
	probes["kmer-table"] = func(km dna.Kmer, mo int) (int, bool) {
		h, m := kix.seedHits(km, mo, sc)
		return len(h), m
	}
	probes["suffix-array"] = func(km dna.Kmer, mo int) (int, bool) {
		h, m := six.seedHits(km, mo, sc)
		return len(h), m
	}
	probes["spmat"] = func(km dna.Kmer, mo int) (int, bool) {
		ref := spmat.BuildFromSeqs(seqs, k).Transpose(mo, 1)
		h, m := spmatSeedHits(ref, km)
		return len(h), m
	}
	names := make([]string, 0, len(probes))
	for name := range probes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		probe := probes[name]
		if n, m := probe(aaaa, cap); m || n != cap {
			t.Errorf("%s: exactly-at-threshold k-mer dropped (hits=%d masked=%v)", name, n, m)
		}
		if _, m := probe(cccc, cap); !m {
			t.Errorf("%s: over-threshold k-mer kept", name)
		}
		if n, m := probe(cccc, 0); m || n != cap+1 {
			t.Errorf("%s: cap=0 masked (hits=%d masked=%v)", name, n, m)
		}
	}
	if !strings.Contains(EngineSpGEMM.String(), "spmat") {
		t.Error("engine naming drifted") // keeps the CLI flag table honest
	}
}
