package overlap

import (
	"math/rand"
	"sort"
	"testing"

	"focus/internal/dna"
)

// rcReadSet builds a randomized read set with the geometries the overlap
// stage must classify: tiling overlaps, reverse-complement pairs and
// contained reads.
func rcReadSet(seed int64, genomeLen int) []dna.Read {
	rng := rand.New(rand.NewSource(seed))
	genome := randGenome(seed, genomeLen)
	reads := tilingReads(genome, 100, 40)
	// Reverse-complement half of the tiling reads (preprocessing adds RC
	// mates in the real pipeline, so both orientations co-occur).
	for i := range reads {
		if rng.Intn(2) == 0 {
			reads[i].Seq = dna.ReverseComplement(reads[i].Seq)
		}
	}
	// Contained reads: short fragments cut from random positions.
	for i := 0; i < len(reads)/4; i++ {
		pos := rng.Intn(genomeLen - 70)
		frag := append([]byte(nil), genome[pos:pos+60+rng.Intn(10)]...)
		if rng.Intn(2) == 0 {
			dna.ReverseComplementInPlace(frag)
		}
		reads = append(reads, dna.Read{ID: "frag", Seq: frag})
	}
	return reads
}

// TestIndexingEquivalence asserts the acceptance criterion: FindOverlaps
// returns byte-identical, sorted records under IndexSuffixArray and
// IndexKmerTable on randomized read sets (including reverse-complement
// pairs and containments), across subset counts and seeding modes.
func TestIndexingEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(*Config) {}},
		{"minimizer", func(c *Config) { c.Seeding = SeedMinimizer }},
		{"maxoccur8", func(c *Config) { c.MaxOccur = 8 }},
		{"step1", func(c *Config) { c.Step = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(60); seed < 64; seed++ {
				reads := rcReadSet(seed, 1800)
				for _, subsets := range []int{1, 3} {
					cfg := testConfig()
					tc.mut(&cfg)
					cfg.Indexing = IndexSuffixArray
					want, err := FindOverlaps(reads, subsets, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Indexing = IndexKmerTable
					got, err := FindOverlaps(reads, subsets, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("seed=%d subsets=%d: %d records (kmer) vs %d (suffix array)", seed, subsets, len(got), len(want))
					}
					if len(want) == 0 {
						t.Fatalf("seed=%d: no overlaps found at all", seed)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed=%d subsets=%d record %d: %+v (kmer) vs %+v (suffix array)", seed, subsets, i, got[i], want[i])
						}
					}
					if !sort.SliceIsSorted(got, func(i, j int) bool {
						if got[i].A != got[j].A {
							return got[i].A < got[j].A
						}
						return got[i].B < got[j].B
					}) {
						t.Fatalf("seed=%d: records not sorted", seed)
					}
				}
			}
		})
	}
}

// TestSeedHitsEquivalence compares the two indexes at the probe level:
// identical occurrence sets and identical repeat-mask decisions for every
// k-mer of the indexed reads, including reads containing Ns.
func TestSeedHitsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		k := 4 + rng.Intn(12)
		numReads := 1 + rng.Intn(12)
		seqs := make([][]byte, numReads)
		ids := make([]int32, numReads)
		for i := range seqs {
			n := k/2 + rng.Intn(60) // some reads shorter than k
			s := make([]byte, n)
			for j := range s {
				if rng.Intn(20) == 0 {
					s[j] = 'N' // exercise invalid-window skipping
				} else {
					s[j] = "ACGT"[rng.Intn(4)]
				}
			}
			seqs[i] = s
			ids[i] = int32(100 + i)
		}
		cfg := Config{K: k}
		kix := buildRefIndex(seqs, ids, cfg)
		cfg.Indexing = IndexSuffixArray
		six := buildRefIndex(seqs, ids, cfg)
		maxOccur := rng.Intn(4) // 0 = unlimited
		sc1, sc2 := new(scratch), new(scratch)
		probe := func(km dna.Kmer) {
			h1, m1 := kix.seedHits(km, maxOccur, sc1)
			h2, m2 := six.seedHits(km, maxOccur, sc2)
			if m1 != m2 {
				t.Fatalf("trial=%d k=%d km=%s: masked %v (kmer) vs %v (sa)", trial, k, km.String(k), m1, m2)
			}
			s1 := append([]seedHit(nil), h1...)
			s2 := append([]seedHit(nil), h2...)
			less := func(s []seedHit) func(i, j int) bool {
				return func(i, j int) bool {
					if s[i].read != s[j].read {
						return s[i].read < s[j].read
					}
					return s[i].off < s[j].off
				}
			}
			sort.Slice(s1, less(s1))
			sort.Slice(s2, less(s2))
			if len(s1) != len(s2) {
				t.Fatalf("trial=%d k=%d km=%s: %d hits (kmer) vs %d (sa)", trial, k, km.String(k), len(s1), len(s2))
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("trial=%d km=%s hit %d: %+v vs %+v", trial, km.String(k), i, s1[i], s2[i])
				}
			}
		}
		for _, s := range seqs {
			it := dna.NewKmerIter(s, k)
			for {
				km, _, ok := it.Next()
				if !ok {
					break
				}
				probe(km)
			}
		}
		// Random probes too (mostly absent k-mers).
		for i := 0; i < 50; i++ {
			probe(dna.Kmer(rng.Uint64() & (1<<(2*uint(k)) - 1)))
		}
	}
}

// TestValidateRejectsUnknownIndexing covers the new config validation.
func TestValidateRejectsUnknownIndexing(t *testing.T) {
	cfg := testConfig()
	cfg.Indexing = Indexing(9)
	if _, err := FindOverlaps(rcReadSet(1, 500), 1, cfg); err == nil {
		t.Error("unknown indexing mode accepted")
	}
	if got := cfg.Indexing.String(); got != "Indexing(9)" {
		t.Errorf("String() = %q", got)
	}
	if IndexKmerTable.String() != "kmer-table" || IndexSuffixArray.String() != "suffix-array" {
		t.Error("mode names changed")
	}
}
