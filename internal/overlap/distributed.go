package overlap

import (
	"context"
	"errors"
	"log"
	"sort"
	"sync"

	"focus/internal/align"
	"focus/internal/dist"
	"focus/internal/dna"
)

// The paper distributes read alignment itself: "each pair of read subsets
// can be sent to a different processor for independent analysis" (§II.B).
// This file provides that mode: subset-pair jobs are executed by RPC
// workers (the same pool that later runs the distributed graph
// algorithms) instead of local goroutines.

// AlignPairArgs ships one subset-pair job to a worker: the reference
// subset to index and the query subset to decompose into k-mers. IDs are
// the reads' global indices so returned records need no translation.
type AlignPairArgs struct {
	RefIDs    []int32
	RefSeqs   [][]byte
	QueryIDs  []int32
	QuerySeqs [][]byte
	Cfg       Config
}

// AlignPairReply returns the accepted overlap records of one job.
type AlignPairReply struct{ Records []Record }

// scratchPool recycles worker scratches across AlignPair RPC calls:
// net/rpc may serve requests concurrently, so the pool (rather than a
// per-service field) keeps scratch ownership single-goroutine while still
// amortizing buffers across jobs.
var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// AlignPair executes one job (the worker half; assembly.Service exposes
// it over RPC).
func AlignPair(args *AlignPairArgs) []Record {
	if args.Cfg.Engine == EngineSpGEMM {
		return alignPairSpmat(args)
	}
	ref := buildRefIndex(args.RefSeqs, args.RefIDs, args.Cfg)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	recs := alignQueries(args.QueryIDs, args.QuerySeqs, ref, args.Cfg, sc)
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}

// FindOverlapsDistributed is FindOverlaps with the subset-pair jobs
// round-robined over the worker pool. It produces exactly the records of
// the local version for the same subset count.
func FindOverlapsDistributed(pool *dist.Pool, reads []dna.Read, subsets int, cfg Config) ([]Record, error) {
	return FindOverlapsDistributedCtx(nil, pool, reads, subsets, cfg)
}

// FindOverlapsDistributedCtx is FindOverlapsDistributed bounded by ctx:
// a cancel severs the in-flight RPCs and returns the context's cause. A
// nil ctx never cancels.
func FindOverlapsDistributedCtx(ctx context.Context, pool *dist.Pool, reads []dna.Read, subsets int, cfg Config) ([]Record, error) {
	if err := validate(cfg, subsets); err != nil {
		return nil, err
	}
	bounds := make([]int, subsets+1)
	for i := 0; i <= subsets; i++ {
		bounds[i] = i * len(reads) / subsets
	}
	slice := func(s int) ([]int32, [][]byte) {
		ids := make([]int32, 0, bounds[s+1]-bounds[s])
		seqs := make([][]byte, 0, bounds[s+1]-bounds[s])
		for i := bounds[s]; i < bounds[s+1]; i++ {
			ids = append(ids, int32(i))
			seqs = append(seqs, reads[i].Seq)
		}
		return ids, seqs
	}
	type pair struct{ q, r int }
	var jobs []pair
	for i := 0; i < subsets; i++ {
		for j := i; j < subsets; j++ {
			jobs = append(jobs, pair{i, j})
		}
	}
	replies := make([]interface{}, len(jobs))
	for i := range replies {
		replies[i] = &AlignPairReply{}
	}
	_, err := pool.ParallelCallsRetryCtx(ctx, len(jobs), "AlignPair", func(t int) interface{} {
		qIDs, qSeqs := slice(jobs[t].q)
		rIDs, rSeqs := slice(jobs[t].r)
		return &AlignPairArgs{RefIDs: rIDs, RefSeqs: rSeqs, QueryIDs: qIDs, QuerySeqs: qSeqs, Cfg: cfg}
	}, replies, cfg.RPCRetries)
	if err != nil {
		// A canceled run must surface the cancellation, not degrade: the
		// severed RPCs classify as transport errors and would otherwise
		// trip the no-healthy-workers fallback below.
		if ctx != nil && ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		// Graceful degradation: with no healthy workers left the jobs
		// still fit on the master, which runs the identical alignment
		// code with local goroutines.
		if errors.Is(err, dist.ErrNoWorkers) || pool.NumHealthy() == 0 {
			log.Printf("overlap: distributed alignment: no healthy workers (%v); falling back to local execution", err)
			return FindOverlapsCtx(ctx, reads, subsets, cfg)
		}
		return nil, err
	}
	var lists [][]Record
	for _, r := range replies {
		lists = append(lists, r.(*AlignPairReply).Records)
	}
	return mergeRecords(lists), nil
}

// recKey identifies one overlap relation: a read pair can legitimately
// carry several records of different Kind (e.g. a suffix-prefix overlap
// and a containment), so Kind is part of the identity. Keying on (A, B)
// alone dropped all but the first Kind seen — which Kind survived depended
// on job order.
type recKey struct {
	a, b int32
	kind align.Kind
}

// moreCredible reports whether r should replace cur among records of the
// same (A, B, Kind): higher identity wins, then longer overlap, then lower
// diagonal — a deterministic total order independent of arrival order.
func moreCredible(r, cur Record) bool {
	if r.Identity != cur.Identity {
		return r.Identity > cur.Identity
	}
	if r.Len != cur.Len {
		return r.Len > cur.Len
	}
	return r.Diag < cur.Diag
}

// mergeRecords canonicalizes, deduplicates and sorts per-job record
// lists. Duplicates of the same (A, B, Kind) — cross-subset pairs are
// aligned by more than one job — collapse to the most credible record.
func mergeRecords(lists [][]Record) []Record {
	best := make(map[recKey]int)
	var out []Record
	for _, rs := range lists {
		for _, rec := range rs {
			key := recKey{rec.A, rec.B, rec.Kind}
			if i, dup := best[key]; dup {
				if moreCredible(rec, out[i]) {
					out[i] = rec
				}
				continue
			}
			best[key] = len(out)
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Diag < out[j].Diag
	})
	return out
}
