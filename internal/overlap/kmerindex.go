package overlap

import (
	"sort"

	"focus/internal/dna"
	"focus/internal/suffixarray"
)

// seedHit is one occurrence of a seed k-mer in a reference subset:
// the subset-local read index and the offset of the k-mer within it.
type seedHit struct {
	read int32
	off  int32
}

// refIndex is the seed-lookup structure built over one reference read
// subset. Two implementations exist: the packed k-mer table (default,
// IndexKmerTable) and the Larsson–Sadakane suffix array
// (IndexSuffixArray). Both report exactly the same occurrence sets, so
// FindOverlaps output is index-independent (asserted by
// TestIndexingEquivalence).
type refIndex interface {
	numReads() int
	readID(local int32) int32 // global read id
	readSeq(local int32) []byte
	// seedHits returns every occurrence of km in the subset. When
	// maxOccur > 0 and the k-mer occurs more often than that, it returns
	// masked=true and no hits (repeat masking). The returned slice is
	// only valid until the next seedHits call on the same scratch.
	seedHits(km dna.Kmer, maxOccur int, sc *scratch) (hits []seedHit, masked bool)
}

// buildRefIndex builds the configured index over a read subset. The seq
// slices are retained (not copied); global[i] is the global read id of
// subset-local read i.
func buildRefIndex(seqs [][]byte, global []int32, cfg Config) refIndex {
	if cfg.Indexing == IndexSuffixArray {
		return buildSAIndex(seqs, global, cfg.K)
	}
	return buildKmerIndex(seqs, global, cfg.K)
}

// kmerIndex is a sorted packed k-mer table: every k-mer of the subset is
// enumerated once at build time into (kmer, read, offset) entries sorted
// by the 2-bit packed k-mer value. Probes are a single binary search over
// a contiguous []uint64 (no byte comparisons, no per-hit position
// decoding), repeat masking is a postings-length check, and lookups
// allocate nothing.
type kmerIndex struct {
	k     int
	reads []int32
	seqs  [][]byte
	keys  []uint64  // distinct packed k-mers, sorted ascending
	start []int32   // len(keys)+1; postings of keys[i] at posts[start[i]:start[i+1]]
	posts []seedHit // occurrences grouped by k-mer, (read, off)-sorted within a group
}

type kmerEntry struct {
	key uint64
	hit seedHit
}

func buildKmerIndex(seqs [][]byte, global []int32, k int) *kmerIndex {
	ix := &kmerIndex{k: k, reads: global, seqs: seqs}
	// Upper bound on the entry count (exact for N-free reads).
	bound := 0
	for _, s := range seqs {
		if n := len(s) - k + 1; n > 0 {
			bound += n
		}
	}
	entries := make([]kmerEntry, 0, bound)
	for r, s := range seqs {
		r32 := int32(r)
		dna.ForEachKmer(s, k, func(km dna.Kmer, off int) {
			entries = append(entries, kmerEntry{key: uint64(km), hit: seedHit{read: r32, off: int32(off)}})
		})
	}
	// LSD radix sort on the packed key: stable, so within equal k-mers the
	// append order (read asc, offset asc) is preserved. Only ceil(2k/8)
	// byte passes are needed since a k-mer occupies the low 2k bits; this
	// is several times faster than comparison sorting at index-build time.
	entries = radixSortByKey(entries, k)
	// Compact into distinct keys + grouped postings (exact capacities).
	distinct := 0
	for i := range entries {
		if i == 0 || entries[i].key != entries[i-1].key {
			distinct++
		}
	}
	ix.keys = make([]uint64, 0, distinct)
	ix.start = make([]int32, 0, distinct+1)
	ix.posts = make([]seedHit, len(entries))
	for i := range entries {
		if i == 0 || entries[i].key != entries[i-1].key {
			ix.keys = append(ix.keys, entries[i].key)
			ix.start = append(ix.start, int32(i))
		}
		ix.posts[i] = entries[i].hit
	}
	ix.start = append(ix.start, int32(len(entries)))
	return ix
}

// radixSortByKey sorts entries ascending by key with a stable LSD radix
// sort over the low 2k bits (8-bit digits). It returns the sorted slice,
// which may be the scratch buffer rather than the input.
func radixSortByKey(entries []kmerEntry, k int) []kmerEntry {
	if len(entries) < 2 {
		return entries
	}
	passes := (2*k + 7) / 8
	buf := make([]kmerEntry, len(entries))
	src, dst := entries, buf
	for p := 0; p < passes; p++ {
		shift := uint(8 * p)
		var count [256]int
		for i := range src {
			count[(src[i].key>>shift)&0xFF]++
		}
		if count[src[0].key>>shift&0xFF] == len(src) {
			continue // all entries share this digit: pass is a no-op
		}
		sum := 0
		for d := range count {
			count[d], sum = sum, count[d]+sum
		}
		for i := range src {
			d := (src[i].key >> shift) & 0xFF
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	return src
}

func (ix *kmerIndex) numReads() int              { return len(ix.reads) }
func (ix *kmerIndex) readID(local int32) int32   { return ix.reads[local] }
func (ix *kmerIndex) readSeq(local int32) []byte { return ix.seqs[local] }

func (ix *kmerIndex) seedHits(km dna.Kmer, maxOccur int, _ *scratch) ([]seedHit, bool) {
	v := uint64(km)
	// Hand-rolled binary search: no closure, provably allocation-free.
	lo, hi := 0, len(ix.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.keys[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ix.keys) || ix.keys[lo] != v {
		return nil, false
	}
	a, b := ix.start[lo], ix.start[lo+1]
	if dna.RepeatMasked(int(b-a), maxOccur) {
		return nil, true
	}
	return ix.posts[a:b], false
}

// saIndex is the original suffix-array index over the concatenation of
// one read subset, with '#' separators so matches cannot span reads. Kept
// selectable (IndexSuffixArray) so the Larsson–Sadakane code stays
// exercised and as the reference for the cross-index equivalence tests.
type saIndex struct {
	sa *suffixarray.Array
	k  int
	// starts[i] is the offset of read i (subset-local) in the text.
	starts []int
	reads  []int32
	seqs   [][]byte
}

func buildSAIndex(seqs [][]byte, global []int32, k int) *saIndex {
	total := 0
	for _, s := range seqs {
		total += len(s) + 1
	}
	text := make([]byte, 0, total)
	ix := &saIndex{k: k, reads: global, seqs: seqs, starts: make([]int, 0, len(seqs))}
	for _, s := range seqs {
		ix.starts = append(ix.starts, len(text))
		text = append(text, s...)
		text = append(text, '#')
	}
	ix.sa = suffixarray.New(text)
	return ix
}

func (ix *saIndex) numReads() int              { return len(ix.reads) }
func (ix *saIndex) readID(local int32) int32   { return ix.reads[local] }
func (ix *saIndex) readSeq(local int32) []byte { return ix.seqs[local] }

// locate maps a text position to (subset-local read, offset within read).
func (ix *saIndex) locate(pos int) (read, off int) {
	i := sort.Search(len(ix.starts), func(i int) bool { return ix.starts[i] > pos }) - 1
	return i, pos - ix.starts[i]
}

func (ix *saIndex) seedHits(km dna.Kmer, maxOccur int, sc *scratch) ([]seedHit, bool) {
	sc.pat = km.AppendBytes(sc.pat[:0], ix.k)
	maxHits := -1
	if maxOccur > 0 {
		maxHits = maxOccur + 1
	}
	positions := ix.sa.Lookup(sc.pat, maxHits)
	if dna.RepeatMasked(len(positions), maxOccur) {
		return nil, true
	}
	sc.saHits = sc.saHits[:0]
	for _, pos := range positions {
		r, off := ix.locate(pos)
		sc.saHits = append(sc.saHits, seedHit{read: int32(r), off: int32(off)})
	}
	return sc.saHits, false
}
