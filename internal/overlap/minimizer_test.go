package overlap

import (
	"testing"
	"testing/quick"

	"focus/internal/align"
)

func TestMinimizerOffsetsProperties(t *testing.T) {
	k, w := 11, 8
	f := func(raw []byte) bool {
		if len(raw) < k {
			return true
		}
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = "ACGT"[b&3]
		}
		offs := minimizerOffsets(seq, k, w)
		if len(offs) == 0 {
			return false // any N-free sequence with >= 1 k-mer has a minimizer
		}
		// Sorted, distinct, in range.
		for i, o := range offs {
			if o < 0 || o+k > len(seq) {
				return false
			}
			if i > 0 && offs[i] <= offs[i-1] {
				return false
			}
		}
		// Coverage guarantee: every window of w consecutive k-mers
		// contains a selected offset.
		numKmers := len(seq) - k + 1
		if numKmers >= w {
			set := map[int]bool{}
			for _, o := range offs {
				set[o] = true
			}
			for start := 0; start+w <= numKmers; start++ {
				found := false
				for j := start; j < start+w; j++ {
					if set[j] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinimizerDeterministicAndShared(t *testing.T) {
	genome := randGenome(500, 800)
	a := minimizerOffsets(genome, 15, 8)
	b := minimizerOffsets(genome, 15, 8)
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic")
		}
	}
	// Two reads sharing a long exact region share minimizers inside it:
	// read1 = genome[100:300], read2 = genome[150:350].
	m1 := minimizerOffsets(genome[100:300], 15, 8)
	m2 := minimizerOffsets(genome[150:350], 15, 8)
	shared := 0
	set := map[int]bool{}
	for _, o := range m1 {
		set[100+o] = true // genome coordinates
	}
	for _, o := range m2 {
		if set[150+o] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("overlapping reads share no minimizers")
	}
}

func TestFindOverlapsWithMinimizers(t *testing.T) {
	genome := randGenome(501, 2000)
	reads := tilingReads(genome, 100, 40)
	cfg := testConfig()
	cfg.Seeding = SeedMinimizer
	cfg.MinimizerW = 8
	recs, err := FindOverlaps(reads, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int32]Record{}
	for _, r := range recs {
		found[[2]int32{r.A, r.B}] = r
	}
	// Consecutive reads overlap by 60 bp: minimizer seeding must find
	// them all (shared exact region >> w+k-1).
	for i := 0; i+1 < len(reads); i++ {
		r, ok := found[[2]int32{int32(i), int32(i + 1)}]
		if !ok {
			t.Fatalf("missing overlap %d-%d under minimizer seeding", i, i+1)
		}
		if r.Kind != align.KindSuffixPrefix || r.Len != 60 {
			t.Fatalf("record %d-%d = %+v", i, i+1, r)
		}
	}
}

func TestMinimizerSeedingMatchesStepRecall(t *testing.T) {
	// On error-bearing simulated reads, minimizers should find at least
	// as many overlaps per lookup; here just check total recall within a
	// few percent of stepped sampling.
	genome := randGenome(502, 3000)
	reads := tilingReads(genome, 100, 25)
	base, err := FindOverlaps(reads, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Seeding = SeedMinimizer
	mini, err := FindOverlaps(reads, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mini) < len(base)*95/100 {
		t.Errorf("minimizer recall %d vs stepped %d", len(mini), len(base))
	}
}
