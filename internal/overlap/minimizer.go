package overlap

import "focus/internal/dna"

// Seeding selects how query k-mers are sampled before index lookup.
type Seeding uint8

const (
	// SeedStep samples every Step-th k-mer (the default; simple but two
	// reads can miss each other's sample grid).
	SeedStep Seeding = iota
	// SeedMinimizer samples (w,k)-minimizers: the minimal (hashed) k-mer
	// of every window of w consecutive k-mers. Any two reads sharing an
	// exact stretch of w+k-1 bases are guaranteed to share a seed, with
	// ~2/(w+1) of positions sampled — usually fewer lookups than stepped
	// sampling at equal or better recall.
	SeedMinimizer
)

// mixKmer decorrelates k-mer values from sequence content (otherwise
// poly-A k-mers would win every window). Invertible 64-bit mix
// (splitmix64 finalizer).
func mixKmer(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// minimKm is one hashed k-mer occurrence considered for minimizer
// selection.
type minimKm struct {
	off  int
	hash uint64
}

// appendMinimizerOffsets computes the sorted distinct offsets of the
// (w,k)-minimizers of seq into sc.seedOffs (reusing sc.minimKms as the
// hash staging buffer) and returns the offsets slice, which is valid until
// the scratch's next query. Windows containing N are handled by the k-mer
// enumerator (N-spanning k-mers never become minimizers).
func appendMinimizerOffsets(sc *scratch, seq []byte, k, w int) []int {
	if w < 1 {
		w = 1
	}
	sc.minimKms = sc.minimKms[:0]
	dna.ForEachKmer(seq, k, func(v dna.Kmer, off int) {
		sc.minimKms = append(sc.minimKms, minimKm{off: off, hash: mixKmer(uint64(v))})
	})
	kms := sc.minimKms
	sc.seedOffs = sc.seedOffs[:0]
	if len(kms) == 0 {
		return nil
	}
	out := sc.seedOffs
	last := -1
	// Sliding window minimum via simple scan: windows are short (w ~ 8),
	// so the O(n*w) scan beats a deque in practice at these sizes.
	for start := 0; start+w <= len(kms); start++ {
		min := start
		for j := start + 1; j < start+w; j++ {
			if kms[j].hash < kms[min].hash {
				min = j
			}
		}
		if kms[min].off != last {
			out = append(out, kms[min].off)
			last = kms[min].off
		}
	}
	if len(out) == 0 { // fewer than w k-mers: take the global minimum
		min := 0
		for j := 1; j < len(kms); j++ {
			if kms[j].hash < kms[min].hash {
				min = j
			}
		}
		out = append(out, kms[min].off)
	}
	sc.seedOffs = out
	return out
}

// minimizerOffsets is the allocating convenience wrapper used by tests.
func minimizerOffsets(seq []byte, k, w int) []int {
	var sc scratch
	return appendMinimizerOffsets(&sc, seq, k, w)
}

// seedOffsets returns the sorted query offsets to look up for one read
// under the configured seeding mode, staged in the scratch. Returns nil
// for SeedStep, which the caller implements inline (it needs no
// precomputation).
func seedOffsets(sc *scratch, seq []byte, cfg Config) []int {
	if cfg.Seeding != SeedMinimizer {
		return nil
	}
	w := cfg.MinimizerW
	if w <= 0 {
		w = 8
	}
	return appendMinimizerOffsets(sc, seq, cfg.K, w)
}

// forEachSeed invokes fn for every sampled seed k-mer of one query read —
// the single definition of query-side sampling (Step grid or minimizers)
// shared by the seed-index probe loop and the spmat matrix builder, so
// both engines sample provably identical (k-mer, offset) sets. sc stages
// the minimizer buffers; a cfg.Step <= 0 is treated as 1.
func forEachSeed(sc *scratch, seq []byte, cfg Config, fn func(km dna.Kmer, off int)) {
	step := cfg.Step
	if step <= 0 {
		step = 1
	}
	selected := seedOffsets(sc, seq, cfg) // nil for SeedStep
	si := 0
	it := dna.NewKmerIter(seq, cfg.K)
	next := 0
	for {
		km, off, ok := it.Next()
		if !ok {
			return
		}
		if selected != nil {
			if si == len(selected) {
				return
			}
			if off != selected[si] {
				continue
			}
			si++
		} else if off < next {
			continue
		}
		next = off + step
		fn(km, off)
	}
}
