package overlap

import (
	"math/rand"
	"testing"

	"focus/internal/align"
	"focus/internal/dna"
	"focus/internal/simulate"
)

// tilingReads cuts a genome into overlapping reads of length l with stride
// s (no errors), so ground-truth overlaps are known exactly.
func tilingReads(genome []byte, l, s int) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		reads = append(reads, dna.Read{
			ID:  "t",
			Seq: append([]byte(nil), genome[pos:pos+l]...),
		})
	}
	return reads
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 2
	return cfg
}

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func TestFindOverlapsTiling(t *testing.T) {
	genome := randGenome(50, 2000)
	reads := tilingReads(genome, 100, 40) // consecutive reads overlap by 60
	for _, subsets := range []int{1, 2, 3} {
		recs, err := FindOverlaps(reads, subsets, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Every consecutive pair overlaps by 60 >= 50: must be found.
		found := map[[2]int32]Record{}
		for _, r := range recs {
			found[[2]int32{r.A, r.B}] = r
		}
		for i := 0; i+1 < len(reads); i++ {
			r, ok := found[[2]int32{int32(i), int32(i + 1)}]
			if !ok {
				t.Fatalf("subsets=%d: missing overlap %d-%d", subsets, i, i+1)
			}
			if r.Kind != align.KindSuffixPrefix {
				t.Errorf("kind = %v for consecutive reads", r.Kind)
			}
			if r.Len != 60 {
				t.Errorf("overlap length = %d, want 60", r.Len)
			}
			if r.Identity != 1 {
				t.Errorf("identity = %v", r.Identity)
			}
			if r.Diag != 40 {
				t.Errorf("diag = %d, want 40", r.Diag)
			}
		}
	}
}

func TestFindOverlapsSubsetInvariance(t *testing.T) {
	genome := randGenome(51, 1500)
	reads := tilingReads(genome, 100, 50)
	base, err := FindOverlaps(reads, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no overlaps found")
	}
	for _, subsets := range []int{2, 4, 7} {
		recs, err := FindOverlaps(reads, subsets, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(base) {
			t.Fatalf("subsets=%d: %d records vs %d with one subset", subsets, len(recs), len(base))
		}
		for i := range base {
			if recs[i] != base[i] {
				t.Fatalf("subsets=%d: record %d differs: %+v vs %+v", subsets, i, recs[i], base[i])
			}
		}
	}
}

func TestFindOverlapsNoFalsePositives(t *testing.T) {
	// Two unrelated random genomes: reads from different genomes must not
	// overlap (random 100-mers share no 50bp/90% alignment).
	g1 := randGenome(52, 800)
	g2 := randGenome(53, 800)
	reads := append(tilingReads(g1, 100, 50), tilingReads(g2, 100, 50)...)
	half := int32(len(tilingReads(g1, 100, 50)))
	recs, err := FindOverlaps(reads, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if (r.A < half) != (r.B < half) {
			t.Errorf("cross-genome overlap %d-%d", r.A, r.B)
		}
	}
}

func TestFindOverlapsContainment(t *testing.T) {
	genome := randGenome(54, 400)
	long := dna.Read{ID: "long", Seq: genome[:200]}
	short := dna.Read{ID: "short", Seq: append([]byte(nil), genome[50:150]...)}
	recs, err := FindOverlaps([]dna.Read{long, short}, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].A != 0 || recs[0].B != 1 || recs[0].Kind != align.KindAContainsB {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestFindOverlapsToleratesErrors(t *testing.T) {
	// Simulated reads with sequencing errors still overlap at >= 90%.
	com, err := simulate.BuildCommunity(simulate.SingleGenome("g", 3000, 55))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 8, ErrorRate5: 0.002, ErrorRate3: 0.01, Seed: 56,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := FindOverlaps(rs.Reads, 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At 8x coverage nearly every read overlaps several others.
	if len(recs) < len(rs.Reads) {
		t.Errorf("only %d overlaps for %d reads", len(recs), len(rs.Reads))
	}
	for _, r := range recs {
		if r.Identity < 0.90 {
			t.Errorf("record below identity threshold: %+v", r)
		}
		if r.Len < 50 {
			t.Errorf("record below length threshold: %+v", r)
		}
		if r.A >= r.B {
			t.Errorf("record not canonical: %+v", r)
		}
	}
}

func TestRecordFlip(t *testing.T) {
	r := Record{A: 1, B: 2, Kind: align.KindSuffixPrefix, Len: 60, Identity: 0.95, Diag: 40}
	f := r.Flip()
	if f.A != 2 || f.B != 1 || f.Kind != align.KindPrefixSuffix || f.Diag != -40 {
		t.Errorf("flip = %+v", f)
	}
	if ff := f.Flip(); ff != r {
		t.Errorf("double flip = %+v, want %+v", ff, r)
	}
	c := Record{A: 3, B: 4, Kind: align.KindAContainsB, Diag: 10}
	if c.Flip().Kind != align.KindBContainsA {
		t.Errorf("containment flip = %v", c.Flip().Kind)
	}
}

func TestBuildGraph(t *testing.T) {
	recs := []Record{
		{A: 0, B: 1, Len: 60},
		{A: 1, B: 2, Len: 70},
	}
	g, err := BuildGraph(3, recs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.EdgeWeight(0, 1) != 60 {
		t.Errorf("weight = %d", g.EdgeWeight(0, 1))
	}
	if _, err := BuildGraph(2, recs); err == nil {
		t.Error("out-of-range record accepted")
	}
}

func TestFindOverlapsConfigErrors(t *testing.T) {
	reads := tilingReads(randGenome(57, 300), 100, 50)
	cfg := testConfig()
	cfg.K = 0
	if _, err := FindOverlaps(reads, 1, cfg); err == nil {
		t.Error("k=0 accepted")
	}
	cfg = testConfig()
	cfg.K = 40
	if _, err := FindOverlaps(reads, 1, cfg); err == nil {
		t.Error("k=40 accepted")
	}
	if _, err := FindOverlaps(reads, 0, testConfig()); err == nil {
		t.Error("0 subsets accepted")
	}
}

func TestFindOverlapsRepeatMasking(t *testing.T) {
	// A low MaxOccur plus a highly repetitive genome: seeds inside the
	// repeat are skipped but unique flanks still anchor overlaps.
	rep := randGenome(58, 30)
	genome := make([]byte, 0, 1200)
	for i := 0; i < 6; i++ {
		genome = append(genome, randGenome(int64(59+i), 150)...)
		genome = append(genome, rep...)
	}
	reads := tilingReads(genome, 100, 40)
	cfg := testConfig()
	cfg.MaxOccur = 4
	recs, err := FindOverlaps(reads, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int32]bool{}
	for _, r := range recs {
		found[[2]int32{r.A, r.B}] = true
	}
	for i := 0; i+1 < len(reads); i++ {
		if !found[[2]int32{int32(i), int32(i + 1)}] {
			t.Fatalf("missing consecutive overlap %d-%d with repeat masking", i, i+1)
		}
	}
}
