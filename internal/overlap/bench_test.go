package overlap

import (
	"testing"

	"focus/internal/dna"
)

// benchReads builds a deterministic read set with genuine overlap
// structure: tiling reads over a random genome, so every consecutive
// pair overlaps and the index sees realistic seed multiplicity.
func benchReads(b *testing.B, n int) []dna.Read {
	b.Helper()
	genome := randGenome(1234, 40*n+100)
	reads := tilingReads(genome, 100, 40)
	if len(reads) < n {
		b.Fatalf("only %d reads generated, want %d", len(reads), n)
	}
	return reads[:n]
}

func benchmarkFindOverlaps(b *testing.B, cfg Config) {
	reads := benchReads(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := FindOverlaps(reads, 4, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) == 0 {
			b.Fatal("no overlaps found")
		}
	}
}

// BenchmarkFindOverlaps contrasts the two seed-index modes on identical
// inputs (the acceptance gate for the packed k-mer table: >=2x throughput
// and >=10x lower allocs/op vs the seed suffix-array implementation).
func BenchmarkFindOverlaps(b *testing.B) {
	for _, mode := range []Indexing{IndexKmerTable, IndexSuffixArray} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = 4
			cfg.Indexing = mode
			benchmarkFindOverlaps(b, cfg)
		})
	}
}

// BenchmarkSeedLookup measures one seed probe (index hit resolution only,
// steady-state) for each index mode over the same subset.
func BenchmarkSeedLookup(b *testing.B) {
	reads := benchReads(b, 256)
	cfg := DefaultConfig()
	ids := make([]int32, len(reads))
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		ids[i] = int32(i)
		seqs[i] = r.Seq
	}
	// Probe k-mers drawn from the reads themselves so most probes hit.
	var probes []dna.Kmer
	for _, r := range reads[:32] {
		it := dna.NewKmerIter(r.Seq, cfg.K)
		for {
			km, _, ok := it.Next()
			if !ok {
				break
			}
			probes = append(probes, km)
		}
	}
	for _, mode := range []Indexing{IndexKmerTable, IndexSuffixArray} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := cfg
			cfg.Indexing = mode
			ix := buildRefIndex(seqs, ids, cfg)
			sc := new(scratch)
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, _ := ix.seedHits(probes[i%len(probes)], cfg.MaxOccur, sc)
				total += len(hits)
			}
			if total == 0 {
				b.Fatal("no hits resolved")
			}
		})
	}
}

// BenchmarkIndexBuild measures per-subset index construction.
func BenchmarkIndexBuild(b *testing.B) {
	reads := benchReads(b, 256)
	cfg := DefaultConfig()
	ids := make([]int32, len(reads))
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		ids[i] = int32(i)
		seqs[i] = r.Seq
	}
	for _, mode := range []Indexing{IndexKmerTable, IndexSuffixArray} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := cfg
			cfg.Indexing = mode
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ix := buildRefIndex(seqs, ids, cfg); ix.numReads() != len(reads) {
					b.Fatal("bad index")
				}
			}
		})
	}
}
