package overlap

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"focus/internal/align"
	"focus/internal/dist"
)

func randWireIDs(rng *rand.Rand) []int32 {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return []int32{}
	}
	ids := make([]int32, rng.Intn(16))
	for i := range ids {
		switch rng.Intn(10) {
		case 0:
			ids[i] = math.MaxInt32
		case 1:
			ids[i] = math.MinInt32
		default:
			ids[i] = int32(rng.Uint32())
		}
	}
	return ids
}

func randWireSeqs(rng *rand.Rand) [][]byte {
	switch rng.Intn(8) {
	case 0:
		return nil
	case 1:
		return [][]byte{}
	}
	alphabet := []byte("ACGTACGTACGTN#acgt")
	seqs := make([][]byte, rng.Intn(8))
	for i := range seqs {
		switch rng.Intn(6) {
		case 0: // nil sequence
		case 1:
			seqs[i] = []byte{}
		default:
			s := make([]byte, rng.Intn(120))
			for j := range s {
				s[j] = alphabet[rng.Intn(len(alphabet))]
			}
			seqs[i] = s
		}
	}
	return seqs
}

func randWireConfig(rng *rand.Rand) Config {
	return Config{
		K: rng.Intn(32), Step: rng.Intn(8), MinKmerHits: rng.Intn(10), MaxOccur: rng.Intn(100) - 50,
		Align: align.Config{
			MinLength: rng.Intn(500), MinIdentity: rng.Float64(), Band: rng.Intn(64),
			Scoring: align.Scoring{Match: rng.Intn(10) - 5, Mismatch: rng.Intn(10) - 5, Gap: rng.Intn(10) - 5},
		},
		Workers: rng.Intn(16), Seeding: Seeding(rng.Intn(256)), MinimizerW: rng.Intn(32),
		Indexing: Indexing(rng.Intn(256)), RPCRetries: rng.Intn(5),
	}
}

// TestWireAlignPairRoundTrip: randomized DeepEqual property over the
// distributed-alignment payloads, including nil vs empty sequence lists,
// escape-plane bytes, and int32-extreme ids. Decode targets are reused so
// stale state must be overwritten.
func TestWireAlignPairRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	var args AlignPairArgs
	var reply AlignPairReply
	for i := 0; i < 500; i++ {
		a := &AlignPairArgs{
			RefIDs: randWireIDs(rng), RefSeqs: randWireSeqs(rng),
			QueryIDs: randWireIDs(rng), QuerySeqs: randWireSeqs(rng),
			Cfg: randWireConfig(rng),
		}
		enc := a.AppendTo(nil)
		if err := args.DecodeFrom(enc); err != nil {
			t.Fatalf("args decode: %v", err)
		}
		if !reflect.DeepEqual(a, &args) {
			t.Fatalf("args round trip diverged:\nsent %+v\ngot  %+v", a, &args)
		}

		r := &AlignPairReply{}
		switch rng.Intn(8) {
		case 0: // nil Records
		case 1:
			r.Records = []Record{}
		default:
			r.Records = make([]Record, rng.Intn(20))
			for j := range r.Records {
				r.Records[j] = Record{
					A: int32(rng.Uint32()), B: int32(rng.Uint32()),
					Kind: align.Kind(rng.Intn(256)), Len: int32(rng.Uint32()),
					Identity: rng.Float32(), Diag: int32(rng.Uint32()),
				}
			}
		}
		enc = r.AppendTo(nil)
		if err := reply.DecodeFrom(enc); err != nil {
			t.Fatalf("reply decode: %v", err)
		}
		if !reflect.DeepEqual(r, &reply) {
			t.Fatalf("reply round trip diverged:\nsent %+v\ngot  %+v", r, &reply)
		}
	}
}

// TestWireAlignPairCorrupt: truncations must error, bit flips must never
// panic, and corrupt length prefixes must not cause huge allocations.
func TestWireAlignPairCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := &AlignPairArgs{
		RefIDs: []int32{1, 2, 3}, RefSeqs: [][]byte{[]byte("ACGTN"), []byte("GG")},
		QueryIDs: []int32{7}, QuerySeqs: [][]byte{[]byte("TTTT")},
		Cfg: randWireConfig(rng),
	}
	enc := a.AppendTo(nil)
	var dst AlignPairArgs
	for cut := 0; cut < len(enc); cut++ {
		if dst.DecodeFrom(enc[:cut]) == nil {
			t.Fatalf("truncated frame (%d/%d bytes) decoded cleanly", cut, len(enc))
		}
	}
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), enc...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		_ = dst.DecodeFrom(mut)
	}
	// A frame claiming 2^40 records must fail fast, not allocate.
	bad := dist.AppendUvarint(nil, 1<<40)
	var reply AlignPairReply
	if reply.DecodeFrom(bad) == nil {
		t.Fatal("corrupt record count decoded cleanly")
	}
}
