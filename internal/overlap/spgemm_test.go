package overlap

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"focus/internal/dist"
	"focus/internal/dna"
)

// TestSpGEMMDistributedMatchesLocal proves the engine works under the
// RPC pool: FindOverlapsDistributed ships the config, workers run
// alignPairSpmat per subset-pair row block, and the merged result is
// byte-identical to the local SpGEMM (and therefore, via
// TestIndexingEquivalence, to the probe engines).
func TestSpGEMMDistributedMatchesLocal(t *testing.T) {
	reads := rcReadSet(42, 2200)
	cfg := testConfig()
	cfg.Engine = EngineSpGEMM

	for _, subsets := range []int{1, 3} {
		local, err := FindOverlaps(reads, subsets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(local) == 0 {
			t.Fatal("degenerate test: no overlaps")
		}
		pool, err := dist.NewLocalPool(2, newAlignService)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := FindOverlapsDistributed(pool, reads, subsets, cfg)
		pool.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(remote) != len(local) {
			t.Fatalf("subsets=%d: %d distributed records vs %d local", subsets, len(remote), len(local))
		}
		for i := range local {
			if remote[i] != local[i] {
				t.Fatalf("subsets=%d record %d: %+v vs %+v", subsets, i, remote[i], local[i])
			}
		}
	}
}

// TestCountCandidatesEngineAgreement: both engines implement the same
// candidate-generation semantics, so the surviving-candidate totals must
// match exactly — the precondition for overlapbench's throughput
// comparison to be apples-to-apples.
func TestCountCandidatesEngineAgreement(t *testing.T) {
	for seed := int64(5); seed < 8; seed++ {
		reads := rcReadSet(seed, 1600)
		for _, subsets := range []int{1, 3} {
			for _, mut := range []func(*Config){
				func(*Config) {},
				func(c *Config) { c.MaxOccur = 8 },
				func(c *Config) { c.Seeding = SeedMinimizer },
			} {
				cfg := testConfig()
				mut(&cfg)
				probe, err := CountCandidates(reads, subsets, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Engine = EngineSpGEMM
				spg, err := CountCandidates(reads, subsets, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if probe != spg {
					t.Fatalf("seed=%d subsets=%d: %d candidates (probe) vs %d (spmat)", seed, subsets, probe, spg)
				}
				if probe == 0 {
					t.Fatalf("seed=%d subsets=%d: no candidates at all", seed, subsets)
				}
			}
		}
	}
}

// TestSpGEMMCancel: a pre-canceled context aborts the SpGEMM driver with
// the context's cause, like the probe engine.
func TestSpGEMMCancel(t *testing.T) {
	reads := rcReadSet(9, 1200)
	cfg := testConfig()
	cfg.Engine = EngineSpGEMM
	cause := errors.New("spgemm test cancel")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, err := FindOverlapsCtx(ctx, reads, 3, cfg); !errors.Is(err, cause) {
		t.Fatalf("err=%v, want cause", err)
	}
}

// TestSpGEMMWireConfigRoundTrip: the Engine field survives the binary
// wire codec, so distributed workers run the engine the master selected.
func TestSpGEMMWireConfigRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Engine = EngineSpGEMM
	cfg.Indexing = IndexSuffixArray
	args := &AlignPairArgs{RefIDs: []int32{1}, RefSeqs: [][]byte{[]byte("ACGT")}, QueryIDs: []int32{2}, QuerySeqs: [][]byte{[]byte("TTTT")}, Cfg: cfg}
	var back AlignPairArgs
	if err := back.DecodeFrom(args.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if back.Cfg != cfg {
		t.Fatalf("config round trip: %+v != %+v", back.Cfg, cfg)
	}
}

// repeatHeavyReads builds the overlapbench geometry: a high-copy
// interspersed repeat whose seeds all cross MaxOccur, tiled into
// error-free 100 bp reads.
func repeatHeavyReads(copies int) []dna.Read {
	rng := rand.New(rand.NewSource(11))
	bases := []byte("ACGT")
	seq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	repeat := seq(600)
	var genome []byte
	for i := 0; i < copies; i++ {
		genome = append(genome, seq(600)...)
		genome = append(genome, repeat...)
	}
	return tilingReads(genome, 100, 40)
}

func benchCandGen(b *testing.B, engine Engine) {
	reads := repeatHeavyReads(96)
	cfg := DefaultConfig()
	cfg.Step = 1
	cfg.Engine = engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountCandidates(reads, 3, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandGenKmerTable(b *testing.B) { benchCandGen(b, EngineSeedIndex) }
func BenchmarkCandGenSpmat(b *testing.B)     { benchCandGen(b, EngineSpGEMM) }
