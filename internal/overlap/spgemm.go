package overlap

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"focus/internal/dna"
	"focus/internal/par"
	"focus/internal/spmat"
)

// The SpGEMM overlap engine (Config.Engine == EngineSpGEMM): candidate
// read pairs are derived as a masked sparse matrix product instead of
// per-probe index lookups (ROADMAP item 4; the BELLA/diBELLA approach in
// Guidi et al.). Per reference subset the engine builds the
// full-occurrence read-by-k-mer matrix and its repeat-pruned transpose;
// per query subset the sampled matrix (same forEachSeed sampling as the
// probe engine). A subset-pair job is then: one dictionary merge-join
// (spmat.Remap — replacing every per-probe binary search), the masked
// product staged as compressed candidate lists per row block, and
// bit-parallel banded-alignment verification of the survivors through the
// same align.Scratch path the probe engine uses. Identical sampling,
// masking, hit accounting and diagonal consensus make the emitted record
// multiset equal to the probe engine's, so after mergeRecords the final
// output is byte-identical (TestIndexingEquivalence pins this at workers
// 1/2/8).

// spmatSubset caches one subset's matrices, reused across every pair job
// touching the subset — amortization the probe engine cannot do for its
// query-side work.
type spmatSubset struct {
	ids  []int32
	seqs [][]byte
	q    *spmat.Matrix    // sampled query-side matrix
	t    *spmat.Transpose // repeat-pruned transpose of the full matrix
	self []int32          // identity self-map for the (s,s) diagonal job
}

// buildSpmatSubset builds both sides' structures for one subset. The
// reference side uses the fused build (radix-sorted occurrences are
// already in CSC order), skipping the CSR-then-transpose passes.
func buildSpmatSubset(seqs [][]byte, ids []int32, cfg Config) *spmatSubset {
	s := &spmatSubset{ids: ids, seqs: seqs}
	s.t = spmat.TransposeFromSeqs(seqs, cfg.K, cfg.MaxOccur)

	var sc scratch // minimizer staging only
	ents := make([]spmat.Ent, 0, len(s.t.Rows))
	for r, seq := range seqs {
		r32 := int32(r)
		forEachSeed(&sc, seq, cfg, func(km dna.Kmer, off int) {
			ents = append(ents, spmat.Ent{Key: uint64(km), Row: r32, Pos: int32(off)})
		})
	}
	s.q = spmat.Build(cfg.K, len(seqs), ents)

	s.self = make([]int32, len(seqs))
	for i := range s.self {
		s.self[i] = int32(i)
	}
	return s
}

// findOverlapsSpmat is the SpGEMM driver. Work is fanned out at
// (job, row-block) granularity in two phases — candidate generation, then
// verification — with per-item output slots assembled in index order, so
// results are byte-identical at any worker count. countOnly stops after
// candidate generation and returns the surviving-candidate total.
func findOverlapsSpmat(ctx context.Context, reads []dna.Read, subsets int, cfg Config, countOnly bool) ([]Record, int64, error) {
	gate := par.GateFor(ctx)
	subIDs, subSeqs := splitSubsets(reads, subsets)

	// Per-subset matrices, built in parallel across subsets.
	mats := make([]*spmatSubset, subsets)
	par.Run(par.Workers(cfg.Workers, subsets, 1), subsets, func(_, s int) {
		if gate.Stopped() {
			return
		}
		mats[s] = buildSpmatSubset(subSeqs[s], subIDs[s], cfg)
	})
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}

	// Subset-pair jobs; the dictionary joins are independent, so they fan
	// out too.
	type job struct {
		q, r  int
		remap []int32
	}
	jobs := make([]job, 0, subsets*(subsets+1)/2)
	for i := 0; i < subsets; i++ {
		for j := i; j < subsets; j++ {
			jobs = append(jobs, job{q: i, r: j})
		}
	}
	par.Run(par.Workers(cfg.Workers, len(jobs), 1), len(jobs), func(_, t int) {
		if gate.Stopped() {
			return
		}
		jobs[t].remap = spmat.Remap(mats[jobs[t].q].q.Keys, mats[jobs[t].r].t.Keys)
	})
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}

	// Flatten (job, row-block) into one work list shared by both phases:
	// load-balances small jobs against large ones without nested pools.
	type item struct {
		job    int
		lo, hi int
	}
	var items []item
	for t := range jobs {
		rows := mats[jobs[t].q].q.NumRows
		nb := spmat.NumBlocks(rows)
		for b := 0; b < nb; b++ {
			items = append(items, item{job: t, lo: b * spmat.BlockRows, hi: (b + 1) * spmat.BlockRows})
		}
	}
	itemWorkers := par.Workers(cfg.Workers, len(items), 1)

	// Phase A: masked product per item, staged as compressed candidate
	// lists (delta-zigzag varints — candidate memory tracks the candidate
	// set, not all-pairs).
	bufs := make([][]byte, len(items))
	var candTotal int64
	mus := make([]*spmat.Multiplier, itemWorkers)
	par.Run(itemWorkers, len(items), func(w, i int) {
		if gate.Stopped() {
			return
		}
		mu := mus[w]
		if mu == nil {
			mu = spmat.NewMultiplier()
			mus[w] = mu
		}
		it := items[i]
		j := jobs[it.job]
		opts := spmat.MultiplyOpts{
			Remap:   j.remap,
			MinHits: int32(cfg.MinKmerHits),
		}
		if j.q == j.r {
			opts.SelfRef = mats[j.q].self
		}
		buf := bufs[i]
		var n int64
		mu.MultiplyBlock(mats[j.q].q, mats[j.r].t, &opts, it.lo, it.hi, func(row int32, cands []spmat.Cand) {
			n += int64(len(cands))
			if !countOnly { // counting runs need no staging
				buf = spmat.AppendCands(buf, row, cands)
			}
		})
		bufs[i] = buf
		atomic.AddInt64(&candTotal, n)
	})
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}
	if countOnly {
		return nil, candTotal, nil
	}

	// Phase B: banded-alignment verification of the survivors, same item
	// granularity, records staged per item.
	recs := make([][]Record, len(items))
	var decodeErr atomic.Value
	scs := make([]*scratch, itemWorkers)
	par.Run(itemWorkers, len(items), func(w, i int) {
		if gate.Stopped() || len(bufs[i]) == 0 {
			return
		}
		sc := scs[w]
		if sc == nil {
			sc = new(scratch)
			scs[w] = sc
		}
		j := jobs[items[i].job]
		qIDs, qSeqs := subIDs[j.q], subSeqs[j.q]
		ref := mats[j.r]
		var out []Record
		err := spmat.DecodeCands(bufs[i], func(row int32, c spmat.Cand) {
			qseq := qSeqs[row]
			ov, ok := sc.align.OverlapOnDiagonal(qseq, ref.seqs[c.Row], int(c.Diag), cfg.Align)
			if !ok {
				return
			}
			rec := Record{A: qIDs[row], B: ref.ids[c.Row], Kind: ov.Kind, Len: int32(ov.Length), Identity: float32(ov.Identity), Diag: int32(ov.Diag)}
			if rec.A > rec.B {
				rec = rec.Flip()
			}
			out = append(out, rec)
		})
		if err != nil {
			decodeErr.Store(fmt.Errorf("overlap: spmat candidate staging corrupt: %w", err))
			return
		}
		recs[i] = out
	})
	if gate.Stopped() {
		return nil, 0, gate.Err()
	}
	if err, _ := decodeErr.Load().(error); err != nil {
		return nil, 0, err
	}
	return mergeRecords(recs), candTotal, nil
}

// spmatScratchPool recycles multipliers across AlignPair RPC calls, the
// same ownership discipline as scratchPool.
var spmatScratchPool = sync.Pool{New: func() interface{} { return spmat.NewMultiplier() }}

// alignPairSpmat is the worker half of one distributed subset-pair job
// under the SpGEMM engine: FindOverlapsDistributed already partitions the
// product by row blocks (each job is one block-row of the global
// candidate matrix — query subset × reference transpose), so the worker
// runs the job's product serially and verifies survivors as they are
// emitted.
func alignPairSpmat(args *AlignPairArgs) []Record {
	cfg := args.Cfg
	t := spmat.TransposeFromSeqs(args.RefSeqs, cfg.K, cfg.MaxOccur)

	var ssc scratch // minimizer staging only
	ents := make([]spmat.Ent, 0, len(t.Rows))
	for r, seq := range args.QuerySeqs {
		r32 := int32(r)
		forEachSeed(&ssc, seq, cfg, func(km dna.Kmer, off int) {
			ents = append(ents, spmat.Ent{Key: uint64(km), Row: r32, Pos: int32(off)})
		})
	}
	q := spmat.Build(cfg.K, len(args.QuerySeqs), ents)

	// Generalized diagonal mask from the shipped global ids: on the (s,s)
	// job query row i and reference read i are the same global read; on
	// cross-subset jobs the id sets are disjoint and nothing is masked.
	refOf := make(map[int32]int32, len(args.RefIDs))
	for g, id := range args.RefIDs {
		refOf[id] = int32(g)
	}
	self := make([]int32, len(args.QueryIDs))
	for i, id := range args.QueryIDs {
		if g, ok := refOf[id]; ok {
			self[i] = g
		} else {
			self[i] = -1
		}
	}

	opts := spmat.MultiplyOpts{
		Remap:   spmat.Remap(q.Keys, t.Keys),
		SelfRef: self,
		MinHits: int32(cfg.MinKmerHits),
		Workers: 1,
	}
	mu := spmatScratchPool.Get().(*spmat.Multiplier)
	defer spmatScratchPool.Put(mu)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	var out []Record
	for b, nb := 0, spmat.NumBlocks(q.NumRows); b < nb; b++ {
		mu.MultiplyBlock(q, t, &opts, b*spmat.BlockRows, (b+1)*spmat.BlockRows, func(row int32, cands []spmat.Cand) {
			qseq := args.QuerySeqs[row]
			for _, c := range cands {
				ov, ok := sc.align.OverlapOnDiagonal(qseq, args.RefSeqs[c.Row], int(c.Diag), cfg.Align)
				if !ok {
					continue
				}
				rec := Record{A: args.QueryIDs[row], B: args.RefIDs[c.Row], Kind: ov.Kind, Len: int32(ov.Length), Identity: float32(ov.Identity), Diag: int32(ov.Diag)}
				if rec.A > rec.B {
					rec = rec.Flip()
				}
				out = append(out, rec)
			}
		})
	}
	return out
}
