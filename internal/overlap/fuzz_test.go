package overlap

import (
	"testing"

	"focus/internal/align"
	"focus/internal/dist"
)

// FuzzWireDecoders throws arbitrary bytes at the distributed-alignment
// Wire decoders (AlignPairArgs carries 2-bit packed sequences, the reply
// delta-coded records): no input may panic or allocate unbounded, and any
// accepted value must survive a re-encode/re-decode cycle.
func FuzzWireDecoders(f *testing.F) {
	args := &AlignPairArgs{
		RefIDs:    []int32{0, 2},
		RefSeqs:   [][]byte{[]byte("ACGTACGT"), []byte("GGGNACGT")},
		QueryIDs:  []int32{1},
		QuerySeqs: [][]byte{[]byte("TTTTACGT")},
		Cfg:       DefaultConfig(),
	}
	reply := &AlignPairReply{Records: []Record{
		{A: 0, B: 1, Kind: align.KindSuffixPrefix, Len: 50, Identity: 0.95, Diag: 3},
		{A: 1, B: 2, Kind: align.KindPrefixSuffix, Len: 80, Identity: 0.99, Diag: -7},
	}}
	f.Add(true, args.AppendTo(nil))
	f.Add(false, reply.AppendTo(nil))
	f.Add(true, []byte{})
	f.Add(false, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, wantArgs bool, data []byte) {
		var w dist.Wire
		if wantArgs {
			w = &AlignPairArgs{}
		} else {
			w = &AlignPairReply{}
		}
		if err := w.DecodeFrom(data); err != nil {
			return
		}
		var again dist.Wire
		if wantArgs {
			again = &AlignPairArgs{}
		} else {
			again = &AlignPairReply{}
		}
		if err := again.DecodeFrom(w.AppendTo(nil)); err != nil {
			t.Fatalf("re-decode of accepted %T failed: %v", w, err)
		}
	})
}
