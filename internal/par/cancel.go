package par

import "context"

// Gate is the cancellation primitive of the stage pools: a nil-safe,
// allocation-free view of a context's done channel, polled at grain
// boundaries (per cluster, per matching round, per query, per parDo
// phase). The contract, shared by every par-governed pool:
//
//   - Stopped() is a non-blocking poll: a single select with a default
//     arm over a pre-fetched channel. On the hot path it costs two
//     predictable branches — cheap enough for the tightest grain the
//     governor hands out, which is what keeps the *_parallel bench
//     probes regression-free with cancellation plumbed in.
//
//   - A nil *Gate never stops. Stages keep one code path: callers
//     without a context pass nil and pay only the nil check.
//
//   - Stages poll at grain boundaries only, never mid-item: a stage that
//     observes Stopped() abandons remaining work and returns. Partial
//     results are permitted to be arbitrary (callers discard everything
//     on a non-nil ctx error) but must be memory-safe — multi-phase
//     stages whose later phases index arrays sized by earlier phases
//     (e.g. the CSR scatter over the counted degrees) must bail between
//     phases, not resume with partial counts.
type Gate struct {
	done <-chan struct{}
	ctx  context.Context
}

// GateFor returns the gate of ctx, or nil when ctx is nil or can never
// be canceled (context.Background and friends) — the zero-cost case.
func GateFor(ctx context.Context) *Gate {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return &Gate{done: done, ctx: ctx}
}

// Stopped reports whether the gate's context has been canceled. It never
// blocks and is safe on a nil gate (always false).
func (g *Gate) Stopped() bool {
	if g == nil {
		return false
	}
	select {
	case <-g.done:
		return true
	default:
		return false
	}
}

// Err returns the context's error: nil while running, the cancellation
// cause after Stopped. Safe on a nil gate.
func (g *Gate) Err() error {
	if g == nil || g.ctx.Err() == nil {
		return nil
	}
	return context.Cause(g.ctx)
}
