package par

import (
	"runtime"
	"testing"
)

// withProcs runs f under a temporary GOMAXPROCS value.
func withProcs(t *testing.T, p int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestWorkersExplicitCappedAtProcs(t *testing.T) {
	withProcs(t, 2, func() {
		if got := Workers(8, 1<<20, 1); got != 2 {
			t.Fatalf("explicit 8 on 2 procs: got %d, want 2", got)
		}
		if got := Workers(1, 1<<20, 1); got != 1 {
			t.Fatalf("explicit 1: got %d, want 1", got)
		}
		// Explicit counts are also capped at the problem size.
		if got := Workers(2, 1, 1); got != 1 {
			t.Fatalf("explicit 2 over 1 item: got %d, want 1", got)
		}
	})
}

func TestWorkersAutoSingleCPUIsSerial(t *testing.T) {
	withProcs(t, 1, func() {
		if got := Workers(0, 1<<30, 1); got != 1 {
			t.Fatalf("auto on 1 proc: got %d, want 1", got)
		}
	})
}

func TestWorkersAutoGrain(t *testing.T) {
	withProcs(t, 8, func() {
		if got := Workers(0, 100, 4096); got != 1 {
			t.Fatalf("auto below grain: got %d, want 1", got)
		}
		if got := Workers(0, 4096, 4096); got != 1 {
			t.Fatalf("auto at exactly one grain: got %d, want 1", got)
		}
		if got := Workers(0, 8192, 4096); got != 2 {
			t.Fatalf("auto at two grains: got %d, want 2", got)
		}
		if got := Workers(0, 1<<30, 4096); got != 8 {
			t.Fatalf("auto on huge input: got %d, want GOMAXPROCS=8", got)
		}
	})
}

func TestWorkersNeverBelowOne(t *testing.T) {
	withProcs(t, 4, func() {
		for _, req := range []int{-1, 0, 1, 100} {
			for _, size := range []int{0, 1, 10} {
				if got := Workers(req, size, 0); got < 1 {
					t.Fatalf("Workers(%d,%d,0) = %d < 1", req, size, got)
				}
			}
		}
	})
}

func TestLimit(t *testing.T) {
	withProcs(t, 3, func() {
		if got := Limit(0); got != 3 {
			t.Fatalf("Limit(0) = %d, want 3", got)
		}
		if got := Limit(2); got != 2 {
			t.Fatalf("Limit(2) = %d, want 2", got)
		}
		if got := Limit(64); got != 3 {
			t.Fatalf("Limit(64) = %d, want 3", got)
		}
	})
}
