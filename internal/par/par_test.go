package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs runs f under a temporary GOMAXPROCS value.
func withProcs(t *testing.T, p int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestWorkersExplicitCappedAtProcs(t *testing.T) {
	withProcs(t, 2, func() {
		if got := Workers(8, 1<<20, 1); got != 2 {
			t.Fatalf("explicit 8 on 2 procs: got %d, want 2", got)
		}
		if got := Workers(1, 1<<20, 1); got != 1 {
			t.Fatalf("explicit 1: got %d, want 1", got)
		}
		// Explicit counts are also capped at the problem size.
		if got := Workers(2, 1, 1); got != 1 {
			t.Fatalf("explicit 2 over 1 item: got %d, want 1", got)
		}
	})
}

func TestWorkersAutoSingleCPUIsSerial(t *testing.T) {
	withProcs(t, 1, func() {
		if got := Workers(0, 1<<30, 1); got != 1 {
			t.Fatalf("auto on 1 proc: got %d, want 1", got)
		}
	})
}

func TestWorkersAutoGrain(t *testing.T) {
	withProcs(t, 8, func() {
		if got := Workers(0, 100, 4096); got != 1 {
			t.Fatalf("auto below grain: got %d, want 1", got)
		}
		if got := Workers(0, 4096, 4096); got != 1 {
			t.Fatalf("auto at exactly one grain: got %d, want 1", got)
		}
		if got := Workers(0, 8192, 4096); got != 2 {
			t.Fatalf("auto at two grains: got %d, want 2", got)
		}
		if got := Workers(0, 1<<30, 4096); got != 8 {
			t.Fatalf("auto on huge input: got %d, want GOMAXPROCS=8", got)
		}
	})
}

func TestWorkersNeverBelowOne(t *testing.T) {
	withProcs(t, 4, func() {
		for _, req := range []int{-1, 0, 1, 100} {
			for _, size := range []int{0, 1, 10} {
				if got := Workers(req, size, 0); got < 1 {
					t.Fatalf("Workers(%d,%d,0) = %d < 1", req, size, got)
				}
			}
		}
	})
}

func TestLimit(t *testing.T) {
	withProcs(t, 3, func() {
		if got := Limit(0); got != 3 {
			t.Fatalf("Limit(0) = %d, want 3", got)
		}
		if got := Limit(2); got != 2 {
			t.Fatalf("Limit(2) = %d, want 2", got)
		}
		if got := Limit(64); got != 3 {
			t.Fatalf("Limit(64) = %d, want 3", got)
		}
	})
}

func TestBlocks(t *testing.T) {
	cases := []struct{ size, grain, want int }{
		{0, 32, 0},
		{-5, 32, 0},
		{1, 32, 1},
		{32, 32, 1},
		{33, 32, 2},
		{100, 32, 4},
		{7, 0, 7}, // grain < 1 clamps to 1
		{7, -3, 7},
	}
	for _, c := range cases {
		if got := Blocks(c.size, c.grain); got != c.want {
			t.Fatalf("Blocks(%d,%d) = %d, want %d", c.size, c.grain, got, c.want)
		}
	}
}

func TestRunCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 257} {
			hits := make([]int32, n)
			Run(workers, n, func(worker, item int) {
				if item < 0 || item >= n {
					panic("item out of range")
				}
				atomic.AddInt32(&hits[item], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: item %d processed %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestRunSerialIsInlineAndOrdered(t *testing.T) {
	var order []int
	Run(1, 5, func(worker, item int) {
		if worker != 0 {
			t.Fatalf("serial Run used worker id %d", worker)
		}
		order = append(order, item)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Run out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial Run ran %d items, want 5", len(order))
	}
}
