// Package par is the adaptive parallelism governor shared by the
// graph-construction stages (overlap worker pool, CSR build, coarsening,
// hybrid layout, partitioning). It makes one decision, in one place:
// given the input size and the host's GOMAXPROCS, is a parallel worker
// pool worth its fan-out cost, and if so how wide should it be?
//
// Two rules fall out of the BENCH_graph.json regressions this package
// exists to fix:
//
//   - Never oversubscribe. Every pool — including explicitly configured
//     ones — is capped at runtime.GOMAXPROCS(0). A worker count above the
//     CPU count only adds goroutines that wait for a core; on a
//     single-CPU host it turns every "parallel" stage into serial plus
//     scheduling overhead.
//
//   - Never fan out below the grain. In auto mode a stage runs serially
//     unless every worker would receive at least `grain` items, where
//     grain is the stage's own measured break-even size (e.g. 4096 edges
//     for the CSR build, 2048 nodes for matching rounds). GOMAXPROCS==1
//     is always serial: there is no second core for the pool to win on.
//
// Stages that must never change results by worker count (all of them —
// the determinism contract) remain free to honor an explicit request on
// multi-core hosts; tests that need to force the parallel code paths on a
// small host raise GOMAXPROCS (scripts/race.sh exports GOMAXPROCS=4).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit caps an explicitly requested worker count at GOMAXPROCS(0);
// requested <= 0 resolves to GOMAXPROCS(0) itself. The result is always
// >= 1. Use it to size pre-allocated per-worker state (scratch arrays,
// semaphores) before the per-invocation size is known.
func Limit(requested int) int {
	p := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > p {
		return p
	}
	return requested
}

// Blocks splits size items into contiguous fixed-grain blocks for
// deterministic block-indexed fan-out. The block structure depends only
// on size and grain — never on the worker count — so a stage that stages
// its output per block and assembles the blocks in index order produces
// identical results at any parallelism (the contract the spmat product
// and its callers rely on). Block b covers items
// [b*grain, min(size, (b+1)*grain)); the returned count is 0 only when
// size <= 0.
func Blocks(size, grain int) int {
	if size <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (size + grain - 1) / grain
}

// Run executes fn(worker, item) for every item in [0, n), fanned out
// over `workers` goroutines (already resolved via Workers/Limit; values
// <= 1 run inline with worker id 0). Items are claimed dynamically via an
// atomic cursor, so the mapping of items to workers is racy — fn must
// stage per-item output (e.g. into a caller-owned slot per item or per
// par.Blocks block) for the enclosing stage to stay deterministic. Run
// returns when every item has been processed.
func Run(workers, n int, fn func(worker, item int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Workers resolves the worker count for one stage invocation over `size`
// items with per-worker break-even `grain`.
//
// requested > 0 is an explicit configuration: it is honored as the pool
// bound but still capped at GOMAXPROCS(0) and at size — workers beyond
// either are idle by construction.
//
// requested <= 0 is auto: serial when the host has a single CPU or when
// size < grain; otherwise ceil(size/grain) workers so each gets at least
// ~grain items, capped at GOMAXPROCS(0).
func Workers(requested, size, grain int) int {
	p := runtime.GOMAXPROCS(0)
	if requested > 0 {
		w := requested
		if w > p {
			w = p
		}
		if size > 0 && w > size {
			w = size
		}
		return w
	}
	if grain < 1 {
		grain = 1
	}
	if p == 1 || size < grain {
		return 1
	}
	w := (size + grain - 1) / grain
	if w > p {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}
