package par

import (
	"context"
	"errors"
	"testing"
)

// TestGateNil: the zero-cost cases — nil ctx, uncancellable ctx, nil gate
// — never stop and report no error.
func TestGateNil(t *testing.T) {
	var g *Gate
	if g.Stopped() {
		t.Fatal("nil gate reports Stopped")
	}
	if err := g.Err(); err != nil {
		t.Fatalf("nil gate Err = %v", err)
	}
	if GateFor(nil) != nil {
		t.Fatal("GateFor(nil) != nil")
	}
	if GateFor(context.Background()) != nil {
		t.Fatal("GateFor(Background) != nil (uncancellable ctx should be free)")
	}
}

// TestGateStopReportsCause: a live gate is not stopped; after cancel it
// stops and Err returns the cancellation cause, not bare context.Canceled.
func TestGateStopReportsCause(t *testing.T) {
	cause := errors.New("stop the pools")
	ctx, cancel := context.WithCancelCause(context.Background())
	g := GateFor(ctx)
	if g == nil {
		t.Fatal("GateFor(cancellable ctx) = nil")
	}
	if g.Stopped() {
		t.Fatal("gate stopped before cancel")
	}
	if err := g.Err(); err != nil {
		t.Fatalf("live gate Err = %v", err)
	}
	cancel(cause)
	if !g.Stopped() {
		t.Fatal("gate not stopped after cancel")
	}
	if err := g.Err(); !errors.Is(err, cause) {
		t.Fatalf("stopped gate Err = %v, want cause %v", err, cause)
	}
}
