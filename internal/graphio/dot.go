package graphio

import (
	"bufio"
	"fmt"
	"io"

	"focus/internal/graph"
)

// WriteDOT renders a weighted graph in Graphviz DOT format. labels, when
// non-nil, colors nodes by partition (cycling through a small palette).
// Intended for inspecting small graphs (hybrid graphs, coarse levels);
// the node cap guards against accidentally dumping a full overlap graph.
func WriteDOT(w io.Writer, g *graph.Graph, labels []int32, maxNodes int) error {
	if maxNodes > 0 && g.NumNodes() > maxNodes {
		return fmt.Errorf("graphio: graph has %d nodes, above the DOT cap %d", g.NumNodes(), maxNodes)
	}
	if labels != nil && len(labels) != g.NumNodes() {
		return fmt.Errorf("graphio: %d labels for %d nodes", len(labels), g.NumNodes())
	}
	palette := []string{
		"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	fmt.Fprintln(bw, "  node [shape=circle, style=filled, fontsize=8];")
	for v := 0; v < g.NumNodes(); v++ {
		color := "#cccccc"
		part := ""
		if labels != nil {
			color = palette[int(labels[v])%len(palette)]
			part = fmt.Sprintf(" part %d", labels[v])
		}
		fmt.Fprintf(bw, "  n%d [fillcolor=\"%s\", tooltip=\"node %d w=%d%s\"];\n",
			v, color, v, g.NodeWeight(v), part)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, a := range g.Adj(v) {
			if a.To > v {
				attrs := fmt.Sprintf("label=\"%d\"", a.W)
				if labels != nil && labels[v] != labels[a.To] {
					attrs += ", color=red, penwidth=2" // cut edge
				}
				fmt.Fprintf(bw, "  n%d -- n%d [%s];\n", v, a.To, attrs)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
