// Package graphio serializes overlap records and weighted graphs in a
// compact binary format with magic headers, versioning and a checksum.
// Overlap detection dominates pipeline cost, so cmd/focus can persist the
// record list (-save-overlaps) and later rebuild all graph stages from it
// (-load-overlaps) without re-aligning.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"

	"focus/internal/align"
	"focus/internal/graph"
	"focus/internal/overlap"
)

const (
	recordsMagic = "FOCR"
	graphMagic   = "FOCG"
	version      = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

type crcWriter struct {
	w   io.Writer
	crc uint64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc64.Update(c.crc, crcTable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint64
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc64.Update(c.crc, crcTable, p[:n])
	return n, err
}

// WriteRecords serializes overlap records (with the read count they refer
// to, so loaders can validate against their read set).
func WriteRecords(w io.Writer, numReads int, recs []overlap.Record) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(recordsMagic)); err != nil {
		return err
	}
	hdr := []uint64{version, uint64(numReads), uint64(len(recs))}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, r := range recs {
		fields := []int32{r.A, r.B, int32(r.Kind), r.Len, int32(r.Identity * 1e6), r.Diag}
		for _, f := range fields {
			if err := binary.Write(cw, binary.LittleEndian, f); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadRecords deserializes a record file, verifying magic, version and
// checksum.
func ReadRecords(r io.Reader) (numReads int, recs []overlap.Record, err error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return 0, nil, fmt.Errorf("graphio: reading magic: %w", err)
	}
	if string(magic) != recordsMagic {
		return 0, nil, fmt.Errorf("graphio: bad magic %q", magic)
	}
	var ver, nReads, nRecs uint64
	for _, p := range []*uint64{&ver, &nReads, &nRecs} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return 0, nil, fmt.Errorf("graphio: reading header: %w", err)
		}
	}
	if ver != version {
		return 0, nil, fmt.Errorf("graphio: unsupported version %d", ver)
	}
	if nRecs > 1<<34 {
		return 0, nil, fmt.Errorf("graphio: implausible record count %d", nRecs)
	}
	recs = make([]overlap.Record, nRecs)
	for i := range recs {
		var fields [6]int32
		for j := range fields {
			if err := binary.Read(cr, binary.LittleEndian, &fields[j]); err != nil {
				return 0, nil, fmt.Errorf("graphio: reading record %d: %w", i, err)
			}
		}
		recs[i] = overlap.Record{
			A: fields[0], B: fields[1],
			Kind: align.Kind(fields[2]),
			Len:  fields[3], Identity: float32(fields[4]) / 1e6, Diag: fields[5],
		}
		if recs[i].A < 0 || int(recs[i].A) >= int(nReads) || recs[i].B < 0 || int(recs[i].B) >= int(nReads) {
			return 0, nil, fmt.Errorf("graphio: record %d references read outside [0,%d)", i, nReads)
		}
	}
	want := cr.crc
	var got uint64
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return 0, nil, fmt.Errorf("graphio: reading checksum: %w", err)
	}
	if got != want {
		return 0, nil, fmt.Errorf("graphio: checksum mismatch (file %x, computed %x)", got, want)
	}
	return int(nReads), recs, nil
}

// WriteGraph serializes a weighted graph.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(graphMagic)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(version)); err != nil {
		return err
	}
	n := g.NumNodes()
	if err := binary.Write(cw, binary.LittleEndian, uint64(n)); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if err := binary.Write(cw, binary.LittleEndian, g.NodeWeight(v)); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		for _, a := range g.Adj(v) {
			if a.To <= v {
				continue
			}
			for _, f := range []int64{int64(v), int64(a.To), a.W} {
				if err := binary.Write(cw, binary.LittleEndian, f); err != nil {
					return err
				}
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadGraph deserializes a weighted graph.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("graphio: reading magic: %w", err)
	}
	if string(magic) != graphMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", magic)
	}
	var ver, n uint64
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("graphio: unsupported version %d", ver)
	}
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<34 {
		return nil, fmt.Errorf("graphio: implausible node count %d", n)
	}
	b := graph.NewBuilder(int(n))
	for v := 0; v < int(n); v++ {
		var w int64
		if err := binary.Read(cr, binary.LittleEndian, &w); err != nil {
			return nil, fmt.Errorf("graphio: node weight %d: %w", v, err)
		}
		b.SetNodeWeight(v, w)
	}
	var m uint64
	if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if m > 1<<36 {
		return nil, fmt.Errorf("graphio: implausible edge count %d", m)
	}
	for i := 0; i < int(m); i++ {
		var u, v, w int64
		for _, p := range []*int64{&u, &v, &w} {
			if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
				return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
			}
		}
		if err := b.AddEdge(int(u), int(v), w); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
	}
	want := cr.crc
	var got uint64
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("graphio: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("graphio: checksum mismatch")
	}
	return b.Build(), nil
}
