package graphio

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/align"
	"focus/internal/graph"
	"focus/internal/overlap"
)

func randomRecords(seed int64, numReads, n int) []overlap.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]overlap.Record, n)
	kinds := []align.Kind{align.KindSuffixPrefix, align.KindPrefixSuffix, align.KindAContainsB, align.KindBContainsA}
	for i := range recs {
		a := int32(rng.Intn(numReads))
		b := int32(rng.Intn(numReads))
		recs[i] = overlap.Record{
			A: a, B: b,
			Kind:     kinds[rng.Intn(len(kinds))],
			Len:      int32(50 + rng.Intn(100)),
			Identity: float32(0.9 + 0.1*rng.Float64()),
			Diag:     int32(rng.Intn(200) - 100),
		}
	}
	return recs
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := randomRecords(1, 500, 2000)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, 500, recs); err != nil {
		t.Fatal(err)
	}
	numReads, got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if numReads != 500 || len(got) != len(recs) {
		t.Fatalf("numReads=%d records=%d", numReads, len(got))
	}
	for i := range recs {
		if got[i].A != recs[i].A || got[i].B != recs[i].B || got[i].Kind != recs[i].Kind ||
			got[i].Len != recs[i].Len || got[i].Diag != recs[i].Diag {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
		d := got[i].Identity - recs[i].Identity
		if d < -1e-5 || d > 1e-5 {
			t.Fatalf("record %d identity %v != %v", i, got[i].Identity, recs[i].Identity)
		}
	}
}

func TestRecordsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, 10, nil); err != nil {
		t.Fatal(err)
	}
	n, got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(got) != 0 {
		t.Fatalf("n=%d records=%d", n, len(got))
	}
}

func TestRecordsRejectsCorruption(t *testing.T) {
	recs := randomRecords(2, 100, 50)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, 100, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	if _, _, err := ReadRecords(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Bad magic.
	bad = append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := ReadRecords(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Truncation.
	if _, _, err := ReadRecords(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated file accepted")
	}

	// Empty input.
	if _, _, err := ReadRecords(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRecordsRejectsOutOfRangeReads(t *testing.T) {
	recs := []overlap.Record{{A: 0, B: 99, Len: 60}}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, 10, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadRecords(&buf); err == nil {
		t.Error("record referencing read 99 of 10 accepted")
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(200)
	for v := 0; v < 200; v++ {
		b.SetNodeWeight(v, int64(1+rng.Intn(50)))
	}
	for i := 0; i < 1500; i++ {
		_ = b.AddEdge(rng.Intn(200), rng.Intn(200), int64(1+rng.Intn(1000)))
	}
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("nodes/edges %d/%d, want %d/%d", got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if got.TotalEdgeWeight() != g.TotalEdgeWeight() || got.TotalNodeWeight() != g.TotalNodeWeight() {
		t.Fatal("weights differ")
	}
	for v := 0; v < g.NumNodes(); v++ {
		if got.NodeWeight(v) != g.NodeWeight(v) {
			t.Fatalf("node %d weight", v)
		}
		ga, wa := got.Adj(v), g.Adj(v)
		if len(ga) != len(wa) {
			t.Fatalf("node %d degree %d != %d", v, len(ga), len(wa))
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("node %d arc %d: %+v != %+v", v, i, ga[i], wa[i])
			}
		}
	}
}

func TestGraphRejectsCorruption(t *testing.T) {
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(1, 2, 4)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bad := append([]byte(nil), data...)
	bad[20] ^= 0x55
	if _, err := ReadGraph(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted graph accepted")
	}
	if _, err := ReadGraph(bytes.NewReader(data[:10])); err == nil {
		t.Error("truncated graph accepted")
	}
	if _, err := ReadGraph(bytes.NewReader([]byte("FOCRxxxxxxxxxxxxxxxx"))); err == nil {
		t.Error("records magic accepted as graph")
	}
}
