package graphio

import (
	"strings"
	"testing"

	"focus/internal/graph"
)

func smallGraph() *graph.Graph {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 5)
	_ = b.AddEdge(1, 2, 7)
	_ = b.AddEdge(2, 3, 2)
	return b.Build()
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, smallGraph(), []int32{0, 0, 1, 1}, 100); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "n0 -- n1", "label=\"7\"", "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Exactly one cut edge (1-2) should be red.
	if strings.Count(out, "color=red") != 1 {
		t.Errorf("cut edges marked: %d, want 1", strings.Count(out, "color=red"))
	}
}

func TestWriteDOTNoLabels(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, smallGraph(), nil, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "color=red") {
		t.Error("cut marking without labels")
	}
}

func TestWriteDOTErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, smallGraph(), []int32{0}, 100); err == nil {
		t.Error("label mismatch accepted")
	}
	if err := WriteDOT(&sb, smallGraph(), nil, 2); err == nil {
		t.Error("node cap not enforced")
	}
}
