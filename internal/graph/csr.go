// CSR construction: a sort-based parallel edge merge replacing the old
// map-based Builder.Build. The pipeline is
//
//	count  — directed degree per node (atomic adds across edge shards)
//	place  — scatter both arc directions into a packed scratch arena,
//	         slots claimed with atomic cursor fetch-adds
//	sort   — per-node sort by neighbour id (nodes are independent)
//	merge  — run-length dedup summing parallel-edge weights, then a
//	         compaction into the final arena
//
// Every stage is deterministic at any worker count: scatter order within
// a node's segment is racy, but the subsequent sort plus commutative
// weight summation collapse all orders to the same final arcs.
package graph

import (
	"context"
	"sync"
	"sync/atomic"

	"focus/internal/par"
)

// parallelMinEdges is the edge count below which building runs serially;
// goroutine fan-out costs more than it saves on tiny graphs.
const parallelMinEdges = 4096

// resolveWorkers sizes the build pool through the shared governor: <= 0
// means auto (serial below the edge grain, then one worker per ~grain
// edges); explicit counts are honored so tests can force the parallel
// path on small graphs, but still capped at GOMAXPROCS and at size.
func resolveWorkers(workers, size int) int {
	return par.Workers(workers, size, parallelMinEdges)
}

// parDo runs f(0..parts-1) on parts goroutines and waits for all.
func parDo(parts int, f func(part int)) {
	if parts <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts)
	for p := 0; p < parts; p++ {
		go func(p int) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// splitRange returns the half-open slice [lo,hi) of n items owned by part
// p out of parts.
func splitRange(n, parts, p int) (lo, hi int) {
	return n * p / parts, n * (p + 1) / parts
}

// edgeCursor iterates a contiguous logical range of a sharded edge list.
func forEdgeRange(shards [][]Edge, lo, hi int, f func(Edge)) {
	pos := 0
	for _, sh := range shards {
		if hi <= pos {
			return
		}
		if lo >= pos+len(sh) {
			pos += len(sh)
			continue
		}
		a, b := 0, len(sh)
		if lo > pos {
			a = lo - pos
		}
		if hi < pos+len(sh) {
			b = hi - pos
		}
		for _, e := range sh[a:b] {
			f(e)
		}
		pos += len(sh)
	}
}

// buildCSR runs the four-stage pipeline, polling the (nil-safe) gate
// BETWEEN stages and at node-chunk boundaries within the two per-node
// stages. The between-stage checks are load-bearing for memory safety,
// not just latency: the scatter indexes an arena sized by the count
// stage, so a cancel observed mid-count must prevent the scatter from
// running at all rather than resume it over partial cursors. A stopped
// gate yields nil; only the ctx-taking wrappers expose that, paired with
// the context's error.
func buildCSR(n int, nodeWeight []int64, shards [][]Edge, workers int, gate *par.Gate) *Graph {
	g := &Graph{nodeWeight: nodeWeight}
	for _, w := range nodeWeight {
		g.totalNodeW += w
	}
	g.offsets = make([]int32, n+1)
	total := 0
	for _, sh := range shards {
		total += len(sh)
	}
	if total == 0 {
		return g
	}
	w := resolveWorkers(workers, total)

	// Count directed degrees (self-loops dropped).
	cnt := make([]int32, n)
	if w == 1 {
		for _, sh := range shards {
			for _, e := range sh {
				if e.U != e.V {
					cnt[e.U]++
					cnt[e.V]++
				}
			}
		}
	} else {
		parDo(w, func(p int) {
			lo, hi := splitRange(total, w, p)
			forEdgeRange(shards, lo, hi, func(e Edge) {
				if e.U != e.V {
					atomic.AddInt32(&cnt[e.U], 1)
					atomic.AddInt32(&cnt[e.V], 1)
				}
			})
		})
	}
	if gate.Stopped() {
		return nil // partial counts: the scatter below must never see them
	}
	scratchOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		scratchOff[v+1] = scratchOff[v] + cnt[v]
	}

	// Scatter both directions into the scratch arena. cnt doubles as the
	// per-node write cursor (relative to scratchOff).
	arena := make([]Arc, scratchOff[n])
	cursor := cnt
	for i := range cursor {
		cursor[i] = scratchOff[i]
	}
	if w == 1 {
		for _, sh := range shards {
			for _, e := range sh {
				if e.U == e.V {
					continue
				}
				arena[cursor[e.U]] = Arc{To: int(e.V), W: e.W}
				cursor[e.U]++
				arena[cursor[e.V]] = Arc{To: int(e.U), W: e.W}
				cursor[e.V]++
			}
		}
	} else {
		parDo(w, func(p int) {
			lo, hi := splitRange(total, w, p)
			forEdgeRange(shards, lo, hi, func(e Edge) {
				if e.U == e.V {
					return
				}
				i := atomic.AddInt32(&cursor[e.U], 1) - 1
				arena[i] = Arc{To: int(e.V), W: e.W}
				j := atomic.AddInt32(&cursor[e.V], 1) - 1
				arena[j] = Arc{To: int(e.U), W: e.W}
			})
		})
	}

	if gate.Stopped() {
		return nil
	}

	// Sort each node's segment and merge duplicate neighbours in place.
	// Nodes are independent, so shards of the node range run in parallel;
	// the gate is polled every 256 nodes (the sort is the expensive stage).
	merged := make([]int32, n+1)
	parDo(w, func(p int) {
		lo, hi := splitRange(n, w, p)
		for v := lo; v < hi; v++ {
			if v&255 == 0 && gate.Stopped() {
				return
			}
			seg := arena[scratchOff[v]:scratchOff[v+1]]
			sortArcs(seg)
			merged[v+1] = int32(dedupeArcs(seg))
		}
	})
	if gate.Stopped() {
		return nil // partial merged counts: the compaction must not see them
	}
	for v := 0; v < n; v++ {
		merged[v+1] += merged[v]
	}

	// Compact into the final arena and tally edge totals once per edge.
	arcs := make([]Arc, merged[n])
	edges := make([]int, w)
	weights := make([]int64, w)
	parDo(w, func(p int) {
		lo, hi := splitRange(n, w, p)
		var ne int
		var wsum int64
		for v := lo; v < hi; v++ {
			seg := arena[scratchOff[v] : scratchOff[v]+(merged[v+1]-merged[v])]
			copy(arcs[merged[v]:merged[v+1]], seg)
			for _, a := range seg {
				if a.To > v {
					ne++
					wsum += a.W
				}
			}
		}
		edges[p] = ne
		weights[p] = wsum
	})
	for p := 0; p < w; p++ {
		g.numEdges += edges[p]
		g.totalEdgeW += weights[p]
	}
	g.offsets = merged
	g.arcs = arcs
	return g
}

// sortArcs sorts a segment by neighbour id with an allocation-free
// quicksort (insertion sort below a small cutoff). Duplicate ids may land
// in any order; the follow-up merge sums their weights, so the final
// segment is order-independent.
func sortArcs(a []Arc) {
	for len(a) > 24 {
		// Median-of-three pivot.
		x, y, z := a[0].To, a[len(a)/2].To, a[len(a)-1].To
		if x > y {
			x, y = y, x
		}
		if y > z {
			y = z
		}
		if x > y {
			y = x
		}
		pivot := y
		i, j := 0, len(a)-1
		for i <= j {
			for a[i].To < pivot {
				i++
			}
			for a[j].To > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j+1 < len(a)-i {
			sortArcs(a[:j+1])
			a = a[i:]
		} else {
			sortArcs(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].To < a[j-1].To; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// dedupeArcs merges sorted runs of equal neighbours by summing weights,
// in place, and returns the merged length.
func dedupeArcs(a []Arc) int {
	if len(a) == 0 {
		return 0
	}
	k := 0
	for i := 1; i < len(a); i++ {
		if a[i].To == a[k].To {
			a[k].W += a[i].W
		} else {
			k++
			a[k] = a[i]
		}
	}
	return k + 1
}

// Contract builds the contraction of g by the node mapping group
// (group[v] in [0,numGroups)): node weights sum within groups, edges
// between groups merge by weight summation, intra-group edges vanish.
// The result is identical at any worker count (<= 0 means GOMAXPROCS).
func Contract(g *Graph, group []int, numGroups, workers int) *Graph {
	c, _ := ContractCtx(nil, g, group, numGroups, workers)
	return c
}

// ContractCtx is Contract bounded by ctx: a cancel abandons the
// contraction at the next node-chunk boundary and returns the context's
// cause (the partial result is discarded). A nil ctx never cancels.
func ContractCtx(ctx context.Context, g *Graph, group []int, numGroups, workers int) (*Graph, error) {
	gate := par.GateFor(ctx)
	n := g.NumNodes()
	w := resolveWorkers(workers, len(g.arcs))

	// Coarse node weights: per-worker partial sums, reduced serially.
	nw := make([]int64, numGroups)
	if w == 1 {
		for v, c := range group {
			nw[c] += g.nodeWeight[v]
		}
	} else {
		partial := make([][]int64, w)
		parDo(w, func(p int) {
			local := make([]int64, numGroups)
			lo, hi := splitRange(n, w, p)
			for v := lo; v < hi; v++ {
				local[group[v]] += g.nodeWeight[v]
			}
			partial[p] = local
		})
		for _, local := range partial {
			for c, x := range local {
				nw[c] += x
			}
		}
	}
	return contractWithWeights(g, group, nw, workers, gate)
}

// ContractWithWeights is Contract with the coarse node weights supplied by
// the caller (len(nw) = numGroups) instead of summed from the fine graph.
//
// Rather than emitting edge triples and re-running the full sort-based
// build, contraction accumulates each coarse node's adjacency directly:
// the fine members of a coarse node are scanned in ascending id order and
// their mapped neighbours merged through per-worker stamp/accumulator
// arrays (stamp[u] == c marks "u already seen for coarse node c", so no
// clearing between nodes). Only the deduplicated neighbour list is
// sorted. Workers own contiguous coarse-id ranges, so concatenating their
// output in worker order yields the final CSR arena; the result is
// identical at any worker count.
func ContractWithWeights(g *Graph, group []int, nw []int64, workers int) *Graph {
	c, _ := contractWithWeights(g, group, nw, workers, nil)
	return c
}

// ContractWithWeightsCtx is ContractWithWeights bounded by ctx (see
// ContractCtx).
func ContractWithWeightsCtx(ctx context.Context, g *Graph, group []int, nw []int64, workers int) (*Graph, error) {
	return contractWithWeights(g, group, nw, workers, par.GateFor(ctx))
}

func contractWithWeights(g *Graph, group []int, nw []int64, workers int, gate *par.Gate) (*Graph, error) {
	n := g.NumNodes()
	numGroups := len(nw)
	out := &Graph{nodeWeight: nw}
	for _, x := range nw {
		out.totalNodeW += x
	}
	out.offsets = make([]int32, numGroups+1)
	if n == 0 || numGroups == 0 {
		return out, nil
	}
	if gate.Stopped() {
		return nil, gate.Err()
	}
	w := resolveWorkers(workers, len(g.arcs))

	// Invert group: members of coarse node c, in ascending fine id
	// (counting sort — deterministic regardless of workers).
	memberOff := make([]int32, numGroups+1)
	for _, c := range group {
		memberOff[c+1]++
	}
	for c := 0; c < numGroups; c++ {
		memberOff[c+1] += memberOff[c]
	}
	members := make([]int32, n)
	cursor := make([]int32, numGroups)
	copy(cursor, memberOff[:numGroups])
	for v, c := range group {
		members[cursor[c]] = int32(v)
		cursor[c]++
	}

	type shard struct {
		arcs    []Arc
		edges   int
		weights int64
	}
	shards := make([]shard, w)
	degree := cursor // reuse: degree[c] = merged degree of coarse node c
	parDo(w, func(p int) {
		glo, ghi := splitRange(numGroups, w, p)
		if glo == ghi {
			return
		}
		// Stamp/accumulator pair, indexed by coarse id. stamp[u] == c
		// means u is already in c's neighbour list this round.
		stamp := make([]int32, numGroups)
		for i := range stamp {
			stamp[i] = -1
		}
		acc := make([]int64, numGroups)
		var touched []int32
		buf := make([]Arc, 0, int(g.offsets[n])/w+16)
		var ne int
		var wsum int64
		for c := glo; c < ghi; c++ {
			if c&255 == 0 && gate.Stopped() {
				return
			}
			touched = touched[:0]
			for _, v := range members[memberOff[c]:memberOff[c+1]] {
				for _, a := range g.Adj(int(v)) {
					u := group[a.To]
					if u == c {
						continue // internal to the group
					}
					if stamp[u] != int32(c) {
						stamp[u] = int32(c)
						acc[u] = a.W
						touched = append(touched, int32(u))
					} else {
						acc[u] += a.W
					}
				}
			}
			sortInt32s(touched)
			degree[c] = int32(len(touched))
			for _, u := range touched {
				buf = append(buf, Arc{To: int(u), W: acc[u]})
				if int(u) > c {
					ne++
					wsum += acc[u]
				}
			}
		}
		shards[p] = shard{arcs: buf, edges: ne, weights: wsum}
	})
	if gate.Stopped() {
		return nil, gate.Err() // partial degrees: don't assemble offsets from them
	}

	for c := 0; c < numGroups; c++ {
		out.offsets[c+1] = out.offsets[c] + degree[c]
	}
	arcs := make([]Arc, out.offsets[numGroups])
	pos := 0
	for p := 0; p < w; p++ {
		pos += copy(arcs[pos:], shards[p].arcs)
		out.numEdges += shards[p].edges
		out.totalEdgeW += shards[p].weights
	}
	out.arcs = arcs
	return out, nil
}

// sortInt32s sorts ascending with an allocation-free quicksort (insertion
// sort below a small cutoff).
func sortInt32s(a []int32) {
	for len(a) > 24 {
		x, y, z := a[0], a[len(a)/2], a[len(a)-1]
		if x > y {
			x, y = y, x
		}
		if y > z {
			y = z
		}
		if x > y {
			y = x
		}
		pivot := y
		i, j := 0, len(a)-1
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j+1 < len(a)-i {
			sortInt32s(a[:j+1])
			a = a[i:]
		} else {
			sortInt32s(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
