// Package graph provides the weighted graph representation shared by the
// coarsening, hybrid-graph and partitioning stages. The overlap graph G0
// (paper §II.C) has one node per read and one weighted edge per accepted
// overlap, the edge weight being the alignment length.
package graph

import (
	"fmt"
	"sort"
)

// Arc is one directed half of an undirected weighted edge.
type Arc struct {
	To int
	W  int64
}

// Graph is a static undirected weighted graph with weighted nodes.
// Parallel edges are merged at build time (weights summed); self-loops are
// dropped.
type Graph struct {
	nodeWeight []int64
	adj        [][]Arc
	totalEdgeW int64 // sum of edge weights, each edge counted once
	numEdges   int
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E| (undirected edges).
func (g *Graph) NumEdges() int { return g.numEdges }

// TotalEdgeWeight returns the sum of all edge weights.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEdgeW }

// NodeWeight returns the weight of node v.
func (g *Graph) NodeWeight(v int) int64 { return g.nodeWeight[v] }

// TotalNodeWeight returns the sum of node weights.
func (g *Graph) TotalNodeWeight() int64 {
	var t int64
	for _, w := range g.nodeWeight {
		t += w
	}
	return t
}

// Adj returns the adjacency list of v, sorted by neighbour id. Callers
// must not modify it.
func (g *Graph) Adj(v int) []Arc { return g.adj[v] }

// Degree returns the number of distinct neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// EdgeWeight returns the weight of edge {u,v}, or 0 if absent.
func (g *Graph) EdgeWeight(u, v int) int64 {
	arcs := g.adj[u]
	i := sort.Search(len(arcs), func(i int) bool { return arcs[i].To >= v })
	if i < len(arcs) && arcs[i].To == v {
		return arcs[i].W
	}
	return 0
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n          int
	nodeWeight []int64
	us, vs     []int32
	ws         []int64
}

// NewBuilder creates a builder for n nodes, all with weight 1.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, nodeWeight: make([]int64, n)}
	for i := range b.nodeWeight {
		b.nodeWeight[i] = 1
	}
	return b
}

// SetNodeWeight overrides the weight of node v.
func (b *Builder) SetNodeWeight(v int, w int64) { b.nodeWeight[v] = w }

// AddEdge records an undirected edge {u,v} with weight w. Multiple
// additions of the same pair accumulate. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int, w int64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
	return nil
}

// Build assembles the graph, merging parallel edges.
func (b *Builder) Build() *Graph {
	type key struct{ u, v int32 }
	merged := make(map[key]int64, len(b.us))
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if u > v {
			u, v = v, u
		}
		merged[key{u, v}] += b.ws[i]
	}
	g := &Graph{
		nodeWeight: b.nodeWeight,
		adj:        make([][]Arc, b.n),
	}
	deg := make([]int, b.n)
	for k := range merged {
		deg[k.u]++
		deg[k.v]++
	}
	for v := range g.adj {
		g.adj[v] = make([]Arc, 0, deg[v])
	}
	for k, w := range merged {
		g.adj[k.u] = append(g.adj[k.u], Arc{To: int(k.v), W: w})
		g.adj[k.v] = append(g.adj[k.v], Arc{To: int(k.u), W: w})
		g.totalEdgeW += w
		g.numEdges++
	}
	for v := range g.adj {
		arcs := g.adj[v]
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
	}
	return g
}

// Set is a coarsening hierarchy: Levels[0] is the finest graph and
// Levels[len-1] the most reduced. Up[i][v] gives the parent of node v of
// Levels[i] in Levels[i+1]. Both the multilevel graph set G = {G0…Gn} and
// the hybrid graph set G' = {G'0…G'n} of the paper are represented this
// way.
type Set struct {
	Levels []*Graph
	Up     [][]int
}

// Validate checks structural invariants of the set.
func (s *Set) Validate() error {
	if len(s.Levels) == 0 {
		return fmt.Errorf("graph: empty set")
	}
	if len(s.Up) != len(s.Levels)-1 {
		return fmt.Errorf("graph: %d levels but %d up-maps", len(s.Levels), len(s.Up))
	}
	for i, up := range s.Up {
		if len(up) != s.Levels[i].NumNodes() {
			return fmt.Errorf("graph: up-map %d has %d entries for %d nodes", i, len(up), s.Levels[i].NumNodes())
		}
		for v, p := range up {
			if p < 0 || p >= s.Levels[i+1].NumNodes() {
				return fmt.Errorf("graph: node %d of level %d maps to invalid parent %d", v, i, p)
			}
		}
	}
	return nil
}

// Coarsest returns the most reduced graph in the set.
func (s *Set) Coarsest() *Graph { return s.Levels[len(s.Levels)-1] }

// ProjectToFinest maps an assignment on the coarsest level down to level 0:
// each node inherits the value of its ancestor.
func (s *Set) ProjectToFinest(coarsest []int) []int {
	cur := coarsest
	for i := len(s.Up) - 1; i >= 0; i-- {
		next := make([]int, len(s.Up[i]))
		for v, p := range s.Up[i] {
			next[v] = cur[p]
		}
		cur = next
	}
	return cur
}
