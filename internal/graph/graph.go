// Package graph provides the weighted graph representation shared by the
// coarsening, hybrid-graph and partitioning stages. The overlap graph G0
// (paper §II.C) has one node per read and one weighted edge per accepted
// overlap, the edge weight being the alignment length.
//
// Graphs are stored in CSR (compressed sparse row) form: one offsets
// array plus one packed arcs array, adjacency sorted by neighbour id
// within each node. Construction merges parallel edges with a sort-based
// counting pipeline (see csr.go) that runs on a bounded worker pool and
// produces an identical graph at any worker count.
package graph

import (
	"context"
	"fmt"
	"sort"

	"focus/internal/par"
)

// Arc is one directed half of an undirected weighted edge.
type Arc struct {
	To int
	W  int64
}

// Edge is a weighted undirected edge in bulk-construction form.
type Edge struct {
	U, V int32
	W    int64
}

// Graph is a static undirected weighted graph with weighted nodes.
// Parallel edges are merged at build time (weights summed); self-loops are
// dropped. The adjacency lives in one packed CSR arena: offsets has
// NumNodes()+1 entries and arcs[offsets[v]:offsets[v+1]] is the
// neighbourhood of v, sorted by neighbour id.
type Graph struct {
	nodeWeight []int64
	offsets    []int32
	arcs       []Arc
	totalEdgeW int64 // sum of edge weights, each edge counted once
	totalNodeW int64 // cached sum of node weights
	numEdges   int
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeWeight) }

// NumEdges returns |E| (undirected edges).
func (g *Graph) NumEdges() int { return g.numEdges }

// TotalEdgeWeight returns the sum of all edge weights.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEdgeW }

// NodeWeight returns the weight of node v.
func (g *Graph) NodeWeight(v int) int64 { return g.nodeWeight[v] }

// TotalNodeWeight returns the sum of node weights, cached at build time.
func (g *Graph) TotalNodeWeight() int64 { return g.totalNodeW }

// Adj returns the adjacency list of v, sorted by neighbour id. Callers
// must not modify it.
func (g *Graph) Adj(v int) []Arc {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.arcs[lo:hi:hi]
}

// Degree returns the number of distinct neighbours of v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// EdgeWeight returns the weight of edge {u,v}, or 0 if absent.
func (g *Graph) EdgeWeight(u, v int) int64 {
	lo, hi := int(g.offsets[u]), int(g.offsets[u+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.arcs[mid].To < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(g.offsets[u+1]) && g.arcs[lo].To == v {
		return g.arcs[lo].W
	}
	return 0
}

// Equal reports whether two graphs are byte-identical: same node weights,
// same CSR offsets and same packed arcs.
func (g *Graph) Equal(o *Graph) bool {
	if g.NumNodes() != o.NumNodes() || g.numEdges != o.numEdges ||
		g.totalEdgeW != o.totalEdgeW || g.totalNodeW != o.totalNodeW {
		return false
	}
	for i, w := range g.nodeWeight {
		if o.nodeWeight[i] != w {
			return false
		}
	}
	for i, off := range g.offsets {
		if o.offsets[i] != off {
			return false
		}
	}
	for i, a := range g.arcs {
		if o.arcs[i] != a {
			return false
		}
	}
	return true
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n          int
	nodeWeight []int64
	edges      []Edge
}

// NewBuilder creates a builder for n nodes, all with weight 1.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, nodeWeight: make([]int64, n)}
	for i := range b.nodeWeight {
		b.nodeWeight[i] = 1
	}
	return b
}

// SetNodeWeight overrides the weight of node v.
func (b *Builder) SetNodeWeight(v int, w int64) { b.nodeWeight[v] = w }

// AddEdge records an undirected edge {u,v} with weight w. Multiple
// additions of the same pair accumulate. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int, w int64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	b.edges = append(b.edges, Edge{U: int32(u), V: int32(v), W: w})
	return nil
}

// AddEdges bulk-appends edges (self-loops are skipped, weights of repeated
// pairs accumulate at Build).
func (b *Builder) AddEdges(edges []Edge) error {
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= b.n || e.V < 0 || int(e.V) >= b.n {
			return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, b.n)
		}
	}
	b.edges = append(b.edges, edges...)
	return nil
}

// Build assembles the graph, merging parallel edges, on a worker pool
// sized by GOMAXPROCS. The result is identical at any worker count.
func (b *Builder) Build() *Graph { return b.BuildPar(0) }

// BuildPar is Build with an explicit worker count (<= 0 means
// GOMAXPROCS). The output is byte-identical for every worker count.
func (b *Builder) BuildPar(workers int) *Graph {
	return buildCSR(b.n, b.nodeWeight, [][]Edge{b.edges}, workers, nil)
}

// BuildParCtx is BuildPar bounded by ctx: a cancel abandons the build at
// the next pipeline-stage or node-chunk boundary and returns the
// context's cause. A nil ctx never cancels.
func (b *Builder) BuildParCtx(ctx context.Context, workers int) (*Graph, error) {
	gate := par.GateFor(ctx)
	g := buildCSR(b.n, b.nodeWeight, [][]Edge{b.edges}, workers, gate)
	if g == nil {
		return nil, gate.Err()
	}
	return g, nil
}

// BuildMapMerge is the pre-CSR reference implementation of Build: a
// map-based edge merge followed by per-node sorting. It is retained for
// equivalence tests and allocation benchmarks against the sort-based
// pipeline; new code should call Build.
func (b *Builder) BuildMapMerge() *Graph {
	type key struct{ u, v int32 }
	merged := make(map[key]int64, len(b.edges))
	for _, e := range b.edges {
		u, v := e.U, e.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		merged[key{u, v}] += e.W
	}
	adj := make([][]Arc, b.n)
	deg := make([]int, b.n)
	for k := range merged {
		deg[k.u]++
		deg[k.v]++
	}
	for v := range adj {
		adj[v] = make([]Arc, 0, deg[v])
	}
	g := &Graph{nodeWeight: b.nodeWeight}
	for k, w := range merged {
		adj[k.u] = append(adj[k.u], Arc{To: int(k.v), W: w})
		adj[k.v] = append(adj[k.v], Arc{To: int(k.u), W: w})
		g.totalEdgeW += w
		g.numEdges++
	}
	for _, w := range b.nodeWeight {
		g.totalNodeW += w
	}
	g.offsets = make([]int32, b.n+1)
	total := 0
	for v, arcs := range adj {
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
		total += len(arcs)
		g.offsets[v+1] = int32(total)
	}
	g.arcs = make([]Arc, 0, total)
	for _, arcs := range adj {
		g.arcs = append(g.arcs, arcs...)
	}
	return g
}

// FromEdges builds a graph directly from pre-validated edge shards: every
// edge's endpoints must lie in [0,n) (self-loops are dropped). nodeWeight
// is adopted, not copied, and must have n entries. The shards may come
// from concurrent emitters; the result depends only on the multiset of
// edges, not on sharding or worker count.
func FromEdges(n int, nodeWeight []int64, shards [][]Edge, workers int) *Graph {
	return buildCSR(n, nodeWeight, shards, workers, nil)
}

// FromEdgesCtx is FromEdges bounded by ctx (see BuildParCtx).
func FromEdgesCtx(ctx context.Context, n int, nodeWeight []int64, shards [][]Edge, workers int) (*Graph, error) {
	gate := par.GateFor(ctx)
	g := buildCSR(n, nodeWeight, shards, workers, gate)
	if g == nil {
		return nil, gate.Err()
	}
	return g, nil
}

// Set is a coarsening hierarchy: Levels[0] is the finest graph and
// Levels[len-1] the most reduced. Up[i][v] gives the parent of node v of
// Levels[i] in Levels[i+1]. Both the multilevel graph set G = {G0…Gn} and
// the hybrid graph set G' = {G'0…G'n} of the paper are represented this
// way.
type Set struct {
	Levels []*Graph
	Up     [][]int
}

// Validate checks structural invariants of the set.
func (s *Set) Validate() error {
	if len(s.Levels) == 0 {
		return fmt.Errorf("graph: empty set")
	}
	if len(s.Up) != len(s.Levels)-1 {
		return fmt.Errorf("graph: %d levels but %d up-maps", len(s.Levels), len(s.Up))
	}
	for i, up := range s.Up {
		if len(up) != s.Levels[i].NumNodes() {
			return fmt.Errorf("graph: up-map %d has %d entries for %d nodes", i, len(up), s.Levels[i].NumNodes())
		}
		for v, p := range up {
			if p < 0 || p >= s.Levels[i+1].NumNodes() {
				return fmt.Errorf("graph: node %d of level %d maps to invalid parent %d", v, i, p)
			}
		}
	}
	return nil
}

// Coarsest returns the most reduced graph in the set.
func (s *Set) Coarsest() *Graph { return s.Levels[len(s.Levels)-1] }

// ProjectToFinest maps an assignment on the coarsest level down to level 0:
// each node inherits the value of its ancestor. A flip-flop buffer pair is
// reused across levels, so the projection allocates at most two slices
// regardless of depth.
func (s *Set) ProjectToFinest(coarsest []int) []int {
	if len(s.Up) == 0 {
		return coarsest
	}
	maxN := 0
	for _, up := range s.Up {
		if len(up) > maxN {
			maxN = len(up)
		}
	}
	bufA := make([]int, maxN)
	var bufB []int
	if len(s.Up) > 1 {
		bufB = make([]int, maxN)
	}
	cur := coarsest
	for i := len(s.Up) - 1; i >= 0; i-- {
		up := s.Up[i]
		next := bufA[:len(up)]
		bufA, bufB = bufB, bufA // cur's storage becomes the next spare
		for v, p := range up {
			next[v] = cur[p]
		}
		cur = next
	}
	return cur
}
