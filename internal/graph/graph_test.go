package graph

import (
	"math/rand"
	"testing"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	for _, e := range []struct {
		u, v int
		w    int64
	}{{0, 1, 5}, {1, 2, 7}, {0, 2, 3}} {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.TotalEdgeWeight() != 15 {
		t.Errorf("TotalEdgeWeight = %d", g.TotalEdgeWeight())
	}
	if g.TotalNodeWeight() != 3 {
		t.Errorf("TotalNodeWeight = %d", g.TotalNodeWeight())
	}
	if g.EdgeWeight(0, 1) != 5 || g.EdgeWeight(1, 0) != 5 {
		t.Errorf("EdgeWeight(0,1) = %d", g.EdgeWeight(0, 1))
	}
	if g.EdgeWeight(0, 0) != 0 {
		t.Errorf("self edge weight = %d", g.EdgeWeight(0, 0))
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
}

func TestParallelEdgesMerge(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(1, 0, 4) // same undirected edge
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.EdgeWeight(0, 1) != 7 {
		t.Errorf("merged weight = %d", g.EdgeWeight(0, 1))
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 0, 9)
	_ = b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 || g.TotalEdgeWeight() != 1 {
		t.Errorf("edges=%d weight=%d", g.NumEdges(), g.TotalEdgeWeight())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative node accepted")
	}
}

func TestNodeWeights(t *testing.T) {
	b := NewBuilder(3)
	b.SetNodeWeight(1, 10)
	g := b.Build()
	if g.NodeWeight(0) != 1 || g.NodeWeight(1) != 10 {
		t.Errorf("weights = %d, %d", g.NodeWeight(0), g.NodeWeight(1))
	}
	if g.TotalNodeWeight() != 12 {
		t.Errorf("total = %d", g.TotalNodeWeight())
	}
}

func TestAdjSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	b := NewBuilder(50)
	for i := 0; i < 300; i++ {
		_ = b.AddEdge(rng.Intn(50), rng.Intn(50), int64(1+rng.Intn(9)))
	}
	g := b.Build()
	for v := 0; v < g.NumNodes(); v++ {
		arcs := g.Adj(v)
		for i := 1; i < len(arcs); i++ {
			if arcs[i-1].To >= arcs[i].To {
				t.Fatalf("adj of %d not strictly sorted: %v", v, arcs)
			}
		}
		for _, a := range arcs {
			if g.EdgeWeight(a.To, v) != a.W {
				t.Fatalf("asymmetric edge %d-%d", v, a.To)
			}
		}
	}
}

func TestSetValidateAndProject(t *testing.T) {
	// Level 0: 4 nodes; level 1: 2 nodes (0,1 -> 0; 2,3 -> 1).
	b0 := NewBuilder(4)
	_ = b0.AddEdge(0, 1, 1)
	_ = b0.AddEdge(2, 3, 1)
	_ = b0.AddEdge(1, 2, 1)
	g0 := b0.Build()
	b1 := NewBuilder(2)
	_ = b1.AddEdge(0, 1, 1)
	g1 := b1.Build()
	s := &Set{Levels: []*Graph{g0, g1}, Up: [][]int{{0, 0, 1, 1}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Coarsest() != g1 {
		t.Error("Coarsest wrong")
	}
	got := s.ProjectToFinest([]int{7, 9})
	want := []int{7, 7, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProjectToFinest = %v, want %v", got, want)
		}
	}
}

func TestSetValidateErrors(t *testing.T) {
	if err := (&Set{}).Validate(); err == nil {
		t.Error("empty set validated")
	}
	g := NewBuilder(2).Build()
	s := &Set{Levels: []*Graph{g, g}, Up: nil}
	if err := s.Validate(); err == nil {
		t.Error("missing up-map validated")
	}
	s = &Set{Levels: []*Graph{g, g}, Up: [][]int{{0}}}
	if err := s.Validate(); err == nil {
		t.Error("short up-map validated")
	}
	s = &Set{Levels: []*Graph{g, g}, Up: [][]int{{0, 5}}}
	if err := s.Validate(); err == nil {
		t.Error("invalid parent validated")
	}
}
