package graph

import (
	"math/rand"
	"testing"
)

// randomBuilder fills a builder with a random weighted multigraph
// (duplicate edges and self-loops included, to exercise merge/drop paths).
func randomBuilder(n, edges int, rng *rand.Rand) *Builder {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetNodeWeight(v, int64(1+rng.Intn(5)))
	}
	for i := 0; i < edges; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n), int64(1+rng.Intn(100)))
	}
	return b
}

// TestBuildMatchesMapMerge: the sort-based CSR build and the legacy
// map-based merge produce identical graphs on random multigraphs.
func TestBuildMatchesMapMerge(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		b := randomBuilder(n, rng.Intn(8*n), rng)
		sorted := b.Build()
		legacy := b.BuildMapMerge()
		if !sorted.Equal(legacy) {
			t.Fatalf("seed %d: sort-based build diverged from map merge", seed)
		}
		if sorted.TotalNodeWeight() != legacy.TotalNodeWeight() {
			t.Fatalf("seed %d: node weight totals differ", seed)
		}
	}
}

// TestBuildParWorkerEquivalence: the parallel build is byte-identical at
// worker counts 1, 2 and 8.
func TestBuildParWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 2 + rng.Intn(300)
		b := randomBuilder(n, rng.Intn(10*n), rng)
		ref := b.BuildPar(1)
		for _, w := range []int{2, 8} {
			if got := b.BuildPar(w); !got.Equal(ref) {
				t.Fatalf("seed %d: BuildPar(%d) != BuildPar(1)", seed, w)
			}
		}
	}
}

// TestContractWorkerEquivalence: Contract is byte-identical at worker
// counts 1, 2 and 8 for random group mappings.
func TestContractWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 2 + rng.Intn(300)
		g := randomBuilder(n, rng.Intn(10*n), rng).Build()
		numGroups := 1 + rng.Intn(n)
		group := make([]int, n)
		for v := range group {
			group[v] = rng.Intn(numGroups)
		}
		ref := Contract(g, group, numGroups, 1)
		for _, w := range []int{2, 8} {
			if got := Contract(g, group, numGroups, w); !got.Equal(ref) {
				t.Fatalf("seed %d: Contract with %d workers diverged", seed, w)
			}
		}
	}
}

// TestContractTotals: contraction preserves node-weight totals and never
// increases edge weight (intra-group edges vanish).
func TestContractTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomBuilder(120, 600, rng).Build()
	group := make([]int, 120)
	for v := range group {
		group[v] = v / 3
	}
	c := Contract(g, group, 40, 0)
	if c.TotalNodeWeight() != g.TotalNodeWeight() {
		t.Fatalf("node weight %d -> %d", g.TotalNodeWeight(), c.TotalNodeWeight())
	}
	if c.TotalEdgeWeight() > g.TotalEdgeWeight() {
		t.Fatalf("edge weight grew: %d -> %d", g.TotalEdgeWeight(), c.TotalEdgeWeight())
	}
}

func benchBuilder(n, deg int) *Builder {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(n)
	for i := 0; i < n*deg; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n), int64(1+rng.Intn(100)))
	}
	return b
}

// BenchmarkGraphBuild compares the legacy map-based edge merge against the
// sort-based CSR build, serial and parallel.
func BenchmarkGraphBuild(b *testing.B) {
	bld := benchBuilder(20000, 16)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildMapMerge()
		}
	})
	b.Run("sorted-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildPar(1)
		}
	})
	b.Run("sorted-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = bld.BuildPar(0)
		}
	})
}
