package scaffold

// chainer greedily assembles contig chains from orientation-bearing
// links. Each contig sits in exactly one chain; a join succeeds only
// when contig a can serve as its chain's right end and contig b as the
// other chain's left end, with the demanded orientations (flipping a
// whole chain is allowed — reversing a scaffold is free).
type chainer struct {
	chains map[int]*chainRec
	where  map[int32]int
	next   int
}

type chainRec struct {
	contigs []int32
	fwd     []bool
	gaps    []int
}

func newChainer(kept []int) *chainer {
	c := &chainer{chains: map[int]*chainRec{}, where: map[int32]int{}}
	for _, ci := range kept {
		c.chains[c.next] = &chainRec{contigs: []int32{int32(ci)}, fwd: []bool{true}}
		c.where[int32(ci)] = c.next
		c.next++
	}
	return c
}

func (r *chainRec) flip() {
	for i, j := 0, len(r.contigs)-1; i < j; i, j = i+1, j-1 {
		r.contigs[i], r.contigs[j] = r.contigs[j], r.contigs[i]
		r.fwd[i], r.fwd[j] = r.fwd[j], r.fwd[i]
	}
	for i := range r.fwd {
		r.fwd[i] = !r.fwd[i]
	}
	for i, j := 0, len(r.gaps)-1; i < j; i, j = i+1, j-1 {
		r.gaps[i], r.gaps[j] = r.gaps[j], r.gaps[i]
	}
}

// asRightEnd prepares r so that contig a is its last element with
// orientation aFwd. Reports success.
func (r *chainRec) asRightEnd(a int32, aFwd bool) bool {
	last := len(r.contigs) - 1
	if r.contigs[last] == a {
		if r.fwd[last] == aFwd {
			return true
		}
		if len(r.contigs) == 1 {
			r.fwd[0] = aFwd
			return true
		}
		return false
	}
	if r.contigs[0] == a {
		r.flip()
		return r.contigs[len(r.contigs)-1] == a && r.fwd[len(r.contigs)-1] == aFwd
	}
	return false
}

// asLeftEnd prepares r so that contig b is its first element with
// orientation bFwd.
func (r *chainRec) asLeftEnd(b int32, bFwd bool) bool {
	if r.contigs[0] == b {
		if r.fwd[0] == bFwd {
			return true
		}
		if len(r.contigs) == 1 {
			r.fwd[0] = bFwd
			return true
		}
		return false
	}
	last := len(r.contigs) - 1
	if r.contigs[last] == b {
		r.flip()
		return r.contigs[0] == b && r.fwd[0] == bFwd
	}
	return false
}

// join links a (oriented aFwd) to be followed by b (oriented bFwd) with
// the given gap. Returns whether the join was applied.
func (c *chainer) join(a int32, aFwd bool, b int32, bFwd bool, gap int) bool {
	ca, okA := c.where[a]
	cb, okB := c.where[b]
	if !okA || !okB || ca == cb {
		return false
	}
	ra, rb := c.chains[ca], c.chains[cb]
	if !ra.asRightEnd(a, aFwd) || !rb.asLeftEnd(b, bFwd) {
		return false
	}
	ra.gaps = append(ra.gaps, gap)
	ra.gaps = append(ra.gaps, rb.gaps...)
	ra.contigs = append(ra.contigs, rb.contigs...)
	ra.fwd = append(ra.fwd, rb.fwd...)
	for _, ci := range rb.contigs {
		c.where[ci] = ca
	}
	delete(c.chains, cb)
	return true
}

// scaffolds emits the chains, longest (by contig count) first, ties by
// first contig id.
func (c *chainer) scaffolds() []Scaffold {
	var out []Scaffold
	for _, r := range c.chains {
		sc := Scaffold{Gaps: r.gaps}
		for i, ci := range r.contigs {
			sc.Contigs = append(sc.Contigs, int(ci))
			sc.Forward = append(sc.Forward, r.fwd[i])
		}
		out = append(out, sc)
	}
	sortScaffolds(out)
	return out
}

func sortScaffolds(out []Scaffold) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if len(b.Contigs) > len(a.Contigs) ||
				(len(b.Contigs) == len(a.Contigs) && b.Contigs[0] < a.Contigs[0]) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
}
