// Package scaffold orders and orients contigs into scaffolds using
// mate-pair links, the classical post-assembly stage (PCAP, the paper's
// reference [9], parallelizes exactly this step). The pipeline is:
//
//  1. Dedupe: Focus assembles both strands separately (preprocessing adds
//     every read's reverse complement), so each genomic region yields a
//     forward and a reverse contig; deduplication keeps one per region.
//  2. Place: mates are anchored on contigs by unique k-mers.
//  3. Link: pairs whose mates land on different contigs vote for an
//     order/orientation/gap; votes are bundled per contig pair.
//  4. Chain: contig ends are greedily joined by strongest bundles,
//     producing scaffolds with N-filled gaps.
package scaffold

import (
	"bytes"
	"fmt"
	"sort"

	"focus/internal/anchor"
	"focus/internal/dna"
)

// Config controls scaffolding.
type Config struct {
	K int // anchor/dedupe k-mer size
	// MinLinks is the number of agreeing mate pairs required to join two
	// contigs.
	MinLinks int
	// InsertMean/InsertSD describe the library; gaps are estimated from
	// InsertMean and pairs implying a gap beyond InsertMean+4*InsertSD
	// are discarded.
	InsertMean int
	InsertSD   int
	// DedupeOverlap is the fraction of a contig's k-mers that must hit
	// another contig (either strand) for it to count as a duplicate.
	DedupeOverlap float64
	// MinGap floors the estimated gap so joined contigs keep at least
	// this many Ns between them.
	MinGap int
}

// DefaultConfig returns scaffolding defaults for a 400±40 bp library.
func DefaultConfig() Config {
	return Config{K: 25, MinLinks: 3, InsertMean: 400, InsertSD: 40, DedupeOverlap: 0.8, MinGap: 10}
}

// Placement is one read anchored on a contig.
type Placement struct {
	Contig  int32
	Pos     int32 // leftmost contig position of the read
	Forward bool  // read maps to the contig's forward strand
}

// Scaffold is an ordered, oriented chain of contigs.
type Scaffold struct {
	// Contigs[i] is a contig index; Forward[i] its orientation; Gaps[i]
	// the estimated gap AFTER contig i (len = len(Contigs)-1).
	Contigs []int
	Forward []bool
	Gaps    []int
}

// Result is the scaffolding output.
type Result struct {
	Kept      []int // contig indices surviving deduplication
	Scaffolds []Scaffold
	// Sequences renders each scaffold with N-filled gaps.
	Sequences [][]byte
	Links     int // bundles used
}

// Dedupe returns the indices of contigs that are not (near-)duplicates —
// on either strand — of an earlier kept contig. Contigs are considered
// longest-first so the best representative of each region survives.
func Dedupe(contigs [][]byte, cfg Config) []int {
	order := make([]int, len(contigs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if len(contigs[order[a]]) != len(contigs[order[b]]) {
			return len(contigs[order[a]]) > len(contigs[order[b]])
		}
		return order[a] < order[b]
	})
	seen := map[dna.Kmer]bool{}
	var kept []int
	for _, ci := range order {
		c := contigs[ci]
		total, hits := 0, 0
		it := dna.NewKmerIter(c, cfg.K)
		var kms []dna.Kmer
		for {
			km, _, ok := it.Next()
			if !ok {
				break
			}
			can := km.Canonical(cfg.K)
			kms = append(kms, can)
			total++
			if seen[can] {
				hits++
			}
		}
		if total == 0 || float64(hits)/float64(total) >= cfg.DedupeOverlap {
			continue // duplicate (or unindexable)
		}
		kept = append(kept, ci)
		for _, km := range kms {
			seen[km] = true
		}
	}
	sort.Ints(kept)
	return kept
}

// place adapts an anchor hit to a Placement.
func place(ix *anchor.Index, read []byte) (Placement, bool) {
	h, ok := ix.Place(read, 2)
	if !ok {
		return Placement{}, false
	}
	return Placement{Contig: h.Seq, Pos: h.Pos, Forward: h.Forward}, true
}

// link is one mate-pair vote joining two contig ends.
type link struct {
	a, b int32 // contig ids, a < b
	aFwd bool  // orientation of a in the implied scaffold (b follows a)
	bFwd bool
	gap  int
}

// Build runs the full scaffolding pipeline. reads must be in mate order
// (2i, 2i+1 are mates, as simulate produces with Paired=true).
func Build(contigs [][]byte, reads []dna.Read, cfg Config) (*Result, error) {
	if cfg.K <= 0 || cfg.K > dna.MaxK {
		return nil, fmt.Errorf("scaffold: k=%d out of range", cfg.K)
	}
	if len(reads)%2 != 0 {
		return nil, fmt.Errorf("scaffold: odd read count %d for paired input", len(reads))
	}
	res := &Result{Kept: Dedupe(contigs, cfg)}
	targets := make([][]byte, len(res.Kept))
	ids := make([]int32, len(res.Kept))
	for i, ci := range res.Kept {
		targets[i] = contigs[ci]
		ids[i] = int32(ci)
	}
	ix, err := anchor.New(targets, ids, cfg.K)
	if err != nil {
		return nil, err
	}

	// Collect links from pairs whose mates land on different contigs.
	bundles := map[[2]int32][]link{}
	for i := 0; i+1 < len(reads); i += 2 {
		p1, ok1 := place(ix, reads[i].Seq)
		p2, ok2 := place(ix, reads[i+1].Seq)
		if !ok1 || !ok2 || p1.Contig == p2.Contig {
			continue
		}
		l, ok := pairLink(p1, p2, len(reads[i].Seq), len(reads[i+1].Seq), contigs, cfg)
		if !ok {
			continue
		}
		key := [2]int32{l.a, l.b}
		bundles[key] = append(bundles[key], l)
	}

	// Bundle: per contig pair, majority orientation, median gap.
	type bundle struct {
		link
		n int
	}
	var strong []bundle
	for _, ls := range bundles {
		type sig struct{ aF, bF bool }
		bySig := map[sig][]link{}
		for _, l := range ls {
			bySig[sig{l.aFwd, l.bFwd}] = append(bySig[sig{l.aFwd, l.bFwd}], l)
		}
		var top []link
		for _, group := range bySig {
			if len(group) > len(top) {
				top = group
			}
		}
		if len(top) < cfg.MinLinks {
			continue
		}
		gaps := make([]int, len(top))
		for i, l := range top {
			gaps[i] = l.gap
		}
		sort.Ints(gaps)
		b := bundle{link: top[0], n: len(top)}
		b.gap = gaps[len(gaps)/2]
		strong = append(strong, b)
	}
	sort.Slice(strong, func(i, j int) bool {
		if strong[i].n != strong[j].n {
			return strong[i].n > strong[j].n
		}
		if strong[i].a != strong[j].a {
			return strong[i].a < strong[j].a
		}
		return strong[i].b < strong[j].b
	})
	res.Links = len(strong)

	// Greedy chaining on contig ends.
	chains := newChainer(res.Kept)
	for _, b := range strong {
		chains.join(b.a, b.aFwd, b.b, b.bFwd, b.gap)
	}
	res.Scaffolds = chains.scaffolds()
	for _, sc := range res.Scaffolds {
		res.Sequences = append(res.Sequences, renderScaffold(contigs, sc, cfg.MinGap))
	}
	return res, nil
}

// pairLink converts two mate placements into a scaffold link. Mates are
// FR: /1 forward implies the fragment runs rightward from p1 on its
// contig; /2 is the fragment's far end reverse-complemented.
func pairLink(p1, p2 Placement, len1, len2 int, contigs [][]byte, cfg Config) (link, bool) {
	// Distance from each read to the end of its contig that the
	// fragment runs off. For /1 (fragment continues 3' of the read on
	// its strand): forward -> right end, reverse -> left end. For /2 the
	// fragment continues 3' of the read on ITS strand as well (the read
	// points back into the fragment).
	tail := func(p Placement, rlen int, clen int) int {
		if p.Forward {
			return clen - int(p.Pos)
		}
		return int(p.Pos) + rlen
	}
	c1, c2 := contigs[p1.Contig], contigs[p2.Contig]
	t1 := tail(p1, len1, len(c1))
	t2 := tail(p2, len2, len(c2))
	gap := cfg.InsertMean - t1 - t2
	// Reject geometrically implausible pairs: a gap beyond the library's
	// reach, or an implied contig overlap larger than half an insert.
	if gap > cfg.InsertMean+4*cfg.InsertSD || gap < -cfg.InsertMean/2 {
		return link{}, false
	}
	// Scaffold order: contig of /1 first, oriented so the fragment exits
	// rightward; contig of /2 second, oriented so the fragment enters
	// from the left (i.e. /2 read maps reverse on the scaffold).
	aFwd := p1.Forward
	bFwd := !p2.Forward
	l := link{a: p1.Contig, b: p2.Contig, aFwd: aFwd, bFwd: bFwd, gap: gap}
	if l.a > l.b {
		// Normalize: reversing the scaffold flips order and orientations.
		l.a, l.b = l.b, l.a
		l.aFwd, l.bFwd = !bFwd, !aFwd
	}
	return l, true
}

// renderScaffold joins oriented contigs with N gaps.
func renderScaffold(contigs [][]byte, sc Scaffold, minGap int) []byte {
	var out []byte
	for i, ci := range sc.Contigs {
		seq := contigs[ci]
		if !sc.Forward[i] {
			seq = dna.ReverseComplement(seq)
		}
		out = append(out, seq...)
		if i < len(sc.Gaps) {
			gap := sc.Gaps[i]
			if gap < minGap {
				gap = minGap
			}
			out = append(out, bytes.Repeat([]byte("N"), gap)...)
		}
	}
	return out
}
