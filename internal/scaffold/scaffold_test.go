package scaffold

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/anchor"
	"focus/internal/dna"
	"focus/internal/simulate"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func TestDedupeRemovesReverseComplements(t *testing.T) {
	g := randGenome(1, 3000)
	contigs := [][]byte{
		g[:1000],
		dna.ReverseComplement(g[:1000]), // rc duplicate
		g[1500:2500],
		g[100:900], // contained in contig 0 -> duplicate k-mers
	}
	kept := Dedupe(contigs, DefaultConfig())
	want := []int{0, 2}
	if len(kept) != len(want) {
		t.Fatalf("kept = %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept = %v, want %v", kept, want)
		}
	}
}

func TestPlaceBothStrands(t *testing.T) {
	g := randGenome(2, 2000)
	contigs := [][]byte{g[:1000], g[1100:2000]}
	ix, err := anchor.New(contigs, nil, 25)
	if err != nil {
		t.Fatal(err)
	}

	read := g[300:400]
	p, ok := place(ix, read)
	if !ok || p.Contig != 0 || !p.Forward || p.Pos != 300 {
		t.Fatalf("forward placement = %+v ok=%v", p, ok)
	}
	rc := dna.ReverseComplement(read)
	p, ok = place(ix, rc)
	if !ok || p.Contig != 0 || p.Forward || p.Pos != 300 {
		t.Fatalf("reverse placement = %+v ok=%v", p, ok)
	}
	if _, ok := place(ix, randGenome(3, 100)); ok {
		t.Error("random read placed")
	}
}

func TestPairLinkGeometry(t *testing.T) {
	g := randGenome(4, 3000)
	// Contigs: A = g[0:1000), B = g[1150:2150); gap 150.
	contigs := [][]byte{g[:1000], g[1150:2150]}
	cfg := DefaultConfig() // insert 400
	// Fragment at genome 850..1250: /1 fwd at 850 (A pos 850), /2 rc at
	// 1150..1250 (B pos 0).
	p1 := Placement{Contig: 0, Pos: 850, Forward: true}
	p2 := Placement{Contig: 1, Pos: 0, Forward: false}
	l, ok := pairLink(p1, p2, 100, 100, contigs, cfg)
	if !ok {
		t.Fatal("link rejected")
	}
	if l.a != 0 || l.b != 1 || !l.aFwd || !l.bFwd {
		t.Fatalf("link = %+v", l)
	}
	if l.gap != 150 {
		t.Errorf("gap = %d, want 150", l.gap)
	}
	// Implausible gap: mates too far inside their contigs.
	p1bad := Placement{Contig: 0, Pos: 0, Forward: true}
	if _, ok := pairLink(p1bad, p2, 100, 100, contigs, cfg); ok {
		t.Error("implausible link accepted")
	}
}

func TestChainerJoinsAndFlips(t *testing.T) {
	c := newChainer([]int{0, 1, 2})
	if !c.join(0, true, 1, true, 50) {
		t.Fatal("join 0->1 failed")
	}
	// Joining within the same chain must fail (cycle).
	if c.join(1, true, 0, true, 10) {
		t.Fatal("cycle join accepted")
	}
	// Join 2 before 0 using flipped orientations: link says "2 reversed
	// then 0 forward".
	if !c.join(2, false, 0, true, 30) {
		t.Fatal("join 2->0 failed")
	}
	scs := c.scaffolds()
	if len(scs) != 1 {
		t.Fatalf("scaffolds = %+v", scs)
	}
	sc := scs[0]
	wantOrder := []int{2, 0, 1}
	wantFwd := []bool{false, true, true}
	for i := range wantOrder {
		if sc.Contigs[i] != wantOrder[i] || sc.Forward[i] != wantFwd[i] {
			t.Fatalf("scaffold = %+v", sc)
		}
	}
	if sc.Gaps[0] != 30 || sc.Gaps[1] != 50 {
		t.Fatalf("gaps = %v", sc.Gaps)
	}
}

func TestBuildEndToEnd(t *testing.T) {
	// Genome cut into 4 contigs with gaps; both strands present (as the
	// Focus assembler emits); paired reads from the whole genome.
	genome := randGenome(5, 8000)
	cuts := [][2]int{{0, 1900}, {2050, 3900}, {4050, 5900}, {6050, 8000}}
	var contigs [][]byte
	for _, c := range cuts {
		contigs = append(contigs, genome[c[0]:c[1]])
		contigs = append(contigs, dna.ReverseComplement(genome[c[0]:c[1]]))
	}

	com, err := simulate.BuildCommunity(simulate.SingleGenome("s", 10, 6))
	if err != nil {
		t.Fatal(err)
	}
	_ = com
	// Paired reads straight off the genome (error-free).
	rng := rand.New(rand.NewSource(7))
	var reads []dna.Read
	for i := 0; i < 800; i++ {
		ins := 400 + rng.Intn(60) - 30
		start := rng.Intn(len(genome) - ins)
		r1 := append([]byte(nil), genome[start:start+100]...)
		r2 := dna.ReverseComplement(genome[start+ins-100 : start+ins])
		reads = append(reads, dna.Read{ID: "p/1", Seq: r1}, dna.Read{ID: "p/2", Seq: r2})
	}

	res, err := Build(contigs, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 4 {
		t.Fatalf("kept = %v, want the 4 strand-deduplicated contigs", res.Kept)
	}
	if len(res.Scaffolds) != 1 {
		t.Fatalf("got %d scaffolds, want 1 (links=%d)", len(res.Scaffolds), res.Links)
	}
	sc := res.Scaffolds[0]
	if len(sc.Contigs) != 4 {
		t.Fatalf("scaffold = %+v", sc)
	}
	// The scaffold must traverse the genome in order (possibly globally
	// reversed).
	first := sc.Contigs[0]
	ascending := first == res.Kept[0]
	for i := range sc.Contigs {
		want := res.Kept[i]
		if !ascending {
			want = res.Kept[len(res.Kept)-1-i]
		}
		if sc.Contigs[i] != want {
			t.Fatalf("scaffold order %v (kept %v)", sc.Contigs, res.Kept)
		}
	}
	// Gap estimates near the true 150 bp.
	for _, gap := range sc.Gaps {
		if gap < 50 || gap > 280 {
			t.Errorf("gap = %d, want ~150", gap)
		}
	}
	// Rendered sequence: contig bases + N gaps, total near genome size.
	seq := res.Sequences[0]
	n := bytes.Count(seq, []byte("N"))
	if n == 0 {
		t.Error("no gap Ns in scaffold sequence")
	}
	if len(seq) < 7000 || len(seq) > 9000 {
		t.Errorf("scaffold length = %d for %d bp genome", len(seq), len(genome))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, make([]dna.Read, 3), DefaultConfig()); err == nil {
		t.Error("odd read count accepted")
	}
	cfg := DefaultConfig()
	cfg.K = 0
	if _, err := Build(nil, nil, cfg); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBuildNoLinksLeavesSingletons(t *testing.T) {
	g := randGenome(8, 3000)
	contigs := [][]byte{g[:1000], g[2000:3000]}
	res, err := Build(contigs, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 2 {
		t.Fatalf("scaffolds = %d, want 2 singletons", len(res.Scaffolds))
	}
}
