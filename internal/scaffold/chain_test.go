package scaffold

import "testing"

func TestChainRecFlip(t *testing.T) {
	r := &chainRec{
		contigs: []int32{1, 2, 3},
		fwd:     []bool{true, false, true},
		gaps:    []int{10, 20},
	}
	r.flip()
	want := []int32{3, 2, 1}
	wantFwd := []bool{false, true, false}
	for i := range want {
		if r.contigs[i] != want[i] || r.fwd[i] != wantFwd[i] {
			t.Fatalf("flipped = %v %v", r.contigs, r.fwd)
		}
	}
	if r.gaps[0] != 20 || r.gaps[1] != 10 {
		t.Fatalf("gaps = %v", r.gaps)
	}
}

func TestAsRightEndOrientations(t *testing.T) {
	// Singleton chains can take any orientation.
	r := &chainRec{contigs: []int32{5}, fwd: []bool{true}}
	if !r.asRightEnd(5, false) || r.fwd[0] != false {
		t.Fatal("singleton reorientation failed")
	}
	// Multi-element chain: a at the tail with matching orientation.
	r = &chainRec{contigs: []int32{1, 2}, fwd: []bool{true, true}, gaps: []int{7}}
	if !r.asRightEnd(2, true) {
		t.Fatal("tail match failed")
	}
	// a at the tail with the WRONG orientation: rejected (cannot flip a
	// single element inside a chain).
	if r.asRightEnd(2, false) {
		t.Fatal("tail orientation mismatch accepted")
	}
	// a at the head: the chain flips.
	if !r.asRightEnd(1, false) {
		t.Fatal("head flip failed")
	}
	if r.contigs[1] != 1 || r.fwd[1] != false {
		t.Fatalf("after flip: %v %v", r.contigs, r.fwd)
	}
	// a not an end at all.
	r3 := &chainRec{contigs: []int32{1, 2, 3}, fwd: []bool{true, true, true}, gaps: []int{1, 2}}
	if r3.asRightEnd(2, true) {
		t.Fatal("middle element accepted as end")
	}
}

func TestAsLeftEndOrientations(t *testing.T) {
	r := &chainRec{contigs: []int32{1, 2}, fwd: []bool{true, true}, gaps: []int{7}}
	if !r.asLeftEnd(1, true) {
		t.Fatal("head match failed")
	}
	if r.asLeftEnd(1, false) {
		t.Fatal("head orientation mismatch accepted")
	}
	if !r.asLeftEnd(2, false) {
		t.Fatal("tail flip failed")
	}
	if r.contigs[0] != 2 || r.fwd[0] != false {
		t.Fatalf("after flip: %v %v", r.contigs, r.fwd)
	}
}

func TestChainerRejectsUnknownAndMiddle(t *testing.T) {
	c := newChainer([]int{0, 1, 2, 3})
	if c.join(9, true, 0, true, 1) {
		t.Fatal("unknown contig joined")
	}
	if !c.join(0, true, 1, true, 5) || !c.join(1, true, 2, true, 5) {
		t.Fatal("chain setup failed")
	}
	// 1 is now mid-chain: neither end role is possible.
	if c.join(1, true, 3, true, 5) {
		t.Fatal("mid-chain right end accepted")
	}
	if c.join(3, true, 1, true, 5) {
		t.Fatal("mid-chain left end accepted")
	}
}

func TestScaffoldsOrdering(t *testing.T) {
	c := newChainer([]int{0, 1, 2, 3, 4})
	_ = c.join(3, true, 4, true, 5)
	scs := c.scaffolds()
	if len(scs) != 4 {
		t.Fatalf("scaffolds = %d", len(scs))
	}
	// Longest chain first, then by first contig id.
	if len(scs[0].Contigs) != 2 || scs[0].Contigs[0] != 3 {
		t.Fatalf("first scaffold = %+v", scs[0])
	}
	if scs[1].Contigs[0] != 0 || scs[2].Contigs[0] != 1 || scs[3].Contigs[0] != 2 {
		t.Fatalf("singleton order: %+v", scs[1:])
	}
}
