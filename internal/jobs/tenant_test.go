package jobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/testutil"
)

// TestMultiTenantChaos is the headline robustness scenario: three
// concurrent jobs multiplexed onto one shared 4-worker fleet whose
// worker 3 hangs on every call (evicted at first contact). The worker
// choice is deterministic — job 1 gets view {0,1}, job 2 {2,3}, job 3
// {0,1} — so exactly one job collides with the fault. Every job must
// still finish byte-identical to its solo single-tenant baseline, the
// fault must stay contained to the colliding job's view, and the scraped
// /status and /metrics documents must agree with the injected fault.
// Then a fourth job is killed and resumed independently, and a fifth is
// cut by a mid-flight server drain and finished by a successor server
// over the same root — both byte-identical to their baselines.
func TestMultiTenantChaos(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	const k = 4
	inputs := []string{
		writeInput(t, 3000, 6, 101),
		writeInput(t, 4000, 6, 202),
		writeInput(t, 3500, 6, 303),
	}
	baselines := make([][][]byte, len(inputs))
	for i := range inputs {
		baselines[i] = soloBaseline(t, inputs[i], k)
	}
	bigInput := writeInput(t, 12000, 8, 404)
	bigBaseline := soloBaseline(t, bigInput, k)

	// Worker 3 hangs on every response; CallTimeout 1s + MaxFailures 1
	// evicts it at first contact. Workers 0-2 are clean.
	pool, err := dist.NewLocalChaosPool(4, assembly.NewService, dist.Options{
		CallTimeout: time.Second,
		MaxFailures: 1,
		Logf:        t.Logf,
	}, func(w int) *dist.ChaosConfig {
		if w == 3 {
			return &dist.ChaosConfig{Seed: 7, HangProb: 1, HangFor: 5 * time.Second}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	root := t.TempDir()
	s, err := NewServer(pool, Options{
		MaxRunning: 3, QueueDepth: 8, Root: root, Template: testTemplate(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Three tenants at once.
	ids := make([]string, len(inputs))
	for i, input := range inputs {
		ids[i], err = s.Submit(Spec{Name: "tenant", InputPath: input, K: k, MaxWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatalf("job %d (%s) failed under chaos: %v", i, id, err)
		}
		got, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !sameContigs(got, baselines[i]) {
			t.Fatalf("job %d diverged from its solo baseline under multi-tenant chaos (%d vs %d contigs)",
				i, len(got), len(baselines[i]))
		}
	}
	// Fault isolation: the deterministic least-assigned choice puts only
	// job 2 on the faulty worker; jobs 1 and 3 never touch it.
	wantViews := [][]int{{0, 1}, {2, 3}, {0, 1}}
	for i, id := range ids {
		st, _ := s.Status(id)
		if len(st.Workers) != 2 || st.Workers[0] != wantViews[i][0] || st.Workers[1] != wantViews[i][1] {
			t.Fatalf("job %d ran on view %v, want %v", i, st.Workers, wantViews[i])
		}
	}

	// Scraped /status: 4 workers, worker 3 evicted, the rest healthy.
	var page StatusPage
	getJSON(t, srv.URL+"/status", &page)
	if len(page.Fleet.Workers) != 4 || page.Fleet.Healthy != 3 {
		t.Fatalf("fleet snapshot %+v, want 4 workers with 3 healthy", page.Fleet)
	}
	if st := page.Fleet.Workers[3].State; st != dist.WorkerEvicted {
		t.Fatalf("worker 3 state %v, want evicted", st)
	}
	if page.Fleet.Evictions < 1 {
		t.Fatalf("fleet evictions %d, want >= 1", page.Fleet.Evictions)
	}

	// Scraped /metrics: the fault path is visible (job 2's placements on
	// worker 3 failed over to the survivor), no job degraded to local
	// fallback, and the queue fully drained.
	var snap MetricsSnapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	if snap.Counters["jobs_done_total"] != 3 || snap.Counters["jobs_admitted_total"] != 3 {
		t.Fatalf("job counters inconsistent: %v", snap.Counters)
	}
	faults := snap.Counters["assembly_partition_lost_total"] +
		snap.Counters["assembly_rehost_total"] +
		snap.Counters["assembly_rehost_failed_total"]
	if faults < 1 {
		t.Fatalf("no rehost path recorded after an eviction: %v", snap.Counters)
	}
	if snap.Counters["assembly_degraded_total"] != 0 {
		t.Fatalf("a tenant degraded to local fallback despite healthy survivors: %v", snap.Counters)
	}
	if snap.Gauges["jobs_running"] != 0 || snap.Gauges["queue_depth"] != 0 {
		t.Fatalf("gauges not drained: %v", snap.Gauges)
	}

	// Independent kill/resume: a fourth tenant is killed mid-run and
	// resumed from its own checkpoint namespace; the finished jobs above
	// are untouched and the output still matches the baseline.
	id4, err := s.Submit(Spec{Name: "killme", InputPath: bigInput, K: k, MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id4, Running, 10*time.Second)
	if err := s.Kill(id4); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id4); err == nil {
		t.Fatal("killed tenant reported success")
	}
	if st, _ := s.Status(id4); st.State != Killed || !st.Resumable {
		t.Fatalf("after kill: %+v, want Killed and resumable", st)
	}
	for i, id := range ids {
		if st, _ := s.Status(id); st.State != Done {
			t.Fatalf("kill of job 4 leaked into job %d: %+v", i, st)
		}
	}
	if err := s.Resume(id4); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id4); err != nil {
		t.Fatalf("resumed tenant failed: %v", err)
	}
	if got, _ := s.Result(id4); !sameContigs(got, bigBaseline) {
		t.Fatal("kill/resume tenant diverged from solo baseline")
	}

	// Mid-flight drain: a fifth tenant is cut while running. The drain
	// checkpoints it (Killed, resumable), the server stays queryable, and
	// a successor server over the same root requeues and finishes it.
	id5, err := s.Submit(Spec{Name: "drained", InputPath: bigInput, K: k, MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id5, Running, 10*time.Second)
	s.Drain(50 * time.Millisecond)
	if st, _ := s.Status(id5); st.State != Killed || !st.Resumable {
		t.Fatalf("drained tenant: %+v, want Killed and resumable", st)
	}
	getJSON(t, srv.URL+"/status", &page)
	if !page.Draining {
		t.Fatal("status page not draining after Drain")
	}
	s.Close()

	successor, err := NewServer(pool, Options{
		MaxRunning: 2, QueueDepth: 8, Root: root, Template: testTemplate(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { successor.Close() })
	if err := successor.Wait(id5); err != nil {
		t.Fatalf("requeued tenant failed on successor: %v", err)
	}
	if got, _ := successor.Result(id5); !sameContigs(got, bigBaseline) {
		t.Fatal("drain/restart tenant diverged from solo baseline")
	}
	// The finished jobs reloaded as terminal history, not as new work.
	for i, id := range ids {
		if st, err := successor.Status(id); err != nil || st.State != Done {
			t.Fatalf("job %d history on successor: %+v err %v", i, st, err)
		}
	}
}

func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
