package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	focus "focus"
	"focus/internal/assembly"
	"focus/internal/checkpoint"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds the number of queued (not yet running) jobs; a
	// submit beyond it is rejected with ErrQueueFull (0: 16).
	QueueDepth int
	// MaxRunning bounds concurrently running jobs (0: 4). Negative pauses
	// the scheduler entirely — jobs queue but never launch (tests use
	// this to exercise admission deterministically).
	MaxRunning int
	// MemoryBudgetMB is the total declared-memory budget across running
	// jobs (0: unaccounted). A spec above the whole budget is rejected at
	// admission (ErrQuota); an admitted job waits in the queue while
	// running jobs' estimates would overflow the budget.
	MemoryBudgetMB int
	// Root is the checkpoint root; each job gets Root/<id> as its private
	// namespace, making it independently killable/resumable and letting a
	// restarted server requeue unfinished jobs. Empty disables
	// durability.
	Root string
	// Grace is the default drain grace period (0: 5s).
	Grace time.Duration
	// Template is the per-job pipeline configuration; per-job fields
	// (Context, Deadline, Checkpoint, Metrics, PhaseCosts) are overwritten
	// per run. A zero template means focus.DefaultConfig().
	Template focus.Config
	// Logf receives server logs (nil: discard).
	Logf func(format string, args ...interface{})
}

// Server is the resident master: it owns one shared worker fleet and
// multiplexes admitted jobs onto per-job views of it.
type Server struct {
	pool  *dist.Pool
	opt   Options
	reg   *metrics.Registry
	costs *metrics.CostModel

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job // priority-descending, FIFO within a priority
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	running  int
	memInUse int
	assigned []int // per fleet worker: views currently including it
	draining bool
	closed   bool
	nextSeq  int

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup // running jobs
	schedWG    sync.WaitGroup // scheduler goroutine
}

// job is the server-side job record. status (and every other mutable
// field) is guarded by Server.mu.
type job struct {
	id       string
	dir      string // checkpoint namespace ("" = ephemeral)
	status   Status
	cancel   context.CancelCauseFunc // non-nil while running
	result   *focus.AssemblyResult   // retained while the server lives (Done only)
	watchers []chan Status
	done     chan struct{} // closed at terminal; replaced on Resume
}

// NewServer builds a resident master over pool. The server does not own
// the pool: Close drains the jobs but leaves the fleet running (the
// caller that built the fleet closes it). With Options.Root set, job
// records found under it are reloaded: finished jobs reappear as
// terminal history, unfinished ones are requeued and resume from their
// checkpoint namespaces.
func NewServer(pool *dist.Pool, opt Options) (*Server, error) {
	if pool == nil || pool.Size() == 0 {
		return nil, fmt.Errorf("jobs: server needs a non-empty worker pool")
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 16
	}
	if opt.MaxRunning == 0 {
		opt.MaxRunning = 4
	}
	if opt.Grace == 0 {
		opt.Grace = 5 * time.Second
	}
	if opt.Template.Subsets == 0 {
		opt.Template = focus.DefaultConfig()
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...interface{}) {}
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		pool:       pool,
		opt:        opt,
		reg:        metrics.NewRegistry(),
		costs:      metrics.NewCostModel(assembly.PhasePriors(), 0),
		jobs:       map[string]*job{},
		assigned:   make([]int, pool.Size()),
		nextSeq:    1,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	if opt.Root != "" {
		if err := s.reload(); err != nil {
			cancel(nil)
			return nil, err
		}
	}
	s.schedWG.Add(1)
	go s.scheduler()
	return s, nil
}

// reload scans Root for persisted job records: terminal non-resumable
// jobs become history, everything else re-enters the queue (a job that
// was Running when the previous server died resumes from its last
// checkpoint frame).
func (s *Server) reload() error {
	entries, err := os.ReadDir(s.opt.Root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: reload: %w", err)
	}
	var requeue []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.opt.Root, e.Name())
		if !statusExists(dir) {
			continue
		}
		st, err := readStatus(dir)
		if err != nil {
			s.opt.Logf("jobs: reload: skipping %s: %v", dir, err)
			continue
		}
		if st.ID != e.Name() {
			s.opt.Logf("jobs: reload: skipping %s: record names job %q", dir, st.ID)
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(st.ID, "job-%d", &seq); err == nil && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
		j := &job{id: st.ID, dir: dir, status: *st, done: make(chan struct{})}
		s.jobs[st.ID] = j
		s.order = append(s.order, st.ID)
		if st.State.Terminal() && !st.Resumable {
			close(j.done)
			continue
		}
		// Interrupted (resumable) or torn mid-run: back to the queue.
		j.status.State = Queued
		j.status.Error = ""
		j.status.Resumable = false
		j.status.Workers = nil
		j.status.StartedAt, j.status.FinishedAt = 0, 0
		requeue = append(requeue, j)
	}
	// Requeue in original submission order, then by priority.
	sort.Slice(requeue, func(a, b int) bool { return requeue[a].id < requeue[b].id })
	for _, j := range requeue {
		s.enqueueLocked(j) // no concurrency yet: constructor context
		s.persistLocked(j)
		s.opt.Logf("jobs: reload: requeued %s (%s)", j.id, j.status.Spec.Name)
	}
	s.gaugesLocked()
	return nil
}

// Metrics returns the server's operational metrics registry (shared with
// every job's assembly driver).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Health snapshots the shared fleet's per-worker health and fault
// counters.
func (s *Server) Health() dist.HealthSnapshot { return s.pool.Health() }

// Submit admits a job. Rejections wrap ErrAdmission: ErrDraining once a
// drain began, ErrQueueFull at QueueDepth, ErrQuota when the spec could
// never be granted (more workers than the fleet, more memory than the
// budget). The returned id is stable across server restarts.
func (s *Server) Submit(spec Spec) (string, error) {
	if strings.TrimSpace(spec.InputPath) == "" {
		return "", fmt.Errorf("jobs: spec: InputPath required")
	}
	if spec.K <= 0 {
		spec.K = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		s.reg.Counter("jobs_rejected_total").Inc()
		return "", ErrDraining
	}
	// Quota violations are static properties of the spec — report them
	// even when the queue happens to be full.
	if spec.MaxWorkers > s.pool.Size() {
		s.reg.Counter("jobs_rejected_total").Inc()
		return "", fmt.Errorf("%w: %d workers requested, fleet has %d", ErrQuota, spec.MaxWorkers, s.pool.Size())
	}
	if s.opt.MemoryBudgetMB > 0 && spec.MemoryMB > s.opt.MemoryBudgetMB {
		s.reg.Counter("jobs_rejected_total").Inc()
		return "", fmt.Errorf("%w: %d MB requested, budget is %d MB", ErrQuota, spec.MemoryMB, s.opt.MemoryBudgetMB)
	}
	if len(s.queue) >= s.opt.QueueDepth {
		s.reg.Counter("jobs_rejected_total").Inc()
		return "", fmt.Errorf("%w (depth %d)", ErrQueueFull, s.opt.QueueDepth)
	}
	id := fmt.Sprintf("job-%06d", s.nextSeq)
	s.nextSeq++
	j := &job{
		id:     id,
		status: Status{ID: id, Spec: spec, State: Queued, SubmittedAt: time.Now().UnixNano()},
		done:   make(chan struct{}),
	}
	if s.opt.Root != "" {
		j.dir = filepath.Join(s.opt.Root, id)
		// Claim the namespace at admission: a collision (stale dir owned
		// by another id) must fail the submit, not corrupt a later resume.
		if err := checkpoint.Claim(j.dir, id); err != nil {
			return "", err
		}
		if err := writeSpec(j.dir, &spec); err != nil {
			return "", err
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.enqueueLocked(j)
	s.reg.Counter("jobs_admitted_total").Inc()
	s.noteLocked(j)
	s.cond.Broadcast()
	return id, nil
}

// enqueueLocked inserts j behind every queued job of priority >= its own
// (priority order, FIFO within a priority).
func (s *Server) enqueueLocked(j *job) {
	pos := len(s.queue)
	for i, q := range s.queue {
		if q.status.Spec.Priority < j.status.Spec.Priority {
			pos = i
			break
		}
	}
	s.queue = append(s.queue, nil)
	copy(s.queue[pos+1:], s.queue[pos:])
	s.queue[pos] = j
}

// scheduler launches the head of the queue whenever a slot and the
// memory budget allow. Head-of-line blocking is the policy: a large job
// at the head holds back smaller lower-priority jobs rather than being
// starved by them.
func (s *Server) scheduler() {
	defer s.schedWG.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return
		}
		j := s.launchableLocked()
		if j == nil {
			s.cond.Wait()
			continue
		}
		s.queue = s.queue[1:]
		s.startLocked(j)
	}
}

// launchableLocked returns the queue head iff it can start now.
func (s *Server) launchableLocked() *job {
	if len(s.queue) == 0 || s.opt.MaxRunning < 0 || s.running >= s.opt.MaxRunning {
		return nil
	}
	j := s.queue[0]
	if s.opt.MemoryBudgetMB > 0 && s.memInUse+j.status.Spec.MemoryMB > s.opt.MemoryBudgetMB {
		return nil
	}
	return j
}

// startLocked transitions j to Running and launches its goroutine.
func (s *Server) startLocked(j *job) {
	s.running++
	s.memInUse += j.status.Spec.MemoryMB
	members := s.chooseWorkersLocked(j.status.Spec.MaxWorkers)
	for _, w := range members {
		s.assigned[w]++
	}
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j.cancel = cancel
	j.status.State = Running
	j.status.StartedAt = time.Now().UnixNano()
	j.status.Workers = members
	j.status.Attempts++
	s.noteLocked(j)
	s.wg.Add(1)
	go s.runJob(j, ctx, members)
}

// chooseWorkersLocked picks the job's view: up to maxW fleet workers
// (<=0: all), preferring healthy then least-assigned then lowest id.
// Views may overlap — the quota caps a job's parallel width, it is not an
// exclusive reservation — and each worker's assignment count spreads
// concurrent jobs across the fleet.
func (s *Server) chooseWorkersLocked(maxW int) []int {
	fleet := s.pool.Size()
	n := maxW
	if n <= 0 || n > fleet {
		n = fleet
	}
	ids := make([]int, fleet)
	for i := range ids {
		ids[i] = i
	}
	healthy := make([]bool, fleet)
	for _, w := range s.pool.HealthyIDs() {
		healthy[w] = true
	}
	sort.SliceStable(ids, func(a, b int) bool {
		ia, ib := ids[a], ids[b]
		if healthy[ia] != healthy[ib] {
			return healthy[ia]
		}
		if s.assigned[ia] != s.assigned[ib] {
			return s.assigned[ia] < s.assigned[ib]
		}
		return ia < ib
	})
	members := append([]int(nil), ids[:n]...)
	sort.Ints(members)
	return members
}

// runJob executes one job attempt and finalizes it.
func (s *Server) runJob(j *job, ctx context.Context, members []int) {
	defer s.wg.Done()
	res, err := s.execute(j, ctx, members)
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.cancel != nil {
		j.cancel(nil)
		j.cancel = nil
	}
	s.running--
	s.memInUse -= j.status.Spec.MemoryMB
	for _, w := range members {
		s.assigned[w]--
	}
	if j.status.StartedAt > 0 {
		s.reg.Histogram("jobs_duration_seconds").Observe(time.Duration(time.Now().UnixNano() - j.status.StartedAt))
	}
	s.finishLocked(j, res, err)
	s.cond.Broadcast()
}

// execute runs the assembly pipeline for one attempt on the job's worker
// view. Not called with s.mu held.
func (s *Server) execute(j *job, ctx context.Context, members []int) (*focus.AssemblyResult, error) {
	view, err := s.pool.View(members)
	if err != nil {
		return nil, err
	}
	defer view.Close() // releases the view's reconnect-hook slot
	s.mu.Lock()
	spec := j.status.Spec
	dir, id := j.dir, j.id
	s.mu.Unlock()
	reads, err := dna.ReadsFromFile(spec.InputPath)
	if err != nil {
		return nil, fmt.Errorf("jobs: %s: %w", id, err)
	}
	cfg := s.opt.Template
	cfg.Context = ctx
	cfg.Deadline = spec.Deadline
	cfg.Metrics = s.reg
	cfg.PhaseCosts = s.costs
	if dir != "" {
		cfg.Checkpoint = focus.Checkpoint{Dir: dir, Job: id, Every: 1, Resume: true}
	}
	res, _, err := focus.AssembleOnPool(reads, cfg, spec.K, view)
	return res, err
}

// finishLocked maps an attempt outcome onto the terminal state machine:
// nil → Done; a cancellation outcome (kill, drain, deadline, stall) →
// Killed, resumable when a durable namespace exists; anything else →
// Failed.
func (s *Server) finishLocked(j *job, res *focus.AssemblyResult, err error) {
	j.status.FinishedAt = time.Now().UnixNano()
	switch {
	case err == nil:
		j.status.State = Done
		j.status.Error = ""
		j.status.Resumable = false
		j.result = res
		j.status.Contigs = res.Stats.NumContigs
		j.status.N50 = res.Stats.N50
		s.reg.Counter("jobs_done_total").Inc()
	case errors.Is(err, ErrKilled) || errors.Is(err, ErrDrained) || focus.IsInterrupted(err):
		j.status.State = Killed
		j.status.Error = err.Error()
		j.status.Resumable = j.dir != ""
		s.reg.Counter("jobs_killed_total").Inc()
	default:
		j.status.State = Failed
		j.status.Error = err.Error()
		j.status.Resumable = false
		s.reg.Counter("jobs_failed_total").Inc()
	}
	s.noteLocked(j)
}

// noteLocked publishes a status change: gauges, durable record, watcher
// channels; at a terminal state watchers are closed and Wait unblocks.
func (s *Server) noteLocked(j *job) {
	s.gaugesLocked()
	s.persistLocked(j)
	st := j.status
	st.Workers = append([]int(nil), st.Workers...)
	for _, ch := range j.watchers {
		select {
		case ch <- st:
		default: // slow watcher: it re-reads Status on the next event
		}
	}
	if st.State.Terminal() {
		for _, ch := range j.watchers {
			close(ch)
		}
		j.watchers = nil
		close(j.done)
	}
}

// persistLocked rewrites the job's durable status record.
func (s *Server) persistLocked(j *job) {
	if j.dir == "" {
		return
	}
	if err := writeStatus(j.dir, &j.status); err != nil {
		s.opt.Logf("jobs: %s: persisting status: %v", j.id, err)
	}
}

// gaugesLocked recomputes the per-state job gauges and queue depth.
func (s *Server) gaugesLocked() {
	var byState [5]int64
	for _, j := range s.jobs {
		byState[j.status.State]++
	}
	s.reg.Gauge("jobs_queued").Set(byState[Queued])
	s.reg.Gauge("jobs_running").Set(byState[Running])
	s.reg.Gauge("jobs_done").Set(byState[Done])
	s.reg.Gauge("jobs_failed").Set(byState[Failed])
	s.reg.Gauge("jobs_killed").Set(byState[Killed])
	s.reg.Gauge("queue_depth").Set(int64(len(s.queue)))
	s.reg.Gauge("jobs_memory_mb").Set(int64(s.memInUse))
}

// Status returns a job's current status snapshot.
func (s *Server) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	st := j.status
	st.Workers = append([]int(nil), st.Workers...)
	return st, nil
}

// List returns every known job's status in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		st := s.jobs[id].status
		st.Workers = append([]int(nil), st.Workers...)
		out = append(out, st)
	}
	return out
}

// Wait blocks until the job reaches a terminal state and returns its
// terminal error text as an error (nil on Done). A job re-entering the
// queue via Resume arms a fresh wait for the new attempt.
func (s *Server) Wait(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	done := j.done
	s.mu.Unlock()
	<-done
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.status.Error != "" {
		return errors.New(j.status.Error)
	}
	return nil
}

// Result returns a Done job's contigs. Results live in server memory
// only: after a restart the job is terminal history and the result is
// gone (re-run or Resume to recompute).
func (s *Server) Result(id string) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.status.State != Done {
		return nil, fmt.Errorf("jobs: %s is %s, not done", id, j.status.State)
	}
	if j.result == nil {
		return nil, fmt.Errorf("jobs: %s: result not retained across server restart", id)
	}
	return j.result.Contigs, nil
}

// Watch subscribes to a job's status changes. The channel receives a
// snapshot per transition (best-effort under backpressure) and is closed
// when the job reaches a terminal state; a job already terminal gets a
// closed channel immediately.
func (s *Server) Watch(id string) (<-chan Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	ch := make(chan Status, 16)
	if j.status.State.Terminal() {
		st := j.status
		st.Workers = append([]int(nil), st.Workers...)
		ch <- st
		close(ch)
		return ch, nil
	}
	j.watchers = append(j.watchers, ch)
	return ch, nil
}

// Kill terminates one job without touching any other: a queued job is
// removed and finalized, a running job's context is canceled with
// ErrKilled (the pipeline checkpoints and unwinds; the job finalizes as
// Killed and resumable when durable). Killing a terminal job is
// ErrTerminal.
func (s *Server) Kill(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.status.State {
	case Queued:
		s.dequeueLocked(j)
		j.status.FinishedAt = time.Now().UnixNano()
		j.status.State = Killed
		j.status.Error = ErrKilled.Error()
		j.status.Resumable = j.dir != ""
		s.reg.Counter("jobs_killed_total").Inc()
		s.noteLocked(j)
		s.cond.Broadcast()
		return nil
	case Running:
		if j.cancel != nil {
			j.cancel(ErrKilled)
		}
		return nil
	default:
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.status.State)
	}
}

// dequeueLocked removes j from the pending queue (no-op if absent).
func (s *Server) dequeueLocked(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Resume re-enqueues a resumable terminal job: the next attempt restarts
// from the job's last checkpoint frame and completes with output
// identical to an uninterrupted run. Normal admission (draining, queue
// depth) applies.
func (s *Server) Resume(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.status.State.Terminal() || !j.status.Resumable {
		return fmt.Errorf("%w: %s is %s", ErrNotResumable, id, j.status.State)
	}
	if s.draining || s.closed {
		s.reg.Counter("jobs_rejected_total").Inc()
		return ErrDraining
	}
	if len(s.queue) >= s.opt.QueueDepth {
		s.reg.Counter("jobs_rejected_total").Inc()
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, s.opt.QueueDepth)
	}
	j.status.State = Queued
	j.status.Error = ""
	j.status.Resumable = false
	j.status.Workers = nil
	j.status.StartedAt, j.status.FinishedAt = 0, 0
	j.done = make(chan struct{})
	j.result = nil
	s.enqueueLocked(j)
	s.reg.Counter("jobs_resumed_total").Inc()
	s.noteLocked(j)
	s.cond.Broadcast()
	return nil
}

// Drain stops admission and winds down: queued jobs are finalized
// immediately (Killed with cause ErrDrained, resumable when durable),
// running jobs get up to grace to finish on their own, and leftovers are
// canceled with ErrDrained — which checkpoints them at their last phase
// boundary, so a successor server requeues and resumes them. The server
// stays queryable after the drain.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.reg.Gauge("server_draining").Set(1)
	for _, j := range append([]*job(nil), s.queue...) {
		s.dequeueLocked(j)
		j.status.FinishedAt = time.Now().UnixNano()
		j.status.State = Killed
		j.status.Error = ErrDrained.Error()
		j.status.Resumable = j.dir != ""
		s.reg.Counter("jobs_killed_total").Inc()
		s.noteLocked(j)
	}
	deadline := time.Now().Add(grace)
	var timer *time.Timer
	if grace > 0 {
		timer = time.AfterFunc(grace, s.cond.Broadcast)
	}
	for s.running > 0 && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	if timer != nil {
		timer.Stop()
	}
	for _, j := range s.jobs {
		if j.status.State == Running && j.cancel != nil {
			j.cancel(ErrDrained)
		}
	}
	for s.running > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close drains with no grace and stops the server. The worker fleet is
// left running — the caller owns it.
func (s *Server) Close() error {
	s.Drain(0)
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.schedWG.Wait()
	s.wg.Wait()
	s.baseCancel(nil)
	return nil
}

// Draining reports whether a drain has begun (admission rejects with
// ErrDraining).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
