package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"focus/internal/checkpoint"
	"focus/internal/dist"
)

// Job-record persistence. Each job's checkpoint namespace holds, next to
// the assembly frames, a spec record (written once at admission) and a
// status record (rewritten at every state change). Both use the compact
// dist wire encoding inside the checkpoint package's CRC framing, so a
// torn write is detected, not half-loaded — a restarted server requeues
// exactly the durable jobs that had not finished. The codec is fuzzed
// (FuzzJobWire) since it decodes disk bytes that survived a crash.

// specVersion/statusVersion are the framed-payload versions; bump on any
// wire change.
const (
	specVersion   = 1
	statusVersion = 1
)

// specFile/statusFile are the record names inside a job's namespace
// directory (checkpoint.Latest only scans ckpt-*.fckp, so they coexist
// with the assembly frames).
const (
	specFile   = "spec.fjob"
	statusFile = "status.fjob"
)

// AppendTo encodes the spec in dist wire format.
func (sp *Spec) AppendTo(dst []byte) []byte {
	dst = dist.AppendString(dst, sp.Name)
	dst = dist.AppendString(dst, sp.InputPath)
	dst = dist.AppendVarint(dst, int64(sp.K))
	dst = dist.AppendVarint(dst, int64(sp.Priority))
	dst = dist.AppendVarint(dst, int64(sp.MaxWorkers))
	dst = dist.AppendVarint(dst, int64(sp.MemoryMB))
	dst = dist.AppendVarint(dst, int64(sp.Deadline))
	dst = dist.AppendVarint(dst, sp.Seed)
	return dst
}

// DecodeFrom decodes a spec written by AppendTo.
func (sp *Spec) DecodeFrom(r *dist.WireReader) {
	sp.Name = r.String()
	sp.InputPath = r.String()
	sp.K = int(r.Varint())
	sp.Priority = int(r.Varint())
	sp.MaxWorkers = int(r.Varint())
	sp.MemoryMB = int(r.Varint())
	sp.Deadline = time.Duration(r.Varint())
	sp.Seed = r.Varint()
}

// AppendTo encodes the status in dist wire format.
func (st *Status) AppendTo(dst []byte) []byte {
	dst = dist.AppendString(dst, st.ID)
	dst = st.Spec.AppendTo(dst)
	dst = dist.AppendVarint(dst, int64(st.State))
	dst = dist.AppendString(dst, st.Error)
	dst = dist.AppendBool(dst, st.Resumable)
	dst = dist.AppendLen(dst, len(st.Workers), st.Workers != nil)
	for _, w := range st.Workers {
		dst = dist.AppendVarint(dst, int64(w))
	}
	dst = dist.AppendVarint(dst, int64(st.Attempts))
	dst = dist.AppendVarint(dst, st.SubmittedAt)
	dst = dist.AppendVarint(dst, st.StartedAt)
	dst = dist.AppendVarint(dst, st.FinishedAt)
	dst = dist.AppendVarint(dst, int64(st.Contigs))
	dst = dist.AppendVarint(dst, int64(st.N50))
	return dst
}

// DecodeFrom decodes a status written by AppendTo.
func (st *Status) DecodeFrom(r *dist.WireReader) {
	st.ID = r.String()
	st.Spec.DecodeFrom(r)
	st.State = State(r.Varint())
	if st.State < Queued || st.State > Killed {
		r.Fail(fmt.Errorf("jobs: unknown state %d", int(st.State)))
		return
	}
	st.Error = r.String()
	st.Resumable = r.Bool()
	if n, present := r.Len(); present {
		st.Workers = make([]int, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			st.Workers = append(st.Workers, int(r.Varint()))
		}
	} else {
		st.Workers = nil
	}
	st.Attempts = int(r.Varint())
	st.SubmittedAt = r.Varint()
	st.StartedAt = r.Varint()
	st.FinishedAt = r.Varint()
	st.Contigs = int(r.Varint())
	st.N50 = int(r.Varint())
}

// writeSpec persists the spec record into the job's namespace dir.
func writeSpec(dir string, sp *Spec) error {
	return checkpoint.WriteFile(filepath.Join(dir, specFile), specVersion, sp.AppendTo(nil))
}

// readSpec loads a spec record (os.IsNotExist(err) when absent).
func readSpec(dir string) (*Spec, error) {
	payload, err := checkpoint.ReadFile(filepath.Join(dir, specFile), specVersion)
	if err != nil {
		return nil, err
	}
	var sp Spec
	r := dist.NewWireReader(payload)
	sp.DecodeFrom(&r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("jobs: spec record: %w", err)
	}
	return &sp, nil
}

// writeStatus persists the status record into the job's namespace dir.
func writeStatus(dir string, st *Status) error {
	return checkpoint.WriteFile(filepath.Join(dir, statusFile), statusVersion, st.AppendTo(nil))
}

// readStatus loads a status record (os.IsNotExist(err) when absent).
func readStatus(dir string) (*Status, error) {
	payload, err := checkpoint.ReadFile(filepath.Join(dir, statusFile), statusVersion)
	if err != nil {
		return nil, err
	}
	var st Status
	r := dist.NewWireReader(payload)
	st.DecodeFrom(&r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("jobs: status record: %w", err)
	}
	return &st, nil
}

// statusExists reports whether dir holds a status record at all (used by
// reload to skip foreign directories).
func statusExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, statusFile))
	return err == nil
}
