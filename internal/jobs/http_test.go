package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"focus/internal/testutil"
)

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHTTPAdmissionCodes: the admission error classes are visible as
// distinct HTTP statuses, so clients can branch without parsing text.
func TestHTTPAdmissionCodes(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 2, Options{QueueDepth: 1, MemoryBudgetMB: 50, Root: t.TempDir()})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	resp := post(t, srv.URL+"/jobs", `{"name":"a","input_path":"r.fastq","k":2}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d, want 201", resp.StatusCode)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil || created.ID == "" {
		t.Fatalf("created body: id=%q err=%v", created.ID, err)
	}

	if resp := post(t, srv.URL+"/jobs", `{"input_path":"r.fastq"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: %d, want 429", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/jobs", `{"input_path":"r.fastq","max_workers":99}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("worker quota: %d, want 422", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/jobs", `{"input_path":"r.fastq","memory_mb":51}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("memory quota: %d, want 422", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/jobs", `{"not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}

	// By-id surface: status, kill, double-kill, resume, unknown id.
	if resp, err := http.Get(srv.URL + "/jobs/" + created.ID); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %v %v", err, resp.StatusCode)
	} else {
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.State != Queued {
			t.Fatalf("job doc: %+v err %v, want queued", st, err)
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(srv.URL + "/jobs/job-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: %v %v, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("kill: %v %v, want 204", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("double kill: %v %v, want 409", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// The killed job had a durable namespace: resume re-admits it.
	if resp := post(t, srv.URL+"/jobs/"+created.ID+"/resume", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("resume: %d, want 204", resp.StatusCode)
	}
	// A queued (non-terminal) job is not resumable: 409.
	if resp := post(t, srv.URL+"/jobs/"+created.ID+"/resume", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume non-terminal: %d, want 409", resp.StatusCode)
	}

	// Drain: submissions turn into 503.
	s.Drain(0)
	if resp := post(t, srv.URL+"/jobs", `{"input_path":"r.fastq"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPStatusMetricsEvents: the scraped surfaces — /status, /metrics
// and the per-job NDJSON event stream — carry the queue and fleet state.
func TestHTTPStatusMetricsEvents(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 2, Options{QueueDepth: 4})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	var ids []string
	for i := 0; i < 2; i++ {
		resp := post(t, srv.URL+"/jobs", fmt.Sprintf(`{"name":"j%d","input_path":"r.fastq"}`, i))
		var created struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, created.ID)
	}

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var page StatusPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Queued != 2 || page.Running != 0 || page.Draining {
		t.Fatalf("status page %+v, want 2 queued on a live server", page)
	}
	if len(page.Fleet.Workers) != 2 || page.Fleet.Healthy != 2 {
		t.Fatalf("fleet health %+v, want 2 healthy workers", page.Fleet)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["jobs_admitted_total"] != 2 || snap.Gauges["queue_depth"] != 2 {
		t.Fatalf("metrics document: %+v", snap.Counters)
	}

	// Event stream: kill mid-stream, read the transitions until EOF.
	streamResp, err := http.Get(srv.URL + "/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { streamResp.Body.Close() })
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	if err := s.Kill(ids[0]); err != nil {
		t.Fatal(err)
	}
	var last Status
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}
	if last.State != Killed {
		t.Fatalf("final streamed state %s, want killed", last.State)
	}
}
