package jobs

import (
	"bytes"
	"testing"

	"focus/internal/dist"
)

// FuzzJobWire decodes arbitrary bytes as both wire records. These bytes
// come off disk after a crash, so the decoder must never panic, and any
// payload it does accept must re-encode to an equivalent record
// (decode∘encode is the identity on the accepted set).
func FuzzJobWire(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Spec{Name: "seed", InputPath: "r.fastq", K: 2}).AppendTo(nil))
	st := sampleStatus()
	f.Add(st.AppendTo(nil))
	st.Workers = nil
	f.Add(st.AppendTo(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sp Spec
		r := dist.NewWireReader(data)
		sp.DecodeFrom(&r)
		if r.Finish() == nil {
			re := sp.AppendTo(nil)
			var sp2 Spec
			r2 := dist.NewWireReader(re)
			sp2.DecodeFrom(&r2)
			if err := r2.Finish(); err != nil {
				t.Fatalf("re-encoded spec unreadable: %v", err)
			}
			if !bytes.Equal(re, sp2.AppendTo(nil)) {
				t.Fatalf("spec re-encode not stable: %x vs %x", re, sp2.AppendTo(nil))
			}
		}

		var status Status
		rs := dist.NewWireReader(data)
		status.DecodeFrom(&rs)
		if rs.Finish() == nil {
			re := status.AppendTo(nil)
			var status2 Status
			rs2 := dist.NewWireReader(re)
			status2.DecodeFrom(&rs2)
			if err := rs2.Finish(); err != nil {
				t.Fatalf("re-encoded status unreadable: %v", err)
			}
			if !bytes.Equal(re, status2.AppendTo(nil)) {
				t.Fatalf("status re-encode not stable: %x vs %x", re, status2.AppendTo(nil))
			}
		}
	})
}
