// Package jobs is the multi-tenant resident master (DESIGN.md §16): a
// priority job queue with admission control multiplexing many concurrent
// assembly jobs onto one shared dist worker fleet. Each admitted job runs
// under its own quota (worker-view width, memory estimate, deadline), its
// own checkpoint namespace (independently killable and resumable) and its
// own cancellation cause; worker loss re-hosts only the affected jobs'
// partitions. The Server's metrics registry and health snapshot are the
// operational surface, exposed over HTTP by Handler and scraped by the
// chaos tests as assertions.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Admission errors. Every rejection wraps ErrAdmission so callers can
// distinguish "the server said no" from "the job ran and failed" with one
// errors.Is; the concrete wrapper says why (and maps to an HTTP status).
var (
	// ErrAdmission is the class of every admission rejection.
	ErrAdmission = errors.New("jobs: admission rejected")
	// ErrQueueFull rejects a submit when the queue is at QueueDepth.
	ErrQueueFull = fmt.Errorf("%w: queue full", ErrAdmission)
	// ErrQuota rejects a spec whose quota demands exceed what the server
	// can ever grant (more workers than the fleet, more memory than the
	// budget).
	ErrQuota = fmt.Errorf("%w: quota exceeds server capacity", ErrAdmission)
	// ErrDraining rejects every submit once Drain has begun.
	ErrDraining = fmt.Errorf("%w: server draining", ErrAdmission)
)

// Lifecycle errors. ErrKilled and ErrDrained are installed as the job
// context's cancellation cause; both wrap context.Canceled so the
// pipeline treats them as an interruption (checkpoint-then-stop), not a
// failure.
var (
	// ErrKilled is the cancellation cause of an explicit per-job Kill.
	ErrKilled = fmt.Errorf("jobs: job killed: %w", context.Canceled)
	// ErrDrained is the cancellation cause when a server drain cuts a job
	// that outlived the grace period.
	ErrDrained = fmt.Errorf("jobs: server drained: %w", context.Canceled)
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal rejects Kill on a job that already reached a terminal
	// state.
	ErrTerminal = errors.New("jobs: job already terminal")
	// ErrNotResumable rejects Resume on a job that is not terminal, is not
	// interrupt-shaped, or has no durable checkpoint namespace.
	ErrNotResumable = errors.New("jobs: job not resumable")
)

// Spec is a job submission: what to assemble and under which quotas.
type Spec struct {
	// Name is a free-form label (shown in status; not unique).
	Name string `json:"name"`
	// InputPath is the reads file (FASTA/FASTQ) on the server's
	// filesystem.
	InputPath string `json:"input_path"`
	// K is the partition count for distributed trimming (<=0: 1).
	K int `json:"k"`
	// Priority orders the queue: higher runs first; FIFO within a
	// priority.
	Priority int `json:"priority"`
	// MaxWorkers caps the job's worker view (<=0: the whole fleet). A
	// value above the fleet size is an ErrQuota rejection: the quota
	// could never be granted.
	MaxWorkers int `json:"max_workers"`
	// MemoryMB is the job's declared memory estimate. Admission rejects
	// (ErrQuota) estimates above the server budget; the scheduler holds a
	// job while running jobs' estimates would exceed the budget. 0 means
	// unaccounted.
	MemoryMB int `json:"memory_mb"`
	// Deadline bounds the job's wall clock (0: unbounded); the assembly
	// driver splits it into per-phase budgets.
	Deadline time.Duration `json:"deadline_ns"`
	// Seed fixes the partitioner seed (0 is a valid seed; jobs default
	// to 1 for parity with the CLI).
	Seed int64 `json:"seed"`
}

// State is a job's position in the lifecycle state machine
// (DESIGN.md §16): Queued → Running → {Done | Failed | Killed}; a
// Resumable terminal job can re-enter the queue via Resume.
type State int

const (
	// Queued: admitted, waiting for a scheduler slot.
	Queued State = iota
	// Running: executing on its worker view.
	Running
	// Done: completed successfully; contigs retained until shutdown.
	Done
	// Failed: pipeline error (not an interruption).
	Failed
	// Killed: interrupted — explicit Kill, server drain, deadline or
	// stall. Resumable when a durable checkpoint namespace exists.
	Killed
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Killed:
		return "killed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Terminal reports whether the state is final (Done, Failed or Killed).
func (s State) Terminal() bool { return s == Done || s == Failed || s == Killed }

// MarshalJSON renders the state by name for the HTTP surface.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses the by-name rendering back (HTTP clients decode
// the same documents the server encodes).
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for cand := Queued; cand <= Killed; cand++ {
		if cand.String() == name {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("jobs: unknown state %q", name)
}

// Status is a job's externally visible state snapshot.
type Status struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Error is the terminal error text ("" on success or while live).
	Error string `json:"error,omitempty"`
	// Resumable marks a Killed/Failed job whose checkpoint namespace can
	// continue via Resume.
	Resumable bool `json:"resumable,omitempty"`
	// Workers are the fleet worker ids of the job's view while running
	// (retained in terminal states for postmortems).
	Workers []int `json:"workers,omitempty"`
	// Attempts counts runs of this job id (1 on first run; +1 per
	// Resume).
	Attempts int `json:"attempts,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt are unix nanos (0 = not yet).
	SubmittedAt int64 `json:"submitted_at,omitempty"`
	StartedAt   int64 `json:"started_at,omitempty"`
	FinishedAt  int64 `json:"finished_at,omitempty"`
	// Contigs/N50 summarize a Done result.
	Contigs int `json:"contigs,omitempty"`
	N50     int `json:"n50,omitempty"`
}
