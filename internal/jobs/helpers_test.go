package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	focus "focus"
	"focus/internal/assembly"
	"focus/internal/dist"
	"focus/internal/dna"
	"focus/internal/simulate"
)

// testTemplate mirrors the facade tests' small-input configuration, with
// the stateful protocol on (the mode the resident master ships with).
func testTemplate() focus.Config {
	cfg := focus.DefaultConfig()
	cfg.Preprocess.Trim5 = 6 // strip the simulated adapter
	cfg.Subsets = 2
	cfg.Overlap.Workers = 2
	cfg.Coarsen.MinNodes = 8
	cfg.Assembly.Stateful = true
	return cfg
}

// writeInput simulates a small read set and persists it as FASTQ (qualities
// included — preprocessing is quality-driven) for jobs to load by path.
func writeInput(t *testing.T, genomeLen int, coverage float64, seed int64) string {
	t.Helper()
	com, err := simulate.BuildCommunity(simulate.SingleGenome("t", genomeLen, seed))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: coverage,
		ErrorRate5: 0.001, ErrorRate3: 0.01,
		Seed: seed + 1, AdapterLen: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("reads-%d.fastq", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dna.WriteFASTQ(f, rs.Reads); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// soloBaseline assembles the input on a private single-tenant pool — the
// byte-identity reference every multi-tenant run is compared against.
func soloBaseline(t *testing.T, input string, k int) [][]byte {
	t.Helper()
	reads, err := dna.ReadsFromFile(input)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := focus.Assemble(reads, testTemplate(), k, 2)
	if err != nil {
		t.Fatalf("solo baseline: %v", err)
	}
	return res.Contigs
}

// newFleet builds an in-process worker fleet closed at test end.
func newFleet(t *testing.T, n int, opt dist.Options) *dist.Pool {
	t.Helper()
	pool, err := dist.NewLocalPoolOpts(n, assembly.NewService, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// waitState polls until the job reaches state (failing fast on an
// unexpected terminal state).
func waitState(t *testing.T, s *Server, id string, state State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q) while waiting for %s", id, st.State, st.Error, state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sameContigs compares two contig sets byte-for-byte.
func sameContigs(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}
