package jobs

import (
	"encoding/json"
	"errors"
	"net/http"

	"focus/internal/dist"
	"focus/internal/metrics"
)

// HTTP surface of the resident master. Everything is JSON; the admission
// error classes map onto status codes a client can branch on without
// parsing text:
//
//	POST   /jobs               submit a Spec        201 | 429 queue full | 422 quota | 503 draining
//	GET    /jobs               list job statuses
//	GET    /jobs/{id}          one job's status     404 unknown id
//	DELETE /jobs/{id}          kill                 409 already terminal
//	POST   /jobs/{id}/resume   resume               409 not resumable
//	GET    /jobs/{id}/events   NDJSON status stream until terminal
//	GET    /status             server + fleet health snapshot
//	GET    /metrics            metrics registry snapshot
//
// The chaos tests scrape /status and /metrics as assertions.

// StatusPage is the GET /status document.
type StatusPage struct {
	Draining bool                `json:"draining"`
	Queued   int                 `json:"queued"`
	Running  int                 `json:"running"`
	Jobs     []Status            `json:"jobs"`
	Fleet    dist.HealthSnapshot `json:"fleet"`
}

// StatusPage builds the GET /status document (exported so tests and
// embedding servers can render it without HTTP).
func (s *Server) StatusPage() StatusPage {
	page := StatusPage{Jobs: s.List(), Fleet: s.Health(), Draining: s.Draining()}
	for _, st := range page.Jobs {
		switch st.State {
		case Queued:
			page.Queued++
		case Running:
			page.Running++
		}
	}
	return page
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatusPage())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			writeErr(w, admissionCode(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		err := s.Kill(r.PathValue("id"))
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, ErrTerminal):
			writeErr(w, http.StatusConflict, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("POST /jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		err := s.Resume(r.PathValue("id"))
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotResumable):
			writeErr(w, http.StatusConflict, err)
		case errors.Is(err, ErrAdmission):
			writeErr(w, admissionCode(err), err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		ch, err := s.Watch(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush() // release the client's header wait before the first event
		}
		enc := json.NewEncoder(w)
		for {
			select {
			case st, ok := <-ch:
				if !ok {
					return // terminal: stream ends
				}
				if enc.Encode(st) != nil {
					return // client gone; channel dies with the job
				}
				if flusher != nil {
					flusher.Flush()
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	return mux
}

// admissionCode maps an admission rejection onto its HTTP status.
func admissionCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, ErrQuota):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable // 503
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// MetricsSnapshot re-exports the registry snapshot type for API users of
// the /metrics document.
type MetricsSnapshot = metrics.Snapshot
