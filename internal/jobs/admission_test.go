package jobs

import (
	"errors"
	"testing"

	"focus/internal/dist"
	"focus/internal/testutil"
)

// paused returns a server whose scheduler never launches (MaxRunning<0),
// so admission and queue behaviour can be asserted deterministically.
func paused(t *testing.T, fleet int, opt Options) *Server {
	t.Helper()
	opt.MaxRunning = -1
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	s, err := NewServer(newFleet(t, fleet, dist.Options{}), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAdmissionQueueFullAndQuota: every rejection class is typed, wraps
// ErrAdmission, and is visible in the rejection counter; admitted jobs
// queue in order.
func TestAdmissionQueueFullAndQuota(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 2, Options{QueueDepth: 2, MemoryBudgetMB: 100})

	ok := Spec{Name: "fits", InputPath: "reads.fastq", K: 2}
	id1, err := s.Submit(ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ok); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(ok)
	if !errors.Is(err, ErrQueueFull) || !errors.Is(err, ErrAdmission) {
		t.Fatalf("3rd submit at depth 2: got %v, want ErrQueueFull wrapping ErrAdmission", err)
	}
	_, err = s.Submit(Spec{InputPath: "r.fastq", MaxWorkers: 3})
	if !errors.Is(err, ErrQuota) || !errors.Is(err, ErrAdmission) {
		t.Fatalf("3 workers on a 2-worker fleet: got %v, want ErrQuota", err)
	}
	_, err = s.Submit(Spec{InputPath: "r.fastq", MemoryMB: 101})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("101MB against a 100MB budget: got %v, want ErrQuota", err)
	}
	if _, err := s.Submit(Spec{}); err == nil || errors.Is(err, ErrAdmission) {
		t.Fatalf("empty InputPath: got %v, want a plain validation error", err)
	}

	snap := s.Metrics().Snapshot()
	if snap.Counters["jobs_admitted_total"] != 2 || snap.Counters["jobs_rejected_total"] != 3 {
		t.Fatalf("admitted=%d rejected=%d, want 2/3",
			snap.Counters["jobs_admitted_total"], snap.Counters["jobs_rejected_total"])
	}
	if snap.Gauges["jobs_queued"] != 2 || snap.Gauges["queue_depth"] != 2 {
		t.Fatalf("queued gauge=%d depth gauge=%d, want 2/2",
			snap.Gauges["jobs_queued"], snap.Gauges["queue_depth"])
	}
	if st, err := s.Status(id1); err != nil || st.State != Queued {
		t.Fatalf("first job: status %+v err %v, want Queued", st, err)
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("List has %d jobs, want the 2 admitted", got)
	}
}

// TestAdmissionDraining: after Drain, submits are rejected with
// ErrDraining (still an ErrAdmission).
func TestAdmissionDraining(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 1, Options{})
	s.Drain(0)
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	_, err := s.Submit(Spec{InputPath: "r.fastq"})
	if !errors.Is(err, ErrDraining) || !errors.Is(err, ErrAdmission) {
		t.Fatalf("submit while draining: got %v, want ErrDraining wrapping ErrAdmission", err)
	}
}

// TestAdmissionPriorityOrder: the queue is priority-descending, FIFO
// within a priority.
func TestAdmissionPriorityOrder(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 1, Options{QueueDepth: 8})
	ids := map[string]string{}
	for _, sub := range []struct {
		name string
		prio int
	}{{"lo", 0}, {"hi1", 5}, {"hi2", 5}, {"mid", 1}} {
		id, err := s.Submit(Spec{Name: sub.name, InputPath: "r.fastq", Priority: sub.prio})
		if err != nil {
			t.Fatal(err)
		}
		ids[sub.name] = id
	}
	s.mu.Lock()
	var got []string
	for _, j := range s.queue {
		got = append(got, j.status.Spec.Name)
	}
	s.mu.Unlock()
	want := []string{"hi1", "hi2", "mid", "lo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue order %v, want %v", got, want)
		}
	}
	_ = ids
}

// TestKillQueuedJob: killing a queued job finalizes it without it ever
// running; a second kill is ErrTerminal; the kill is independent — the
// other queued job is untouched.
func TestKillQueuedJob(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	root := t.TempDir()
	s := paused(t, 1, Options{Root: root})
	id1, err := s.Submit(Spec{Name: "victim", InputPath: "r.fastq"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(Spec{Name: "bystander", InputPath: "r.fastq"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Kill(id1); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(id1)
	if st.State != Killed || !st.Resumable {
		t.Fatalf("killed queued job: %+v, want Killed and resumable (durable root)", st)
	}
	if err := s.Kill(id1); !errors.Is(err, ErrTerminal) {
		t.Fatalf("double kill: got %v, want ErrTerminal", err)
	}
	if err := s.Kill("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("kill unknown: got %v, want ErrNotFound", err)
	}
	if st, _ := s.Status(id2); st.State != Queued {
		t.Fatalf("bystander state %s, want still Queued", st.State)
	}
	// The durable record reflects the terminal state immediately.
	rec, err := readStatus(s.jobs[id1].dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Killed {
		t.Fatalf("durable record state %s, want Killed", rec.State)
	}
}
