package jobs

import (
	"errors"
	"testing"
	"time"

	"focus/internal/dist"
	"focus/internal/testutil"
)

// TestJobLifecycleDoneResult: a submitted job runs to Done on its worker
// view and its contigs are byte-identical to a solo single-tenant run of
// the same input — multi-tenancy must not perturb output.
func TestJobLifecycleDoneResult(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	const k = 4
	input := writeInput(t, 3000, 6, 7)
	want := soloBaseline(t, input, k)

	fleet := newFleet(t, 2, dist.Options{})
	s, err := NewServer(fleet, Options{
		MaxRunning: 2, Root: t.TempDir(), Template: testTemplate(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	id, err := s.Submit(Spec{Name: "solo", InputPath: input, K: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Attempts != 1 || st.Contigs == 0 {
		t.Fatalf("done status %+v, want Done after 1 attempt with contigs", st)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers %v, want the whole 2-worker fleet", st.Workers)
	}
	if st.SubmittedAt == 0 || st.StartedAt < st.SubmittedAt || st.FinishedAt < st.StartedAt {
		t.Fatalf("timestamps out of order: %+v", st)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !sameContigs(got, want) {
		t.Fatalf("multi-tenant contigs diverge from solo baseline (%d vs %d contigs)", len(got), len(want))
	}
	// The durable record reflects the terminal state.
	rec, err := readStatus(s.jobs[id].dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Done || rec.Contigs != st.Contigs {
		t.Fatalf("durable record %+v, want Done with %d contigs", rec, st.Contigs)
	}
}

// TestJobKillResumeByteIdentical: killing a running job checkpoints it;
// Resume restarts from the last frame and the final contigs still match
// an uninterrupted solo run exactly.
func TestJobKillResumeByteIdentical(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	const k = 4
	input := writeInput(t, 12000, 8, 21)
	want := soloBaseline(t, input, k)

	fleet := newFleet(t, 2, dist.Options{})
	s, err := NewServer(fleet, Options{
		MaxRunning: 1, Root: t.TempDir(), Template: testTemplate(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	id, err := s.Submit(Spec{Name: "interrupted", InputPath: input, K: k})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, Running, 10*time.Second)
	if err := s.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err == nil {
		t.Fatal("killed job finished with nil error")
	}
	st, _ := s.Status(id)
	if st.State != Killed || !st.Resumable {
		t.Fatalf("after kill: %+v, want Killed and resumable", st)
	}
	// Kill is not contagious to admission: the job resumes cleanly.
	if err := s.Resume(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	st, _ = s.Status(id)
	if st.State != Done || st.Attempts != 2 {
		t.Fatalf("after resume: %+v, want Done on attempt 2", st)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !sameContigs(got, want) {
		t.Fatalf("kill/resume contigs diverge from solo baseline (%d vs %d contigs)", len(got), len(want))
	}
	if n := s.Metrics().Counter("jobs_resumed_total").Value(); n != 1 {
		t.Fatalf("jobs_resumed_total = %d, want 1", n)
	}
}

// TestJobRestartRequeues: a drained server leaves durable records; a
// successor over the same root requeues the unfinished job and completes
// it baseline-identically; a third server sees only terminal history and
// reports the in-memory result as gone.
func TestJobRestartRequeues(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	const k = 4
	input := writeInput(t, 3000, 6, 33)
	want := soloBaseline(t, input, k)
	root := t.TempDir()
	fleet := newFleet(t, 2, dist.Options{})

	// Server A: paused scheduler, so the job is drained while still queued.
	a, err := NewServer(fleet, Options{MaxRunning: -1, Root: root, Template: testTemplate(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	id, err := a.Submit(Spec{Name: "carryover", InputPath: input, K: k})
	if err != nil {
		t.Fatal(err)
	}
	a.Drain(0)
	if st, _ := a.Status(id); st.State != Killed || !st.Resumable {
		t.Fatalf("drained queued job: %+v, want Killed and resumable", st)
	}
	a.Close()

	// Server B: reload requeues the unfinished job and runs it.
	b, err := NewServer(fleet, Options{MaxRunning: 2, Root: root, Template: testTemplate(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(id); err != nil {
		t.Fatalf("requeued job failed: %v", err)
	}
	got, err := b.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !sameContigs(got, want) {
		t.Fatalf("restarted-server contigs diverge from solo baseline")
	}
	b.Close()

	// Server C: the job is terminal history; the result was not persisted.
	c, err := NewServer(fleet, Options{MaxRunning: 2, Root: root, Template: testTemplate(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	st, err := c.Status(id)
	if err != nil || st.State != Done {
		t.Fatalf("history status %+v err %v, want Done", st, err)
	}
	if err := c.Wait(id); err != nil {
		t.Fatalf("Wait on historical Done job: %v", err)
	}
	if _, err := c.Result(id); err == nil {
		t.Fatal("Result survived a restart; results are in-memory only")
	}
}

// TestUnknownJobErrors: every by-id entry point reports ErrNotFound for
// an id the server has never seen.
func TestUnknownJobErrors(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 1, Options{})
	const id = "job-999999"
	if _, err := s.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status: %v", err)
	}
	if err := s.Wait(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := s.Result(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result: %v", err)
	}
	if _, err := s.Watch(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Watch: %v", err)
	}
	if err := s.Resume(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resume: %v", err)
	}
}

// TestWatchDeliversTransitions: watchers see the kill transition and the
// channel closes at terminal; a watch on an already-terminal job yields
// its final snapshot immediately.
func TestWatchDeliversTransitions(t *testing.T) {
	t.Cleanup(func() { testutil.NoLeaks(t) })
	s := paused(t, 1, Options{})
	id, err := s.Submit(Spec{Name: "watched", InputPath: "r.fastq"})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Kill(id); err != nil {
		t.Fatal(err)
	}
	var last Status
	for st := range ch {
		last = st
	}
	if last.State != Killed {
		t.Fatalf("last watched state %s, want Killed", last.State)
	}
	late, err := s.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := <-late
	if !ok || st.State != Killed {
		t.Fatalf("late watch got (%+v, %v), want buffered Killed snapshot", st, ok)
	}
	if _, ok := <-late; ok {
		t.Fatal("late watch channel not closed after its snapshot")
	}
}
