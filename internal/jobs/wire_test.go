package jobs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"focus/internal/dist"
)

func sampleStatus() Status {
	return Status{
		ID: "job-000042",
		Spec: Spec{
			Name: "sample", InputPath: "/data/reads.fastq", K: 3, Priority: 7,
			MaxWorkers: 2, MemoryMB: 512, Deadline: 90 * time.Second, Seed: -9,
		},
		State: Killed, Error: "jobs: job killed: context canceled",
		Resumable: true, Workers: []int{0, 3}, Attempts: 2,
		SubmittedAt: 111, StartedAt: 222, FinishedAt: 333, Contigs: 5, N50: 1200,
	}
}

// TestWireRoundTrip: Spec and Status survive encode→decode exactly,
// including nil-vs-empty Workers.
func TestWireRoundTrip(t *testing.T) {
	in := sampleStatus()
	r := dist.NewWireReader(in.AppendTo(nil))
	var out Status
	out.DecodeFrom(&r)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("status round trip:\nin  %+v\nout %+v", in, out)
	}

	spec := in.Spec
	sr := dist.NewWireReader(spec.AppendTo(nil))
	var specOut Spec
	specOut.DecodeFrom(&sr)
	if err := sr.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, specOut) {
		t.Fatalf("spec round trip:\nin  %+v\nout %+v", spec, specOut)
	}

	// nil Workers stays nil (present-bit), empty stays empty.
	for _, workers := range [][]int{nil, {}} {
		st := sampleStatus()
		st.Workers = workers
		rr := dist.NewWireReader(st.AppendTo(nil))
		var got Status
		got.DecodeFrom(&rr)
		if err := rr.Finish(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(st.Workers, got.Workers) {
			t.Fatalf("workers %#v decoded as %#v", st.Workers, got.Workers)
		}
	}
}

// TestWireRejectsBadState: a state ordinal outside the lifecycle fails
// the read instead of materializing an impossible status.
func TestWireRejectsBadState(t *testing.T) {
	st := sampleStatus()
	st.State = State(17)
	r := dist.NewWireReader(st.AppendTo(nil))
	var out Status
	out.DecodeFrom(&r)
	if err := r.Finish(); err == nil {
		t.Fatal("state 17 decoded without error")
	}
}

// TestStatusRecordDurability: the status record round-trips through its
// framed file; truncation and corruption are detected, never half-loaded.
func TestStatusRecordDurability(t *testing.T) {
	dir := t.TempDir()
	in := sampleStatus()
	if err := writeStatus(dir, &in); err != nil {
		t.Fatal(err)
	}
	if !statusExists(dir) {
		t.Fatal("statusExists false after writeStatus")
	}
	out, err := readStatus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, *out) {
		t.Fatalf("durable status:\nin  %+v\nout %+v", in, *out)
	}

	path := filepath.Join(dir, statusFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readStatus(dir); err == nil {
		t.Fatal("truncated status record loaded")
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readStatus(dir); err == nil {
		t.Fatal("corrupted status record loaded")
	}

	// Spec record alongside it.
	if err := writeSpec(dir, &in.Spec); err != nil {
		t.Fatal(err)
	}
	sp, err := readSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Spec, *sp) {
		t.Fatalf("durable spec:\nin  %+v\nout %+v", in.Spec, *sp)
	}
}
