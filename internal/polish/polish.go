// Package polish corrects contig consensus errors by realigning reads:
// every read is anchored on a contig by unique k-mers, its bases vote at
// the aligned positions, and columns where a well-supported majority
// disagrees with the contig are corrected. This is the standard final
// assembler stage (Pilon-style), applied to the contigs the distributed
// traversal produced.
package polish

import (
	"fmt"

	"focus/internal/anchor"
	"focus/internal/dna"
)

// Config controls polishing.
type Config struct {
	K int // anchor k-mer size
	// MinDepth is the minimum vote depth at a column before it may be
	// corrected.
	MinDepth int
	// MinMajority is the minimum fraction of votes the winning base needs
	// to overwrite the contig base.
	MinMajority float64
	// MinVotes is the anchor support a read needs to be placed.
	MinVotes int
}

// DefaultConfig returns polishing defaults for ~10x read sets.
func DefaultConfig() Config {
	return Config{K: 21, MinDepth: 3, MinMajority: 0.7, MinVotes: 2}
}

// Stats reports what polishing did.
type Stats struct {
	PlacedReads   int
	UnplacedReads int
	Corrections   int
	ColumnsVoted  int
}

// Polish returns corrected copies of the contigs. Reads may come from
// either strand; reverse-placed reads vote with complemented bases.
func Polish(contigs [][]byte, reads []dna.Read, cfg Config) ([][]byte, Stats, error) {
	var st Stats
	if cfg.K <= 0 || cfg.K > dna.MaxK {
		return nil, st, fmt.Errorf("polish: k=%d out of range", cfg.K)
	}
	if cfg.MinDepth < 1 {
		cfg.MinDepth = 1
	}
	if cfg.MinMajority <= 0.5 {
		cfg.MinMajority = 0.5
	}
	ix, err := anchor.New(contigs, nil, cfg.K)
	if err != nil {
		return nil, st, err
	}

	// votes[c][pos][base]
	votes := make([][][4]int32, len(contigs))
	for i, c := range contigs {
		votes[i] = make([][4]int32, len(c))
	}
	for _, r := range reads {
		hit, ok := ix.Place(r.Seq, cfg.MinVotes)
		if !ok {
			st.UnplacedReads++
			continue
		}
		st.PlacedReads++
		target := votes[hit.Seq]
		if hit.Forward {
			for j, b := range r.Seq {
				p := int(hit.Pos) + j
				if p < 0 || p >= len(target) {
					continue
				}
				if code, ok := dna.BaseCode(b); ok {
					target[p][code]++
				}
			}
		} else {
			// Reverse placement: read base j sits at pos+len-1-j and
			// votes its complement.
			n := len(r.Seq)
			for j, b := range r.Seq {
				p := int(hit.Pos) + n - 1 - j
				if p < 0 || p >= len(target) {
					continue
				}
				if code, ok := dna.BaseCode(dna.Complement(b)); ok {
					target[p][code]++
				}
			}
		}
	}

	out := make([][]byte, len(contigs))
	for ci, c := range contigs {
		nc := append([]byte(nil), c...)
		for p := range nc {
			v := votes[ci][p]
			depth := v[0] + v[1] + v[2] + v[3]
			if depth == 0 {
				continue
			}
			st.ColumnsVoted++
			if int(depth) < cfg.MinDepth {
				continue
			}
			best := 0
			for b := 1; b < 4; b++ {
				if v[b] > v[best] {
					best = b
				}
			}
			winner := dna.CodeBase(byte(best))
			if winner != nc[p] && float64(v[best]) >= cfg.MinMajority*float64(depth) {
				nc[p] = winner
				st.Corrections++
			}
		}
		out[ci] = nc
	}
	return out, st, nil
}
