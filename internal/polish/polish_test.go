package polish

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/dna"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tiling(genome []byte, l, s int, rc bool, rng *rand.Rand) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		seq := append([]byte(nil), genome[pos:pos+l]...)
		if rc && rng.Intn(2) == 1 {
			dna.ReverseComplementInPlace(seq)
		}
		reads = append(reads, dna.Read{ID: "t", Seq: seq})
	}
	return reads
}

func TestPolishFixesPlantedErrors(t *testing.T) {
	genome := randGenome(20, 4000)
	rng := rand.New(rand.NewSource(21))
	reads := tiling(genome, 100, 12, true, rng)

	// Contig = genome with 15 planted errors.
	contig := append([]byte(nil), genome...)
	errPos := map[int]bool{}
	for i := 0; i < 15; i++ {
		p := 100 + rng.Intn(len(contig)-200)
		if errPos[p] {
			continue
		}
		errPos[p] = true
		b := contig[p]
		for b == contig[p] {
			b = "ACGT"[rng.Intn(4)]
		}
		contig[p] = b
	}

	polished, st, err := Polish([][]byte{contig}, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(polished[0], genome) {
		diff := 0
		for i := range genome {
			if polished[0][i] != genome[i] {
				diff++
			}
		}
		t.Fatalf("%d bases still differ after polishing (stats %+v)", diff, st)
	}
	if st.Corrections < len(errPos) {
		t.Errorf("corrections = %d, planted %d", st.Corrections, len(errPos))
	}
	if st.PlacedReads == 0 || st.UnplacedReads > st.PlacedReads/4 {
		t.Errorf("placement stats %+v", st)
	}
}

func TestPolishLeavesCorrectContigAlone(t *testing.T) {
	genome := randGenome(22, 3000)
	rng := rand.New(rand.NewSource(23))
	reads := tiling(genome, 100, 15, true, rng)
	polished, st, err := Polish([][]byte{genome}, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(polished[0], genome) {
		t.Fatal("correct contig modified")
	}
	if st.Corrections != 0 {
		t.Errorf("corrections = %d on a correct contig", st.Corrections)
	}
}

func TestPolishRobustToReadErrors(t *testing.T) {
	// Reads with 1% random errors must not corrupt a correct contig.
	genome := randGenome(24, 3000)
	rng := rand.New(rand.NewSource(25))
	var reads []dna.Read
	for pos := 0; pos+100 <= len(genome); pos += 8 {
		seq := append([]byte(nil), genome[pos:pos+100]...)
		for j := range seq {
			if rng.Float64() < 0.01 {
				seq[j] = "ACGT"[rng.Intn(4)]
			}
		}
		reads = append(reads, dna.Read{ID: "e", Seq: seq})
	}
	polished, st, err := Polish([][]byte{genome}, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(polished[0], genome) {
		t.Errorf("noisy reads corrupted a correct contig (stats %+v)", st)
	}
}

func TestPolishRespectsMinDepth(t *testing.T) {
	genome := randGenome(26, 2000)
	contig := append([]byte(nil), genome...)
	contig[1000] = dna.Complement(contig[1000]) // one planted error
	// Single read covering the error: below MinDepth 3, no correction.
	reads := []dna.Read{{ID: "r", Seq: genome[950:1050]}}
	polished, st, err := Polish([][]byte{contig}, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrections != 0 || polished[0][1000] == genome[1000] {
		t.Errorf("under-supported correction applied (stats %+v)", st)
	}
	// With MinDepth 1 it corrects.
	cfg := DefaultConfig()
	cfg.MinDepth = 1
	polished, st, err = Polish([][]byte{contig}, reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if polished[0][1000] != genome[1000] || st.Corrections != 1 {
		t.Errorf("depth-1 correction missing (stats %+v)", st)
	}
}

func TestPolishMultipleContigs(t *testing.T) {
	g1 := randGenome(27, 1500)
	g2 := randGenome(28, 1500)
	c1 := append([]byte(nil), g1...)
	c1[700] = dna.Complement(c1[700])
	c2 := append([]byte(nil), g2...)
	rng := rand.New(rand.NewSource(29))
	reads := append(tiling(g1, 100, 10, true, rng), tiling(g2, 100, 10, true, rng)...)
	polished, st, err := Polish([][]byte{c1, c2}, reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(polished[0], g1) || !bytes.Equal(polished[1], g2) {
		t.Errorf("multi-contig polish failed (stats %+v)", st)
	}
}

func TestPolishErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 0
	if _, _, err := Polish(nil, nil, cfg); err == nil {
		t.Error("k=0 accepted")
	}
}
