// Package qc computes read-set quality-control statistics (a FastQC
// lite): per-position quality profile, per-read quality and GC
// distributions, length distribution, k-mer coverage spectrum and
// overrepresented 5' prefixes (adapter detection). Focus preprocessing
// parameters (trim lengths, quality threshold) are chosen from these
// reports.
package qc

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"focus/internal/dna"
)

// Report holds the computed statistics.
type Report struct {
	NumReads   int
	TotalBases int
	MinLen     int
	MaxLen     int
	MeanLen    float64

	// PosQualMean[i] is the mean Phred quality at read position i (up to
	// the longest read); PosCount[i] is how many reads reach position i.
	PosQualMean []float64
	PosCount    []int

	// MeanQualHist buckets reads by mean quality (2-point buckets 0..40+).
	MeanQualHist []int
	// GCHist buckets reads by GC fraction in 5% bins.
	GCHist [21]int

	// KmerSpectrum[c] is the number of distinct k-mers seen exactly c
	// times (c capped at len-1); its main peak estimates coverage.
	KmerSpectrum []int
	SpectrumK    int

	// AdapterPrefix is the most overrepresented 5' prefix and the
	// fraction of reads carrying it (candidates for Trim5).
	AdapterPrefix     string
	AdapterPrefixFrac float64
}

// Config controls the analysis.
type Config struct {
	SpectrumK   int // k for the k-mer spectrum (0 disables)
	SpectrumCap int // spectrum multiplicity cap
	PrefixLen   int // adapter-candidate prefix length
}

// DefaultConfig matches 100 bp Illumina-style reads.
func DefaultConfig() Config {
	return Config{SpectrumK: 21, SpectrumCap: 64, PrefixLen: 8}
}

// Analyze computes the report for a read set.
func Analyze(reads []dna.Read, cfg Config) (*Report, error) {
	if len(reads) == 0 {
		return nil, fmt.Errorf("qc: empty read set")
	}
	if cfg.PrefixLen <= 0 {
		cfg.PrefixLen = 8
	}
	if cfg.SpectrumCap <= 1 {
		cfg.SpectrumCap = 64
	}
	r := &Report{NumReads: len(reads), MinLen: reads[0].Len(), MeanQualHist: make([]int, 21)}

	var posQualSum []float64
	prefixes := map[string]int{}
	var kmers map[dna.Kmer]int32
	if cfg.SpectrumK > 0 {
		if cfg.SpectrumK > dna.MaxK {
			return nil, fmt.Errorf("qc: spectrum k=%d out of range", cfg.SpectrumK)
		}
		kmers = make(map[dna.Kmer]int32)
		r.SpectrumK = cfg.SpectrumK
	}

	for _, rd := range reads {
		n := rd.Len()
		r.TotalBases += n
		if n < r.MinLen {
			r.MinLen = n
		}
		if n > r.MaxLen {
			r.MaxLen = n
		}
		for len(posQualSum) < n {
			posQualSum = append(posQualSum, 0)
			r.PosCount = append(r.PosCount, 0)
		}
		qsum := 0
		for i := 0; i < n; i++ {
			q := rd.PhredQuality(i)
			posQualSum[i] += float64(q)
			r.PosCount[i]++
			qsum += q
		}
		if n > 0 {
			mean := qsum / n
			b := mean / 2
			if b > 20 {
				b = 20
			}
			r.MeanQualHist[b]++
			gcBin := int(dna.GC(rd.Seq) * 20)
			if gcBin > 20 {
				gcBin = 20
			}
			r.GCHist[gcBin]++
		}
		if n >= cfg.PrefixLen {
			prefixes[string(rd.Seq[:cfg.PrefixLen])]++
		}
		if kmers != nil {
			it := dna.NewKmerIter(rd.Seq, cfg.SpectrumK)
			for {
				km, _, ok := it.Next()
				if !ok {
					break
				}
				kmers[km.Canonical(cfg.SpectrumK)]++
			}
		}
	}
	r.MeanLen = float64(r.TotalBases) / float64(r.NumReads)
	r.PosQualMean = make([]float64, len(posQualSum))
	for i := range posQualSum {
		if r.PosCount[i] > 0 {
			r.PosQualMean[i] = posQualSum[i] / float64(r.PosCount[i])
		}
	}
	if kmers != nil {
		r.KmerSpectrum = make([]int, cfg.SpectrumCap)
		for _, c := range kmers {
			b := int(c)
			if b >= cfg.SpectrumCap {
				b = cfg.SpectrumCap - 1
			}
			r.KmerSpectrum[b]++
		}
	}
	// Adapter candidate: the most common prefix; overrepresented when it
	// exceeds what a random prefix would give by a wide margin.
	best, bestN := "", 0
	for p, n := range prefixes {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	r.AdapterPrefix = best
	r.AdapterPrefixFrac = float64(bestN) / float64(r.NumReads)
	return r, nil
}

// EstimatedCoverage returns the position of the k-mer spectrum's main
// peak, ignoring the low-multiplicity error region (c <= 2). Returns 0
// without a spectrum or a peak.
func (r *Report) EstimatedCoverage() int {
	best, bestN := 0, 0
	for c := 3; c < len(r.KmerSpectrum); c++ {
		if r.KmerSpectrum[c] > bestN {
			best, bestN = c, r.KmerSpectrum[c]
		}
	}
	return best
}

// AdapterSuspected reports whether the top prefix looks like an adapter
// (shared by far more reads than base composition explains).
func (r *Report) AdapterSuspected() bool {
	return r.AdapterPrefixFrac > 0.25
}

// Render writes a human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "reads: %d, bases: %d, length: %d-%d (mean %.1f)\n",
		r.NumReads, r.TotalBases, r.MinLen, r.MaxLen, r.MeanLen)
	fmt.Fprintf(w, "\nper-position mean quality (every 10th position):\n")
	for i := 0; i < len(r.PosQualMean); i += 10 {
		bar := strings.Repeat("#", int(r.PosQualMean[i]))
		fmt.Fprintf(w, "  %4d  q%5.1f %s\n", i, r.PosQualMean[i], bar)
	}
	fmt.Fprintf(w, "\nmean read quality histogram (bucket = 2 Phred):\n")
	for b, n := range r.MeanQualHist {
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "  q%2d-%2d  %d\n", 2*b, 2*b+1, n)
	}
	fmt.Fprintf(w, "\nGC distribution (5%% bins with reads):\n")
	for b, n := range r.GCHist {
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "  %3d%%  %d\n", b*5, n)
	}
	if r.SpectrumK > 0 {
		fmt.Fprintf(w, "\n%d-mer spectrum (multiplicity: distinct k-mers):\n", r.SpectrumK)
		printed := 0
		for c, n := range r.KmerSpectrum {
			if n == 0 || c == 0 {
				continue
			}
			fmt.Fprintf(w, "  %3dx  %d\n", c, n)
			printed++
			if printed >= 20 {
				fmt.Fprintf(w, "  ...\n")
				break
			}
		}
		if cov := r.EstimatedCoverage(); cov > 0 {
			fmt.Fprintf(w, "estimated coverage: ~%dx\n", cov)
		}
	}
	if r.AdapterSuspected() {
		fmt.Fprintf(w, "\nWARNING: 5' prefix %q present in %.0f%% of reads — likely adapter; consider -trim5 %d\n",
			r.AdapterPrefix, 100*r.AdapterPrefixFrac, len(r.AdapterPrefix))
	}
}

// TopPrefixes returns the n most common 5' prefixes with counts (for
// tests and detailed reports).
func TopPrefixes(reads []dna.Read, prefixLen, n int) []struct {
	Prefix string
	Count  int
} {
	counts := map[string]int{}
	for _, r := range reads {
		if r.Len() >= prefixLen {
			counts[string(r.Seq[:prefixLen])]++
		}
	}
	type pc struct {
		Prefix string
		Count  int
	}
	var all []pc
	for p, c := range counts {
		all = append(all, pc{p, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Prefix < all[j].Prefix
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Prefix string
		Count  int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Prefix string
			Count  int
		}{all[i].Prefix, all[i].Count}
	}
	return out
}
