package qc

import (
	"strings"
	"testing"

	"focus/internal/dna"
	"focus/internal/simulate"
)

func simSet(t *testing.T, adapterLen int) []dna.Read {
	t.Helper()
	com, err := simulate.BuildCommunity(simulate.SingleGenome("qc", 6000, 50))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 10,
		ErrorRate5: 0.001, ErrorRate3: 0.03,
		Seed: 51, AdapterLen: adapterLen,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs.Reads
}

func TestAnalyzeBasics(t *testing.T) {
	reads := simSet(t, 0)
	rep, err := Analyze(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumReads != len(reads) {
		t.Errorf("NumReads = %d", rep.NumReads)
	}
	if rep.MinLen != 100 || rep.MaxLen != 100 || rep.MeanLen != 100 {
		t.Errorf("lengths = %d/%d/%v", rep.MinLen, rep.MaxLen, rep.MeanLen)
	}
	if rep.TotalBases != 100*len(reads) {
		t.Errorf("TotalBases = %d", rep.TotalBases)
	}
	if len(rep.PosQualMean) != 100 {
		t.Fatalf("PosQualMean len = %d", len(rep.PosQualMean))
	}
	// The simulated 3'-degrading profile must show in the report.
	if rep.PosQualMean[95] >= rep.PosQualMean[5] {
		t.Errorf("3' quality %.1f not below 5' %.1f", rep.PosQualMean[95], rep.PosQualMean[5])
	}
	// All counts at full length for uniform reads.
	if rep.PosCount[99] != len(reads) {
		t.Errorf("PosCount[99] = %d", rep.PosCount[99])
	}
}

func TestAnalyzeCoverageEstimate(t *testing.T) {
	reads := simSet(t, 0)
	rep, err := Analyze(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cov := rep.EstimatedCoverage()
	// 10x nominal coverage; k-mer coverage is c*(L-k+1)/L ~ 8x. Accept a
	// generous window.
	if cov < 4 || cov > 14 {
		t.Errorf("estimated coverage = %d, want ~8", cov)
	}
}

func TestAnalyzeAdapterDetection(t *testing.T) {
	withAdapter := simSet(t, 8)
	rep, err := Analyze(withAdapter, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AdapterSuspected() {
		t.Errorf("adapter not suspected: prefix %q frac %.2f", rep.AdapterPrefix, rep.AdapterPrefixFrac)
	}
	if rep.AdapterPrefix != "AGATCGGA" {
		t.Errorf("adapter prefix = %q", rep.AdapterPrefix)
	}
	clean := simSet(t, 0)
	rep2, err := Analyze(clean, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AdapterSuspected() {
		t.Errorf("false adapter alarm: %q frac %.2f", rep2.AdapterPrefix, rep2.AdapterPrefixFrac)
	}
}

func TestAnalyzeGCHist(t *testing.T) {
	reads := []dna.Read{
		{ID: "at", Seq: []byte("AATTAATTAA")},
		{ID: "gc", Seq: []byte("GGCCGGCCGG")},
	}
	rep, err := Analyze(reads, Config{PrefixLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GCHist[0] != 1 || rep.GCHist[20] != 1 {
		t.Errorf("GC hist = %v", rep.GCHist)
	}
	if rep.KmerSpectrum != nil {
		t.Error("spectrum computed with SpectrumK=0")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, DefaultConfig()); err == nil {
		t.Error("empty set accepted")
	}
	cfg := DefaultConfig()
	cfg.SpectrumK = 40
	if _, err := Analyze(simSet(t, 0), cfg); err == nil {
		t.Error("k=40 accepted")
	}
}

func TestRender(t *testing.T) {
	reads := simSet(t, 8)
	rep, err := Analyze(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.Render(&b)
	out := b.String()
	for _, want := range []string{"per-position mean quality", "GC distribution", "21-mer spectrum", "WARNING"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTopPrefixes(t *testing.T) {
	reads := []dna.Read{
		{ID: "1", Seq: []byte("AAAACCCC")},
		{ID: "2", Seq: []byte("AAAAGGGG")},
		{ID: "3", Seq: []byte("TTTTGGGG")},
		{ID: "4", Seq: []byte("AC")}, // too short: skipped
	}
	top := TopPrefixes(reads, 4, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Prefix != "AAAA" || top[0].Count != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Prefix != "TTTT" || top[1].Count != 1 {
		t.Errorf("top[1] = %+v", top[1])
	}
}
