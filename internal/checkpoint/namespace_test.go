package checkpoint

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestClaimOwnership: a fresh claim creates and marks the namespace,
// re-claiming under the same id is idempotent, and a different id is a
// loud ErrNamespace — never a silent checkpoint mixup.
func TestClaimOwnership(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ns")
	if err := Claim(dir, "job-000001"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := Owner(dir); owner != "job-000001" {
		t.Fatalf("owner %q, want job-000001", owner)
	}
	if err := Claim(dir, "job-000001"); err != nil {
		t.Fatalf("idempotent re-claim: %v", err)
	}
	err := Claim(dir, "job-000002")
	if !errors.Is(err, ErrNamespace) {
		t.Fatalf("cross-job claim: got %v, want ErrNamespace", err)
	}
	// The collision must not steal ownership.
	if owner, _ := Owner(dir); owner != "job-000001" {
		t.Fatalf("owner after rejected claim %q, want job-000001", owner)
	}
}

// TestClaimAdoptsLegacyDir: a pre-namespace checkpoint dir (no OWNER
// marker) is adopted by the first claimer, so old checkpoint dirs keep
// working after an upgrade.
func TestClaimAdoptsLegacyDir(t *testing.T) {
	dir := t.TempDir() // exists, no marker
	if owner, _ := Owner(dir); owner != "" {
		t.Fatalf("legacy dir owner %q, want empty", owner)
	}
	if err := Claim(dir, "job-000009"); err != nil {
		t.Fatal(err)
	}
	if owner, _ := Owner(dir); owner != "job-000009" {
		t.Fatalf("adopted owner %q", owner)
	}
}

// TestValidateID: ids embed in file paths and the OWNER marker line, so
// separators, traversal names and control characters are rejected.
func TestValidateID(t *testing.T) {
	for _, ok := range []string{"job-000001", "my_job.7", "A"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{
		"", " padded ", "a/b", `a\b`, "a:b", "a\nb", "a\rb", "a\x00b", ".", "..",
	} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
	if err := Claim(t.TempDir(), "bad/id"); err == nil {
		t.Fatal("Claim accepted an invalid id")
	}
}
