package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Namespace ownership (DESIGN.md §16). Two runs sharing one checkpoint
// directory would silently interleave their ckpt-* frames: each run's
// Write overwrites the other's sequence numbers, and a resume would load
// whichever graph happened to land last — byte-identical to *neither*
// run. Claim makes the collision loud: a directory is claimed for one
// owner id by an OWNER marker file, and any later claim under a
// different id fails with ErrNamespace instead of corrupting the frames.
// The resident master derives one sub-directory per job id, so every job
// checkpoints — and resumes — in isolation.

// ErrNamespace marks a checkpoint directory owned by a different job:
// resuming (or checkpointing) under the wrong id would mix two jobs'
// frames.
var ErrNamespace = errors.New("checkpoint: directory owned by a different job")

// ownerFile is the marker file holding the owning job id.
const ownerFile = "OWNER"

// ValidateID rejects owner/job ids that cannot safely name a directory
// or be round-tripped through the marker file.
func ValidateID(id string) error {
	switch {
	case id == "":
		return fmt.Errorf("checkpoint: empty job id")
	case id != strings.TrimSpace(id):
		return fmt.Errorf("checkpoint: job id %q has surrounding whitespace", id)
	case strings.ContainsAny(id, "/\\:\n\r\x00") || id == "." || id == "..":
		return fmt.Errorf("checkpoint: job id %q is not a safe path component", id)
	}
	return nil
}

// Claim marks dir as owned by job id, creating it if needed. Claiming an
// unowned directory writes the marker; re-claiming with the same id is
// an idempotent no-op (the resume path); claiming a directory owned by a
// different id fails with an error wrapping ErrNamespace — a stale or
// colliding namespace must never be silently reused. Pre-namespace
// directories (checkpoint frames but no marker) are adopted by the first
// claimer: the marker is added, and any *other* id fails from then on.
func Claim(dir, id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	path := filepath.Join(dir, ownerFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		owner := strings.TrimSpace(string(data))
		if owner != id {
			return fmt.Errorf("%w: %s is owned by job %q, claimed as %q", ErrNamespace, dir, owner, id)
		}
		return nil
	case os.IsNotExist(err):
		// Fall through to write the marker.
	default:
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	// Atomic marker write (temp + rename), same discipline as the frames:
	// a crash mid-claim must not leave a truncated owner id behind.
	tmp, err := os.CreateTemp(dir, ownerFile+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(id + "\n"); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: claim %s: %w", dir, err)
	}
	syncDir(dir)
	return nil
}

// Owner returns the id owning dir, or "" when the directory has no
// owner marker (unclaimed or pre-namespace).
func Owner(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, ownerFile))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	return strings.TrimSpace(string(data)), nil
}
