// Package checkpoint provides durable, corruption-evident checkpoint
// files for phase-boundary crash recovery (DESIGN.md §11). It is a
// generic framing layer: callers bring an opaque payload (the assembly
// package encodes its master graph with its Wire codecs) and a version
// number; checkpoint owns atomicity and integrity.
//
// File format:
//
//	offset 0: magic "FCKP" (4 bytes)
//	offset 4: version uint32 LE (caller-defined payload schema version)
//	offset 8: payload (len(file) - 12 bytes)
//	last 4:   CRC32 (IEEE) over bytes [0, len(file)-4) — magic, version
//	          and payload — little endian
//
// Writes are atomic: payload goes to a temp file in the target directory,
// is fsynced, then renamed over the final name (rename is atomic on
// POSIX), and the directory is fsynced so the rename itself is durable. A
// crash mid-write leaves only a stale temp file, never a half-written
// checkpoint under a valid name; a torn write that somehow survives is
// caught by the CRC. Corrupt or truncated files are detected and reported
// (ErrCorrupt), never silently loaded.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

var (
	// ErrCorrupt marks a checkpoint file whose magic, size, or CRC check
	// failed — the file must not be trusted.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated file")
	// ErrVersion marks a structurally valid checkpoint whose payload
	// schema version differs from what the caller expects.
	ErrVersion = errors.New("checkpoint: version mismatch")
	// ErrNone reports that a directory holds no checkpoint files at all
	// (distinct from holding only corrupt ones, which is an ErrCorrupt).
	ErrNone = errors.New("checkpoint: no checkpoint found")
)

var magic = [4]byte{'F', 'C', 'K', 'P'}

const (
	headerSize = 8 // magic + version
	footerSize = 4 // crc32
	// prefix/suffix of the sequence-numbered file naming convention.
	namePrefix = "ckpt-"
	nameSuffix = ".fckp"
)

// Name returns the canonical file name of checkpoint sequence number seq.
// Zero-padded so lexical order equals numeric order.
func Name(seq int) string {
	return fmt.Sprintf("%s%09d%s", namePrefix, seq, nameSuffix)
}

// parseSeq extracts the sequence number from a canonical name; ok is
// false for files that do not follow the convention.
func parseSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, namePrefix) || !strings.HasSuffix(name, nameSuffix) {
		return 0, false
	}
	mid := name[len(namePrefix) : len(name)-len(nameSuffix)]
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Encode frames a payload: header + payload + CRC footer. Exposed for
// tests and in-memory round-trips; WriteFile is the durable path.
func Encode(version uint32, payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload)+footerSize)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// Decode validates a framed checkpoint and returns its payload. The
// returned slice aliases data.
func Decode(data []byte, wantVersion uint32) ([]byte, error) {
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(data), headerSize+footerSize)
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	body := data[:len(data)-footerSize]
	want := binary.LittleEndian.Uint32(data[len(data)-footerSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc 0x%08x, footer says 0x%08x", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != wantVersion {
		return nil, fmt.Errorf("%w: file version %d, expected %d", ErrVersion, v, wantVersion)
	}
	return body[headerSize:], nil
}

// WriteFile atomically writes a framed checkpoint to path: temp file in
// the same directory, fsync, rename, directory fsync.
func WriteFile(path string, version uint32, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if _, err := tmp.Write(Encode(version, payload)); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ReadFile loads and validates one checkpoint file.
func ReadFile(path string, wantVersion uint32) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	payload, err := Decode(data, wantVersion)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return payload, nil
}

// Write stores a payload as sequence number seq in dir, creating dir if
// needed.
func Write(dir string, seq int, version uint32, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return WriteFile(filepath.Join(dir, Name(seq)), version, payload)
}

// Latest loads the newest valid checkpoint in dir. Files are tried in
// descending sequence order; corrupt, truncated, or wrong-version files
// are skipped, and every skip is reported in skipped so the caller can
// surface them — a corrupt checkpoint is never silently loaded, and never
// silently terminal when an older valid one exists. Returns ErrNone when
// dir holds no checkpoint files at all, and an ErrCorrupt-wrapping error
// when files exist but none validate.
func Latest(dir string, wantVersion uint32) (payload []byte, seq int, skipped []error, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil, ErrNone
		}
		return nil, 0, nil, fmt.Errorf("checkpoint: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeq(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	if len(seqs) == 0 {
		return nil, 0, nil, ErrNone
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, n := range seqs {
		p, rerr := ReadFile(filepath.Join(dir, Name(n)), wantVersion)
		if rerr != nil {
			skipped = append(skipped, rerr)
			continue
		}
		return p, n, skipped, nil
	}
	return nil, 0, skipped, fmt.Errorf("%w: %d checkpoint file(s) in %s, none valid (first: %v)",
		ErrCorrupt, len(seqs), dir, skipped[0])
}
