package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the checkpoint frame decoder: the
// CRC/magic/size checks must reject garbage with an error — never a panic
// and never a silently truncated payload — and any frame Decode accepts
// must be byte-identical to what Encode produces for its payload (the
// framing admits exactly one encoding per payload).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(1, []byte("payload")))
	f.Add(Encode(1, nil))
	f.Add(Encode(2, bytes.Repeat([]byte{0xAB}, 512)))
	f.Add([]byte("FCKP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data, 1)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(1, payload), data) {
			t.Fatalf("accepted frame is not the canonical encoding of its payload")
		}
	})
}
