package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc123"), 1000)}
	for _, p := range payloads {
		enc := Encode(7, p)
		got, err := Decode(enc, 7)
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", len(p), err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch: %d bytes in, %d out", len(p), len(got))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := Encode(1, []byte("the quick brown fox"))
	// Truncation at every length short of the full frame.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n], 1); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// A flipped bit anywhere must fail the CRC (or the magic check).
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode(bad, 1); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	enc := Encode(3, []byte("payload"))
	if _, err := Decode(enc, 4); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	// Version is checked after integrity: a corrupt frame is ErrCorrupt
	// even if the version bytes happen to differ too.
	bad := append([]byte(nil), enc...)
	bad[5]++
	if _, err := Decode(bad, 4); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt before version check", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, Name(1))
	payload := []byte("graph state goes here")
	if err := WriteFile(path, 2, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after file round-trip")
	}
	// No temp litter after a successful write.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d entries in dir after write, want 1", len(entries))
	}
}

func TestLatestPicksNewestValid(t *testing.T) {
	dir := t.TempDir()
	for seq, body := range map[int]string{1: "one", 3: "three", 2: "two"} {
		if err := Write(dir, seq, 1, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	payload, seq, skipped, err := Latest(dir, 1)
	if err != nil || seq != 3 || string(payload) != "three" || len(skipped) != 0 {
		t.Fatalf("Latest = (%q, %d, %v, %v)", payload, seq, skipped, err)
	}

	// Corrupt the newest: Latest must skip it (reporting the skip) and
	// fall back to the next valid one.
	path3 := filepath.Join(dir, Name(3))
	data, _ := os.ReadFile(path3)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, seq, skipped, err = Latest(dir, 1)
	if err != nil || seq != 2 || string(payload) != "two" {
		t.Fatalf("Latest after corruption = (%q, %d, %v)", payload, seq, err)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0], ErrCorrupt) {
		t.Fatalf("skipped = %v, want one ErrCorrupt", skipped)
	}

	// Truncate to zero bytes: still detected, still skipped.
	if err := os.WriteFile(path3, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, seq, skipped, err = Latest(dir, 1)
	if err != nil || seq != 2 || len(skipped) != 1 {
		t.Fatalf("Latest after truncation = (%d, %v, %v)", seq, skipped, err)
	}
}

func TestLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 2; seq++ {
		if err := Write(dir, seq, 1, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, Name(seq))
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, skipped, err := Latest(dir, 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d files, want 2", len(skipped))
	}
}

func TestLatestNone(t *testing.T) {
	if _, _, _, err := Latest(t.TempDir(), 1); !errors.Is(err, ErrNone) {
		t.Fatalf("empty dir: err = %v, want ErrNone", err)
	}
	if _, _, _, err := Latest(filepath.Join(t.TempDir(), "missing"), 1); !errors.Is(err, ErrNone) {
		t.Fatalf("missing dir: err = %v, want ErrNone", err)
	}
	// Non-checkpoint files are ignored, not corrupt.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	if _, _, _, err := Latest(dir, 1); !errors.Is(err, ErrNone) {
		t.Fatalf("unrelated files: err = %v, want ErrNone", err)
	}
}

func TestNameRoundTrip(t *testing.T) {
	for _, seq := range []int{0, 1, 42, 123456789} {
		n, ok := parseSeq(Name(seq))
		if !ok || n != seq {
			t.Fatalf("parseSeq(Name(%d)) = (%d, %v)", seq, n, ok)
		}
	}
	for _, bad := range []string{"ckpt-.fckp", "ckpt-x.fckp", "other", "ckpt-1.txt", "ckpt--0001.fckp"} {
		if _, ok := parseSeq(bad); ok {
			t.Fatalf("parseSeq(%q) accepted", bad)
		}
	}
}
