package coarsen

import (
	"testing"

	"focus/internal/graph"
)

// TestHeavyEdgeMatchingParValidAndMaximal: the round-based matching is a
// valid matching and maximal (no live edge between two unmatched nodes).
func TestHeavyEdgeMatchingParValidAndMaximal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 150, 600)
		match := HeavyEdgeMatchingPar(g, seed, 1)
		checkMatching(t, g, match)
		for v := 0; v < g.NumNodes(); v++ {
			if match[v] != -1 {
				continue
			}
			for _, a := range g.Adj(v) {
				if match[a.To] == -1 {
					t.Fatalf("seed %d: unmatched adjacent pair %d-%d", seed, v, a.To)
				}
			}
		}
	}
}

// TestHeavyEdgeMatchingParWorkerEquivalence: fixed seed, identical
// matching at worker counts 1, 2 and 8.
func TestHeavyEdgeMatchingParWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(100+seed, 200, 900)
		ref := HeavyEdgeMatchingPar(g, seed, 1)
		for _, w := range []int{2, 8} {
			got := HeavyEdgeMatchingPar(g, seed, w)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("seed %d workers %d: match[%d] = %d, serial %d", seed, w, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestContractParWorkerEquivalence: contraction of a matching is
// byte-identical (graph and up-map) at worker counts 1, 2 and 8.
func TestContractParWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(200+seed, 200, 900)
		match := HeavyEdgeMatchingPar(g, seed, 1)
		refG, refUp := ContractPar(g, match, 1)
		for _, w := range []int{2, 8} {
			gotG, gotUp := ContractPar(g, match, w)
			if !gotG.Equal(refG) {
				t.Fatalf("seed %d workers %d: contracted graph diverged", seed, w)
			}
			for v := range refUp {
				if gotUp[v] != refUp[v] {
					t.Fatalf("seed %d workers %d: up[%d] diverged", seed, w, v)
				}
			}
		}
	}
}

// TestMultilevelWorkerEquivalence: the whole multilevel set is identical
// at any Options.Workers for a fixed Options.Seed.
func TestMultilevelWorkerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(300+seed, 400, 2000)
		opt := DefaultOptions()
		opt.Seed = seed
		opt.Workers = 1
		ref := Multilevel(g, opt)
		for _, w := range []int{2, 8} {
			opt.Workers = w
			got := Multilevel(g, opt)
			if len(got.Levels) != len(ref.Levels) {
				t.Fatalf("seed %d workers %d: %d levels vs %d", seed, w, len(got.Levels), len(ref.Levels))
			}
			for i := range ref.Levels {
				if !got.Levels[i].Equal(ref.Levels[i]) {
					t.Fatalf("seed %d workers %d: level %d diverged", seed, w, i)
				}
			}
			for i := range ref.Up {
				for v := range ref.Up[i] {
					if got.Up[i][v] != ref.Up[i][v] {
						t.Fatalf("seed %d workers %d: up-map %d diverged at %d", seed, w, i, v)
					}
				}
			}
		}
	}
}

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return randomGraph(42, 20000, 160000)
}

func BenchmarkHeavyEdgeMatching(b *testing.B) {
	g := benchGraph(b)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = HeavyEdgeMatchingPar(g, 1, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = HeavyEdgeMatchingPar(g, 1, 0)
		}
	})
}

func BenchmarkContract(b *testing.B) {
	g := benchGraph(b)
	match := HeavyEdgeMatchingPar(g, 1, 0)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = ContractPar(g, match, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = ContractPar(g, match, 0)
		}
	})
}
