// Package coarsen implements graph coarsening by heavy-edge matching and
// node merging (Karypis & Kumar, the paper's reference [15]), producing
// the multilevel graph set G = {G0, G1, …, Gn} of paper §II.C: each level
// is formed by finding a matching on the previous level and merging the
// endpoints of every matched edge.
package coarsen

import (
	"math/rand"

	"focus/internal/graph"
)

// Options control when coarsening stops.
type Options struct {
	// MaxLevels caps the number of coarsening rounds (the paper's data
	// sets produced ten graph levels; 10 is the default).
	MaxLevels int
	// MinNodes stops coarsening once the coarsest graph is at most this
	// large.
	MinNodes int
	// MinShrink stops coarsening when a round shrinks the node count by
	// less than this factor (e.g. 0.05 requires each round to remove at
	// least 5% of nodes).
	MinShrink float64
	// Seed drives the random visit order of heavy-edge matching.
	Seed int64
}

// DefaultOptions mirror the paper's setup.
func DefaultOptions() Options {
	return Options{MaxLevels: 10, MinNodes: 32, MinShrink: 0.05, Seed: 1}
}

// HeavyEdgeMatching computes a matching on g: nodes are visited in random
// order and each unmatched node is matched to its unmatched neighbour with
// the heaviest connecting edge (ties to the smaller id). match[v] is v's
// partner, or -1 if v is unmatched.
func HeavyEdgeMatching(g *graph.Graph, rng *rand.Rand) []int {
	n := g.NumNodes()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := -1
		var bestW int64
		for _, a := range g.Adj(v) {
			if match[a.To] != -1 {
				continue
			}
			if a.W > bestW || (a.W == bestW && best != -1 && a.To < best) {
				best, bestW = a.To, a.W
			}
		}
		if best != -1 {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

// Contract merges matched node pairs into single nodes, producing the next
// coarser graph and the up-map (up[v] = v's node in the coarse graph).
// Merged node weights are summed; parallel edges are combined by summing;
// edges internal to a merged pair disappear.
func Contract(g *graph.Graph, match []int) (*graph.Graph, []int) {
	n := g.NumNodes()
	up := make([]int, n)
	for i := range up {
		up[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if up[v] != -1 {
			continue
		}
		up[v] = next
		if m := match[v]; m != -1 {
			up[m] = next
		}
		next++
	}
	b := graph.NewBuilder(next)
	weights := make([]int64, next)
	for v := 0; v < n; v++ {
		weights[up[v]] += g.NodeWeight(v)
	}
	for c, w := range weights {
		b.SetNodeWeight(c, w)
	}
	for v := 0; v < n; v++ {
		for _, a := range g.Adj(v) {
			if a.To <= v {
				continue // each undirected edge once
			}
			if up[v] == up[a.To] {
				continue // internal to a merged pair
			}
			// Builder merges parallel edges by summation.
			_ = b.AddEdge(up[v], up[a.To], a.W)
		}
	}
	return b.Build(), up
}

// Multilevel coarsens g0 into a multilevel graph set. Levels[0] is g0.
func Multilevel(g0 *graph.Graph, opt Options) *graph.Set {
	if opt.MaxLevels <= 0 {
		opt.MaxLevels = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	set := &graph.Set{Levels: []*graph.Graph{g0}}
	cur := g0
	for level := 1; level < opt.MaxLevels; level++ {
		if cur.NumNodes() <= opt.MinNodes {
			break
		}
		match := HeavyEdgeMatching(cur, rng)
		coarse, up := Contract(cur, match)
		shrink := 1 - float64(coarse.NumNodes())/float64(cur.NumNodes())
		if shrink < opt.MinShrink {
			break
		}
		set.Levels = append(set.Levels, coarse)
		set.Up = append(set.Up, up)
		cur = coarse
	}
	return set
}

// Clusters returns, for each node of the coarsest level reachable through
// the set, the list of level-0 nodes it represents.
func Clusters(set *graph.Set) [][]int {
	n0 := set.Levels[0].NumNodes()
	assign := make([]int, n0)
	for v := range assign {
		assign[v] = v
	}
	for _, up := range set.Up {
		for v := range assign {
			assign[v] = up[assign[v]]
		}
	}
	out := make([][]int, set.Coarsest().NumNodes())
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}

// ClustersAt returns the level-0 cluster of every node at the given level.
func ClustersAt(set *graph.Set, level int) [][]int {
	n0 := set.Levels[0].NumNodes()
	assign := make([]int, n0)
	for v := range assign {
		assign[v] = v
	}
	for i := 0; i < level; i++ {
		for v := range assign {
			assign[v] = set.Up[i][assign[v]]
		}
	}
	out := make([][]int, set.Levels[level].NumNodes())
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}
