// Package coarsen implements graph coarsening by heavy-edge matching and
// node merging (Karypis & Kumar, the paper's reference [15]), producing
// the multilevel graph set G = {G0, G1, …, Gn} of paper §II.C: each level
// is formed by finding a matching on the previous level and merging the
// endpoints of every matched edge.
//
// Matching runs as a sharded, round-based "local-max" algorithm: every
// unmatched node proposes its heaviest live incident edge under a seeded
// total edge order, mutual proposals are claimed with atomic CAS, and
// rounds repeat until the matching is maximal. Because proposals are
// computed from a barrier-separated snapshot and the edge order is a pure
// function of (seed, endpoints, weight), the matching is byte-identical
// at any worker count — the determinism contract the equivalence tests
// enforce.
package coarsen

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"focus/internal/graph"
	"focus/internal/par"
)

// Options control when coarsening stops.
type Options struct {
	// MaxLevels caps the number of coarsening rounds (the paper's data
	// sets produced ten graph levels; 10 is the default).
	MaxLevels int
	// MinNodes stops coarsening once the coarsest graph is at most this
	// large.
	MinNodes int
	// MinShrink stops coarsening when a round shrinks the node count by
	// less than this factor (e.g. 0.05 requires each round to remove at
	// least 5% of nodes).
	MinShrink float64
	// Seed drives the tie-break priorities of heavy-edge matching. For a
	// fixed seed the multilevel set is identical at any Workers value.
	Seed int64
	// Workers bounds the matching/contraction worker pool; <= 0 means
	// GOMAXPROCS. Purely a throughput knob — never changes results.
	Workers int
}

// DefaultOptions mirror the paper's setup.
func DefaultOptions() Options {
	return Options{MaxLevels: 10, MinNodes: 32, MinShrink: 0.05, Seed: 1}
}

// HeavyEdgeMatching computes a matching on g with the serial greedy
// heuristic: nodes are visited in random order and each unmatched node is
// matched to its unmatched neighbour with the heaviest connecting edge
// (ties to the smaller id). match[v] is v's partner, or -1 if v is
// unmatched. Retained as the order-dependent reference; the pipeline uses
// HeavyEdgeMatchingPar, whose result is visit-order independent.
func HeavyEdgeMatching(g *graph.Graph, rng *rand.Rand) []int {
	n := g.NumNodes()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := -1
		var bestW int64
		for _, a := range g.Adj(v) {
			if match[a.To] != -1 {
				continue
			}
			if a.W > bestW || (a.W == bestW && best != -1 && a.To < best) {
				best, bestW = a.To, a.W
			}
		}
		if best != -1 {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

// splitmix64 is the SplitMix64 finalizer, used to derive per-node
// tie-break priorities from the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// edgeKey is the seeded total order on edges: weight first, then a
// symmetric hash of the endpoint priorities, then the canonical id pair.
// Both endpoints of an edge compute the same key, so the globally maximal
// live edge is a mutual proposal every round (guaranteeing progress).
type edgeKey struct {
	w      int64
	h      uint64
	lo, hi int32
}

func makeEdgeKey(w int64, pv, pu uint64, v, u int) edgeKey {
	lo, hi := int32(v), int32(u)
	if lo > hi {
		lo, hi = hi, lo
	}
	return edgeKey{w: w, h: splitmix64(pv ^ pu), lo: lo, hi: hi}
}

func (k edgeKey) greater(o edgeKey) bool {
	if k.w != o.w {
		return k.w > o.w
	}
	if k.h != o.h {
		return k.h > o.h
	}
	if k.lo != o.lo {
		return k.lo < o.lo
	}
	return k.hi < o.hi
}

// HeavyEdgeMatchingPar computes a maximal heavy-edge matching with the
// sharded round-based algorithm. The result is a pure function of
// (g, seed): identical at any worker count, including workers == 1
// (the serial path, which runs the same rounds without goroutines).
func HeavyEdgeMatchingPar(g *graph.Graph, seed int64, workers int) []int {
	return heavyEdgeMatchingPar(g, seed, workers, nil)
}

// heavyEdgeMatchingPar is the gate-aware core: the gate is polled at
// round boundaries (a round is the natural grain — proposals snapshot the
// matching, so abandoning mid-round would be wasted, not wrong). A
// stopped gate returns nil; ctx-taking callers turn that into an error.
func heavyEdgeMatchingPar(g *graph.Graph, seed int64, workers int, gate *par.Gate) []int {
	n := g.NumNodes()
	// Matching rounds break even at ~2048 nodes per worker; below that the
	// governor keeps the rounds serial (same code, one shard).
	w := par.Workers(workers, n, 2048)

	pri := make([]uint64, n)
	for v := range pri {
		pri[v] = splitmix64(uint64(seed) + uint64(v)*0x9e3779b97f4a7c15)
	}
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	prop := make([]int32, n)

	propose := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			prop[v] = -1
			if match[v] != -1 {
				continue
			}
			best := int32(-1)
			var bestKey edgeKey
			for _, a := range g.Adj(v) {
				if match[a.To] != -1 {
					continue
				}
				k := makeEdgeKey(a.W, pri[v], pri[a.To], v, a.To)
				if best == -1 || k.greater(bestKey) {
					best, bestKey = int32(a.To), k
				}
			}
			prop[v] = best
		}
	}
	// resolve claims mutual proposals. Only the smaller endpoint writes,
	// so pairs (which are disjoint — each node has one proposal) never
	// race; the CAS guards the claim and the partner slot is stored
	// atomically for the concurrent readers in other shards.
	resolve := func(lo, hi int) int {
		claimed := 0
		for v := lo; v < hi; v++ {
			u := prop[v]
			if u < 0 || int(u) < v {
				continue
			}
			if atomic.LoadInt32(&match[v]) != -1 || prop[u] != int32(v) {
				continue
			}
			if atomic.CompareAndSwapInt32(&match[v], -1, u) {
				atomic.StoreInt32(&match[u], int32(v))
				claimed++
			}
		}
		return claimed
	}

	for {
		if gate.Stopped() {
			return nil
		}
		claimed := 0
		if w <= 1 {
			propose(0, n)
			claimed = resolve(0, n)
		} else {
			var wg sync.WaitGroup
			wg.Add(w)
			for p := 0; p < w; p++ {
				go func(p int) {
					defer wg.Done()
					lo := n * p / w
					hi := n * (p + 1) / w
					propose(lo, hi)
				}(p)
			}
			wg.Wait()
			counts := make([]int, w)
			wg.Add(w)
			for p := 0; p < w; p++ {
				go func(p int) {
					defer wg.Done()
					lo := n * p / w
					hi := n * (p + 1) / w
					counts[p] = resolve(lo, hi)
				}(p)
			}
			wg.Wait()
			for _, c := range counts {
				claimed += c
			}
		}
		if claimed == 0 {
			break
		}
	}

	out := make([]int, n)
	for v := range out {
		out[v] = int(match[v])
	}
	return out
}

// Contract merges matched node pairs into single nodes, producing the next
// coarser graph and the up-map (up[v] = v's node in the coarse graph).
// Merged node weights are summed; parallel edges are combined by summing;
// edges internal to a merged pair disappear. Counting, arc emission and
// the edge merge run on a GOMAXPROCS-sized pool; use ContractPar for an
// explicit worker count. Identical output at any worker count.
func Contract(g *graph.Graph, match []int) (*graph.Graph, []int) {
	return ContractPar(g, match, 0)
}

// ContractPar is Contract with an explicit worker count (<= 0 means
// GOMAXPROCS).
func ContractPar(g *graph.Graph, match []int, workers int) (*graph.Graph, []int) {
	coarse, up, _ := contractParCtx(nil, g, match, workers)
	return coarse, up
}

func contractParCtx(ctx context.Context, g *graph.Graph, match []int, workers int) (*graph.Graph, []int, error) {
	n := g.NumNodes()
	// Coarse ids are assigned in fine-node order: deterministic and
	// inherently serial, but O(n) and cheap next to the edge merge.
	up := make([]int, n)
	for i := range up {
		up[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if up[v] != -1 {
			continue
		}
		up[v] = next
		if m := match[v]; m != -1 {
			up[m] = next
		}
		next++
	}
	coarse, err := graph.ContractCtx(ctx, g, up, next, workers)
	if err != nil {
		return nil, nil, err
	}
	return coarse, up, nil
}

// Multilevel coarsens g0 into a multilevel graph set. Levels[0] is g0.
// For a fixed Options.Seed the set is identical at any Options.Workers.
func Multilevel(g0 *graph.Graph, opt Options) *graph.Set {
	set, _ := MultilevelCtx(nil, g0, opt)
	return set
}

// MultilevelCtx is Multilevel bounded by ctx: a cancel abandons the
// coarsening at the next matching round, contraction chunk, or level
// boundary and returns the context's cause. A nil ctx never cancels.
func MultilevelCtx(ctx context.Context, g0 *graph.Graph, opt Options) (*graph.Set, error) {
	gate := par.GateFor(ctx)
	if opt.MaxLevels <= 0 {
		opt.MaxLevels = 1
	}
	set := &graph.Set{Levels: []*graph.Graph{g0}}
	cur := g0
	for level := 1; level < opt.MaxLevels; level++ {
		if cur.NumNodes() <= opt.MinNodes {
			break
		}
		match := heavyEdgeMatchingPar(cur, opt.Seed+int64(level)*1_000_003, opt.Workers, gate)
		if match == nil {
			return nil, gate.Err()
		}
		coarse, up, err := contractParCtx(ctx, cur, match, opt.Workers)
		if err != nil {
			return nil, err
		}
		shrink := 1 - float64(coarse.NumNodes())/float64(cur.NumNodes())
		if shrink < opt.MinShrink {
			break
		}
		set.Levels = append(set.Levels, coarse)
		set.Up = append(set.Up, up)
		cur = coarse
	}
	return set, nil
}

// Clusters returns, for each node of the coarsest level reachable through
// the set, the list of level-0 nodes it represents.
func Clusters(set *graph.Set) [][]int {
	n0 := set.Levels[0].NumNodes()
	assign := make([]int, n0)
	for v := range assign {
		assign[v] = v
	}
	for _, up := range set.Up {
		for v := range assign {
			assign[v] = up[assign[v]]
		}
	}
	out := make([][]int, set.Coarsest().NumNodes())
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}

// ClustersAt returns the level-0 cluster of every node at the given level.
func ClustersAt(set *graph.Set, level int) [][]int {
	n0 := set.Levels[0].NumNodes()
	assign := make([]int, n0)
	for v := range assign {
		assign[v] = v
	}
	for i := 0; i < level; i++ {
		for v := range assign {
			assign[v] = set.Up[i][assign[v]]
		}
	}
	out := make([][]int, set.Levels[level].NumNodes())
	for v, c := range assign {
		out[c] = append(out[c], v)
	}
	return out
}
