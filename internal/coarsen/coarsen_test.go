package coarsen

import (
	"math/rand"
	"testing"

	"focus/internal/graph"
)

// pathGraph returns a path 0-1-2-…-n-1 with the given edge weights.
func pathGraph(weights []int64) *graph.Graph {
	b := graph.NewBuilder(len(weights) + 1)
	for i, w := range weights {
		_ = b.AddEdge(i, i+1, w)
	}
	return b.Build()
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n), int64(1+rng.Intn(100)))
	}
	return b.Build()
}

func checkMatching(t *testing.T, g *graph.Graph, match []int) {
	t.Helper()
	for v, m := range match {
		if m == -1 {
			continue
		}
		if m < 0 || m >= g.NumNodes() {
			t.Fatalf("match[%d] = %d out of range", v, m)
		}
		if match[m] != v {
			t.Fatalf("matching not symmetric: match[%d]=%d, match[%d]=%d", v, m, m, match[m])
		}
		if m == v {
			t.Fatalf("node %d matched to itself", v)
		}
		if g.EdgeWeight(v, m) == 0 {
			t.Fatalf("matched pair %d-%d not adjacent", v, m)
		}
	}
}

func TestHeavyEdgeMatchingValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed, 60, 200)
		match := HeavyEdgeMatching(g, rand.New(rand.NewSource(seed)))
		checkMatching(t, g, match)
	}
}

func TestHeavyEdgeMatchingPrefersHeavy(t *testing.T) {
	// Star: center 0 with edges to 1 (w=1), 2 (w=100), 3 (w=5).
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 100)
	_ = b.AddEdge(0, 3, 5)
	g := b.Build()
	// When the center (0) or the heavy leaf (2) is visited first — about
	// half of random orders — the heavy edge 0-2 must be chosen. When a
	// light leaf is visited first it claims the center; 2 must then stay
	// unmatched (0 is its only neighbour).
	matched02 := 0
	for seed := int64(0); seed < 20; seed++ {
		match := HeavyEdgeMatching(g, rand.New(rand.NewSource(seed)))
		checkMatching(t, g, match)
		if match[0] == 2 {
			matched02++
		} else if match[2] != -1 {
			t.Fatalf("seed %d: node 2 matched to %d", seed, match[2])
		}
	}
	if matched02 < 5 {
		t.Errorf("0-2 matched only %d/20 times, expected about half", matched02)
	}
}

func TestContractPath(t *testing.T) {
	g := pathGraph([]int64{10, 1, 10, 1, 10}) // 6 nodes
	// Force matching 0-1, 2-3, 4-5 (the heavy edges).
	match := []int{1, 0, 3, 2, 5, 4}
	coarse, up := Contract(g, match)
	if coarse.NumNodes() != 3 {
		t.Fatalf("coarse nodes = %d", coarse.NumNodes())
	}
	// Weights: every merged node = 2.
	for v := 0; v < 3; v++ {
		if coarse.NodeWeight(v) != 2 {
			t.Errorf("node %d weight = %d", v, coarse.NodeWeight(v))
		}
	}
	// Surviving edges are the two light ones.
	if coarse.NumEdges() != 2 || coarse.TotalEdgeWeight() != 2 {
		t.Errorf("edges=%d weight=%d", coarse.NumEdges(), coarse.TotalEdgeWeight())
	}
	for v, p := range up {
		if p != v/2 {
			t.Errorf("up[%d] = %d", v, p)
		}
	}
}

func TestContractSumsParallelEdges(t *testing.T) {
	// Square 0-1-2-3-0; match 0-1 and 2-3; the two cross edges (1-2, 3-0)
	// become parallel and must merge with summed weight.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 9)
	_ = b.AddEdge(1, 2, 3)
	_ = b.AddEdge(2, 3, 9)
	_ = b.AddEdge(3, 0, 4)
	g := b.Build()
	coarse, _ := Contract(g, []int{1, 0, 3, 2})
	if coarse.NumNodes() != 2 || coarse.NumEdges() != 1 {
		t.Fatalf("coarse: %d nodes %d edges", coarse.NumNodes(), coarse.NumEdges())
	}
	if coarse.EdgeWeight(0, 1) != 7 {
		t.Errorf("merged weight = %d, want 7", coarse.EdgeWeight(0, 1))
	}
}

func TestContractPreservesTotals(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(seed+100, 80, 300)
		rng := rand.New(rand.NewSource(seed))
		match := HeavyEdgeMatching(g, rng)
		coarse, up := Contract(g, match)
		if coarse.TotalNodeWeight() != g.TotalNodeWeight() {
			t.Fatalf("node weight changed: %d -> %d", g.TotalNodeWeight(), coarse.TotalNodeWeight())
		}
		// Edge weight decreases exactly by the weight of matched edges.
		var matchedW int64
		for v, m := range match {
			if m > v {
				matchedW += g.EdgeWeight(v, m)
			}
		}
		if coarse.TotalEdgeWeight() != g.TotalEdgeWeight()-matchedW {
			t.Fatalf("edge weight %d, want %d", coarse.TotalEdgeWeight(), g.TotalEdgeWeight()-matchedW)
		}
		for v, p := range up {
			if p < 0 || p >= coarse.NumNodes() {
				t.Fatalf("up[%d] = %d", v, p)
			}
		}
	}
}

func TestMultilevelStructure(t *testing.T) {
	g := randomGraph(7, 500, 3000)
	set := Multilevel(g, DefaultOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(set.Levels) < 3 {
		t.Fatalf("only %d levels", len(set.Levels))
	}
	for i := 1; i < len(set.Levels); i++ {
		if set.Levels[i].NumNodes() >= set.Levels[i-1].NumNodes() {
			t.Errorf("level %d did not shrink: %d >= %d", i, set.Levels[i].NumNodes(), set.Levels[i-1].NumNodes())
		}
		if set.Levels[i].TotalNodeWeight() != g.TotalNodeWeight() {
			t.Errorf("level %d node weight %d", i, set.Levels[i].TotalNodeWeight())
		}
	}
	if len(set.Levels) > 10 {
		t.Errorf("MaxLevels exceeded: %d", len(set.Levels))
	}
}

func TestMultilevelStopsAtMinNodes(t *testing.T) {
	g := randomGraph(8, 200, 800)
	opt := DefaultOptions()
	opt.MinNodes = 100
	opt.MaxLevels = 50
	set := Multilevel(g, opt)
	// The last level may dip below MinNodes, but the one before must not.
	if len(set.Levels) >= 2 {
		prev := set.Levels[len(set.Levels)-2]
		if prev.NumNodes() <= opt.MinNodes {
			t.Errorf("coarsened past MinNodes: %d", prev.NumNodes())
		}
	}
}

func TestMultilevelSingleLevelForTinyGraph(t *testing.T) {
	g := pathGraph([]int64{1})
	set := Multilevel(g, DefaultOptions())
	if len(set.Levels) != 1 {
		t.Errorf("levels = %d, want 1", len(set.Levels))
	}
}

func TestClusters(t *testing.T) {
	g := randomGraph(9, 120, 500)
	set := Multilevel(g, DefaultOptions())
	clusters := Clusters(set)
	if len(clusters) != set.Coarsest().NumNodes() {
		t.Fatalf("%d clusters for %d coarse nodes", len(clusters), set.Coarsest().NumNodes())
	}
	seen := make([]bool, g.NumNodes())
	for c, members := range clusters {
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		var w int64
		for _, v := range members {
			if seen[v] {
				t.Fatalf("node %d in two clusters", v)
			}
			seen[v] = true
			w += g.NodeWeight(v)
		}
		if w != set.Coarsest().NodeWeight(c) {
			t.Errorf("cluster %d weight %d != coarse node weight %d", c, w, set.Coarsest().NodeWeight(c))
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("node %d in no cluster", v)
		}
	}
}

func TestClustersAt(t *testing.T) {
	g := randomGraph(10, 100, 400)
	set := Multilevel(g, DefaultOptions())
	for level := 0; level < len(set.Levels); level++ {
		clusters := ClustersAt(set, level)
		if len(clusters) != set.Levels[level].NumNodes() {
			t.Fatalf("level %d: %d clusters", level, len(clusters))
		}
		total := 0
		for _, m := range clusters {
			total += len(m)
		}
		if total != g.NumNodes() {
			t.Fatalf("level %d: clusters cover %d nodes", level, total)
		}
	}
	// Level 0 clusters are singletons.
	for v, m := range ClustersAt(set, 0) {
		if len(m) != 1 || m[0] != v {
			t.Fatalf("level-0 cluster %d = %v", v, m)
		}
	}
}
