// Package testutil holds tiny hand-rolled test helpers shared by the
// concurrency suites. Its main export is NoLeaks, a goroutine-leak
// checker in the spirit of goleak but without the dependency: it
// snapshots all goroutine stacks, filters the runtime's and the test
// harness's own goroutines, and fails the test if anything else is still
// alive after a settle window.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleWindow bounds how long NoLeaks waits for in-flight goroutines to
// drain before declaring a leak. It must exceed the longest bounded hang
// the chaos transport injects (HangFor is 2s in the chaos suites): a
// goroutine parked in a chaos-induced write is released by conn close or
// hang expiry, whichever comes first, and is then not a leak.
const settleWindow = 5 * time.Second

// ignoredStacks are substrings of goroutine stack traces that mark
// always-running goroutines outside the code under test: the testing
// harness, runtime service goroutines, and the process-wide signal
// handler. Everything else alive at NoLeaks time is a leak — including
// stdlib goroutines like net/rpc client readers, which our code is
// responsible for shutting down.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.(*F).Fuzz(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit0(",
	"runtime.MHeap_Scavenger(",
	"runtime.ensureSigM(",
	"os/signal.signal_recv(",
	"os/signal.loop(",
	"runtime.ReadTrace(",
	"signal.Notify",
	"runtime/trace.Start",
	"created by runtime.gc",
	"created by runtime/trace",
	"focus/internal/testutil.stacks(", // this checker's own goroutine
}

// NoLeaks fails t if goroutines created during the test are still
// running once the test body finishes. Use it as the FIRST deferred call
// so it runs LAST, after the deferred pool/server Close calls:
//
//	defer testutil.NoLeaks(t)
//	pool := ...
//	defer pool.Close()
//
// Goroutines that are merely slow to unwind get settleWindow to drain;
// whatever survives it is reported with its full stack.
func NoLeaks(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(settleWindow)
	var leaked []string
	for {
		leaked = interestingStacks()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("testutil: %d leaked goroutine(s) after %v settle:\n\n%s",
		len(leaked), settleWindow, strings.Join(leaked, "\n\n"))
}

// interestingStacks returns the stack of every live goroutine not on the
// ignore list. The first stanza (the calling goroutine) is dropped.
func interestingStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	stanzas := strings.Split(string(buf), "\n\n")
	var out []string
	for i, s := range stanzas {
		if i == 0 { // the goroutine running NoLeaks itself
			continue
		}
		if s == "" || ignored(s) {
			continue
		}
		out = append(out, strings.TrimSpace(s))
	}
	return out
}

func ignored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}
