// Package debruijn implements a Velvet-style de Bruijn graph assembler
// (Zerbino & Birney, the paper's reference [16]). It is the baseline the
// paper positions Focus against: the dominant parallel assemblers (AbySS,
// Ray, PASHA, SWAP) are all distributed de Bruijn designs, while Focus is
// an overlap-graph design. The comparison benches use this package to
// contrast the two models on the same simulated read sets.
//
// The construction is the standard one: reads are decomposed into k-mers,
// low-multiplicity k-mers are dropped (error filtering), unitigs are
// extracted by unique-extension walking, short dead-end unitigs (tips)
// are clipped, and simple bubbles are popped by coverage.
package debruijn

import (
	"fmt"
	"sort"

	"focus/internal/dna"
)

// Config controls the assembler.
type Config struct {
	K            int // k-mer size (<= 31 so a k+1 extension still packs)
	MinKmerCount int // k-mers seen fewer times are treated as errors
	MinContigLen int // contigs shorter than this are dropped
	// TipFactor: a dead-end unitig shorter than TipFactor*K that carries
	// less coverage than its alternative is clipped (Velvet uses 2k).
	TipFactor int
}

// DefaultConfig returns parameters tuned for 100 bp reads at >= 8x
// coverage.
func DefaultConfig() Config {
	return Config{K: 25, MinKmerCount: 2, MinContigLen: 100, TipFactor: 2}
}

// Graph is the k-mer multiplicity table plus the derived unitig state.
type Graph struct {
	cfg    Config
	counts map[dna.Kmer]int32
	mask   uint64
}

// Build counts k-mers across all reads and applies the multiplicity
// filter. Reads are used as-is: Focus preprocessing already added reverse
// complements, so both strands are represented.
func Build(reads []dna.Read, cfg Config) (*Graph, error) {
	if cfg.K <= 0 || cfg.K > 31 {
		return nil, fmt.Errorf("debruijn: k=%d out of range [1,31]", cfg.K)
	}
	if cfg.MinKmerCount < 1 {
		cfg.MinKmerCount = 1
	}
	g := &Graph{cfg: cfg, counts: make(map[dna.Kmer]int32)}
	if cfg.K == 32 {
		g.mask = ^uint64(0)
	} else {
		g.mask = (1 << (2 * uint(cfg.K))) - 1
	}
	for _, r := range reads {
		it := dna.NewKmerIter(r.Seq, cfg.K)
		for {
			km, _, ok := it.Next()
			if !ok {
				break
			}
			g.counts[km]++
		}
	}
	for km, c := range g.counts {
		if int(c) < cfg.MinKmerCount {
			delete(g.counts, km)
		}
	}
	return g, nil
}

// NumKmers returns the number of surviving k-mers.
func (g *Graph) NumKmers() int { return len(g.counts) }

// Coverage returns the multiplicity of a k-mer (0 if filtered/absent).
func (g *Graph) Coverage(km dna.Kmer) int { return int(g.counts[km]) }

// successors returns the up-to-4 k-mers reachable by shifting in one base.
func (g *Graph) successors(km dna.Kmer, buf []dna.Kmer) []dna.Kmer {
	buf = buf[:0]
	base := (uint64(km) << 2) & g.mask
	for c := uint64(0); c < 4; c++ {
		n := dna.Kmer(base | c)
		if g.counts[n] > 0 {
			buf = append(buf, n)
		}
	}
	return buf
}

// predecessors returns the up-to-4 k-mers that shift into km.
func (g *Graph) predecessors(km dna.Kmer, buf []dna.Kmer) []dna.Kmer {
	buf = buf[:0]
	base := uint64(km) >> 2
	shift := 2 * uint(g.cfg.K-1)
	for c := uint64(0); c < 4; c++ {
		p := dna.Kmer(base | c<<shift)
		if g.counts[p] > 0 {
			buf = append(buf, p)
		}
	}
	return buf
}

// Unitig is a maximal unbranched k-mer path.
type Unitig struct {
	Seq      []byte
	Kmers    int
	Coverage float64 // mean k-mer multiplicity
}

// Unitigs extracts all maximal unbranched paths. Each surviving k-mer
// belongs to exactly one unitig.
func (g *Graph) Unitigs() []Unitig {
	visited := make(map[dna.Kmer]bool, len(g.counts))
	var sbuf, pbuf []dna.Kmer
	// Deterministic iteration: sort the k-mers.
	order := make([]dna.Kmer, 0, len(g.counts))
	for km := range g.counts {
		order = append(order, km)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// unique reports whether the edge a->b is the only out of a and the
	// only into b.
	unique := func(a, b dna.Kmer) bool {
		return len(g.successors(a, sbuf)) == 1 && len(g.predecessors(b, pbuf)) == 1
	}

	var unitigs []Unitig
	for _, start := range order {
		if visited[start] {
			continue
		}
		// Walk left to the unitig start.
		cur := start
		for {
			preds := g.predecessors(cur, pbuf)
			if len(preds) != 1 {
				break
			}
			p0 := preds[0]
			if visited[p0] || p0 == start || !unique(p0, cur) {
				break
			}
			cur = p0
		}
		// Walk right collecting the path.
		path := []dna.Kmer{cur}
		visited[cur] = true
		for {
			succs := g.successors(path[len(path)-1], sbuf)
			if len(succs) != 1 {
				break
			}
			nxt := succs[0]
			if visited[nxt] || !unique(path[len(path)-1], nxt) {
				break
			}
			path = append(path, nxt)
			visited[nxt] = true
		}
		unitigs = append(unitigs, g.render(path))
	}
	return unitigs
}

// render converts a k-mer path to sequence + coverage.
func (g *Graph) render(path []dna.Kmer) Unitig {
	seq := []byte(path[0].String(g.cfg.K))
	var cov float64
	for i, km := range path {
		cov += float64(g.counts[km])
		if i > 0 {
			seq = append(seq, dna.CodeBase(byte(uint64(km)&3)))
		}
	}
	return Unitig{Seq: seq, Kmers: len(path), Coverage: cov / float64(len(path))}
}

// ClipTips removes dead-end chains shorter than TipFactor*K that merge
// into a junction whose alternative branch has more coverage. Returns the
// number of k-mers removed. Call repeatedly (or use Assemble) until 0.
func (g *Graph) ClipTips() int {
	var sbuf, pbuf []dna.Kmer
	maxLen := g.cfg.TipFactor * g.cfg.K
	if maxLen <= 0 {
		maxLen = 2 * g.cfg.K
	}
	removed := 0
	// Collect source k-mers (no predecessors) and sink k-mers.
	var tips [][]dna.Kmer
	for km := range g.counts {
		if len(g.predecessors(km, pbuf)) == 0 {
			if chain, ok := g.tipChain(km, true, maxLen); ok {
				tips = append(tips, chain)
			}
		} else if len(g.successors(km, sbuf)) == 0 {
			if chain, ok := g.tipChain(km, false, maxLen); ok {
				tips = append(tips, chain)
			}
		}
	}
	for _, chain := range tips {
		for _, km := range chain {
			if g.counts[km] > 0 {
				delete(g.counts, km)
				removed++
			}
		}
	}
	return removed
}

// tipChain walks from a dead end toward the graph and reports the chain
// if it is short and attaches to a junction with a stronger alternative.
func (g *Graph) tipChain(start dna.Kmer, fwd bool, maxLen int) ([]dna.Kmer, bool) {
	var nbuf, bbuf []dna.Kmer
	chain := []dna.Kmer{start}
	cur := start
	for len(chain) <= maxLen {
		var next []dna.Kmer
		if fwd {
			next = g.successors(cur, nbuf)
		} else {
			next = g.predecessors(cur, nbuf)
		}
		if len(next) != 1 {
			return nil, false // branches or double dead end: not a tip
		}
		nb := next[0]
		var back []dna.Kmer
		if fwd {
			back = g.predecessors(nb, bbuf)
		} else {
			back = g.successors(nb, bbuf)
		}
		if len(back) > 1 {
			// Junction reached: tip if an alternative branch is stronger.
			var chainCov, bestAlt int32
			for _, km := range chain {
				chainCov += g.counts[km]
			}
			chainMean := chainCov / int32(len(chain))
			for _, alt := range back {
				if alt != cur && g.counts[alt] > bestAlt {
					bestAlt = g.counts[alt]
				}
			}
			if bestAlt > chainMean {
				return chain, true
			}
			return nil, false
		}
		chain = append(chain, nb)
		cur = nb
	}
	return nil, false
}

// Assemble runs the full baseline: build, iterated tip clipping, unitig
// extraction, and length filtering.
func Assemble(reads []dna.Read, cfg Config) ([][]byte, error) {
	g, err := Build(reads, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if g.ClipTips() == 0 {
			break
		}
	}
	var contigs [][]byte
	for _, u := range g.Unitigs() {
		if len(u.Seq) >= cfg.MinContigLen {
			contigs = append(contigs, u.Seq)
		}
	}
	return contigs, nil
}
