package debruijn

import (
	"bytes"
	"math/rand"
	"testing"

	"focus/internal/assembly"
	"focus/internal/dna"
	"focus/internal/simulate"
)

func randGenome(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = "ACGT"[rng.Intn(4)]
	}
	return g
}

func tilingReads(genome []byte, l, s int) []dna.Read {
	var reads []dna.Read
	for pos := 0; pos+l <= len(genome); pos += s {
		reads = append(reads, dna.Read{ID: "t", Seq: append([]byte(nil), genome[pos:pos+l]...)})
	}
	return reads
}

func TestBuildCountsKmers(t *testing.T) {
	reads := []dna.Read{{ID: "a", Seq: []byte("ACGTACGTAC")}}
	g, err := Build(reads, Config{K: 4, MinKmerCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 7 windows but k-mers repeat: ACGT x2, CGTA x2, GTAC x2, TACG x1.
	if g.NumKmers() != 4 {
		t.Errorf("NumKmers = %d, want 4", g.NumKmers())
	}
	km, _ := dna.PackKmer([]byte("ACGT"), 4)
	if g.Coverage(km) != 2 {
		t.Errorf("Coverage(ACGT) = %d, want 2", g.Coverage(km))
	}
}

func TestBuildFiltersLowCoverage(t *testing.T) {
	reads := []dna.Read{
		{ID: "a", Seq: []byte("ACGTACGT")},
		{ID: "b", Seq: []byte("ACGTACGT")},
		{ID: "err", Seq: []byte("TTTTGGGG")},
	}
	g, err := Build(reads, Config{K: 5, MinKmerCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	km, _ := dna.PackKmer([]byte("TTTTG"), 5)
	if g.Coverage(km) != 0 {
		t.Error("singleton k-mer survived filtering")
	}
	km, _ = dna.PackKmer([]byte("ACGTA"), 5)
	if g.Coverage(km) == 0 {
		t.Error("well-covered k-mer filtered")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Build(nil, Config{K: 32}); err == nil {
		t.Error("k=32 accepted")
	}
}

func TestUnitigsReconstructCleanGenome(t *testing.T) {
	genome := randGenome(90, 3000)
	reads := tilingReads(genome, 100, 10)
	g, err := Build(reads, Config{K: 25, MinKmerCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	unitigs := g.Unitigs()
	// A random 3 kb genome has essentially no repeated 25-mers: one
	// unitig spanning the whole genome is expected.
	if len(unitigs) != 1 {
		t.Fatalf("got %d unitigs, want 1", len(unitigs))
	}
	if !bytes.Equal(unitigs[0].Seq, genome) {
		t.Errorf("unitig (%d bp) != genome (%d bp)", len(unitigs[0].Seq), len(genome))
	}
	if unitigs[0].Coverage < 2 {
		t.Errorf("coverage = %v", unitigs[0].Coverage)
	}
}

func TestUnitigsCoverEveryKmerOnce(t *testing.T) {
	genome := randGenome(91, 2000)
	// Insert a repeat to force branching.
	copy(genome[1500:], genome[200:400])
	reads := tilingReads(genome, 100, 15)
	g, err := Build(reads, Config{K: 21, MinKmerCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, u := range g.Unitigs() {
		total += u.Kmers
	}
	if total != g.NumKmers() {
		t.Errorf("unitigs cover %d k-mers, graph has %d", total, g.NumKmers())
	}
}

func TestClipTipsRemovesErrorBranch(t *testing.T) {
	genome := randGenome(92, 1500)
	reads := tilingReads(genome, 100, 10)
	// One erroneous read creating a tip: copy of a genome read with the
	// last base flipped.
	bad := append([]byte(nil), genome[500:600]...)
	if bad[99] == 'A' {
		bad[99] = 'C'
	} else {
		bad[99] = 'A'
	}
	reads = append(reads, dna.Read{ID: "bad", Seq: bad})
	g, err := Build(reads, Config{K: 21, MinKmerCount: 1, TipFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumKmers()
	removed := 0
	for i := 0; i < 8; i++ {
		n := g.ClipTips()
		removed += n
		if n == 0 {
			break
		}
	}
	if removed == 0 {
		t.Fatal("no tips clipped")
	}
	if g.NumKmers() != before-removed {
		t.Errorf("kmer accounting: %d -> %d after removing %d", before, g.NumKmers(), removed)
	}
	// After clipping, the genome assembles into one unitig again.
	unitigs := g.Unitigs()
	longest := 0
	for _, u := range unitigs {
		if len(u.Seq) > longest {
			longest = len(u.Seq)
		}
	}
	if longest != len(genome) {
		t.Errorf("longest unitig %d, want %d", longest, len(genome))
	}
}

func TestAssembleEndToEnd(t *testing.T) {
	com, err := simulate.BuildCommunity(simulate.SingleGenome("db", 8000, 93))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simulate.SimulateReads(com, simulate.ReadConfig{
		ReadLen: 100, Coverage: 15, ErrorRate5: 0.001, ErrorRate3: 0.005, Seed: 94,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Add reverse complements as the Focus pipeline does.
	reads := append([]dna.Read(nil), rs.Reads...)
	for _, r := range rs.Reads {
		reads = append(reads, dna.Read{ID: r.ID + "~rc", Seq: dna.ReverseComplement(r.Seq)})
	}
	contigs, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := assembly.ComputeStats(contigs)
	if st.NumContigs == 0 {
		t.Fatal("no contigs")
	}
	if st.MaxContig < 2000 {
		t.Errorf("max contig %d for an 8 kb genome at 15x", st.MaxContig)
	}
	// Long contigs must match the genome on one strand.
	genome := com.Genomes[0].Seq
	rc := dna.ReverseComplement(genome)
	for _, c := range contigs {
		if len(c) < 500 {
			continue
		}
		hits, samples := 0, 0
		for at := 0; at+40 <= len(c); at += 40 {
			samples++
			if bytes.Contains(genome, c[at:at+40]) || bytes.Contains(rc, c[at:at+40]) {
				hits++
			}
		}
		if hits*10 < samples*8 {
			t.Errorf("contig %d bp matches genome in %d/%d samples", len(c), hits, samples)
		}
	}
}

func TestAssembleDeterministic(t *testing.T) {
	genome := randGenome(95, 2000)
	reads := tilingReads(genome, 100, 20)
	a, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(reads, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d contigs", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("contig %d differs across runs", i)
		}
	}
}
