package dist

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"focus/internal/testutil"
)

// BlockService wedges Echo while *blocked == 1, simulating a stuck worker
// at the service layer (the chaos transport simulates it below the codec).
type BlockService struct {
	blocked *int32
}

func (b *BlockService) Echo(args *EchoArgs, reply *EchoReply) error {
	for atomic.LoadInt32(b.blocked) == 1 {
		time.Sleep(5 * time.Millisecond)
	}
	reply.X = args.X * 2
	reply.S = args.S + args.S
	return nil
}

// FailService always returns an application-level error.
type FailService struct{}

func (FailService) Echo(args *EchoArgs, reply *EchoReply) error {
	return errors.New("application failure")
}

func TestCallTimeoutEvicts(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	p, err := NewLocalPoolOpts(1, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{CallTimeout: 100 * time.Millisecond, MaxFailures: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	start := time.Now()
	err = p.Call(0, "Echo", &EchoArgs{X: 1}, &reply)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("timed-out call took %v", el)
	}
	if n := p.NumHealthy(); n != 0 {
		t.Fatalf("NumHealthy = %d after eviction, want 0", n)
	}
	// The evicted worker's slot answers ErrWorkerDown, not a hang.
	if err := p.Call(0, "Echo", &EchoArgs{X: 1}, &reply); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("want ErrWorkerDown on evicted worker, got %v", err)
	}
	atomic.StoreInt32(&blocked, 0)
}

func TestWorkerReconnectsAfterOutage(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	p, err := NewLocalPoolOpts(1, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{
			CallTimeout:   100 * time.Millisecond,
			MaxFailures:   3,
			ReconnectMin:  10 * time.Millisecond,
			ReconnectMax:  50 * time.Millisecond,
			MaxReconnects: 20,
			Logf:          t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 1}, &reply); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %v", err)
	}
	// End the outage: the background reconnect loop should reinstate the
	// worker (fresh service instance, verified by Ping).
	atomic.StoreInt32(&blocked, 0)
	deadline := time.Now().Add(3 * time.Second)
	for p.NumHealthy() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := p.NumHealthy(); n != 1 {
		t.Fatalf("worker not reinstated: NumHealthy = %d", n)
	}
	if err := p.Call(0, "Echo", &EchoArgs{X: 21, S: "a"}, &reply); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
	if reply.X != 42 {
		t.Fatalf("reply after reconnect: %+v", reply)
	}
}

// TestParallelCallsReschedulesAroundHungWorker is the dist-level
// rescheduling proof: with one of two workers wedged, every task still
// completes (through the survivor) and the result is correct. The old
// static t%Size assignment hung half the tasks forever here.
func TestParallelCallsReschedulesAroundHungWorker(t *testing.T) {
	defer testutil.NoLeaks(t)
	hang := ChaosConfig{Seed: 11, HangProb: 1, HangFor: 2 * time.Second}
	p, err := NewLocalChaosPool(2, func() interface{} { return &EchoService{} },
		Options{CallTimeout: 150 * time.Millisecond, MaxFailures: 1, Logf: t.Logf},
		func(w int) *ChaosConfig {
			if w == 0 {
				return &hang
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const tasks = 6
	replies := make([]interface{}, tasks)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	times, err := p.ParallelCalls(tasks, "Echo", func(tk int) interface{} {
		return &EchoArgs{X: tk, S: "x"}
	}, replies)
	if err != nil {
		t.Fatalf("parallel calls with one hung worker: %v", err)
	}
	if len(times) != tasks {
		t.Fatalf("got %d task times", len(times))
	}
	for i := range replies {
		if r := replies[i].(*EchoReply); r.X != 2*i {
			t.Errorf("task %d: X = %d, want %d", i, r.X, 2*i)
		}
	}
	if n := p.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d, want 1", n)
	}
}

func TestApplicationErrorsDoNotEvict(t *testing.T) {
	p, err := NewLocalPool(2, func() interface{} { return FailService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	replies := make([]interface{}, 4)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	// Even with a generous retry budget every attempt fails at the
	// application level; the error propagates and no worker is evicted —
	// a worker that answers, even with an error, is alive.
	_, err = p.ParallelCallsRetry(4, "Echo", func(tk int) interface{} { return &EchoArgs{} }, replies, 5)
	if err == nil {
		t.Fatal("application failure not propagated")
	}
	if IsTransportError(err) {
		t.Fatalf("application error classified as transport error: %v", err)
	}
	if n := p.NumHealthy(); n != 2 {
		t.Fatalf("NumHealthy = %d after application errors, want 2", n)
	}
}

// IDService reports which worker instance served a call.
type IDService struct{ id int }

func (s *IDService) Who(args *EchoArgs, reply *EchoReply) error {
	reply.X = s.id
	return nil
}

func TestParallelCallsPinnedAssignment(t *testing.T) {
	var n int32
	p, err := NewLocalPool(3, func() interface{} {
		return &IDService{id: int(atomic.AddInt32(&n, 1)) - 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const tasks = 7
	replies := make([]interface{}, tasks)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	if _, err := p.ParallelCallsPinned(tasks, "Who", func(tk int) interface{} { return &EchoArgs{} }, replies); err != nil {
		t.Fatal(err)
	}
	for i := range replies {
		if got := replies[i].(*EchoReply).X; got != i%3 {
			t.Errorf("task %d served by worker %d, want %d (pinned t%%Size)", i, got, i%3)
		}
	}
}

// resetIndex returns the 1-based write on which a chaos connection with
// the given seed injects its reset (0 = none within 100 writes).
func resetIndex(t *testing.T, seed int64) int {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	cc := WrapChaos(c1, ChaosConfig{Seed: seed, ResetProb: 0.3})
	defer cc.Close()
	for i := 1; i <= 100; i++ {
		if _, err := cc.Write([]byte("0123456789")); err != nil {
			return i
		}
	}
	return 0
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	a := resetIndex(t, 42)
	b := resetIndex(t, 42)
	if a != b {
		t.Fatalf("same seed, different fault pattern: reset at write %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no reset injected in 100 writes at ResetProb 0.3")
	}
}

// SlowService delays Echo long enough for Shutdown to observe it in flight.
type SlowService struct{}

func (SlowService) Echo(args *EchoArgs, reply *EchoReply) error {
	time.Sleep(300 * time.Millisecond)
	reply.X = args.X * 2
	return nil
}

func TestServerGracefulShutdownDrains(t *testing.T) {
	srv, err := NewServer(SlowService{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	p, err := DialPool([]string{lis.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	call := p.Go(0, "Echo", &EchoArgs{X: 5}, &reply)
	// Wait until the server has read the request.
	deadline := time.Now().Add(2 * time.Second)
	for srv.ActiveCalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.ActiveCalls() == 0 {
		t.Fatal("call never became active on the server")
	}
	srv.Shutdown(2 * time.Second)
	// The in-flight call drained to completion before connections closed.
	<-call.Done
	if call.Error != nil {
		t.Fatalf("in-flight call killed by graceful shutdown: %v", call.Error)
	}
	if reply.X != 10 {
		t.Fatalf("reply after drain: %+v", reply)
	}
	if err := <-served; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, err := DialPool([]string{lis.Addr().String()}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestHealthCheck(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// EchoService has no Ping method: the resulting ServerError still
	// proves the worker answers, which is what liveness means here.
	go func() { _ = Serve(lis, &EchoService{}) }()
	if err := HealthCheck(lis.Addr().String(), time.Second); err != nil {
		t.Fatalf("healthcheck against live worker: %v", err)
	}

	// A listener that accepts but never serves must time out, not hang.
	mute, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	go func() {
		for {
			if _, err := mute.Accept(); err != nil {
				return
			}
		}
	}()
	if err := HealthCheck(mute.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("healthcheck against mute worker succeeded")
	}

	// Dead address: connection refused.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if err := HealthCheck(addr, time.Second); err == nil {
		t.Fatal("healthcheck against dead address succeeded")
	}
}
