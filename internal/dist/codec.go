package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the binary wire protocol of the pool: a framed
// rpc.ClientCodec / rpc.ServerCodec pair that replaces net/rpc's
// reflective gob codec on the master↔worker hot path. Payload types that
// implement Wire (the assembly subgraph/phase/delta types, the overlap
// AlignPair types) are serialized by their hand-written encoders into a
// pooled staging buffer — no per-call encoder state, no reflection, zero
// steady-state allocations in the codec itself; every other type rides a
// self-contained per-message gob fallback, so Ping, Unload and any future
// method keep working unchanged.
//
// Frame layout (both directions, after the handshake):
//
//	uint32 LE  payload length
//	payload:
//	  request:  uvarint seq · string method · flag · body
//	  response: uvarint seq · string method · string error · flag · body
//	flag: 0 = no body · 1 = Wire body · 2 = gob body
//
// Handshake: the client opens with the 8-byte magic "FWB1?rpc"; a
// wire-aware server consumes it and answers "FWB1!rpc", after which both
// sides speak frames. The server sniffs the first 8 bytes of every
// accepted connection, so one listener serves binary and gob clients
// simultaneously (Peek — nothing is consumed on the gob path). A client
// in CodecAuto mode that gets no ack within the handshake timeout (an old
// gob-only worker blocks on the magic: it reads it as a gob length
// prefix) closes the attempt and redials with the gob codec; the
// downgrade is remembered per worker so reconnects skip the probe.
const (
	wireMagicReq = "FWB1?rpc"
	wireMagicAck = "FWB1!rpc"
)

// maxWireFrame bounds a frame payload (defense against corrupt length
// prefixes, not a protocol limit).
const maxWireFrame = 1 << 30

const (
	flagNoBody byte = iota
	flagWire
	flagGob
)

// wireBufPool recycles codec staging/frame buffers across connections
// (reconnect churn, short-lived benchmark pools).
var wireBufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

func getWireBuf() []byte  { return (*wireBufPool.Get().(*[]byte))[:0] }
func putWireBuf(b []byte) { wireBufPool.Put(&b) }

// appendBody appends the flag byte and encoded body.
func appendBody(dst []byte, body interface{}) ([]byte, error) {
	if body == nil {
		return append(dst, flagNoBody), nil
	}
	if w, ok := body.(Wire); ok {
		return w.AppendTo(append(dst, flagWire)), nil
	}
	return appendGobBody(append(dst, flagGob), body)
}

// appendGobBody is the cold fallback, kept out of appendBody so taking
// &dst for the encoder does not make the hot path's buffer escape.
func appendGobBody(dst []byte, body interface{}) ([]byte, error) {
	sw := sliceWriter{&dst}
	if err := gob.NewEncoder(sw).Encode(body); err != nil {
		return dst, err
	}
	return dst, nil
}

// decodeBody decodes a body encoded by appendBody into body (a pointer),
// or discards it when body is nil.
func decodeBody(flag byte, src []byte, body interface{}) error {
	if body == nil {
		return nil
	}
	switch flag {
	case flagNoBody:
		return nil
	case flagWire:
		w, ok := body.(Wire)
		if !ok {
			return fmt.Errorf("dist: wire body for %T, which does not implement Wire", body)
		}
		return w.DecodeFrom(src)
	case flagGob:
		return gob.NewDecoder(bytes.NewReader(src)).Decode(body)
	}
	return fmt.Errorf("dist: unknown body flag %d", flag)
}

// sliceWriter lets a fresh gob encoder append straight into the staging
// buffer (fallback path only).
type sliceWriter struct{ b *[]byte }

func (w sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// readFrame reads one length-prefixed frame into buf (grown as needed)
// and returns the payload view.
func readFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:4] // header scratch inside the pooled buffer: no escape, no alloc
	if _, err := io.ReadFull(r, hdr); err != nil {
		return buf, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxWireFrame {
		return buf, nil, fmt.Errorf("dist: wire frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, nil, err
	}
	return buf, buf, nil
}

// intern returns a canonical string for b, avoiding a per-call string
// allocation for the small recurring method-name set.
func intern(m map[string]string, b []byte) string {
	if s, ok := m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(m) < 1024 { // defensive bound; the method set is tiny
		m[s] = s
	}
	return s
}

// wireClientCodec implements rpc.ClientCodec over frames. net/rpc
// serializes WriteRequest calls (client.sending) and reads from a single
// input goroutine, so the unsynchronized buffers are single-owner.
type wireClientCodec struct {
	conn    net.Conn
	br      *bufio.Reader
	wbuf    []byte
	rbuf    []byte
	body    []byte // pending response body (view into rbuf)
	flag    byte
	methods map[string]string

	closeOnce sync.Once
	closeErr  error
}

// newWireClientCodec performs the client half of the wire handshake on
// conn within timeout and returns the framed codec. On error the conn is
// left in an undefined protocol state — the caller must close it (and
// redial for a gob fallback).
func newWireClientCodec(conn net.Conn, bufSize int, timeout time.Duration) (rpc.ClientCodec, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := io.WriteString(conn, wireMagicReq); err != nil {
		return nil, fmt.Errorf("dist: wire handshake write: %w", err)
	}
	var ack [len(wireMagicAck)]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return nil, fmt.Errorf("dist: wire handshake read: %w", err)
	}
	if string(ack[:]) != wireMagicAck {
		return nil, fmt.Errorf("dist: wire handshake: peer answered %q", ack[:])
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return &wireClientCodec{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, bufSize),
		wbuf:    getWireBuf(),
		rbuf:    getWireBuf(),
		methods: make(map[string]string, 8),
	}, nil
}

func (c *wireClientCodec) WriteRequest(r *rpc.Request, body interface{}) error {
	buf := append(c.wbuf[:0], 0, 0, 0, 0)
	buf = AppendUvarint(buf, r.Seq)
	buf = AppendString(buf, r.ServiceMethod)
	buf, err := appendBody(buf, body)
	c.wbuf = buf
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err = c.conn.Write(buf)
	return err
}

func (c *wireClientCodec) ReadResponseHeader(r *rpc.Response) error {
	buf, payload, err := readFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return err
	}
	rd := NewWireReader(payload)
	r.Seq = rd.Uvarint()
	r.ServiceMethod = intern(c.methods, rd.Bytes(int(rd.Uvarint())))
	if n := int(rd.Uvarint()); n > 0 {
		r.Error = string(rd.Bytes(n))
	} else {
		r.Error = ""
	}
	c.flag = rd.Byte()
	c.body = rd.Rest()
	return rd.Err()
}

func (c *wireClientCodec) ReadResponseBody(body interface{}) error {
	return decodeBody(c.flag, c.body, body)
}

func (c *wireClientCodec) Close() error {
	// The buffers are NOT returned to the pool: rpc.Client calls Close
	// while its input goroutine may still be inside ReadResponseHeader
	// (and a sender inside WriteRequest), with no happens-before edge, so
	// recycling here would hand a buffer to the pool while it is still
	// being written. Per-call reuse is what keeps the steady state
	// allocation-free; teardown lets the GC collect them.
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
	return c.closeErr
}

// wireServerCodec implements rpc.ServerCodec over frames, with the same
// in-flight accounting contract as the gob countingCodec: a call counts
// from its request header being read until its response is written, the
// window Server.Shutdown's drain respects. srv is nil for in-process
// (local pool) servers, which have no drain.
type wireServerCodec struct {
	conn      io.ReadWriteCloser
	br        *bufio.Reader
	srv       *Server
	wbuf      []byte
	rbuf      []byte
	body      []byte
	flag      byte
	methods   map[string]string
	closeOnce sync.Once
}

func newWireServerCodec(conn io.ReadWriteCloser, br *bufio.Reader, srv *Server) *wireServerCodec {
	return &wireServerCodec{
		conn:    conn,
		br:      br,
		srv:     srv,
		wbuf:    getWireBuf(),
		rbuf:    getWireBuf(),
		methods: make(map[string]string, 8),
	}
}

func (c *wireServerCodec) ReadRequestHeader(r *rpc.Request) error {
	buf, payload, err := readFrame(c.br, c.rbuf)
	c.rbuf = buf
	if err != nil {
		return err
	}
	rd := NewWireReader(payload)
	r.Seq = rd.Uvarint()
	r.ServiceMethod = intern(c.methods, rd.Bytes(int(rd.Uvarint())))
	c.flag = rd.Byte()
	c.body = rd.Rest()
	if err := rd.Err(); err != nil {
		return err
	}
	if c.srv != nil {
		atomic.AddInt64(&c.srv.active, 1)
	}
	return nil
}

func (c *wireServerCodec) ReadRequestBody(body interface{}) error {
	return decodeBody(c.flag, c.body, body)
}

func (c *wireServerCodec) WriteResponse(r *rpc.Response, body interface{}) error {
	if c.srv != nil {
		defer atomic.AddInt64(&c.srv.active, -1)
	}
	if r.Error != "" {
		body = nil // the error string is the payload
	}
	buf := append(c.wbuf[:0], 0, 0, 0, 0)
	buf = AppendUvarint(buf, r.Seq)
	buf = AppendString(buf, r.ServiceMethod)
	buf = AppendString(buf, r.Error)
	buf, err := appendBody(buf, body)
	c.wbuf = buf
	if err != nil {
		// Encoding the body failed (should not happen: the service built
		// it); shut the connection down to signal that it did, matching
		// the gob codec's behaviour.
		c.Close()
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	if _, err := c.conn.Write(buf); err != nil {
		return err
	}
	return nil
}

func (c *wireServerCodec) Close() error {
	// Like the client codec, Close leaves the buffers to the GC: the
	// WriteResponse error path closes the codec while the read loop may
	// be inside ReadRequestHeader, so recycling rbuf here would race.
	var err error
	c.closeOnce.Do(func() {
		if c.srv != nil {
			c.srv.dropConn(c.conn)
		}
		err = c.conn.Close()
	})
	return err
}

// sniffWire reports whether the connection behind br opens with the wire
// magic, consuming it if so (and nothing otherwise).
func sniffWire(br *bufio.Reader) (bool, error) {
	b, err := br.Peek(len(wireMagicReq))
	if err != nil {
		return false, err
	}
	if string(b) != wireMagicReq {
		return false, nil
	}
	if _, err := br.Discard(len(wireMagicReq)); err != nil {
		return false, err
	}
	return true, nil
}

// serveConnSniff serves one connection on rpcSrv, auto-detecting the
// client's codec: wire-magic openings get the binary codec (after the
// ack), anything else gets gob. srv (nullable) receives in-flight
// accounting and connection-drop notifications; wbuf (nullable) is the
// buffered writer the gob codec should use — pooled by the Server,
// allocated fresh for in-process connections.
func serveConnSniff(rpcSrv *rpc.Server, conn net.Conn, bufSize int, srv *Server) {
	br := bufio.NewReaderSize(conn, bufSize)
	isWire, err := sniffWire(br)
	if err != nil {
		if srv != nil {
			srv.dropConn(conn)
		}
		conn.Close()
		return
	}
	if isWire {
		if _, err := io.WriteString(conn, wireMagicAck); err != nil {
			if srv != nil {
				srv.dropConn(conn)
			}
			conn.Close()
			return
		}
		rpcSrv.ServeCodec(newWireServerCodec(conn, br, srv))
		return
	}
	var bw *bufio.Writer
	if srv != nil {
		bw = srv.getWriter(conn)
		defer srv.putWriter(bw) // ServeCodec waits out pending responses
	} else {
		bw = bufio.NewWriterSize(conn, bufSize)
	}
	rpcSrv.ServeCodec(newCountingCodec(conn, br, bw, srv))
}
