package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"focus/internal/testutil"
)

// TestCloseIdempotent: Close is safe to call repeatedly (the facade, the
// CLI's defer and a signal path may all reach it) and every call returns
// the same result.
func TestCloseIdempotent(t *testing.T) {
	defer testutil.NoLeaks(t)
	p, err := NewLocalPool(2, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	err1 := p.Close()
	err2 := p.Close()
	if err1 != err2 {
		t.Fatalf("Close twice: %v then %v", err1, err2)
	}
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 1}, &reply); !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("Call after Close = %v, want ErrWorkerDown", err)
	}
}

// TestCloseStopsReconnectLoop: a worker in reconnect backoff when the pool
// closes must not leave its loop behind. MaxReconnects is set high and the
// backoff long, so a leaked loop would outlive the NoLeaks settle window.
func TestCloseStopsReconnectLoop(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	p, err := NewLocalPoolOpts(1, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{
			CallTimeout:   50 * time.Millisecond,
			MaxFailures:   100,
			MaxReconnects: 100,
			ReconnectMin:  10 * time.Second,
			ReconnectMax:  10 * time.Second,
			Logf:          t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 1}, &reply); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("want ErrCallTimeout, got %v", err)
	}
	// The worker is now in its 10 s reconnect backoff; Close must cut it
	// short and wait for the loop to exit.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt32(&blocked, 0)
}

// TestCallCtxPreCanceledFailsFast: an already-canceled ctx fails before
// any bytes go out — the connection stays healthy and usable.
func TestCallCtxPreCanceledFailsFast(t *testing.T) {
	defer testutil.NoLeaks(t)
	p, err := NewLocalPool(1, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cause := errors.New("run canceled by test")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	var reply EchoReply
	if err := p.CallCtx(ctx, 0, "Echo", &EchoArgs{X: 2}, &reply); !errors.Is(err, cause) {
		t.Fatalf("pre-canceled CallCtx = %v, want cause %v", err, cause)
	}
	if n := p.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d after pre-canceled call, want 1 (no health event)", n)
	}
	if err := p.Call(0, "Echo", &EchoArgs{X: 2}, &reply); err != nil || reply.X != 4 {
		t.Fatalf("follow-up call = (%v, %d), want (nil, 4)", err, reply.X)
	}
}

// TestCallCtxCancelSeversInFlight: canceling mid-call unblocks the caller
// promptly (no CallTimeout configured) and severs the connection like a
// timeout would, so the abandoned reply can never race a retry.
func TestCallCtxCancelSeversInFlight(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	defer atomic.StoreInt32(&blocked, 0)
	p, err := NewLocalPoolOpts(1, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{MaxFailures: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cause := errors.New("run canceled by test")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(cause)
	}()
	var reply EchoReply
	start := time.Now()
	err = p.CallCtx(ctx, 0, "Echo", &EchoArgs{X: 1}, &reply)
	if !errors.Is(err, cause) {
		t.Fatalf("canceled CallCtx = %v, want cause %v", err, cause)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("canceled call took %v to unblock", el)
	}
	if n := p.NumHealthy(); n != 0 {
		t.Fatalf("NumHealthy = %d, want 0 (severed connection, MaxFailures=1)", n)
	}
}

// TestParallelCallsCtxCancelUnwinds: a canceled scheduler run finishes all
// runners, returns the cancellation cause, and does not burn the retry
// budget churning through pre-canceled tasks.
func TestParallelCallsCtxCancelUnwinds(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	defer atomic.StoreInt32(&blocked, 0)
	p, err := NewLocalPoolOpts(2, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{MaxFailures: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cause := errors.New("run canceled by test")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(cause)
	}()
	replies := make([]interface{}, 16)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	start := time.Now()
	_, err = p.ParallelCallsCtx(ctx, len(replies), "Echo", func(t int) interface{} {
		return &EchoArgs{X: t}
	}, replies)
	if !errors.Is(err, cause) {
		t.Fatalf("canceled ParallelCallsCtx = %v, want cause %v", err, cause)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("canceled scheduler run took %v to unwind", el)
	}
}

// TestKickSeversInFlightCall: Kick (the watchdog escalation) unblocks a
// wedged call with ErrKicked and reports false once there is no live
// connection left to sever.
func TestKickSeversInFlightCall(t *testing.T) {
	defer testutil.NoLeaks(t)
	var blocked int32 = 1
	defer atomic.StoreInt32(&blocked, 0)
	p, err := NewLocalPoolOpts(1, func() interface{} { return &BlockService{blocked: &blocked} },
		Options{MaxFailures: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	type outcome struct{ err error }
	done := make(chan outcome, 1)
	go func() {
		var reply EchoReply
		done <- outcome{p.Call(0, "Echo", &EchoArgs{X: 1}, &reply)}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(p.StuckWorkers(10*time.Millisecond)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight call never showed up in StuckWorkers")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !p.Kick(0) {
		t.Fatal("Kick(0) = false with a live wedged connection")
	}
	select {
	case o := <-done:
		// The kick closes the connection under the wedged call, which
		// surfaces as a transport error (rpc shutdown) to the caller.
		if o.err == nil || !IsTransportError(o.err) {
			t.Fatalf("kicked call = %v, want a transport error", o.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kicked call did not unblock")
	}
	if p.Kick(0) {
		t.Fatal("Kick(0) = true after the connection was already severed")
	}
}
