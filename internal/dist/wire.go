package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire is the hand-rolled binary encoding contract of the hot RPC payload
// types. A type implementing Wire bypasses gob entirely on the binary
// codec: AppendTo serializes the value into the caller's buffer (append
// semantics, so staging buffers are reusable) and DecodeFrom rebuilds the
// value from the encoded bytes.
//
// Ownership/aliasing contract: src is a view into the codec's pooled
// frame buffer and is INVALID after DecodeFrom returns — implementations
// must copy every byte they keep (sequences, strings, slices). AppendTo
// must not retain dst. See DESIGN.md §10.
type Wire interface {
	AppendTo(dst []byte) []byte
	DecodeFrom(src []byte) error
}

// Append helpers. All use append semantics so encoders can stage into a
// reused buffer with zero steady-state allocations.

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v zigzag-encoded (small magnitudes stay small in
// either sign — the workhorse for delta-encoded id lists).
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendFloat32 appends the 4-byte little-endian IEEE bits of f.
func AppendFloat32(dst []byte, f float32) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
}

// AppendFloat64 appends the 8-byte little-endian IEEE bits of f.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendBool appends one byte (0 or 1).
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends a uvarint length followed by the raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendLen encodes a slice length with a nil marker so nil and empty
// slices round-trip exactly (reflect.DeepEqual distinguishes them): nil
// encodes as 0, a present slice of length n as n+1.
func AppendLen(dst []byte, n int, present bool) []byte {
	if !present {
		return AppendUvarint(dst, 0)
	}
	return AppendUvarint(dst, uint64(n)+1)
}

// WireReader decodes the primitives appended by the helpers above. Errors
// are sticky: after the first malformed field every subsequent read
// returns a zero value, and Finish reports the first error. This keeps
// DecodeFrom implementations free of per-field error checks.
type WireReader struct {
	buf []byte
	off int
	err error
}

// NewWireReader returns a reader over src.
func NewWireReader(src []byte) WireReader { return WireReader{buf: src} }

func (r *WireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("dist: wire: truncated or malformed %s at offset %d", what, r.off)
	}
}

// Err returns the first decode error, if any.
func (r *WireReader) Err() error { return r.err }

// Finish returns the first decode error, or an error if unread bytes
// remain (a framing bug or a version mismatch).
func (r *WireReader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("dist: wire: %d trailing byte(s) after decode", len(r.buf)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned LEB128 value.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed value.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// take returns the next n raw bytes as a view into the frame buffer. The
// view is only valid during DecodeFrom — copy anything retained.
func (r *WireReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Float32 reads 4 little-endian IEEE bytes.
func (r *WireReader) Float32() float32 {
	b := r.take(4, "float32")
	if b == nil {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// Float64 reads 8 little-endian IEEE bytes.
func (r *WireReader) Float64() float64 {
	b := r.take(8, "float64")
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Bool reads one byte as a bool.
func (r *WireReader) Bool() bool {
	b := r.take(1, "bool")
	return b != nil && b[0] != 0
}

// String reads a uvarint-length-prefixed string (copied — strings are
// immutable, so the copy is the conversion itself).
func (r *WireReader) String() string {
	n := r.Uvarint()
	b := r.take(int(n), "string")
	return string(b)
}

// Bytes returns a length-n view into the frame buffer (no copy; see the
// aliasing contract on Wire).
func (r *WireReader) Bytes(n int) []byte { return r.take(n, "bytes") }

// Byte reads one raw byte.
func (r *WireReader) Byte() byte {
	b := r.take(1, "byte")
	if b == nil {
		return 0
	}
	return b[0]
}

// Rest returns the unread remainder as a view into the frame buffer (the
// codec uses it to hand body bytes to DecodeFrom).
func (r *WireReader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// Unread returns the unread remainder as a view WITHOUT consuming it.
// Decoders embedding an externally-framed format (e.g. dna packing) pair
// it with Skip to account for what the external decoder consumed.
func (r *WireReader) Unread() []byte {
	if r.err != nil {
		return nil
	}
	return r.buf[r.off:]
}

// Remaining returns the number of unread bytes (0 once errored).
func (r *WireReader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Skip advances n bytes.
func (r *WireReader) Skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("skip")
		return
	}
	r.off += n
}

// Fail records err as the reader's sticky error (for decoders that
// delegate to external formats).
func (r *WireReader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Len decodes a length written by AppendLen: present=false means the
// slice was nil. Each encoded element occupies at least one byte, so a
// count beyond the remaining bytes is corruption — failing here (rather
// than returning a huge or int-overflowed count) protects every
// slice-decoding caller from unbounded or negative allocations.
func (r *WireReader) Len() (n int, present bool) {
	v := r.Uvarint()
	if v == 0 {
		return 0, false
	}
	v--
	if v > uint64(r.Remaining()) {
		r.fail("slice length")
		return 0, false
	}
	return int(v), true
}

// AppendInt32sDelta appends ids delta-zigzag encoded (sorted lists
// collapse to ~1 byte per id; arbitrary order still round-trips).
func AppendInt32sDelta(dst []byte, ids []int32) []byte {
	dst = AppendLen(dst, len(ids), ids != nil)
	prev := int64(0)
	for _, id := range ids {
		dst = AppendVarint(dst, int64(id)-prev)
		prev = int64(id)
	}
	return dst
}

// Int32sDelta decodes a list written by AppendInt32sDelta.
func (r *WireReader) Int32sDelta() []int32 {
	n, present := r.Len()
	if !present {
		return nil
	}
	if n > r.Remaining() { // each element is at least one byte
		r.fail("int32 list length")
		return nil
	}
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		prev += r.Varint()
		out[i] = int32(prev)
	}
	return out
}
