package dist

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// ErrServerClosed is returned by Server.Serve after Shutdown.
var ErrServerClosed = errors.New("dist: server closed")

// Server hosts an RPC service with graceful shutdown: Shutdown stops
// accepting, drains in-flight calls for a bounded grace period, then
// closes the remaining connections. It is the body of the focus-worker
// daemon.
type Server struct {
	rpcSrv *rpc.Server
	opt    Options
	wpool  sync.Pool // *bufio.Writer, one per live gob connection

	mu     sync.Mutex
	lis    net.Listener
	conns  map[io.ReadWriteCloser]struct{}
	closed bool

	active int64 // in-flight RPC calls (read but not yet answered)
}

// NewServer registers service under ServiceName with default options.
func NewServer(service interface{}) (*Server, error) {
	return NewServerOpts(service, DefaultOptions())
}

// NewServerOpts is NewServer with explicit options (Options.WireBufSize
// sizes the per-connection buffered IO; the fault-tolerance fields are
// client-side and ignored here).
func NewServerOpts(service interface{}, opt Options) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, service); err != nil {
		return nil, fmt.Errorf("dist: register: %w", err)
	}
	s := &Server{rpcSrv: srv, opt: opt, conns: map[io.ReadWriteCloser]struct{}{}}
	s.wpool.New = func() interface{} { return bufio.NewWriterSize(nil, s.opt.wireBufSize()) }
	return s, nil
}

// getWriter borrows a pooled bufio.Writer reset onto conn; putWriter
// returns it once the connection's codec is done with it.
func (s *Server) getWriter(conn io.Writer) *bufio.Writer {
	bw := s.wpool.Get().(*bufio.Writer)
	bw.Reset(conn)
	return bw
}

func (s *Server) putWriter(bw *bufio.Writer) {
	bw.Reset(nil) // drop the conn reference while pooled
	s.wpool.Put(bw)
}

// Serve accepts RPC connections on lis until lis fails or Shutdown is
// called (then it returns ErrServerClosed).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go serveConnSniff(s.rpcSrv, conn, s.opt.wireBufSize(), s)
	}
}

// ActiveCalls returns the number of in-flight RPC calls.
func (s *Server) ActiveCalls() int64 { return atomic.LoadInt64(&s.active) }

// Shutdown stops accepting new connections, waits up to grace for
// in-flight calls to drain, then closes all remaining connections.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	deadline := time.Now().Add(grace)
	for atomic.LoadInt64(&s.active) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = map[io.ReadWriteCloser]struct{}{}
	s.mu.Unlock()
}

func (s *Server) dropConn(c io.ReadWriteCloser) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// countingCodec is net/rpc's gob server codec plus in-flight call
// accounting: a call is in flight from the moment its request header is
// read until its response is written, which is exactly the window
// Shutdown's drain must respect. srv is nil for in-process servers (no
// drain); reads come through the sniffing bufio.Reader and writes go
// through the Server's pooled bufio.Writer.
type countingCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	srv    *Server
	closed bool
}

func newCountingCodec(conn io.ReadWriteCloser, br *bufio.Reader, bw *bufio.Writer, srv *Server) *countingCodec {
	return &countingCodec{
		rwc:    conn,
		dec:    gob.NewDecoder(br),
		enc:    gob.NewEncoder(bw),
		encBuf: bw,
		srv:    srv,
	}
}

func (c *countingCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.dec.Decode(r); err != nil {
		return err
	}
	if c.srv != nil {
		atomic.AddInt64(&c.srv.active, 1)
	}
	return nil
}

func (c *countingCodec) ReadRequestBody(body interface{}) error {
	return c.dec.Decode(body)
}

func (c *countingCodec) WriteResponse(r *rpc.Response, body interface{}) (err error) {
	if c.srv != nil {
		defer atomic.AddInt64(&c.srv.active, -1)
	}
	if err = c.enc.Encode(r); err != nil {
		if c.encBuf.Flush() == nil {
			// Gob couldn't encode the header. Should not happen, so if it
			// does, shut down the connection to signal that it did.
			c.Close()
		}
		return
	}
	if err = c.enc.Encode(body); err != nil {
		if c.encBuf.Flush() == nil {
			c.Close()
		}
		return
	}
	return c.encBuf.Flush()
}

func (c *countingCodec) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.srv != nil {
		c.srv.dropConn(c.rwc)
	}
	return c.rwc.Close()
}

// Serve accepts RPC connections on lis and serves service until lis is
// closed (no graceful drain; use Server for that). Kept for in-test and
// example servers.
func Serve(lis net.Listener, service interface{}) error {
	srv, err := NewServer(service)
	if err != nil {
		return err
	}
	return srv.Serve(lis)
}
