// Package dist is the distribution substrate standing in for MPI (the
// paper ran on an MPI cluster; see DESIGN.md §2 for the substitution
// rationale). It provides a master/worker pool over net/rpc with two
// transports: in-process workers connected by net.Pipe (same serialization
// path, no sockets) and TCP workers for multi-process runs
// (cmd/focus-worker). The distributed assembly algorithms of paper §V run
// their per-partition work on these workers.
//
// Unlike an MPI job — which aborts when any rank dies — the pool is fault
// tolerant: calls carry an optional deadline (Options.CallTimeout), a
// worker whose connection hangs or breaks is evicted from the schedulable
// set and reconnected in the background with exponential backoff, and the
// dynamic scheduler of sched.go reroutes queued tasks around evicted
// workers. chaos.go provides a deterministic fault-injecting transport for
// testing all of this below the service layer.
package dist

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// ServiceName is the RPC service name workers register.
const ServiceName = "FocusWorker"

// dialTimeout bounds a single (re)connect dial.
const dialTimeout = 2 * time.Second

var (
	// ErrCallTimeout marks a call that exceeded Options.CallTimeout. The
	// worker's connection is severed when this happens (the reply of an
	// abandoned call must never be written concurrently with a retry).
	ErrCallTimeout = errors.New("dist: call timeout")
	// ErrWorkerDown marks a call addressed to a worker with no live
	// connection (evicted, reconnecting, or closed).
	ErrWorkerDown = errors.New("dist: worker down")
	// ErrNoWorkers marks a parallel invocation that found (or was left
	// with) no schedulable workers. Callers use it to fall back to local
	// execution.
	ErrNoWorkers = errors.New("dist: no healthy workers")
	// ErrKicked marks a call severed because a supervisor (the assembly
	// watchdog) forcibly disconnected the worker mid-call via Pool.Kick.
	ErrKicked = errors.New("dist: worker kicked")
)

// Codec selects the wire encoding of a pool's RPC connections.
type Codec uint8

const (
	// CodecAuto opens every connection with the binary wire handshake and
	// falls back to gob when the peer does not answer it (an old worker
	// build). The fallback is sticky per worker, so reconnects skip the
	// probe. This is the default.
	CodecAuto Codec = iota
	// CodecBinary requires the binary wire protocol; a failed handshake is
	// a connect error.
	CodecBinary
	// CodecGob forces net/rpc's stock gob codec.
	CodecGob
)

// Options configure the pool's fault tolerance and wire protocol. The
// zero value disables deadlines, uses the default health thresholds, and
// negotiates the binary codec with gob fallback.
type Options struct {
	// CallTimeout is the per-call deadline; 0 disables deadlines
	// (net/rpc's native behaviour: a hung worker blocks forever).
	CallTimeout time.Duration
	// MaxFailures is the number of consecutive transport failures
	// (timeouts, broken connections) after which a worker is permanently
	// evicted instead of reconnected. Successful calls reset the count;
	// application-level errors returned by the service do not touch it.
	MaxFailures int
	// ReconnectMin/ReconnectMax bound the exponential reconnect backoff.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// MaxReconnects is the number of failed reconnect attempts per outage
	// before the worker is permanently evicted.
	MaxReconnects int
	// Seed seeds the backoff jitter PRNG (deterministic tests).
	Seed int64
	// Logf receives eviction/reconnect warnings; nil means log.Printf.
	Logf func(format string, args ...interface{})

	// Codec selects the wire encoding (see the Codec constants). The zero
	// value negotiates the binary protocol with gob fallback.
	Codec Codec
	// HandshakeTimeout bounds the binary-codec handshake in CodecAuto and
	// CodecBinary modes. 0 means CallTimeout when that is set and shorter
	// than the dial timeout, else the dial timeout. An old gob-only worker
	// never answers the handshake (it blocks mid-message), so in CodecAuto
	// mode this timeout is what triggers the gob fallback.
	HandshakeTimeout time.Duration
	// WireBufSize sizes the per-connection buffered reader and, on the
	// server, the pooled bufio.Writer of the gob codec. 0 means 64 KiB.
	WireBufSize int
	// WrapConn, if set, wraps the server side of every in-process worker
	// connection (keyed by worker id). Benchmarks use it to count the
	// bytes a codec actually puts on the wire. It composes with the chaos
	// transport: WrapConn is applied first, chaos outermost.
	WrapConn func(worker int, conn net.Conn) net.Conn
}

// DefaultOptions returns the default fault-tolerance parameters. Deadlines
// are off by default: legitimate partition tasks have no a-priori bound,
// so hanging-worker detection is opt-in (cmd/focus exposes -call-timeout).
func DefaultOptions() Options { return Options{} }

func (o Options) withDefaults() Options {
	if o.MaxFailures <= 0 {
		o.MaxFailures = 3
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 5 * time.Second
	}
	if o.MaxReconnects <= 0 {
		o.MaxReconnects = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// wireBufSize returns the effective buffered-IO size.
func (o Options) wireBufSize() int {
	if o.WireBufSize > 0 {
		return o.WireBufSize
	}
	return 64 << 10
}

// handshakeTimeout returns the effective binary-handshake deadline.
func (o Options) handshakeTimeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	if o.CallTimeout > 0 && o.CallTimeout < dialTimeout {
		return o.CallTimeout
	}
	return dialTimeout
}

// worker is one pool slot: its connection plus health state. The slot
// survives connection loss — the client is replaced by the reconnect loop.
type worker struct {
	id         int
	addr       string                  // TCP address; "" for in-process workers
	newService func() interface{}      // in-process service factory (revival)
	wrap       func(net.Conn) net.Conn // optional chaos wrapper for the server conn

	mu      sync.Mutex
	client  *rpc.Client
	fails   int  // consecutive transport failures
	evicted bool // permanently out of the schedulable set
	gobOnly bool // sticky CodecAuto downgrade: peer failed the wire handshake

	// In-flight call tracking for the watchdog's stuck-worker detection:
	// callStart holds the UnixNano start time of the oldest in-flight call
	// (0 when idle). The pool's one-in-flight-per-worker scheduling makes
	// the single timestamp exact for phase traffic.
	inflight  atomic.Int32
	callStart atomic.Int64
}

// Pool is a set of workers addressed by index. Worker slots are fixed at
// construction; health state decides which are schedulable at any moment.
// A Pool handle is either a root (owns the fleet and its lifecycle) or a
// view created by View: a restricted handle that shares the fleet's
// workers, reconnect machinery and health state but schedules only onto
// its member subset and keeps its own completion counter. Worker ids are
// always root-global, in views too.
type Pool struct {
	opt     Options
	workers []*worker

	// View state: root points at the owning pool (nil on the root
	// itself); mask[id] marks this handle's member workers (nil = all).
	root *Pool
	mask []bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// Reconnect-hook registry (root-held, guarded by hookMu): every
	// registered hook runs when a severed worker is reinstated. slotHook
	// is the per-handle single-slot SetReconnectHook compatibility wrapper
	// over the registry, so each view carries one independent slot.
	hookMu   sync.Mutex
	hooks    map[int]func(worker int)
	nextHook int
	slotHook int
	slotSet  bool

	// completions counts finished worker calls (any outcome). Watchdogs
	// read it as the pool's progress signal: a stuck phase is one whose
	// counter stops moving. Views keep their own counter (a per-job
	// watchdog must not read another job's traffic as progress); the root
	// counter aggregates the whole fleet.
	completions atomic.Int64

	// Fleet-wide fault counters (root-held), surfaced by Health().
	evictions  atomic.Int64
	reconnects atomic.Int64
	kicks      atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	// spawnMu orders reconnect-loop spawns against Close: record must not
	// wg.Add after Close's wg.Wait has begun (a WaitGroup reuse race).
	// Holding it while closing `closed` gives record an atomic
	// check-then-Add window.
	spawnMu sync.Mutex
	wg      sync.WaitGroup // reconnect loops
}

func newPool(opt Options) *Pool {
	opt = opt.withDefaults()
	return &Pool{
		opt:    opt,
		rng:    rand.New(rand.NewSource(opt.Seed)),
		hooks:  make(map[int]func(int)),
		closed: make(chan struct{}),
	}
}

// shared returns the root pool that owns the fleet's shared state
// (reconnect loops, hook registry, counters, lifecycle); for a root pool
// that is the pool itself.
func (p *Pool) shared() *Pool {
	if p.root != nil {
		return p.root
	}
	return p
}

// allowed reports whether worker id is a member of this handle.
func (p *Pool) allowed(id int) bool {
	return p.mask == nil || (id >= 0 && id < len(p.mask) && p.mask[id])
}

// NewLocalPool starts n in-process workers, each hosting its own service
// instance created by newService, connected through net.Pipe. RPC
// round-trips go through real gob encoding, exercising the same paths a
// TCP deployment does.
func NewLocalPool(n int, newService func() interface{}) (*Pool, error) {
	return NewLocalPoolOpts(n, newService, DefaultOptions())
}

// NewLocalPoolOpts is NewLocalPool with explicit fault-tolerance options.
func NewLocalPoolOpts(n int, newService func() interface{}, opt Options) (*Pool, error) {
	return NewLocalChaosPool(n, newService, opt, nil)
}

// NewLocalChaosPool is NewLocalPoolOpts with a deterministic
// fault-injecting transport: chaos(i) returns the chaos configuration of
// worker i's server-side connection (nil = clean). Passing chaos == nil
// yields a plain local pool.
func NewLocalChaosPool(n int, newService func() interface{}, opt Options, chaos func(worker int) *ChaosConfig) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: pool size %d", n)
	}
	p := newPool(opt)
	for i := 0; i < n; i++ {
		w := &worker{id: i, newService: newService}
		if chaos != nil {
			if cfg := chaos(i); cfg != nil {
				c := *cfg
				w.wrap = func(conn net.Conn) net.Conn { return WrapChaos(conn, c) }
			}
		}
		client, err := p.connectWorker(w)
		if err != nil {
			p.Close()
			return nil, err
		}
		w.client = client
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// dialConn opens a raw transport to w: TCP for remote workers, a pipe to
// a freshly served in-process service instance otherwise. The in-process
// server sniffs the codec exactly like a TCP focus-worker does.
func (p *Pool) dialConn(w *worker) (net.Conn, error) {
	if w.addr != "" {
		return net.DialTimeout("tcp", w.addr, dialTimeout)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, w.newService()); err != nil {
		return nil, fmt.Errorf("dist: register: %w", err)
	}
	cliConn, srvConn := net.Pipe()
	var sc net.Conn = srvConn
	if p.opt.WrapConn != nil {
		sc = p.opt.WrapConn(w.id, sc)
	}
	if w.wrap != nil {
		sc = w.wrap(sc)
	}
	go serveConnSniff(srv, sc, p.opt.wireBufSize(), nil)
	return cliConn, nil
}

// connectWorker establishes w's connection with the configured codec: the
// binary wire handshake by default, downgrading (stickily) to gob when
// the peer does not complete it in CodecAuto mode.
func (p *Pool) connectWorker(w *worker) (*rpc.Client, error) {
	codec := p.opt.Codec
	w.mu.Lock()
	if codec == CodecAuto && w.gobOnly {
		codec = CodecGob
	}
	w.mu.Unlock()
	conn, err := p.dialConn(w)
	if err != nil {
		return nil, err
	}
	if codec == CodecGob {
		return rpc.NewClient(conn), nil
	}
	cc, herr := newWireClientCodec(conn, p.opt.wireBufSize(), p.opt.handshakeTimeout())
	if herr == nil {
		return rpc.NewClientWithCodec(cc), nil
	}
	conn.Close()
	if codec == CodecBinary {
		return nil, fmt.Errorf("dist: worker %d: %w", w.id, herr)
	}
	p.opt.Logf("dist: worker %d: wire handshake failed (%v); falling back to gob", w.id, herr)
	w.mu.Lock()
	w.gobOnly = true
	w.mu.Unlock()
	conn, err = p.dialConn(w)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}

// DialPool connects to already-running TCP workers.
func DialPool(addrs []string) (*Pool, error) {
	return DialPoolOpts(addrs, DefaultOptions())
}

// DialPoolOpts is DialPool with explicit fault-tolerance options.
func DialPoolOpts(addrs []string, opt Options) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	p := newPool(opt)
	for i, addr := range addrs {
		w := &worker{id: i, addr: addr}
		client, err := p.connectWorker(w)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		w.client = client
		p.workers = append(p.workers, w)
	}
	return p, nil
}

// Size returns the number of worker slots (healthy or not).
func (p *Pool) Size() int { return len(p.workers) }

// NumHealthy returns the number of currently schedulable workers: slots
// with a live connection that have not been evicted.
func (p *Pool) NumHealthy() int {
	n := 0
	for _, w := range p.workers {
		if p.workerRunnable(w) {
			n++
		}
	}
	return n
}

// Healthy reports whether worker i is currently schedulable (live
// connection, not evicted). Out-of-range ids are unhealthy.
func (p *Pool) Healthy(i int) bool {
	if i < 0 || i >= len(p.workers) {
		return false
	}
	return p.workerRunnable(p.workers[i])
}

// HealthyIDs returns the ids of the currently schedulable workers in
// ascending order. The snapshot is advisory — a worker may die between the
// call and its use — but stateful placement only needs a best-effort view:
// a placement on a worker that just died fails its call and is re-placed.
func (p *Pool) HealthyIDs() []int {
	var ids []int
	for _, w := range p.workers {
		if p.workerRunnable(w) {
			ids = append(ids, w.id)
		}
	}
	return ids
}

// SetReconnectHook registers fn to be called (from the reconnect
// goroutine) each time a severed worker is reinstated. Stateful callers
// use it to schedule rebalancing onto the recovered worker. Pass nil to
// clear. The hook must not block: it runs on the reconnect loop's
// goroutine and a slow hook delays the worker's return to service.
//
// The slot is per handle: each View carries its own, so concurrent
// drivers on views of one fleet do not clobber each other. AddReconnectHook
// is the multi-listener registry underneath.
func (p *Pool) SetReconnectHook(fn func(worker int)) {
	s := p.shared()
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	if p.slotSet {
		delete(s.hooks, p.slotHook)
		p.slotSet = false
	}
	if fn != nil {
		p.slotHook = s.addHookLocked(fn)
		p.slotSet = true
	}
}

// AddReconnectHook registers fn alongside any other reconnect hooks and
// returns a registration id for RemoveReconnectHook. Hooks run
// sequentially on the reconnect goroutine and must not block.
func (p *Pool) AddReconnectHook(fn func(worker int)) int {
	s := p.shared()
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.addHookLocked(fn)
}

// RemoveReconnectHook deregisters a hook by its AddReconnectHook id.
func (p *Pool) RemoveReconnectHook(id int) {
	s := p.shared()
	s.hookMu.Lock()
	delete(s.hooks, id)
	s.hookMu.Unlock()
}

func (p *Pool) addHookLocked(fn func(worker int)) int {
	p.nextHook++
	p.hooks[p.nextHook] = fn
	return p.nextHook
}

// runReconnectHooks snapshots and invokes every registered hook (called
// from the reconnect loop on the root pool).
func (p *Pool) runReconnectHooks(worker int) {
	p.hookMu.Lock()
	fns := make([]func(int), 0, len(p.hooks))
	for _, fn := range p.hooks {
		fns = append(fns, fn)
	}
	p.hookMu.Unlock()
	for _, fn := range fns {
		fn(worker)
	}
}

func (p *Pool) workerRunnable(w *worker) bool {
	if !p.allowed(w.id) {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client != nil && !w.evicted
}

func (p *Pool) runnableWorkers() []*worker {
	var out []*worker
	for _, w := range p.workers {
		if p.workerRunnable(w) {
			out = append(out, w)
		}
	}
	return out
}

// Call invokes method (without the service prefix) on worker i, honouring
// Options.CallTimeout.
func (p *Pool) Call(i int, method string, args, reply interface{}) error {
	return p.CallCtx(nil, i, method, args, reply)
}

// CallCtx is Call bounded by ctx: cancellation (or a ctx deadline) severs
// the in-flight call exactly like ErrCallTimeout does — the connection is
// closed so the abandoned reply can never be written concurrently with a
// retry — and the returned error wraps the context's cause. A nil ctx
// means no bound beyond Options.CallTimeout.
func (p *Pool) CallCtx(ctx context.Context, i int, method string, args, reply interface{}) error {
	if i < 0 || i >= len(p.workers) {
		return fmt.Errorf("dist: worker %d out of range [0,%d)", i, len(p.workers))
	}
	if !p.allowed(i) {
		return fmt.Errorf("dist: worker %d not a member of this pool view: %w", i, ErrWorkerDown)
	}
	return p.callWorkerCtx(ctx, p.workers[i], method, args, reply)
}

// Completions returns the total number of finished worker calls (any
// outcome, including timeouts and severed calls). Watchdogs use it as the
// pool's progress signal.
func (p *Pool) Completions() int64 { return p.completions.Load() }

// StuckWorkers returns the ids of workers whose current in-flight call
// has been running for at least window. The snapshot is advisory — a call
// can finish between the read and the caller's reaction.
func (p *Pool) StuckWorkers(window time.Duration) []int {
	now := time.Now().UnixNano()
	var ids []int
	for _, w := range p.workers {
		if !p.allowed(w.id) {
			continue
		}
		if start := w.callStart.Load(); start != 0 && now-start >= int64(window) {
			ids = append(ids, w.id)
		}
	}
	return ids
}

// Kick forcibly severs worker i's connection, failing its in-flight call
// like any transport error: the call unblocks with ErrKicked, the task
// reschedules (or is re-hosted by a stateful driver), and the worker goes
// through the usual reconnect/eviction machinery. It is the watchdog's
// evict-and-rehost escalation. Returns false if the worker had no live
// connection to sever.
func (p *Pool) Kick(i int) bool {
	if i < 0 || i >= len(p.workers) || !p.allowed(i) {
		return false
	}
	w := p.workers[i]
	w.mu.Lock()
	c := w.client
	w.mu.Unlock()
	if c == nil {
		return false
	}
	p.shared().kicks.Add(1)
	p.record(w, c, fmt.Errorf("dist: worker %d: %w", i, ErrKicked))
	return true
}

// Go invokes method on worker i asynchronously (no deadline; callers that
// need one should use Call from a goroutine).
func (p *Pool) Go(i int, method string, args, reply interface{}) *rpc.Call {
	w := p.workers[i]
	w.mu.Lock()
	c := w.client
	w.mu.Unlock()
	if c == nil {
		call := &rpc.Call{ServiceMethod: ServiceName + "." + method, Args: args, Reply: reply,
			Error: fmt.Errorf("dist: worker %d: %w", i, ErrWorkerDown), Done: make(chan *rpc.Call, 1)}
		call.Done <- call
		return call
	}
	return c.Go(ServiceName+"."+method, args, reply, nil)
}

// callWorker runs one call on w with the configured deadline and feeds the
// outcome into the worker's health state.
func (p *Pool) callWorker(w *worker, method string, args, reply interface{}) error {
	return p.callWorkerCtx(nil, w, method, args, reply)
}

// callWorkerCtx is callWorker bounded by an optional context: a canceled
// (or deadline-expired) ctx severs the in-flight call exactly like a
// timeout, because a kept connection could still write into the abandoned
// reply. A nil ctx — or one that can never cancel — costs nothing beyond
// a nil check on the hot path.
func (p *Pool) callWorkerCtx(ctx context.Context, w *worker, method string, args, reply interface{}) error {
	var cdone <-chan struct{}
	if ctx != nil {
		if ctx.Err() != nil {
			// Fail fast without touching the (healthy) connection: no call
			// went out, so there is nothing to sever and no health event.
			return fmt.Errorf("dist: %s on worker %d: %w", method, w.id, context.Cause(ctx))
		}
		cdone = ctx.Done()
	}
	w.mu.Lock()
	c := w.client
	w.mu.Unlock()
	if c == nil {
		return fmt.Errorf("dist: worker %d: %w", w.id, ErrWorkerDown)
	}
	svcMethod := ServiceName + "." + method
	p.noteCallStart(w)
	defer p.noteCallEnd(w)
	if p.opt.CallTimeout <= 0 && cdone == nil {
		err := c.Call(svcMethod, args, reply)
		p.record(w, c, err)
		return err
	}
	// client.Go's send runs in the calling goroutine and can itself block
	// on a wedged connection, so the whole round-trip goes in a goroutine.
	done := make(chan error, 1)
	go func() {
		call := c.Go(svcMethod, args, reply, make(chan *rpc.Call, 1))
		done <- (<-call.Done).Error
	}()
	var timeC <-chan time.Time
	if p.opt.CallTimeout > 0 {
		timer := time.NewTimer(p.opt.CallTimeout)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case err := <-done:
		p.record(w, c, err)
		return err
	case <-timeC:
		err := fmt.Errorf("dist: %s on worker %d after %v: %w", method, w.id, p.opt.CallTimeout, ErrCallTimeout)
		p.record(w, c, err)
		return err
	case <-cdone:
		err := fmt.Errorf("dist: %s on worker %d: %w", method, w.id, context.Cause(ctx))
		p.record(w, c, err)
		return err
	}
}

// noteCallStart/noteCallEnd maintain the per-worker in-flight timestamp
// (stuck detection) and the pool-wide completion counter (progress
// detection).
func (p *Pool) noteCallStart(w *worker) {
	if w.inflight.Add(1) == 1 {
		w.callStart.Store(time.Now().UnixNano())
	}
}

func (p *Pool) noteCallEnd(w *worker) {
	if w.inflight.Add(-1) == 0 {
		w.callStart.Store(0)
	}
	p.completions.Add(1)
	// A view's traffic also counts as fleet progress on the root.
	if s := p.shared(); s != p {
		s.completions.Add(1)
	}
}

// IsTransportError reports whether err indicates the worker (or the
// connection to it) is unusable, as opposed to an application-level error
// returned by the service — a service that answers, even with an error, is
// alive.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return false
	}
	return true
}

// record updates w's health from a call outcome on client c. Transport
// failures sever the connection: net/rpc clients are not reusable after an
// I/O error, and a timed-out call could still write into its abandoned
// reply if the connection were kept.
func (p *Pool) record(w *worker, c *rpc.Client, err error) {
	p = p.shared() // reconnect spawning and lifecycle state live on the root
	w.mu.Lock()
	if w.client != c { // stale generation: outcome of an already-severed conn
		w.mu.Unlock()
		return
	}
	if !IsTransportError(err) {
		w.fails = 0
		w.mu.Unlock()
		return
	}
	w.fails++
	w.client = nil
	canRevive := (w.addr != "" || w.newService != nil) && !p.isClosed()
	dead := w.fails >= p.opt.MaxFailures || !canRevive
	if dead {
		w.evicted = true
	}
	fails := w.fails
	w.mu.Unlock()
	c.Close()
	if dead {
		p.evictions.Add(1)
		p.opt.Logf("dist: worker %d evicted after %d consecutive transport failure(s) (last: %v)", w.id, fails, err)
		return
	}
	p.opt.Logf("dist: worker %d connection severed (%v); reconnecting in background", w.id, err)
	// spawnMu orders this spawn against Close: Close holds it while closing
	// p.closed and only then waits on p.wg, so either we observe the pool
	// closed here (no spawn), or our wg.Add lands before Close's wg.Wait.
	p.spawnMu.Lock()
	if p.isClosed() {
		p.spawnMu.Unlock()
		return
	}
	p.wg.Add(1)
	p.spawnMu.Unlock()
	go p.reconnectLoop(w)
}

// reconnectLoop re-establishes w's connection with exponential backoff and
// jitter, verifying liveness with a Ping before reinstating the worker.
// The consecutive-failure count is reset only by successful *work* calls,
// so a worker that reconnects but keeps hanging is eventually evicted for
// good by MaxFailures.
func (p *Pool) reconnectLoop(w *worker) {
	defer p.wg.Done()
	for attempt := 0; attempt < p.opt.MaxReconnects; attempt++ {
		select {
		case <-p.closed:
			return
		case <-time.After(p.backoff(attempt)):
		}
		client, err := p.reconnect(w)
		if err != nil {
			p.opt.Logf("dist: worker %d reconnect attempt %d/%d: %v", w.id, attempt+1, p.opt.MaxReconnects, err)
			continue
		}
		w.mu.Lock()
		if w.evicted || p.isClosed() {
			w.mu.Unlock()
			client.Close()
			return
		}
		w.client = client
		w.mu.Unlock()
		p.reconnects.Add(1)
		p.opt.Logf("dist: worker %d reconnected", w.id)
		p.runReconnectHooks(w.id)
		return
	}
	w.mu.Lock()
	w.evicted = true
	w.mu.Unlock()
	p.evictions.Add(1)
	p.opt.Logf("dist: worker %d evicted after %d failed reconnect attempts", w.id, p.opt.MaxReconnects)
}

func (p *Pool) reconnect(w *worker) (*rpc.Client, error) {
	client, err := p.connectWorker(w)
	if err != nil {
		return nil, err
	}
	if err := p.ping(client); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// ping verifies a connection answers within a bounded time. A service
// without a Ping method still proves liveness by answering with a
// ServerError.
func (p *Pool) ping(c *rpc.Client) error {
	timeout := p.opt.CallTimeout
	if timeout <= 0 {
		timeout = dialTimeout
	}
	done := make(chan error, 1)
	go func() {
		var ok bool
		args := 0
		done <- c.Call(ServiceName+".Ping", &args, &ok)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		var se rpc.ServerError
		if err == nil || errors.As(err, &se) {
			return nil
		}
		return err
	case <-timer.C:
		return fmt.Errorf("dist: ping: %w", ErrCallTimeout)
	}
}

// backoff returns the jittered exponential delay of the given attempt.
func (p *Pool) backoff(attempt int) time.Duration {
	d := p.opt.ReconnectMin << uint(attempt)
	if d <= 0 || d > p.opt.ReconnectMax {
		d = p.opt.ReconnectMax
	}
	p.rngMu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.rngMu.Unlock()
	return d/2 + jitter
}

// HealthCheck dials addr and verifies the worker answers a Ping within
// timeout. It is the probe behind focus-worker's -healthcheck flag and is
// usable by external orchestrators.
func HealthCheck(addr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = dialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("dist: healthcheck %s: %w", addr, err)
	}
	client := rpc.NewClient(conn)
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		var ok bool
		args := 0
		done <- client.Call(ServiceName+".Ping", &args, &ok)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		var se rpc.ServerError
		if err == nil || errors.As(err, &se) {
			return nil
		}
		return fmt.Errorf("dist: healthcheck %s: %w", addr, err)
	case <-timer.C:
		return fmt.Errorf("dist: healthcheck %s: %w", addr, ErrCallTimeout)
	}
}

func (p *Pool) isClosed() bool {
	select {
	case <-p.shared().closed:
		return true
	default:
		return false
	}
}

// Close shuts down all worker connections (and, for local pools, the
// worker goroutines with them) and stops background reconnects. It is
// idempotent: the first call performs the teardown and waits for every
// background goroutine to exit; later (or concurrent) calls wait for
// that teardown to finish and return the same error.
//
// Closing a view releases only the view (its reconnect-hook slot); the
// fleet stays up for the other views and the root.
func (p *Pool) Close() error {
	if p.root != nil {
		p.SetReconnectHook(nil)
		return nil
	}
	p.closeOnce.Do(func() {
		// Holding spawnMu across the close orders us against record()'s
		// reconnect-loop spawns: no wg.Add can land after wg.Wait starts.
		p.spawnMu.Lock()
		close(p.closed)
		p.spawnMu.Unlock()
		for _, w := range p.workers {
			w.mu.Lock()
			c := w.client
			w.client = nil
			w.evicted = true
			w.mu.Unlock()
			if c != nil {
				if err := c.Close(); err != nil && p.closeErr == nil {
					p.closeErr = err
				}
			}
		}
		p.wg.Wait()
	})
	return p.closeErr
}
