// Package dist is the distribution substrate standing in for MPI (the
// paper ran on an MPI cluster; see DESIGN.md §2 for the substitution
// rationale). It provides a master/worker pool over net/rpc with two
// transports: in-process workers connected by net.Pipe (same serialization
// path, no sockets) and TCP workers for multi-process runs
// (cmd/focus-worker). The distributed assembly algorithms of paper §V run
// their per-partition work on these workers.
package dist

import (
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// ServiceName is the RPC service name workers register.
const ServiceName = "FocusWorker"

// Pool is a set of connected workers addressed by index.
type Pool struct {
	clients []*rpc.Client
	closers []io.Closer
}

// NewLocalPool starts n in-process workers, each hosting its own service
// instance created by newService, connected through net.Pipe. RPC
// round-trips go through real gob encoding, exercising the same paths a
// TCP deployment does.
func NewLocalPool(n int, newService func() interface{}) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: pool size %d", n)
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		if err := srv.RegisterName(ServiceName, newService()); err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: register: %w", err)
		}
		cliConn, srvConn := net.Pipe()
		go srv.ServeConn(srvConn)
		client := rpc.NewClient(cliConn)
		p.clients = append(p.clients, client)
		p.closers = append(p.closers, client)
	}
	return p, nil
}

// DialPool connects to already-running TCP workers.
func DialPool(addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	p := &Pool{}
	for _, addr := range addrs {
		client, err := rpc.Dial("tcp", addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		p.clients = append(p.clients, client)
		p.closers = append(p.closers, client)
	}
	return p, nil
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.clients) }

// Call invokes method (without the service prefix) on worker i.
func (p *Pool) Call(i int, method string, args, reply interface{}) error {
	if i < 0 || i >= len(p.clients) {
		return fmt.Errorf("dist: worker %d out of range [0,%d)", i, len(p.clients))
	}
	return p.clients[i].Call(ServiceName+"."+method, args, reply)
}

// Go invokes method on worker i asynchronously.
func (p *Pool) Go(i int, method string, args, reply interface{}) *rpc.Call {
	return p.clients[i].Go(ServiceName+"."+method, args, reply, nil)
}

// Retries is the number of additional workers a failed task is retried
// on (failover). 0 — the default — fails fast: any task error aborts the
// phase, as an MPI job would.
type callOptions struct {
	retries int
}

// ParallelCalls runs one call per task concurrently, task t on worker
// t % Size() (round-robin partition-to-processor assignment). mkArgs and
// replies are indexed by task. It returns the per-task durations
// (argument construction excluded), which the harness projects onto
// larger worker counts; the first error is returned after all calls
// finish.
func (p *Pool) ParallelCalls(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, error) {
	return p.parallelCalls(tasks, method, mkArgs, replies, callOptions{})
}

// ParallelCallsRetry is ParallelCalls with failover: a failed task is
// retried on up to `retries` other workers before the error counts.
// Stateless services (all of assembly's phases) make this safe.
func (p *Pool) ParallelCallsRetry(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}, retries int) ([]time.Duration, error) {
	return p.parallelCalls(tasks, method, mkArgs, replies, callOptions{retries: retries})
}

func (p *Pool) parallelCalls(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}, opt callOptions) ([]time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, tasks)
	times := make([]time.Duration, tasks)
	// One in-flight call per worker at a time, so that a pool of w
	// workers processes at most w partitions concurrently — this is what
	// makes runtime fall as the pool grows (Fig. 6).
	locks := make([]sync.Mutex, p.Size())
	for t := 0; t < tasks; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			// Argument construction happens on the master and is not
			// part of the worker's task time.
			args := mkArgs(t)
			maxAttempts := 1 + opt.retries
			if maxAttempts > p.Size() {
				maxAttempts = p.Size()
			}
			for attempt := 0; attempt < maxAttempts; attempt++ {
				w := (t + attempt) % p.Size()
				locks[w].Lock()
				t0 := time.Now()
				errs[t] = p.Call(w, method, args, replies[t])
				times[t] = time.Since(t0)
				locks[w].Unlock()
				if errs[t] == nil {
					break
				}
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return times, err
		}
	}
	return times, nil
}

// Close shuts down all client connections (and, for local pools, the
// worker goroutines with them).
func (p *Pool) Close() error {
	var first error
	for _, c := range p.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.closers = nil
	p.clients = nil
	return first
}

// Serve accepts RPC connections on lis and serves service until lis is
// closed. It is the body of the focus-worker daemon.
func Serve(lis net.Listener, service interface{}) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, service); err != nil {
		return fmt.Errorf("dist: register: %w", err)
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}
