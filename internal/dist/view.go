package dist

import (
	"encoding/json"
	"fmt"
	"time"
)

// Fleet sharing (DESIGN.md §16): a resident master multiplexes many
// concurrent assembly jobs onto one worker fleet. Each job gets a View —
// a restricted Pool handle that schedules only onto its member workers,
// keeps its own completion counter (so one job's watchdog cannot read
// another job's traffic as progress) and its own reconnect-hook slot (so
// concurrent stateful drivers do not clobber each other's rebalance
// signal) — while connection health, eviction, and reconnection remain
// fleet state owned by the root pool. Health() is the fleet's scrapeable
// health snapshot.

// View returns a restricted handle onto the same fleet that schedules
// only onto the given member worker ids. Worker ids stay root-global:
// view.Healthy(3) asks about fleet worker 3, whether or not it is a
// member (non-members are simply never healthy from the view). Views of
// views must narrow: every id must be a member of p.
func (p *Pool) View(ids []int) (*Pool, error) {
	s := p.shared()
	if len(ids) == 0 {
		return nil, fmt.Errorf("dist: view needs at least one worker")
	}
	mask := make([]bool, len(s.workers))
	for _, id := range ids {
		if id < 0 || id >= len(s.workers) {
			return nil, fmt.Errorf("dist: view worker %d outside [0,%d)", id, len(s.workers))
		}
		if mask[id] {
			return nil, fmt.Errorf("dist: duplicate worker %d in view", id)
		}
		if !p.allowed(id) {
			return nil, fmt.Errorf("dist: view worker %d is not a member of the parent view", id)
		}
		mask[id] = true
	}
	return &Pool{opt: s.opt, workers: s.workers, root: s, mask: mask}, nil
}

// Members returns this handle's member worker ids in ascending order
// (every slot for a root pool), healthy or not.
func (p *Pool) Members() []int {
	ids := make([]int, 0, len(p.workers))
	for _, w := range p.workers {
		if p.allowed(w.id) {
			ids = append(ids, w.id)
		}
	}
	return ids
}

// WorkerState is a worker's position in the health lifecycle.
type WorkerState int

const (
	// WorkerLive: connected and schedulable.
	WorkerLive WorkerState = iota
	// WorkerReconnecting: connection severed, background reconnect in
	// flight; not schedulable until it succeeds.
	WorkerReconnecting
	// WorkerEvicted: permanently out of the schedulable set.
	WorkerEvicted
)

func (s WorkerState) String() string {
	switch s {
	case WorkerLive:
		return "live"
	case WorkerReconnecting:
		return "reconnecting"
	case WorkerEvicted:
		return "evicted"
	}
	return fmt.Sprintf("WorkerState(%d)", int(s))
}

// MarshalJSON renders the state as its string name (the status endpoint
// is read by humans and test scrapers, not by ordinal).
func (s WorkerState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the string rendering back, so scrapers can decode
// the same health documents the endpoint encodes.
func (s *WorkerState) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for cand := WorkerLive; cand <= WorkerEvicted; cand++ {
		if cand.String() == name {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("dist: unknown worker state %q", name)
}

// WorkerHealth is one worker's health snapshot.
type WorkerHealth struct {
	ID    int         `json:"id"`
	State WorkerState `json:"state"`
	// ConsecutiveFails is the current consecutive transport-failure count
	// (reset by any successful call).
	ConsecutiveFails int `json:"consecutive_fails"`
	// InFlight is the number of calls currently outstanding on the worker.
	InFlight int `json:"in_flight"`
	// CallRunningFor is how long the oldest in-flight call has been
	// running (0 when idle) — the watchdog's stuck-worker signal.
	CallRunningFor time.Duration `json:"call_running_for_ns"`
	// GobOnly marks a sticky codec downgrade (peer failed the binary wire
	// handshake).
	GobOnly bool `json:"gob_only,omitempty"`
}

// HealthSnapshot is a point-in-time view of the fleet (or of a view's
// member subset): per-worker state plus the fleet-wide fault counters.
// It is advisory — workers change state concurrently — but that is all an
// operational surface needs.
type HealthSnapshot struct {
	Workers []WorkerHealth `json:"workers"`
	Healthy int            `json:"healthy"`
	// Evictions, Reconnects and Kicks are fleet-lifetime totals (root
	// counters, identical from any view). Completions is per handle: a
	// view reports its own traffic, the root the whole fleet's.
	Evictions   int64 `json:"evictions"`
	Reconnects  int64 `json:"reconnects"`
	Kicks       int64 `json:"kicks"`
	Completions int64 `json:"completions"`
}

// Health snapshots the member workers' health state and the fleet's
// fault counters.
func (p *Pool) Health() HealthSnapshot {
	s := p.shared()
	snap := HealthSnapshot{
		Evictions:   s.evictions.Load(),
		Reconnects:  s.reconnects.Load(),
		Kicks:       s.kicks.Load(),
		Completions: p.completions.Load(),
	}
	now := time.Now().UnixNano()
	for _, w := range p.workers {
		if !p.allowed(w.id) {
			continue
		}
		wh := WorkerHealth{ID: w.id, InFlight: int(w.inflight.Load())}
		if start := w.callStart.Load(); start != 0 && now > start {
			wh.CallRunningFor = time.Duration(now - start)
		}
		w.mu.Lock()
		wh.ConsecutiveFails = w.fails
		wh.GobOnly = w.gobOnly
		switch {
		case w.evicted:
			wh.State = WorkerEvicted
		case w.client != nil:
			wh.State = WorkerLive
		default:
			wh.State = WorkerReconnecting
		}
		w.mu.Unlock()
		if wh.State == WorkerLive {
			snap.Healthy++
		}
		snap.Workers = append(snap.Workers, wh)
	}
	return snap
}
