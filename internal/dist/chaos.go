package dist

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// The chaos transport injects faults below the RPC service layer: a
// wrapped connection can hang mid-response (a stuck worker), reset
// mid-message (a dying worker), or delay writes (a straggler). Faults are
// drawn from a PRNG seeded by ChaosConfig.Seed, so a given connection
// replays the same fault pattern for the same write sequence — tests pick
// seeds, not sleeps. Wrap the *server* side of a connection: the request
// path stays clean (the client's send never wedges), while the response
// path misbehaves exactly like a faulty worker does.

// ChaosConfig describes the fault mix of one wrapped connection. Fault
// probabilities are evaluated per write in the order hang, reset, latency.
type ChaosConfig struct {
	// Seed seeds the connection's PRNG. The fault pattern is a pure
	// function of Seed and the write sequence.
	Seed int64
	// FirstSafe exempts the first n writes from injection, letting
	// connection setup and a configurable healthy prefix complete.
	FirstSafe int
	// HangProb is the probability a write hangs for HangFor (default 10s),
	// simulating a stuck worker. The hang releases early when the
	// connection is closed.
	HangProb float64
	HangFor  time.Duration
	// ResetProb is the probability a write delivers only half its bytes
	// and then closes the connection (a mid-message reset).
	ResetProb float64
	// LatencyProb delays a write by a uniform duration in [0, MaxLatency).
	LatencyProb float64
	MaxLatency  time.Duration
}

var (
	errChaosHang  = errors.New("dist: chaos: write hung")
	errChaosReset = errors.New("dist: chaos: connection reset mid-message")
)

type chaosConn struct {
	net.Conn
	cfg ChaosConfig

	mu     sync.Mutex
	rng    *rand.Rand
	writes int

	closeOnce sync.Once
	closed    chan struct{}

	deadOnce sync.Once
	dead     chan struct{}
}

// WrapChaos wraps conn with deterministic fault injection.
func WrapChaos(conn net.Conn, cfg ChaosConfig) net.Conn {
	if cfg.HangFor <= 0 {
		cfg.HangFor = 10 * time.Second
	}
	return &chaosConn{
		Conn:   conn,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		closed: make(chan struct{}),
		dead:   make(chan struct{}),
	}
}

// Read passes through, but a read error (the peer closed or reset the
// connection) marks the conn dead, releasing any in-progress or future
// write hang: an rpc server goroutine writing a response into a wedged
// conn whose client has already hung up must drain promptly, not sleep
// out the full HangFor per queued response — that is a goroutine leak,
// not a simulated fault.
func (c *chaosConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if err != nil {
		c.deadOnce.Do(func() { close(c.dead) })
	}
	return n, err
}

func (c *chaosConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	n := c.writes
	roll := c.rng.Float64()
	var lat time.Duration
	if c.cfg.MaxLatency > 0 {
		lat = time.Duration(c.rng.Int63n(int64(c.cfg.MaxLatency)))
	}
	c.mu.Unlock()
	if n <= c.cfg.FirstSafe {
		return c.Conn.Write(b)
	}
	switch {
	case roll < c.cfg.HangProb:
		select {
		case <-c.closed:
		case <-c.dead:
		case <-time.After(c.cfg.HangFor):
		}
		return 0, errChaosHang
	case roll < c.cfg.HangProb+c.cfg.ResetProb:
		half := len(b) / 2
		if half > 0 {
			c.Conn.Write(b[:half])
		}
		c.Close()
		return half, errChaosReset
	case roll < c.cfg.HangProb+c.cfg.ResetProb+c.cfg.LatencyProb:
		if lat > 0 {
			time.Sleep(lat)
		}
	}
	return c.Conn.Write(b)
}

func (c *chaosConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// chaosListener wraps accepted connections with chaos. Each connection
// gets a distinct deterministic PRNG stream derived from the base seed.
type chaosListener struct {
	net.Listener
	cfg ChaosConfig

	mu   sync.Mutex
	next int64
}

// NewChaosListener wraps lis so every accepted connection misbehaves per
// cfg, giving TCP worker tests the same fault substrate local pools get
// from NewLocalChaosPool.
func NewChaosListener(lis net.Listener, cfg ChaosConfig) net.Listener {
	return &chaosListener{Listener: lis, cfg: cfg}
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	id := l.next
	l.next++
	l.mu.Unlock()
	cfg := l.cfg
	cfg.Seed += id * 1000003
	return WrapChaos(conn, cfg), nil
}
