package dist

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWireReader drives a WireReader through an op-scripted decode of
// arbitrary bytes: whatever the input, every primitive reader must return
// without panicking, allocations must stay bounded by the input size
// (take/Int32sDelta reject lengths beyond the remaining bytes), and the
// sticky error state must keep later reads inert.
func FuzzWireReader(f *testing.F) {
	// A valid mixed-primitive encoding with the op script that reads it
	// back, plus degenerate seeds.
	var enc []byte
	enc = AppendUvarint(enc, 300)
	enc = AppendVarint(enc, -7)
	enc = AppendBool(enc, true)
	enc = AppendString(enc, "read-42")
	enc = AppendFloat32(enc, 0.97)
	enc = AppendFloat64(enc, -1.5)
	enc = AppendLen(enc, 3, true)
	enc = AppendInt32sDelta(enc, []int32{5, 9, 1000})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, enc)
	f.Add([]byte{7, 7, 7}, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{3}, []byte{0x80})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, ops []byte, data []byte) {
		rd := NewWireReader(data)
		for _, op := range ops {
			switch op % 10 {
			case 0:
				rd.Uvarint()
			case 1:
				rd.Varint()
			case 2:
				rd.Bool()
			case 3:
				_ = rd.String()
			case 4:
				rd.Float32()
			case 5:
				rd.Float64()
			case 6:
				rd.Len()
			case 7:
				rd.Int32sDelta()
			case 8:
				rd.Byte()
			case 9:
				rd.Bytes(int(op) / 10)
			}
		}
		if rd.Remaining() > len(data) {
			t.Fatalf("Remaining %d > input %d", rd.Remaining(), len(data))
		}
		rd.Finish()
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// error on short or oversized frames without panicking, and a frame it
// accepts must echo the framed payload exactly.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		hdr := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
		return append(hdr, payload...)
	}
	f.Add(frame([]byte("hello")))
	f.Add(append(frame(nil), frame([]byte{1, 2, 3})...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // length beyond maxWireFrame
	f.Add([]byte{5, 0, 0, 0, 'x'})        // truncated payload
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		consumed := 0
		for i := 0; i < 4; i++ {
			// Cap the declared frame length so a fuzzed header cannot
			// request a gigabyte-scale allocation per exec (readFrame's
			// own bound, maxWireFrame, is an anti-corruption limit, not a
			// fuzz budget). Headers beyond maxWireFrame stay in: readFrame
			// rejects those before allocating.
			if len(data)-consumed >= 4 {
				if n := binary.LittleEndian.Uint32(data[consumed : consumed+4]); n > 1<<20 && n <= maxWireFrame {
					return
				}
			}
			payload, nbuf, err := readFrame(r, buf)
			if err != nil {
				return
			}
			buf = nbuf
			want := data[consumed+4 : consumed+4+len(payload)]
			if !bytes.Equal(payload, want) {
				t.Fatalf("frame %d: payload %x != framed bytes %x", i, payload, want)
			}
			consumed += 4 + len(payload)
		}
	})
}
