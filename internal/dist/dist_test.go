package dist

import (
	"net"
	"sync/atomic"
	"testing"
)

// EchoService is a minimal RPC service for transport tests.
type EchoService struct {
	calls int64
}

type EchoArgs struct {
	X int
	S string
}

type EchoReply struct {
	X int
	S string
}

func (e *EchoService) Echo(args *EchoArgs, reply *EchoReply) error {
	atomic.AddInt64(&e.calls, 1)
	reply.X = args.X * 2
	reply.S = args.S + args.S
	return nil
}

func TestLocalPoolBasics(t *testing.T) {
	p, err := NewLocalPool(3, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	for i := 0; i < 3; i++ {
		var reply EchoReply
		if err := p.Call(i, "Echo", &EchoArgs{X: 21, S: "ab"}, &reply); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if reply.X != 42 || reply.S != "abab" {
			t.Errorf("worker %d: reply %+v", i, reply)
		}
	}
}

func TestLocalPoolErrors(t *testing.T) {
	if _, err := NewLocalPool(0, func() interface{} { return &EchoService{} }); err == nil {
		t.Error("size 0 accepted")
	}
	p, err := NewLocalPool(1, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	if err := p.Call(5, "Echo", &EchoArgs{}, &reply); err == nil {
		t.Error("out-of-range worker accepted")
	}
	if err := p.Call(0, "NoSuchMethod", &EchoArgs{}, &reply); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestParallelCallsRoundRobin(t *testing.T) {
	p, err := NewLocalPool(2, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tasks := 7
	replies := make([]interface{}, tasks)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	times, err := p.ParallelCalls(tasks, "Echo", func(tk int) interface{} {
		return &EchoArgs{X: tk, S: "x"}
	}, replies)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != tasks {
		t.Fatalf("got %d task times", len(times))
	}
	for i, d := range times {
		if d <= 0 {
			t.Errorf("task %d duration %v", i, d)
		}
	}
	for i := range replies {
		r := replies[i].(*EchoReply)
		if r.X != 2*i {
			t.Errorf("task %d: X = %d", i, r.X)
		}
	}
}

func TestParallelCallsPropagatesError(t *testing.T) {
	p, err := NewLocalPool(2, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	replies := make([]interface{}, 3)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	_, err = p.ParallelCalls(3, "Bogus", func(tk int) interface{} { return &EchoArgs{} }, replies)
	if err == nil {
		t.Error("expected error from unknown method")
	}
}

func TestGoAsync(t *testing.T) {
	p, err := NewLocalPool(1, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var r1, r2 EchoReply
	c1 := p.Go(0, "Echo", &EchoArgs{X: 1, S: "a"}, &r1)
	c2 := p.Go(0, "Echo", &EchoArgs{X: 2, S: "b"}, &r2)
	<-c1.Done
	<-c2.Done
	if c1.Error != nil || c2.Error != nil {
		t.Fatal(c1.Error, c2.Error)
	}
	if r1.X != 2 || r2.X != 4 {
		t.Errorf("replies: %+v %+v", r1, r2)
	}
}

func TestTCPServeAndDial(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = Serve(lis, &EchoService{}) }()
	defer lis.Close()

	p, err := DialPool([]string{lis.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 10, S: "tcp"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.X != 20 || reply.S != "tcptcp" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestDialPoolErrors(t *testing.T) {
	if _, err := DialPool(nil); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := DialPool([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable address accepted")
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	p, err := NewLocalPool(1, func() interface{} { return &EchoService{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{}, &reply); err == nil {
		t.Error("call on closed pool succeeded")
	}
}
