package dist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"testing"
	"time"
)

func TestWirePrimitivesRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 0)
	buf = AppendUvarint(buf, math.MaxUint64)
	buf = AppendVarint(buf, -1)
	buf = AppendVarint(buf, math.MinInt64)
	buf = AppendVarint(buf, math.MaxInt64)
	buf = AppendFloat32(buf, -1.5)
	buf = AppendFloat64(buf, 2.25)
	buf = AppendBool(buf, true)
	buf = AppendString(buf, "héllo")
	buf = AppendLen(buf, 0, false) // nil slice
	buf = AppendLen(buf, 0, true)  // empty slice
	buf = AppendInt32sDelta(buf, nil)
	buf = AppendInt32sDelta(buf, []int32{})
	buf = AppendInt32sDelta(buf, []int32{5, 2, math.MaxInt32, math.MinInt32, 0})

	rd := NewWireReader(buf)
	if v := rd.Uvarint(); v != 0 {
		t.Fatalf("uvarint 0 = %d", v)
	}
	if v := rd.Uvarint(); v != math.MaxUint64 {
		t.Fatalf("max uvarint = %d", v)
	}
	if v := rd.Varint(); v != -1 {
		t.Fatalf("varint -1 = %d", v)
	}
	if v := rd.Varint(); v != math.MinInt64 {
		t.Fatalf("min varint = %d", v)
	}
	if v := rd.Varint(); v != math.MaxInt64 {
		t.Fatalf("max varint = %d", v)
	}
	if v := rd.Float32(); v != -1.5 {
		t.Fatalf("float32 = %v", v)
	}
	if v := rd.Float64(); v != 2.25 {
		t.Fatalf("float64 = %v", v)
	}
	if !rd.Bool() {
		t.Fatal("bool = false")
	}
	if s := rd.String(); s != "héllo" {
		t.Fatalf("string = %q", s)
	}
	if n, present := rd.Len(); n != 0 || present {
		t.Fatalf("nil len = (%d, %v)", n, present)
	}
	if n, present := rd.Len(); n != 0 || !present {
		t.Fatalf("empty len = (%d, %v)", n, present)
	}
	if ids := rd.Int32sDelta(); ids != nil {
		t.Fatalf("nil int32s = %v", ids)
	}
	if ids := rd.Int32sDelta(); ids == nil || len(ids) != 0 {
		t.Fatalf("empty int32s = %v", ids)
	}
	want := []int32{5, 2, math.MaxInt32, math.MinInt32, 0}
	if ids := rd.Int32sDelta(); !reflect.DeepEqual(ids, want) {
		t.Fatalf("int32s = %v, want %v", ids, want)
	}
	if err := rd.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestWireReaderTruncated(t *testing.T) {
	full := AppendInt32sDelta(AppendString(nil, "method"), []int32{1, 2, 3})
	for cut := 0; cut < len(full); cut++ {
		rd := NewWireReader(full[:cut])
		_ = rd.String()
		rd.Int32sDelta()
		if rd.Finish() == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(full))
		}
	}
	// Trailing garbage is an error too.
	rd := NewWireReader(append(AppendString(nil, "m"), 0xff))
	_ = rd.String()
	if rd.Finish() == nil {
		t.Fatal("trailing byte not reported")
	}
}

// TestWireInt32sDeltaCorruptLength checks the decoder refuses to allocate
// a huge slice from a corrupt length prefix: each element needs at least
// one byte, so the claimed count is bounded by the remaining payload.
func TestWireInt32sDeltaCorruptLength(t *testing.T) {
	buf := AppendUvarint(nil, 1<<40) // claims ~2^40 elements
	buf = append(buf, 1, 2, 3)
	rd := NewWireReader(buf)
	if ids := rd.Int32sDelta(); ids != nil {
		t.Fatalf("corrupt list decoded to %d ids", len(ids))
	}
	if rd.Err() == nil {
		t.Fatal("corrupt length not reported")
	}
}

func TestWireInt32sDeltaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		ids := make([]int32, rng.Intn(64))
		for j := range ids {
			ids[j] = int32(rng.Uint32()) // arbitrary order and sign
		}
		got := func() []int32 {
			rd := NewWireReader(AppendInt32sDelta(nil, ids))
			out := rd.Int32sDelta()
			if err := rd.Finish(); err != nil {
				t.Fatal(err)
			}
			return out
		}()
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("round trip %v -> %v", ids, got)
		}
	}
}

// WireEchoArgs/WireEchoReply implement Wire, exercising the flagWire body
// path end to end; EchoArgs/EchoReply (plain gob structs) exercise the
// per-message gob fallback inside the binary framing.
type WireEchoArgs struct {
	IDs []int32
	Tag string
}

func (a *WireEchoArgs) AppendTo(dst []byte) []byte {
	dst = AppendInt32sDelta(dst, a.IDs)
	return AppendString(dst, a.Tag)
}

func (a *WireEchoArgs) DecodeFrom(src []byte) error {
	rd := NewWireReader(src)
	a.IDs = rd.Int32sDelta()
	a.Tag = rd.String()
	return rd.Finish()
}

type WireEchoReply struct {
	Sum int64
	Tag string
}

func (r *WireEchoReply) AppendTo(dst []byte) []byte {
	dst = AppendVarint(dst, r.Sum)
	return AppendString(dst, r.Tag)
}

func (r *WireEchoReply) DecodeFrom(src []byte) error {
	rd := NewWireReader(src)
	r.Sum = rd.Varint()
	r.Tag = rd.String()
	return rd.Finish()
}

// MixedService serves a Wire-typed method, a gob-typed method, and a
// failing method, covering all three response shapes of the binary codec.
type MixedService struct{}

func (MixedService) WireEcho(args *WireEchoArgs, reply *WireEchoReply) error {
	for _, id := range args.IDs {
		reply.Sum += int64(id)
	}
	reply.Tag = args.Tag + args.Tag
	return nil
}

func (MixedService) Echo(args *EchoArgs, reply *EchoReply) error {
	reply.X = args.X * 2
	reply.S = args.S + args.S
	return nil
}

func (MixedService) Fail(args *EchoArgs, reply *EchoReply) error {
	return errors.New("deliberate failure")
}

func TestWireCodecRoundTrip(t *testing.T) {
	p, err := NewLocalPoolOpts(1, func() interface{} { return MixedService{} },
		Options{Codec: CodecBinary, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wr WireEchoReply
	if err := p.Call(0, "WireEcho", &WireEchoArgs{IDs: []int32{3, 1, 4}, Tag: "ab"}, &wr); err != nil {
		t.Fatalf("Wire body call: %v", err)
	}
	if wr.Sum != 8 || wr.Tag != "abab" {
		t.Fatalf("WireEcho reply %+v", wr)
	}

	var gr EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 21, S: "x"}, &gr); err != nil {
		t.Fatalf("gob-fallback body call: %v", err)
	}
	if gr.X != 42 || gr.S != "xx" {
		t.Fatalf("Echo reply %+v", gr)
	}

	// Application errors ride the response error string with no body and
	// must not evict the worker.
	err = p.Call(0, "Fail", &EchoArgs{}, &gr)
	if err == nil || err.Error() != "deliberate failure" {
		t.Fatalf("Fail call error = %v", err)
	}
	if n := p.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d after application error", n)
	}
}

// discardConn is the write half of a net.Conn for encode-only tests; the
// embedded nil Conn panics on anything else, which would mark a test bug.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// TestWireCodecZeroAlloc pins the tentpole's allocation target: in steady
// state the codec itself — framing, headers, method-name interning —
// allocates nothing on either the request or the response path.
func TestWireCodecZeroAlloc(t *testing.T) {
	c := &wireClientCodec{
		conn:    discardConn{},
		wbuf:    getWireBuf(),
		rbuf:    getWireBuf(),
		methods: make(map[string]string, 8),
	}
	req := rpc.Request{ServiceMethod: "FocusWorker.TrimTransitive", Seq: 1}
	body := &WireEchoArgs{IDs: []int32{10, 20, 30, 40}, Tag: "phase"}
	if err := c.WriteRequest(&req, body); err != nil { // warm the staging buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		req.Seq++
		if err := c.WriteRequest(&req, body); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("WriteRequest allocates %.1f objects/call, want 0", allocs)
	}

	// One canned success response, replayed through the read path.
	frame := append([]byte(nil), 0, 0, 0, 0)
	frame = AppendUvarint(frame, 7)
	frame = AppendString(frame, "FocusWorker.TrimTransitive")
	frame = AppendString(frame, "")
	frame = append(frame, flagNoBody)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	rdr := bytes.NewReader(frame)
	br := bufio.NewReaderSize(rdr, 512)
	c.br = br
	var resp rpc.Response
	readOne := func() {
		rdr.Reset(frame)
		br.Reset(rdr)
		if err := c.ReadResponseHeader(&resp); err != nil {
			t.Fatal(err)
		}
		if err := c.ReadResponseBody(nil); err != nil {
			t.Fatal(err)
		}
	}
	readOne() // warm the frame buffer and the method intern table
	if allocs := testing.AllocsPerRun(200, readOne); allocs != 0 {
		t.Fatalf("ReadResponse allocates %.1f objects/call, want 0", allocs)
	}
	if resp.ServiceMethod != "FocusWorker.TrimTransitive" || resp.Seq != 7 || resp.Error != "" {
		t.Fatalf("decoded response %+v", resp)
	}
}

// TestWireShutdownDrain is the satellite-b regression: the binary server
// codec must keep the same in-flight accounting contract as the gob
// codec, so Server.Shutdown's grace period still drains active calls.
func TestWireShutdownDrain(t *testing.T) {
	srv, err := NewServerOpts(SlowService{}, Options{WireBufSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()

	p, err := DialPoolOpts([]string{lis.Addr().String()}, Options{Codec: CodecBinary, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var reply EchoReply
	call := p.Go(0, "Echo", &EchoArgs{X: 5}, &reply)
	deadline := time.Now().Add(2 * time.Second)
	for srv.ActiveCalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.ActiveCalls() == 0 {
		t.Fatal("call never became active on the server")
	}
	srv.Shutdown(2 * time.Second)
	<-call.Done
	if call.Error != nil {
		t.Fatalf("in-flight call killed by graceful shutdown: %v", call.Error)
	}
	if reply.X != 10 {
		t.Fatalf("reply after drain: %+v", reply)
	}
	if err := <-served; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestWireServerSniffsBothCodecs drives one sniffing listener from a
// binary pool and a gob pool at the same time.
func TestWireServerSniffsBothCodecs(t *testing.T) {
	srv, err := NewServer(MixedService{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Shutdown(time.Second)

	addr := lis.Addr().String()
	for _, tc := range []struct {
		name  string
		codec Codec
	}{{"binary", CodecBinary}, {"gob", CodecGob}} {
		p, err := DialPoolOpts([]string{addr}, Options{Codec: tc.codec, Logf: t.Logf})
		if err != nil {
			t.Fatalf("%s dial: %v", tc.name, err)
		}
		var wr WireEchoReply
		if err := p.Call(0, "WireEcho", &WireEchoArgs{IDs: []int32{1, 2}, Tag: "t"}, &wr); err != nil {
			t.Fatalf("%s WireEcho: %v", tc.name, err)
		}
		if wr.Sum != 3 || wr.Tag != "tt" {
			t.Fatalf("%s WireEcho reply %+v", tc.name, wr)
		}
		p.Close()
	}
}

// gobOnlyServer emulates an old worker build: a plain net/rpc gob server
// with no knowledge of the wire handshake.
func gobOnlyServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, MixedService{}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return lis.Addr().String(), func() { lis.Close() }
}

// TestWireGobFallbackSticky: a CodecAuto pool probing an old gob-only
// worker gets no handshake ack (the peer reads the magic as a gob length
// prefix and blocks), times out, redials with gob, and remembers the
// downgrade for reconnects.
func TestWireGobFallbackSticky(t *testing.T) {
	addr, stop := gobOnlyServer(t)
	defer stop()
	p, err := DialPoolOpts([]string{addr}, Options{HandshakeTimeout: 200 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("CodecAuto dial against gob-only worker: %v", err)
	}
	defer p.Close()
	var reply EchoReply
	if err := p.Call(0, "Echo", &EchoArgs{X: 4, S: "y"}, &reply); err != nil {
		t.Fatalf("call after fallback: %v", err)
	}
	if reply.X != 8 || reply.S != "yy" {
		t.Fatalf("reply %+v", reply)
	}
	w := p.workers[0]
	w.mu.Lock()
	sticky := w.gobOnly
	w.mu.Unlock()
	if !sticky {
		t.Fatal("fallback not recorded as sticky gobOnly")
	}
	// A sticky reconnect goes straight to gob — no handshake timeout wait.
	start := time.Now()
	client, err := p.connectWorker(w)
	if err != nil {
		t.Fatalf("sticky reconnect: %v", err)
	}
	client.Close()
	if el := time.Since(start); el >= 200*time.Millisecond {
		t.Fatalf("sticky reconnect waited out the handshake timeout (%v)", el)
	}
}

// TestWireBinaryRequiredFails: CodecBinary treats a failed handshake as a
// connect error instead of downgrading.
func TestWireBinaryRequiredFails(t *testing.T) {
	addr, stop := gobOnlyServer(t)
	defer stop()
	_, err := DialPoolOpts([]string{addr},
		Options{Codec: CodecBinary, HandshakeTimeout: 150 * time.Millisecond, Logf: t.Logf})
	if err == nil {
		t.Fatal("CodecBinary connected to a gob-only worker")
	}
}

// TestWireChaosHungWorkerReschedules re-runs the rescheduling proof under
// the explicitly-binary codec: FirstSafe lets the handshake ack through,
// then every response write on worker 0 wedges.
func TestWireChaosHungWorkerReschedules(t *testing.T) {
	hang := ChaosConfig{Seed: 11, FirstSafe: 1, HangProb: 1, HangFor: 2 * time.Second}
	p, err := NewLocalChaosPool(2, func() interface{} { return &EchoService{} },
		Options{Codec: CodecBinary, CallTimeout: 150 * time.Millisecond, MaxFailures: 1, Logf: t.Logf},
		func(w int) *ChaosConfig {
			if w == 0 {
				return &hang
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const tasks = 6
	replies := make([]interface{}, tasks)
	for i := range replies {
		replies[i] = &EchoReply{}
	}
	if _, err := p.ParallelCalls(tasks, "Echo", func(tk int) interface{} {
		return &EchoArgs{X: tk, S: "x"}
	}, replies); err != nil {
		t.Fatalf("parallel calls with one hung worker: %v", err)
	}
	for i := range replies {
		if r := replies[i].(*EchoReply); r.X != 2*i {
			t.Errorf("task %d: X = %d, want %d", i, r.X, 2*i)
		}
	}
	if n := p.NumHealthy(); n != 1 {
		t.Fatalf("NumHealthy = %d, want 1", n)
	}
}

// TestWireChaosLatencyJitter: random per-write delays must not corrupt
// framing — every call still answers correctly under the binary codec.
func TestWireChaosLatencyJitter(t *testing.T) {
	jitter := ChaosConfig{Seed: 3, LatencyProb: 1, MaxLatency: 3 * time.Millisecond}
	p, err := NewLocalChaosPool(2, func() interface{} { return MixedService{} },
		Options{Codec: CodecBinary, Logf: t.Logf},
		func(w int) *ChaosConfig { return &jitter })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 20; i++ {
		var wr WireEchoReply
		if err := p.Call(i%2, "WireEcho", &WireEchoArgs{IDs: []int32{int32(i), 1}, Tag: "j"}, &wr); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if wr.Sum != int64(i)+1 {
			t.Fatalf("call %d: sum %d", i, wr.Sum)
		}
	}
}
