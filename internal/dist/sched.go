package dist

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"time"
)

// This file is the pool's task scheduler. ParallelCalls used to assign
// task t to worker t % Size() statically, which re-hits dead workers and
// lets one straggler stall the phase. It now drains a shared queue with
// one runner goroutine per schedulable worker: tasks naturally reroute
// around evicted or slow workers while preserving the one-in-flight-per-
// worker invariant (a pool of w workers processes at most w tasks
// concurrently — what makes runtime fall as the pool grows, Fig. 6).
// ParallelCallsPinned keeps the static assignment for protocols that pin
// state to a worker index (the stateful delta protocol of assembly).

type callOptions struct {
	// retries is the number of additional workers a task is retried on
	// after an application-level failure. 0 — the default — fails fast on
	// service errors, as an MPI job would. Transport failures (timeouts,
	// broken connections) do not consume this budget: the worker failed,
	// not the task, so the task reroutes to another worker for free.
	retries int
}

// ParallelCalls runs one call per task concurrently over the schedulable
// workers. mkArgs and replies are indexed by task. It returns the per-task
// durations (argument construction excluded), which the harness projects
// onto larger worker counts; the first error (in task order) is returned
// after all calls finish. When no schedulable worker exists the error
// wraps ErrNoWorkers.
func (p *Pool) ParallelCalls(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, error) {
	return p.parallelCalls(nil, tasks, method, mkArgs, replies, callOptions{})
}

// ParallelCallsCtx is ParallelCalls bounded by ctx. Cancellation severs
// every in-flight call (like a per-call timeout) and drains the queue:
// not-yet-started tasks fail fast without touching the network, and the
// whole invocation returns promptly with an error wrapping the context's
// cause. A nil ctx behaves exactly like ParallelCalls.
func (p *Pool) ParallelCallsCtx(ctx context.Context, tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, error) {
	return p.parallelCalls(ctx, tasks, method, mkArgs, replies, callOptions{})
}

// ParallelCallsRetry is ParallelCalls with failover: a task failed by the
// service is retried on up to `retries` other workers before the error
// counts. Stateless services (all of assembly's stateless phases) make
// this safe.
func (p *Pool) ParallelCallsRetry(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}, retries int) ([]time.Duration, error) {
	return p.parallelCalls(nil, tasks, method, mkArgs, replies, callOptions{retries: retries})
}

// ParallelCallsRetryCtx is ParallelCallsRetry bounded by ctx (see
// ParallelCallsCtx for the cancellation semantics).
func (p *Pool) ParallelCallsRetryCtx(ctx context.Context, tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}, retries int) ([]time.Duration, error) {
	return p.parallelCalls(ctx, tasks, method, mkArgs, replies, callOptions{retries: retries})
}

// ParallelCallsPinned runs task t on worker t % Size(), the static
// round-robin assignment, with per-call deadlines but no rescheduling.
// Protocols that pin per-worker state to the task index need this:
// rerouting a task would address state the target worker does not hold.
// (The stateful assembly driver now uses ParallelCallsPlaced with an
// explicit placement table so it can re-host partitions; this remains for
// protocols whose placement really is the static modulo map.)
func (p *Pool) ParallelCallsPinned(tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, error) {
	times, errs := p.ParallelCallsPlaced(tasks, func(t int) int { return t % len(p.workers) }, method, mkArgs, replies)
	for _, err := range errs {
		if err != nil {
			return times, err
		}
	}
	return times, nil
}

// ParallelCallsPlaced runs task t on worker place(t) — an explicit
// placement table — with per-call deadlines, one in-flight call per
// worker, and NO rescheduling: stateful protocols address state resident
// on a specific worker, so only the caller (who owns the placement table)
// can decide where a failed task may legally run next. Unlike the other
// ParallelCalls variants it returns the error of every task, letting the
// caller re-host exactly the partitions that failed instead of abandoning
// the phase on the first error.
func (p *Pool) ParallelCallsPlaced(tasks int, place func(t int) int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, []error) {
	return p.ParallelCallsPlacedCtx(nil, tasks, place, method, mkArgs, replies)
}

// ParallelCallsPlacedCtx is ParallelCallsPlaced bounded by ctx: canceled
// tasks fail with an error wrapping the context's cause (a transport-class
// error, but the caller checks its own ctx before classifying failures, so
// a canceled run is never misdiagnosed as a lost worker).
func (p *Pool) ParallelCallsPlacedCtx(ctx context.Context, tasks int, place func(t int) int, method string, mkArgs func(t int) interface{}, replies []interface{}) ([]time.Duration, []error) {
	var wg sync.WaitGroup
	errs := make([]error, tasks)
	times := make([]time.Duration, tasks)
	// One in-flight call per worker at a time.
	locks := make([]sync.Mutex, p.Size())
	for t := 0; t < tasks; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			wid := place(t)
			if wid < 0 || wid >= len(p.workers) {
				errs[t] = fmt.Errorf("dist: task %d placed on worker %d outside [0,%d)", t, wid, len(p.workers))
				return
			}
			if !p.allowed(wid) {
				errs[t] = fmt.Errorf("dist: task %d placed on worker %d not a member of this pool view: %w", t, wid, ErrWorkerDown)
				return
			}
			w := p.workers[wid]
			// Argument construction happens on the master and is not
			// part of the worker's task time.
			args := mkArgs(t)
			fresh := newReply(replies[t])
			locks[w.id].Lock()
			t0 := time.Now()
			errs[t] = p.callWorkerCtx(ctx, w, method, args, fresh)
			times[t] = time.Since(t0)
			locks[w.id].Unlock()
			if errs[t] == nil {
				copyReply(replies[t], fresh)
			}
		}(t)
	}
	wg.Wait()
	return times, errs
}

func (p *Pool) parallelCalls(ctx context.Context, tasks int, method string, mkArgs func(t int) interface{}, replies []interface{}, opt callOptions) ([]time.Duration, error) {
	times := make([]time.Duration, tasks)
	if tasks == 0 {
		return times, nil
	}
	runners := p.runnableWorkers()
	if len(runners) == 0 {
		return times, fmt.Errorf("dist: %s: %w", method, ErrNoWorkers)
	}
	maxAttempts := 1 + opt.retries
	if maxAttempts > len(p.workers) {
		maxAttempts = len(p.workers)
	}
	ids := make([]int, len(runners))
	for i, w := range runners {
		ids[i] = w.id
	}
	s := newSched(tasks, len(p.workers), maxAttempts, times, ids)
	var wg sync.WaitGroup
	for _, w := range runners {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.runWorker(ctx, w, s, method, mkArgs, replies)
		}(w)
	}
	wg.Wait()
	for _, err := range s.errs {
		if err != nil {
			return times, err
		}
	}
	return times, nil
}

// runWorker is one worker's runner: it drains the queue one task at a
// time until the queue is empty or the worker's connection dies. No
// dedicated cancellation watcher is needed: after ctx cancels, every
// callWorkerCtx fails instantly on its pre-check (a transport-class
// failure that requeues the task without consuming its retry budget), so
// the pending queue churns through the runners until every live runner
// has tried every task and reapUnservable finalizes them with the
// context's cause — a fast, allocation-light convergence with no
// goroutine left behind.
func (p *Pool) runWorker(ctx context.Context, w *worker, s *sched, method string, mkArgs func(t int) interface{}, replies []interface{}) {
	defer s.detach(w.id)
	for {
		tk := s.next(w.id)
		if tk == nil {
			return
		}
		if tk.args == nil {
			tk.args = mkArgs(tk.idx)
		}
		// Every attempt gets a fresh reply: a late write by an abandoned
		// (timed-out) call, or gob decoding into a partially-filled value
		// on retry, must never touch the caller's reply.
		fresh := newReply(replies[tk.idx])
		t0 := time.Now()
		err := p.callWorkerCtx(ctx, w, method, tk.args, fresh)
		d := time.Since(t0)
		if err == nil {
			copyReply(replies[tk.idx], fresh)
			s.finish(tk, d)
		} else {
			s.fail(tk, w.id, err, d, IsTransportError(err))
		}
		if !p.workerRunnable(w) {
			return
		}
	}
}

func newReply(proto interface{}) interface{} {
	return reflect.New(reflect.TypeOf(proto).Elem()).Interface()
}

func copyReply(dst, src interface{}) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// schedTask is one queued task plus its attempt history.
type schedTask struct {
	idx      int
	args     interface{}
	tried    []bool // per worker id; a task runs at most once per worker
	attempts int    // application-level failures so far
	lastErr  error
}

// sched is the shared state of one parallelCalls invocation.
type sched struct {
	mu          sync.Mutex
	cond        *sync.Cond
	pending     []*schedTask
	inflight    int
	finalized   int
	total       int
	maxAttempts int
	live        []bool // live runner per worker id
	times       []time.Duration
	errs        []error
}

func newSched(tasks, workers, maxAttempts int, times []time.Duration, runnerIDs []int) *sched {
	s := &sched{
		total:       tasks,
		maxAttempts: maxAttempts,
		live:        make([]bool, workers),
		times:       times,
		errs:        make([]error, tasks),
	}
	s.cond = sync.NewCond(&s.mu)
	for t := 0; t < tasks; t++ {
		s.pending = append(s.pending, &schedTask{idx: t, tried: make([]bool, workers)})
	}
	for _, id := range runnerIDs {
		s.live[id] = true
	}
	return s
}

// next blocks until there is a task runner wid may attempt, all tasks are
// finalized (returns nil), or no task this runner could ever serve remains.
func (s *sched) next(wid int) *schedTask {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.finalized == s.total {
			return nil
		}
		for i, t := range s.pending {
			if !t.tried[wid] {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				s.inflight++
				return t
			}
		}
		// Nothing this runner can take right now. Fail tasks no live
		// runner can ever serve, then wait for a requeue or completion.
		s.reapUnservable()
		if s.finalized == s.total {
			return nil
		}
		s.cond.Wait()
	}
}

// reapUnservable finalizes pending tasks that no live runner may attempt
// (every live runner has already tried them). Called with s.mu held.
func (s *sched) reapUnservable() {
	kept := s.pending[:0]
	for _, t := range s.pending {
		servable := false
		for wid, alive := range s.live {
			if alive && !t.tried[wid] {
				servable = true
				break
			}
		}
		if servable {
			kept = append(kept, t)
			continue
		}
		err := t.lastErr
		if err == nil {
			err = fmt.Errorf("dist: task %d: %w", t.idx, ErrNoWorkers)
		}
		s.errs[t.idx] = err
		s.finalized++
	}
	s.pending = kept
}

func (s *sched) finish(t *schedTask, d time.Duration) {
	s.mu.Lock()
	s.inflight--
	s.finalized++
	s.times[t.idx] = d
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail records a failed attempt. Application failures consume the retry
// budget; transport failures only mark the worker as tried (the task gets
// rerouted, bounded by each transport failure also severing that worker).
func (s *sched) fail(t *schedTask, wid int, err error, d time.Duration, transport bool) {
	s.mu.Lock()
	s.inflight--
	t.tried[wid] = true
	t.lastErr = err
	s.times[t.idx] = d
	if !transport {
		t.attempts++
	}
	if t.attempts >= s.maxAttempts {
		s.errs[t.idx] = err
		s.finalized++
	} else {
		s.pending = append(s.pending, t)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// detach removes a dead runner and fails any pending task only it could
// have served.
func (s *sched) detach(wid int) {
	s.mu.Lock()
	s.live[wid] = false
	s.reapUnservable()
	s.cond.Broadcast()
	s.mu.Unlock()
}
