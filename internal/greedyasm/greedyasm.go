// Package greedyasm is the classical greedy overlap-merge assembler
// (TIGR/phrap-style): detect pairwise overlaps, sort suffix-prefix
// overlaps by length, and merge greedily while each read end is unused.
// It is the second baseline (next to the de Bruijn assembler) against
// which the Focus hybrid-graph pipeline is compared: greedy assembly
// needs no graph partitioning but commits to merges that a graph method
// would reconsider, so it is fast but fragile around repeats.
package greedyasm

import (
	"sort"

	"focus/internal/align"
	"focus/internal/dna"
	"focus/internal/overlap"
)

// Config controls the baseline.
type Config struct {
	Overlap      overlap.Config
	Subsets      int
	MinContigLen int
}

// DefaultConfig mirrors the Focus overlap thresholds.
func DefaultConfig() Config {
	return Config{Overlap: overlap.DefaultConfig(), Subsets: 2, MinContigLen: 100}
}

// Assemble runs the greedy baseline over the (already preprocessed)
// reads.
func Assemble(reads []dna.Read, cfg Config) ([][]byte, error) {
	recs, err := overlap.FindOverlaps(reads, cfg.Subsets, cfg.Overlap)
	if err != nil {
		return nil, err
	}
	return assembleFromRecords(reads, recs, cfg), nil
}

// AssembleFromRecords reuses precomputed overlap records (so baseline
// comparisons do not re-pay alignment cost).
func AssembleFromRecords(reads []dna.Read, recs []overlap.Record, cfg Config) [][]byte {
	return assembleFromRecords(reads, recs, cfg)
}

func assembleFromRecords(reads []dna.Read, recs []overlap.Record, cfg Config) [][]byte {
	n := len(reads)
	contained := make([]bool, n)
	// Pass 1: discard contained reads (they add nothing to a greedy
	// layout).
	for _, r := range recs {
		switch r.Kind {
		case align.KindAContainsB:
			contained[r.B] = true
		case align.KindBContainsA:
			contained[r.A] = true
		}
	}

	// Pass 2: collect directed suffix-prefix overlaps between
	// non-contained reads, longest first.
	type dov struct {
		from, to int32
		len      int32
		diag     int32
	}
	var ovs []dov
	for _, r := range recs {
		if contained[r.A] || contained[r.B] {
			continue
		}
		switch r.Kind {
		case align.KindSuffixPrefix: // A precedes B
			ovs = append(ovs, dov{from: r.A, to: r.B, len: r.Len, diag: r.Diag})
		case align.KindPrefixSuffix: // B precedes A
			ovs = append(ovs, dov{from: r.B, to: r.A, len: r.Len, diag: -r.Diag})
		}
	}
	sort.Slice(ovs, func(i, j int) bool {
		if ovs[i].len != ovs[j].len {
			return ovs[i].len > ovs[j].len
		}
		if ovs[i].from != ovs[j].from {
			return ovs[i].from < ovs[j].from
		}
		return ovs[i].to < ovs[j].to
	})

	// Pass 3: greedy merging. Each read's right end and left end may be
	// used once; chains must not close into cycles.
	next := make([]int32, n)
	prev := make([]int32, n)
	diag := make([]int32, n) // diag[v] = offset of next[v] relative to v
	for i := range next {
		next[i] = -1
		prev[i] = -1
	}
	// chainOf finds the chain's head with path compression-lite.
	head := func(v int32) int32 {
		for prev[v] != -1 {
			v = prev[v]
		}
		return v
	}
	for _, o := range ovs {
		if next[o.from] != -1 || prev[o.to] != -1 {
			continue // ends already consumed
		}
		if head(o.from) == o.to {
			continue // would close a cycle
		}
		next[o.from] = o.to
		prev[o.to] = o.from
		diag[o.from] = o.diag
	}

	// Pass 4: render chains.
	var contigs [][]byte
	for v := int32(0); v < int32(n); v++ {
		if contained[v] || prev[v] != -1 {
			continue // not a chain head
		}
		contig := append([]byte(nil), reads[v].Seq...)
		pos := 0
		for cur := v; next[cur] != -1; cur = next[cur] {
			pos += int(diag[cur])
			nxt := reads[next[cur]].Seq
			if pos+len(nxt) <= len(contig) {
				continue
			}
			skip := len(contig) - pos
			if skip < 0 {
				skip = 0
			}
			contig = append(contig, nxt[skip:]...)
		}
		if len(contig) >= cfg.MinContigLen {
			contigs = append(contigs, contig)
		}
	}
	return contigs
}
